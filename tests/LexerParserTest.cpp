//===- tests/LexerParserTest.cpp - Lexer and parser unit tests -------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "parser/Lexer.h"
#include "parser/Parser.h"
#include "support/RawStream.h"

#include <gtest/gtest.h>

using namespace usher;
using namespace usher::parser;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

std::vector<TokenKind> kindsOf(std::string_view Src) {
  std::vector<TokenKind> Kinds;
  for (const Token &T : tokenize(Src))
    Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(Lexer, EmptyInputYieldsEof) {
  auto Kinds = kindsOf("");
  ASSERT_EQ(Kinds.size(), 1u);
  EXPECT_EQ(Kinds[0], TokenKind::Eof);
}

TEST(Lexer, TokenizesPunctuationAndOperators) {
  auto Kinds = kindsOf("= ; , ( ) { } [ ] : * + - / % & | ^");
  std::vector<TokenKind> Expected = {
      TokenKind::Assign,  TokenKind::Semi,     TokenKind::Comma,
      TokenKind::LParen,  TokenKind::RParen,   TokenKind::LBrace,
      TokenKind::RBrace,  TokenKind::LBracket, TokenKind::RBracket,
      TokenKind::Colon,   TokenKind::Star,     TokenKind::Plus,
      TokenKind::Minus,   TokenKind::Slash,    TokenKind::Percent,
      TokenKind::Amp,     TokenKind::Pipe,     TokenKind::Caret,
      TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, DistinguishesCompoundOperators) {
  auto Kinds = kindsOf("<< >> <= >= == != < >");
  std::vector<TokenKind> Expected = {
      TokenKind::Shl,    TokenKind::Shr,       TokenKind::LessEq,
      TokenKind::GreaterEq, TokenKind::EqEq,   TokenKind::NotEq,
      TokenKind::Less,   TokenKind::Greater,   TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, ParsesIntegerValues) {
  auto Tokens = tokenize("0 42 1234567890123");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 1234567890123LL);
}

TEST(Lexer, SkipsLineComments) {
  auto Tokens = tokenize("a // comment = ; with stuff\nb");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(Lexer, TracksLineAndColumn) {
  auto Tokens = tokenize("a\n  b");
  ASSERT_GE(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[0].Col, 1u);
  EXPECT_EQ(Tokens[1].Line, 2u);
  EXPECT_EQ(Tokens[1].Col, 3u);
}

TEST(Lexer, IdentifiersAllowDotsAndUnderscores) {
  auto Tokens = tokenize("foo_bar obj.f0");
  EXPECT_EQ(Tokens[0].Text, "foo_bar");
  EXPECT_EQ(Tokens[1].Text, "obj.f0");
}

TEST(Lexer, ReportsUnexpectedCharacter) {
  auto Tokens = tokenize("a $ b");
  bool SawError = false;
  for (const Token &T : Tokens)
    SawError |= T.is(TokenKind::Error);
  EXPECT_TRUE(SawError);
}

//===----------------------------------------------------------------------===//
// Parser: acceptance
//===----------------------------------------------------------------------===//

TEST(Parser, ParsesMinimalMain) {
  ParseResult R = parseModule("func main() { ret 0; }");
  ASSERT_TRUE(R.succeeded());
  EXPECT_EQ(R.M->functions().size(), 1u);
}

TEST(Parser, ImplicitReturnAtFunctionEnd) {
  ParseResult R = parseModule("func main() { x = 1; }");
  ASSERT_TRUE(R.succeeded());
  const ir::BasicBlock *Entry = R.M->findFunction("main")->getEntry();
  EXPECT_TRUE(isa<ir::RetInst>(Entry->instructions().back().get()));
}

TEST(Parser, ForwardFunctionReferences) {
  ParseResult R = parseModule(R"(
    func main() { x = helper(3); ret x; }
    func helper(n) { m = n + 1; ret m; }
  )");
  ASSERT_TRUE(R.succeeded()) << R.Errors.front();
}

TEST(Parser, IfCreatesFallthroughBlock) {
  ParseResult R = parseModule(R"(
    func main() {
      x = 1;
      if x goto out;
      x = 2;
    out:
      ret x;
    }
  )");
  ASSERT_TRUE(R.succeeded());
  // entry, fallthrough continuation, and 'out'.
  EXPECT_EQ(R.M->findFunction("main")->blocks().size(), 3u);
}

TEST(Parser, GlobalsResolveAsAddressOperands) {
  ParseResult R = parseModule(R"(
    global g[4] init;
    func main() { p = g; x = *p; ret x; }
  )");
  ASSERT_TRUE(R.succeeded());
  const ir::Function *Main = R.M->findFunction("main");
  const auto *Copy =
      cast<ir::CopyInst>(Main->getEntry()->instructions()[0].get());
  ASSERT_TRUE(Copy->getSrc().isGlobal());
  EXPECT_EQ(Copy->getSrc().getGlobal()->getName(), "g");
}

TEST(Parser, NegativeConstants) {
  ParseResult R = parseModule("func main() { x = -5; ret x; }");
  ASSERT_TRUE(R.succeeded());
  const auto *Copy = cast<ir::CopyInst>(
      R.M->findFunction("main")->getEntry()->instructions()[0].get());
  EXPECT_EQ(Copy->getSrc().getConst(), -5);
}

TEST(Parser, GepWithVariableIndex) {
  ParseResult R = parseModule(R"(
    func main() {
      p = alloc stack 8 uninit array;
      i = 3;
      q = gep p, i;
      *q = 1;
      ret 0;
    }
  )");
  ASSERT_TRUE(R.succeeded());
  bool Found = false;
  for (const auto &I :
       R.M->findFunction("main")->getEntry()->instructions())
    if (const auto *G = dyn_cast<ir::FieldAddrInst>(I.get()))
      Found = !G->hasConstIndex();
  EXPECT_TRUE(Found);
}

TEST(Parser, BareCallStatement) {
  ParseResult R = parseModule(R"(
    func work(n) { ret n; }
    func main() { work(1); ret 0; }
  )");
  ASSERT_TRUE(R.succeeded());
  const auto *Call = cast<ir::CallInst>(
      R.M->findFunction("main")->getEntry()->instructions()[0].get());
  EXPECT_EQ(Call->getDef(), nullptr);
}

//===----------------------------------------------------------------------===//
// Parser: diagnostics
//===----------------------------------------------------------------------===//

TEST(ParserDiagnostics, UseOfUndefinedName) {
  ParseResult R = parseModule("func main() { x = y + 1; ret x; }");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.Errors.front().find("undefined name 'y'"), std::string::npos);
}

TEST(ParserDiagnostics, UndefinedLabel) {
  ParseResult R = parseModule("func main() { goto nowhere; }");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.Errors.front().find("undefined label"), std::string::npos);
}

TEST(ParserDiagnostics, RedefinedLabel) {
  ParseResult R =
      parseModule("func main() { a: x = 1; a: ret x; }");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.Errors.front().find("redefinition of label"),
            std::string::npos);
}

TEST(ParserDiagnostics, WrongArgumentCount) {
  ParseResult R = parseModule(R"(
    func two(a, b) { c = a + b; ret c; }
    func main() { x = two(1); ret x; }
  )");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.Errors.front().find("passes 1 args, expected 2"),
            std::string::npos);
}

TEST(ParserDiagnostics, ReservedWordAsVariable) {
  ParseResult R = parseModule("func main() { heap = 1; ret heap; }");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.Errors.front().find("reserved"), std::string::npos);
}

TEST(ParserDiagnostics, AssigningGlobalDirectly) {
  ParseResult R = parseModule(R"(
    global g[1] init;
    func main() { g = 3; ret 0; }
  )");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.Errors.front().find("store through a pointer"),
            std::string::npos);
}

TEST(ParserDiagnostics, DuplicateFunction) {
  ParseResult R = parseModule(R"(
    func main() { ret 0; }
    func main() { ret 1; }
  )");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.Errors.front().find("redefinition of function"),
            std::string::npos);
}

TEST(ParserDiagnostics, TruncatedExpressionReportsEndOfInput) {
  // Input cut off mid-expression: the diagnostic must carry line:col and
  // say "end of input" rather than quoting an empty token.
  ParseResult R = parseModule("func main() {\n  x = 1;\n  y = x +");
  ASSERT_FALSE(R.succeeded());
  ASSERT_FALSE(R.Errors.empty());
  const std::string &E = R.Errors.front();
  EXPECT_NE(E.find("3:"), std::string::npos) << E;
  EXPECT_NE(E.find("end of input"), std::string::npos) << E;
  EXPECT_EQ(E.find("''"), std::string::npos) << E;
}

TEST(ParserDiagnostics, TruncatedFunctionReportsEndOfInput) {
  ParseResult R = parseModule("func main() {\n  x = 1;\n");
  ASSERT_FALSE(R.succeeded());
  ASSERT_FALSE(R.Errors.empty());
  bool MentionsEof = false;
  for (const std::string &E : R.Errors)
    MentionsEof |= E.find("end of input") != std::string::npos;
  EXPECT_TRUE(MentionsEof) << R.Errors.front();
}

//===----------------------------------------------------------------------===//
// Printer round-trip
//===----------------------------------------------------------------------===//

TEST(Printer, RoundTripsThroughTheParser) {
  const char *Src = R"(
    global table[8] uninit array;
    func helper(a, b) {
      c = a + b;
      p = alloc heap 4 init;
      q = gep p, 2;
      *q = c;
      v = *q;
      if v goto big;
      ret 0;
    big:
      ret v;
    }
    func main() {
      x = helper(1, 2);
      t = table;
      *t = x;
      y = *t;
      ret y;
    }
  )";
  ParseResult First = parseModule(Src);
  ASSERT_TRUE(First.succeeded());

  std::string Printed;
  raw_string_ostream OS(Printed);
  First.M->print(OS);

  ParseResult Second = parseModule(Printed);
  ASSERT_TRUE(Second.succeeded())
      << "reparse failed: " << Second.Errors.front() << "\n"
      << Printed;
  // Structure is preserved: same functions, same instruction counts per
  // function modulo the extra goto blocks the printer normalizes.
  EXPECT_EQ(First.M->functions().size(), Second.M->functions().size());
  EXPECT_EQ(First.M->objects().size(), Second.M->objects().size());
}

} // namespace
