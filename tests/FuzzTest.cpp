//===- tests/FuzzTest.cpp - Differential fuzzing subsystem -----------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for src/fuzz/: coverage counters, the
/// interpreter's edge-coverage feedback, the text-level mutation API, the
/// six differential oracles (including a replay of the minimized
/// near-miss corpus in tests/inputs/fuzz/), the hierarchical reducer's
/// shrink guarantee, and byte-identical same-seed campaign reports.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Coverage.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Oracles.h"
#include "fuzz/Reducer.h"
#include "ir/IR.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "support/RawStream.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

using namespace usher;
using runtime::ExecutionReport;
using runtime::ExitReason;
using runtime::Interpreter;

namespace {

std::string printed(const ir::Module &M) {
  std::string Buf;
  raw_string_ostream OS(Buf);
  M.print(OS);
  return Buf;
}

unsigned countLines(const std::string &S) {
  unsigned N = 0;
  for (char C : S)
    N += C == '\n';
  return N;
}

//===----------------------------------------------------------------------===//
// Coverage counters
//===----------------------------------------------------------------------===//

TEST(Coverage, CountBucketsFollowAflClasses) {
  EXPECT_EQ(fuzz::countBucket(0), 0);
  EXPECT_EQ(fuzz::countBucket(1), 1);
  EXPECT_EQ(fuzz::countBucket(2), 2);
  EXPECT_EQ(fuzz::countBucket(3), 3);
  EXPECT_EQ(fuzz::countBucket(4), 4);
  EXPECT_EQ(fuzz::countBucket(7), 4);
  EXPECT_EQ(fuzz::countBucket(8), 5);
  EXPECT_EQ(fuzz::countBucket(15), 5);
  EXPECT_EQ(fuzz::countBucket(16), 6);
  EXPECT_EQ(fuzz::countBucket(31), 6);
  EXPECT_EQ(fuzz::countBucket(32), 7);
  EXPECT_EQ(fuzz::countBucket(127), 7);
  EXPECT_EQ(fuzz::countBucket(128), 8);
  EXPECT_EQ(fuzz::countBucket(~uint64_t(0)), 8);
}

TEST(Coverage, FeatureKeysSeparateDomains) {
  // Identical payloads in different domains must never collide.
  uint64_t A = fuzz::featureKey(fuzz::FeatureDomain::Edge, 42);
  uint64_t B = fuzz::featureKey(fuzz::FeatureDomain::Origin, 42);
  EXPECT_NE(A, B);
  // Payloads are masked to 56 bits, never allowed to clobber the tag.
  uint64_t C = fuzz::featureKey(fuzz::FeatureDomain::Edge, ~uint64_t(0));
  EXPECT_EQ(C >> 56, static_cast<uint64_t>(fuzz::FeatureDomain::Edge));
}

TEST(Coverage, MapCountsOnlyNewKeys) {
  fuzz::CoverageMap Map;
  fuzz::FeatureSet FS;
  FS.add(fuzz::FeatureDomain::Edge, 1);
  FS.add(fuzz::FeatureDomain::Edge, 2);
  FS.add(fuzz::FeatureDomain::Edge, 1); // duplicate within one set
  EXPECT_EQ(Map.addAll(FS), 2u);
  EXPECT_EQ(Map.size(), 2u);
  EXPECT_EQ(Map.addAll(FS), 0u) << "re-adding a seen set contributes nothing";

  fuzz::FeatureSet Next;
  Next.add(fuzz::FeatureDomain::Edge, 2);
  Next.add(fuzz::FeatureDomain::Rung, 2);
  EXPECT_EQ(Map.addAll(Next), 1u);
  EXPECT_TRUE(Map.contains(fuzz::featureKey(fuzz::FeatureDomain::Rung, 2)));
  EXPECT_FALSE(Map.contains(fuzz::featureKey(fuzz::FeatureDomain::Rung, 3)));
}

//===----------------------------------------------------------------------===//
// Interpreter edge coverage
//===----------------------------------------------------------------------===//

const char *LoopSrc = R"(
    func main() {
      i = 0;
      s = 0;
    head:
      c = i < 5;
      if c goto body;
      ret s;
    body:
      s = s + i;
      i = i + 1;
      goto head;
    }
  )";

TEST(EdgeCoverage, RecordsHitCountsWhenEnabled) {
  auto M = parser::parseModuleOrAbort(LoopSrc);
  runtime::ExecLimits Limits;
  Limits.CollectCoverage = true;
  ExecutionReport R =
      Interpreter(*M, nullptr, runtime::CostModel(), Limits).run();
  ASSERT_EQ(R.Reason, ExitReason::Finished);
  EXPECT_EQ(R.MainResult, 0 + 1 + 2 + 3 + 4);
  EXPECT_FALSE(R.EdgeHits.empty());
  EXPECT_GE(R.MaxFrameDepth, 1u);
  // The back edge (goto head) runs once per loop iteration; some edge
  // must carry all five hits.
  uint64_t MaxHits = 0;
  for (const auto &[Key, Hits] : R.EdgeHits)
    MaxHits = std::max(MaxHits, Hits);
  EXPECT_EQ(MaxHits, 5u);
}

TEST(EdgeCoverage, OffByDefault) {
  auto M = parser::parseModuleOrAbort(LoopSrc);
  ExecutionReport R = Interpreter(*M, nullptr).run();
  ASSERT_EQ(R.Reason, ExitReason::Finished);
  EXPECT_TRUE(R.EdgeHits.empty());
  EXPECT_EQ(R.MaxFrameDepth, 0u);
}

TEST(EdgeCoverage, FrameDepthTracksNestedCalls) {
  auto M = parser::parseModuleOrAbort(R"(
    func leaf(v) { ret v; }
    func mid(v) {
      r = leaf(v);
      ret r;
    }
    func main() {
      x = mid(3);
      ret x;
    }
  )");
  runtime::ExecLimits Limits;
  Limits.CollectCoverage = true;
  ExecutionReport R =
      Interpreter(*M, nullptr, runtime::CostModel(), Limits).run();
  ASSERT_EQ(R.Reason, ExitReason::Finished);
  EXPECT_EQ(R.MaxFrameDepth, 3u) << "main -> mid -> leaf";
}

//===----------------------------------------------------------------------===//
// Text-level mutation API
//===----------------------------------------------------------------------===//

TEST(Mutation, DeterministicAndSeedSensitive) {
  std::string Base = printed(*workload::generateProgram(11));
  EXPECT_EQ(workload::mutateProgram(Base, 5), workload::mutateProgram(Base, 5));
  // Some seed in a small window must produce a distinct mutant (a single
  // fixed seed could legally collide, e.g. two swaps of the same pair).
  unsigned Distinct = 0;
  for (uint64_t Seed = 0; Seed != 8; ++Seed)
    Distinct += workload::mutateProgram(Base, Seed) != Base;
  EXPECT_GE(Distinct, 4u);
}

TEST(Mutation, MutantsFrequentlySurviveTheValidityGate) {
  // Generate-and-filter only works if a healthy fraction of mutants pass
  // the parse + verify + trap-free-run gate.
  std::string Base = printed(*workload::generateProgram(21));
  unsigned Valid = 0;
  for (uint64_t Seed = 0; Seed != 30; ++Seed) {
    fuzz::OracleOptions Opts;
    Opts.CheckVariants = Opts.CheckSolver = false;
    Opts.CheckDiagnosis = Opts.CheckDegradation = false;
    if (fuzz::runOracles(workload::mutateProgram(Base, Seed), Opts).Valid)
      ++Valid;
  }
  EXPECT_GE(Valid, 10u);
}

TEST(Mutation, SpliceDeclaresDonorNames) {
  std::string Recv = printed(*workload::generateProgram(31));
  std::string Donor = printed(*workload::generateProgram(32));
  unsigned Parsed = 0;
  for (uint64_t Seed = 0; Seed != 20; ++Seed) {
    std::string S = workload::spliceProgram(Recv, Donor, Seed);
    EXPECT_EQ(workload::spliceProgram(Recv, Donor, Seed), S)
        << "splice must be deterministic";
    Parsed += parser::parseModule(S).succeeded();
  }
  // Splices re-declare donor-only names in the receiver, so the great
  // majority must at least parse (verification/termination may still
  // filter them later).
  EXPECT_GE(Parsed, 15u);
}

TEST(Mutation, WrapMainPreservesBehaviorAndDeepensCalls) {
  auto M = workload::generateProgram(41);
  std::string Base = printed(*M);
  ExecutionReport Before = Interpreter(*M, nullptr).run();
  ASSERT_EQ(Before.Reason, ExitReason::Finished);

  std::string Wrapped = workload::wrapMainInCall(Base);
  // Wrap twice: the second wrapper must pick a fresh name.
  std::string Twice = workload::wrapMainInCall(Wrapped);
  for (const std::string &Src : {Wrapped, Twice}) {
    auto P = parser::parseModule(Src);
    ASSERT_TRUE(P.succeeded()) << P.Errors.front();
    runtime::ExecLimits Limits;
    Limits.CollectCoverage = true;
    ExecutionReport After =
        Interpreter(*P.M, nullptr, runtime::CostModel(), Limits).run();
    ASSERT_EQ(After.Reason, ExitReason::Finished);
    EXPECT_EQ(After.MainResult, Before.MainResult)
        << "wrapping main must not change the program's result";
    EXPECT_EQ(After.OracleWarnings.size(), Before.OracleWarnings.size());
    unsigned Wraps = (&Src == &Wrapped) ? 1 : 2;
    EXPECT_GE(After.MaxFrameDepth, 1u + Wraps)
        << "each wrapper adds one call frame";
  }
}

TEST(Mutation, WrapMainWithoutMainIsEmpty) {
  EXPECT_EQ(workload::wrapMainInCall("func f() {\n  ret 0;\n}\n"), "");
}

//===----------------------------------------------------------------------===//
// Oracles: near-miss corpus replay
//===----------------------------------------------------------------------===//

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

struct CorpusExpectation {
  bool Valid = false;
  int64_t Result = 0;
  uint64_t Warnings = 0;
};

CorpusExpectation readExpected(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  CorpusExpectation E;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    std::string Key;
    LS >> Key;
    if (Key == "valid") {
      std::string V;
      LS >> V;
      E.Valid = V == "true";
    } else if (Key == "result") {
      LS >> E.Result;
    } else if (Key == "warnings") {
      LS >> E.Warnings;
    } else {
      ADD_FAILURE() << "unknown key '" << Key << "' in " << Path;
    }
  }
  return E;
}

class FuzzCorpus : public ::testing::TestWithParam<const char *> {};

TEST_P(FuzzCorpus, AllOraclesAgree) {
  const std::string Stem = GetParam();
  const std::string Dir = std::string(USHER_TEST_INPUT_DIR) + "/fuzz/";
  CorpusExpectation E = readExpected(Dir + Stem + ".expected");

  fuzz::OracleOutcome Out = fuzz::runOracles(readFile(Dir + Stem + ".tc"));
  ASSERT_EQ(Out.Valid, E.Valid) << Stem << ": " << Out.InvalidReason;
  EXPECT_EQ(Out.MainResult, E.Result) << Stem;
  EXPECT_EQ(Out.NumOracleWarnings, E.Warnings) << Stem;
  for (unsigned K = 0; K != fuzz::NumOracleKinds; ++K)
    EXPECT_TRUE(Out.Checked[K])
        << Stem << ": oracle "
        << fuzz::oracleKindName(static_cast<fuzz::OracleKind>(K))
        << " did not run";
  for (const fuzz::Divergence &D : Out.Divergences)
    ADD_FAILURE() << Stem << ": [" << fuzz::oracleKindName(D.Oracle) << "] "
                  << D.Detail;
}

INSTANTIATE_TEST_SUITE_P(NearMisses, FuzzCorpus,
                         ::testing::Values("call_undef", "strong_update_clean",
                                           "semi_strong_heap", "opt2_dup",
                                           "walk_partial", "global_uninit"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

TEST(Oracles, RejectsInvalidInputsWithoutCheckingAnything) {
  fuzz::OracleOutcome Out = fuzz::runOracles("func main( {");
  EXPECT_FALSE(Out.Valid);
  EXPECT_FALSE(Out.InvalidReason.empty());
  for (bool Checked : Out.Checked)
    EXPECT_FALSE(Checked);
  EXPECT_TRUE(Out.Features.Keys.empty());
}

TEST(Oracles, HarvestsAnalysisFeatures) {
  fuzz::OracleOutcome Out = fuzz::runOracles(
      readFile(std::string(USHER_TEST_INPUT_DIR) + "/fuzz/walk_partial.tc"));
  ASSERT_TRUE(Out.Valid);
  bool HasEdge = false, HasOrigin = false, HasRung = false;
  for (uint64_t Key : Out.Features.Keys) {
    auto D = static_cast<fuzz::FeatureDomain>(Key >> 56);
    HasEdge |= D == fuzz::FeatureDomain::Edge;
    HasOrigin |= D == fuzz::FeatureDomain::Origin;
    HasRung |= D == fuzz::FeatureDomain::Rung;
  }
  EXPECT_TRUE(HasEdge);
  EXPECT_TRUE(HasOrigin);
  EXPECT_TRUE(HasRung);
}

//===----------------------------------------------------------------------===//
// Reducer
//===----------------------------------------------------------------------===//

/// A fuzzer-shaped haystack: several uncalled filler functions, two called
/// ones, a long run of filler statements, and one buried UUV (u defined
/// only on a dead path, then branched on).
std::string bigBuggyProgram() {
  std::string S;
  for (int F = 0; F != 4; ++F) {
    S += "func filler" + std::to_string(F) + "(a) {\n";
    for (int I = 0; I != 8; ++I)
      S += "  t" + std::to_string(I) + " = a + " + std::to_string(I) + ";\n";
    S += "  ret t7;\n}\n";
  }
  S += "func main() {\n";
  S += "  z = 0;\n";
  S += "  if z goto def;\n";
  S += "  goto body;\n";
  S += "def:\n";
  S += "  u = 1;\n";
  S += "body:\n";
  for (int I = 0; I != 50; ++I)
    S += "  v" + std::to_string(I) + " = " + std::to_string(I) + ";\n";
  S += "  c0 = filler0(v3);\n";
  S += "  c1 = filler1(c0);\n";
  S += "  if u goto t;\n";
  S += "  ret 0;\n";
  S += "t:\n";
  S += "  ret 1;\n";
  S += "}\n";
  return S;
}

/// "Still exhibits the bug": parses, runs to completion, and the oracle
/// reports at least one UUV.
bool stillWarns(const std::string &Source) {
  parser::ParseResult P = parser::parseModule(Source);
  if (!P.succeeded())
    return false;
  runtime::ExecLimits Limits;
  Limits.MaxSteps = 100'000;
  ExecutionReport R =
      Interpreter(*P.M, nullptr, runtime::CostModel(), Limits).run();
  return R.Reason == ExitReason::Finished && !R.OracleWarnings.empty();
}

TEST(Reducer, ShrinksBuriedBugBelowQuarterSize) {
  std::string Big = bigBuggyProgram();
  unsigned BigLines = countLines(Big);
  ASSERT_GE(BigLines, 80u) << "the haystack must be large enough to matter";
  ASSERT_TRUE(stillWarns(Big));

  fuzz::ReduceResult RR = fuzz::reduceProgram(Big, stillWarns);
  EXPECT_TRUE(stillWarns(RR.Source)) << RR.Source;
  unsigned SmallLines = countLines(RR.Source);
  EXPECT_LE(SmallLines * 4, BigLines)
      << "reduced to " << SmallLines << " of " << BigLines << " lines:\n"
      << RR.Source;
  EXPECT_GT(RR.NumChecks, 0u);
  EXPECT_LE(RR.NumChecks, fuzz::ReducerOptions().MaxChecks);
}

TEST(Reducer, IsDeterministic) {
  std::string Big = bigBuggyProgram();
  fuzz::ReduceResult A = fuzz::reduceProgram(Big, stillWarns);
  fuzz::ReduceResult B = fuzz::reduceProgram(Big, stillWarns);
  EXPECT_EQ(A.Source, B.Source);
  EXPECT_EQ(A.NumChecks, B.NumChecks);
}

TEST(Reducer, ReturnsInputWhenPredicateFailsOnIt) {
  std::string Clean = "func main() {\n  x = 1;\n  ret x;\n}\n";
  fuzz::ReduceResult RR = fuzz::reduceProgram(Clean, stillWarns);
  EXPECT_EQ(RR.Source, Clean);
}

TEST(Reducer, RespectsCheckBudget) {
  fuzz::ReducerOptions Opts;
  Opts.MaxChecks = 5;
  fuzz::ReduceResult RR =
      fuzz::reduceProgram(bigBuggyProgram(), stillWarns, Opts);
  EXPECT_LE(RR.NumChecks, 5u);
  EXPECT_TRUE(stillWarns(RR.Source))
      << "a truncated reduction must still satisfy the predicate";
}

//===----------------------------------------------------------------------===//
// Campaign driver
//===----------------------------------------------------------------------===//

TEST(Fuzzer, SmokeCampaignIsCleanAndCovered) {
  fuzz::FuzzOptions Opts;
  Opts.Seed = 9;
  Opts.Runs = 32;
  fuzz::FuzzReport Rep = fuzz::runFuzzer(Opts);
  for (const fuzz::DivergenceRecord &D : Rep.Divergences)
    ADD_FAILURE() << "[" << fuzz::oracleKindName(D.Oracle) << "] run " << D.Run
                  << ": " << D.Detail << "\n"
                  << D.Reduced;
  EXPECT_TRUE(Rep.clean());
  EXPECT_EQ(Rep.NumValid + Rep.NumInvalid, Rep.Runs);
  EXPECT_GT(Rep.NumValid, 0u);
  EXPECT_GT(Rep.CorpusSize, 0u);
  EXPECT_GT(Rep.CoverageKeys, 0u);
  for (unsigned K = 0; K != fuzz::NumOracleKinds; ++K)
    EXPECT_EQ(Rep.OracleChecked[K], Rep.NumValid)
        << "every valid input must pass through every oracle";
}

TEST(Fuzzer, SameSeedCampaignsAreByteIdentical) {
  fuzz::FuzzOptions Opts;
  Opts.Seed = 1234;
  Opts.Runs = 40;
  fuzz::FuzzReport A = fuzz::runFuzzer(Opts);
  fuzz::FuzzReport B = fuzz::runFuzzer(Opts);
  std::string JA, JB;
  raw_string_ostream OA(JA), OB(JB);
  A.printJson(OA);
  B.printJson(OB);
  EXPECT_EQ(JA, JB);
  EXPECT_NE(JA.find("\"schema\": \"usher-fuzz-v1\""), std::string::npos);
}

TEST(Fuzzer, DifferentSeedsScheduleDifferently) {
  fuzz::FuzzOptions A, B;
  A.Seed = 1;
  B.Seed = 2;
  A.Runs = B.Runs = 40;
  fuzz::FuzzReport RA = fuzz::runFuzzer(A);
  fuzz::FuzzReport RB = fuzz::runFuzzer(B);
  std::string JA, JB;
  raw_string_ostream OA(JA), OB(JB);
  RA.printJson(OA);
  RB.printJson(OB);
  EXPECT_NE(JA, JB);
}

} // namespace
