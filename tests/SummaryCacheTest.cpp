//===- tests/SummaryCacheTest.cpp - content-hash invalidation exactness ----===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The summary cache's incrementality contract: editing one function
/// invalidates exactly that function's summary plus the callers its
/// summary-*value* delta escapes into (difference propagation), never
/// the whole program. A value-preserving edit recomputes only the edited
/// function; a value-changing edit additionally recomputes its direct
/// caller — and stops there when the caller's own summary value absorbs
/// the delta. Stale records (key present, callee value hashes changed)
/// are counted as discarded and recomputed; truncated persisted payloads
/// are rejected by the deserializer. The serve session persists the same
/// cache through its SnapshotStore, so an edited module's reply is byte-
/// identical to a cold session's while re-analyzing only the dirty set.
///
/// All edits here are instruction-count-preserving: call sites are
/// absolute instruction ids, so an edit that shifts later functions'
/// ids changes their segment hashes too (a documented caveat — see
/// DESIGN.md; the invalidation unit is the content-hashed segment, and
/// id-shifting edits dirty every shifted segment honestly).
///
//===----------------------------------------------------------------------===//

#include "core/Usher.h"
#include "parser/Parser.h"
#include "serve/Session.h"
#include "support/RawStream.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

using namespace usher;
using core::EngineKind;
using core::ToolVariant;
using core::UsherOptions;

namespace {

// Three versions of one program, g -> f -> main (callees first; TinyC
// resolves calls at parse time). Every edit keeps the instruction count.
//
// VersionA: g adds both formals.
const char *VersionA = R"(
  func g(a, b) {
    t = a + b;
    ret t;
  }
  func f(x) {
    r = g(x, x);
    ret r;
  }
  func main() {
    w = 1;
    v = f(w);
    ret v;
  }
)";
// VersionB: operand swap in g — different segment bytes, same summary
// value (both formals still flow to the return).
const char *VersionB = R"(
  func g(a, b) {
    t = b + a;
    ret t;
  }
  func f(x) {
    r = g(x, x);
    ret r;
  }
  func main() {
    w = 1;
    v = f(w);
    ret v;
  }
)";
// VersionC: g drops formal b — its summary value changes, but f passes
// the same variable to both formals, so f's *own* summary value (and
// therefore main's dependency signature) is unchanged.
const char *VersionC = R"(
  func g(a, b) {
    t = a + a;
    ret t;
  }
  func f(x) {
    r = g(x, x);
    ret r;
  }
  func main() {
    w = 1;
    v = f(w);
    ret v;
  }
)";

struct RunResult {
  std::string Gamma;
  analysis::SummaryEngineStats Summary;
};

RunResult analyze(const char *Source, analysis::SummaryCache *Cache,
                  EngineKind Engine = EngineKind::Summary) {
  auto M = parser::parseModuleOrAbort(Source);
  UsherOptions Opts;
  Opts.Variant = ToolVariant::UsherOptI; // Single resolution per run.
  Opts.Engine = Engine;
  Opts.SummaryCache = Cache;
  core::UsherResult R = core::runUsher(*M, Opts);
  RunResult Out;
  Out.Summary = R.Stats.Summary;
  raw_string_ostream OS(Out.Gamma);
  for (uint32_t N = 0; N != R.G->numNodes(); ++N)
    if (R.Gamma->mayBeUndefined(N))
      OS << N << ' ';
  return Out;
}

std::string globalGamma(const char *Source) {
  return analyze(Source, nullptr, EngineKind::Global).Gamma;
}

//===----------------------------------------------------------------------===//
// Invalidation exactness
//===----------------------------------------------------------------------===//

TEST(SummaryCache, UneditedRerunReusesEverySummary) {
  analysis::SummaryCache Cache;
  RunResult Cold = analyze(VersionA, &Cache);
  EXPECT_EQ(Cold.Summary.SummariesComputed, 3u) << "g, f, main";
  EXPECT_EQ(Cold.Summary.SummariesReused, 0u);

  RunResult Warm = analyze(VersionA, &Cache);
  EXPECT_EQ(Warm.Summary.SummariesComputed, 0u);
  EXPECT_EQ(Warm.Summary.SummariesReused, 3u);
  EXPECT_EQ(Warm.Gamma, Cold.Gamma);
  EXPECT_EQ(Warm.Gamma, globalGamma(VersionA));
  EXPECT_EQ(Cache.stats().StaleDiscarded, 0u);
}

TEST(SummaryCache, ValuePreservingEditRecomputesOnlyTheEditedFunction) {
  analysis::SummaryCache Cache;
  analyze(VersionA, &Cache);

  // g's segment hash changed (operand order), so its record misses; its
  // recomputed summary hashes to the same value, so f and main revalidate
  // and reuse — no stale discards, nothing else recomputed.
  RunResult Edited = analyze(VersionB, &Cache);
  EXPECT_EQ(Edited.Summary.SummariesComputed, 1u) << "only g";
  EXPECT_EQ(Edited.Summary.SummariesReused, 2u) << "f and main";
  EXPECT_EQ(Cache.stats().StaleDiscarded, 0u);
  EXPECT_EQ(Edited.Gamma, globalGamma(VersionB));
}

TEST(SummaryCache, ValueChangingEditRecomputesTheEscapingClosureOnly) {
  analysis::SummaryCache Cache;
  analyze(VersionA, &Cache);

  // g's summary value changes, so f's record — found under its unchanged
  // key — fails dependency revalidation and is discarded (the "stale
  // hash" case). f's recomputed summary still hashes to its old value
  // (x reaches g's surviving formal either way), so the delta closure is
  // cut before main: main's record revalidates and is reused.
  RunResult Edited = analyze(VersionC, &Cache);
  EXPECT_EQ(Edited.Summary.SummariesComputed, 2u) << "g and f";
  EXPECT_EQ(Edited.Summary.SummariesReused, 1u) << "main survives the delta";
  EXPECT_GE(Cache.stats().StaleDiscarded, 1u) << "f's record was stale";
  EXPECT_EQ(Edited.Gamma, globalGamma(VersionC));
}

//===----------------------------------------------------------------------===//
// Persistence-layer damage
//===----------------------------------------------------------------------===//

TEST(SummaryCache, TruncatedPersistedRecordIsDiscardedNotReused) {
  // Prime a persistence map, then serve truncated payloads from it: every
  // record is found but rejected, the run recomputes everything, and the
  // result is unaffected.
  std::map<uint64_t, std::string> Disk;
  {
    analysis::SummaryCache Cache;
    Cache.setPersistence(nullptr, [&Disk](uint64_t K, const std::string &P) {
      Disk[K] = P;
    });
    analyze(VersionA, &Cache);
  }
  ASSERT_FALSE(Disk.empty());

  analysis::SummaryCache Cache;
  Cache.setPersistence(
      [&Disk](uint64_t K, std::string &P) {
        auto It = Disk.find(K);
        if (It == Disk.end())
          return false;
        P = It->second.substr(0, It->second.size() / 2);
        return true;
      },
      nullptr);
  RunResult R = analyze(VersionA, &Cache);
  EXPECT_EQ(R.Summary.SummariesReused, 0u);
  EXPECT_EQ(R.Summary.SummariesComputed, 3u);
  EXPECT_GE(Cache.stats().StaleDiscarded, 1u);
  EXPECT_EQ(R.Gamma, globalGamma(VersionA));
}

//===----------------------------------------------------------------------===//
// Serve integration: warm == cold, edits re-analyze only the dirty set
//===----------------------------------------------------------------------===//

serve::Request analyzeRequest(const char *Source, uint64_t Id) {
  serve::Request Rq;
  Rq.Kind = serve::Op::Analyze;
  Rq.Id = Id;
  Rq.Source = Source;
  return Rq;
}

TEST(SummaryCache, ServeWarmReplyIsByteIdenticalToCold) {
  serve::SessionOptions SO;
  SO.Engine = EngineKind::Summary;
  serve::Session S(SO);

  serve::Reply Cold = S.handle(analyzeRequest(VersionA, 1));
  ASSERT_EQ(Cold.Status, serve::ReplyStatus::Ok) << Cold.Payload;
  serve::Reply Warm = S.handle(analyzeRequest(VersionA, 2));
  ASSERT_EQ(Warm.Status, serve::ReplyStatus::Ok);
  EXPECT_EQ(Warm.Payload, Cold.Payload);
  EXPECT_EQ(S.servedWarm(), 1u);
}

TEST(SummaryCache, ServeEditReusesSummariesAndMatchesColdSession) {
  serve::SessionOptions SO;
  SO.Engine = EngineKind::Summary;
  serve::Session Edited(SO);

  serve::Reply A = Edited.handle(analyzeRequest(VersionA, 1));
  ASSERT_EQ(A.Status, serve::ReplyStatus::Ok) << A.Payload;
  const uint64_t HitsBefore = Edited.summaryCache().stats().Hits;

  // The edited module misses the whole-reply snapshot (new module key)
  // but reuses the unedited functions' summaries from the same store.
  serve::Reply C = Edited.handle(analyzeRequest(VersionC, 2));
  ASSERT_EQ(C.Status, serve::ReplyStatus::Ok) << C.Payload;
  EXPECT_EQ(Edited.servedWarm(), 0u);
  EXPECT_GT(Edited.summaryCache().stats().Hits, HitsBefore)
      << "main's summary must be served from the store";
  EXPECT_GE(Edited.summaryCache().stats().StaleDiscarded, 1u)
      << "f's record is stale after g's value changed";

  serve::Session Fresh(SO);
  serve::Reply FreshC = Fresh.handle(analyzeRequest(VersionC, 3));
  ASSERT_EQ(FreshC.Status, serve::ReplyStatus::Ok);
  EXPECT_EQ(C.Payload, FreshC.Payload)
      << "summary-cache-assisted reply must equal a cold session's";
}

} // namespace
