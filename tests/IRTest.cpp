//===- tests/IRTest.cpp - IR, verifier and support unit tests --------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/BitSet.h"
#include "support/Casting.h"
#include "support/RNG.h"
#include "support/RawStream.h"

#include <gtest/gtest.h>

using namespace usher;
using namespace usher::ir;

namespace {

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

TEST(Casting, IsaAndDynCastDispatchOnKind) {
  Module M;
  Function *F = M.createFunction("f");
  Variable *X = F->createVariable("x");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Instruction *Copy = B.createCopy(X, Operand::constant(1));
  Instruction *Ret = B.createRet(Operand::var(X));

  EXPECT_TRUE(isa<CopyInst>(Copy));
  EXPECT_FALSE(isa<RetInst>(Copy));
  EXPECT_TRUE(isa<RetInst>(Ret));
  EXPECT_NE(dyn_cast<CopyInst>(Copy), nullptr);
  EXPECT_EQ(dyn_cast<CopyInst>(Ret), nullptr);
  EXPECT_EQ(dyn_cast_or_null<CopyInst>(static_cast<Instruction *>(nullptr)),
            nullptr);
  EXPECT_EQ(cast<CopyInst>(Copy)->getSrc().getConst(), 1);
}

//===----------------------------------------------------------------------===//
// Operands
//===----------------------------------------------------------------------===//

TEST(Operand, KindsAndAccessors) {
  Module M;
  Function *F = M.createFunction("f");
  Variable *V = F->createVariable("v");
  MemObject *G = M.createObject("g", Region::Global, 2, true, false);

  Operand C = Operand::constant(-7);
  EXPECT_TRUE(C.isConst());
  EXPECT_EQ(C.getConst(), -7);

  Operand VV = Operand::var(V);
  EXPECT_TRUE(VV.isVar());
  EXPECT_EQ(VV.getVar(), V);

  Operand GG = Operand::global(G);
  EXPECT_TRUE(GG.isGlobal());
  EXPECT_EQ(GG.getGlobal(), G);

  EXPECT_TRUE(Operand().isNone());
}

TEST(Instruction, CollectAndRewriteOperands) {
  Module M;
  Function *F = M.createFunction("f");
  Variable *A = F->createVariable("a");
  Variable *B2 = F->createVariable("b");
  Variable *X = F->createVariable("x");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Instruction *Bin =
      B.createBinOp(X, BinOpcode::Add, Operand::var(A), Operand::var(B2));

  std::vector<Variable *> Used;
  Bin->collectUsedVars(Used);
  ASSERT_EQ(Used.size(), 2u);

  // Rewrite every use of `a` to the constant 9.
  Bin->rewriteOperands([&](Operand Op) {
    if (Op.isVar() && Op.getVar() == A)
      return Operand::constant(9);
    return Op;
  });
  EXPECT_TRUE(cast<BinOpInst>(Bin)->getLHS().isConst());
  EXPECT_TRUE(cast<BinOpInst>(Bin)->getRHS().isVar());
}

TEST(BasicBlock, SuccessorsOfTerminators) {
  Module M;
  Function *F = M.createFunction("f");
  Variable *X = F->createVariable("x");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *B1 = F->createBlock("b");
  BasicBlock *C = F->createBlock("c");
  IRBuilder B(M);
  B.setInsertPoint(A);
  B.createCopy(X, Operand::constant(1));
  B.createCondBr(Operand::var(X), B1, C);
  B.setInsertPoint(B1);
  B.createGoto(C);
  B.setInsertPoint(C);
  B.createRet(Operand());

  std::vector<BasicBlock *> Succs;
  A->getSuccessors(Succs);
  EXPECT_EQ(Succs.size(), 2u);
  Succs.clear();
  B1->getSuccessors(Succs);
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_EQ(Succs[0], C);
  Succs.clear();
  C->getSuccessors(Succs);
  EXPECT_TRUE(Succs.empty());
}

TEST(Module, RenumberAssignsDenseIds) {
  Module M;
  Function *F = M.createFunction("main");
  Variable *X = F->createVariable("x");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createCopy(X, Operand::constant(1));
  B.createRet(Operand::var(X));
  M.renumber();
  EXPECT_EQ(M.instructionCount(), 2u);
  EXPECT_EQ(BB->instructions()[0]->getId(), 0u);
  EXPECT_EQ(BB->instructions()[1]->getId(), 1u);
}

TEST(Module, PurgeObjectsRenumbersIds) {
  Module M;
  MemObject *A = M.createObject("a", Region::Global, 1, true, false);
  MemObject *B = M.createObject("b", Region::Global, 1, true, false);
  MemObject *C = M.createObject("c", Region::Global, 1, true, false);
  (void)B;
  M.purgeObjects([&](const MemObject *Obj) { return Obj->getName() == "b"; });
  ASSERT_EQ(M.objects().size(), 2u);
  EXPECT_EQ(A->getId(), 0u);
  EXPECT_EQ(C->getId(), 1u);
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST(Verifier, AcceptsWellFormedModule) {
  Module M;
  Function *F = M.createFunction("main");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createRet(Operand());
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(M, Errors)) << Errors.front();
}

TEST(Verifier, RejectsMissingMain) {
  Module M;
  Function *F = M.createFunction("notmain");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createRet(Operand());
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(Verifier, RejectsUnterminatedBlock) {
  Module M;
  Function *F = M.createFunction("main");
  Variable *X = F->createVariable("x");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createCopy(X, Operand::constant(1));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(Verifier, RejectsCrossFunctionVariableUse) {
  Module M;
  Function *F = M.createFunction("main");
  Function *G = M.createFunction("g");
  Variable *Foreign = G->createVariable("foreign");
  BasicBlock *GB = G->createBlock("entry");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(GB);
  B.createRet(Operand());
  B.setInsertPoint(BB);
  B.createRet(Operand::var(Foreign));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

TEST(Verifier, RejectsCallArgumentMismatch) {
  Module M;
  Function *Callee = M.createFunction("callee");
  Callee->createVariable("p", /*IsParam=*/true);
  BasicBlock *CB = Callee->createBlock("entry");
  Function *F = M.createFunction("main");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(CB);
  B.createRet(Operand());
  B.setInsertPoint(BB);
  B.createCall(nullptr, Callee, {});
  B.createRet(Operand());
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, Errors));
}

//===----------------------------------------------------------------------===//
// Support
//===----------------------------------------------------------------------===//

TEST(BitSetTest, SetTestClearAndCount) {
  BitSet S(200);
  EXPECT_TRUE(S.empty());
  EXPECT_TRUE(S.set(0));
  EXPECT_TRUE(S.set(63));
  EXPECT_TRUE(S.set(64));
  EXPECT_TRUE(S.set(199));
  EXPECT_FALSE(S.set(64)) << "setting twice reports no change";
  EXPECT_EQ(S.count(), 4u);
  S.clear(63);
  EXPECT_FALSE(S.test(63));
  EXPECT_EQ(S.count(), 3u);
}

TEST(BitSetTest, UnionWithReportsChange) {
  BitSet A(100), B(100);
  A.set(3);
  B.set(3);
  EXPECT_FALSE(A.unionWith(B));
  B.set(77);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_TRUE(A.test(77));
}

TEST(BitSetTest, ForEachVisitsAscending) {
  BitSet S(130);
  S.set(1);
  S.set(64);
  S.set(129);
  std::vector<uint32_t> Seen;
  S.forEach([&](size_t I) { Seen.push_back(static_cast<uint32_t>(I)); });
  EXPECT_EQ(Seen, (std::vector<uint32_t>{1, 64, 129}));
  EXPECT_EQ(S.toVector(), Seen);
}

TEST(RNGTest, DeterministicAndBounded) {
  RNG A(12345), B(12345);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  RNG C(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(C.below(17), 17u);
    int64_t V = C.range(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
}

TEST(RawStreamTest, FormatsFundamentals) {
  std::string S;
  raw_string_ostream OS(S);
  OS << "x=" << 42 << ", neg=" << -7 << ", big=" << 1234567890123ULL
     << ", flag=" << true << '!';
  EXPECT_EQ(S, "x=42, neg=-7, big=1234567890123, flag=true!");
}

TEST(RawStreamTest, Justification) {
  std::string S;
  raw_string_ostream OS(S);
  OS.leftJustify("ab", 5);
  OS << '|';
  OS.rightJustify("cd", 4);
  EXPECT_EQ(S, "ab   |  cd");
}

} // namespace
