//===- tests/BudgetTest.cpp - Budgets, faults, degradation ladder ----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the Budget token and the fault-spec parser, plus
/// end-to-end tests that each injected phase exhaustion lands the driver
/// on the expected rung of the degradation ladder.
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/PointerAnalysis.h"
#include "core/Usher.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "support/Budget.h"
#include "support/FaultInjection.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

using namespace usher;
using core::ToolVariant;

namespace {

//===----------------------------------------------------------------------===//
// Budget token
//===----------------------------------------------------------------------===//

TEST(Budget, UnlimitedNeverExhausts) {
  Budget B;
  B.beginPhase(BudgetPhase::PointerAnalysis);
  for (int I = 0; I != 100'000; ++I)
    ASSERT_TRUE(B.step());
  EXPECT_FALSE(B.exhausted());
  EXPECT_EQ(B.exhaustKind(), ExhaustKind::None);
}

TEST(Budget, StepLimitExhausts) {
  BudgetLimits L;
  L.MaxStepsPerPhase = 10;
  Budget B(L);
  B.beginPhase(BudgetPhase::Definedness);
  uint64_t Granted = 0;
  while (B.step() && Granted < 1000)
    ++Granted;
  EXPECT_EQ(Granted, 10u);
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.exhaustKind(), ExhaustKind::Steps);
  // Once exhausted, it stays exhausted until re-armed.
  EXPECT_FALSE(B.step());
}

TEST(Budget, BeginPhaseRearms) {
  BudgetLimits L;
  L.MaxStepsPerPhase = 1;
  Budget B(L);
  B.beginPhase(BudgetPhase::OptI);
  EXPECT_TRUE(B.step());
  EXPECT_FALSE(B.step());
  ASSERT_TRUE(B.exhausted());
  B.beginPhase(BudgetPhase::OptII);
  EXPECT_FALSE(B.exhausted());
  EXPECT_EQ(B.currentPhase(), BudgetPhase::OptII);
  EXPECT_TRUE(B.step());
}

TEST(Budget, DeadlineExhausts) {
  BudgetLimits L;
  L.PhaseDeadlineMs = 1;
  Budget B(L);
  B.beginPhase(BudgetPhase::PointerAnalysis);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The clock is probed every 128 calls, so a bounded number of steps must
  // observe the expired deadline.
  bool Stopped = false;
  for (int I = 0; I != 1000 && !Stopped; ++I)
    Stopped = !B.step();
  EXPECT_TRUE(Stopped);
  EXPECT_EQ(B.exhaustKind(), ExhaustKind::Deadline);
}

TEST(Budget, InjectedFaultFiresAtStep) {
  FaultPlan F;
  F.Phase = BudgetPhase::Definedness;
  F.AtStep = 5;
  Budget B(BudgetLimits{}, F);
  // A different phase is unaffected by the fault.
  B.beginPhase(BudgetPhase::PointerAnalysis);
  for (int I = 0; I != 100; ++I)
    ASSERT_TRUE(B.step());
  // The named phase gets exactly AtStep steps.
  B.beginPhase(BudgetPhase::Definedness);
  uint64_t Granted = 0;
  while (B.step() && Granted < 100)
    ++Granted;
  EXPECT_EQ(Granted, 5u);
  EXPECT_EQ(B.exhaustKind(), ExhaustKind::Injected);
}

TEST(Budget, AtStepZeroFiresOnArm) {
  FaultPlan F;
  F.Phase = BudgetPhase::OptII;
  F.AtStep = 0;
  Budget B(BudgetLimits{}, F);
  B.beginPhase(BudgetPhase::OptII);
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.exhaustKind(), ExhaustKind::Injected);
  EXPECT_FALSE(B.step());
}

TEST(Budget, OnceFiresOnFirstArmOnly) {
  FaultPlan F;
  F.Phase = BudgetPhase::PointerAnalysis;
  F.AtStep = 0;
  F.Once = true;
  Budget B(BudgetLimits{}, F);
  B.beginPhase(BudgetPhase::PointerAnalysis);
  EXPECT_TRUE(B.exhausted());
  B.beginPhase(BudgetPhase::PointerAnalysis);
  EXPECT_FALSE(B.exhausted());
  for (int I = 0; I != 100; ++I)
    ASSERT_TRUE(B.step());
}

//===----------------------------------------------------------------------===//
// Fault-spec parsing
//===----------------------------------------------------------------------===//

TEST(FaultSpec, ParsesPhaseAtStep) {
  auto P = parseFaultSpec("pta@0");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Phase, BudgetPhase::PointerAnalysis);
  EXPECT_EQ(P->AtStep, 0u);
  EXPECT_FALSE(P->Once);

  P = parseFaultSpec("definedness@123:once");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Phase, BudgetPhase::Definedness);
  EXPECT_EQ(P->AtStep, 123u);
  EXPECT_TRUE(P->Once);

  P = parseFaultSpec("opt1@7");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Phase, BudgetPhase::OptI);

  P = parseFaultSpec("opt2@9");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Phase, BudgetPhase::OptII);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  std::string Err;
  EXPECT_FALSE(parseFaultSpec("bogus", &Err).has_value());
  EXPECT_NE(Err.find("missing '@'"), std::string::npos);
  EXPECT_FALSE(parseFaultSpec("nophase@3", &Err).has_value());
  EXPECT_NE(Err.find("unknown phase"), std::string::npos);
  EXPECT_FALSE(parseFaultSpec("pta@", &Err).has_value());
  EXPECT_NE(Err.find("missing step count"), std::string::npos);
  EXPECT_FALSE(parseFaultSpec("pta@x7", &Err).has_value());
  EXPECT_NE(Err.find("non-numeric"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Degradation ladder (end to end through runUsher)
//===----------------------------------------------------------------------===//

core::UsherResult runWithFault(ir::Module &M, ToolVariant V, BudgetPhase P,
                               bool Once = false) {
  core::UsherOptions Opts;
  Opts.Variant = V;
  FaultPlan F;
  F.Phase = P;
  F.AtStep = 0;
  F.Once = Once;
  Opts.Fault = F;
  return core::runUsher(M, Opts);
}

TEST(DegradationLadder, NoBudgetMeansNoDegradation) {
  auto M = workload::generateProgram(1);
  core::UsherOptions Opts;
  core::UsherResult R = core::runUsher(*M, Opts);
  EXPECT_FALSE(R.Degradation.Degraded);
  EXPECT_EQ(R.Degradation.Rung, ToolVariant::UsherFull);
  EXPECT_TRUE(R.Degradation.summary().empty());
}

TEST(DegradationLadder, PtaInjectionFallsToMSan) {
  auto M = workload::generateProgram(2);
  core::UsherResult R =
      runWithFault(*M, ToolVariant::UsherFull, BudgetPhase::PointerAnalysis);
  EXPECT_TRUE(R.Degradation.Degraded);
  EXPECT_EQ(R.Degradation.Rung, ToolVariant::MSanFull);
  // Three rungs were tried and failed, in ladder order: the
  // field-insensitive Andersen retry, the unification-solver retry, and
  // only then the MSan landing.
  ASSERT_EQ(R.Degradation.Steps.size(), 3u);
  EXPECT_EQ(R.Degradation.Steps[0].Kind, ExhaustKind::Injected);
  EXPECT_NE(R.Degradation.Steps[0].Action.find("field-insensitive"),
            std::string::npos);
  EXPECT_NE(R.Degradation.Steps[1].Action.find("unification"),
            std::string::npos);
  EXPECT_NE(R.Degradation.summary().find("MSAN"), std::string::npos);
  // The full plan still runs the program to completion.
  runtime::ExecutionReport Rep = runtime::Interpreter(*M, &R.Plan).run();
  EXPECT_EQ(Rep.Reason, runtime::ExitReason::Finished);
}

TEST(DegradationLadder, PtaOnceInjectionRetriesFieldInsensitive) {
  auto M = workload::generateProgram(3);
  core::UsherResult R = runWithFault(*M, ToolVariant::UsherFull,
                                     BudgetPhase::PointerAnalysis,
                                     /*Once=*/true);
  // The field-insensitive retry succeeds, so the requested rung survives —
  // degraded in precision, not in guarantees.
  EXPECT_TRUE(R.Degradation.Degraded);
  EXPECT_EQ(R.Degradation.Rung, ToolVariant::UsherFull);
  ASSERT_EQ(R.Degradation.Steps.size(), 1u);
  EXPECT_NE(R.Degradation.Steps[0].Action.find("field-insensitive"),
            std::string::npos);
  EXPECT_FALSE(R.PA->options().FieldSensitive);
}

TEST(DegradationLadder, DefinednessInjectionLandsOnTLAT) {
  auto M = workload::generateProgram(4);
  core::UsherResult R =
      runWithFault(*M, ToolVariant::UsherFull, BudgetPhase::Definedness);
  EXPECT_TRUE(R.Degradation.Degraded);
  EXPECT_EQ(R.Degradation.Rung, ToolVariant::UsherTLAT);
  ASSERT_TRUE(R.Gamma != nullptr);
  EXPECT_TRUE(R.Gamma->wasPessimized());
  EXPECT_EQ(R.Stats.NumRedirectedNodes, 0u);
}

TEST(DegradationLadder, DefinednessInjectionUnderTLStaysTL) {
  auto M = workload::generateProgram(5);
  core::UsherResult R =
      runWithFault(*M, ToolVariant::UsherTL, BudgetPhase::Definedness);
  EXPECT_TRUE(R.Degradation.Degraded);
  EXPECT_EQ(R.Degradation.Rung, ToolVariant::UsherTL);
}

TEST(DegradationLadder, OptIIInjectionLandsOnOptI) {
  auto M = workload::generateProgram(6);
  core::UsherResult R =
      runWithFault(*M, ToolVariant::UsherFull, BudgetPhase::OptII);
  EXPECT_TRUE(R.Degradation.Degraded);
  EXPECT_EQ(R.Degradation.Rung, ToolVariant::UsherOptI);
  EXPECT_EQ(R.Stats.NumRedirectedNodes, 0u);
}

TEST(DegradationLadder, OptIInjectionLandsOnTLAT) {
  auto M = workload::generateProgram(7);
  core::UsherResult R =
      runWithFault(*M, ToolVariant::UsherOptI, BudgetPhase::OptI);
  EXPECT_TRUE(R.Degradation.Degraded);
  EXPECT_EQ(R.Degradation.Rung, ToolVariant::UsherTLAT);
  EXPECT_EQ(R.Stats.NumSimplifiedMFCs, 0u);
}

TEST(DegradationLadder, TinyStepBudgetTerminatesOnMSan) {
  // A genuine (non-injected) exhaustion: one worklist iteration per phase
  // cannot solve anything, so every attempt fails fast and the run lands
  // on the terminal rung instead of hanging.
  auto M = workload::generateProgram(8);
  core::UsherOptions Opts;
  Opts.Limits.MaxStepsPerPhase = 1;
  core::UsherResult R = core::runUsher(*M, Opts);
  EXPECT_TRUE(R.Degradation.Degraded);
  EXPECT_EQ(R.Degradation.Rung, ToolVariant::MSanFull);
  for (const core::DegradationStep &S : R.Degradation.Steps)
    EXPECT_EQ(S.Kind, ExhaustKind::Steps);
  runtime::ExecutionReport Rep = runtime::Interpreter(*M, &R.Plan).run();
  EXPECT_EQ(Rep.Reason, runtime::ExitReason::Finished);
}

//===----------------------------------------------------------------------===//
// Solver/Budget composition: SCC collapsing vs step accounting
//===----------------------------------------------------------------------===//
//
// The optimized Andersen engine collapses copy cycles mid-solve, leaving
// stale worklist entries for nodes that were merged into an SCC
// representative. Those pops must be skipped WITHOUT charging the Budget
// (the representative's own pop accounts for the whole component), and
// the solver's own charge counter must stay in exact sync with the token
// so injected faults remain deterministic.

/// A drip-fed copy ring (see bench/bench_solver.cpp): staged loads feed
/// one new points-to bit at a time into a 16-node copy cycle, so the ring
/// collapses mid-solve while member entries are still queued.
std::string ringWorkload() {
  const unsigned K = 24, RingSize = 16, Tail = 16;
  std::string Src = "func main() {\n  r0 = 0;\n";
  for (unsigned I = 1; I != RingSize; ++I)
    Src += "  r" + std::to_string(I) + " = r" + std::to_string(I - 1) + ";\n";
  Src += "  r0 = r" + std::to_string(RingSize - 1) + ";\n";
  Src += "  t0 = r0;\n";
  for (unsigned I = 1; I != Tail; ++I)
    Src += "  t" + std::to_string(I) + " = t" + std::to_string(I - 1) + ";\n";
  for (unsigned I = 1; I <= K; ++I)
    Src += "  q" + std::to_string(I) + " = 0;\n";
  for (unsigned I = 1; I <= K; ++I)
    Src += "  c" + std::to_string(I) + " = alloc heap 1 uninit;\n";
  for (unsigned I = 1; I != K; ++I)
    Src += "  *c" + std::to_string(I) + " = c" + std::to_string(I + 1) + ";\n";
  for (unsigned I = 1; I != K; ++I)
    Src += "  q" + std::to_string(I + 1) + " = *q" + std::to_string(I) + ";\n";
  for (unsigned I = 1; I <= K; ++I)
    Src += "  r0 = q" + std::to_string(I) + ";\n";
  Src += "  q1 = c1;\n  ret 0;\n}\n";
  return Src;
}

analysis::SolverStatistics solveRingWithBudget(Budget &B) {
  auto M = parser::parseModuleOrAbort(ringWorkload().c_str());
  analysis::CallGraph CG(*M);
  B.beginPhase(BudgetPhase::PointerAnalysis);
  analysis::PointerAnalysis PA(*M, CG, analysis::PtaOptions(), &B);
  EXPECT_EQ(PA.exhausted(), B.exhausted());
  return PA.solverStats();
}

TEST(Budget, MergedPopsAreSkippedWithoutCharge) {
  BudgetLimits L;
  L.MaxStepsPerPhase = 100'000'000; // generous, but armed
  Budget B(L);
  analysis::SolverStatistics S = solveRingWithBudget(B);
  ASSERT_FALSE(B.exhausted());
  // The ring collapsed mid-solve with members still queued...
  EXPECT_GT(S.NumCollapses, 0u);
  EXPECT_GE(S.NumCollapsedNodes, 15u);
  EXPECT_GT(S.NumSkippedMergedPops, 0u);
  // ...the stale pops were counted but not charged...
  EXPECT_GE(S.NumPops, S.NumSkippedMergedPops);
  // ...and the token granted exactly the steps the solver says it
  // charged: any drift here would make fault injection nondeterministic.
  EXPECT_EQ(B.stepsUsed(), S.NumBudgetSteps);
}

TEST(Budget, SolverChargingIsExactAtTheBoundary) {
  // Pin the charging policy: a limit of exactly stepsUsed() must succeed
  // and one step less must exhaust. If a future change started charging
  // the skipped merged pops (or stopped charging Tarjan visits), the
  // boundary would move and the exhausted run's counters would disagree.
  uint64_t Full = 0;
  {
    BudgetLimits L;
    L.MaxStepsPerPhase = 100'000'000;
    Budget B(L);
    solveRingWithBudget(B);
    ASSERT_FALSE(B.exhausted());
    Full = B.stepsUsed();
    ASSERT_GT(Full, 1u);
  }
  {
    BudgetLimits L;
    L.MaxStepsPerPhase = Full;
    Budget B(L);
    analysis::SolverStatistics S = solveRingWithBudget(B);
    EXPECT_FALSE(B.exhausted());
    EXPECT_EQ(S.NumBudgetSteps, Full);
  }
  {
    BudgetLimits L;
    L.MaxStepsPerPhase = Full - 1;
    Budget B(L);
    solveRingWithBudget(B);
    EXPECT_TRUE(B.exhausted());
    EXPECT_EQ(B.exhaustKind(), ExhaustKind::Steps);
  }
}

TEST(DegradationLadder, ExhaustionMidCollapseFallsToMSan) {
  // Injecting exhaustion in the middle of the solve — including inside
  // collapse/Tarjan work — must leave state the ladder can discard: the
  // driver retries field-insensitively, exhausts again, and lands on the
  // MSan full plan. (The ring source is a constraint-staging workload,
  // not a runnable program — its drip loads trap under the interpreter —
  // so soundness of the produced plan is covered by RungEquivalence.)
  uint64_t Full = 0;
  {
    BudgetLimits L;
    L.MaxStepsPerPhase = 100'000'000;
    Budget B(L);
    solveRingWithBudget(B);
    Full = B.stepsUsed();
  }
  for (uint64_t Cut : {Full / 4, Full / 2, (3 * Full) / 4}) {
    // Fresh module per run: heap cloning mutates it.
    auto M = parser::parseModuleOrAbort(ringWorkload().c_str());
    core::UsherOptions Opts;
    Opts.Variant = ToolVariant::UsherFull;
    FaultPlan F;
    F.Phase = BudgetPhase::PointerAnalysis;
    F.AtStep = Cut;
    Opts.Fault = F;
    core::UsherResult R = core::runUsher(*M, Opts);
    EXPECT_TRUE(R.Degradation.Degraded) << "cut " << Cut;
    EXPECT_EQ(R.Degradation.Rung, ToolVariant::MSanFull) << "cut " << Cut;
    ASSERT_GE(R.Degradation.Steps.size(), 2u) << "cut " << Cut;
    EXPECT_EQ(R.Degradation.Steps[0].Kind, ExhaustKind::Injected)
        << "cut " << Cut;
  }
}

//===----------------------------------------------------------------------===//
// Bounded fire counts and the UNIFY rung
//===----------------------------------------------------------------------===//
//
// A "<phase>@<step>:<fires>" fault exhausts only the first N matching
// arms, which is how the tests aim a run at a *specific* rung: "pta@0:2"
// kills the field-sensitive Andersen attempt and the field-insensitive
// retry, leaving the third arm — the unification solver — to succeed.

TEST(Budget, MaxFiresBoundsInjectedArms) {
  FaultPlan F;
  F.Phase = BudgetPhase::PointerAnalysis;
  F.AtStep = 0;
  F.MaxFires = 2;
  Budget B(BudgetLimits{}, F);
  B.beginPhase(BudgetPhase::PointerAnalysis);
  EXPECT_TRUE(B.exhausted());
  B.beginPhase(BudgetPhase::PointerAnalysis);
  EXPECT_TRUE(B.exhausted());
  // Third arm: the fault has burned its fires; the phase runs clean.
  B.beginPhase(BudgetPhase::PointerAnalysis);
  EXPECT_FALSE(B.exhausted());
  for (int I = 0; I != 100; ++I)
    ASSERT_TRUE(B.step());
}

TEST(Budget, MaxFiresOverridesOnce) {
  FaultPlan F;
  F.Phase = BudgetPhase::PointerAnalysis;
  F.AtStep = 0;
  F.Once = true;
  F.MaxFires = 3;
  EXPECT_EQ(F.fireLimit(), 3u);
  Budget B(BudgetLimits{}, F);
  for (int Arm = 0; Arm != 3; ++Arm) {
    B.beginPhase(BudgetPhase::PointerAnalysis);
    EXPECT_TRUE(B.exhausted()) << "arm " << Arm;
  }
  B.beginPhase(BudgetPhase::PointerAnalysis);
  EXPECT_FALSE(B.exhausted());
}

TEST(FaultSpec, ParsesFireCountSuffix) {
  auto P = parseFaultSpec("pta@0:2");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Phase, BudgetPhase::PointerAnalysis);
  EXPECT_EQ(P->AtStep, 0u);
  EXPECT_EQ(P->MaxFires, 2u);
  EXPECT_FALSE(P->Once);
  EXPECT_EQ(P->fireLimit(), 2u);

  P = parseFaultSpec("definedness@17:1");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->AtStep, 17u);
  EXPECT_EQ(P->MaxFires, 1u);

  std::string Err;
  EXPECT_FALSE(parseFaultSpec("pta@0:0", &Err).has_value());
  EXPECT_NE(Err.find("positive"), std::string::npos);
  EXPECT_FALSE(parseFaultSpec("pta@0:2x", &Err).has_value());
  EXPECT_NE(Err.find("non-numeric"), std::string::npos);
}

TEST(DegradationLadder, PtaTwoFireInjectionLandsOnUnify) {
  auto M = workload::generateProgram(10);
  core::UsherOptions Opts;
  Opts.Variant = ToolVariant::UsherFull;
  FaultPlan F;
  F.Phase = BudgetPhase::PointerAnalysis;
  F.AtStep = 0;
  F.MaxFires = 2;
  Opts.Fault = F;
  core::UsherResult R = core::runUsher(*M, Opts);
  EXPECT_TRUE(R.Degradation.Degraded);
  EXPECT_EQ(R.Degradation.Rung, ToolVariant::UsherTLAT);
  ASSERT_EQ(R.Degradation.Steps.size(), 2u);
  EXPECT_NE(R.Degradation.Steps[0].Action.find("field-insensitive"),
            std::string::npos);
  EXPECT_NE(R.Degradation.Steps[1].Action.find("unification"),
            std::string::npos);
  // The salvaged run really is backed by the unification engine over the
  // field-insensitive constraints — not by a lucky Andersen rerun.
  EXPECT_EQ(R.Stats.Solver.Engine, analysis::SolverKind::Unify);
  ASSERT_TRUE(R.PA != nullptr);
  EXPECT_EQ(R.PA->options().Solver, analysis::SolverKind::Unify);
  EXPECT_FALSE(R.PA->options().FieldSensitive);
  // And the plan is usable.
  runtime::ExecutionReport Rep = runtime::Interpreter(*M, &R.Plan).run();
  EXPECT_EQ(Rep.Reason, runtime::ExitReason::Finished);
}

TEST(DegradationLadder, EnvFaultSpecDrivesUnifyRung) {
  // Interpreter-under-test path: tools that cannot take flags read the
  // spec from USHER_INJECT_FAULT; the parsed plan must drive the ladder
  // exactly like a programmatic one.
  ASSERT_EQ(setenv(FaultInjectionEnvVar, "pta@0:2", 1), 0);
  std::optional<FaultPlan> F = faultPlanFromEnv();
  unsetenv(FaultInjectionEnvVar);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->fireLimit(), 2u);

  auto M = workload::generateProgram(11);
  core::UsherOptions Opts;
  Opts.Variant = ToolVariant::UsherFull;
  Opts.Fault = *F;
  core::UsherResult R = core::runUsher(*M, Opts);
  EXPECT_TRUE(R.Degradation.Degraded);
  EXPECT_EQ(R.Degradation.Rung, ToolVariant::UsherTLAT);
  EXPECT_EQ(R.Stats.Solver.Engine, analysis::SolverKind::Unify);
}

TEST(DegradationLadder, UnifyRungScheduleIndependentUnderJobs) {
  // The pointer-analysis phase (and so the unify retry's exhaustion
  // boundary) must not depend on the worker count used downstream: the
  // same fault lands the same rung with identical solver accounting, and
  // the resulting plans report identical warnings.
  struct Observed {
    ToolVariant Rung;
    size_t Steps;
    uint64_t BudgetSteps;
    uint64_t UnifiedCells;
    uint64_t Checks;
    size_t Warnings;
  };
  std::vector<Observed> Runs;
  for (unsigned Jobs : {1u, 4u}) {
    auto M = workload::generateProgram(12);
    core::UsherOptions Opts;
    Opts.Variant = ToolVariant::UsherFull;
    Opts.Jobs = Jobs;
    FaultPlan F;
    F.Phase = BudgetPhase::PointerAnalysis;
    F.AtStep = 0;
    F.MaxFires = 2;
    Opts.Fault = F;
    core::UsherResult R = core::runUsher(*M, Opts);
    runtime::ExecutionReport Rep = runtime::Interpreter(*M, &R.Plan).run();
    EXPECT_EQ(Rep.Reason, runtime::ExitReason::Finished) << "jobs " << Jobs;
    Runs.push_back({R.Degradation.Rung, R.Degradation.Steps.size(),
                    R.Stats.Solver.NumBudgetSteps,
                    R.Stats.Solver.NumUnifiedCells, R.Plan.countChecks(),
                    Rep.ToolWarnings.size()});
  }
  ASSERT_EQ(Runs.size(), 2u);
  EXPECT_EQ(Runs[0].Rung, ToolVariant::UsherTLAT);
  EXPECT_EQ(Runs[0].Rung, Runs[1].Rung);
  EXPECT_EQ(Runs[0].Steps, Runs[1].Steps);
  EXPECT_EQ(Runs[0].BudgetSteps, Runs[1].BudgetSteps);
  EXPECT_EQ(Runs[0].UnifiedCells, Runs[1].UnifiedCells);
  EXPECT_EQ(Runs[0].Checks, Runs[1].Checks);
  EXPECT_EQ(Runs[0].Warnings, Runs[1].Warnings);
}

TEST(DegradationLadder, GenerousBudgetStaysOnRequestedRung) {
  // The acceptance criterion's happy path: real limits that are generous
  // enough must leave the pipeline undegraded.
  auto M = workload::generateProgram(9);
  core::UsherOptions Opts;
  Opts.Limits.MaxStepsPerPhase = 1'000'000'000;
  Opts.Limits.PhaseDeadlineMs = 120'000;
  core::UsherResult R = core::runUsher(*M, Opts);
  EXPECT_FALSE(R.Degradation.Degraded);
  EXPECT_EQ(R.Degradation.Rung, ToolVariant::UsherFull);
}

} // namespace
