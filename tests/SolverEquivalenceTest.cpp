//===- tests/SolverEquivalenceTest.cpp - Optimized vs reference solver -----===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimized Andersen engine (SCC collapsing + difference propagation)
/// must be observationally identical to the retained naive reference:
///
///  - identical may-point-to sets for every top-level variable, on seeded
///    random programs and on adversarial copy-cycle workloads;
///  - identical runUsher warning sets on every rung of the degradation
///    ladder, so collapsing/delta state interacts soundly with Budget
///    exhaustion and the driver's fallbacks.
///
/// Points-to sets are compared as (object name, field) pairs rather than
/// raw loc ids so the property does not depend on the two runs numbering
/// locations identically.
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/PointerAnalysis.h"
#include "core/Usher.h"
#include "ir/IR.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "workload/Generator.h"
#include "workload/Spec2000.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

using namespace usher;
using analysis::CallGraph;
using analysis::PointerAnalysis;
using analysis::PtaOptions;
using analysis::SolverKind;
using core::ToolVariant;

namespace {

/// Loc-id-independent rendering of one variable's points-to set.
std::set<std::string> ptsNames(const PointerAnalysis &PA,
                               const ir::Variable *V) {
  std::set<std::string> S;
  for (uint32_t LocId : PA.pointsTo(V)) {
    const analysis::PtLoc &L = PA.location(LocId);
    S.insert(L.Obj->getName() + "#" + std::to_string(L.Field));
  }
  return S;
}

/// Runs both engines on freshly parsed/generated copies of the same
/// program (heap cloning mutates the module, so each engine gets its own)
/// and asserts every variable's points-to set matches.
void expectEnginesAgree(ir::Module &MOpt, ir::Module &MRef,
                        const std::string &Tag) {
  CallGraph CGOpt(MOpt);
  PtaOptions OptsOpt;
  OptsOpt.Solver = SolverKind::Optimized;
  PointerAnalysis PAOpt(MOpt, CGOpt, OptsOpt);
  ASSERT_FALSE(PAOpt.exhausted()) << Tag;

  CallGraph CGRef(MRef);
  PtaOptions OptsRef;
  OptsRef.Solver = SolverKind::NaiveReference;
  PointerAnalysis PARef(MRef, CGRef, OptsRef);
  ASSERT_FALSE(PARef.exhausted()) << Tag;

  ASSERT_EQ(PAOpt.numLocations(), PARef.numLocations()) << Tag;
  for (const auto &FOpt : MOpt.functions()) {
    const ir::Function *FRef = MRef.findFunction(FOpt->getName());
    ASSERT_NE(FRef, nullptr) << Tag;
    for (const auto &V : FOpt->variables()) {
      const ir::Variable *VRef = FRef->findVariable(V->getName());
      ASSERT_NE(VRef, nullptr) << Tag;
      EXPECT_EQ(ptsNames(PAOpt, V.get()), ptsNames(PARef, VRef))
          << Tag << ": points-to mismatch for " << FOpt->getName()
          << "::" << V->getName();
    }
  }
}

//===----------------------------------------------------------------------===//
// Points-to equivalence on seeded random programs
//===----------------------------------------------------------------------===//

class PointsToEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PointsToEquivalence, RandomProgram) {
  const uint64_t Seed = GetParam();
  auto MOpt = workload::generateProgram(Seed);
  auto MRef = workload::generateProgram(Seed);
  expectEnginesAgree(*MOpt, *MRef, "seed " + std::to_string(Seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointsToEquivalence,
                         ::testing::Range<uint64_t>(0, 80));

//===----------------------------------------------------------------------===//
// Points-to equivalence on adversarial solver workloads
//===----------------------------------------------------------------------===//
//
// Random programs rarely build large copy cycles, so these hand-shaped
// sources force the optimized engine through its special paths: ring
// collapsing mid-solve (stale merged worklist entries), nested rings
// (collapse into an already-collapsed representative), and drip-staged
// load resolution (delta propagation under growing constraint graphs).

std::string dripLadder(unsigned K, const std::string &Sink) {
  std::string Src;
  for (unsigned I = 1; I <= K; ++I)
    Src += "  q" + std::to_string(I) + " = 0;\n";
  for (unsigned I = 1; I <= K; ++I)
    Src += "  c" + std::to_string(I) + " = alloc heap 1 uninit;\n";
  for (unsigned I = 1; I != K; ++I)
    Src += "  *c" + std::to_string(I) + " = c" + std::to_string(I + 1) + ";\n";
  for (unsigned I = 1; I != K; ++I)
    Src += "  q" + std::to_string(I + 1) + " = *q" + std::to_string(I) + ";\n";
  for (unsigned I = 1; I <= K; ++I)
    Src += "  " + Sink + " = q" + std::to_string(I) + ";\n";
  return Src;
}

std::string makeRingWorkload(unsigned K, unsigned RingSize, unsigned Tail) {
  std::string Src = "func main() {\n  r0 = 0;\n";
  for (unsigned I = 1; I != RingSize; ++I)
    Src += "  r" + std::to_string(I) + " = r" + std::to_string(I - 1) + ";\n";
  Src += "  r0 = r" + std::to_string(RingSize - 1) + ";\n";
  Src += "  t0 = r0;\n";
  for (unsigned I = 1; I != Tail; ++I)
    Src += "  t" + std::to_string(I) + " = t" + std::to_string(I - 1) + ";\n";
  Src += dripLadder(K, "r0");
  Src += "  q1 = c1;\n  ret 0;\n}\n";
  return Src;
}

std::string makeNestedRingsWorkload() {
  // Two rings joined by a bridge: collapsing the first makes the second's
  // lap-closing edge target a representative, and the bridge then merges
  // ring two into ring one's already-collapsed rep.
  std::string Src = "func main() {\n  a0 = 0;\n";
  for (unsigned I = 1; I != 6; ++I)
    Src += "  a" + std::to_string(I) + " = a" + std::to_string(I - 1) + ";\n";
  Src += "  a0 = a5;\n  b0 = a0;\n";
  for (unsigned I = 1; I != 5; ++I)
    Src += "  b" + std::to_string(I) + " = b" + std::to_string(I - 1) + ";\n";
  Src += "  b0 = b4;\n  a0 = b2;\n";
  Src += dripLadder(10, "a3");
  Src += "  q1 = c1;\n  ret 0;\n}\n";
  return Src;
}

TEST(SolverEquivalence, CollapsingRing) {
  const std::string Src = makeRingWorkload(24, 16, 16);
  auto MOpt = parser::parseModuleOrAbort(Src.c_str());
  auto MRef = parser::parseModuleOrAbort(Src.c_str());
  expectEnginesAgree(*MOpt, *MRef, "collapsing-ring");
}

TEST(SolverEquivalence, NestedRings) {
  const std::string Src = makeNestedRingsWorkload();
  auto MOpt = parser::parseModuleOrAbort(Src.c_str());
  auto MRef = parser::parseModuleOrAbort(Src.c_str());
  expectEnginesAgree(*MOpt, *MRef, "nested-rings");
}

//===----------------------------------------------------------------------===//
// Warning-set equivalence at every degradation-ladder rung
//===----------------------------------------------------------------------===//

std::set<const ir::Instruction *>
warnSet(const std::vector<runtime::Warning> &Ws) {
  std::set<const ir::Instruction *> S;
  for (const runtime::Warning &W : Ws)
    S.insert(W.At);
  return S;
}

class RungEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RungEquivalence, WarningsMatchOnEveryRung) {
  const uint64_t Seed = GetParam();

  struct RungCase {
    std::optional<BudgetPhase> FaultPhase;
    ToolVariant Requested;
  };
  const RungCase Cases[] = {
      {std::nullopt, ToolVariant::UsherFull},
      {BudgetPhase::PointerAnalysis, ToolVariant::UsherFull},
      {BudgetPhase::Definedness, ToolVariant::UsherFull},
      {BudgetPhase::OptII, ToolVariant::UsherFull},
      {BudgetPhase::OptI, ToolVariant::UsherOptI},
  };

  for (const RungCase &C : Cases) {
    const std::string Tag =
        "seed " + std::to_string(Seed) + " fault " +
        (C.FaultPhase ? budgetPhaseName(*C.FaultPhase) : "none");

    auto runWith = [&](SolverKind Kind) {
      auto M = workload::generateProgram(Seed);
      core::UsherOptions Opts;
      Opts.Variant = C.Requested;
      Opts.Pta.Solver = Kind;
      if (C.FaultPhase) {
        FaultPlan F;
        F.Phase = *C.FaultPhase;
        F.AtStep = 0;
        Opts.Fault = F;
      }
      core::UsherResult R = core::runUsher(*M, Opts);
      runtime::ExecutionReport Rep = runtime::Interpreter(*M, &R.Plan).run();
      EXPECT_EQ(Rep.Reason, runtime::ExitReason::Finished) << Tag;
      struct Out {
        ToolVariant Rung;
        bool Degraded;
        int64_t MainResult;
        std::set<std::string> Warnings;
      } O;
      O.Rung = R.Degradation.Rung;
      O.Degraded = R.Degradation.Degraded;
      O.MainResult = Rep.MainResult;
      // Instruction pointers are module-local; compare by stable id.
      for (const ir::Instruction *I : warnSet(Rep.ToolWarnings))
        O.Warnings.insert(std::to_string(I->getId()));
      return O;
    };

    auto Opt = runWith(SolverKind::Optimized);
    auto Ref = runWith(SolverKind::NaiveReference);
    EXPECT_EQ(Opt.Rung, Ref.Rung) << Tag;
    EXPECT_EQ(Opt.Degraded, Ref.Degraded) << Tag;
    EXPECT_EQ(Opt.MainResult, Ref.MainResult) << Tag;
    EXPECT_EQ(Opt.Warnings, Ref.Warnings) << Tag;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RungEquivalence,
                         ::testing::Range<uint64_t>(0, 20));

//===----------------------------------------------------------------------===//
// Unification-solver soundness oracle
//===----------------------------------------------------------------------===//
//
// The unification engine is a sound *over*-approximation of Andersen, not
// an equivalent: for every pointer, pts_andersen(p) ⊆ pts_unify(p). The
// oracle checks the inclusion on both field models over the benchmark
// suite, seeded random programs, and the labeled bug corpus — the same
// populations the Andersen-equivalence oracles above cover.

/// Asserts the inclusion for every top-level variable of two fresh copies
/// of one program (heap cloning mutates the module, so each engine gets
/// its own copy).
void expectUnifyOverapproximates(ir::Module &MAnd, ir::Module &MUni,
                                 bool FieldSensitive, const std::string &Tag) {
  CallGraph CGAnd(MAnd);
  PtaOptions OptsAnd;
  OptsAnd.Solver = SolverKind::Optimized;
  OptsAnd.FieldSensitive = FieldSensitive;
  PointerAnalysis PAAnd(MAnd, CGAnd, OptsAnd);
  ASSERT_FALSE(PAAnd.exhausted()) << Tag;

  CallGraph CGUni(MUni);
  PtaOptions OptsUni = OptsAnd;
  OptsUni.Solver = SolverKind::Unify;
  PointerAnalysis PAUni(MUni, CGUni, OptsUni);
  ASSERT_FALSE(PAUni.exhausted()) << Tag;
  EXPECT_EQ(PAUni.solverStats().Engine, SolverKind::Unify) << Tag;

  for (const auto &FAnd : MAnd.functions()) {
    const ir::Function *FUni = MUni.findFunction(FAnd->getName());
    ASSERT_NE(FUni, nullptr) << Tag;
    for (const auto &V : FAnd->variables()) {
      const ir::Variable *VUni = FUni->findVariable(V->getName());
      ASSERT_NE(VUni, nullptr) << Tag;
      std::set<std::string> And = ptsNames(PAAnd, V.get());
      std::set<std::string> Uni = ptsNames(PAUni, VUni);
      EXPECT_TRUE(std::includes(Uni.begin(), Uni.end(), And.begin(),
                                And.end()))
          << Tag << ": unify dropped a points-to fact of "
          << FAnd->getName() << "::" << V->getName() << " (andersen "
          << And.size() << " locs, unify " << Uni.size() << " locs)";
    }
  }
}

void checkUnifySoundOnSource(const std::string &Src, const std::string &Tag) {
  for (bool FieldSensitive : {true, false}) {
    auto MAnd = parser::parseModuleOrAbort(Src);
    auto MUni = parser::parseModuleOrAbort(Src);
    expectUnifyOverapproximates(
        *MAnd, *MUni, FieldSensitive,
        Tag + (FieldSensitive ? " (field-sensitive)" : " (field-insensitive)"));
  }
}

class UnifySoundnessSuite : public ::testing::TestWithParam<size_t> {};

TEST_P(UnifySoundnessSuite, PointsToIncludesAndersen) {
  const auto &B = workload::spec2000Suite()[GetParam()];
  checkUnifySoundOnSource(B.Source, B.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, UnifySoundnessSuite, ::testing::Range<size_t>(0, 15),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = workload::spec2000Suite()[Info.param].Name;
      for (char &C : Name)
        if (C == '.')
          C = '_';
      return Name;
    });

class UnifySoundnessSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnifySoundnessSeeds, PointsToIncludesAndersen) {
  const uint64_t Seed = GetParam();
  for (bool FieldSensitive : {true, false}) {
    auto MAnd = workload::generateProgram(Seed);
    auto MUni = workload::generateProgram(Seed);
    expectUnifyOverapproximates(*MAnd, *MUni, FieldSensitive,
                                "seed " + std::to_string(Seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnifySoundnessSeeds,
                         ::testing::Range<uint64_t>(0, 60));

TEST(UnifySoundnessCorpus, PointsToIncludesAndersen) {
  for (const char *Stem : {"definite", "may_guarded", "clean_strong_update"}) {
    std::string Path =
        std::string(USHER_TEST_INPUT_DIR) + "/diagnosis/" + Stem + ".tc";
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << "cannot open " << Path;
    std::ostringstream SS;
    SS << In.rdbuf();
    checkUnifySoundOnSource(SS.str(), Stem);
  }
}

TEST(UnifySoundness, AdversarialWorkloads) {
  checkUnifySoundOnSource(makeRingWorkload(24, 16, 16), "collapsing-ring");
  checkUnifySoundOnSource(makeNestedRingsWorkload(), "nested-rings");
}

//===----------------------------------------------------------------------===//
// Unify-rung warning over-approximation
//===----------------------------------------------------------------------===//
//
// Dynamic guarantee: every warning an Andersen-backed run reports must
// also be reported when the unification solver backs the plan — both when
// selected directly (--solver=unify) and when the degradation ladder
// lands on the unify-backed TL+AT rung (pta@0:2 exhausts both Andersen
// arms).

class UnifyRungSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnifyRungSoundness, WarningsIncludeAndersens) {
  const uint64_t Seed = GetParam();

  auto runWith = [&](SolverKind Kind, std::optional<FaultPlan> Fault,
                     ToolVariant *RungOut) {
    auto M = workload::generateProgram(Seed);
    core::UsherOptions Opts;
    Opts.Variant = ToolVariant::UsherFull;
    Opts.Pta.Solver = Kind;
    Opts.Fault = Fault;
    core::UsherResult R = core::runUsher(*M, Opts);
    if (RungOut)
      *RungOut = R.Degradation.Rung;
    runtime::ExecutionReport Rep = runtime::Interpreter(*M, &R.Plan).run();
    EXPECT_EQ(Rep.Reason, runtime::ExitReason::Finished);
    std::set<std::string> Warnings;
    for (const ir::Instruction *I : warnSet(Rep.ToolWarnings))
      Warnings.insert(std::to_string(I->getId()));
    return Warnings;
  };

  const std::string Tag = "seed " + std::to_string(Seed);
  std::set<std::string> Ref =
      runWith(SolverKind::Optimized, std::nullopt, nullptr);

  std::set<std::string> Direct =
      runWith(SolverKind::Unify, std::nullopt, nullptr);
  EXPECT_TRUE(std::includes(Direct.begin(), Direct.end(), Ref.begin(),
                            Ref.end()))
      << Tag << ": --solver=unify lost an Andersen warning";

  FaultPlan TwoArms;
  TwoArms.Phase = BudgetPhase::PointerAnalysis;
  TwoArms.AtStep = 0;
  TwoArms.MaxFires = 2;
  ToolVariant Rung = ToolVariant::UsherFull;
  std::set<std::string> Ladder =
      runWith(SolverKind::Optimized, TwoArms, &Rung);
  EXPECT_EQ(Rung, ToolVariant::UsherTLAT) << Tag;
  EXPECT_TRUE(std::includes(Ladder.begin(), Ladder.end(), Ref.begin(),
                            Ref.end()))
      << Tag << ": the unify-backed TL+AT rung lost an Andersen warning";
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnifyRungSoundness,
                         ::testing::Range<uint64_t>(0, 20));

} // namespace
