//===- tests/PlacementTest.cpp - Budgeted placement properties -------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the OptiSan-style budgeted check placement. On
/// instances small enough to enumerate every subset, the DP solver must
/// pick a coverage-maximal plan within capacity (and the cheapest among
/// those); across a capacity sweep, coverage must be monotone — a higher
/// slowdown budget never buys fewer covered unsafe operations. The same
/// monotonicity is asserted end-to-end through the bounds client's
/// --bounds-budget surface on an equal-weight program.
///
//===----------------------------------------------------------------------===//

#include "core/Placement.h"
#include "core/SanitizerClient.h"
#include "core/Usher.h"
#include "parser/Parser.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <limits>

using namespace usher;
using core::PlacementCandidate;
using core::PlacementResult;
using core::solvePlacement;

namespace {

/// Deterministic 64-bit LCG so instances are reproducible across runs
/// and platforms.
struct Lcg {
  uint64_t S;
  uint64_t next(uint64_t Bound) {
    S = S * 6364136223846793005ull + 1442695040888963407ull;
    return (S >> 33) % Bound;
  }
};

struct BestSubset {
  uint64_t Value = 0;
  uint64_t Cost = 0;
};

/// Exhaustive reference: the best coverage over all 2^n subsets, breaking
/// value ties toward the cheaper plan — the solver's documented order.
BestSubset bestByEnumeration(const std::vector<PlacementCandidate> &Cands,
                             uint64_t Capacity) {
  BestSubset Best;
  for (uint64_t Mask = 0; Mask != (1ull << Cands.size()); ++Mask) {
    uint64_t V = 0, C = 0;
    for (size_t I = 0; I != Cands.size(); ++I)
      if (Mask & (1ull << I)) {
        V += Cands[I].Value;
        C += Cands[I].Cost;
      }
    if (C <= Capacity && (V > Best.Value || (V == Best.Value && C < Best.Cost)))
      Best = {V, C};
  }
  return Best;
}

std::vector<PlacementCandidate> randomInstance(Lcg &R, size_t N) {
  std::vector<PlacementCandidate> Cands(N);
  for (PlacementCandidate &C : Cands) {
    C.Value = 1 + R.next(8);
    C.Cost = 1 + R.next(16);
  }
  return Cands;
}

uint64_t sumCost(const std::vector<PlacementCandidate> &Cands) {
  uint64_t C = 0;
  for (const PlacementCandidate &Cand : Cands)
    C += Cand.Cost;
  return C;
}

TEST(Placement, MatchesExhaustiveEnumeration) {
  Lcg R{42};
  for (unsigned Trial = 0; Trial != 200; ++Trial) {
    const size_t N = 1 + R.next(10);
    std::vector<PlacementCandidate> Cands = randomInstance(R, N);
    const uint64_t AllCost = sumCost(Cands);
    const uint64_t Capacity = R.next(AllCost + 2);

    PlacementResult Got = solvePlacement(Cands, Capacity);
    BestSubset Want = bestByEnumeration(Cands, Capacity);

    ASSERT_EQ(Got.TotalValue, Want.Value)
        << "trial " << Trial << ": not coverage-maximal within capacity "
        << Capacity;
    ASSERT_EQ(Got.TotalCost, Want.Cost)
        << "trial " << Trial << ": coverage-maximal but not cheapest";
    ASSERT_LE(Got.TotalCost, Capacity) << "trial " << Trial;
    ASSERT_EQ(Got.CapacityBound, AllCost > Capacity) << "trial " << Trial;

    // The chosen flags must account exactly for the reported totals.
    uint64_t V = 0, C = 0;
    ASSERT_EQ(Got.Chosen.size(), N);
    for (size_t I = 0; I != N; ++I)
      if (Got.Chosen[I]) {
        V += Cands[I].Value;
        C += Cands[I].Cost;
      }
    ASSERT_EQ(V, Got.TotalValue) << "trial " << Trial;
    ASSERT_EQ(C, Got.TotalCost) << "trial " << Trial;
  }
}

TEST(Placement, CoverageMonotoneInCapacity) {
  Lcg R{7};
  for (unsigned Trial = 0; Trial != 60; ++Trial) {
    const size_t N = 1 + R.next(9);
    std::vector<PlacementCandidate> Cands = randomInstance(R, N);
    const uint64_t AllCost = sumCost(Cands);

    uint64_t PrevValue = 0;
    for (uint64_t Capacity = 0; Capacity <= AllCost + 1; ++Capacity) {
      PlacementResult Got = solvePlacement(Cands, Capacity);
      ASSERT_GE(Got.TotalValue, PrevValue)
          << "trial " << Trial << ": coverage dropped when the capacity "
          << "rose to " << Capacity;
      PrevValue = Got.TotalValue;
    }

    // Unlimited capacity covers everything.
    PlacementResult Full =
        solvePlacement(Cands, std::numeric_limits<uint64_t>::max());
    uint64_t AllValue = 0;
    for (const PlacementCandidate &C : Cands)
      AllValue += C.Value;
    ASSERT_EQ(Full.TotalValue, AllValue);
    ASSERT_FALSE(Full.CapacityBound);
  }
}

TEST(Placement, BudgetExhaustionFallsBackToTakeAll) {
  // The sound degradation: a solver whose own budget runs out must not
  // silently drop checks — it instruments every candidate, over budget.
  std::vector<PlacementCandidate> Cands(12);
  for (size_t I = 0; I != Cands.size(); ++I)
    Cands[I] = {1, 10};
  BudgetLimits L;
  L.MaxStepsPerPhase = 1;
  Budget B(L);
  B.beginPhase(BudgetPhase::OptII);
  PlacementResult Got = solvePlacement(Cands, /*Capacity=*/15, &B);
  ASSERT_TRUE(B.exhausted());
  ASSERT_TRUE(Got.CapacityBound);
  ASSERT_EQ(Got.TotalValue, Cands.size());
  for (uint8_t F : Got.Chosen)
    ASSERT_TRUE(F);
}

//===----------------------------------------------------------------------===//
// End-to-end through the bounds client's budget surface
//===----------------------------------------------------------------------===//

// Straight-line program: every unsafe gep has weight 1 and identical
// modeled cost, so the placement's coverage equals its check count and
// monotonicity in the budget is directly observable via ChosenChecks.
const char *EqualWeightSites = R"(
func main() {
  p = alloc stack 2 uninit;
  i = 1;
  a = gep p, i;
  b = gep p, i;
  c = gep p, i;
  d = gep p, i;
  e = gep p, i;
  f = gep p, i;
  ret 0;
}
)";

core::ClientPlanInfo boundsPlanAtBudget(unsigned Percent) {
  auto M = parser::parseModuleOrAbort(EqualWeightSites);
  core::UsherOptions Opts;
  Opts.Clients = {core::ClientKind::Bounds};
  Opts.BoundsBudgetPercent = Percent;
  core::UsherResult R = core::runUsher(*M, Opts);
  EXPECT_EQ(R.ClientPlans.size(), 1u);
  return std::move(R.ClientPlans[0]);
}

TEST(Placement, BoundsBudgetMonotoneOnEqualWeightProgram) {
  uint64_t PrevChecks = 0;
  bool SawPartial = false;
  for (unsigned Percent : {1u, 5u, 10u, 25u, 50u, 100u, 400u}) {
    core::ClientPlanInfo Info = boundsPlanAtBudget(Percent);
    ASSERT_EQ(Info.UnsafeSinks, 6u) << "at " << Percent << "%";
    ASSERT_GE(Info.ChosenChecks, PrevChecks)
        << "coverage dropped when the budget rose to " << Percent << "%";
    if (Info.CapacityBound) {
      ASSERT_LE(Info.PlacementCost, Info.PlacementCapacity)
          << "at " << Percent << "%";
      SawPartial = true;
    }
    PrevChecks = Info.ChosenChecks;
  }
  // The sweep must actually exercise the constrained regime, and the
  // unlimited default must cover every unsafe site.
  ASSERT_TRUE(SawPartial) << "no budget in the sweep was binding";
  core::ClientPlanInfo Unlimited = boundsPlanAtBudget(0);
  ASSERT_EQ(Unlimited.ChosenChecks, Unlimited.UnsafeSinks);
  ASSERT_FALSE(Unlimited.CapacityBound);
}

} // namespace
