//===- tests/ClientCorpusTest.cpp - Labeled per-client bug corpora ---------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Labeled bug corpora for the non-UUV sanitizer clients, mirroring the
/// UUV diagnosis corpus: each client has a true-positive case, a guarded
/// MAY case (check placed, runtime silent), and a clean case where the
/// static analysis proves the sink safe and places no check. Every
/// program is also run under the client's *full* (analysis-free) plan in
/// the same interpreter pass, so the corpus doubles as a pinned
/// guided-vs-full differential.
///
/// Expected files (tests/inputs/clients/<client>/<stem>.expected) carry
/// one directive per line: `sinks N`, `unsafe N`, `checks N` pin the
/// static ClientPlanInfo counters; `warn L:C` lines list the expected
/// runtime warnings in source order; `none` asserts the run is silent.
///
//===----------------------------------------------------------------------===//

#include "core/SanitizerClient.h"
#include "core/Usher.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace usher;
using core::ClientKind;
using runtime::ExecutionReport;
using runtime::ExitReason;
using runtime::Interpreter;

namespace {

struct ExpectedOutcome {
  uint64_t Sinks = 0, Unsafe = 0, Checks = 0;
  bool HaveSinks = false, HaveUnsafe = false, HaveChecks = false;
  std::vector<std::pair<unsigned, unsigned>> Warns; ///< (line, col).
};

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

ExpectedOutcome readExpected(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  ExpectedOutcome Out;
  std::string LineBuf;
  bool SawWarnDirective = false;
  while (std::getline(In, LineBuf)) {
    if (LineBuf.empty() || LineBuf[0] == '#')
      continue;
    std::istringstream LS(LineBuf);
    std::string Kind;
    LS >> Kind;
    if (Kind == "none") {
      SawWarnDirective = true;
    } else if (Kind == "warn") {
      std::string Loc;
      LS >> Loc;
      size_t Sep = Loc.find(':');
      if (Sep == std::string::npos) {
        ADD_FAILURE() << "bad location '" << Loc << "' in " << Path;
        continue;
      }
      Out.Warns.emplace_back(
          static_cast<unsigned>(std::stoul(Loc.substr(0, Sep))),
          static_cast<unsigned>(std::stoul(Loc.substr(Sep + 1))));
      SawWarnDirective = true;
    } else if (Kind == "sinks") {
      LS >> Out.Sinks;
      Out.HaveSinks = true;
    } else if (Kind == "unsafe") {
      LS >> Out.Unsafe;
      Out.HaveUnsafe = true;
    } else if (Kind == "checks") {
      LS >> Out.Checks;
      Out.HaveChecks = true;
    } else {
      ADD_FAILURE() << "unknown directive '" << Kind << "' in " << Path;
    }
  }
  EXPECT_TRUE(SawWarnDirective)
      << Path << ": expected either warn lines or an explicit 'none'";
  return Out;
}

struct CorpusCase {
  ClientKind Client;
  const char *Stem;
};

class ClientCorpus : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(ClientCorpus, MatchesExpectedOutcome) {
  const CorpusCase &C = GetParam();
  const std::string Dir = std::string(USHER_TEST_INPUT_DIR) + "/clients/" +
                          core::clientName(C.Client) + "/";
  const std::string Source = readFile(Dir + C.Stem + ".tc");
  ExpectedOutcome Expected = readExpected(Dir + C.Stem + ".expected");

  auto M = parser::parseModuleOrAbort(Source);
  core::UsherOptions Opts;
  Opts.Clients = {C.Client};
  core::UsherResult R = core::runUsher(*M, Opts);
  ASSERT_EQ(R.ClientPlans.size(), 1u) << C.Stem;
  const core::ClientPlanInfo &Info = R.ClientPlans[0];
  ASSERT_EQ(Info.Kind, C.Client) << C.Stem;

  if (Expected.HaveSinks) {
    EXPECT_EQ(Info.SinkCandidates, Expected.Sinks) << C.Stem;
  }
  if (Expected.HaveUnsafe) {
    EXPECT_EQ(Info.UnsafeSinks, Expected.Unsafe) << C.Stem;
  }
  if (Expected.HaveChecks) {
    EXPECT_EQ(Info.ChosenChecks, Expected.Checks) << C.Stem;
  }

  // Guided and full plans execute side by side in one interpreter pass.
  core::ClientBuildInputs FullIn(*M);
  FullIn.PA = R.PA.get();
  core::ClientPlanInfo Full = core::buildClientFullPlan(C.Client, FullIn);
  std::vector<runtime::PlanExec> Plans{
      {&Info.Plan, core::clientShadowSemantics(C.Client)},
      {&Full.Plan, core::clientShadowSemantics(C.Client)}};
  ExecutionReport Rep = Interpreter(*M, Plans).run();
  ASSERT_EQ(Rep.Reason, ExitReason::Finished) << C.Stem << ": "
                                              << Rep.TrapMessage;

  const auto &Warns = Rep.PlanResults[0].ToolWarnings;
  ASSERT_EQ(Warns.size(), Expected.Warns.size()) << C.Stem;
  for (size_t Idx = 0; Idx != Warns.size(); ++Idx) {
    EXPECT_EQ(Warns[Idx].At->getLoc().Line, Expected.Warns[Idx].first)
        << C.Stem << " warning " << Idx;
    EXPECT_EQ(Warns[Idx].At->getLoc().Col, Expected.Warns[Idx].second)
        << C.Stem << " warning " << Idx;
  }

  // The guided plan must report exactly what full instrumentation does.
  const auto &FullWarns = Rep.PlanResults[1].ToolWarnings;
  ASSERT_EQ(FullWarns.size(), Warns.size()) << C.Stem << ": guided vs full";
  for (size_t Idx = 0; Idx != Warns.size(); ++Idx)
    EXPECT_EQ(FullWarns[Idx].At, Warns[Idx].At)
        << C.Stem << ": guided vs full at warning " << Idx;

  // A clean verdict must come from proof, not from a missing candidate:
  // the full plan always checks at least as many sites.
  EXPECT_GE(Full.ChosenChecks, Info.ChosenChecks) << C.Stem;
}

std::string caseName(const ::testing::TestParamInfo<CorpusCase> &I) {
  return std::string(core::clientName(I.param.Client)) + "_" + I.param.Stem;
}

INSTANTIATE_TEST_SUITE_P(
    AddrLeak, ClientCorpus,
    ::testing::Values(
        CorpusCase{ClientKind::AddrLeak, "leak_heap_to_global"},
        CorpusCase{ClientKind::AddrLeak, "guarded_no_leak"},
        CorpusCase{ClientKind::AddrLeak, "clean_strong_update"}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    Bounds, ClientCorpus,
    ::testing::Values(
        CorpusCase{ClientKind::Bounds, "oob_const_index"},
        CorpusCase{ClientKind::Bounds, "guarded_in_range"},
        CorpusCase{ClientKind::Bounds, "clean_const_in_range"}),
    caseName);

} // namespace
