//===- tests/InterpreterTest.cpp - Runtime semantics unit tests ------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/Instrumentation.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace usher;
using runtime::ExecutionReport;
using runtime::ExitReason;
using runtime::Interpreter;

namespace {

ExecutionReport runNative(const char *Src,
                          runtime::ExecLimits Limits = {}) {
  // The module must outlive the returned report: warnings carry
  // Instruction pointers (Warning::At) that tests inspect.
  static std::unique_ptr<ir::Module> M;
  M = parser::parseModuleOrAbort(Src);
  return Interpreter(*M, nullptr, runtime::CostModel(), Limits).run();
}

//===----------------------------------------------------------------------===//
// Arithmetic semantics
//===----------------------------------------------------------------------===//

TEST(InterpreterSemantics, BasicArithmetic) {
  ExecutionReport R = runNative(R"(
    func main() {
      a = 10;
      b = 3;
      s = a + b;
      d = a - b;
      m = a * b;
      q = a / b;
      r = a % b;
      x = s + d;
      x = x + m;
      x = x + q;
      x = x + r;
      ret x;
    }
  )");
  EXPECT_EQ(R.MainResult, 13 + 7 + 30 + 3 + 1);
}

TEST(InterpreterSemantics, DivisionByZeroYieldsZero) {
  ExecutionReport R = runNative(R"(
    func main() {
      a = 7;
      b = 0;
      q = a / b;
      r = a % b;
      x = q + r;
      ret x;
    }
  )");
  EXPECT_EQ(R.Reason, ExitReason::Finished);
  EXPECT_EQ(R.MainResult, 0);
}

TEST(InterpreterSemantics, ShiftsMaskTheCount) {
  ExecutionReport R = runNative(R"(
    func main() {
      a = 1;
      b = a << 66;
      ret b;
    }
  )");
  EXPECT_EQ(R.MainResult, 4) << "shift count is taken mod 64";
}

TEST(InterpreterSemantics, ComparisonsYieldZeroOne) {
  ExecutionReport R = runNative(R"(
    func main() {
      a = 2 < 3;
      b = 3 <= 3;
      c = 4 == 5;
      d = 4 != 5;
      e = 9 > 1;
      f = 1 >= 2;
      x = a + b;
      x = x + c;
      x = x + d;
      x = x + e;
      x = x + f;
      ret x;
    }
  )");
  EXPECT_EQ(R.MainResult, 4);
}

TEST(InterpreterSemantics, PointerComparisonAndTruthiness) {
  ExecutionReport R = runNative(R"(
    func main() {
      p = alloc heap 1 init;
      q = p;
      r = alloc heap 1 init;
      same = p == q;
      diff = p == r;
      nul = 0;
      pz = p == nul;
      x = same * 100;
      y = diff * 10;
      z = pz * 1;
      t = x + y;
      t = t + z;
      if p goto ptrtrue;
      ret -1;
    ptrtrue:
      ret t;
    }
  )");
  EXPECT_EQ(R.MainResult, 100) << "p==q, p!=r, p!=0, and p is truthy";
}

//===----------------------------------------------------------------------===//
// Memory semantics and traps
//===----------------------------------------------------------------------===//

TEST(InterpreterSemantics, FieldsAreIndependentCells) {
  ExecutionReport R = runNative(R"(
    func main() {
      p = alloc stack 3 init;
      a = gep p, 0;
      b = gep p, 2;
      *a = 11;
      *b = 22;
      x = *a;
      y = *b;
      z = x * 100;
      z = z + y;
      ret z;
    }
  )");
  EXPECT_EQ(R.MainResult, 1122);
}

TEST(InterpreterTraps, WildDereference) {
  ExecutionReport R = runNative(R"(
    func main() {
      x = 5;
      y = *x;
      ret y;
    }
  )");
  EXPECT_EQ(R.Reason, ExitReason::Trap);
  EXPECT_NE(R.TrapMessage.find("non-pointer"), std::string::npos);
}

TEST(InterpreterTraps, OutOfRangeField) {
  ExecutionReport R = runNative(R"(
    func main() {
      p = alloc stack 2 init;
      q = gep p, 7;
      x = *q;
      ret x;
    }
  )");
  EXPECT_EQ(R.Reason, ExitReason::Trap);
  EXPECT_NE(R.TrapMessage.find("out of range"), std::string::npos);
}

TEST(InterpreterTraps, CallDepthLimit) {
  runtime::ExecLimits Limits;
  Limits.MaxCallDepth = 64;
  ExecutionReport R = runNative(R"(
    func forever(n) {
      m = n + 1;
      r = forever(m);
      ret r;
    }
    func main() {
      x = forever(0);
      ret x;
    }
  )",
                                Limits);
  EXPECT_EQ(R.Reason, ExitReason::Trap);
  EXPECT_NE(R.TrapMessage.find("depth"), std::string::npos);
}

TEST(InterpreterTraps, StepLimitStopsInfiniteLoops) {
  runtime::ExecLimits Limits;
  Limits.MaxSteps = 1000;
  ExecutionReport R = runNative(R"(
    func main() {
    spin:
      goto spin;
    }
  )",
                                Limits);
  EXPECT_EQ(R.Reason, ExitReason::StepLimit);
}

TEST(InterpreterTraps, StepLimitUnderInstrumentationReportsFiniteCost) {
  // A looping, fully defined program under full instrumentation: the run
  // must terminate at the step limit with a finite cost report and no
  // warning — an execution limit is not a bug report.
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      x = 0;
    spin:
      x = x + 1;
      goto spin;
    }
  )");
  core::InstrumentationPlan Plan = core::buildFullInstrumentation(*M);
  runtime::ExecLimits Limits;
  Limits.MaxSteps = 10'000;
  ExecutionReport R =
      Interpreter(*M, &Plan, runtime::CostModel(), Limits).run();
  EXPECT_EQ(R.Reason, ExitReason::StepLimit);
  EXPECT_TRUE(R.ToolWarnings.empty());
  // The interpreter stops on the first step past the limit.
  EXPECT_LE(R.Steps, Limits.MaxSteps + 1);
  EXPECT_GT(R.Steps, 0u);
  EXPECT_GT(R.DynShadowOps, 0u);
  EXPECT_GT(R.BaseCost, 0.0);
  EXPECT_GT(R.ShadowCost, 0.0);
}

//===----------------------------------------------------------------------===//
// Oracle (ground-truth definedness)
//===----------------------------------------------------------------------===//

TEST(Oracle, TracksDefinednessThroughCalls) {
  ExecutionReport R = runNative(R"(
    func pass(v) { ret v; }
    func main() {
      z = 0;
      if z goto setit;
      goto use;
    setit:
      u = 1;
    use:
      w = pass(u);
      if w goto a;
      ret 0;
    a:
      ret 1;
    }
  )");
  ASSERT_EQ(R.OracleWarnings.size(), 1u);
  EXPECT_TRUE(isa<ir::CondBrInst>(R.OracleWarnings[0].At));
}

TEST(Oracle, CapturedVoidReturnIsUndefined) {
  ExecutionReport R = runNative(R"(
    func noval() { ret; }
    func main() {
      x = noval();
      if x goto a;
      ret 0;
    a:
      ret 1;
    }
  )");
  EXPECT_EQ(R.OracleWarnings.size(), 1u);
}

TEST(Oracle, InitializedAllocReadsAreDefined) {
  ExecutionReport R = runNative(R"(
    func main() {
      p = alloc heap 4 init;
      x = *p;
      if x goto a;
      ret 0;
    a:
      ret 1;
    }
  )");
  EXPECT_TRUE(R.OracleWarnings.empty());
  EXPECT_EQ(R.MainResult, 0) << "calloc-style memory reads as zero";
}

TEST(Oracle, WarningsCountOccurrences) {
  ExecutionReport R = runNative(R"(
    func main() {
      z = 0;
      if z goto setit;
      goto loop;
    setit:
      u = 1;
      goto loop;
    loop:
      i = 0;
    head:
      c = i < 5;
      if c goto body;
      ret 0;
    body:
      if u goto next;
      goto next;
    next:
      i = i + 1;
      goto head;
    }
  )");
  ASSERT_EQ(R.OracleWarnings.size(), 1u);
  EXPECT_EQ(R.OracleWarnings[0].Occurrences, 5u);
}

TEST(Oracle, WarningInstructionsOutliveTheHelper) {
  // Regression for the Warning::At dangling-pointer pattern: runNative
  // parks the parsed module in a static slot precisely so callers can
  // dereference warning instructions after it returns. The contract is
  // one live module at a time — capture everything needed from a report
  // before the next runNative call replaces the module it points into.
  const char *Src = R"(
    func main() {
      z = 0;
      if z goto setit;
      goto use;
    setit:
      u = 1;
    use:
      if u goto a;
      ret 0;
    a:
      ret 1;
    }
  )";
  ExecutionReport A = runNative(Src);
  ASSERT_EQ(A.OracleWarnings.size(), 1u);
  const ir::Instruction *At = A.OracleWarnings[0].At;
  ASSERT_NE(At, nullptr);
  EXPECT_TRUE(isa<ir::CondBrInst>(At));
  uint32_t Id = At->getId();
  unsigned Line = At->getLoc().Line;
  EXPECT_GT(Line, 0u);

  // Re-running the helper frees the first module. The captured *values*
  // stay valid and — because renumbering is parse-stable — identify the
  // same instruction in the new parse; the old pointer does not.
  ExecutionReport B = runNative(Src);
  ASSERT_EQ(B.OracleWarnings.size(), 1u);
  EXPECT_EQ(B.OracleWarnings[0].At->getId(), Id)
      << "instruction ids are the cross-parse comparison key";
  EXPECT_EQ(B.OracleWarnings[0].At->getLoc().Line, Line);
}

//===----------------------------------------------------------------------===//
// Instrumented execution mechanics
//===----------------------------------------------------------------------===//

TEST(InstrumentedRun, FullPlanMatchesOracleExactly) {
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      z = 0;
      if z goto setit;
      goto use;
    setit:
      u = 1;
    use:
      v = u + 1;
      if v goto a;
      ret 0;
    a:
      ret 1;
    }
  )");
  core::InstrumentationPlan Plan = core::buildFullInstrumentation(*M);
  ExecutionReport R = Interpreter(*M, &Plan).run();
  ASSERT_EQ(R.ToolWarnings.size(), R.OracleWarnings.size());
  for (size_t I = 0; I != R.ToolWarnings.size(); ++I) {
    EXPECT_EQ(R.ToolWarnings[I].At, R.OracleWarnings[I].At);
    EXPECT_EQ(R.ToolWarnings[I].Occurrences,
              R.OracleWarnings[I].Occurrences);
  }
}

TEST(InstrumentedRun, CostsAccumulateOnlyUnderAPlan) {
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      x = 1;
      y = x + 2;
      ret y;
    }
  )");
  ExecutionReport Native = Interpreter(*M, nullptr).run();
  EXPECT_EQ(Native.ShadowCost, 0.0);
  EXPECT_GT(Native.BaseCost, 0.0);

  core::InstrumentationPlan Plan = core::buildFullInstrumentation(*M);
  ExecutionReport Full = Interpreter(*M, &Plan).run();
  EXPECT_GT(Full.ShadowCost, 0.0);
  EXPECT_EQ(Full.BaseCost, Native.BaseCost)
      << "instrumentation must not change the base cost";
  EXPECT_GT(Full.slowdownPercent(), 0.0);
}

} // namespace
