//===- tests/DefinednessPlannerTest.cpp - Gamma, planner, Opt I/II ---------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/Usher.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace usher;
using core::ToolVariant;
using core::UsherOptions;
using core::UsherResult;

namespace {

UsherResult runOn(ir::Module &M, ToolVariant V, unsigned ContextK = 1) {
  UsherOptions Opts;
  Opts.Variant = V;
  Opts.ContextK = ContextK;
  return core::runUsher(M, Opts);
}

//===----------------------------------------------------------------------===//
// Definedness resolution
//===----------------------------------------------------------------------===//

TEST(Definedness, ConstantsAndAllocPointersAreDefined) {
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      x = 5;
      p = alloc heap 1 init;
      if x goto a;
      *p = 2;
    a:
      ret x;
    }
  )");
  UsherResult R = runOn(*M, ToolVariant::UsherFull);
  for (const vfg::VFG::CriticalUse &Use : R.G->criticalUses())
    EXPECT_TRUE(R.Gamma->isDefined(Use.Node))
        << "everything here is provably defined";
  EXPECT_EQ(R.Plan.countChecks(), 0u);
}

TEST(Definedness, UndefinedLocalReachesF) {
  // `u` is only assigned on a dead branch: its entry version is undefined
  // and merges into the use.
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      z = 0;
      if z goto setit;
      goto use;
    setit:
      u = 1;
    use:
      if u goto a;
      ret 0;
    a:
      ret 1;
    }
  )");
  UsherResult R = runOn(*M, ToolVariant::UsherFull);
  EXPECT_GE(R.Plan.countChecks(), 1u);
  runtime::ExecutionReport Rep = runtime::Interpreter(*M, &R.Plan).run();
  EXPECT_EQ(Rep.ToolWarnings.size(), 1u);
}

/// One callee, two call sites: only one passes a possibly-undefined
/// argument. With call/return matching (k=1) the other call site's result
/// stays provably defined; context-insensitively (k=0) the undefinedness
/// smears across both.
const char *ContextSrc = R"(
  func id(v) { ret v; }
  func main() {
    z = 0;
    if z goto setit;
    goto next;
  setit:
    u = 1;
  next:
    d = 5;
    r1 = id(u);
    r2 = id(d);
    if r1 goto a;
    goto b;
  a:
    x = 0;
  b:
    if r2 goto c;
    ret 0;
  c:
    ret 1;
  }
)";

TEST(Definedness, CallSiteMatchingPreventsSmearing) {
  auto M = parser::parseModuleOrAbort(ContextSrc);
  UsherResult R = runOn(*M, ToolVariant::UsherFull, /*ContextK=*/1);
  // Only the r1 branch needs a check; r2 is provably defined.
  EXPECT_EQ(R.Plan.countChecks(), 1u);
}

TEST(Definedness, ContextInsensitiveResolutionSmears) {
  auto M = parser::parseModuleOrAbort(ContextSrc);
  UsherResult R = runOn(*M, ToolVariant::UsherFull, /*ContextK=*/0);
  // Without matching, the undefined value flows out of both call sites.
  EXPECT_EQ(R.Plan.countChecks(), 2u);
}

TEST(Definedness, UninitializedGlobalIsUndefinedUntilWritten) {
  auto M = parser::parseModuleOrAbort(R"(
    global g[1] uninit;
    func main() {
      p = g;
      x = *p;
      if x goto a;
      ret 0;
    a:
      ret 1;
    }
  )");
  UsherResult R = runOn(*M, ToolVariant::UsherFull);
  EXPECT_GE(R.Plan.countChecks(), 1u);
  runtime::ExecutionReport Rep = runtime::Interpreter(*M, &R.Plan).run();
  EXPECT_EQ(Rep.ToolWarnings.size(), 1u);
  EXPECT_EQ(Rep.OracleWarnings.size(), 1u);
}

TEST(Definedness, InitializedGlobalNeedsNothing) {
  auto M = parser::parseModuleOrAbort(R"(
    global g[1] init;
    func main() {
      p = g;
      x = *p;
      if x goto a;
      ret 0;
    a:
      ret 1;
    }
  )");
  UsherResult R = runOn(*M, ToolVariant::UsherFull);
  EXPECT_EQ(R.Plan.countChecks(), 0u);
}

//===----------------------------------------------------------------------===//
// Planner: strong-update shortcuts and demand
//===----------------------------------------------------------------------===//

TEST(Planner, DefinedChainsCostNothing) {
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      a = 1;
      b = a + 2;
      c = b * 3;
      if c goto x;
      c = 0;
    x:
      ret c;
    }
  )");
  UsherResult R = runOn(*M, ToolVariant::UsherFull);
  EXPECT_EQ(R.Plan.countChecks(), 0u);
  EXPECT_EQ(R.Plan.countShadowOps(), 0u);
}

TEST(Planner, UntrackedValuesAreNotInstrumented) {
  // `dead` feeds no critical operation; even though it is undefined, no
  // shadow work is emitted for it ("a value never used at any critical
  // operation does not need to be tracked").
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      z = 0;
      if z goto setit;
      goto next;
    setit:
      dead = 1;
    next:
      copy1 = dead + 1;
      copy2 = copy1 + 1;
      ret copy2;
    }
  )");
  UsherResult R = runOn(*M, ToolVariant::UsherFull);
  EXPECT_EQ(R.Plan.countShadowOps(), 0u);
  EXPECT_EQ(R.Plan.countChecks(), 0u);
}

TEST(Planner, FullInstrumentationShadowsEverything) {
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      a = 1;
      b = a + 2;
      p = alloc stack 1 uninit;
      *p = b;
      x = *p;
      if x goto done;
      x = 0;
    done:
      ret x;
    }
  )");
  UsherResult Full = runOn(*M, ToolVariant::MSanFull);
  // Every value-producing statement gets a shadow op; load/store/branch
  // get checks (branch cond + two pointer uses).
  EXPECT_EQ(Full.Plan.countChecks(), 3u);
  EXPECT_GE(Full.Plan.countShadowOps(), 6u);
}

TEST(Planner, GuidedIsNeverLargerThanFull) {
  for (uint64_t Seed = 0; Seed != 30; ++Seed) {
    auto Src = parser::parseModuleOrAbort(R"(
      func main() { x = 1; ret x; }
    )");
    (void)Src;
  }
  // Structural comparison over the benchmark-like programs is covered by
  // SuiteTest; here a targeted case with mixed defined/undefined flow.
  auto M = parser::parseModuleOrAbort(R"(
    global cfg[1] uninit;
    func main() {
      p = cfg;
      x = *p;
      y = 1;
      s = x + y;
      if s goto a;
      ret 0;
    a:
      ret s;
    }
  )");
  UsherResult Full = runOn(*M, ToolVariant::MSanFull);
  UsherResult Guided = runOn(*M, ToolVariant::UsherFull);
  EXPECT_LE(Guided.Plan.countChecks(), Full.Plan.countChecks());
  EXPECT_LE(Guided.Plan.countPropagationReads(),
            Full.Plan.countPropagationReads());
  EXPECT_GE(Guided.Plan.countChecks(), 1u);
}

//===----------------------------------------------------------------------===//
// Opt I: value-flow simplification
//===----------------------------------------------------------------------===//

TEST(OptI, SimplifiesCopyChains) {
  // x flows through a chain of copies/binops into a check; Opt I reads
  // the sources directly instead of maintaining every interior shadow.
  auto M = parser::parseModuleOrAbort(R"(
    global cfg[1] uninit;
    func main() {
      p = cfg;
      a = *p;
      b = a + 1;
      c = b + 2;
      d = c + 3;
      if d goto x;
      ret 0;
    x:
      ret d;
    }
  )");
  UsherResult NoOpt = runOn(*M, ToolVariant::UsherTLAT);
  UsherResult Opt = runOn(*M, ToolVariant::UsherOptI);
  EXPECT_EQ(Opt.Stats.NumSimplifiedMFCs, 1u);
  EXPECT_LT(Opt.Plan.countShadowOps(), NoOpt.Plan.countShadowOps());
  // Same detection behaviour.
  runtime::ExecutionReport A = runtime::Interpreter(*M, &NoOpt.Plan).run();
  runtime::ExecutionReport B = runtime::Interpreter(*M, &Opt.Plan).run();
  EXPECT_EQ(A.ToolWarnings.size(), B.ToolWarnings.size());
}

TEST(OptI, RefusesUnsafeMultiDefSources) {
  // The chain variable `t` is redefined between its use and the sink, so
  // sigma(t) at the sink would be stale: Opt I must fall back.
  auto M = parser::parseModuleOrAbort(R"(
    global cfg[1] uninit;
    func main() {
      p = cfg;
      t = *p;
      a = t + 1;
      t = 0;
      b = a + t;
      if b goto x;
      ret 0;
    x:
      ret b;
    }
  )");
  UsherResult Opt = runOn(*M, ToolVariant::UsherOptI);
  runtime::ExecutionReport Rep = runtime::Interpreter(*M, &Opt.Plan).run();
  // cfg[0] is undefined, flows into b: exactly one warning, no false
  // negatives from a stale shadow read.
  EXPECT_EQ(Rep.ToolWarnings.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Opt II: redundant check elimination
//===----------------------------------------------------------------------===//

TEST(OptII, SuppressesDominatedDuplicate) {
  // Figure 9: b1 flows into checks at l1 and l2; l1 dominates l2, so the
  // l2 check is redundant.
  auto M = parser::parseModuleOrAbort(R"(
    global src[1] uninit;
    func main() {
      p = src;
      a = 1;
      b = *p;
      c = a + b;
      if c goto l2part;
      goto l2part;
    l2part:
      d = 0;
      e = b + d;
      if e goto done;
      ret 0;
    done:
      ret 1;
    }
  )");
  UsherResult NoOpt2 = runOn(*M, ToolVariant::UsherOptI);
  UsherResult WithOpt2 = runOn(*M, ToolVariant::UsherFull);
  EXPECT_GT(WithOpt2.Stats.NumRedirectedNodes, 0u);
  EXPECT_LT(WithOpt2.Plan.countChecks(), NoOpt2.Plan.countChecks());

  // The defect is still reported (at the dominating check).
  runtime::ExecutionReport Rep =
      runtime::Interpreter(*M, &WithOpt2.Plan).run();
  EXPECT_FALSE(Rep.ToolWarnings.empty());
}

TEST(OptII, DoesNotSuppressNonDominatedChecks) {
  // The two checks sit on sibling branches: neither dominates the other,
  // so both must stay.
  auto M = parser::parseModuleOrAbort(R"(
    global src[1] uninit;
    func main() {
      p = src;
      b = *p;
      z = 0;
      if z goto left;
      goto right;
    left:
      e1 = b + 1;
      if e1 goto join;
      goto join;
    right:
      e2 = b + 2;
      if e2 goto join;
      goto join;
    join:
      ret 0;
    }
  )");
  UsherResult NoOpt2 = runOn(*M, ToolVariant::UsherOptI);
  UsherResult WithOpt2 = runOn(*M, ToolVariant::UsherFull);
  EXPECT_EQ(WithOpt2.Plan.countChecks(), NoOpt2.Plan.countChecks());
}

//===----------------------------------------------------------------------===//
// UsherTL conservatism
//===----------------------------------------------------------------------===//

TEST(UsherTL, AlwaysShadowsMemory) {
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      p = alloc stack 1 init;
      *p = 1;
      x = *p;
      if x goto a;
      ret 0;
    a:
      ret 1;
    }
  )");
  UsherResult TL = runOn(*M, ToolVariant::UsherTL);
  UsherResult AT = runOn(*M, ToolVariant::UsherTLAT);
  // TL cannot prove the load defined; the address-taken analysis can.
  EXPECT_GE(TL.Plan.countChecks(), 1u);
  EXPECT_EQ(AT.Plan.countChecks(), 0u);
  EXPECT_GT(TL.Plan.countShadowOps(), AT.Plan.countShadowOps());
}

} // namespace
