//===- tests/PipelineSmokeTest.cpp - End-to-end pipeline smoke tests -------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/Usher.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace usher;
using core::ToolVariant;
using core::UsherOptions;
using runtime::ExecutionReport;
using runtime::ExitReason;
using runtime::Interpreter;

namespace {

/// Runs one program under one tool variant; returns (report, static plan).
ExecutionReport runVariant(ir::Module &M, ToolVariant V) {
  UsherOptions Opts;
  Opts.Variant = V;
  core::UsherResult R = core::runUsher(M, Opts);
  Interpreter Interp(M, &R.Plan);
  return Interp.run();
}

TEST(PipelineSmoke, DefinedProgramIsQuiet) {
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      p = alloc stack 2 uninit;
      *p = 41;
      x = *p;
      y = x + 1;
      if y goto done;
      y = 0;
    done:
      ret y;
    }
  )");
  for (ToolVariant V :
       {ToolVariant::MSanFull, ToolVariant::UsherTL, ToolVariant::UsherTLAT,
        ToolVariant::UsherOptI, ToolVariant::UsherFull}) {
    ExecutionReport Rep = runVariant(*M, V);
    EXPECT_EQ(Rep.Reason, ExitReason::Finished);
    EXPECT_EQ(Rep.MainResult, 42);
    EXPECT_TRUE(Rep.ToolWarnings.empty())
        << "variant " << core::toolVariantName(V) << " warned spuriously";
    EXPECT_TRUE(Rep.OracleWarnings.empty());
  }
}

TEST(PipelineSmoke, UninitializedHeapReadIsCaught) {
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      p = alloc heap 2 uninit;
      x = *p;
      if x goto done;
      x = 1;
    done:
      ret x;
    }
  )");
  // The undefined value is used at the branch: every variant must warn.
  for (ToolVariant V :
       {ToolVariant::MSanFull, ToolVariant::UsherTL, ToolVariant::UsherTLAT,
        ToolVariant::UsherOptI, ToolVariant::UsherFull}) {
    ExecutionReport Rep = runVariant(*M, V);
    EXPECT_EQ(Rep.Reason, ExitReason::Finished);
    EXPECT_FALSE(Rep.ToolWarnings.empty())
        << "variant " << core::toolVariantName(V) << " missed the bug";
    EXPECT_FALSE(Rep.OracleWarnings.empty());
  }
}

TEST(PipelineSmoke, GuidedIsCheaperThanFull) {
  auto M = parser::parseModuleOrAbort(R"(
    func sum(n) {
      s = 0;
      i = 0;
    loop:
      c = i < n;
      d = c == 0;
      if d goto done;
      s = s + i;
      i = i + 1;
      goto loop;
    done:
      ret s;
    }
    func main() {
      r = sum(1000);
      ret r;
    }
  )");
  ExecutionReport Full = runVariant(*M, ToolVariant::MSanFull);
  ExecutionReport Guided = runVariant(*M, ToolVariant::UsherFull);
  EXPECT_EQ(Full.MainResult, Guided.MainResult);
  EXPECT_EQ(Full.MainResult, 1000 * 999 / 2);
  // Everything is provably defined: guided instrumentation should execute
  // (almost) no shadow work while full instrumentation shadows every step.
  EXPECT_GT(Full.DynShadowOps, 1000u);
  EXPECT_LT(Guided.DynShadowOps + Guided.DynChecks,
            (Full.DynShadowOps + Full.DynChecks) / 10);
}

} // namespace
