//===- tests/ServeFaultTest.cpp - I/O fault campaign over the service ------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-process half of the serve fault campaign: every enumerated I/O
/// fault site is armed in turn and a full protocol round trip (encode,
/// frame, reassemble, decode, handle, encode reply, decode reply) is
/// driven through a Session. The contract under every fault is the same:
/// the faulted request either still answers correctly (snapshot faults
/// cost warm-start, nothing else) or fails as a structured Error reply
/// (allocation faults), and the session keeps serving correct answers
/// afterwards. The socket-level half (socket-drop-reply against a real
/// daemon) lives in the `serve_fault`-labeled ctest campaign driven by
/// tools/check_serve_json.py.
///
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "serve/Session.h"
#include "support/FaultInjection.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <new>
#include <string>

using namespace usher;
using namespace usher::serve;

namespace {

const char *Program = "func main() {\n"
                      "  p = alloc stack 1 uninit;\n"
                      "  x = *p;\n"
                      "  ret x;\n"
                      "}\n";

class ServeFaultTest : public ::testing::Test {
protected:
  void SetUp() override {
    disarmIoFaults();
    // Per-test directory: ctest -j runs each gtest case as its own
    // process, so a shared path would be wiped from under a sibling.
    Dir = std::filesystem::temp_directory_path() /
          ("usher-serve-fault-test-" +
           std::to_string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->line()));
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
  }
  void TearDown() override {
    disarmIoFaults();
    std::filesystem::remove_all(Dir);
  }

  std::filesystem::path Dir;
};

/// One full wire round trip against \p Sess, exactly as the daemon would
/// run it: the armed ParseAlloc fault surfaces here as std::bad_alloc
/// from decodeRequest, and — like the daemon — the round trip converts
/// it into a structured Error reply.
Reply roundTrip(Session &Sess, const Request &Rq) {
  FrameReader Reader;
  const std::string Framed = frame(encodeRequest(Rq));
  Reader.append(Framed.data(), Framed.size());
  std::string Body;
  EXPECT_EQ(Reader.next(Body), FrameReader::Result::Frame);

  Request Decoded;
  Reply Rp;
  try {
    std::string Err;
    EXPECT_TRUE(decodeRequest(Body, Decoded, &Err)) << Err;
    Rp = Sess.handle(Decoded);
  } catch (const std::bad_alloc &) {
    Rp = Reply();
    Rp.Id = Decoded.Id; // Id decodes before the allocation that faults.
    Rp.Status = ReplyStatus::Error;
    Rp.Payload = "internal error: request parse allocation failed";
  }

  Reply Out;
  std::string Err;
  EXPECT_TRUE(decodeReply(encodeReply(Rp), Out, &Err)) << Err;
  return Out;
}

Request analyzeReq(uint64_t Id) {
  Request Rq;
  Rq.Kind = Op::Analyze;
  Rq.Id = Id;
  Rq.Source = Program;
  return Rq;
}

TEST_F(ServeFaultTest, EveryIoFaultSiteIsSurvivable) {
  // Fault-free baseline payload from a throwaway session.
  std::string Expected;
  {
    Session Base(SessionOptions{});
    Reply Rp = roundTrip(Base, analyzeReq(1));
    ASSERT_EQ(Rp.Status, ReplyStatus::Ok);
    Expected = Rp.Payload;
  }

  for (unsigned I = 0; I != NumIoFaultSites; ++I) {
    const IoFaultSite Site = static_cast<IoFaultSite>(I);
    SCOPED_TRACE(ioFaultSiteName(Site));

    // A fresh on-disk store per site so snapshot faults cannot leak
    // state between campaign legs.
    SessionOptions SO;
    SO.SnapshotDir =
        (Dir / ioFaultSiteName(Site)).string();
    std::filesystem::create_directories(SO.SnapshotDir);
    Session Sess(SO);

    armIoFault({Site, 1, /*Once=*/true});
    Reply Faulted = roundTrip(Sess, analyzeReq(2));
    if (Site == IoFaultSite::ParseAlloc) {
      // The injected allocation failure is isolated to its request.
      EXPECT_EQ(Faulted.Status, ReplyStatus::Error);
      EXPECT_EQ(Faulted.Id, 2u);
    } else {
      // Snapshot faults (and socket-drop-reply, which has no socket to
      // act on here) never change the answer — only warm-start.
      EXPECT_EQ(Faulted.Status, ReplyStatus::Ok);
      EXPECT_EQ(Faulted.Payload, Expected);
    }

    // The fault has fired (or could not fire in-process); the session
    // must serve the exact baseline afterwards.
    disarmIoFaults();
    Reply After = roundTrip(Sess, analyzeReq(3));
    EXPECT_EQ(After.Status, ReplyStatus::Ok);
    EXPECT_EQ(After.Payload, Expected);
  }
}

TEST_F(ServeFaultTest, PersistentSnapshotWriteFaultOnlyCostsWarmStart) {
  SessionOptions SO;
  SO.SnapshotDir = Dir.string();
  Session Sess(SO);

  armIoFault({IoFaultSite::SnapshotWrite, 1, /*Once=*/false});
  Reply First = roundTrip(Sess, analyzeReq(1));
  ASSERT_EQ(First.Status, ReplyStatus::Ok);
  Reply Second = roundTrip(Sess, analyzeReq(2));
  ASSERT_EQ(Second.Status, ReplyStatus::Ok);
  EXPECT_EQ(Second.Payload, First.Payload);
  // Nothing persisted, so nothing was served warm.
  EXPECT_EQ(Sess.servedWarm(), 0u);
  EXPECT_GE(Sess.store().stats().WriteFailures, 1u);
}

TEST_F(ServeFaultTest, PersistentTornWriteNeverServesGarbage) {
  SessionOptions SO;
  SO.SnapshotDir = Dir.string();
  Session Sess(SO);

  armIoFault({IoFaultSite::SnapshotTornWrite, 1, /*Once=*/false});
  Reply First = roundTrip(Sess, analyzeReq(1));
  ASSERT_EQ(First.Status, ReplyStatus::Ok);
  disarmIoFaults();

  // Torn records reached the final names; the next request discards them
  // all and recomputes the identical payload.
  Reply Second = roundTrip(Sess, analyzeReq(2));
  ASSERT_EQ(Second.Status, ReplyStatus::Ok);
  EXPECT_EQ(Second.Payload, First.Payload);
  EXPECT_EQ(Sess.servedWarm(), 0u);
  EXPECT_GE(Sess.store().stats().CorruptDiscarded, 1u);
}

TEST_F(ServeFaultTest, PersistentReadFaultDisablesWarmStartOnly) {
  SessionOptions SO;
  SO.SnapshotDir = Dir.string();
  Session Sess(SO);

  Reply Cold = roundTrip(Sess, analyzeReq(1));
  ASSERT_EQ(Cold.Status, ReplyStatus::Ok);

  armIoFault({IoFaultSite::SnapshotRead, 1, /*Once=*/false});
  Reply Unwarmed = roundTrip(Sess, analyzeReq(2));
  ASSERT_EQ(Unwarmed.Status, ReplyStatus::Ok);
  EXPECT_EQ(Unwarmed.Payload, Cold.Payload);
  EXPECT_EQ(Sess.servedWarm(), 0u);

  disarmIoFaults();
  Reply Warm = roundTrip(Sess, analyzeReq(3));
  EXPECT_EQ(Warm.Payload, Cold.Payload);
  EXPECT_EQ(Sess.servedWarm(), 1u);
}

} // namespace
