//===- tests/ThreadPoolTest.cpp - Work-stealing pool + ordered reduce ------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the support/ThreadPool machinery the deterministic
/// parallel engine rests on: work stealing under skewed task sizes,
/// exception propagation to the submitter, clean shutdown with tasks
/// still queued, and parallelMapOrdered's index-order guarantee under a
/// hostile (sleep-jittered) scheduler. Also the 8-thread Budget and
/// Statistic charging regressions the satellite tasks ask for.
///
//===----------------------------------------------------------------------===//

#include "support/Budget.h"
#include "support/Statistic.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace usher;

namespace {

//===----------------------------------------------------------------------===//
// ThreadPool basics
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::atomic<int> Count{0};
  parallelForOrdered(&Pool, 100,
                     [&](size_t) { Count.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPool, ThreadCountIsClamped) {
  ThreadPool Tiny(0);
  EXPECT_EQ(Tiny.numThreads(), 1u);
  EXPECT_GE(ThreadPool::defaultJobs(), 1u);
  EXPECT_LE(ThreadPool::defaultJobs(), 64u);
}

TEST(ThreadPool, StealsUnderSkewedTaskSizes) {
  // Round-robin distribution puts every long task on the same deques; a
  // worker that drains its own short tasks must steal the rest. With 4
  // workers and tasks where every 4th is slow, all slow tasks initially
  // land on worker 0's deque — zero steals would serialize them.
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  parallelForOrdered(&Pool, 64, [&](size_t I) {
    if (I % 4 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 64);
  // The submitting thread's caller-help runs are not counted, so every
  // observed steal is a genuine worker-to-worker migration.
  EXPECT_GT(Pool.stealCount(), 0u);
}

TEST(ThreadPool, ExceptionPropagatesToSubmitter) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  try {
    parallelForOrdered(&Pool, 32, [&](size_t I) {
      Ran.fetch_add(1, std::memory_order_relaxed);
      if (I == 7)
        throw std::runtime_error("item seven failed");
    });
    FAIL() << "expected the worker exception to rethrow on the submitter";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "item seven failed");
  }
  // The region still completed: an exception marks its item, it does not
  // cancel the others.
  EXPECT_EQ(Ran.load(), 32);
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  // Multiple failing items must rethrow deterministically — the lowest
  // index — regardless of completion order (higher indices get no sleep,
  // so they typically *finish* first).
  ThreadPool Pool(4);
  for (int Round = 0; Round != 5; ++Round) {
    try {
      parallelForOrdered(&Pool, 16, [&](size_t I) {
        if (I == 3) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          throw std::runtime_error("three");
        }
        if (I >= 10)
          throw std::runtime_error("ten-plus");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "three");
    }
  }
}

TEST(ThreadPool, CleanShutdownDrainsQueuedTasks) {
  // Destroying the pool with tasks still queued must run them all, not
  // drop them: destruction is a drain + join, not a cancel.
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 200; ++I)
      Pool.async([&Ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        Ran.fetch_add(1, std::memory_order_relaxed);
      });
    // Fall out of scope immediately: most tasks are still queued.
  }
  EXPECT_EQ(Ran.load(), 200);
}

//===----------------------------------------------------------------------===//
// parallelMapOrdered
//===----------------------------------------------------------------------===//

TEST(ThreadPool, MapOrderedPreservesIndexOrderUnderJitter) {
  // A hostile scheduler: pseudo-random per-item sleeps make completion
  // order very different from index order. The result vector must still
  // be exactly [f(0), f(1), ...].
  ThreadPool Pool(8);
  for (int Round = 0; Round != 3; ++Round) {
    std::vector<int> Out = parallelMapOrdered(&Pool, 200, [&](size_t I) {
      unsigned Jitter = static_cast<unsigned>((I * 2654435761u) >> 22) % 3;
      std::this_thread::sleep_for(std::chrono::microseconds(50 * Jitter));
      return static_cast<int>(I * I);
    });
    ASSERT_EQ(Out.size(), 200u);
    for (size_t I = 0; I != Out.size(); ++I)
      ASSERT_EQ(Out[I], static_cast<int>(I * I)) << "slot " << I;
  }
}

TEST(ThreadPool, MapOrderedHandlesMoveOnlyResults) {
  ThreadPool Pool(4);
  std::vector<std::unique_ptr<int>> Out =
      parallelMapOrdered(&Pool, 50, [](size_t I) {
        return std::make_unique<int>(static_cast<int>(I));
      });
  for (size_t I = 0; I != Out.size(); ++I)
    EXPECT_EQ(*Out[I], static_cast<int>(I));
}

TEST(ThreadPool, NullPoolRunsInlineInOrder) {
  // The serial reference path: no pool means strict index order on the
  // calling thread — the semantics every parallel phase must match.
  std::vector<size_t> Seen;
  parallelForOrdered(nullptr, 10, [&](size_t I) { Seen.push_back(I); });
  std::vector<size_t> Expected(10);
  std::iota(Expected.begin(), Expected.end(), size_t(0));
  EXPECT_EQ(Seen, Expected);
}

//===----------------------------------------------------------------------===//
// Thread-safe Budget charging (satellite regression)
//===----------------------------------------------------------------------===//

TEST(ThreadPool, BudgetChargesFromEightThreadsMatchSerialTotal) {
  // 8 threads x 10'000 single-step charges on an unlimited budget must
  // total exactly what one thread charging 80'000 would: charging is a
  // relaxed atomic sum, no charge may be lost or double-counted.
  BudgetLimits L;
  L.MaxStepsPerPhase = 1'000'000; // Armed, far above the total.
  Budget B(L);
  B.beginPhase(BudgetPhase::OptII);
  std::vector<std::thread> Threads;
  for (int T = 0; T != 8; ++T)
    Threads.emplace_back([&B] {
      for (int I = 0; I != 10'000; ++I)
        ASSERT_TRUE(B.step());
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(B.stepsUsed(), 80'000u);
  EXPECT_FALSE(B.exhausted());
}

TEST(ThreadPool, BudgetExhaustionUnderContentionIsDeterministic) {
  // When the limit sits inside the charged range, concurrent charging
  // must (a) always exhaust, (b) always report the same kind. Repeat to
  // give racing schedules a chance to disagree.
  for (int Round = 0; Round != 20; ++Round) {
    BudgetLimits L;
    L.MaxStepsPerPhase = 1'000;
    Budget B(L);
    B.beginPhase(BudgetPhase::OptII);
    std::vector<std::thread> Threads;
    for (int T = 0; T != 8; ++T)
      Threads.emplace_back([&B] {
        while (B.step()) {
        }
      });
    for (std::thread &T : Threads)
      T.join();
    ASSERT_TRUE(B.exhausted());
    ASSERT_EQ(B.exhaustKind(), ExhaustKind::Steps);
  }
}

TEST(ThreadPool, FaultFiresExactlyOnceUnderContention) {
  // An injected :once fault charged from 8 threads fires on exactly one
  // arm: the first. The second arm must run to its step limit instead.
  FaultPlan F;
  F.Phase = BudgetPhase::OptII;
  F.AtStep = 100;
  F.Once = true;
  BudgetLimits L;
  L.MaxStepsPerPhase = 100'000;
  Budget B(L, F);

  auto ChargeFromThreads = [&B] {
    std::vector<std::thread> Threads;
    for (int T = 0; T != 8; ++T)
      Threads.emplace_back([&B] {
        while (B.step()) {
        }
      });
    for (std::thread &T : Threads)
      T.join();
  };

  B.beginPhase(BudgetPhase::OptII);
  ChargeFromThreads();
  EXPECT_EQ(B.exhaustKind(), ExhaustKind::Injected);

  B.beginPhase(BudgetPhase::OptII);
  ChargeFromThreads();
  EXPECT_EQ(B.exhaustKind(), ExhaustKind::Steps);
}

//===----------------------------------------------------------------------===//
// Thread-safe Statistic counters (satellite regression)
//===----------------------------------------------------------------------===//

TEST(ThreadPool, StatisticShardsFoldToSerialTotals) {
  // Per-worker shards folded after the join must equal direct serial
  // counting, whatever the partition.
  StatisticRegistry Reg;
  ThreadPool Pool(8);
  std::vector<StatisticShard> Shards(16);
  parallelForOrdered(&Pool, Shards.size(), [&](size_t I) {
    for (int N = 0; N != 1'000; ++N)
      Shards[I].add("pipeline.items");
    Shards[I].add("pipeline.chunks");
  });
  for (const StatisticShard &S : Shards)
    Reg.fold(S);
  EXPECT_EQ(Reg.get("pipeline.items"), 16'000u);
  EXPECT_EQ(Reg.get("pipeline.chunks"), 16u);
}

TEST(ThreadPool, StatisticRegistryIsThreadSafe) {
  // Direct concurrent add() is the cold path but must still be exact.
  StatisticRegistry Reg;
  std::vector<std::thread> Threads;
  for (int T = 0; T != 8; ++T)
    Threads.emplace_back([&Reg] {
      for (int I = 0; I != 2'000; ++I)
        Reg.add("shared.counter");
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Reg.get("shared.counter"), 16'000u);
}

} // namespace
