//===- tests/DiagnosisDifferentialTest.cpp - Diagnosis vs. the oracle ------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle harness for the static UUV diagnosis engine.
/// The shadow interpreter's OracleWarnings are ground truth; against them
/// the engine must deliver two directional guarantees on every program:
///
///  - soundness: every instruction the oracle warns about is classified
///    MAY or DEFINITE (never CLEAN);
///  - must-precision: every DEFINITE finding fires at runtime.
///
/// Checked over the full Spec2000-like suite, the labeled bug corpus in
/// tests/inputs/diagnosis/, and a pinned range of generator seeds. The
/// seeded ppmatch-style bug in 197.parser must come out DEFINITE with a
/// witness path ending at its critical operation.
///
//===----------------------------------------------------------------------===//

#include "core/StaticDiagnosis.h"
#include "core/Usher.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "workload/Generator.h"
#include "workload/Spec2000.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

using namespace usher;
using core::StaticDiagnosis;
using core::Verdict;
using runtime::ExecutionReport;
using runtime::ExitReason;
using runtime::Interpreter;

namespace {

struct DiagRun {
  core::UsherResult R;
  std::unique_ptr<StaticDiagnosis> Diag;
};

/// Runs the full pipeline plus the diagnosis engine on \p M.
DiagRun diagnose(ir::Module &M,
                 core::DiagnosisOptions DOpts = core::DiagnosisOptions()) {
  core::UsherOptions Opts;
  Opts.Variant = core::ToolVariant::UsherFull;
  DiagRun Out{core::runUsher(M, Opts), nullptr};
  EXPECT_TRUE(Out.R.PA && Out.R.CG && Out.R.G);
  Out.Diag =
      std::make_unique<StaticDiagnosis>(*Out.R.PA, *Out.R.CG, *Out.R.G, DOpts);
  return Out;
}

/// Verdict per instruction, merged over that instruction's critical uses
/// (an instruction has at most one, but stay defensive: keep the worst).
std::map<const ir::Instruction *, Verdict>
verdictByInstruction(const vfg::VFG &G, const StaticDiagnosis &Diag) {
  std::map<const ir::Instruction *, Verdict> Out;
  const auto &Uses = G.criticalUses();
  const auto &Vs = Diag.report().UseVerdicts;
  for (size_t Idx = 0; Idx != Uses.size(); ++Idx) {
    auto [It, New] = Out.emplace(Uses[Idx].I, Vs[Idx]);
    if (!New && static_cast<int>(Vs[Idx]) > static_cast<int>(It->second))
      It->second = Vs[Idx];
  }
  return Out;
}

std::set<const ir::Instruction *>
oracleSet(const ExecutionReport &Rep) {
  std::set<const ir::Instruction *> S;
  for (const runtime::Warning &W : Rep.OracleWarnings)
    S.insert(W.At);
  return S;
}

/// The two directional guarantees, asserted for one program.
void expectDifferentialAgreement(const DiagRun &D, const ExecutionReport &Rep,
                                 const std::string &Tag) {
  auto ByInst = verdictByInstruction(*D.R.G, *D.Diag);
  auto Oracle = oracleSet(Rep);

  // Soundness: a runtime-confirmed UUV is never classified CLEAN. Every
  // oracle site must be a critical use the engine saw at all.
  for (const ir::Instruction *I : Oracle) {
    auto It = ByInst.find(I);
    ASSERT_NE(It, ByInst.end())
        << Tag << ": oracle warned at an instruction the diagnosis engine "
        << "does not even consider a critical use (inst#" << I->getId() << ")";
    EXPECT_NE(It->second, Verdict::Clean)
        << Tag << ": oracle warning classified CLEAN at inst#" << I->getId();
  }

  // Must-precision: every DEFINITE finding fires at runtime.
  for (const core::Finding &F : D.Diag->report().Findings) {
    if (F.V != Verdict::Definite)
      continue;
    EXPECT_TRUE(Oracle.count(F.I))
        << Tag << ": DEFINITE finding at inst#" << F.I->getId()
        << " never fired in the oracle run";
    EXPECT_FALSE(F.Witness.empty())
        << Tag << ": DEFINITE finding at inst#" << F.I->getId()
        << " has no witness path";
  }
}

//===----------------------------------------------------------------------===//
// Labeled bug corpus
//===----------------------------------------------------------------------===//

struct ExpectedFinding {
  std::string VerdictName;
  unsigned Line, Col;
  std::string Var;
};

std::vector<ExpectedFinding> readExpected(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::vector<ExpectedFinding> Out;
  std::string LineBuf;
  while (std::getline(In, LineBuf)) {
    if (LineBuf.empty() || LineBuf[0] == '#')
      continue;
    if (LineBuf == "none")
      return {};
    std::istringstream LS(LineBuf);
    ExpectedFinding E;
    std::string Loc;
    LS >> E.VerdictName >> Loc >> E.Var;
    size_t Sep = Loc.find(':');
    if (Sep == std::string::npos) {
      ADD_FAILURE() << "bad location '" << Loc << "' in " << Path;
      continue;
    }
    E.Line = static_cast<unsigned>(std::stoul(Loc.substr(0, Sep)));
    E.Col = static_cast<unsigned>(std::stoul(Loc.substr(Sep + 1)));
    Out.push_back(E);
  }
  return Out;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

class DiagnosisCorpus : public ::testing::TestWithParam<const char *> {};

TEST_P(DiagnosisCorpus, MatchesExpectedFindings) {
  const std::string Stem = GetParam();
  const std::string Dir = std::string(USHER_TEST_INPUT_DIR) + "/diagnosis/";
  auto M = parser::parseModuleOrAbort(readFile(Dir + Stem + ".tc"));
  auto Expected = readExpected(Dir + Stem + ".expected");

  DiagRun D = diagnose(*M);
  const auto &Findings = D.Diag->report().Findings;
  ASSERT_EQ(Findings.size(), Expected.size()) << Stem;
  for (size_t Idx = 0; Idx != Findings.size(); ++Idx) {
    EXPECT_EQ(core::verdictName(Findings[Idx].V), Expected[Idx].VerdictName)
        << Stem << " finding " << Idx;
    EXPECT_EQ(Findings[Idx].I->getLoc().Line, Expected[Idx].Line)
        << Stem << " finding " << Idx;
    EXPECT_EQ(Findings[Idx].I->getLoc().Col, Expected[Idx].Col)
        << Stem << " finding " << Idx;
    EXPECT_EQ(Findings[Idx].Var->getName(), Expected[Idx].Var)
        << Stem << " finding " << Idx;
  }

  // The corpus programs obey the differential guarantees too.
  ExecutionReport Rep = Interpreter(*M, nullptr).run();
  ASSERT_EQ(Rep.Reason, ExitReason::Finished) << Rep.TrapMessage;
  expectDifferentialAgreement(D, Rep, Stem);
}

INSTANTIATE_TEST_SUITE_P(Corpus, DiagnosisCorpus,
                         ::testing::Values("definite", "may_guarded",
                                           "clean_strong_update"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

//===----------------------------------------------------------------------===//
// Spec2000-like suite
//===----------------------------------------------------------------------===//

class DiagnosisSuite : public ::testing::TestWithParam<size_t> {};

TEST_P(DiagnosisSuite, SoundAndMustPrecise) {
  const auto &B = workload::spec2000Suite()[GetParam()];
  auto M = workload::loadBenchmark(B);
  DiagRun D = diagnose(*M);
  ExecutionReport Rep = Interpreter(*M, nullptr).run();
  ASSERT_EQ(Rep.Reason, ExitReason::Finished) << B.Name;
  expectDifferentialAgreement(D, Rep, B.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, DiagnosisSuite, ::testing::Range<size_t>(0, 15),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = workload::spec2000Suite()[Info.param].Name;
      for (char &C : Name)
        if (C == '.')
          C = '_';
      return Name;
    });

TEST(DiagnosisSuite, ParserPpmatchBugIsDefiniteWithWitness) {
  // The one seeded true positive (197.parser's ppmatch-style bug) must be
  // reported DEFINITE, and its witness path must end at the critical op.
  const workload::BenchmarkProgram *Parser = nullptr;
  for (const auto &B : workload::spec2000Suite())
    if (B.ExpectedBugSites)
      Parser = &B;
  ASSERT_NE(Parser, nullptr);
  ASSERT_EQ(Parser->Name, "197.parser");

  auto M = workload::loadBenchmark(*Parser);
  DiagRun D = diagnose(*M);
  ExecutionReport Rep = Interpreter(*M, nullptr).run();
  ASSERT_EQ(Rep.Reason, ExitReason::Finished);
  auto Oracle = oracleSet(Rep);
  ASSERT_EQ(Oracle.size(), 1u);

  const core::Finding *Definite = nullptr;
  for (const core::Finding &F : D.Diag->report().Findings)
    if (F.V == Verdict::Definite) {
      EXPECT_EQ(Definite, nullptr) << "more than one DEFINITE in 197.parser";
      Definite = &F;
    }
  ASSERT_NE(Definite, nullptr) << "ppmatch bug not classified DEFINITE";
  EXPECT_TRUE(Oracle.count(Definite->I))
      << "DEFINITE finding is not the oracle-confirmed ppmatch site";
  ASSERT_FALSE(Definite->Witness.empty());
  EXPECT_EQ(Definite->Witness.front().Node, vfg::VFG::RootF);
  EXPECT_EQ(Definite->Witness.back().Node, Definite->UseNode)
      << "witness path does not end at the critical op's use node";
}

//===----------------------------------------------------------------------===//
// Seeded random programs
//===----------------------------------------------------------------------===//

// The pinned seed range of the acceptance harness. Soundness is
// unconditional (Gamma is sound by construction); must-precision is the
// empirical claim the anchor knobs encode, validated over this range.
class DiagnosisProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiagnosisProperty, SoundAndMustPrecise) {
  const uint64_t Seed = GetParam();
  auto M = workload::generateProgram(Seed);
  ExecutionReport Rep = Interpreter(*M, nullptr).run();
  ASSERT_EQ(Rep.Reason, ExitReason::Finished)
      << "seed " << Seed << ": " << Rep.TrapMessage;
  core::DiagnosisOptions DOpts;
  DOpts.AnchorPhis = false;
  DOpts.AnchorCallFlows = false;
  DOpts.AnchorExactAllocChis = false;
  DOpts.AssumeFunctionCoverage = false;
  DiagRun D = diagnose(*M, DOpts);
  expectDifferentialAgreement(D, Rep, "seed " + std::to_string(Seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagnosisProperty,
                         ::testing::Range<uint64_t>(0, 200));

} // namespace
