//===- tests/TransformsTest.cpp - Transformation correctness ---------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "transforms/Transforms.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace usher;
using runtime::ExecutionReport;
using runtime::ExitReason;
using runtime::Interpreter;
using transforms::OptPreset;

namespace {

TEST(Mem2Reg, PromotesSimpleEntryAlloc) {
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      p = alloc stack 2 uninit;
      q = gep p, 1;
      *p = 3;
      *q = 4;
      a = *p;
      b = *q;
      r = a + b;
      ret r;
    }
  )");
  size_t ObjsBefore = M->objects().size();
  EXPECT_TRUE(transforms::promoteMemoryToRegisters(*M));
  EXPECT_LT(M->objects().size(), ObjsBefore);
  ir::verifyModuleOrAbort(*M);
  ExecutionReport Rep = Interpreter(*M, nullptr).run();
  EXPECT_EQ(Rep.MainResult, 7);
  // No loads/stores should remain.
  for (const auto &F : M->functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        EXPECT_FALSE(isa<ir::LoadInst>(I.get()) ||
                     isa<ir::StoreInst>(I.get()));
}

TEST(Mem2Reg, DoesNotPromoteEscapingAlloc) {
  auto M = parser::parseModuleOrAbort(R"(
    func use(p) {
      *p = 9;
      ret;
    }
    func main() {
      p = alloc stack 1 uninit;
      use(p);
      x = *p;
      ret x;
    }
  )");
  transforms::promoteMemoryToRegisters(*M);
  ir::verifyModuleOrAbort(*M);
  ExecutionReport Rep = Interpreter(*M, nullptr).run();
  EXPECT_EQ(Rep.MainResult, 9);
}

TEST(Mem2Reg, PreservesUninitializedSemantics) {
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      p = alloc stack 1 uninit;
      x = *p;
      if x goto one;
      ret 0;
    one:
      ret 1;
    }
  )");
  ExecutionReport Before = Interpreter(*M, nullptr).run();
  ASSERT_EQ(Before.OracleWarnings.size(), 1u);
  EXPECT_TRUE(transforms::promoteMemoryToRegisters(*M));
  ExecutionReport After = Interpreter(*M, nullptr).run();
  // The undefined use moved from the load to the branch but is still
  // there, and the result is unchanged.
  EXPECT_EQ(After.MainResult, Before.MainResult);
  EXPECT_EQ(After.OracleWarnings.size(), 1u);
}

TEST(Inliner, InlinesAndPreservesResult) {
  auto M = parser::parseModuleOrAbort(R"(
    func add(a, b) {
      c = a + b;
      ret c;
    }
    func main() {
      x = add(20, 22);
      y = add(x, 0);
      ret y;
    }
  )");
  EXPECT_TRUE(transforms::inlineSmallFunctions(*M));
  ir::verifyModuleOrAbort(*M);
  // No calls remain in main.
  const ir::Function *Main = M->findFunction("main");
  for (const auto &BB : Main->blocks())
    for (const auto &I : BB->instructions())
      EXPECT_FALSE(isa<ir::CallInst>(I.get()));
  ExecutionReport Rep = Interpreter(*M, nullptr).run();
  EXPECT_EQ(Rep.MainResult, 42);
}

TEST(LocalOpt, FoldsConstantsAndBranches) {
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      a = 6;
      b = 7;
      c = a * b;
      d = 1;
      if d goto yes;
      ret 0;
    yes:
      ret c;
    }
  )");
  EXPECT_TRUE(transforms::propagateAndFold(*M));
  ir::verifyModuleOrAbort(*M);
  ExecutionReport Rep = Interpreter(*M, nullptr).run();
  EXPECT_EQ(Rep.MainResult, 42);
  // The branch became a goto.
  const ir::Function *Main = M->findFunction("main");
  for (const auto &BB : Main->blocks())
    for (const auto &I : BB->instructions())
      EXPECT_FALSE(isa<ir::CondBrInst>(I.get()));
}

TEST(DCE, RemovesDeadLoadHidingTheBug) {
  // The classic Section 4.6 effect: optimizing away a dead load removes
  // the undefined use entirely.
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      p = alloc heap 1 uninit;
      x = *p;
      ret 5;
    }
  )");
  ExecutionReport Before = Interpreter(*M, nullptr).run();
  EXPECT_EQ(Before.OracleWarnings.size(), 0u); // Load ptr is defined.
  EXPECT_TRUE(transforms::eliminateDeadCode(*M));
  ir::verifyModuleOrAbort(*M);
  const ir::Function *Main = M->findFunction("main");
  size_t Loads = 0;
  for (const auto &BB : Main->blocks())
    for (const auto &I : BB->instructions())
      Loads += isa<ir::LoadInst>(I.get());
  EXPECT_EQ(Loads, 0u);
}

class PresetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PresetProperty, PresetsPreserveResults) {
  const uint64_t Seed = GetParam();
  auto Reference = workload::generateProgram(Seed);
  ExecutionReport Native = Interpreter(*Reference, nullptr).run();
  ASSERT_EQ(Native.Reason, ExitReason::Finished);

  for (OptPreset P : {OptPreset::O0IM, OptPreset::O1, OptPreset::O2}) {
    auto M = workload::generateProgram(Seed);
    transforms::runPreset(*M, P);
    ExecutionReport Rep = Interpreter(*M, nullptr).run();
    ASSERT_EQ(Rep.Reason, ExitReason::Finished)
        << "seed " << Seed << " preset " << transforms::optPresetName(P)
        << ": " << Rep.TrapMessage;
    EXPECT_EQ(Rep.MainResult, Native.MainResult)
        << "seed " << Seed << " preset " << transforms::optPresetName(P);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresetProperty,
                         ::testing::Range<uint64_t>(0, 80));

} // namespace
