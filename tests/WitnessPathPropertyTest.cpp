//===- tests/WitnessPathPropertyTest.cpp - Witness paths are real ----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property test for the witness-path reconstructor: every codeFlow the
/// diagnosis engine emits must be a *real, context-valid* path in the VFG:
///
///  - it starts at the F root and ends at the finding's use node;
///  - every step's edge (kind and call-site label included) exists in the
///    graph's user-edge lists;
///  - replaying the call/return labels through the shared ContextStack
///    from the empty context never hits an unrealizable return.
///
/// Checked over the Spec2000-like suite, the diagnosis bug corpus, and a
/// range of generator seeds.
///
//===----------------------------------------------------------------------===//

#include "core/ContextStack.h"
#include "core/StaticDiagnosis.h"
#include "core/Usher.h"
#include "parser/Parser.h"
#include "workload/Generator.h"
#include "workload/Spec2000.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace usher;
using core::ContextStack;
using core::Finding;
using core::StaticDiagnosis;

namespace {

/// True if the graph has a user edge From -> To with this kind and label.
bool hasUserEdge(const vfg::VFG &G, uint32_t From, uint32_t To,
                 vfg::EdgeKind Kind, uint32_t CallSite) {
  for (const vfg::Edge &E : G.users(From))
    if (E.Node == To && E.Kind == Kind && E.CallSite == CallSite)
      return true;
  return false;
}

/// Asserts the structural and context validity of one witness path.
void checkWitness(const vfg::VFG &G, unsigned K, const Finding &F,
                  const std::string &Tag) {
  ASSERT_FALSE(F.Witness.empty()) << Tag << ": empty witness checked";
  EXPECT_EQ(F.Witness.front().Node, vfg::VFG::RootF)
      << Tag << ": witness does not start at the F root";
  EXPECT_EQ(F.Witness.back().Node, F.UseNode)
      << Tag << ": witness does not end at the reported use node";
  EXPECT_FALSE(F.Witness.back().HasEdge)
      << Tag << ": final step claims an outgoing edge";

  ContextStack Ctx = ContextStack::empty();
  for (size_t Pos = 0; Pos + 1 < F.Witness.size(); ++Pos) {
    const core::WitnessStep &S = F.Witness[Pos];
    const core::WitnessStep &Next = F.Witness[Pos + 1];
    ASSERT_TRUE(S.HasEdge) << Tag << ": interior step " << Pos
                           << " has no edge";
    EXPECT_TRUE(hasUserEdge(G, S.Node, Next.Node, S.Kind, S.CallSite))
        << Tag << ": step " << Pos << " edge " << S.Node << " -> "
        << Next.Node << " is not in the VFG";
    if (K == 0)
      continue;
    switch (S.Kind) {
    case vfg::EdgeKind::Direct:
      break;
    case vfg::EdgeKind::Call:
      Ctx = Ctx.pushed(S.CallSite, K);
      break;
    case vfg::EdgeKind::Ret: {
      ContextStack Out = ContextStack::empty();
      ASSERT_TRUE(Ctx.popped(S.CallSite, Out))
          << Tag << ": step " << Pos << " returns through call site "
          << S.CallSite << " with a different pending call on the stack";
      Ctx = Out;
      break;
    }
    }
  }
}

void checkAllWitnesses(ir::Module &M, const std::string &Tag) {
  core::UsherOptions Opts;
  Opts.Variant = core::ToolVariant::UsherFull;
  core::UsherResult R = core::runUsher(M, Opts);
  ASSERT_TRUE(R.PA && R.CG && R.G) << Tag;
  core::DiagnosisOptions DOpts;
  StaticDiagnosis Diag(*R.PA, *R.CG, *R.G, DOpts);
  for (const Finding &F : Diag.report().Findings) {
    if (F.Witness.empty())
      continue; // Capped searches may leave no witness; nothing to check.
    checkWitness(*R.G, DOpts.ContextK, F, Tag);
  }
}

class WitnessSuite : public ::testing::TestWithParam<size_t> {};

TEST_P(WitnessSuite, EveryWitnessIsAContextValidPath) {
  const auto &B = workload::spec2000Suite()[GetParam()];
  auto M = workload::loadBenchmark(B);
  checkAllWitnesses(*M, B.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WitnessSuite, ::testing::Range<size_t>(0, 15),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = workload::spec2000Suite()[Info.param].Name;
      for (char &C : Name)
        if (C == '.')
          C = '_';
      return Name;
    });

class WitnessSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WitnessSeeds, EveryWitnessIsAContextValidPath) {
  auto M = workload::generateProgram(GetParam());
  checkAllWitnesses(*M, "seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessSeeds,
                         ::testing::Range<uint64_t>(0, 100));

TEST(WitnessCorpus, CorpusWitnessesAreContextValidPaths) {
  for (const char *Stem :
       {"definite", "may_guarded", "clean_strong_update"}) {
    std::string Path = std::string(USHER_TEST_INPUT_DIR) + "/diagnosis/" +
                       Stem + ".tc";
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << "cannot open " << Path;
    std::ostringstream SS;
    SS << In.rdbuf();
    auto M = parser::parseModuleOrAbort(SS.str());
    checkAllWitnesses(*M, Stem);
  }
}

} // namespace
