//===- tests/QueryTest.cpp - Demand-driven query engine unit tests ---------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the demand CFL-reachability engine (analysis/DemandVFA.h)
// and the runUsherQuery pipeline entry: result semantics (witnesses,
// caching, exhaustion), the "no whole-program Andersen" statistic the
// speed ladder promises, and the cross-thread memoization surface the
// tsan_query_memo tier entry re-runs under ThreadSanitizer.
//
//===----------------------------------------------------------------------===//

#include "analysis/DemandVFA.h"
#include "core/Usher.h"
#include "parser/Parser.h"
#include "support/Budget.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <thread>
#include <vector>

using namespace usher;
using analysis::DemandVFA;
using analysis::QueryResult;

namespace {

/// A program with both a reachable undef flow (the uninitialized x feeds
/// a branch condition, a critical use) and a definitely-initialized leg
/// (q is strongly updated before its reads), so the VFG has reachable and
/// unreachable (node, node) pairs to aim queries at.
const char *QueryProgram = R"(
func main() {
  p = alloc stack 1 uninit;
  q = alloc stack 1 uninit;
  *q = 7;
  x = *p;
  y = *q;
  if x goto t;
  ret y;
t:
  ret y;
}
)";

struct BuiltVFG {
  std::unique_ptr<ir::Module> M;
  std::optional<core::UsherResult> R;

  explicit BuiltVFG(const char *Src) {
    M = parser::parseModuleOrAbort(Src);
    core::UsherOptions Opts;
    Opts.Variant = core::ToolVariant::UsherFull;
    R.emplace(core::runUsher(*M, Opts));
    EXPECT_TRUE(R->G != nullptr);
    EXPECT_GT(R->G->numNodes(), 2u);
  }

  const vfg::VFG &graph() const { return *R->G; }
};

/// First critical-use node, or aborts the test: the canonical "sink a
/// client would ask about".
uint32_t firstCriticalUse(const vfg::VFG &G) {
  const auto &Uses = G.criticalUses();
  EXPECT_FALSE(Uses.empty());
  return Uses.empty() ? 0 : Uses.front().Node;
}

TEST(Query, ReachableQueryYieldsValidWitness) {
  BuiltVFG B(QueryProgram);
  const vfg::VFG &G = B.graph();
  DemandVFA Q(G);

  // Undefinedness flows from F along user edges; the uninitialized load's
  // critical use is reachable from the F root, the strongly-updated one
  // is not. Find the reachable one and check its witness end to end.
  ASSERT_FALSE(G.criticalUses().empty());
  uint32_t Sink = ~0u;
  for (const vfg::VFG::CriticalUse &U : G.criticalUses()) {
    QueryResult R = Q.cflReachable(vfg::VFG::RootF, U.Node);
    ASSERT_FALSE(R.Exhausted);
    if (R.Reachable) {
      Sink = U.Node;
      break;
    }
  }
  ASSERT_NE(Sink, ~0u) << "no critical use reachable from F";
  QueryResult R = Q.cflReachable(vfg::VFG::RootF, Sink);
  ASSERT_TRUE(R.Reachable);
  ASSERT_FALSE(R.Witness.empty());
  EXPECT_EQ(R.Witness.front().Node, vfg::VFG::RootF);
  EXPECT_EQ(R.Witness.back().Node, Sink);
  std::string Err;
  EXPECT_TRUE(analysis::validateQueryWitness(G, vfg::VFG::RootF, Sink,
                                             R.Witness, 1, &Err))
      << Err;
}

TEST(Query, UnreachableQueryHasNoWitness) {
  BuiltVFG B(QueryProgram);
  DemandVFA Q(B.graph());

  // Nothing flows into a root: T has no incoming user edges from F.
  QueryResult R = Q.cflReachable(vfg::VFG::RootF, vfg::VFG::RootT);
  ASSERT_FALSE(R.Exhausted);
  EXPECT_FALSE(R.Reachable);
  EXPECT_TRUE(R.Witness.empty());
}

TEST(Query, RepeatQueryIsServedFromCache) {
  BuiltVFG B(QueryProgram);
  DemandVFA Q(B.graph());
  uint32_t Sink = firstCriticalUse(B.graph());

  QueryResult Cold = Q.cflReachable(vfg::VFG::RootF, Sink);
  EXPECT_FALSE(Cold.FromCache);
  EXPECT_GT(Cold.StatesVisited, 0u);

  QueryResult Warm = Q.cflReachable(vfg::VFG::RootF, Sink);
  EXPECT_TRUE(Warm.FromCache);
  EXPECT_EQ(Warm.StatesVisited, 0u);
  EXPECT_EQ(Warm.Reachable, Cold.Reachable);
  ASSERT_EQ(Warm.Witness.size(), Cold.Witness.size());
  EXPECT_EQ(Q.memoHits(), 1u);
  EXPECT_EQ(Q.queriesAnswered(), 2u);
}

TEST(Query, OutOfRangeNodesAreUnreachableAndUncached) {
  BuiltVFG B(QueryProgram);
  DemandVFA Q(B.graph());
  const uint32_t Bogus = B.graph().numNodes() + 7;

  for (int Round = 0; Round != 2; ++Round) {
    QueryResult R = Q.cflReachable(Bogus, vfg::VFG::RootF);
    EXPECT_FALSE(R.Reachable);
    EXPECT_FALSE(R.FromCache) << "round " << Round;
    EXPECT_TRUE(R.Witness.empty());
  }
}

TEST(Query, ExhaustedQueryIsInconclusiveAndNeverCached) {
  BuiltVFG B(QueryProgram);
  BudgetLimits Limits;
  Limits.MaxStepsPerPhase = 1;
  Budget Bud(Limits);
  Bud.beginPhase(BudgetPhase::Definedness);
  DemandVFA Q(B.graph(), DemandVFA::Options(), &Bud);
  uint32_t Sink = firstCriticalUse(B.graph());

  QueryResult R = Q.cflReachable(vfg::VFG::RootF, Sink);
  EXPECT_TRUE(R.Exhausted);
  // The aborted answer must not poison the cache.
  QueryResult Again = Q.cflReachable(vfg::VFG::RootF, Sink);
  EXPECT_FALSE(Again.FromCache);
}

//===----------------------------------------------------------------------===//
// The pipeline entry: the speed-ladder contract
//===----------------------------------------------------------------------===//

TEST(Query, PipelineAnswersOnUnifyEngineWithoutAndersen) {
  auto M = parser::parseModuleOrAbort(QueryProgram);
  core::UsherOptions UO;
  // The demand fast lane the CLI and the serve daemon configure.
  UO.Pta.Solver = analysis::SolverKind::Unify;
  core::QueryOutcome Q = core::runUsherQuery(*M, UO, vfg::VFG::RootF, 2);
  ASSERT_TRUE(Q.Valid) << Q.Error;
  EXPECT_FALSE(Q.Exhausted);
  EXPECT_GT(Q.NumNodes, 2u);
  // The acceptance assertion: the answer was computed on the unification
  // engine — the query never paid for a whole-program Andersen
  // resolution, and the engine statistic proves which solver ran.
  EXPECT_EQ(Q.Solver.Engine, analysis::SolverKind::Unify);
}

TEST(Query, PipelineRejectsOutOfRangeIds) {
  auto M = parser::parseModuleOrAbort(QueryProgram);
  core::UsherOptions UO;
  UO.Pta.Solver = analysis::SolverKind::Unify;
  core::QueryOutcome Q = core::runUsherQuery(*M, UO, 0, 0xfffffff0u);
  EXPECT_FALSE(Q.Valid);
  EXPECT_NE(Q.Error.find("out of range"), std::string::npos);
}

TEST(Query, PipelineAgreesWithWholeProgramOnGeneratedPrograms) {
  // Spot-check the demand answer against whole-program Andersen-backed
  // resolution on a few generated programs (the fuzz campaign's
  // query-equivalence oracle does this at scale; this pins it in tier-1).
  for (uint64_t Seed : {3u, 11u}) {
    auto M = workload::generateProgram(Seed);
    core::UsherOptions Full;
    Full.Variant = core::ToolVariant::UsherFull;
    core::UsherResult R = core::runUsher(*M, Full);
    ASSERT_TRUE(R.G != nullptr);
    if (R.G->numNodes() == 0)
      continue;
    DemandVFA Ref(*R.G);

    for (const vfg::VFG::CriticalUse &U : R.G->criticalUses()) {
      auto M2 = workload::generateProgram(Seed);
      core::UsherOptions UO;
      UO.Pta.Solver = analysis::SolverKind::Unify;
      core::QueryOutcome Q =
          core::runUsherQuery(*M2, UO, vfg::VFG::RootF, U.Node);
      ASSERT_TRUE(Q.Valid) << Q.Error;
      QueryResult Want = Ref.cflReachable(vfg::VFG::RootF, U.Node);
      EXPECT_EQ(Q.Reachable, Want.Reachable)
          << "seed " << Seed << " sink " << U.Node;
    }
  }
}

//===----------------------------------------------------------------------===//
// Parallel memoization (also runs under the tsan label as tsan_query_memo)
//===----------------------------------------------------------------------===//

TEST(Query, ParallelQueriesAgreeAndShareTheMemo) {
  auto M = workload::generateProgram(5);
  core::UsherOptions Opts;
  Opts.Variant = core::ToolVariant::UsherFull;
  core::UsherResult R = core::runUsher(*M, Opts);
  ASSERT_TRUE(R.G != nullptr);
  const vfg::VFG &G = *R.G;
  const uint32_t N = G.numNodes();
  ASSERT_GT(N, 2u);

  // Deterministic query mix; every thread asks the same questions, so
  // most answers after the first arrivals come from the shared cache.
  std::vector<std::pair<uint32_t, uint32_t>> Pairs;
  for (uint32_t I = 0; I != 16; ++I)
    Pairs.push_back({static_cast<uint32_t>((I * 2654435761ull) % N),
                     static_cast<uint32_t>((I * 40503ull + 1) % N)});

  DemandVFA Serial(G);
  std::vector<bool> Want;
  for (auto [S, T] : Pairs)
    Want.push_back(Serial.cflReachable(S, T).Reachable);

  DemandVFA Shared(G);
  constexpr unsigned NumThreads = 8;
  std::vector<std::vector<bool>> Got(NumThreads,
                                     std::vector<bool>(Pairs.size()));
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (size_t I = 0; I != Pairs.size(); ++I)
        Got[T][I] =
            Shared.cflReachable(Pairs[I].first, Pairs[I].second).Reachable;
    });
  for (std::thread &Th : Threads)
    Th.join();

  for (unsigned T = 0; T != NumThreads; ++T)
    for (size_t I = 0; I != Pairs.size(); ++I)
      EXPECT_EQ(Got[T][I], Want[I]) << "thread " << T << " pair " << I;
  EXPECT_GT(Shared.memoHits(), 0u);
  EXPECT_EQ(Shared.queriesAnswered(), NumThreads * Pairs.size());
}

} // namespace
