//===- tests/AnalysisTest.cpp - CFG/dominators/callgraph/PTA/modref --------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/CallGraph.h"
#include "analysis/Dominators.h"
#include "analysis/ModRef.h"
#include "analysis/PointerAnalysis.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace usher;
using namespace usher::analysis;

namespace {

std::unique_ptr<ir::Module> parse(const char *Src) {
  return parser::parseModuleOrAbort(Src);
}

const ir::BasicBlock *blockNamed(const ir::Function *F,
                                 std::string_view Name) {
  for (const auto &BB : F->blocks())
    if (BB->getName() == Name)
      return BB.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// CFG and dominators
//===----------------------------------------------------------------------===//

const char *DiamondSrc = R"(
  func main() {
    x = 1;
    if x goto left;
    goto right;
  left:
    y = 2;
    goto join;
  right:
    y = 3;
    goto join;
  join:
    ret y;
  }
)";

TEST(CFG, PredecessorsAndSuccessors) {
  auto M = parse(DiamondSrc);
  const ir::Function *Main = M->findFunction("main");
  CFGInfo CFG(*Main);
  const ir::BasicBlock *Join = blockNamed(Main, "join");
  ASSERT_NE(Join, nullptr);
  EXPECT_EQ(CFG.predecessors(Join->getId()).size(), 2u);
  EXPECT_TRUE(CFG.successors(Join->getId()).empty());
  EXPECT_EQ(CFG.reversePostOrder().front(), Main->getEntry());
}

TEST(Dominators, DiamondDominance) {
  auto M = parse(DiamondSrc);
  const ir::Function *Main = M->findFunction("main");
  CFGInfo CFG(*Main);
  DominatorTree DT(CFG);
  const ir::BasicBlock *Entry = Main->getEntry();
  const ir::BasicBlock *Left = blockNamed(Main, "left");
  const ir::BasicBlock *Right = blockNamed(Main, "right");
  const ir::BasicBlock *Join = blockNamed(Main, "join");

  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_FALSE(DT.dominates(Left, Join));
  EXPECT_FALSE(DT.dominates(Right, Join));
  EXPECT_TRUE(DT.dominates(Join, Join));
  EXPECT_EQ(DT.idom(Join), Entry);
  EXPECT_EQ(DT.idom(Left), Entry);
}

TEST(Dominators, InstructionLevelOrdering) {
  auto M = parse("func main() { a = 1; b = 2; ret b; }");
  const ir::Function *Main = M->findFunction("main");
  CFGInfo CFG(*Main);
  DominatorTree DT(CFG);
  const auto &Insts = Main->getEntry()->instructions();
  EXPECT_TRUE(DT.dominates(Insts[0].get(), Insts[1].get()));
  EXPECT_FALSE(DT.dominates(Insts[1].get(), Insts[0].get()));
  EXPECT_FALSE(DT.dominates(Insts[0].get(), Insts[0].get()))
      << "an instruction does not dominate itself";
}

TEST(Dominators, FrontierOfDiamondArmsIsJoin) {
  auto M = parse(DiamondSrc);
  const ir::Function *Main = M->findFunction("main");
  CFGInfo CFG(*Main);
  DominatorTree DT(CFG);
  DominanceFrontier DF(DT);
  const ir::BasicBlock *Left = blockNamed(Main, "left");
  const ir::BasicBlock *Join = blockNamed(Main, "join");
  const auto &Frontier = DF.frontier(Left);
  ASSERT_EQ(Frontier.size(), 1u);
  EXPECT_EQ(Frontier[0], Join);
}

TEST(Dominators, LoopHeaderInOwnFrontier) {
  auto M = parse(R"(
    func main() {
      i = 0;
    head:
      c = i < 5;
      if c goto body;
      goto out;
    body:
      i = i + 1;
      goto head;
    out:
      ret i;
    }
  )");
  const ir::Function *Main = M->findFunction("main");
  CFGInfo CFG(*Main);
  DominatorTree DT(CFG);
  DominanceFrontier DF(DT);
  const ir::BasicBlock *Head = blockNamed(Main, "head");
  const ir::BasicBlock *Body = blockNamed(Main, "body");
  bool HeadInBodyFrontier = false;
  for (const ir::BasicBlock *BB : DF.frontier(Body))
    HeadInBodyFrontier |= BB == Head;
  EXPECT_TRUE(HeadInBodyFrontier);
}

//===----------------------------------------------------------------------===//
// Call graph
//===----------------------------------------------------------------------===//

TEST(CallGraphTest, EdgesAndRecursion) {
  auto M = parse(R"(
    func leaf(n) { ret n; }
    func selfrec(n) {
      c = n < 1;
      if c goto base;
      m = n - 1;
      r = selfrec(m);
      ret r;
    base:
      ret 0;
    }
    func main() {
      a = leaf(1);
      b = selfrec(3);
      c = a + b;
      ret c;
    }
  )");
  CallGraph CG(*M);
  const ir::Function *Leaf = M->findFunction("leaf");
  const ir::Function *SelfRec = M->findFunction("selfrec");
  const ir::Function *Main = M->findFunction("main");

  EXPECT_FALSE(CG.isRecursive(Leaf));
  EXPECT_TRUE(CG.isRecursive(SelfRec));
  EXPECT_FALSE(CG.isRecursive(Main));
  EXPECT_EQ(CG.calleesOf(Main).size(), 2u);
  EXPECT_EQ(CG.callersOf(Leaf).size(), 1u);
  // SCC ids order callees before callers.
  EXPECT_LT(CG.sccId(Leaf), CG.sccId(Main));
}

TEST(CallGraphTest, MutualRecursionFormsOneSCC) {
  auto M = parse(R"(
    func even(n) {
      c = n == 0;
      if c goto yes;
      m = n - 1;
      r = odd(m);
      ret r;
    yes:
      ret 1;
    }
    func odd(n) {
      c = n == 0;
      if c goto no;
      m = n - 1;
      r = even(m);
      ret r;
    no:
      ret 0;
    }
    func main() { x = even(4); ret x; }
  )");
  CallGraph CG(*M);
  EXPECT_TRUE(CG.isRecursive(M->findFunction("even")));
  EXPECT_TRUE(CG.isRecursive(M->findFunction("odd")));
  EXPECT_EQ(CG.sccId(M->findFunction("even")),
            CG.sccId(M->findFunction("odd")));
}

//===----------------------------------------------------------------------===//
// Pointer analysis
//===----------------------------------------------------------------------===//

TEST(PointerAnalysisTest, AllocAndCopyFlow) {
  auto M = parse(R"(
    func main() {
      p = alloc stack 2 uninit;
      q = p;
      *q = 1;
      ret 0;
    }
  )");
  CallGraph CG(*M);
  PointerAnalysis PA(*M, CG);
  const ir::Function *Main = M->findFunction("main");
  const ir::Variable *P = Main->findVariable("p");
  const ir::Variable *Q = Main->findVariable("q");
  EXPECT_EQ(PA.pointsTo(P), PA.pointsTo(Q));
  ASSERT_EQ(PA.pointsTo(P).size(), 1u);
}

TEST(PointerAnalysisTest, FieldSensitivityDistinguishesFields) {
  auto M = parse(R"(
    func main() {
      p = alloc stack 3 uninit;
      a = gep p, 0;
      b = gep p, 2;
      *a = 1;
      *b = 2;
      ret 0;
    }
  )");
  CallGraph CG(*M);
  PointerAnalysis PA(*M, CG);
  const ir::Function *Main = M->findFunction("main");
  auto PtsA = PA.pointsTo(Main->findVariable("a"));
  auto PtsB = PA.pointsTo(Main->findVariable("b"));
  ASSERT_EQ(PtsA.size(), 1u);
  ASSERT_EQ(PtsB.size(), 1u);
  EXPECT_NE(PtsA[0], PtsB[0]);
  EXPECT_EQ(PA.location(PtsA[0]).Field, 0u);
  EXPECT_EQ(PA.location(PtsB[0]).Field, 2u);

  // The field-insensitive configuration collapses them.
  auto M2 = parse(R"(
    func main() {
      p = alloc stack 3 uninit;
      a = gep p, 0;
      b = gep p, 2;
      *a = 1;
      *b = 2;
      ret 0;
    }
  )");
  CallGraph CG2(*M2);
  PtaOptions Opts;
  Opts.FieldSensitive = false;
  PointerAnalysis PA2(*M2, CG2, Opts);
  const ir::Function *Main2 = M2->findFunction("main");
  EXPECT_EQ(PA2.pointsTo(Main2->findVariable("a")),
            PA2.pointsTo(Main2->findVariable("b")));
}

TEST(PointerAnalysisTest, ArraysCollapseToOneLocation) {
  auto M = parse(R"(
    func main() {
      p = alloc heap 10 uninit array;
      a = gep p, 0;
      b = gep p, 7;
      *a = 1;
      x = *b;
      ret x;
    }
  )");
  CallGraph CG(*M);
  PointerAnalysis PA(*M, CG);
  const ir::Function *Main = M->findFunction("main");
  auto PtsA = PA.pointsTo(Main->findVariable("a"));
  auto PtsB = PA.pointsTo(Main->findVariable("b"));
  EXPECT_EQ(PtsA, PtsB);
  ASSERT_EQ(PtsA.size(), 1u);
  EXPECT_TRUE(PA.isCollapsedLoc(PtsA[0]));
}

TEST(PointerAnalysisTest, FlowThroughMemory) {
  auto M = parse(R"(
    func main() {
      box = alloc stack 1 uninit;
      target = alloc heap 1 uninit;
      *box = target;
      got = *box;
      *got = 5;
      ret 0;
    }
  )");
  CallGraph CG(*M);
  PointerAnalysis PA(*M, CG);
  const ir::Function *Main = M->findFunction("main");
  EXPECT_EQ(PA.pointsTo(Main->findVariable("got")),
            PA.pointsTo(Main->findVariable("target")));
}

TEST(PointerAnalysisTest, InterproceduralParamAndReturn) {
  auto M = parse(R"(
    func id(p) { ret p; }
    func main() {
      a = alloc heap 1 uninit;
      b = id(a);
      *b = 1;
      ret 0;
    }
  )");
  CallGraph CG(*M);
  PtaOptions NoCloning;
  NoCloning.HeapCloning = false;
  PointerAnalysis PA(*M, CG, NoCloning);
  const ir::Function *Main = M->findFunction("main");
  EXPECT_EQ(PA.pointsTo(Main->findVariable("a")),
            PA.pointsTo(Main->findVariable("b")));
}

TEST(PointerAnalysisTest, WrapperDetectionAndCloning) {
  auto M = parse(R"(
    func mk() {
      p = alloc heap 2 uninit;
      ret p;
    }
    func main() {
      a = mk();
      b = mk();
      *a = 1;
      *b = 2;
      ret 0;
    }
  )");
  CallGraph CG(*M);
  PointerAnalysis PA(*M, CG);
  EXPECT_TRUE(PA.isAllocWrapper(M->findFunction("mk")));
  const ir::Function *Main = M->findFunction("main");
  auto PtsA = PA.pointsTo(Main->findVariable("a"));
  auto PtsB = PA.pointsTo(Main->findVariable("b"));
  ASSERT_EQ(PtsA.size(), 1u);
  ASSERT_EQ(PtsB.size(), 1u);
  EXPECT_NE(PtsA[0], PtsB[0]) << "per-call-site clones must differ";
  EXPECT_NE(PA.location(PtsA[0]).Obj->getCloneOrigin(), nullptr);
}

TEST(PointerAnalysisTest, StoringThroughDisqualifiesWrapper) {
  auto M = parse(R"(
    func mk() {
      p = alloc heap 2 uninit;
      *p = 0;
      ret p;
    }
    func main() {
      a = mk();
      ret 0;
    }
  )");
  CallGraph CG(*M);
  PointerAnalysis PA(*M, CG);
  EXPECT_FALSE(PA.isAllocWrapper(M->findFunction("mk")));
}

TEST(PointerAnalysisTest, GlobalAddressSeedsPointsTo) {
  auto M = parse(R"(
    global g[2] init;
    func main() {
      p = g;
      *p = 3;
      ret 0;
    }
  )");
  CallGraph CG(*M);
  PointerAnalysis PA(*M, CG);
  const ir::Function *Main = M->findFunction("main");
  auto Pts = PA.pointsTo(Main->findVariable("p"));
  ASSERT_EQ(Pts.size(), 1u);
  EXPECT_EQ(PA.location(Pts[0]).Obj->getName(), "g");
}

//===----------------------------------------------------------------------===//
// Mod/ref
//===----------------------------------------------------------------------===//

TEST(ModRefTest, DirectAndTransitive) {
  auto M = parse(R"(
    global g[1] init;
    func writer() {
      p = g;
      *p = 1;
      ret;
    }
    func reader() {
      p = g;
      x = *p;
      ret x;
    }
    func outer() {
      writer();
      x = reader();
      ret x;
    }
    func main() {
      x = outer();
      ret x;
    }
  )");
  CallGraph CG(*M);
  PointerAnalysis PA(*M, CG);
  ModRefAnalysis MR(*M, CG, PA);

  uint32_t GLoc = PA.locId(M->findGlobal("g"), 0);
  EXPECT_TRUE(MR.mod(M->findFunction("writer")).test(GLoc));
  EXPECT_FALSE(MR.ref(M->findFunction("writer")).test(GLoc));
  EXPECT_TRUE(MR.ref(M->findFunction("reader")).test(GLoc));
  EXPECT_FALSE(MR.mod(M->findFunction("reader")).test(GLoc));
  // Transitive through outer.
  EXPECT_TRUE(MR.mod(M->findFunction("outer")).test(GLoc));
  EXPECT_TRUE(MR.ref(M->findFunction("outer")).test(GLoc));
  EXPECT_TRUE(MR.mod(M->findFunction("main")).test(GLoc));
}

} // namespace
