//===- tests/SSAVFGTest.cpp - Memory SSA and VFG unit tests ----------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/ModRef.h"
#include "analysis/PointerAnalysis.h"
#include "parser/Parser.h"
#include "ssa/MemorySSA.h"
#include "vfg/VFG.h"

#include <gtest/gtest.h>

using namespace usher;
using namespace usher::ssa;
using vfg::UpdateKind;
using vfg::VFG;
using vfg::VFGBuilder;

namespace {

/// Bundles the analyses the SSA/VFG tests need.
struct Pipeline {
  std::unique_ptr<ir::Module> M;
  std::unique_ptr<analysis::CallGraph> CG;
  std::unique_ptr<analysis::PointerAnalysis> PA;
  std::unique_ptr<analysis::ModRefAnalysis> MR;
  std::unique_ptr<MemorySSA> SSA;

  explicit Pipeline(const char *Src) {
    M = parser::parseModuleOrAbort(Src);
    CG = std::make_unique<analysis::CallGraph>(*M);
    PA = std::make_unique<analysis::PointerAnalysis>(*M, *CG);
    MR = std::make_unique<analysis::ModRefAnalysis>(*M, *CG, *PA);
    SSA = std::make_unique<MemorySSA>(*M, *PA, *MR);
  }

  VFG buildVFG(vfg::VFGOptions Opts = vfg::VFGOptions()) {
    return VFGBuilder(*M, *SSA, *PA, *CG, Opts).build();
  }

  const ir::Instruction *instAt(const char *Fn, unsigned Block,
                                unsigned Idx) const {
    return M->findFunction(Fn)
        ->blocks()[Block]
        ->instructions()[Idx]
        .get();
  }
};

//===----------------------------------------------------------------------===//
// Memory SSA
//===----------------------------------------------------------------------===//

TEST(MemorySSATest, MuAndChiPlacement) {
  Pipeline P(R"(
    func main() {
      p = alloc stack 1 uninit;
      *p = 1;
      x = *p;
      ret x;
    }
  )");
  const ir::Function *Main = P.M->findFunction("main");
  const FunctionSSA &FS = P.SSA->get(Main);
  const auto &Insts = Main->getEntry()->instructions();

  // Alloc has a chi for the (single) field.
  const InstSSA *AllocInfo = FS.instInfo(Insts[0].get());
  ASSERT_NE(AllocInfo, nullptr);
  ASSERT_EQ(AllocInfo->Chis.size(), 1u);
  EXPECT_EQ(AllocInfo->Chis[0].Kind, ChiKind::Alloc);

  // Store: one chi, with the alloc's version as its old version.
  const InstSSA *StoreInfo = FS.instInfo(Insts[1].get());
  ASSERT_EQ(StoreInfo->Chis.size(), 1u);
  EXPECT_EQ(StoreInfo->Chis[0].Kind, ChiKind::Store);
  EXPECT_EQ(StoreInfo->Chis[0].OldVersion, AllocInfo->Chis[0].NewVersion);

  // Load: one mu reading the store's version.
  const InstSSA *LoadInfo = FS.instInfo(Insts[2].get());
  ASSERT_EQ(LoadInfo->Mus.size(), 1u);
  EXPECT_EQ(LoadInfo->Mus[0].Version, StoreInfo->Chis[0].NewVersion);
}

TEST(MemorySSATest, PhisMergeMemoryVersionsAtJoins) {
  Pipeline P(R"(
    global g[1] uninit;
    func main() {
      p = g;
      c = 1;
      if c goto wr;
      goto join;
    wr:
      *p = 7;
      goto join;
    join:
      x = *p;
      ret x;
    }
  )");
  const ir::Function *Main = P.M->findFunction("main");
  const FunctionSSA &FS = P.SSA->get(Main);
  const ir::BasicBlock *Join = nullptr;
  for (const auto &BB : Main->blocks())
    if (BB->getName() == "join")
      Join = BB.get();
  ASSERT_NE(Join, nullptr);

  bool SawMemoryPhi = false;
  for (const PhiNode &Phi : FS.phisIn(Join)) {
    if (Phi.Var.Sp != Space::Memory)
      continue;
    SawMemoryPhi = true;
    EXPECT_EQ(Phi.Incoming.size(), 2u);
  }
  EXPECT_TRUE(SawMemoryPhi);
}

TEST(MemorySSATest, CallsCarryCalleeEffects) {
  Pipeline P(R"(
    global g[1] init;
    func bump() {
      p = g;
      v = *p;
      v = v + 1;
      *p = v;
      ret;
    }
    func main() {
      bump();
      ret 0;
    }
  )");
  const ir::Function *Main = P.M->findFunction("main");
  const FunctionSSA &FS = P.SSA->get(Main);
  const ir::Instruction *Call = Main->getEntry()->instructions()[0].get();
  const InstSSA *Info = FS.instInfo(Call);
  uint32_t GLoc = P.PA->locId(P.M->findGlobal("g"), 0);

  bool MuOnG = false, ChiOnG = false;
  for (const MemUse &Mu : Info->Mus)
    MuOnG |= Mu.Loc == GLoc;
  for (const MemDef &Chi : Info->Chis)
    ChiOnG |= Chi.Loc == GLoc && Chi.Kind == ChiKind::CallMod;
  EXPECT_TRUE(MuOnG) << "call must read g for the callee";
  EXPECT_TRUE(ChiOnG) << "call must def g for the callee's store";

  // The callee lists g as both virtual input and output parameter.
  const FunctionSSA &BumpSSA = P.SSA->get(P.M->findFunction("bump"));
  EXPECT_EQ(std::count(BumpSSA.formalIns().begin(),
                       BumpSSA.formalIns().end(), GLoc),
            1);
  EXPECT_EQ(std::count(BumpSSA.formalOuts().begin(),
                       BumpSSA.formalOuts().end(), GLoc),
            1);
}

TEST(MemorySSATest, TopLevelVersionsCountDefs) {
  Pipeline P(R"(
    func main() {
      x = 1;
      x = 2;
      x = 3;
      ret x;
    }
  )");
  const ir::Function *Main = P.M->findFunction("main");
  const FunctionSSA &FS = P.SSA->get(Main);
  uint32_t XId = Main->findVariable("x")->getId();
  // Version 0 (entry) plus three defs.
  EXPECT_EQ(FS.numVersions({Space::TopLevel, XId}), 4u);
  const ir::Instruction *Ret = Main->getEntry()->instructions()[3].get();
  EXPECT_EQ(FS.instInfo(Ret)->TLUses[0].Version, 3u);
}

//===----------------------------------------------------------------------===//
// VFG construction
//===----------------------------------------------------------------------===//

TEST(VFGTest, StrongUpdateOnGlobalScalar) {
  Pipeline P(R"(
    global g[1] uninit;
    func main() {
      p = g;
      *p = 1;
      x = *p;
      ret x;
    }
  )");
  VFG G = P.buildVFG();
  const ir::Instruction *Store = P.instAt("main", 0, 1);
  uint32_t GLoc = P.PA->locId(P.M->findGlobal("g"), 0);
  EXPECT_EQ(G.storeUpdateKind(Store, GLoc), UpdateKind::Strong);
  EXPECT_EQ(G.numStrongStoreChis(), 1u);
}

TEST(VFGTest, WeakUpdateOnArray) {
  Pipeline P(R"(
    func main() {
      p = alloc heap 8 uninit array;
      q = gep p, 3;
      *q = 1;
      x = *q;
      ret x;
    }
  )");
  VFG G = P.buildVFG();
  const ir::Instruction *Store = P.instAt("main", 0, 2);
  auto Pts = P.PA->pointsTo(
      P.M->findFunction("main")->findVariable("q"));
  ASSERT_EQ(Pts.size(), 1u);
  EXPECT_EQ(G.storeUpdateKind(Store, Pts[0]), UpdateKind::Weak);
}

TEST(VFGTest, WeakUpdateWhenPointerIsAmbiguous) {
  Pipeline P(R"(
    func main() {
      a = alloc stack 1 uninit;
      b = alloc stack 1 uninit;
      c = 1;
      if c goto pickb;
      p = a;
      goto st;
    pickb:
      p = b;
      goto st;
    st:
      *p = 9;
      ret 0;
    }
  )");
  VFG G = P.buildVFG();
  EXPECT_EQ(G.numStrongStoreChis(), 0u);
  EXPECT_EQ(G.numWeakStoreChis(), 2u) << "one weak chi per pointee";
}

TEST(VFGTest, SemiStrongUpdateOnFigure6Pattern) {
  // The loop from Figure 6: a fresh heap object per trip, stored through
  // a pointer that provably holds the freshest instance.
  Pipeline P(R"(
    func main() {
      i = 0;
    loop:
      c = i < 4;
      if c goto body;
      goto out;
    body:
      q = alloc heap 1 uninit;
      p = q;
      *p = i;
      v = *q;
      i = i + v;
      i = i + 1;
      goto loop;
    out:
      ret i;
    }
  )");
  VFG G = P.buildVFG();
  EXPECT_EQ(G.numSemiStrongStoreChis(), 1u);
  EXPECT_EQ(G.numWeakStoreChis(), 0u);
  EXPECT_EQ(G.semiStrongCuts().size(), 1u);
}

TEST(VFGTest, SemiStrongDisabledFallsBackToWeak) {
  Pipeline P(R"(
    func main() {
      i = 0;
    loop:
      c = i < 4;
      if c goto body;
      goto out;
    body:
      q = alloc heap 1 uninit;
      *q = i;
      i = i + 1;
      goto loop;
    out:
      ret i;
    }
  )");
  vfg::VFGOptions Opts;
  Opts.SemiStrongUpdates = false;
  VFG G = P.buildVFG(Opts);
  EXPECT_EQ(G.numSemiStrongStoreChis(), 0u);
  EXPECT_EQ(G.numWeakStoreChis(), 1u);
}

TEST(VFGTest, SemiStrongRequiresDominatingAnchor) {
  // The pointer is live around the back edge (a phi), so it may hold an
  // *older* instance: the bypass must be refused.
  Pipeline P(R"(
    func main() {
      i = 0;
      q = alloc heap 1 uninit;
    loop:
      c = i < 4;
      if c goto body;
      goto out;
    body:
      *q = i;
      q = alloc heap 1 uninit;
      i = i + 1;
      goto loop;
    out:
      ret i;
    }
  )");
  VFG G = P.buildVFG();
  EXPECT_EQ(G.numSemiStrongStoreChis(), 0u)
      << "phi-carried pointers must not be treated as freshest-instance";
}

TEST(VFGTest, CriticalUsesCoverLoadsStoresBranches) {
  Pipeline P(R"(
    func main() {
      p = alloc stack 1 uninit;
      *p = 1;
      x = *p;
      if x goto done;
      x = 0;
    done:
      ret x;
    }
  )");
  VFG G = P.buildVFG();
  unsigned Loads = 0, Stores = 0, Branches = 0;
  for (const VFG::CriticalUse &Use : G.criticalUses()) {
    Loads += isa<ir::LoadInst>(Use.I);
    Stores += isa<ir::StoreInst>(Use.I);
    Branches += isa<ir::CondBrInst>(Use.I);
  }
  EXPECT_EQ(Loads, 1u);
  EXPECT_EQ(Stores, 1u);
  EXPECT_EQ(Branches, 1u);
}

TEST(VFGTest, RootsExistAndConstantsFlowFromT) {
  Pipeline P("func main() { x = 1; ret x; }");
  VFG G = P.buildVFG();
  ASSERT_GE(G.numNodes(), 3u);
  EXPECT_TRUE(G.isRoot(VFG::RootT));
  EXPECT_TRUE(G.isRoot(VFG::RootF));
  // x's def depends on T (constant copy).
  const ir::Function *Main = P.M->findFunction("main");
  uint32_t XNode = G.nodeId(
      Main, {Space::TopLevel, Main->findVariable("x")->getId()}, 1);
  ASSERT_EQ(G.deps(XNode).size(), 1u);
  EXPECT_EQ(G.deps(XNode)[0].Node, VFG::RootT);
}

TEST(VFGTest, InterproceduralEdgesAreLabeled) {
  Pipeline P(R"(
    func id(v) { ret v; }
    func main() {
      a = 1;
      r = id(a);
      ret r;
    }
  )");
  VFG G = P.buildVFG();
  const ir::Function *Id = P.M->findFunction("id");
  uint32_t Formal =
      G.nodeId(Id, {Space::TopLevel, Id->findVariable("v")->getId()}, 0);
  ASSERT_EQ(G.deps(Formal).size(), 1u);
  EXPECT_EQ(G.deps(Formal)[0].Kind, vfg::EdgeKind::Call);
  EXPECT_NE(G.deps(Formal)[0].CallSite, ~0u);
}

} // namespace
