//===- tests/SummaryEngineTest.cpp - summary engine == global engine -------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The summary engine's hard contract: `--engine=summary` produces the
/// same Gamma — and therefore the same plan, warnings, diagnosis and
/// degradation decisions — as the global fixpoint, on every variant rung
/// and context depth it claims to support. This file sweeps generator
/// seeds and the 15-benchmark suite through both engines and compares
/// every observable, then pins the engine-specific behaviors: k >= 2
/// delegation, injected budget exhaustion landing on the identical
/// pessimistic completion, nonzero redundant-summary pruning on
/// recursive call graphs, and cache reuse reproducing the cold result
/// bit for bit.
///
//===----------------------------------------------------------------------===//

#include "core/StaticDiagnosis.h"
#include "core/Usher.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "support/RawStream.h"
#include "transforms/Transforms.h"
#include "workload/Generator.h"
#include "workload/Spec2000.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

using namespace usher;
using core::EngineKind;
using core::ToolVariant;
using core::UsherOptions;

namespace {

/// A module factory: each engine run re-makes the module because the
/// pipeline mutates it (heap cloning), and making is a pure function of
/// the underlying source/seed.
using MakeModule = std::function<std::unique_ptr<ir::Module>()>;

MakeModule fromSeed(uint64_t Seed) {
  return [Seed] {
    auto M = workload::generateProgram(Seed);
    transforms::runPreset(*M, transforms::OptPreset::O1, nullptr);
    return M;
  };
}

MakeModule fromSource(std::string Source) {
  return [Source = std::move(Source)] {
    return parser::parseModuleOrAbort(Source);
  };
}

/// Everything observable from one run, rendered for readable diffs.
struct Snapshot {
  std::string Gamma; ///< Sorted bottom-node ids.
  std::string Warnings;
  std::string DiagJson;
  std::string Degradation;
  core::UsherStatistics Stats;
};

Snapshot runWith(const MakeModule &Make, const UsherOptions &Opts) {
  std::unique_ptr<ir::Module> M = Make();
  core::UsherResult R = core::runUsher(*M, Opts);

  Snapshot S;
  S.Degradation = R.Degradation.summary();
  S.Stats = R.Stats;
  {
    raw_string_ostream OS(S.Gamma);
    if (R.G && R.Gamma)
      for (uint32_t N = 0; N != R.G->numNodes(); ++N)
        if (R.Gamma->mayBeUndefined(N))
          OS << N << ' ';
  }
  {
    raw_string_ostream OS(S.Warnings);
    runtime::ExecutionReport Rep = runtime::Interpreter(*M, &R.Plan).run();
    OS << "result " << Rep.MainResult << " reason "
       << static_cast<int>(Rep.Reason) << " checks " << R.Plan.countChecks()
       << " props " << R.Plan.countPropagationReads() << " shadow "
       << R.Plan.countShadowOps() << '\n';
    for (const runtime::Warning &W : Rep.ToolWarnings) {
      OS << W.At->getParent()->getParent()->getName() << ": \"";
      W.At->print(OS);
      OS << "\" x" << W.Occurrences << '\n';
    }
  }
  if (R.G && R.PA && R.CG) {
    core::StaticDiagnosis Diag(*R.PA, *R.CG, *R.G);
    raw_string_ostream OS(S.DiagJson);
    Diag.printJson(OS);
  }
  return S;
}

/// Runs both engines on fresh modules and asserts every observable is
/// identical. Returns the summary run's statistics for extra assertions.
core::UsherStatistics expectEngineEquivalence(const MakeModule &Make,
                                              UsherOptions Opts,
                                              const char *Label) {
  Opts.Engine = EngineKind::Global;
  Snapshot G = runWith(Make, Opts);
  Opts.Engine = EngineKind::Summary;
  Snapshot S = runWith(Make, Opts);
  EXPECT_EQ(G.Gamma, S.Gamma) << Label;
  EXPECT_EQ(G.Warnings, S.Warnings) << Label;
  EXPECT_EQ(G.DiagJson, S.DiagJson) << Label;
  EXPECT_EQ(G.Degradation, S.Degradation) << Label;
  EXPECT_EQ(G.Stats.NumRedirectedNodes, S.Stats.NumRedirectedNodes) << Label;
  EXPECT_EQ(G.Stats.NumSimplifiedMFCs, S.Stats.NumSimplifiedMFCs) << Label;
  EXPECT_EQ(G.Stats.StaticChecks, S.Stats.StaticChecks) << Label;
  EXPECT_EQ(G.Stats.StaticPropagations, S.Stats.StaticPropagations) << Label;
  return S.Stats;
}

//===----------------------------------------------------------------------===//
// The saturation cap the engine mirrors
//===----------------------------------------------------------------------===//

TEST(SummaryEngine, GlobalSaturationCapIsTheMirroredValue) {
  // SummaryEngine.cpp hard-codes 64 (it cannot include core/ headers —
  // the core library links against it). The bail-on-saturation argument
  // is only valid while the two constants agree.
  EXPECT_EQ(core::Definedness::MaxContextsPerRep, 64u);
}

//===----------------------------------------------------------------------===//
// Differential sweep: generator seeds x variants x k
//===----------------------------------------------------------------------===//

class SummaryEngineDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SummaryEngineDifferential, FullVariantMatchesGlobal) {
  UsherOptions Opts;
  Opts.Variant = ToolVariant::UsherFull;
  expectEngineEquivalence(fromSeed(GetParam()), Opts, "UsherFull k=1");
}

TEST_P(SummaryEngineDifferential, EveryRungAndContextDepthMatchesGlobal) {
  for (ToolVariant V : {ToolVariant::UsherTL, ToolVariant::UsherTLAT,
                        ToolVariant::UsherOptI, ToolVariant::UsherFull})
    for (unsigned K : {0u, 1u}) {
      UsherOptions Opts;
      Opts.Variant = V;
      Opts.ContextK = K;
      expectEngineEquivalence(fromSeed(GetParam()), Opts,
                              core::toolVariantName(V));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryEngineDifferential,
                         ::testing::Range<uint64_t>(0, 12));

//===----------------------------------------------------------------------===//
// Differential sweep: the 15-benchmark suite
//===----------------------------------------------------------------------===//

class SummaryEngineSuite : public ::testing::TestWithParam<size_t> {};

TEST_P(SummaryEngineSuite, BenchmarkMatchesGlobal) {
  const workload::BenchmarkProgram &B = workload::spec2000Suite()[GetParam()];
  MakeModule Make = [&B] { return workload::loadBenchmark(B); };
  UsherOptions Opts;
  Opts.Variant = ToolVariant::UsherFull;
  core::UsherStatistics S = expectEngineEquivalence(Make, Opts, B.Name.c_str());
  EXPECT_FALSE(S.Summary.DelegatedToGlobal) << B.Name;
  EXPECT_GT(S.Summary.SummariesComputed, 0u) << B.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, SummaryEngineSuite,
    ::testing::Range<size_t>(0, workload::spec2000Suite().size()));

//===----------------------------------------------------------------------===//
// Engine-specific behaviors
//===----------------------------------------------------------------------===//

// Recursive callees manufacture guarded (call-site-matched) transfers;
// when the only external caller enters through one site, the guards for
// the internal recursive sites are redundant and must be pruned.
const char *RecursiveSrc = R"(
  func f(n, x) {
    if n goto rec;
    ret x;
  rec:
    m = n - 1;
    r = f(m, x);
    ret r;
  }
  func main() {
    z = 0;
    if z goto setit;
    goto use;
  setit:
    u = 1;
  use:
    n = 2;
    v = f(n, u);
    ret v;
  }
)";

TEST(SummaryEngine, RecursionPrunesRedundantSummaries) {
  UsherOptions Opts;
  Opts.Variant = ToolVariant::UsherOptI;
  core::UsherStatistics S =
      expectEngineEquivalence(fromSource(RecursiveSrc), Opts, "recursive");
  EXPECT_FALSE(S.Summary.DelegatedToGlobal);
  EXPECT_GT(S.Summary.PrunedTransfers + S.Summary.MergedContexts +
                S.Summary.PrunedCalleeEntries,
            0u)
      << "the recursive summary must lose at least one caller-indistinguishable entry";
}

TEST(SummaryEngine, ContextDepthTwoDelegates) {
  UsherOptions Opts;
  Opts.Variant = ToolVariant::UsherFull;
  Opts.ContextK = 2;
  core::UsherStatistics S =
      expectEngineEquivalence(fromSource(RecursiveSrc), Opts, "k=2");
  EXPECT_TRUE(S.Summary.DelegatedToGlobal);
}

TEST(SummaryEngine, InjectedExhaustionPessimizesIdentically) {
  // Worklist charge accounting is engine-specific, so an injected
  // mid-phase fault need not fire in both engines at the same step. The
  // contract is that the pessimistic *completion* is the identical
  // structural rule: whenever the summary engine exhausts, its Gamma,
  // plan and degradation report must equal the global engine's exhausted
  // ones, no matter where within the phase either budget died.
  auto RunAt = [](EngineKind E, uint64_t AtStep) {
    UsherOptions Opts;
    Opts.Variant = ToolVariant::UsherFull;
    Opts.Engine = E;
    Opts.Fault = FaultPlan{BudgetPhase::Definedness, AtStep, false};
    return runWith(fromSource(RecursiveSrc), Opts);
  };
  Snapshot G = RunAt(EngineKind::Global, 0);
  ASSERT_FALSE(G.Degradation.empty());
  for (uint64_t AtStep : {0ull, 25ull}) {
    Snapshot S = RunAt(EngineKind::Summary, AtStep);
    EXPECT_TRUE(S.Stats.Summary.Pessimized) << "fault at step " << AtStep;
    EXPECT_EQ(G.Gamma, S.Gamma) << "fault at step " << AtStep;
    EXPECT_EQ(G.Warnings, S.Warnings) << "fault at step " << AtStep;
    EXPECT_EQ(G.Degradation, S.Degradation) << "fault at step " << AtStep;
  }
}

TEST(SummaryEngine, SharedCacheReproducesColdRunExactly) {
  analysis::SummaryCache Cache;
  UsherOptions Opts;
  Opts.Variant = ToolVariant::UsherOptI;
  Opts.Engine = EngineKind::Summary;
  Opts.SummaryCache = &Cache;
  MakeModule Make = fromSource(RecursiveSrc);

  Snapshot Cold = runWith(Make, Opts);
  EXPECT_GT(Cold.Stats.Summary.SummariesComputed, 0u);
  EXPECT_EQ(Cold.Stats.Summary.SummariesReused, 0u);

  Snapshot Warm = runWith(Make, Opts);
  EXPECT_EQ(Warm.Stats.Summary.SummariesComputed, 0u);
  EXPECT_GT(Warm.Stats.Summary.SummariesReused, 0u);
  EXPECT_EQ(Warm.Stats.Summary.ExpansionsComputed, 0u);
  EXPECT_EQ(Cold.Gamma, Warm.Gamma);
  EXPECT_EQ(Cold.Warnings, Warm.Warnings);
  EXPECT_EQ(Cold.DiagJson, Warm.DiagJson);
  EXPECT_EQ(Cache.stats().StaleDiscarded, 0u);
}

TEST(SummaryEngine, CachedRunsMatchGlobalOnGeneratedPrograms) {
  // The cache path must not bend equivalence either: warm up a shared
  // cache, then compare the cached summary runs against the global engine.
  analysis::SummaryCache Cache;
  for (uint64_t Seed : {3ull, 7ull, 11ull}) {
    MakeModule Make = fromSeed(Seed);
    UsherOptions Opts;
    Opts.Variant = ToolVariant::UsherFull;
    Opts.Engine = EngineKind::Summary;
    Opts.SummaryCache = &Cache;
    (void)runWith(Make, Opts); // Prime.
    Snapshot Warm = runWith(Make, Opts);
    Opts.Engine = EngineKind::Global;
    Opts.SummaryCache = nullptr;
    Snapshot G = runWith(Make, Opts);
    EXPECT_EQ(G.Gamma, Warm.Gamma) << "seed " << Seed;
    EXPECT_EQ(G.Warnings, Warm.Warnings) << "seed " << Seed;
    EXPECT_EQ(G.DiagJson, Warm.DiagJson) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Parallel summary runs: byte-identical for every jobs value
//===----------------------------------------------------------------------===//

class SummaryParallelDeterminism : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(SummaryParallelDeterminism, SummaryEngineOutputsAreJobsInvariant) {
  const uint64_t Seed = GetParam();
  MakeModule Make = fromSeed(Seed);
  UsherOptions Opts;
  Opts.Variant = ToolVariant::UsherFull;
  Opts.Engine = EngineKind::Summary;
  Opts.Jobs = 1;
  Snapshot Serial = runWith(Make, Opts);
  for (unsigned Jobs : {2u, 8u}) {
    Opts.Jobs = Jobs;
    Snapshot Par = runWith(Make, Opts);
    EXPECT_EQ(Serial.Gamma, Par.Gamma) << "jobs=" << Jobs << " seed " << Seed;
    EXPECT_EQ(Serial.Warnings, Par.Warnings)
        << "jobs=" << Jobs << " seed " << Seed;
    EXPECT_EQ(Serial.DiagJson, Par.DiagJson)
        << "jobs=" << Jobs << " seed " << Seed;
    EXPECT_EQ(Serial.Degradation, Par.Degradation)
        << "jobs=" << Jobs << " seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryParallelDeterminism,
                         ::testing::Range<uint64_t>(0, 8));

} // namespace
