//===- tests/ServeTest.cpp - Analysis service unit tests -------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the usher-serve subsystem below the socket: the wire
/// protocol (encode/decode round trips, incremental reassembly, framing
/// corruption), the crash-safe snapshot store (atomic visibility,
/// validated load, a corruption sweep over every byte of a record), and
/// the Session request core (warm == cold byte-for-byte, error
/// isolation, degradation, never-cache-degraded).
///
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "serve/Session.h"
#include "serve/SnapshotStore.h"
#include "support/FaultInjection.h"

#include "gtest/gtest.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace usher;
using namespace usher::serve;

namespace {

const char *SmokeProgram = "func main() {\n"
                           "  x = 1;\n"
                           "  y = x + 2;\n"
                           "  ret y;\n"
                           "}\n";

const char *UndefProgram = "func main() {\n"
                           "  p = alloc stack 1 uninit;\n"
                           "  x = *p;\n"
                           "  ret x;\n"
                           "}\n";

/// A scratch directory wiped per test, plus guaranteed fault disarm (the
/// I/O fault plane is process-global and gtest shares one process).
class ServeTest : public ::testing::Test {
protected:
  void SetUp() override {
    disarmIoFaults();
    Dir = std::filesystem::temp_directory_path() /
          ("usher-serve-test-" +
           std::to_string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->line()));
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
  }
  void TearDown() override {
    disarmIoFaults();
    std::filesystem::remove_all(Dir);
  }

  std::filesystem::path Dir;
};

Request analyzeReq(const char *Source, uint64_t Id = 1) {
  Request Rq;
  Rq.Kind = Op::Analyze;
  Rq.Id = Id;
  Rq.Source = Source;
  return Rq;
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, RequestRoundTrip) {
  Request Rq;
  Rq.Kind = Op::Diagnose;
  Rq.Id = 0xDEADBEEFCAFEull;
  Rq.DeadlineMs = 250;
  Rq.BudgetSteps = 1u << 20;
  Rq.FaultSpec = "pta@3:once";
  Rq.Source = SmokeProgram;

  Request Out;
  std::string Err;
  ASSERT_TRUE(decodeRequest(encodeRequest(Rq), Out, &Err)) << Err;
  EXPECT_EQ(Out.Kind, Rq.Kind);
  EXPECT_EQ(Out.Id, Rq.Id);
  EXPECT_EQ(Out.DeadlineMs, Rq.DeadlineMs);
  EXPECT_EQ(Out.BudgetSteps, Rq.BudgetSteps);
  EXPECT_EQ(Out.FaultSpec, Rq.FaultSpec);
  EXPECT_EQ(Out.Source, Rq.Source);
}

TEST_F(ServeTest, ReplyRoundTrip) {
  Reply Rp;
  Rp.Status = ReplyStatus::Degraded;
  Rp.Id = 42;
  Rp.Rung = "USHER-TL+AT";
  Rp.RetryAfterMs = 75;
  Rp.Payload = "module: variant=USHER-TL+AT checks=3\n";

  Reply Out;
  std::string Err;
  ASSERT_TRUE(decodeReply(encodeReply(Rp), Out, &Err)) << Err;
  EXPECT_EQ(Out.Status, Rp.Status);
  EXPECT_EQ(Out.Id, Rp.Id);
  EXPECT_EQ(Out.Rung, Rp.Rung);
  EXPECT_EQ(Out.RetryAfterMs, Rp.RetryAfterMs);
  EXPECT_EQ(Out.Payload, Rp.Payload);
}

TEST_F(ServeTest, OpNamesRoundTrip) {
  for (unsigned I = 0; I != NumOps; ++I) {
    Op K = static_cast<Op>(I), Parsed;
    ASSERT_TRUE(parseOpName(opName(K), Parsed)) << opName(K);
    EXPECT_EQ(Parsed, K);
  }
  Op Ignored;
  EXPECT_FALSE(parseOpName("frobnicate", Ignored));
}

TEST_F(ServeTest, TruncatedRequestBodyNeverDecodes) {
  const std::string Body = encodeRequest(analyzeReq(SmokeProgram, 7));
  for (size_t Len = 0; Len != Body.size(); ++Len) {
    Request Out;
    EXPECT_FALSE(decodeRequest(std::string_view(Body.data(), Len), Out))
        << "truncation at " << Len << " decoded";
  }
}

TEST_F(ServeTest, FrameReaderReassemblesByteAtATime) {
  const std::string A = frame(encodeRequest(analyzeReq(SmokeProgram, 1)));
  const std::string B = frame(encodeRequest(analyzeReq(UndefProgram, 2)));
  const std::string Stream = A + B;

  FrameReader Reader;
  std::vector<std::string> Bodies;
  for (char C : Stream) {
    Reader.append(&C, 1);
    std::string Body;
    while (Reader.next(Body) == FrameReader::Result::Frame)
      Bodies.push_back(Body);
  }
  ASSERT_EQ(Bodies.size(), 2u);
  Request R1, R2;
  ASSERT_TRUE(decodeRequest(Bodies[0], R1));
  ASSERT_TRUE(decodeRequest(Bodies[1], R2));
  EXPECT_EQ(R1.Id, 1u);
  EXPECT_EQ(R2.Id, 2u);
  EXPECT_EQ(Reader.pending(), 0u);
}

TEST_F(ServeTest, FrameReaderRejectsCrcMismatch) {
  std::string Framed = frame(encodeRequest(analyzeReq(SmokeProgram)));
  Framed.back() ^= 0x01; // Corrupt the last body byte; CRC now lies.
  FrameReader Reader;
  Reader.append(Framed.data(), Framed.size());
  std::string Body, Err;
  EXPECT_EQ(Reader.next(Body, &Err), FrameReader::Result::Corrupt) << Err;
}

TEST_F(ServeTest, FrameReaderRejectsOversizedLength) {
  // A length field above MaxFrameBytes must be a framing error up front,
  // not a 4GiB allocation attempt.
  std::string Framed(8, '\0');
  const uint32_t Huge = MaxFrameBytes + 1;
  std::memcpy(Framed.data(), &Huge, 4);
  FrameReader Reader;
  Reader.append(Framed.data(), Framed.size());
  std::string Body;
  EXPECT_EQ(Reader.next(Body), FrameReader::Result::Corrupt);
}

TEST_F(ServeTest, FrameReaderWantsMoreOnPartialFrame) {
  const std::string Framed = frame(encodeRequest(analyzeReq(SmokeProgram)));
  FrameReader Reader;
  Reader.append(Framed.data(), Framed.size() - 1);
  std::string Body;
  EXPECT_EQ(Reader.next(Body), FrameReader::Result::NeedMore);
  Reader.append(Framed.data() + Framed.size() - 1, 1);
  EXPECT_EQ(Reader.next(Body), FrameReader::Result::Frame);
}

//===----------------------------------------------------------------------===//
// SnapshotStore
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, StoreInMemoryRoundTrip) {
  SnapshotStore Store("");
  EXPECT_TRUE(Store.inMemory());
  EXPECT_FALSE(Store.load(1).has_value());
  ASSERT_TRUE(Store.save(1, "payload"));
  std::optional<std::string> Got = Store.load(1);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, "payload");
  SnapshotStore::Stats St = Store.stats();
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 1u);
}

TEST_F(ServeTest, StorePersistsAcrossInstances) {
  const uint64_t Key = SnapshotStore::hashBytes("some section");
  {
    SnapshotStore Store(Dir.string());
    ASSERT_TRUE(Store.save(Key, "persisted bytes"));
  }
  SnapshotStore Store(Dir.string());
  std::optional<std::string> Got = Store.load(Key);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, "persisted bytes");
}

TEST_F(ServeTest, StoreRecordValidatorAcceptsOnlyExactRecord) {
  const std::string Rec = SnapshotStore::encodeRecord(99, "abc");
  ASSERT_TRUE(SnapshotStore::validateRecord(Rec, 99).has_value());
  EXPECT_EQ(*SnapshotStore::validateRecord(Rec, 99), "abc");
  // Wrong key: an entry renamed onto another key's path must not serve.
  EXPECT_FALSE(SnapshotStore::validateRecord(Rec, 98).has_value());
  // Trailing garbage is corruption, not slack.
  EXPECT_FALSE(SnapshotStore::validateRecord(Rec + "x", 99).has_value());
}

/// The crash-safety sweep: a record truncated at EVERY byte boundary and
/// flipped at EVERY byte offset must be rejected by the validator, and a
/// store loading such a record must discard it (miss + unlink), never
/// serve it.
TEST_F(ServeTest, StoreDetectsCorruptionAtEveryByteBoundary) {
  const uint64_t Key = 0x1234567890ABCDEFull;
  const std::string Payload = "function main: checks=2 shadow-ops=5\n";
  const std::string Rec = SnapshotStore::encodeRecord(Key, Payload);

  for (size_t Len = 0; Len != Rec.size(); ++Len)
    EXPECT_FALSE(
        SnapshotStore::validateRecord(std::string_view(Rec.data(), Len), Key)
            .has_value())
        << "truncation at byte " << Len << " validated";

  for (size_t Off = 0; Off != Rec.size(); ++Off) {
    for (unsigned Bit = 0; Bit != 8; ++Bit) {
      std::string Bad = Rec;
      Bad[Off] ^= static_cast<char>(1u << Bit);
      EXPECT_FALSE(SnapshotStore::validateRecord(Bad, Key).has_value())
          << "flip of bit " << Bit << " at byte " << Off << " validated";
    }
  }

  // On-disk: every truncated prefix written under the final name must be
  // discarded on load and unlinked so the next save is clean.
  SnapshotStore Store(Dir.string());
  const std::string Path = Store.pathFor(Key);
  for (size_t Len = 0; Len != Rec.size(); ++Len) {
    {
      std::ofstream F(Path, std::ios::binary | std::ios::trunc);
      F.write(Rec.data(), static_cast<std::streamsize>(Len));
    }
    EXPECT_FALSE(Store.load(Key).has_value())
        << "torn record of " << Len << " bytes served";
    EXPECT_FALSE(std::filesystem::exists(Path))
        << "torn record of " << Len << " bytes not unlinked";
  }
  EXPECT_EQ(Store.stats().CorruptDiscarded, Rec.size());
}

TEST_F(ServeTest, StoreTornWriteFaultLeavesNoServableRecord) {
  SnapshotStore Store(Dir.string());
  armIoFault({IoFaultSite::SnapshotTornWrite, 1, false});
  EXPECT_FALSE(Store.save(5, "this write is torn mid-record"));
  disarmIoFaults();
  // The torn record reached the final name (that is the fault being
  // modeled), but the validated load refuses to serve it.
  EXPECT_FALSE(Store.load(5).has_value());
  ASSERT_TRUE(Store.save(5, "intact"));
  std::optional<std::string> Got = Store.load(5);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, "intact");
}

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, SessionWarmEqualsColdByteForByte) {
  SessionOptions SO;
  SO.SnapshotDir = Dir.string();
  Session Sess(SO);

  Reply Cold = Sess.handle(analyzeReq(UndefProgram, 1));
  ASSERT_EQ(Cold.Status, ReplyStatus::Ok);
  EXPECT_NE(Cold.Payload.find("module: variant="), std::string::npos);

  Reply Warm = Sess.handle(analyzeReq(UndefProgram, 2));
  ASSERT_EQ(Warm.Status, ReplyStatus::Ok);
  EXPECT_EQ(Warm.Payload, Cold.Payload);
  EXPECT_EQ(Sess.servedWarm(), 1u);
}

TEST_F(ServeTest, SessionRecomputesAfterSnapshotCorruption) {
  SessionOptions SO;
  SO.SnapshotDir = Dir.string();
  Reply Cold;
  {
    Session Sess(SO);
    Cold = Sess.handle(analyzeReq(SmokeProgram, 1));
    ASSERT_EQ(Cold.Status, ReplyStatus::Ok);
  }
  // Truncate every snapshot the cold run left behind — a simulated torn
  // filesystem. A fresh session must recompute the identical payload.
  unsigned Corrupted = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir)) {
    std::filesystem::resize_file(E.path(),
                                 std::filesystem::file_size(E.path()) / 2);
    ++Corrupted;
  }
  ASSERT_GT(Corrupted, 0u);

  Session Sess(SO);
  Reply Recovered = Sess.handle(analyzeReq(SmokeProgram, 2));
  ASSERT_EQ(Recovered.Status, ReplyStatus::Ok);
  EXPECT_EQ(Recovered.Payload, Cold.Payload);
  EXPECT_EQ(Sess.servedWarm(), 0u);
  EXPECT_GE(Sess.store().stats().CorruptDiscarded, 1u);
}

TEST_F(ServeTest, SessionIsolatesParseErrors) {
  Session Sess(SessionOptions{});
  Reply Bad = Sess.handle(analyzeReq("func main( { this is not TinyC", 9));
  EXPECT_EQ(Bad.Status, ReplyStatus::Error);
  EXPECT_EQ(Bad.Id, 9u);
  EXPECT_NE(Bad.Payload.find("parse error"), std::string::npos);

  // The session keeps serving correct answers afterwards.
  Reply Good = Sess.handle(analyzeReq(SmokeProgram, 10));
  EXPECT_EQ(Good.Status, ReplyStatus::Ok);
}

TEST_F(ServeTest, SessionDegradesOnBudgetAndNeverCachesIt) {
  SessionOptions SO;
  SO.SnapshotDir = Dir.string();
  Session Sess(SO);

  Request Budgeted = analyzeReq(UndefProgram, 1);
  Budgeted.BudgetSteps = 1;
  Reply Deg = Sess.handle(Budgeted);
  EXPECT_EQ(Deg.Status, ReplyStatus::Degraded);
  EXPECT_FALSE(Deg.Rung.empty());

  // The degraded run must not have seeded the store: the subsequent
  // unbudgeted request computes cold (full fidelity), then warms.
  Reply Cold = Sess.handle(analyzeReq(UndefProgram, 2));
  ASSERT_EQ(Cold.Status, ReplyStatus::Ok);
  EXPECT_EQ(Sess.servedWarm(), 0u);
  Reply Warm = Sess.handle(analyzeReq(UndefProgram, 3));
  EXPECT_EQ(Warm.Payload, Cold.Payload);
  EXPECT_EQ(Sess.servedWarm(), 1u);
}

TEST_F(ServeTest, SessionRejectsBadFaultSpec) {
  Session Sess(SessionOptions{});
  Request Rq = analyzeReq(SmokeProgram, 1);
  Rq.FaultSpec = "no-such-phase@1";
  Reply Rp = Sess.handle(Rq);
  EXPECT_EQ(Rp.Status, ReplyStatus::Error);
  EXPECT_NE(Rp.Payload.find("bad fault spec"), std::string::npos);
}

TEST_F(ServeTest, SessionDiagnoseReportsFindings) {
  // A load from an uninitialized cell is a finding only when the loaded
  // value reaches a critical use — branch on it unconditionally.
  const char *DefiniteProgram = "func main() {\n"
                                "  p = alloc stack 1 uninit;\n"
                                "  x = *p;\n"
                                "  if x goto one;\n"
                                "  ret 0;\n"
                                "one:\n"
                                "  ret 1;\n"
                                "}\n";
  Session Sess(SessionOptions{});
  Request Rq = analyzeReq(DefiniteProgram, 4);
  Rq.Kind = Op::Diagnose;
  Reply Rp = Sess.handle(Rq);
  ASSERT_EQ(Rp.Status, ReplyStatus::Ok);
  EXPECT_NE(Rp.Payload.find("critical-uses="), std::string::npos);
  EXPECT_NE(Rp.Payload.find("definite use of"), std::string::npos);
}

} // namespace
