//===- tests/ParallelDeterminismTest.cpp - jobs=N == jobs=1, byte for byte -===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel engine's hard contract: running the pipeline with any
/// --jobs value produces byte-identical observable output to the serial
/// run. This file sweeps seeded random programs through the full
/// pipeline (O1 preset — parallel mem2reg + verifier — then runUsher
/// with parallel memory-SSA / check-reachability / Opt II) at jobs 1, 2
/// and 8 and compares every rendering a user can see:
///
///  - the instrumented run's warnings (and result / degradation note),
///  - the --stats block (minus the wall-clock line, which is
///    nondeterministic even between two serial runs),
///  - the static diagnosis text and usher-diagnosis-v1 JSON,
///  - the VFG Graphviz dump (a structural fingerprint of the analysis),
///  - the usher-fuzz-v1 campaign report under sharded workers.
///
/// Budgeted runs are swept too: whether and where a budget exhausts must
/// not depend on the schedule either.
///
//===----------------------------------------------------------------------===//

#include "core/StaticDiagnosis.h"
#include "core/Usher.h"
#include "fuzz/Fuzzer.h"
#include "runtime/Interpreter.h"
#include "support/RawStream.h"
#include "support/ThreadPool.h"
#include "transforms/Transforms.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace usher;
using core::ToolVariant;
using core::UsherOptions;

namespace {

/// Everything observable from one pipeline run, rendered to strings so a
/// mismatch fails with a readable diff.
struct Snapshot {
  std::string Warnings;
  std::string Stats;
  std::string DiagText;
  std::string DiagJson;
  std::string Dot;
  std::string Degradation;
};

/// Renders the Table 1 statistics the way usher-cli --stats does, minus
/// the timing/memory lines (AnalysisSeconds, PhaseSeconds, PeakRSSBytes
/// vary between any two runs, serial or not).
std::string renderStats(const core::UsherStatistics &S) {
  std::string Buf;
  raw_string_ostream OS(Buf);
  OS << "instructions: " << S.NumInstructions << '\n'
     << "top-level: " << S.NumTopLevelVars << '\n'
     << "objects: " << S.NumStackObjects << '/' << S.NumHeapObjects << '/'
     << S.NumGlobalObjects << '\n'
     << "uninit%: " << static_cast<int>(S.PercentUninitObjects) << '\n'
     << "vfg: " << S.NumVFGNodes << '/' << S.NumVFGEdges << '\n'
     << "stores: " << static_cast<int>(S.PercentStrongStores) << '/'
     << static_cast<int>(S.PercentWeakStores) << '\n'
     << "reaching%: " << static_cast<int>(S.PercentReachingCheck) << '\n'
     << "mfc: " << S.NumSimplifiedMFCs << '\n'
     << "redirected: " << S.NumRedirectedNodes << '\n'
     << "static: " << S.StaticPropagations << '/' << S.StaticChecks << '\n'
     << "solver: " << S.Solver.NumConstraints << '/'
     << S.Solver.NumPropagations << '/' << S.Solver.NumCollapses << '/'
     << S.Solver.NumCollapsedNodes << '\n';
  return Buf;
}

/// Runs the whole user-visible pipeline for one seed at one jobs value.
Snapshot runPipeline(uint64_t Seed, unsigned Jobs, const UsherOptions &Base) {
  // Regenerate the module each time: the preset and heap cloning mutate
  // it, and generation is a pure function of the seed.
  std::unique_ptr<ir::Module> M = workload::generateProgram(Seed);

  std::unique_ptr<ThreadPool> Pool;
  if (Jobs > 1)
    Pool = std::make_unique<ThreadPool>(Jobs);
  transforms::runPreset(*M, transforms::OptPreset::O1, Pool.get());

  UsherOptions Opts = Base;
  Opts.Jobs = Jobs;
  core::UsherResult R = core::runUsher(*M, Opts);

  Snapshot Snap;
  Snap.Degradation = R.Degradation.summary();
  Snap.Stats = renderStats(R.Stats);

  {
    raw_string_ostream OS(Snap.Warnings);
    runtime::ExecutionReport Rep = runtime::Interpreter(*M, &R.Plan).run();
    OS << "result " << Rep.MainResult << " reason "
       << static_cast<int>(Rep.Reason) << " checks " << R.Plan.countChecks()
       << " shadow " << R.Plan.countShadowOps() << '\n';
    for (const runtime::Warning &W : Rep.ToolWarnings) {
      OS << W.At->getParent()->getParent()->getName() << ": \"";
      W.At->print(OS);
      OS << "\" x" << W.Occurrences << '\n';
    }
  }

  if (R.G && R.PA && R.CG) {
    core::StaticDiagnosis Diag(*R.PA, *R.CG, *R.G);
    raw_string_ostream TextOS(Snap.DiagText), JsonOS(Snap.DiagJson),
        DotOS(Snap.Dot);
    Diag.printText(TextOS);
    Diag.printJson(JsonOS);
    std::vector<vfg::VFG::DotVerdict> Verdicts = Diag.dotVerdicts();
    R.G->dumpDot(DotOS, &Verdicts);
  }
  return Snap;
}

void expectEqual(const Snapshot &Serial, const Snapshot &Par, unsigned Jobs,
                 uint64_t Seed) {
  EXPECT_EQ(Serial.Warnings, Par.Warnings) << "jobs=" << Jobs << " seed " << Seed;
  EXPECT_EQ(Serial.Stats, Par.Stats) << "jobs=" << Jobs << " seed " << Seed;
  EXPECT_EQ(Serial.DiagText, Par.DiagText)
      << "jobs=" << Jobs << " seed " << Seed;
  EXPECT_EQ(Serial.DiagJson, Par.DiagJson)
      << "jobs=" << Jobs << " seed " << Seed;
  EXPECT_EQ(Serial.Dot, Par.Dot) << "jobs=" << Jobs << " seed " << Seed;
  EXPECT_EQ(Serial.Degradation, Par.Degradation)
      << "jobs=" << Jobs << " seed " << Seed;
}

//===----------------------------------------------------------------------===//
// Pipeline sweep: >= 20 generator seeds x jobs {1, 2, 8}
//===----------------------------------------------------------------------===//

class ParallelDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDeterminism, PipelineOutputsAreByteIdentical) {
  const uint64_t Seed = GetParam();
  UsherOptions Base;
  Base.Variant = ToolVariant::UsherFull;
  Snapshot Serial = runPipeline(Seed, 1, Base);
  for (unsigned Jobs : {2u, 8u})
    expectEqual(Serial, runPipeline(Seed, Jobs, Base), Jobs, Seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism,
                         ::testing::Range<uint64_t>(0, 24));

//===----------------------------------------------------------------------===//
// Budgeted runs: exhaustion decisions are schedule-independent
//===----------------------------------------------------------------------===//

class BudgetedParallelDeterminism : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(BudgetedParallelDeterminism, ExhaustionMatchesSerial) {
  const uint64_t Seed = GetParam();
  // Tight enough to exhaust on some seeds, loose enough to pass on
  // others — both classes must agree with serial, including *which*
  // degradation rung was taken.
  UsherOptions Base;
  Base.Variant = ToolVariant::UsherFull;
  Base.Limits.MaxStepsPerPhase = 400;
  Snapshot Serial = runPipeline(Seed, 1, Base);
  for (unsigned Jobs : {2u, 8u})
    expectEqual(Serial, runPipeline(Seed, Jobs, Base), Jobs, Seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetedParallelDeterminism,
                         ::testing::Range<uint64_t>(100, 108));

//===----------------------------------------------------------------------===//
// Fuzz campaigns: sharded workers, byte-identical usher-fuzz-v1 report
//===----------------------------------------------------------------------===//

std::string campaignJson(uint64_t Seed, unsigned Jobs) {
  fuzz::FuzzOptions Opts;
  Opts.Seed = Seed;
  Opts.Runs = 24;
  Opts.Jobs = Jobs;
  fuzz::FuzzReport Rep = fuzz::runFuzzer(Opts);
  std::string Buf;
  raw_string_ostream OS(Buf);
  Rep.printJson(OS);
  return Buf;
}

class FuzzParallelDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzParallelDeterminism, CampaignReportIsByteIdentical) {
  const uint64_t Seed = GetParam();
  std::string Serial = campaignJson(Seed, 1);
  for (unsigned Jobs : {2u, 8u})
    EXPECT_EQ(Serial, campaignJson(Seed, Jobs))
        << "jobs=" << Jobs << " campaign seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzParallelDeterminism,
                         ::testing::Values(1, 7, 42, 1234, 9001));

} // namespace
