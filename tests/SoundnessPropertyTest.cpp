//===- tests/SoundnessPropertyTest.cpp - The paper's soundness claim -------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper claims Usher's guided instrumentation is sound: no use of an
/// undefined value that full instrumentation would report is missed. This
/// file turns that claim into a property over seeded random programs:
///
///  - full (MSan-style) instrumentation must report exactly the oracle's
///    ground-truth warnings;
///  - UsherTL / UsherTL+AT / UsherOptI must report exactly the same
///    warnings as full instrumentation;
///  - UsherFull (with Opt II) may suppress *dominated duplicates*, so its
///    warnings must be a subset, non-empty iff the oracle's are, and every
///    suppressed warning must still leave the defect visible somewhere.
///
//===----------------------------------------------------------------------===//

#include "core/Usher.h"
#include "runtime/Interpreter.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <set>

using namespace usher;
using core::ToolVariant;
using runtime::ExecutionReport;
using runtime::ExitReason;
using runtime::Interpreter;

namespace {

std::set<const ir::Instruction *> warnSet(const std::vector<runtime::Warning> &Ws) {
  std::set<const ir::Instruction *> S;
  for (const runtime::Warning &W : Ws)
    S.insert(W.At);
  return S;
}

class SoundnessProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoundnessProperty, GuidedReportsMatchFull) {
  const uint64_t Seed = GetParam();
  auto M = workload::generateProgram(Seed);

  // Ground truth from a native (uninstrumented) run.
  ExecutionReport Native = Interpreter(*M, nullptr).run();
  ASSERT_EQ(Native.Reason, ExitReason::Finished)
      << "seed " << Seed << ": " << Native.TrapMessage;
  const auto Oracle = warnSet(Native.OracleWarnings);

  struct VariantRun {
    ToolVariant V;
    bool ExactMatch;
  };
  const VariantRun Runs[] = {
      {ToolVariant::MSanFull, true},  {ToolVariant::UsherTL, true},
      {ToolVariant::UsherTLAT, true}, {ToolVariant::UsherOptI, true},
      {ToolVariant::UsherFull, false},
  };

  for (const VariantRun &Run : Runs) {
    core::UsherOptions Opts;
    Opts.Variant = Run.V;
    core::UsherResult R = core::runUsher(*M, Opts);
    ExecutionReport Rep = Interpreter(*M, &R.Plan).run();
    ASSERT_EQ(Rep.Reason, ExitReason::Finished)
        << "seed " << Seed << " variant " << core::toolVariantName(Run.V);
    EXPECT_EQ(Rep.MainResult, Native.MainResult)
        << "instrumentation changed program semantics (seed " << Seed
        << ")";
    auto Tool = warnSet(Rep.ToolWarnings);
    if (Run.ExactMatch) {
      EXPECT_EQ(Tool, Oracle)
          << "seed " << Seed << " variant " << core::toolVariantName(Run.V);
    } else {
      // Opt II suppresses dominated duplicate reports only.
      for (const ir::Instruction *I : Tool)
        EXPECT_TRUE(Oracle.count(I))
            << "seed " << Seed << ": false positive under Opt II";
      EXPECT_EQ(Tool.empty(), Oracle.empty())
          << "seed " << Seed << ": Opt II hid a real defect entirely";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessProperty,
                         ::testing::Range<uint64_t>(0, 150));

//===----------------------------------------------------------------------===//
// Soundness under degradation
//===----------------------------------------------------------------------===//
//
// Injecting budget exhaustion into any phase must leave the warnings
// intact: whatever rung the driver lands on, the produced plan reports
// exactly the oracle's undefined-value uses. (Every landing rung —
// MSAN, USHER-TL, USHER-TL+AT, USHER-OPTI — has exact-match semantics;
// the driver never strands a run on a half-applied Opt II.)

class DegradedSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DegradedSoundness, InjectedExhaustionKeepsWarnings) {
  const uint64_t Seed = GetParam();
  auto M = workload::generateProgram(Seed);

  ExecutionReport Native = Interpreter(*M, nullptr).run();
  ASSERT_EQ(Native.Reason, ExitReason::Finished)
      << "seed " << Seed << ": " << Native.TrapMessage;
  const auto Oracle = warnSet(Native.OracleWarnings);

  struct FaultCase {
    BudgetPhase Phase;
    ToolVariant Requested;
    ToolVariant ExpectedRung;
    uint32_t Fires = 0; ///< bounded fire count; 0 = every arm
  };
  const FaultCase Cases[] = {
      {BudgetPhase::PointerAnalysis, ToolVariant::UsherFull,
       ToolVariant::MSanFull},
      // Two fires exhaust field-sensitive and field-insensitive Andersen
      // but spare the third arm: the run lands on the UNIFY-backed
      // TL+AT rung, which must still report the oracle's warnings.
      {BudgetPhase::PointerAnalysis, ToolVariant::UsherFull,
       ToolVariant::UsherTLAT, /*Fires=*/2},
      {BudgetPhase::Definedness, ToolVariant::UsherFull,
       ToolVariant::UsherTLAT},
      {BudgetPhase::OptII, ToolVariant::UsherFull, ToolVariant::UsherOptI},
      {BudgetPhase::OptI, ToolVariant::UsherOptI, ToolVariant::UsherTLAT},
  };

  for (const FaultCase &C : Cases) {
    core::UsherOptions Opts;
    Opts.Variant = C.Requested;
    FaultPlan F;
    F.Phase = C.Phase;
    F.AtStep = 0;
    F.MaxFires = C.Fires;
    Opts.Fault = F;
    core::UsherResult R = core::runUsher(*M, Opts);
    EXPECT_TRUE(R.Degradation.Degraded)
        << "seed " << Seed << " fault " << budgetPhaseName(C.Phase);
    EXPECT_EQ(R.Degradation.Rung, C.ExpectedRung)
        << "seed " << Seed << " fault " << budgetPhaseName(C.Phase);

    ExecutionReport Rep = Interpreter(*M, &R.Plan).run();
    ASSERT_EQ(Rep.Reason, ExitReason::Finished)
        << "seed " << Seed << " fault " << budgetPhaseName(C.Phase);
    EXPECT_EQ(Rep.MainResult, Native.MainResult)
        << "degraded instrumentation changed program semantics (seed "
        << Seed << ")";
    EXPECT_EQ(warnSet(Rep.ToolWarnings), Oracle)
        << "seed " << Seed << " fault " << budgetPhaseName(C.Phase)
        << ": degraded plan missed or invented warnings";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegradedSoundness,
                         ::testing::Range<uint64_t>(0, 25));

} // namespace
