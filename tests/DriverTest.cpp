//===- tests/DriverTest.cpp - Driver, contexts, cost model, mod/ref --------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/ModRef.h"
#include "analysis/PointerAnalysis.h"
#include "core/Usher.h"
#include "parser/Parser.h"
#include "runtime/CostModel.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace usher;
using core::ToolVariant;

namespace {

//===----------------------------------------------------------------------===//
// Context-sensitivity depth (k = 2 vs k = 1)
//===----------------------------------------------------------------------===//

/// Two nested identity calls. The undefined value enters through g's
/// *first* call site; with k=1 the inner call to f evicts that frame from
/// the context window, so the flow may exit through g's second call site
/// too. k=2 keeps both frames and prunes the unrealizable exit.
const char *TwoLevelSrc = R"(
  func f(v) { ret v; }
  func g(v) {
    r = f(v);
    ret r;
  }
  func main() {
    z = 0;
    if z goto setit;
    goto next;
  setit:
    u = 1;
  next:
    d = 5;
    a = g(u);
    b = g(d);
    if a goto l1;
    goto l2;
  l1:
    x = 0;
  l2:
    if b goto l3;
    ret 0;
  l3:
    ret 1;
  }
)";

TEST(ContextDepth, KOneLosesTheOuterFrame) {
  auto M = parser::parseModuleOrAbort(TwoLevelSrc);
  core::UsherOptions Opts;
  Opts.Variant = ToolVariant::UsherTLAT;
  Opts.ContextK = 1;
  core::UsherResult R = core::runUsher(*M, Opts);
  // Both result branches look tainted: k=1 cannot match through two
  // nested, already-returned frames.
  EXPECT_EQ(R.Plan.countChecks(), 2u);
}

TEST(ContextDepth, KTwoMatchesThroughNestedCalls) {
  auto M = parser::parseModuleOrAbort(TwoLevelSrc);
  core::UsherOptions Opts;
  Opts.Variant = ToolVariant::UsherTLAT;
  Opts.ContextK = 2;
  core::UsherResult R = core::runUsher(*M, Opts);
  // Only the branch on a (fed from the undefined argument) needs a check.
  EXPECT_EQ(R.Plan.countChecks(), 1u);
}

//===----------------------------------------------------------------------===//
// Driver statistics
//===----------------------------------------------------------------------===//

TEST(Driver, PopulatesStatisticsAndPhases) {
  auto M = parser::parseModuleOrAbort(R"(
    global g[2] uninit;
    func main() {
      p = g;
      x = *p;
      q = alloc heap 2 uninit;
      *q = x;
      if x goto a;
      ret 0;
    a:
      ret 1;
    }
  )");
  core::UsherResult R = core::runUsher(*M, core::UsherOptions());
  const core::UsherStatistics &S = R.Stats;
  EXPECT_GT(S.NumInstructions, 0u);
  EXPECT_GT(S.NumTopLevelVars, 0u);
  EXPECT_EQ(S.NumGlobalObjects, 1u);
  EXPECT_EQ(S.NumHeapObjects, 1u);
  EXPECT_GT(S.NumVFGNodes, 2u);
  EXPECT_GT(S.NumVFGEdges, 0u);
  EXPECT_GT(S.PercentUninitObjects, 99.0);
  EXPECT_FALSE(S.PhaseSeconds.empty());
  EXPECT_TRUE(S.PhaseSeconds.count("1.pointer-analysis"));
  EXPECT_TRUE(S.PhaseSeconds.count("4.definedness"));
  // Analyses are kept alive for inspection.
  EXPECT_NE(R.G, nullptr);
  EXPECT_NE(R.Gamma, nullptr);
  EXPECT_NE(R.PA, nullptr);
}

TEST(Driver, VariantNamesAreStable) {
  EXPECT_STREQ(core::toolVariantName(ToolVariant::MSanFull), "MSAN");
  EXPECT_STREQ(core::toolVariantName(ToolVariant::UsherTL), "USHER-TL");
  EXPECT_STREQ(core::toolVariantName(ToolVariant::UsherTLAT),
               "USHER-TL+AT");
  EXPECT_STREQ(core::toolVariantName(ToolVariant::UsherOptI),
               "USHER-OPTI");
  EXPECT_STREQ(core::toolVariantName(ToolVariant::UsherFull), "USHER");
}

TEST(Driver, MSanVariantSkipsStaticAnalysis) {
  auto M = parser::parseModuleOrAbort("func main() { ret 0; }");
  core::UsherOptions Opts;
  Opts.Variant = ToolVariant::MSanFull;
  core::UsherResult R = core::runUsher(*M, Opts);
  EXPECT_EQ(R.G, nullptr) << "full instrumentation needs no VFG";
  EXPECT_EQ(R.Gamma, nullptr);
}

//===----------------------------------------------------------------------===//
// Cost model
//===----------------------------------------------------------------------===//

TEST(CostModelTest, MemoryShadowTrafficCostsMoreThanRegisterMoves) {
  runtime::CostModel CM;
  core::ShadowOp SetVar;
  SetVar.K = core::ShadowOp::Kind::SetVar;
  core::ShadowOp LoadMem;
  LoadMem.K = core::ShadowOp::Kind::LoadMem;
  EXPECT_GT(CM.shadowCost(LoadMem), CM.shadowCost(SetVar));

  core::ShadowOp SetObj;
  SetObj.K = core::ShadowOp::Kind::SetMemObject;
  EXPECT_GT(CM.shadowCost(SetObj, /*Cells=*/16),
            CM.shadowCost(SetObj, /*Cells=*/1))
      << "whole-object initialization scales with size";
}

TEST(CostModelTest, EveryInstructionKindHasPositiveBaseCost) {
  auto M = parser::parseModuleOrAbort(R"(
    func callee(a) { ret a; }
    func main() {
      x = 1;
      y = x + 2;
      p = alloc stack 2 uninit;
      q = gep p, 1;
      *q = y;
      z = *q;
      w = callee(z);
      if w goto done;
      goto done;
    done:
      ret w;
    }
  )");
  runtime::CostModel CM;
  for (const auto &F : M->functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        EXPECT_GT(CM.baseCost(*I), 0.0);
}

//===----------------------------------------------------------------------===//
// Mod/ref with heap cloning
//===----------------------------------------------------------------------===//

TEST(ModRefCloning, WrapperCallSitesSeeClonesNotOrigins) {
  auto M = parser::parseModuleOrAbort(R"(
    func mk() {
      p = alloc heap 1 uninit;
      ret p;
    }
    func main() {
      a = mk();
      *a = 1;
      ret 0;
    }
  )");
  analysis::CallGraph CG(*M);
  analysis::PointerAnalysis PA(*M, CG);
  analysis::ModRefAnalysis MR(*M, CG, PA);

  const ir::Function *Mk = M->findFunction("mk");
  ASSERT_TRUE(PA.isAllocWrapper(Mk));
  const ir::MemObject *Origin = PA.cloneOrigins(Mk)[0];
  const ir::CallInst *Call = CG.callSitesIn(M->findFunction("main"))[0];
  const ir::MemObject *Clone = PA.clonesAt(Call)[0];

  BitSet AtSite = MR.modAt(Call);
  EXPECT_TRUE(AtSite.test(PA.locId(Clone, 0)))
      << "the call site allocates the clone";
  EXPECT_FALSE(AtSite.test(PA.locId(Origin, 0)))
      << "the origin stays confined to the wrapper";
  // The wrapper itself still mods its own origin object.
  EXPECT_TRUE(MR.mod(Mk).test(PA.locId(Origin, 0)));
}

//===----------------------------------------------------------------------===//
// Interpreter + guided plans on arrays
//===----------------------------------------------------------------------===//

TEST(GuidedArrays, InitLoopThenReadIsQuietButChecked) {
  // A classic fill-then-read array: dynamically defined, statically
  // unprovable (weak updates only). Usher must keep the checks but report
  // nothing at run time.
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      a = alloc heap 8 uninit array;
      i = 0;
    fill:
      c = i < 8;
      if c goto fbody;
      goto readit;
    fbody:
      p = gep a, i;
      *p = i;
      i = i + 1;
      goto fill;
    readit:
      q = gep a, 5;
      v = *q;
      if v goto done;
      ret 0;
    done:
      ret v;
    }
  )");
  core::UsherOptions Opts;
  Opts.Variant = ToolVariant::UsherFull;
  core::UsherResult R = core::runUsher(*M, Opts);
  EXPECT_GE(R.Plan.countChecks(), 1u) << "arrays stay unprovable";
  runtime::ExecutionReport Rep = runtime::Interpreter(*M, &R.Plan).run();
  EXPECT_EQ(Rep.Reason, runtime::ExitReason::Finished);
  EXPECT_EQ(Rep.MainResult, 5);
  EXPECT_TRUE(Rep.ToolWarnings.empty()) << "no false positives";
}

TEST(GuidedArrays, PartialInitIsCaught) {
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      a = alloc heap 8 uninit array;
      p = gep a, 0;
      *p = 1;
      q = gep a, 6;
      v = *q;
      if v goto done;
      ret 0;
    done:
      ret 1;
    }
  )");
  core::UsherOptions Opts;
  Opts.Variant = ToolVariant::UsherFull;
  core::UsherResult R = core::runUsher(*M, Opts);
  runtime::ExecutionReport Rep = runtime::Interpreter(*M, &R.Plan).run();
  EXPECT_EQ(Rep.ToolWarnings.size(), 1u);
  EXPECT_EQ(Rep.OracleWarnings.size(), 1u);
}

} // namespace
