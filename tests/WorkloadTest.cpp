//===- tests/WorkloadTest.cpp - Generator and suite infrastructure ---------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/PointerAnalysis.h"
#include "ir/IR.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "support/RawStream.h"
#include "workload/Generator.h"
#include "workload/Spec2000.h"

#include <gtest/gtest.h>

#include <map>

using namespace usher;
using runtime::ExecutionReport;
using runtime::ExitReason;
using runtime::Interpreter;

namespace {

//===----------------------------------------------------------------------===//
// Random program generator
//===----------------------------------------------------------------------===//

TEST(Generator, DeterministicForEqualSeeds) {
  auto A = workload::generateProgram(77);
  auto B = workload::generateProgram(77);
  std::string SA, SB;
  raw_string_ostream OA(SA), OB(SB);
  A->print(OA);
  B->print(OB);
  EXPECT_EQ(SA, SB);
}

TEST(Generator, DifferentSeedsDiffer) {
  auto A = workload::generateProgram(1);
  auto B = workload::generateProgram(2);
  std::string SA, SB;
  raw_string_ostream OA(SA), OB(SB);
  A->print(OA);
  B->print(OB);
  EXPECT_NE(SA, SB);
}

TEST(Generator, ProgramsVerifyAndTerminate) {
  for (uint64_t Seed = 500; Seed != 540; ++Seed) {
    auto M = workload::generateProgram(Seed);
    std::vector<std::string> Errors;
    EXPECT_TRUE(ir::verifyModule(*M, Errors))
        << "seed " << Seed << ": " << Errors.front();
    runtime::ExecLimits Limits;
    Limits.MaxSteps = 5'000'000;
    ExecutionReport R =
        Interpreter(*M, nullptr, runtime::CostModel(), Limits).run();
    EXPECT_EQ(R.Reason, ExitReason::Finished)
        << "seed " << Seed << ": " << R.TrapMessage;
  }
}

TEST(Generator, ProducesUndefinedUsesRegularly) {
  unsigned WithBugs = 0;
  for (uint64_t Seed = 0; Seed != 60; ++Seed) {
    auto M = workload::generateProgram(Seed);
    ExecutionReport R = Interpreter(*M, nullptr).run();
    if (R.Reason == ExitReason::Finished && !R.OracleWarnings.empty())
      ++WithBugs;
  }
  // The generator exists to exercise undefined-value flows: a healthy
  // fraction of programs must actually exhibit one.
  EXPECT_GE(WithBugs, 10u);
  EXPECT_LE(WithBugs, 58u) << "and a fraction must be clean, too";
}

TEST(Generator, RoundTripsThroughPrinterAndParser) {
  for (uint64_t Seed = 900; Seed != 910; ++Seed) {
    auto M = workload::generateProgram(Seed);
    std::string Text;
    raw_string_ostream OS(Text);
    M->print(OS);
    parser::ParseResult Reparsed = parser::parseModule(Text);
    ASSERT_TRUE(Reparsed.succeeded())
        << "seed " << Seed << ": " << Reparsed.Errors.front();
    // Same observable behaviour.
    ExecutionReport A = Interpreter(*M, nullptr).run();
    ExecutionReport B = Interpreter(*Reparsed.M, nullptr).run();
    ASSERT_EQ(A.Reason, ExitReason::Finished);
    ASSERT_EQ(B.Reason, ExitReason::Finished);
    EXPECT_EQ(A.MainResult, B.MainResult) << "seed " << Seed;
    EXPECT_EQ(A.OracleWarnings.size(), B.OracleWarnings.size())
        << "seed " << Seed;
  }
}

TEST(Generator, OptionsControlShape) {
  workload::GeneratorOptions Small;
  Small.NumFunctions = 1;
  Small.MaxSegmentsPerFn = 2;
  workload::GeneratorOptions Big;
  Big.NumFunctions = 12;
  Big.MaxSegmentsPerFn = 8;
  auto MSmall = workload::generateProgram(42, Small);
  auto MBig = workload::generateProgram(42, Big);
  EXPECT_LT(MSmall->instructionCount(), MBig->instructionCount());
  EXPECT_EQ(MSmall->functions().size(), 2u); // f0 + main.
  EXPECT_EQ(MBig->functions().size(), 13u);
}

//===----------------------------------------------------------------------===//
// Construct coverage: the pointer-flow shapes the fuzzer needs
//===----------------------------------------------------------------------===//

struct ConstructCounts {
  unsigned NestedChainGeps = 0; ///< gep whose base was just load-defined.
  unsigned InductionGeps = 0;   ///< gep whose def equals its base (p = gep p).
  unsigned CallResultGeps = 0;  ///< gep whose base was just call-defined.
};

/// Classifies every gep in \p M by what last defined its base variable, in
/// emission order — the structural signatures of the generator's nested
/// field chains, pointer-induction loops, and call-result field accesses.
ConstructCounts countConstructs(const ir::Module &M) {
  ConstructCounts C;
  for (const auto &F : M.functions()) {
    std::map<const ir::Variable *, ir::Instruction::IKind> LastDef;
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions()) {
        if (const auto *G = dyn_cast<ir::FieldAddrInst>(I.get());
            G && G->getBase().isVar()) {
          const ir::Variable *Base = G->getBase().getVar();
          auto It = LastDef.find(Base);
          if (G->getDef() == Base)
            ++C.InductionGeps;
          else if (It != LastDef.end() &&
                   It->second == ir::Instruction::IKind::Load)
            ++C.NestedChainGeps;
          else if (It != LastDef.end() &&
                   It->second == ir::Instruction::IKind::Call)
            ++C.CallResultGeps;
        }
        if (I->getDef())
          LastDef[I->getDef()] = I->getKind();
      }
  }
  return C;
}

TEST(Generator, EmitsAllPointerFlowConstructsOverASeedSweep) {
  ConstructCounts Total;
  for (uint64_t Seed = 0; Seed != 40; ++Seed) {
    ConstructCounts C = countConstructs(*workload::generateProgram(Seed));
    Total.NestedChainGeps += C.NestedChainGeps;
    Total.InductionGeps += C.InductionGeps;
    Total.CallResultGeps += C.CallResultGeps;
  }
  // Each construct stresses a distinct analysis path (multi-level field
  // flow, array summaries under pointer induction, interprocedural
  // return flow), so each must show up regularly.
  EXPECT_GE(Total.NestedChainGeps, 5u);
  EXPECT_GE(Total.InductionGeps, 5u);
  EXPECT_GE(Total.CallResultGeps, 5u);
}

TEST(Generator, ConstructOptionsGateTheirEmitters) {
  workload::GeneratorOptions Off;
  Off.NestedFieldChains = false;
  Off.PointerInductionLoops = false;
  Off.CallResultFieldAccess = false;
  for (uint64_t Seed = 0; Seed != 40; ++Seed) {
    ConstructCounts C = countConstructs(*workload::generateProgram(Seed, Off));
    // Pointer-induction geps and pointer loads come only from the gated
    // emitters; call-based geps can still arise from pooled call results,
    // so only the first two are strictly zero.
    EXPECT_EQ(C.InductionGeps, 0u) << "seed " << Seed;
    EXPECT_EQ(C.NestedChainGeps, 0u) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Benchmark suite infrastructure
//===----------------------------------------------------------------------===//

TEST(Suite, NamesFollowSpecNumbering) {
  const auto &Suite = workload::spec2000Suite();
  ASSERT_EQ(Suite.size(), 15u);
  EXPECT_EQ(Suite.front().Name, "164.gzip");
  EXPECT_EQ(Suite.back().Name, "300.twolf");
  for (const auto &B : Suite) {
    EXPECT_FALSE(B.Description.empty());
    EXPECT_NE(B.Source, nullptr);
  }
}

TEST(Suite, ProgramsAreNontrivial) {
  for (const auto &B : workload::spec2000Suite()) {
    auto M = workload::loadBenchmark(B);
    EXPECT_GE(M->instructionCount(), 50u) << B.Name;
    EXPECT_GE(M->functions().size(), 1u) << B.Name;
    ExecutionReport R = Interpreter(*M, nullptr).run();
    EXPECT_GE(R.Steps, 100'000u)
        << B.Name << " must run long enough to measure";
  }
}

TEST(Suite, MixesInitializedAndUninitializedAllocations) {
  unsigned Uninit = 0, Total = 0;
  for (const auto &B : workload::spec2000Suite()) {
    auto M = workload::loadBenchmark(B);
    for (const auto &Obj : M->objects()) {
      ++Total;
      Uninit += !Obj->isInitialized();
    }
  }
  double Pct = 100.0 * Uninit / Total;
  // Table 1's %F column averages 34% in the paper; the suite was written
  // to sit near that.
  EXPECT_GT(Pct, 20.0);
  EXPECT_LT(Pct, 60.0);
}

TEST(Suite, ContainsWrapperAllocationPatterns) {
  // Heap cloning and semi-strong updates need wrapper-style allocation to
  // matter; the suite must exercise that (mcf, gcc, ammp, gap, vortex).
  unsigned WithWrappers = 0;
  for (const auto &B : workload::spec2000Suite()) {
    auto M = workload::loadBenchmark(B);
    analysis::CallGraph CG(*M);
    analysis::PointerAnalysis PA(*M, CG);
    for (const auto &F : M->functions())
      if (PA.isAllocWrapper(F.get())) {
        ++WithWrappers;
        break;
      }
  }
  EXPECT_GE(WithWrappers, 4u);
}

} // namespace
