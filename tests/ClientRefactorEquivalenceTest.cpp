//===- tests/ClientRefactorEquivalenceTest.cpp - UUV golden equivalence ----===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-client refactor's golden guarantee: the UUV client's output
/// is byte-identical whether it runs through the legacy single-plan path
/// (no clients configured, single-plan interpreter constructor) or as
/// plan 0 of a multi-client pass (three clients planned over one VFG,
/// one interpreter executing one plan per client). Both paths render
/// their warning report through the CLI's exact format and the strings
/// are compared byte for byte; the static diagnosis JSON is compared the
/// same way. Checked across the 15-benchmark suite, every .tc corpus
/// input, and 100 generator seeds.
///
/// A Jobs=0 run of the multi-client pipeline must also be byte-identical
/// to Jobs=1 — the multi-client planning phase sits downstream of the
/// parallel phases and must not perturb their ordered reductions. That
/// test doubles as the TSan tier's multi-client entry.
///
//===----------------------------------------------------------------------===//

#include "core/StaticDiagnosis.h"
#include "core/Usher.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "support/RawStream.h"
#include "workload/Generator.h"
#include "workload/Spec2000.h"

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

using namespace usher;
using runtime::ExecutionReport;
using runtime::ExitReason;
using runtime::Interpreter;

namespace {

/// A re-runnable program source: every pipeline run mutates its module
/// (heap cloning), so each path gets a fresh one.
using FreshModule = std::function<std::unique_ptr<ir::Module>()>;

/// Renders a UUV run exactly as tools/usher-cli's reportRun does, from
/// either the legacy report fields or one plan's slice of a multi-plan
/// report. Byte-equality of two renders is the golden criterion.
std::string renderUuvRun(const ExecutionReport &Rep,
                         const std::vector<runtime::Warning> &Warns,
                         uint64_t DynShadowOps, uint64_t DynChecks,
                         double ShadowCost) {
  std::string Text;
  raw_string_ostream OS(Text);
  OS << '[';
  OS.leftJustify("USHER", 12);
  OS << "] ";
  if (Rep.Reason == ExitReason::Trap) {
    OS << "trapped: " << Rep.TrapMessage << '\n';
    return Text;
  }
  if (Rep.Reason == ExitReason::StepLimit) {
    OS << "stopped: step limit exceeded\n";
    return Text;
  }
  if (Rep.Reason == ExitReason::Interrupted) {
    OS << "interrupted after " << Rep.Steps << " steps, shadow ops "
       << DynShadowOps << ", checks " << DynChecks << '\n';
    return Text;
  }
  double Slowdown = Rep.BaseCost > 0 ? 100.0 * ShadowCost / Rep.BaseCost : 0.0;
  OS << "result " << Rep.MainResult << ", slowdown "
     << static_cast<int>(Slowdown) << "%, shadow ops " << DynShadowOps
     << ", checks " << DynChecks << '\n';
  for (const runtime::Warning &W : Warns) {
    OS << "  warning: ";
    if (W.At->getLoc().isValid())
      OS << W.At->getLoc().Line << ':' << W.At->getLoc().Col << ": ";
    OS << "use of undefined value in "
       << W.At->getParent()->getParent()->getName() << " at \"";
    W.At->print(OS);
    OS << "\" (x" << W.Occurrences << ")\n";
  }
  return Text;
}

std::string diagJson(const core::UsherResult &R) {
  EXPECT_TRUE(R.PA && R.CG && R.G);
  core::StaticDiagnosis Diag(*R.PA, *R.CG, *R.G);
  std::string Text;
  raw_string_ostream OS(Text);
  Diag.printJson(OS);
  return Text;
}

/// The golden check for one program: legacy UUV-only path vs the same
/// client riding a three-client single pass.
void expectUuvByteIdentical(const FreshModule &Fresh, const std::string &Tag) {
  // Path A: exactly the pre-refactor surface — no clients configured,
  // the single-plan interpreter constructor, the legacy report fields.
  auto MA = Fresh();
  core::UsherOptions OptsA;
  core::UsherResult RA = core::runUsher(*MA, OptsA);
  ExecutionReport RepA = Interpreter(*MA, &RA.Plan).run();
  const std::string TextA = renderUuvRun(RepA, RepA.ToolWarnings,
                                         RepA.DynShadowOps, RepA.DynChecks,
                                         RepA.ShadowCost);

  // Path B: the refactored surface — all three clients planned over one
  // VFG, one interpreter pass, the UUV client is plan 0.
  auto MB = Fresh();
  core::UsherOptions OptsB;
  OptsB.Clients = {core::ClientKind::UUV, core::ClientKind::AddrLeak,
                   core::ClientKind::Bounds};
  core::UsherResult RB = core::runUsher(*MB, OptsB);
  ASSERT_EQ(RB.ClientPlans.size(), 2u) << Tag;
  std::vector<runtime::PlanExec> Plans{{&RB.Plan, core::ShadowSemantics()}};
  for (const core::ClientPlanInfo &CP : RB.ClientPlans)
    Plans.push_back({&CP.Plan, core::clientShadowSemantics(CP.Kind)});
  ExecutionReport RepB = Interpreter(*MB, Plans).run();
  ASSERT_EQ(RepB.Reason, RepA.Reason) << Tag;
  const runtime::PlanReport &Uuv = RepB.PlanResults[0];
  const std::string TextB = renderUuvRun(RepB, Uuv.ToolWarnings,
                                         Uuv.DynShadowOps, Uuv.DynChecks,
                                         Uuv.ShadowCost);

  // The golden criterion: the rendered UUV report is byte-identical.
  EXPECT_EQ(TextA, TextB) << Tag;

  // The UUV plan itself must be unchanged by client planning.
  EXPECT_EQ(RA.Plan.countChecks(), RB.Plan.countChecks()) << Tag;
  EXPECT_EQ(RA.Plan.countShadowOps(), RB.Plan.countShadowOps()) << Tag;
  EXPECT_EQ(RA.Plan.countPropagationReads(), RB.Plan.countPropagationReads())
      << Tag;
  EXPECT_EQ(RA.Degradation.Rung, RB.Degradation.Rung) << Tag;

  // And the machine-readable diagnosis is byte-identical too.
  EXPECT_EQ(diagJson(RA), diagJson(RB)) << Tag << ": --diag-json differs";

  // The legacy aggregate fields of a multi-plan report alias plan 0 plus
  // the other plans' counters; plan 0's slice must match path A exactly.
  if (RepA.Reason == ExitReason::Finished) {
    EXPECT_EQ(Uuv.DynShadowOps, RepA.DynShadowOps) << Tag;
    EXPECT_EQ(Uuv.DynChecks, RepA.DynChecks) << Tag;
    EXPECT_EQ(Uuv.ShadowCost, RepA.ShadowCost) << Tag;
    EXPECT_EQ(RepB.MainResult, RepA.MainResult) << Tag;
    EXPECT_EQ(RepB.Steps, RepA.Steps) << Tag;
  }
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

//===----------------------------------------------------------------------===//
// The 15-benchmark suite
//===----------------------------------------------------------------------===//

class ClientRefactorSuite : public ::testing::TestWithParam<size_t> {};

TEST_P(ClientRefactorSuite, UuvOutputByteIdentical) {
  const auto &B = workload::spec2000Suite()[GetParam()];
  expectUuvByteIdentical([&B] { return workload::loadBenchmark(B); }, B.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ClientRefactorSuite, ::testing::Range<size_t>(0, 15),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = workload::spec2000Suite()[Info.param].Name;
      for (char &C : Name)
        if (C == '.')
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// The .tc input corpora
//===----------------------------------------------------------------------===//

class ClientRefactorCorpus : public ::testing::TestWithParam<const char *> {};

TEST_P(ClientRefactorCorpus, UuvOutputByteIdentical) {
  const std::string Rel = GetParam();
  const std::string Source =
      readFile(std::string(USHER_TEST_INPUT_DIR) + "/" + Rel);
  expectUuvByteIdentical(
      [&Source] { return parser::parseModuleOrAbort(Source); }, Rel);
}

INSTANTIATE_TEST_SUITE_P(
    AllInputs, ClientRefactorCorpus,
    ::testing::Values("smoke.tc", "diagnosis/definite.tc",
                      "diagnosis/may_guarded.tc",
                      "diagnosis/clean_strong_update.tc",
                      "fuzz/call_undef.tc", "fuzz/global_uninit.tc",
                      "fuzz/opt2_dup.tc", "fuzz/semi_strong_heap.tc",
                      "fuzz/strong_update_clean.tc", "fuzz/walk_partial.tc",
                      "query/undef_branch.tc",
                      "clients/addrleak/leak_heap_to_global.tc",
                      "clients/addrleak/guarded_no_leak.tc",
                      "clients/addrleak/clean_strong_update.tc",
                      "clients/bounds/oob_const_index.tc",
                      "clients/bounds/guarded_in_range.tc",
                      "clients/bounds/clean_const_in_range.tc"),
    [](const ::testing::TestParamInfo<const char *> &I) {
      std::string Name = I.param;
      for (char &C : Name)
        if (C == '/' || C == '.')
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// 100 generator seeds
//===----------------------------------------------------------------------===//

class ClientRefactorSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClientRefactorSeeds, UuvOutputByteIdentical) {
  // 25 seeds per shard, 4 shards: 100 programs total without packing the
  // whole sweep into one long-running test.
  const uint64_t Base = 1 + GetParam() * 25;
  for (uint64_t Seed = Base; Seed != Base + 25; ++Seed)
    expectUuvByteIdentical(
        [Seed] { return workload::generateProgram(Seed); },
        "seed " + std::to_string(Seed));
}

INSTANTIATE_TEST_SUITE_P(Shards, ClientRefactorSeeds,
                         ::testing::Range<uint64_t>(0, 4));

//===----------------------------------------------------------------------===//
// Multi-client parallel determinism (the TSan tier's multi-client entry)
//===----------------------------------------------------------------------===//

TEST(MultiClientParallel, ByteIdenticalAcrossJobs) {
  for (uint64_t Seed : {3u, 11u}) {
    std::string Texts[2];
    for (unsigned Cfg = 0; Cfg != 2; ++Cfg) {
      auto M = workload::generateProgram(Seed);
      core::UsherOptions Opts;
      Opts.Clients = {core::ClientKind::UUV, core::ClientKind::AddrLeak,
                      core::ClientKind::Bounds};
      Opts.Jobs = Cfg == 0 ? 1 : 0; // serial, then all cores
      core::UsherResult R = core::runUsher(*M, Opts);
      ASSERT_EQ(R.ClientPlans.size(), 2u);
      std::vector<runtime::PlanExec> Plans{{&R.Plan, core::ShadowSemantics()}};
      for (const core::ClientPlanInfo &CP : R.ClientPlans)
        Plans.push_back({&CP.Plan, core::clientShadowSemantics(CP.Kind)});
      ExecutionReport Rep = Interpreter(*M, Plans).run();
      ASSERT_EQ(Rep.Reason, ExitReason::Finished);
      std::string Text;
      raw_string_ostream OS(Text);
      OS << "uuv checks=" << R.Plan.countChecks();
      for (const core::ClientPlanInfo &CP : R.ClientPlans)
        OS << ' ' << core::clientName(CP.Kind)
           << " checks=" << CP.Plan.countChecks()
           << " unsafe=" << CP.UnsafeSinks;
      for (size_t P = 0; P != Plans.size(); ++P) {
        OS << " plan" << P << ':';
        for (const runtime::Warning &W : Rep.PlanResults[P].ToolWarnings)
          OS << ' ' << W.At->getId() << 'x' << W.Occurrences;
      }
      Texts[Cfg] = Text;
    }
    EXPECT_EQ(Texts[0], Texts[1]) << "seed " << Seed;
  }
}

} // namespace
