//===- tests/SuiteTest.cpp - SPEC2000-like suite integration tests ---------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests over the 15 benchmark programs: pinned results,
/// pinned bug counts across every tool variant and optimization preset,
/// and the monotonicity the paper's evaluation relies on (each analysis
/// refinement only removes instrumentation, never misses a bug).
///
//===----------------------------------------------------------------------===//

#include "core/Usher.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "transforms/Transforms.h"
#include "workload/Spec2000.h"
#include "workload/Synthesizer.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace usher;
using core::ToolVariant;
using runtime::ExecutionReport;
using runtime::ExitReason;
using runtime::Interpreter;

namespace {

class SuiteTest : public ::testing::TestWithParam<size_t> {
protected:
  const workload::BenchmarkProgram &program() const {
    return workload::spec2000Suite()[GetParam()];
  }
};

TEST_P(SuiteTest, NativeRunMatchesPinnedResult) {
  const auto &B = program();
  auto M = workload::loadBenchmark(B);
  ExecutionReport R = Interpreter(*M, nullptr).run();
  ASSERT_EQ(R.Reason, ExitReason::Finished) << R.TrapMessage;
  EXPECT_EQ(R.MainResult, B.ExpectedResult);
  EXPECT_EQ(R.OracleWarnings.size(), B.ExpectedBugSites);
}

TEST_P(SuiteTest, EveryVariantDetectsExactlyTheKnownBugs) {
  const auto &B = program();
  for (ToolVariant V :
       {ToolVariant::MSanFull, ToolVariant::UsherTL, ToolVariant::UsherTLAT,
        ToolVariant::UsherOptI, ToolVariant::UsherFull}) {
    auto M = workload::loadBenchmark(B);
    core::UsherOptions Opts;
    Opts.Variant = V;
    core::UsherResult R = core::runUsher(*M, Opts);
    ExecutionReport Rep = Interpreter(*M, &R.Plan).run();
    ASSERT_EQ(Rep.Reason, ExitReason::Finished)
        << core::toolVariantName(V) << ": " << Rep.TrapMessage;
    EXPECT_EQ(Rep.MainResult, B.ExpectedResult)
        << core::toolVariantName(V);
    EXPECT_EQ(Rep.ToolWarnings.size(), B.ExpectedBugSites)
        << core::toolVariantName(V);
  }
}

TEST_P(SuiteTest, RefinementsMonotonicallyReduceShadowWork) {
  const auto &B = program();
  uint64_t PrevWork = ~0ull;
  for (ToolVariant V :
       {ToolVariant::MSanFull, ToolVariant::UsherTL, ToolVariant::UsherTLAT,
        ToolVariant::UsherOptI, ToolVariant::UsherFull}) {
    auto M = workload::loadBenchmark(B);
    core::UsherOptions Opts;
    Opts.Variant = V;
    core::UsherResult R = core::runUsher(*M, Opts);
    ExecutionReport Rep = Interpreter(*M, &R.Plan).run();
    uint64_t Work = Rep.DynShadowOps + Rep.DynChecks;
    EXPECT_LE(Work, PrevWork)
        << core::toolVariantName(V) << " did more dynamic shadow work "
        << "than the previous, coarser variant";
    PrevWork = Work;
  }
}

TEST_P(SuiteTest, OptimizationPresetsPreserveResults) {
  const auto &B = program();
  for (transforms::OptPreset P :
       {transforms::OptPreset::O0IM, transforms::OptPreset::O1,
        transforms::OptPreset::O2}) {
    auto M = workload::loadBenchmark(B);
    transforms::runPreset(*M, P);
    ExecutionReport R = Interpreter(*M, nullptr).run();
    ASSERT_EQ(R.Reason, ExitReason::Finished)
        << transforms::optPresetName(P) << ": " << R.TrapMessage;
    // A program that *uses an undefined value* has no single correct
    // result: optimizations may legally change what the undefined read
    // observes (e.g. inlining lets 197.parser's `cost` see a stale frame
    // slot). This is precisely the paper's Section 4.6 caveat about
    // running detectors above O0. Pin results only for defined programs.
    if (B.ExpectedBugSites == 0) {
      EXPECT_EQ(R.MainResult, B.ExpectedResult)
          << transforms::optPresetName(P);
    }
  }
}

TEST_P(SuiteTest, GuidedKeepsSoundnessUnderO2) {
  // Even after aggressive transformation, guided instrumentation must
  // agree with full instrumentation on what it reports.
  const auto &B = program();
  auto MFull = workload::loadBenchmark(B);
  transforms::runPreset(*MFull, transforms::OptPreset::O2);
  core::UsherOptions FullOpts;
  FullOpts.Variant = ToolVariant::MSanFull;
  core::UsherResult Full = core::runUsher(*MFull, FullOpts);
  ExecutionReport FullRep = Interpreter(*MFull, &Full.Plan).run();

  auto MGuided = workload::loadBenchmark(B);
  transforms::runPreset(*MGuided, transforms::OptPreset::O2);
  core::UsherOptions GuidedOpts;
  GuidedOpts.Variant = ToolVariant::UsherFull;
  core::UsherResult Guided = core::runUsher(*MGuided, GuidedOpts);
  ExecutionReport GuidedRep = Interpreter(*MGuided, &Guided.Plan).run();

  EXPECT_EQ(GuidedRep.ToolWarnings.empty(), FullRep.ToolWarnings.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteTest, ::testing::Range<size_t>(0, 15),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = workload::spec2000Suite()[Info.param].Name;
      for (char &C : Name)
        if (C == '.')
          C = '_';
      return Name;
    });

TEST(SuiteGlobal, LinkedSuiteEqualsUnionOfStandaloneRuns) {
  // Link all 15 benchmarks into one module (workload::linkPrograms) and
  // run it natively: the driver's result is the sum of the pinned
  // standalone results, and each program's warning set — mapped back
  // through its symbol prefix — equals its standalone warning set. Units
  // share no state, so linking must neither lose nor invent warnings.
  const auto &Suite = workload::spec2000Suite();
  std::vector<workload::LinkUnit> Units;
  int64_t WantResult = 0;
  std::vector<std::multiset<std::string>> WantWarnings;
  for (const auto &B : Suite) {
    Units.push_back({B.Name, B.Source});
    auto M = workload::loadBenchmark(B);
    ExecutionReport R = Interpreter(*M, nullptr).run();
    ASSERT_EQ(R.Reason, ExitReason::Finished) << B.Name;
    WantResult += R.MainResult;
    std::multiset<std::string> Keys;
    for (const runtime::Warning &W : R.OracleWarnings)
      Keys.insert(workload::warningSiteKey(W.At));
    WantWarnings.push_back(std::move(Keys));
  }

  std::string Err;
  workload::LinkedProgram LP = workload::linkPrograms(Units, &Err);
  ASSERT_FALSE(LP.Source.empty()) << Err;
  ASSERT_EQ(LP.Prefixes.size(), Suite.size());

  parser::ParseResult PR = parser::parseModule(LP.Source);
  ASSERT_TRUE(PR.succeeded())
      << (PR.Errors.empty() ? "unknown parse error" : PR.Errors.front());
  ExecutionReport RL = Interpreter(*PR.M, nullptr).run();
  ASSERT_EQ(RL.Reason, ExitReason::Finished) << RL.TrapMessage;
  EXPECT_EQ(RL.MainResult, WantResult);

  std::map<std::string, std::multiset<std::string>> GotWarnings;
  for (const runtime::Warning &W : RL.OracleWarnings) {
    std::string Key = workload::warningSiteKey(W.At);
    size_t Unit = LP.Prefixes.size();
    for (size_t U = 0; U != LP.Prefixes.size(); ++U) {
      if (Key.rfind(LP.Prefixes[U], 0) == 0) {
        Unit = U;
        break;
      }
    }
    ASSERT_NE(Unit, LP.Prefixes.size())
        << "warning in unprefixed function: " << Key;
    GotWarnings[LP.Prefixes[Unit]].insert(
        workload::warningSiteKey(W.At, LP.Prefixes[Unit]));
  }
  for (size_t U = 0; U != Suite.size(); ++U) {
    EXPECT_EQ(GotWarnings[LP.Prefixes[U]], WantWarnings[U])
        << Suite[U].Name << " warnings changed under linking";
  }
}

TEST(SuiteGlobal, FifteenBenchmarksWithOneKnownBug) {
  const auto &Suite = workload::spec2000Suite();
  ASSERT_EQ(Suite.size(), 15u);
  unsigned TotalBugs = 0;
  for (const auto &B : Suite)
    TotalBugs += B.ExpectedBugSites;
  EXPECT_EQ(TotalBugs, 1u) << "the paper reports exactly one true positive";
  // The bug is in the parser benchmark.
  for (const auto &B : Suite) {
    if (B.ExpectedBugSites) {
      EXPECT_EQ(B.Name, "197.parser");
    }
  }
}

} // namespace
