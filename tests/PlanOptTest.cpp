//===- tests/PlanOptTest.cpp - Shadow-code optimizer tests -----------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/Instrumentation.h"
#include "core/PlanOpt.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace usher;
using core::InstrumentationPlan;
using runtime::ExecutionReport;
using runtime::Interpreter;

namespace {

TEST(PlanOpt, RemovesShadowChainsThatFeedNoCheck) {
  // Pure arithmetic whose result only flows to ret: full instrumentation
  // shadows every step, all of it dead (no critical op consumes it).
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      a = 1;
      b = a + 2;
      c = b * 3;
      d = c - 4;
      ret d;
    }
  )");
  InstrumentationPlan Plan = core::buildFullInstrumentation(*M);
  uint64_t Before = Plan.countShadowOps();
  unsigned Removed = core::optimizeShadowPlan(Plan, *M);
  EXPECT_GT(Removed, 0u);
  EXPECT_LT(Plan.countShadowOps(), Before);
  EXPECT_EQ(Plan.countShadowOps(), 0u)
      << "nothing here can reach a check or memory";
}

TEST(PlanOpt, KeepsEverythingFeedingChecksAndMemory) {
  auto M = parser::parseModuleOrAbort(R"(
    func main() {
      p = alloc stack 1 uninit;
      a = 1;
      b = a + 2;
      *p = b;
      x = *p;
      if x goto done;
      x = 0;
    done:
      ret x;
    }
  )");
  InstrumentationPlan Plan = core::buildFullInstrumentation(*M);
  core::optimizeShadowPlan(Plan, *M);
  // The chain a -> b feeds a memory shadow write; x feeds a check: all of
  // those shadow ops must survive, and so must the checks.
  EXPECT_EQ(Plan.countChecks(), 3u);
  EXPECT_GE(Plan.countShadowOps(), 4u);
}

TEST(PlanOpt, PreservesDetectionBehaviour) {
  auto M = parser::parseModuleOrAbort(R"(
    func helper(v) {
      w = v + 1;
      ret w;
    }
    func main() {
      z = 0;
      if z goto setit;
      goto use;
    setit:
      u = 1;
    use:
      r = helper(u);
      dead1 = r + 10;
      dead2 = dead1 * 2;
      if r goto a;
      ret 0;
    a:
      ret 1;
    }
  )");
  InstrumentationPlan Plan = core::buildFullInstrumentation(*M);
  ExecutionReport Before = Interpreter(*M, &Plan).run();
  unsigned Removed = core::optimizeShadowPlan(Plan, *M);
  ExecutionReport After = Interpreter(*M, &Plan).run();

  EXPECT_GT(Removed, 0u) << "the dead1/dead2 shadow chain is removable";
  ASSERT_EQ(Before.ToolWarnings.size(), After.ToolWarnings.size());
  for (size_t I = 0; I != Before.ToolWarnings.size(); ++I)
    EXPECT_EQ(Before.ToolWarnings[I].At, After.ToolWarnings[I].At);
  EXPECT_LE(After.DynShadowOps, Before.DynShadowOps);
}

TEST(PlanOpt, DropsUnusedParameterTransfers) {
  // helper ignores its parameter's definedness entirely (returns a
  // constant), so the caller's ArgOut and the callee's ParamIn both die.
  auto M = parser::parseModuleOrAbort(R"(
    func helper(v) {
      ret 7;
    }
    func main() {
      a = 3;
      r = helper(a);
      if r goto x;
      ret 0;
    x:
      ret r;
    }
  )");
  InstrumentationPlan Plan = core::buildFullInstrumentation(*M);
  core::optimizeShadowPlan(Plan, *M);
  bool SawArgOut = false, SawParamIn = false;
  Plan.forEachList([&](std::vector<core::ShadowOp> &Ops) {
    for (const core::ShadowOp &Op : Ops) {
      SawArgOut |= Op.K == core::ShadowOp::Kind::ArgOut;
      SawParamIn |= Op.K == core::ShadowOp::Kind::ParamIn;
    }
  });
  EXPECT_FALSE(SawParamIn);
  EXPECT_FALSE(SawArgOut);
}

} // namespace
