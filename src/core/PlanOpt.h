//===- core/PlanOpt.h - Shadow-code optimization ----------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dead-shadow-code elimination over an InstrumentationPlan. The paper's
/// O1/O2 pipelines re-run the LLVM optimizer over the *instrumented*
/// bitcode (Section 4.6, step 3), which deletes shadow computations whose
/// results never reach a check; this pass models that step at the plan
/// level. It is what narrows the MSan-vs-Usher gap at higher optimization
/// levels: full instrumentation contains far more dead shadow code than a
/// guided plan does.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_CORE_PLANOPT_H
#define USHER_CORE_PLANOPT_H

namespace usher {
class Budget;

namespace ir {
class Module;
}

namespace core {

class InstrumentationPlan;

/// Removes shadow operations whose written shadow state is provably never
/// read by any surviving operation:
///  - writes to a variable's shadow that no check, conjunction, transfer
///    or memory-shadow write ever reads;
///  - argument/return shadow transfers whose receiving side is dead.
/// Memory-cell shadow writes are conservatively kept (cells are read
/// through pointers). Returns the number of operations removed.
///
/// When \p B is armed (BudgetPhase::OptI) the liveness fixpoint checks it
/// per operation and stops early on exhaustion, erasing only the kills
/// proven so far. Every kill is individually justified against a
/// round-start over-approximation of the read set, so a partial result
/// only leaves extra (dead but harmless) shadow code behind.
unsigned optimizeShadowPlan(InstrumentationPlan &Plan, const ir::Module &M,
                            Budget *B = nullptr);

} // namespace core
} // namespace usher

#endif // USHER_CORE_PLANOPT_H
