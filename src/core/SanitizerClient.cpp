//===- core/SanitizerClient.cpp - Multi-client sanitizer framework ----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/SanitizerClient.h"

#include "analysis/PointerAnalysis.h"
#include "core/Definedness.h"
#include "core/Instrumentation.h"
#include "core/Placement.h"
#include "ir/IR.h"
#include "runtime/CostModel.h"
#include "ssa/MemorySSA.h"
#include "vfg/VFG.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace usher;
using namespace usher::core;
using namespace usher::ir;
using ssa::FunctionSSA;
using ssa::InstSSA;
using ssa::MemorySSA;
using ssa::Space;
using vfg::NodeOrigin;
using vfg::VFG;

const char *core::clientName(ClientKind K) {
  switch (K) {
  case ClientKind::UUV:
    return "uuv";
  case ClientKind::AddrLeak:
    return "addrleak";
  case ClientKind::Bounds:
    return "bounds";
  }
  return "?";
}

bool core::parseClientName(const std::string &Name, ClientKind &K) {
  for (unsigned I = 0; I != NumClientKinds; ++I) {
    ClientKind C = static_cast<ClientKind>(I);
    if (Name == clientName(C)) {
      K = C;
      return true;
    }
  }
  return false;
}

const char *core::clientWarningText(ClientKind K) {
  switch (K) {
  case ClientKind::UUV:
    return "use of undefined value";
  case ClientKind::AddrLeak:
    return "allocated address may leak";
  case ClientKind::Bounds:
    return "out-of-bounds pointer formed";
  }
  return "?";
}

ShadowSemantics core::clientShadowSemantics(ClientKind K) {
  ShadowSemantics Sem;
  if (K != ClientKind::UUV) {
    // Taint-style clients: "no information" means clean, not bad.
    Sem.FrameInit = true;
    Sem.GlobalsFromInit = false;
  }
  return Sem;
}

//===----------------------------------------------------------------------===//
// Address-leak client
//===----------------------------------------------------------------------===//

/// Collects the AddrLeak sink set: stores whose pointer may target a
/// global object (the value escapes the process's reachable state) and
/// value-carrying returns of main (the value escapes to the exit status).
/// With \p PA null every store is conservatively a sink. With \p SSA / \p G
/// the VFG node of the used value is resolved (required by the planner);
/// sinks in unreachable code are dropped — they cannot execute.
static std::vector<VFG::CriticalUse>
addrLeakSinks(const Module &M, const analysis::PointerAnalysis *PA,
              const MemorySSA *SSA, const VFG *G) {
  std::vector<VFG::CriticalUse> Sinks;
  const Function *Main = M.findFunction("main");
  for (const auto &F : M.functions()) {
    const FunctionSSA *FS = SSA ? &SSA->get(F.get()) : nullptr;
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        const Variable *V = nullptr;
        if (const auto *St = dyn_cast<StoreInst>(I.get())) {
          if (!St->getValue().isVar())
            continue;
          if (PA) {
            bool MayTargetGlobal = false;
            for (uint32_t L : PA->pointsTo(St->getPtr()))
              if (PA->location(L).Obj->isGlobal()) {
                MayTargetGlobal = true;
                break;
              }
            if (!MayTargetGlobal)
              continue;
          }
          V = St->getValue().getVar();
        } else if (const auto *R = dyn_cast<RetInst>(I.get())) {
          if (F.get() != Main || !R->getValue().isVar())
            continue;
          V = R->getValue().getVar();
        } else {
          continue;
        }
        uint32_t Node = VFG::RootT;
        if (FS && G) {
          const InstSSA *Info = FS->instInfo(I.get());
          if (!Info)
            continue;
          uint32_t Version = ~0u;
          for (const ssa::TLUse &Use : Info->TLUses)
            if (Use.Var == V) {
              Version = Use.Version;
              break;
            }
          assert(Version != ~0u && "sink use without a recorded SSA use");
          Node = G->findNode(F.get(), {Space::TopLevel, V->getId()}, Version);
          if (Node == ~0u)
            continue;
        }
        Sinks.push_back({I.get(), V, Node});
      }
    }
  }
  return Sinks;
}

static ClientPlanInfo buildAddrLeakGuided(const ClientBuildInputs &In) {
  assert(In.PA && In.SSA && In.G &&
         "guided addrleak plan needs the full analysis pipeline");
  const VFG &G = *In.G;

  // Sources: every allocation's result pointer is born tainted.
  std::vector<uint32_t> Seeds;
  for (uint32_t Id = 2; Id != G.numNodes(); ++Id)
    if (G.origin(Id) == NodeOrigin::AllocPtr)
      Seeds.push_back(Id);

  // Taint reachability: the identical context-sensitive machinery as UUV
  // definedness, seeded from the sources instead of the F root.
  DefinednessOptions DefOpts;
  DefOpts.ContextK = In.ContextK;
  DefOpts.AddressTakenAware = true;
  DefOpts.Seeds = &Seeds;
  Definedness Taint(G, DefOpts);

  std::vector<VFG::CriticalUse> Sinks =
      addrLeakSinks(In.M, In.PA, In.SSA, In.G);

  PlannerOptions POpts;
  POpts.AddressTakenAware = true;
  POpts.OptI = false;
  POpts.Sinks = &Sinks;
  POpts.AllocResultsAreSources = true;
  POpts.ObjectsStartClean = true;
  POpts.VoidRetShadow = true;
  InstrumentationPlanner Planner(In.M, *In.SSA, G, Taint, POpts);

  ClientPlanInfo Info(ClientKind::AddrLeak, Planner.run());
  Info.SinkCandidates = Sinks.size();
  for (const VFG::CriticalUse &Use : Sinks)
    if (Taint.mayBeUndefined(Use.Node))
      ++Info.UnsafeSinks;
  Info.ChosenChecks = Info.Plan.countChecks();
  return Info;
}

static ClientPlanInfo buildAddrLeakFull(const ClientBuildInputs &In) {
  const Module &M = In.M;
  InstrumentationPlan Plan(M);

  std::vector<VFG::CriticalUse> Sinks =
      addrLeakSinks(M, In.PA, nullptr, nullptr);
  std::vector<uint8_t> IsSink;
  for (const VFG::CriticalUse &Use : Sinks) {
    if (Use.I->getId() >= IsSink.size())
      IsSink.resize(Use.I->getId() + 1, 0);
    IsSink[Use.I->getId()] = 1;
  }
  auto SinkAt = [&](const Instruction *I) {
    return I->getId() < IsSink.size() && IsSink[I->getId()];
  };

  auto SetVar = [](const Variable *Dst, ShadowVal Src) {
    ShadowOp Op;
    Op.K = ShadowOp::Kind::SetVar;
    Op.Dst = Dst;
    Op.Srcs = {Src};
    return Op;
  };
  auto Check = [](const Variable *V) {
    ShadowOp Op;
    Op.K = ShadowOp::Kind::Check;
    Op.Srcs = {ShadowVal::var(V)};
    return Op;
  };

  // Full taint propagation: the same statement-by-statement shadowing as
  // the UUV MSan baseline, with the client's sources (allocations taint
  // their result, their cells start clean) and sinks (escaping stores and
  // main's return, not pointer/branch operands).
  for (const auto &F : M.functions()) {
    for (size_t Idx = 0; Idx != F->params().size(); ++Idx) {
      ShadowOp Op;
      Op.K = ShadowOp::Kind::ParamIn;
      Op.Dst = F->params()[Idx];
      Op.Index = static_cast<uint32_t>(Idx);
      Plan.addEntry(F.get(), std::move(Op));
    }
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        switch (I->getKind()) {
        case Instruction::IKind::Copy:
          Plan.addAfter(I.get(),
                        SetVar(I->getDef(), ShadowVal::operand(
                                                cast<CopyInst>(I.get())
                                                    ->getSrc())));
          break;
        case Instruction::IKind::BinOp: {
          const auto *B = cast<BinOpInst>(I.get());
          ShadowOp Op;
          Op.K = ShadowOp::Kind::AndVar;
          Op.Dst = B->getDef();
          Op.Srcs = {ShadowVal::operand(B->getLHS()),
                     ShadowVal::operand(B->getRHS())};
          Plan.addAfter(I.get(), std::move(Op));
          break;
        }
        case Instruction::IKind::Alloc: {
          const auto *A = cast<AllocInst>(I.get());
          Plan.addAfter(I.get(),
                        SetVar(A->getDef(), ShadowVal::literal(false)));
          ShadowOp Op;
          Op.K = ShadowOp::Kind::SetMemObject;
          Op.Ptr = Operand::var(A->getDef());
          Op.Srcs = {ShadowVal::literal(true)};
          Plan.addAfter(I.get(), std::move(Op));
          break;
        }
        case Instruction::IKind::FieldAddr: {
          const auto *FA = cast<FieldAddrInst>(I.get());
          ShadowOp Op;
          Op.K = ShadowOp::Kind::AndVar;
          Op.Dst = FA->getDef();
          Op.Srcs = {ShadowVal::operand(FA->getBase()),
                     ShadowVal::operand(FA->getIndex())};
          Plan.addAfter(I.get(), std::move(Op));
          break;
        }
        case Instruction::IKind::Load: {
          const auto *L = cast<LoadInst>(I.get());
          ShadowOp Op;
          Op.K = ShadowOp::Kind::LoadMem;
          Op.Dst = L->getDef();
          Op.Ptr = L->getPtr();
          Plan.addAfter(I.get(), std::move(Op));
          break;
        }
        case Instruction::IKind::Store: {
          const auto *St = cast<StoreInst>(I.get());
          if (SinkAt(St))
            Plan.addBefore(I.get(), Check(St->getValue().getVar()));
          ShadowOp Op;
          Op.K = ShadowOp::Kind::SetMemCell;
          Op.Ptr = St->getPtr();
          Op.Srcs = {ShadowVal::operand(St->getValue())};
          Plan.addAfter(I.get(), std::move(Op));
          break;
        }
        case Instruction::IKind::Call: {
          const auto *C = cast<CallInst>(I.get());
          for (size_t Idx = 0; Idx != C->getArgs().size(); ++Idx) {
            ShadowOp Op;
            Op.K = ShadowOp::Kind::ArgOut;
            Op.Index = static_cast<uint32_t>(Idx);
            Op.Srcs = {ShadowVal::operand(C->getArgs()[Idx])};
            Plan.addBefore(I.get(), std::move(Op));
          }
          if (C->getDef()) {
            ShadowOp Op;
            Op.K = ShadowOp::Kind::RetIn;
            Op.Dst = C->getDef();
            Plan.addAfter(I.get(), std::move(Op));
          }
          break;
        }
        case Instruction::IKind::Ret: {
          const auto *R = cast<RetInst>(I.get());
          if (SinkAt(R))
            Plan.addBefore(I.get(), Check(R->getValue().getVar()));
          ShadowOp Op;
          Op.K = ShadowOp::Kind::RetOut;
          Op.Srcs = {R->getValue().isNone()
                         ? ShadowVal::literal(true)
                         : ShadowVal::operand(R->getValue())};
          Plan.addBefore(I.get(), std::move(Op));
          break;
        }
        case Instruction::IKind::CondBr:
        case Instruction::IKind::Goto:
          break;
        }
      }
    }
  }

  ClientPlanInfo Info(ClientKind::AddrLeak, std::move(Plan));
  Info.SinkCandidates = Sinks.size();
  Info.UnsafeSinks = Sinks.size();
  Info.ChosenChecks = Info.Plan.countChecks();
  return Info;
}

//===----------------------------------------------------------------------===//
// Bounds client
//===----------------------------------------------------------------------===//

/// All costs enter the placement knapsack scaled to integers.
static constexpr double CostScale = 100.0;
/// Coverage weight of a site inside a CFG cycle versus straight-line code.
static constexpr uint64_t LoopWeight = 8;

/// True if the CheckBounds after \p FA can never warn, by provenance: the
/// formed pointer either traps natively first, or its base is provably a
/// fresh object-base pointer (field 0) and the constant index stays inside
/// every object the base can name. Points-to sets are deliberately NOT
/// consulted: the loc domain has no representation for a pointer that is
/// already out of range, so "every pointee's field fits" would silently
/// miss geps whose base went out of bounds earlier.
static bool boundsStaticallySafe(const FieldAddrInst *FA) {
  if (!FA->getIndex().isConst())
    return false;
  int64_t C = FA->getIndex().getConst();
  if (C < 0)
    return true; // Negative indices trap natively before any after-op.
  const Operand &Base = FA->getBase();
  if (Base.isConst() || Base.isNone())
    return true; // Non-pointer bases trap natively.
  if (Base.isGlobal())
    return static_cast<uint64_t>(C) < Base.getGlobal()->getNumFields();

  const Variable *V = Base.getVar();
  if (V->isParam())
    return false; // The caller's value: provenance unknown.
  uint64_t MinFields = std::numeric_limits<uint64_t>::max();
  bool AnyPointerDef = false;
  for (const auto &BB : V->getParent()->blocks()) {
    for (const auto &I : BB->instructions()) {
      if (I->getDef() != V)
        continue;
      uint64_t Fields;
      if (const auto *A = dyn_cast<AllocInst>(I.get())) {
        Fields = A->getObject()->getNumFields();
      } else if (const auto *Cp = dyn_cast<CopyInst>(I.get())) {
        if (Cp->getSrc().isConst())
          continue; // Never yields a pointer; a gep on it traps.
        if (!Cp->getSrc().isGlobal())
          return false;
        Fields = Cp->getSrc().getGlobal()->getNumFields();
      } else {
        return false;
      }
      AnyPointerDef = true;
      MinFields = std::min(MinFields, Fields);
    }
  }
  if (!AnyPointerDef)
    return true; // V can only hold integers (or stay uninitialized).
  return static_cast<uint64_t>(C) < MinFields;
}

static ShadowOp checkBoundsOp(const Instruction *FA) {
  ShadowOp Op;
  Op.K = ShadowOp::Kind::CheckBounds;
  Op.Ptr = Operand::var(FA->getDef());
  return Op;
}

/// Marks, per block id, whether the block sits on a CFG cycle (member of a
/// successor-graph SCC of size > 1, or self-looping). Loop membership is
/// the coverage/cost weight of the budgeted placement.
static std::vector<uint8_t> blocksInCycle(const Function &F) {
  const size_t N = F.blocks().size();
  std::vector<std::vector<uint32_t>> Succs(N);
  std::vector<BasicBlock *> Tmp;
  for (const auto &BB : F.blocks()) {
    Tmp.clear();
    BB->getSuccessors(Tmp);
    for (BasicBlock *S : Tmp)
      Succs[BB->getId()].push_back(S->getId());
  }

  std::vector<uint8_t> InCycle(N, 0);
  std::vector<uint32_t> Index(N, 0), Low(N, 0), SccStack;
  std::vector<uint8_t> OnStack(N, 0);
  struct Frame {
    uint32_t Node;
    uint32_t NextEdge;
  };
  std::vector<Frame> Stack;
  uint32_t NextIndex = 1;
  for (uint32_t Root = 0; Root != N; ++Root) {
    if (Index[Root])
      continue;
    Index[Root] = Low[Root] = NextIndex++;
    OnStack[Root] = 1;
    SccStack.push_back(Root);
    Stack.push_back({Root, 0});
    while (!Stack.empty()) {
      Frame &Fr = Stack.back();
      uint32_t U = Fr.Node;
      if (Fr.NextEdge < Succs[U].size()) {
        uint32_t W = Succs[U][Fr.NextEdge++];
        if (!Index[W]) {
          Index[W] = Low[W] = NextIndex++;
          OnStack[W] = 1;
          SccStack.push_back(W);
          Stack.push_back({W, 0});
        } else if (OnStack[W]) {
          Low[U] = std::min(Low[U], Index[W]);
        }
        continue;
      }
      Stack.pop_back();
      if (!Stack.empty())
        Low[Stack.back().Node] = std::min(Low[Stack.back().Node], Low[U]);
      if (Low[U] == Index[U]) {
        std::vector<uint32_t> Comp;
        while (true) {
          uint32_t M = SccStack.back();
          SccStack.pop_back();
          OnStack[M] = 0;
          Comp.push_back(M);
          if (M == U)
            break;
        }
        bool Cyclic = Comp.size() > 1;
        if (!Cyclic)
          for (uint32_t S : Succs[U])
            if (S == U)
              Cyclic = true;
        if (Cyclic)
          for (uint32_t M : Comp)
            InCycle[M] = 1;
      }
    }
  }
  return InCycle;
}

/// Blocks reachable from the entry (unreachable sites cannot execute, so
/// the guided plan does not spend budget on them).
static std::vector<uint8_t> reachableBlocks(const Function &F) {
  std::vector<uint8_t> Seen(F.blocks().size(), 0);
  std::vector<BasicBlock *> Tmp;
  std::vector<uint32_t> Work{F.getEntry()->getId()};
  Seen[F.getEntry()->getId()] = 1;
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    Tmp.clear();
    F.blocks()[B]->getSuccessors(Tmp);
    for (BasicBlock *S : Tmp)
      if (!Seen[S->getId()]) {
        Seen[S->getId()] = 1;
        Work.push_back(S->getId());
      }
  }
  return Seen;
}

static ClientPlanInfo buildBoundsGuided(const ClientBuildInputs &In) {
  const Module &M = In.M;
  runtime::CostModel Model;
  ClientPlanInfo Info(ClientKind::Bounds, InstrumentationPlan(M));

  std::vector<const Instruction *> Sites;
  std::vector<PlacementCandidate> Cands;
  const uint64_t CheckCost =
      static_cast<uint64_t>(std::llround(Model.CheckBounds * CostScale));
  uint64_t ScaledBase = 0;
  for (const auto &F : M.functions()) {
    std::vector<uint8_t> Reach = reachableBlocks(*F);
    std::vector<uint8_t> InCycle = blocksInCycle(*F);
    for (const auto &BB : F->blocks()) {
      if (!Reach[BB->getId()])
        continue;
      uint64_t W = InCycle[BB->getId()] ? LoopWeight : 1;
      for (const auto &I : BB->instructions()) {
        ScaledBase +=
            static_cast<uint64_t>(std::llround(Model.baseCost(*I) *
                                               CostScale)) *
            W;
        const auto *FA = dyn_cast<FieldAddrInst>(I.get());
        if (!FA)
          continue;
        ++Info.SinkCandidates;
        if (boundsStaticallySafe(FA))
          continue;
        ++Info.UnsafeSinks;
        Sites.push_back(I.get());
        Cands.push_back({W, CheckCost * W});
      }
    }
  }

  uint64_t Capacity = std::numeric_limits<uint64_t>::max();
  if (In.BoundsBudgetPercent)
    Capacity = ScaledBase / 100 * In.BoundsBudgetPercent +
               ScaledBase % 100 * In.BoundsBudgetPercent / 100;
  PlacementResult R = solvePlacement(Cands, Capacity);
  for (size_t I = 0; I != Sites.size(); ++I)
    if (R.Chosen[I])
      Info.Plan.addAfter(Sites[I], checkBoundsOp(Sites[I]));

  Info.ChosenChecks = Info.Plan.countChecks();
  Info.PlacementCapacity = In.BoundsBudgetPercent ? Capacity : 0;
  Info.PlacementCost = R.TotalCost;
  Info.CapacityBound = R.CapacityBound;
  return Info;
}

static ClientPlanInfo buildBoundsFull(const ClientBuildInputs &In) {
  const Module &M = In.M;
  ClientPlanInfo Info(ClientKind::Bounds, InstrumentationPlan(M));
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        if (isa<FieldAddrInst>(I.get())) {
          ++Info.SinkCandidates;
          Info.Plan.addAfter(I.get(), checkBoundsOp(I.get()));
        }
  Info.UnsafeSinks = Info.SinkCandidates;
  Info.ChosenChecks = Info.Plan.countChecks();
  return Info;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

ClientPlanInfo core::buildClientPlan(ClientKind K,
                                     const ClientBuildInputs &In) {
  switch (K) {
  case ClientKind::AddrLeak:
    return buildAddrLeakGuided(In);
  case ClientKind::Bounds:
    return buildBoundsGuided(In);
  case ClientKind::UUV:
    break;
  }
  assert(false && "the UUV client is planned by runUsher itself");
  return ClientPlanInfo(ClientKind::UUV, InstrumentationPlan(In.M));
}

ClientPlanInfo core::buildClientFullPlan(ClientKind K,
                                         const ClientBuildInputs &In) {
  switch (K) {
  case ClientKind::AddrLeak:
    return buildAddrLeakFull(In);
  case ClientKind::Bounds:
    return buildBoundsFull(In);
  case ClientKind::UUV:
    break;
  }
  assert(false && "the UUV client is planned by runUsher itself");
  return ClientPlanInfo(ClientKind::UUV, InstrumentationPlan(In.M));
}
