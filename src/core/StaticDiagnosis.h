//===- core/StaticDiagnosis.h - Static UUV diagnosis ------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static UUV diagnosis engine: turns the Gamma reachability of
/// Section 3.3 from an instrumentation-pruning oracle into a user-facing
/// checker. Three pieces:
///
///  1. A *must-undef* pass over the VFG — an under-approximating
///     analysis layered on the same graph Gamma runs on. A node is
///     must-undef when, per its provenance-specific transfer rule, the
///     values it describes are undefined in every execution that computes
///     them (see DESIGN.md for the rules and the anchor hypothesis the
///     refinement knobs encode). Combined with Gamma this classifies each
///     critical operation as CLEAN (Gamma top), DEFINITE-UUV (must-undef
///     and witnessed), or MAY-UUV (everything between).
///
///  2. A *witness-path reconstructor*: a breadth-first search forward
///     from the F root over value-flow (user) edges, replaying exactly
///     the k-bounded call-site context transitions of the Definedness
///     pass (shared via core/ContextStack.h), yielding for every
///     non-CLEAN finding a shortest context-valid value-flow slice from
///     the undefined root to the critical operation, with matched
///     call/return labels.
///
///  3. Renderers: human-readable text and machine-readable JSON (schema
///     "usher-diagnosis-v1", SARIF-like: ruleId, severity, locations,
///     codeFlow), consumed by `usher-cli --diagnose` and validated by
///     tools/check_diag_json.py.
///
/// The differential harness in tests/DiagnosisDifferentialTest.cpp checks
/// the two directional guarantees against the shadow interpreter's
/// ground-truth oracle: soundness (no oracle warning is classified CLEAN)
/// and must-precision (every DEFINITE finding fires at runtime).
///
//===----------------------------------------------------------------------===//

#ifndef USHER_CORE_STATICDIAGNOSIS_H
#define USHER_CORE_STATICDIAGNOSIS_H

#include "core/Definedness.h"
#include "support/BitSet.h"
#include "vfg/VFG.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace usher {

class raw_ostream;

namespace analysis {
class CallGraph;
class PointerAnalysis;
} // namespace analysis

namespace ir {
class BasicBlock;
class Function;
} // namespace ir

namespace core {

/// Three-way classification of a critical operation.
enum class Verdict : uint8_t { Clean, May, Definite };

/// Lower-case name used in reports and JSON ("clean", "may", "definite").
const char *verdictName(Verdict V);

/// Options for the diagnosis engine.
struct DiagnosisOptions {
  /// Call-site sensitivity of the underlying reachability (paper: 1).
  unsigned ContextK = 1;

  /// Anchor knobs for the must-undef refinement. Each enables an
  /// any-dependency (instead of all-dependencies) transfer rule at one
  /// merge-node class, under the *coverage hypothesis* documented in
  /// DESIGN.md: workload-style programs exercise both directions of every
  /// branch, so a merge with an undefined arm eventually selects it. The
  /// defaults encode the diagnosis posture validated by the differential
  /// harness over the benchmark suite; the harness's random-program sweep
  /// instead runs the conservative posture (all three off, plus
  /// AssumeFunctionCoverage off), under which DEFINITE provably fires.
  bool AnchorPhis = true;          ///< SSA phis: any undef incoming arm.
  bool AnchorCallFlows = true;     ///< Call results / formal params.
  bool AnchorExactAllocChis = true;///< alloc_F chis over exact cells.

  /// The must-fire gate: DEFINITE additionally requires the critical op's
  /// block to post-dominate its function's entry (it executes whenever
  /// the function is entered) and the function itself to be entered. With
  /// this knob on, "entered" means reachable from main in the call graph
  /// (the function-coverage hypothesis); with it off, only main and
  /// functions called from a must-execute block of an entered function
  /// count, making DEFINITE a guarantee: it fires on every terminating
  /// run.
  bool AssumeFunctionCoverage = true;

  /// Witness search caps: explored (node, context) states overall, and
  /// distinct contexts remembered per node (matching the Definedness
  /// saturation cap keeps the search able to reach whatever Gamma
  /// reached).
  uint32_t MaxWitnessStates = 1u << 20;
  uint32_t MaxContextsPerNode = 64;
};

/// One step of a witness path. Steps run from the F root to the use node;
/// every step but the last carries the value-flow edge to its successor.
struct WitnessStep {
  uint32_t Node;                  ///< VFG node id.
  bool HasEdge = false;           ///< False only on the final step.
  vfg::EdgeKind Kind = vfg::EdgeKind::Direct;
  uint32_t CallSite = ~0u;        ///< Instruction id of the call, if labeled.
};

/// One non-CLEAN finding at a critical operation.
struct Finding {
  const ir::Instruction *I;       ///< The critical operation.
  const ir::Variable *Var;        ///< The top-level variable used there.
  uint32_t UseNode;               ///< VFG node of the used SSA version.
  Verdict V = Verdict::May;       ///< May or Definite (never Clean).
  /// Shortest context-valid value-flow slice F -> ... -> UseNode. Empty
  /// only if the witness search hit its state cap before reaching the
  /// node (the finding is then downgraded to May).
  std::vector<WitnessStep> Witness;
};

/// Aggregate result of one diagnosis run.
struct DiagnosisReport {
  /// Non-CLEAN findings, ordered by instruction id (deterministic).
  std::vector<Finding> Findings;
  /// Verdict per critical use, parallel to VFG::criticalUses().
  std::vector<Verdict> UseVerdicts;
  uint64_t NumClean = 0, NumMay = 0, NumDefinite = 0;
};

/// The diagnosis engine. Computes its own address-taken-aware Gamma so
/// verdicts are independent of whatever variant/degradation the caller's
/// pipeline ran with.
class StaticDiagnosis {
public:
  StaticDiagnosis(const analysis::PointerAnalysis &PA,
                  const analysis::CallGraph &CG, const vfg::VFG &G,
                  DiagnosisOptions Opts = DiagnosisOptions());

  const DiagnosisReport &report() const { return Report; }

  /// True if the must-undef pass proved every value \p Node describes
  /// undefined (on the paths that compute it; see DESIGN.md).
  bool mustBeUndefined(uint32_t Node) const { return MustUndef.test(Node); }

  /// True if \p Node may be undefined per the engine's own Gamma.
  bool mayBeUndefined(uint32_t Node) const {
    return Gamma->mayBeUndefined(Node);
  }

  /// Per-node verdicts for VFG::dumpDot annotation.
  std::vector<vfg::VFG::DotVerdict> dotVerdicts() const;

  /// Human-readable report, one block per finding with its value flow.
  void printText(raw_ostream &OS) const;

  /// Machine-readable report (schema "usher-diagnosis-v1").
  void printJson(raw_ostream &OS) const;

private:
  void computeMustUndef(const analysis::CallGraph &CG);
  void computeMustFire(const analysis::CallGraph &CG);
  bool mustFire(const ir::Instruction *I) const;
  void classify();
  void reconstructWitnesses();
  void describeNode(raw_ostream &OS, uint32_t Node) const;

  const analysis::PointerAnalysis &PA;
  const vfg::VFG &G;
  DiagnosisOptions Opts;
  std::unique_ptr<Definedness> Gamma;
  BitSet MustUndef;
  /// The must-fire gate: entered functions and, per function, the blocks
  /// on every entry-to-return path.
  std::unordered_set<const ir::Function *> Entered;
  std::unordered_map<const ir::Function *,
                     std::unordered_set<const ir::BasicBlock *>>
      MustExec;
  DiagnosisReport Report;
};

} // namespace core
} // namespace usher

#endif // USHER_CORE_STATICDIAGNOSIS_H
