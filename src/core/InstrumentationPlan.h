//===- core/InstrumentationPlan.h - Shadow instrumentation plan -*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output of instrumentation planning: which shadow operations execute
/// before/after each instruction, plus per-function entry operations. The
/// plan is pure data; the runtime interpreter executes it, which makes the
/// MSan-style full plan and every Usher variant directly comparable and
/// lets property tests assert warning-set equivalence.
///
/// The vocabulary is client-agnostic boolean taint algebra: shadow F is
/// "bad" (undefined for the UUV client, tainted for the address-leak
/// client), AndVar propagates badness through any operand, and Check warns
/// on F. Every SanitizerClient's plan is expressed in these same ops plus
/// CheckBounds, so one interpreter executes any client (see
/// core/SanitizerClient.h).
///
/// Shadow state at run time:
///  - one boolean shadow per top-level variable per activation frame
///    (initialized to F: locals are undefined on entry, like C);
///  - one boolean shadow per concrete memory cell;
///  - a bank of shadow transfer registers (sigma_g in the paper) used to
///    relay shadows across calls and returns.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_CORE_INSTRUMENTATIONPLAN_H
#define USHER_CORE_INSTRUMENTATIONPLAN_H

#include "ir/IR.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace usher {
namespace core {

/// A shadow r-value: either a literal definedness or the shadow of a
/// top-level variable. Constants and global addresses read as literal T.
struct ShadowVal {
  bool IsLiteral = true;
  bool Literal = true;
  const ir::Variable *Var = nullptr;

  static ShadowVal literal(bool Defined) {
    ShadowVal V;
    V.IsLiteral = true;
    V.Literal = Defined;
    return V;
  }
  static ShadowVal var(const ir::Variable *Var) {
    ShadowVal V;
    V.IsLiteral = false;
    V.Var = Var;
    return V;
  }
  /// The shadow of an operand: literal T for constants and global
  /// addresses, the variable's shadow otherwise.
  static ShadowVal operand(const ir::Operand &Op) {
    return Op.isVar() ? var(Op.getVar()) : literal(true);
  }

  /// Number of shadow-variable reads this r-value performs.
  unsigned reads() const { return IsLiteral ? 0 : 1; }
};

/// One shadow operation, attached before or after an instruction (or to a
/// function entry).
struct ShadowOp {
  enum class Kind : uint8_t {
    /// sigma(Dst) := Srcs[0]            (copy / strong update of a var).
    SetVar,
    /// sigma(Dst) := AND of all Srcs    (binary ops; Opt I's simplified
    /// must-flow-from closures use more than two sources).
    AndVar,
    /// sigma(cell *Ptr) := Srcs[0]      (shadow of a store).
    SetMemCell,
    /// sigma(every cell of *Ptr's object) := Srcs[0] (allocation sites).
    SetMemObject,
    /// sigma(Dst) := sigma(cell *Ptr)   (shadow of a load).
    LoadMem,
    /// sigma_g[Index] := Srcs[0]        (argument shadow, before a call).
    ArgOut,
    /// sigma(Dst) := sigma_g[Index]     (parameter shadow, function entry).
    ParamIn,
    /// sigma_g[ret] := Srcs[0]          (return shadow, before a ret).
    RetOut,
    /// sigma(Dst) := sigma_g[ret]       (result shadow, after a call).
    RetIn,
    /// warn if sigma(Srcs[0]) == F      (runtime check at a critical op).
    Check,
    /// warn if the pointer value of Ptr lies outside its object's field
    /// range (spatial-safety client; reads the concrete value, not a
    /// shadow, and never traps).
    CheckBounds
  };

  Kind K;
  const ir::Variable *Dst = nullptr;
  ir::Operand Ptr;                ///< For SetMemCell/SetMemObject/LoadMem.
  std::vector<ShadowVal> Srcs;
  uint32_t Index = 0;             ///< Argument position for ArgOut/ParamIn.

  /// Number of shadow reads this operation performs (the unit of the
  /// paper's Figure 11 "#Propagations"). Reading a memory cell's shadow or
  /// a transfer register counts as one read.
  unsigned reads() const {
    unsigned N = 0;
    for (const ShadowVal &S : Srcs)
      N += S.reads();
    if (K == Kind::LoadMem || K == Kind::ParamIn || K == Kind::RetIn ||
        K == Kind::Check)
      ++N;
    return N;
  }
};

/// The full instrumentation of a module.
class InstrumentationPlan {
public:
  explicit InstrumentationPlan(const ir::Module &M)
      : Before(M.instructionCount()), After(M.instructionCount()) {}

  const std::vector<ShadowOp> &before(const ir::Instruction *I) const {
    return Before[I->getId()];
  }
  const std::vector<ShadowOp> &after(const ir::Instruction *I) const {
    return After[I->getId()];
  }
  /// Shadow operations run when a frame for \p F is created (parameter
  /// shadow transfers).
  const std::vector<ShadowOp> &entry(const ir::Function *F) const {
    static const std::vector<ShadowOp> Empty;
    auto It = Entry.find(F);
    return It == Entry.end() ? Empty : It->second;
  }

  void addBefore(const ir::Instruction *I, ShadowOp Op) {
    Before[I->getId()].push_back(std::move(Op));
  }
  void addAfter(const ir::Instruction *I, ShadowOp Op) {
    After[I->getId()].push_back(std::move(Op));
  }
  void addEntry(const ir::Function *F, ShadowOp Op) {
    Entry[F].push_back(std::move(Op));
  }

  /// Static number of shadow-variable reads across the whole plan
  /// (Figure 11's #Propagations). Checks are not counted here.
  uint64_t countPropagationReads() const;

  /// Static number of runtime checks (Figure 11's #Checks).
  uint64_t countChecks() const;

  /// Static number of shadow operations other than checks.
  uint64_t countShadowOps() const;

  /// Applies \p Fn to every operation list in the plan (used by the
  /// shadow-code optimizer).
  void forEachList(const std::function<void(std::vector<ShadowOp> &)> &Fn) {
    for (auto &Ops : Before)
      Fn(Ops);
    for (auto &Ops : After)
      Fn(Ops);
    for (auto &[F, Ops] : Entry)
      Fn(Ops);
  }

private:
  uint64_t countIf(bool CountChecks, bool CountReads) const;

  std::vector<std::vector<ShadowOp>> Before, After;
  std::unordered_map<const ir::Function *, std::vector<ShadowOp>> Entry;
};

} // namespace core
} // namespace usher

#endif // USHER_CORE_INSTRUMENTATIONPLAN_H
