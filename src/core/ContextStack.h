//===- core/ContextStack.h - k-bounded call-site context --------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The k-bounded stack of unmatched call sites used by context-sensitive
/// value-flow reachability (Section 3.3). Shared by the Definedness
/// resolution, the static diagnosis witness search, and the witness-path
/// validity tests, so all three agree exactly on which interprocedural
/// flows are realizable.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_CORE_CONTEXTSTACK_H
#define USHER_CORE_CONTEXTSTACK_H

#include <cassert>
#include <cstdint>

namespace usher {
namespace core {

/// A k-bounded stack of unmatched call sites, encoded in 64 bits.
/// Layout: bits 48..49 count, bits 24..47 the site below the top,
/// bits 0..23 the top site. Site ids are instruction ids (< 2^24).
class ContextStack {
public:
  static ContextStack empty() { return ContextStack(0); }

  /// Rehydrates a stack from a raw() encoding. Only values previously
  /// produced by raw() are valid (the demand-driven query engine keys its
  /// visited-state memo by the raw encoding and round-trips through this).
  static ContextStack fromRaw(uint64_t Bits) { return ContextStack(Bits); }

  uint64_t raw() const { return Bits; }

  ContextStack pushed(uint32_t Site, unsigned K) const {
    assert(Site < (1u << 24) && "call-site id exceeds encoding width");
    unsigned Count = count();
    if (K == 0)
      return *this;
    if (Count == 0)
      return make(1, 0, Site);
    if (Count == 1 && K >= 2)
      return make(2, top(), Site);
    if (K == 1)
      return make(1, 0, Site);
    // Count == 2 (== K): drop the bottom entry.
    return make(2, top(), Site);
  }

  /// Attempts to match a return at \p Site. Returns false if the flow is
  /// unrealizable (a pending call from a different site is on top).
  bool popped(uint32_t Site, ContextStack &Out) const {
    unsigned Count = count();
    if (Count == 0) {
      // No pending call is remembered: the undefined value originated
      // inside the callee (or deeper than the k window); exiting through
      // any site is realizable.
      Out = *this;
      return true;
    }
    if (top() != Site)
      return false;
    if (Count == 1)
      Out = ContextStack(0);
    else
      Out = make(1, 0, below());
    return true;
  }

private:
  explicit ContextStack(uint64_t Bits) : Bits(Bits) {}
  static ContextStack make(unsigned Count, uint32_t Below, uint32_t Top) {
    return ContextStack((static_cast<uint64_t>(Count) << 48) |
                        (static_cast<uint64_t>(Below) << 24) | Top);
  }
  unsigned count() const { return static_cast<unsigned>(Bits >> 48); }
  uint32_t top() const { return static_cast<uint32_t>(Bits & 0xFFFFFF); }
  uint32_t below() const {
    return static_cast<uint32_t>((Bits >> 24) & 0xFFFFFF);
  }

  uint64_t Bits;
};

} // namespace core
} // namespace usher

#endif // USHER_CORE_CONTEXTSTACK_H
