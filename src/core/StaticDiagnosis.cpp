//===- core/StaticDiagnosis.cpp - Static UUV diagnosis ---------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/StaticDiagnosis.h"

#include "analysis/CallGraph.h"
#include "analysis/PointerAnalysis.h"
#include "core/ContextStack.h"
#include "ir/IR.h"
#include "support/RawStream.h"

#include <algorithm>
#include <unordered_set>

using namespace usher;
using namespace usher::core;
using namespace usher::ir;
using vfg::Edge;
using vfg::EdgeKind;
using vfg::NodeOrigin;
using vfg::VFG;

const char *core::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Clean:
    return "clean";
  case Verdict::May:
    return "may";
  case Verdict::Definite:
    return "definite";
  }
  return "?";
}

StaticDiagnosis::StaticDiagnosis(const analysis::PointerAnalysis &PA,
                                 const analysis::CallGraph &CG, const VFG &G,
                                 DiagnosisOptions Opts)
    : PA(PA), G(G), Opts(Opts) {
  // The engine's own may-analysis: always address-taken aware and
  // unbudgeted, so verdicts do not depend on the caller's variant or on
  // any degradation its pipeline went through.
  DefinednessOptions DefOpts;
  DefOpts.ContextK = Opts.ContextK;
  DefOpts.AddressTakenAware = true;
  Gamma = std::make_unique<Definedness>(G, DefOpts);

  computeMustUndef(CG);
  computeMustFire(CG);
  classify();
  reconstructWitnesses();

  for (Verdict V : Report.UseVerdicts) {
    switch (V) {
    case Verdict::Clean:
      ++Report.NumClean;
      break;
    case Verdict::May:
      ++Report.NumMay;
      break;
    case Verdict::Definite:
      ++Report.NumDefinite;
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Must-undef fixpoint
//===----------------------------------------------------------------------===//

void StaticDiagnosis::computeMustUndef(const analysis::CallGraph &CG) {
  const uint32_t N = G.numNodes();
  MustUndef.resize(N);
  MustUndef.set(VFG::RootF);

  // An alloc_F chi over an "exact cell" — one field of a non-array,
  // non-collapsed object with at most one live instance (stack storage in
  // a non-recursive function) — leaves that single cell undefined
  // unconditionally: the anchored F-arm rule.
  auto IsExactUninitCell = [&](uint32_t Id) {
    uint32_t Loc = G.node(Id).Key.Id;
    if (PA.isCollapsedLoc(Loc))
      return false;
    const MemObject *Obj = PA.location(Loc).Obj;
    if (Obj->isInitialized() || Obj->isArray() || !Obj->isStack())
      return false;
    const Instruction *Site = Obj->getAllocSite();
    const Function *AllocFn =
        Site ? Site->getParent()->getParent() : nullptr;
    return AllocFn && !CG.isRecursive(AllocFn);
  };

  // Per-provenance transfer rule: conjunctive defs taint from ANY
  // undefined dependency; merge nodes demand ALL dependencies undefined
  // unless an anchor knob admits the ANY rule for their class (the
  // anchor-coverage hypothesis; see DESIGN.md). Must-undef is restricted
  // to Gamma-bottom nodes, so DEFINITE is always a refinement of MAY.
  auto Eval = [&](uint32_t Id) {
    if (G.isRoot(Id) || !Gamma->mayBeUndefined(Id))
      return false;
    const std::vector<Edge> &Deps = G.deps(Id);
    if (Deps.empty())
      return false;
    auto AnyDep = [&] {
      for (const Edge &E : Deps)
        if (MustUndef.test(E.Node))
          return true;
      return false;
    };
    auto AllDeps = [&] {
      for (const Edge &E : Deps)
        if (!MustUndef.test(E.Node))
          return false;
      return true;
    };
    switch (G.origin(Id)) {
    case NodeOrigin::CopyDef:
    case NodeOrigin::BinOpDef:
    case NodeOrigin::FieldAddrDef:
    case NodeOrigin::EntryDef:
    case NodeOrigin::StoreChiStrong:
      return AnyDep();
    case NodeOrigin::AllocPtr:
      return false; // The pointer itself is always defined.
    case NodeOrigin::AllocChi:
      if (Opts.AnchorExactAllocChis && IsExactUninitCell(Id))
        return true;
      return AllDeps();
    case NodeOrigin::CloneAllocChi:
    case NodeOrigin::StoreChiSemi:
    case NodeOrigin::StoreChiWeak:
    case NodeOrigin::CallModChi:
    case NodeOrigin::LoadDef:
      return AllDeps();
    case NodeOrigin::CallResult:
    case NodeOrigin::FormalParam:
    case NodeOrigin::FormalIn:
      return Opts.AnchorCallFlows ? AnyDep() : AllDeps();
    case NodeOrigin::Phi:
      return Opts.AnchorPhis ? AnyDep() : AllDeps();
    case NodeOrigin::Root:
    case NodeOrigin::Unknown:
      return false;
    }
    return false;
  };

  // Least fixpoint by worklist: the initial sweep admits every node whose
  // rule already fires (unconditional anchors and direct RootF
  // dependents); each admission re-queues its users.
  std::vector<uint32_t> Work;
  for (uint32_t Id = 2; Id != N; ++Id) {
    if (Eval(Id)) {
      MustUndef.set(Id);
      Work.push_back(Id);
    }
  }
  while (!Work.empty()) {
    uint32_t S = Work.back();
    Work.pop_back();
    for (const Edge &E : G.users(S)) {
      if (MustUndef.test(E.Node))
        continue;
      if (Eval(E.Node)) {
        MustUndef.set(E.Node);
        Work.push_back(E.Node);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// The must-fire gate
//===----------------------------------------------------------------------===//

static void appendSuccessors(const BasicBlock *BB,
                             std::vector<const BasicBlock *> &Out) {
  if (BB->instructions().empty())
    return;
  const Instruction *T = BB->instructions().back().get();
  if (const auto *C = dyn_cast<CondBrInst>(T)) {
    Out.push_back(C->getTrueBB());
    Out.push_back(C->getFalseBB());
  } else if (const auto *Go = dyn_cast<GotoInst>(T)) {
    Out.push_back(Go->getTarget());
  }
}

/// The blocks of \p F that lie on every entry-to-return path: once F is
/// entered and runs to completion, each of them executes. Computed by
/// deletion — B qualifies iff it is reachable from entry and removing it
/// disconnects the entry from every return.
static std::unordered_set<const BasicBlock *>
mustExecBlocks(const ir::Function &F) {
  // One BFS from entry, optionally avoiding a block; reports whether a
  // return was reached and which blocks were visited.
  auto Search = [&](const BasicBlock *Avoid,
                    std::unordered_set<const BasicBlock *> *Visited) {
    std::vector<const BasicBlock *> Work;
    std::unordered_set<const BasicBlock *> Seen;
    const BasicBlock *Entry = F.getEntry();
    bool SawRet = false;
    if (Entry != Avoid) {
      Work.push_back(Entry);
      Seen.insert(Entry);
    }
    while (!Work.empty()) {
      const BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!BB->instructions().empty() &&
          isa<RetInst>(BB->instructions().back().get()))
        SawRet = true;
      std::vector<const BasicBlock *> Succs;
      appendSuccessors(BB, Succs);
      for (const BasicBlock *S : Succs)
        if (S != Avoid && Seen.insert(S).second)
          Work.push_back(S);
    }
    if (Visited)
      *Visited = std::move(Seen);
    return SawRet;
  };

  std::unordered_set<const BasicBlock *> Reachable;
  Search(nullptr, &Reachable);

  std::unordered_set<const BasicBlock *> Out;
  for (const auto &BB : F.blocks())
    if (Reachable.count(BB.get()) && !Search(BB.get(), nullptr))
      Out.insert(BB.get());
  return Out;
}

void StaticDiagnosis::computeMustFire(const analysis::CallGraph &CG) {
  // Find the program entry through any critical use's module; with no
  // critical uses there is nothing to gate.
  const std::vector<VFG::CriticalUse> &Uses = G.criticalUses();
  if (Uses.empty())
    return;
  const ir::Module *M = Uses.front().I->getParent()->getParent()->getParent();
  const Function *Main = M->findFunction("main");
  if (!Main)
    return;

  auto Enter = [&](const Function *F, std::vector<const Function *> &Work) {
    if (!Entered.insert(F).second)
      return;
    MustExec.emplace(F, mustExecBlocks(*F));
    Work.push_back(F);
  };

  std::vector<const Function *> Work;
  Enter(Main, Work);
  while (!Work.empty()) {
    const Function *F = Work.back();
    Work.pop_back();
    if (Opts.AssumeFunctionCoverage) {
      // Function-coverage hypothesis: every statically reachable callee
      // is entered at least once.
      for (const Function *Callee : CG.calleesOf(F))
        Enter(Callee, Work);
    } else {
      // Conservative: only callees of call sites that themselves must
      // execute count as entered.
      const auto &Exec = MustExec.find(F)->second;
      for (const ir::CallInst *Site : CG.callSitesIn(F))
        if (Exec.count(Site->getParent()))
          Enter(Site->getCallee(), Work);
    }
  }
}

bool StaticDiagnosis::mustFire(const ir::Instruction *I) const {
  const Function *F = I->getParent()->getParent();
  auto It = MustExec.find(F);
  return It != MustExec.end() && It->second.count(I->getParent());
}

//===----------------------------------------------------------------------===//
// Classification and witness reconstruction
//===----------------------------------------------------------------------===//

void StaticDiagnosis::classify() {
  const std::vector<VFG::CriticalUse> &Uses = G.criticalUses();
  Report.UseVerdicts.resize(Uses.size(), Verdict::Clean);
  for (size_t Idx = 0; Idx != Uses.size(); ++Idx) {
    const VFG::CriticalUse &Use = Uses[Idx];
    if (Gamma->isDefined(Use.Node))
      continue;
    Verdict V = MustUndef.test(Use.Node) && mustFire(Use.I)
                    ? Verdict::Definite
                    : Verdict::May;
    Report.UseVerdicts[Idx] = V;
    Report.Findings.push_back({Use.I, Use.Var, Use.Node, V, {}});
  }
  std::sort(Report.Findings.begin(), Report.Findings.end(),
            [](const Finding &A, const Finding &B) {
              return A.I->getId() < B.I->getId();
            });
}

void StaticDiagnosis::reconstructWitnesses() {
  if (Report.Findings.empty())
    return;
  const uint32_t N = G.numNodes();
  const unsigned K = Opts.ContextK;

  // One breadth-first search forward from the F root over value-flow
  // (user) edges, replaying the Definedness context transitions from
  // core/ContextStack.h. First arrival at a node is a shortest
  // context-valid slice to it; parents reconstruct the path. Contexts per
  // node and total states are capped; a finding whose node is not reached
  // within the caps keeps an empty witness and, if DEFINITE, is
  // downgraded to MAY (must-precision is only claimed for witnessed
  // findings).
  struct State {
    uint32_t Node;
    ContextStack Ctx;
    int32_t Parent; ///< Index of the predecessor state, -1 at the root.
    EdgeKind Kind;  ///< Edge taken from the parent.
    uint32_t CallSite;
  };
  std::vector<State> States;
  std::vector<std::unordered_set<uint64_t>> Seen(N);
  std::vector<int32_t> FirstArrival(N, -1);

  auto Enqueue = [&](uint32_t Node, ContextStack Ctx, int32_t Parent,
                     EdgeKind Kind, uint32_t CallSite) {
    if (States.size() >= Opts.MaxWitnessStates)
      return;
    if (Seen[Node].size() >= Opts.MaxContextsPerNode)
      return;
    if (!Seen[Node].insert(Ctx.raw()).second)
      return;
    if (FirstArrival[Node] < 0)
      FirstArrival[Node] = static_cast<int32_t>(States.size());
    States.push_back({Node, Ctx, Parent, Kind, CallSite});
  };

  Enqueue(VFG::RootF, ContextStack::empty(), -1, EdgeKind::Direct, ~0u);
  for (size_t Head = 0; Head != States.size(); ++Head) {
    // Copy: States may reallocate while expanding.
    const State S = States[Head];
    for (const Edge &E : G.users(S.Node)) {
      switch (E.Kind) {
      case EdgeKind::Direct:
        Enqueue(E.Node, S.Ctx, static_cast<int32_t>(Head), E.Kind,
                E.CallSite);
        break;
      case EdgeKind::Call:
        Enqueue(E.Node, K == 0 ? S.Ctx : S.Ctx.pushed(E.CallSite, K),
                static_cast<int32_t>(Head), E.Kind, E.CallSite);
        break;
      case EdgeKind::Ret: {
        if (K == 0) {
          Enqueue(E.Node, S.Ctx, static_cast<int32_t>(Head), E.Kind,
                  E.CallSite);
          break;
        }
        ContextStack Out = ContextStack::empty();
        if (S.Ctx.popped(E.CallSite, Out))
          Enqueue(E.Node, Out, static_cast<int32_t>(Head), E.Kind,
                  E.CallSite);
        break;
      }
      }
    }
  }

  for (Finding &F : Report.Findings) {
    int32_t At = FirstArrival[F.UseNode];
    if (At < 0) {
      if (F.V == Verdict::Definite)
        F.V = Verdict::May;
      continue;
    }
    // Walk the parents back to the root, then flip into F -> use order.
    std::vector<int32_t> Chain;
    for (int32_t Idx = At; Idx >= 0; Idx = States[Idx].Parent)
      Chain.push_back(Idx);
    std::reverse(Chain.begin(), Chain.end());
    F.Witness.clear();
    for (size_t Pos = 0; Pos != Chain.size(); ++Pos) {
      WitnessStep Step;
      Step.Node = States[Chain[Pos]].Node;
      if (Pos + 1 != Chain.size()) {
        const State &Next = States[Chain[Pos + 1]];
        Step.HasEdge = true;
        Step.Kind = Next.Kind;
        Step.CallSite = Next.CallSite;
      }
      F.Witness.push_back(Step);
    }
  }

  // Witness-failure downgrades must be reflected in UseVerdicts too.
  const std::vector<VFG::CriticalUse> &Uses = G.criticalUses();
  for (size_t Idx = 0; Idx != Uses.size(); ++Idx)
    if (Report.UseVerdicts[Idx] == Verdict::Definite &&
        FirstArrival[Uses[Idx].Node] < 0)
      Report.UseVerdicts[Idx] = Verdict::May;
}

std::vector<VFG::DotVerdict> StaticDiagnosis::dotVerdicts() const {
  std::vector<VFG::DotVerdict> Out(G.numNodes(), VFG::DotVerdict::Clean);
  for (uint32_t Id = 0; Id != G.numNodes(); ++Id) {
    if (MustUndef.test(Id))
      Out[Id] = VFG::DotVerdict::Definite;
    else if (Gamma->mayBeUndefined(Id))
      Out[Id] = VFG::DotVerdict::May;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

void StaticDiagnosis::describeNode(raw_ostream &OS, uint32_t Node) const {
  if (Node == VFG::RootT) {
    OS << "T";
    return;
  }
  if (Node == VFG::RootF) {
    OS << "F";
    return;
  }
  const VFG::NodeData &N = G.node(Node);
  OS << N.Fn->getName() << ':';
  if (N.Key.Sp == ssa::Space::TopLevel) {
    OS << N.Fn->variables()[N.Key.Id]->getName();
  } else {
    const analysis::PtLoc &L = PA.location(N.Key.Id);
    OS << L.Obj->getName();
    if (L.Obj->getNumFields() > 1)
      OS << '.' << L.Field;
  }
  OS << ".v" << N.Version;
  if (G.origin(Node) != NodeOrigin::Unknown)
    OS << " [" << nodeOriginName(G.origin(Node)) << ']';
}

static void printLoc(raw_ostream &OS, const Instruction *I) {
  SourceLoc L = I->getLoc();
  if (L.isValid())
    OS << L.Line << ':' << L.Col;
  else
    OS << "inst#" << I->getId();
}

void StaticDiagnosis::printText(raw_ostream &OS) const {
  OS << "static diagnosis: " << G.criticalUses().size()
     << " critical uses, " << Report.NumClean << " clean, " << Report.NumMay
     << " may, " << Report.NumDefinite << " definite\n";
  for (const Finding &F : Report.Findings) {
    OS << (F.V == Verdict::Definite ? "error" : "warning") << ": ";
    printLoc(OS, F.I);
    OS << ": " << verdictName(F.V) << " use of undefined value '"
       << F.Var->getName() << "' in "
       << F.I->getParent()->getParent()->getName() << ": ";
    F.I->print(OS);
    OS << '\n';
    if (F.Witness.empty()) {
      OS << "  (no witness: search capped)\n";
      continue;
    }
    OS << "  value flow:\n";
    for (const WitnessStep &Step : F.Witness) {
      OS << "    ";
      describeNode(OS, Step.Node);
      if (Step.HasEdge) {
        if (Step.Kind == EdgeKind::Call)
          OS << "  --call@" << Step.CallSite << "-->";
        else if (Step.Kind == EdgeKind::Ret)
          OS << "  --ret@" << Step.CallSite << "-->";
        else
          OS << "  -->";
      }
      OS << '\n';
    }
  }
}

static void jsonEscape(raw_ostream &OS, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        OS.printf("\\u%04x",
                  static_cast<unsigned>(static_cast<unsigned char>(C)));
      else
        OS << C;
    }
  }
}

void StaticDiagnosis::printJson(raw_ostream &OS) const {
  OS << "{\n  \"schema\": \"usher-diagnosis-v1\",\n";
  OS << "  \"summary\": {\"critical_uses\": " << G.criticalUses().size()
     << ", \"clean\": " << Report.NumClean << ", \"may\": " << Report.NumMay
     << ", \"definite\": " << Report.NumDefinite << "},\n";
  OS << "  \"findings\": [";
  bool FirstFinding = true;
  for (const Finding &F : Report.Findings) {
    if (!FirstFinding)
      OS << ',';
    FirstFinding = false;
    OS << "\n    {\n      \"ruleId\": \"usher-uuv\",\n";
    OS << "      \"client\": \"uuv\",\n";
    OS << "      \"severity\": \""
       << (F.V == Verdict::Definite ? "error" : "warning") << "\",\n";
    OS << "      \"verdict\": \"" << verdictName(F.V) << "\",\n";
    OS << "      \"function\": \"";
    jsonEscape(OS, F.I->getParent()->getParent()->getName());
    OS << "\",\n      \"instructionId\": " << F.I->getId() << ",\n";
    std::string Text;
    {
      raw_string_ostream TS(Text);
      F.I->print(TS);
    }
    OS << "      \"instruction\": \"";
    jsonEscape(OS, Text);
    OS << "\",\n";
    OS << "      \"location\": {\"line\": " << F.I->getLoc().Line
       << ", \"col\": " << F.I->getLoc().Col << "},\n";
    OS << "      \"var\": \"";
    jsonEscape(OS, F.Var->getName());
    OS << "\",\n      \"codeFlow\": [";
    bool FirstStep = true;
    for (const WitnessStep &Step : F.Witness) {
      if (!FirstStep)
        OS << ',';
      FirstStep = false;
      OS << "\n        {\"nodeId\": " << Step.Node << ", \"desc\": \"";
      std::string Desc;
      {
        raw_string_ostream DS(Desc);
        describeNode(DS, Step.Node);
      }
      jsonEscape(OS, Desc);
      OS << '"';
      if (Step.HasEdge) {
        OS << ", \"edgeToNext\": {\"kind\": \"";
        switch (Step.Kind) {
        case EdgeKind::Direct:
          OS << "direct";
          break;
        case EdgeKind::Call:
          OS << "call";
          break;
        case EdgeKind::Ret:
          OS << "ret";
          break;
        }
        OS << '"';
        if (Step.CallSite != ~0u)
          OS << ", \"callSite\": " << Step.CallSite;
        OS << '}';
      }
      OS << '}';
    }
    OS << (F.Witness.empty() ? "]" : "\n      ]") << "\n    }";
  }
  OS << (Report.Findings.empty() ? "]" : "\n  ]") << "\n}\n";
}
