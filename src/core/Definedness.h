//===- core/Definedness.h - Definedness resolution --------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Definedness resolution (Section 3.3): Gamma maps each VFG node to
/// "bottom" (may be undefined: reachable from the F root) or "top"
/// (provably defined). Reachability is context-sensitive: interprocedural
/// edges carry call-site labels and flows that enter a callee through one
/// call site may only exit through the same site, with a k-bounded stack
/// of unmatched calls (the paper configures 1-callsite sensitivity).
///
//===----------------------------------------------------------------------===//

#ifndef USHER_CORE_DEFINEDNESS_H
#define USHER_CORE_DEFINEDNESS_H

#include "support/BitSet.h"
#include "support/ThreadPool.h"
#include "vfg/VFG.h"

namespace usher {
class Budget;

namespace core {

/// Options for definedness resolution.
struct DefinednessOptions {
  /// Unmatched call sites remembered along a flow (0 = context-
  /// insensitive, 1 = the paper's configuration).
  unsigned ContextK = 1;
  /// When false, every memory-space node is pessimistically undefined:
  /// this models the UsherTL variant, which analyzes top-level variables
  /// only.
  bool AddressTakenAware = true;
  /// Reachability seed nodes. Null (the default) seeds from VFG::RootF —
  /// the UUV client's "undefined" root. A taint client (e.g. the
  /// address-leak detector) passes its source-node set instead; Gamma then
  /// answers "may this node carry a tainted value" with the identical
  /// context-sensitive machinery. Seeds are marked bottom themselves.
  const std::vector<uint32_t> *Seeds = nullptr;
};

/// The Gamma function of Section 3.3.
class Definedness {
public:
  /// Resolves definedness over \p G. \p Redirects optionally overrides
  /// the dependency edges of selected nodes (used by the Opt II redundant
  /// check elimination, which recomputes Gamma on a modified graph): a
  /// node present in \p Redirects uses the given dependency list instead
  /// of its VFG one.
  ///
  /// When \p B is armed (BudgetPhase::Definedness, or OptII for the
  /// redirect re-resolution), the reachability worklist checks it per pop.
  /// On exhaustion the resolution is *completed pessimistically* instead
  /// of abandoned: every node that is not structurally defined (i.e. whose
  /// effective dependencies are not all the T root) is marked bottom.
  /// Bottom over-approximates "may be undefined", so the result stays
  /// sound — it merely demands more instrumentation — and wasPessimized()
  /// reports the degradation.
  Definedness(const vfg::VFG &G, DefinednessOptions Opts,
              const std::unordered_map<uint32_t, std::vector<vfg::Edge>>
                  *Redirects = nullptr,
              Budget *B = nullptr);

  /// Wraps a bottom set computed elsewhere (the summary engine produces
  /// one warning-set-equivalent to this class's fixpoint). Downstream
  /// phases only consult Gamma through the query interface, so they
  /// cannot tell the engines apart.
  Definedness(BitSet PrecomputedBottom, bool WasPessimized)
      : Bottom(std::move(PrecomputedBottom)), Pessimized(WasPessimized) {}

  /// Distinct contexts explored per condensed component before the
  /// component saturates to the universal context. The summary engine
  /// mirrors this cap to detect (and delegate on) exactly the runs where
  /// saturation would make its exact answer diverge from the widened one.
  static constexpr size_t MaxContextsPerRep = 64;

  /// True if \p Node may carry an undefined value (Gamma = bottom).
  bool mayBeUndefined(uint32_t Node) const { return Bottom.test(Node); }

  /// True if \p Node is provably defined (Gamma = top).
  bool isDefined(uint32_t Node) const { return !Bottom.test(Node); }

  /// Number of bottom nodes (statistics).
  size_t numUndefinedNodes() const { return Bottom.count(); }

  /// True if the budget ran out and unresolved nodes were pessimistically
  /// marked undefined-capable.
  bool wasPessimized() const { return Pessimized; }

private:
  BitSet Bottom;
  bool Pessimized = false;
};

/// Computes the set of VFG nodes from which some needed runtime check is
/// reachable along dependency edges — the paper's Table 1 "%B" column
/// ("VFG nodes reaching at least one critical statement where a runtime
/// check is needed"). \p Gamma decides which checks are needed.
///
/// With a non-null \p Pool, each BFS level's expansion is partitioned
/// across workers into private frontier bitsets that are then unioned.
/// Set union is commutative and the level barrier is exact, so the
/// resulting set is byte-identical to the serial sweep.
BitSet computeCheckReaching(const vfg::VFG &G, const Definedness &Gamma,
                            ThreadPool *Pool = nullptr);

} // namespace core
} // namespace usher

#endif // USHER_CORE_DEFINEDNESS_H
