//===- core/Placement.cpp - Budgeted check placement -----------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/Placement.h"

#include "support/Budget.h"

#include <limits>

using namespace usher;
using namespace usher::core;

PlacementResult core::solvePlacement(
    const std::vector<PlacementCandidate> &Cands, uint64_t Capacity,
    Budget *B) {
  PlacementResult R;
  R.Chosen.assign(Cands.size(), 0);

  uint64_t AllValue = 0, AllCost = 0;
  for (const PlacementCandidate &C : Cands) {
    AllValue += C.Value;
    AllCost += C.Cost;
  }

  auto TakeAll = [&] {
    for (uint8_t &F : R.Chosen)
      F = 1;
    R.TotalValue = AllValue;
    R.TotalCost = AllCost;
  };

  // Everything fits: no optimization problem to solve. This is the
  // default (unlimited budget) path, so the full==guided differential
  // oracle sees complete coverage unless a budget was explicitly asked
  // for.
  if (AllCost <= Capacity) {
    TakeAll();
    return R;
  }
  R.CapacityBound = true;

  // DP over the value dimension: MinCost[v] = least total cost achieving
  // coverage exactly v. Values are small (loop weights), costs can be
  // large (scaled model cycles), so this orientation keeps the table
  // linear in total coverage rather than in capacity.
  constexpr uint64_t Inf = std::numeric_limits<uint64_t>::max();
  const size_t NumV = static_cast<size_t>(AllValue) + 1;
  std::vector<uint64_t> MinCost(NumV, Inf);
  MinCost[0] = 0;

  // Take[i] is a bitset over v: whether candidate i is taken on the
  // optimal path to coverage v.
  const size_t Words = (NumV + 63) / 64;
  std::vector<std::vector<uint64_t>> Take(Cands.size(),
                                          std::vector<uint64_t>(Words, 0));

  for (size_t I = 0; I != Cands.size(); ++I) {
    // One budget step per DP row; exhaustion falls back to instrumenting
    // everything (sound: more checks, never fewer warnings).
    if (B && !B->step()) {
      TakeAll();
      return R;
    }
    const uint64_t V = Cands[I].Value, C = Cands[I].Cost;
    for (size_t Cov = NumV; Cov-- > V;) {
      uint64_t From = MinCost[Cov - V];
      if (From == Inf || From + C >= MinCost[Cov])
        continue; // Strict <: equal-cost plans keep the earlier candidates.
      MinCost[Cov] = From + C;
      Take[I][Cov / 64] |= 1ull << (Cov % 64);
    }
  }

  // Highest coverage within capacity; MinCost already breaks value ties
  // toward the cheaper plan.
  size_t BestV = 0;
  for (size_t Cov = NumV; Cov-- > 0;) {
    if (MinCost[Cov] <= Capacity) {
      BestV = Cov;
      break;
    }
  }
  R.TotalValue = BestV;
  R.TotalCost = MinCost[BestV];

  // Walk the take-bits backwards to recover the chosen set.
  size_t Cov = BestV;
  for (size_t I = Cands.size(); I-- > 0;) {
    if (Cov && (Take[I][Cov / 64] >> (Cov % 64)) & 1) {
      R.Chosen[I] = 1;
      Cov -= Cands[I].Value;
    }
  }
  return R;
}
