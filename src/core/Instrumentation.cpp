//===- core/Instrumentation.cpp - Guided & full instrumentation ------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/Instrumentation.h"

#include "ir/IR.h"
#include "ssa/MemorySSA.h"
#include "support/Budget.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace usher;
using namespace usher::core;
using namespace usher::ir;
using ssa::ChiKind;
using ssa::DefDesc;
using ssa::FunctionSSA;
using ssa::InstSSA;
using ssa::MemDef;
using ssa::MemorySSA;
using ssa::Space;
using vfg::Edge;
using vfg::EdgeKind;
using vfg::UpdateKind;
using vfg::VFG;

//===----------------------------------------------------------------------===//
// Full (MSan-style) instrumentation
//===----------------------------------------------------------------------===//

InstrumentationPlan core::buildFullInstrumentation(const Module &M) {
  InstrumentationPlan Plan(M);

  auto SetVar = [](const Variable *Dst, ShadowVal Src) {
    ShadowOp Op;
    Op.K = ShadowOp::Kind::SetVar;
    Op.Dst = Dst;
    Op.Srcs = {Src};
    return Op;
  };
  auto Check = [](const Variable *V) {
    ShadowOp Op;
    Op.K = ShadowOp::Kind::Check;
    Op.Srcs = {ShadowVal::var(V)};
    return Op;
  };

  for (const auto &F : M.functions()) {
    for (size_t Idx = 0; Idx != F->params().size(); ++Idx) {
      ShadowOp Op;
      Op.K = ShadowOp::Kind::ParamIn;
      Op.Dst = F->params()[Idx];
      Op.Index = static_cast<uint32_t>(Idx);
      Plan.addEntry(F.get(), std::move(Op));
    }
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        switch (I->getKind()) {
        case Instruction::IKind::Copy:
          Plan.addAfter(I.get(),
                        SetVar(I->getDef(), ShadowVal::operand(
                                                cast<CopyInst>(I.get())
                                                    ->getSrc())));
          break;
        case Instruction::IKind::BinOp: {
          const auto *B = cast<BinOpInst>(I.get());
          ShadowOp Op;
          Op.K = ShadowOp::Kind::AndVar;
          Op.Dst = B->getDef();
          Op.Srcs = {ShadowVal::operand(B->getLHS()),
                     ShadowVal::operand(B->getRHS())};
          Plan.addAfter(I.get(), std::move(Op));
          break;
        }
        case Instruction::IKind::Alloc: {
          const auto *A = cast<AllocInst>(I.get());
          Plan.addAfter(I.get(), SetVar(A->getDef(), ShadowVal::literal(true)));
          ShadowOp Op;
          Op.K = ShadowOp::Kind::SetMemObject;
          Op.Ptr = Operand::var(A->getDef());
          Op.Srcs = {ShadowVal::literal(A->getObject()->isInitialized())};
          Plan.addAfter(I.get(), std::move(Op));
          break;
        }
        case Instruction::IKind::FieldAddr: {
          const auto *G = cast<FieldAddrInst>(I.get());
          ShadowOp Op;
          Op.K = ShadowOp::Kind::AndVar;
          Op.Dst = G->getDef();
          Op.Srcs = {ShadowVal::operand(G->getBase()),
                     ShadowVal::operand(G->getIndex())};
          Plan.addAfter(I.get(), std::move(Op));
          break;
        }
        case Instruction::IKind::Load: {
          const auto *L = cast<LoadInst>(I.get());
          if (L->getPtr().isVar())
            Plan.addBefore(I.get(), Check(L->getPtr().getVar()));
          ShadowOp Op;
          Op.K = ShadowOp::Kind::LoadMem;
          Op.Dst = L->getDef();
          Op.Ptr = L->getPtr();
          Plan.addAfter(I.get(), std::move(Op));
          break;
        }
        case Instruction::IKind::Store: {
          const auto *St = cast<StoreInst>(I.get());
          if (St->getPtr().isVar())
            Plan.addBefore(I.get(), Check(St->getPtr().getVar()));
          ShadowOp Op;
          Op.K = ShadowOp::Kind::SetMemCell;
          Op.Ptr = St->getPtr();
          Op.Srcs = {ShadowVal::operand(St->getValue())};
          Plan.addAfter(I.get(), std::move(Op));
          break;
        }
        case Instruction::IKind::Call: {
          const auto *C = cast<CallInst>(I.get());
          for (size_t Idx = 0; Idx != C->getArgs().size(); ++Idx) {
            ShadowOp Op;
            Op.K = ShadowOp::Kind::ArgOut;
            Op.Index = static_cast<uint32_t>(Idx);
            Op.Srcs = {ShadowVal::operand(C->getArgs()[Idx])};
            Plan.addBefore(I.get(), std::move(Op));
          }
          if (C->getDef()) {
            ShadowOp Op;
            Op.K = ShadowOp::Kind::RetIn;
            Op.Dst = C->getDef();
            Plan.addAfter(I.get(), std::move(Op));
          }
          break;
        }
        case Instruction::IKind::CondBr: {
          const auto *B = cast<CondBrInst>(I.get());
          if (B->getCond().isVar())
            Plan.addBefore(I.get(), Check(B->getCond().getVar()));
          break;
        }
        case Instruction::IKind::Ret: {
          const auto *R = cast<RetInst>(I.get());
          ShadowOp Op;
          Op.K = ShadowOp::Kind::RetOut;
          Op.Srcs = {R->getValue().isNone()
                         ? ShadowVal::literal(false)
                         : ShadowVal::operand(R->getValue())};
          Plan.addBefore(I.get(), std::move(Op));
          break;
        }
        case Instruction::IKind::Goto:
          break;
        }
      }
    }
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// Guided instrumentation planner
//===----------------------------------------------------------------------===//

class InstrumentationPlanner::Impl {
public:
  Impl(const Module &M, const MemorySSA &SSA, const VFG &G,
       const Definedness &Gamma, PlannerOptions Opts)
      : M(M), SSA(SSA), G(G), Gamma(Gamma), Opts(Opts), Plan(M) {
    for (const auto &F : M.functions()) {
      for (const auto &BB : F->blocks())
        for (const auto &I : BB->instructions()) {
          if (const auto *C = dyn_cast<CallInst>(I.get()))
            CallById[C->getId()] = C;
          if (const Variable *Def = I->getDef())
            ++DefCounts[Def];
        }
    }
  }

  InstrumentationPlan run();
  uint64_t numSimplifiedMFCs() const { return SimplifiedMFCs; }

private:
  void demand(uint32_t Node) {
    if (Node >= Demanded.size() || Demanded[Node])
      return;
    Demanded[Node] = 1;
    Work.push_back(Node);
  }

  void demandAllDeps(uint32_t Node) {
    for (const Edge &E : G.deps(Node))
      demand(E.Node);
  }

  void process(uint32_t Node);
  void processTopLevel(uint32_t Node, const VFG::NodeData &N,
                       const FunctionSSA &FS, const DefDesc &Desc);
  void processMemory(uint32_t Node, const VFG::NodeData &N,
                     const FunctionSSA &FS, const DefDesc &Desc);
  bool trySimplifyMFC(const VFG::NodeData &N, const FunctionSSA &FS,
                      const Instruction *I0);
  void emitRetOutsOf(const Function *Callee);
  void prepassTopLevelOnly();

  /// Node of a variable operand as used by instruction \p I.
  uint32_t useNode(const Function *Fn, const InstSSA &Info,
                   const Variable *V) const {
    for (const ssa::TLUse &Use : Info.TLUses)
      if (Use.Var == V)
        return G.nodeId(Fn, {Space::TopLevel, V->getId()}, Use.Version);
    assert(false && "no recorded use for operand variable");
    return VFG::RootT;
  }

  static ShadowOp setVar(const Variable *Dst, ShadowVal Src) {
    ShadowOp Op;
    Op.K = ShadowOp::Kind::SetVar;
    Op.Dst = Dst;
    Op.Srcs = {Src};
    return Op;
  }

  const Module &M;
  const MemorySSA &SSA;
  const VFG &G;
  const Definedness &Gamma;
  PlannerOptions Opts;
  InstrumentationPlan Plan;

  std::vector<uint8_t> Demanded;
  std::vector<uint32_t> Work;
  std::unordered_map<uint32_t, const CallInst *> CallById;
  std::unordered_map<const Variable *, unsigned> DefCounts;
  std::unordered_set<const Instruction *> RetOutEmitted;
  std::unordered_set<const Function *> RetOutsEmittedFor;
  std::unordered_set<const Instruction *> MemWriteEmitted;
  uint64_t SimplifiedMFCs = 0;
};

void InstrumentationPlanner::Impl::prepassTopLevelOnly() {
  // The top-level-only variant cannot reason about which store feeds which
  // load, so every store and allocation shadows memory unconditionally.
  for (const auto &F : M.functions()) {
    const FunctionSSA &FS = SSA.get(F.get());
    for (const auto &BB : F->blocks()) {
      if (!FS.getCFG().isReachable(BB->getId()))
        continue;
      for (const auto &I : BB->instructions()) {
        if (const auto *St = dyn_cast<StoreInst>(I.get())) {
          ShadowOp Op;
          Op.K = ShadowOp::Kind::SetMemCell;
          Op.Ptr = St->getPtr();
          Op.Srcs = {ShadowVal::operand(St->getValue())};
          Plan.addAfter(I.get(), std::move(Op));
          if (St->getValue().isVar())
            demand(useNode(F.get(), *FS.instInfo(I.get()),
                           St->getValue().getVar()));
        } else if (const auto *A = dyn_cast<AllocInst>(I.get())) {
          ShadowOp Op;
          Op.K = ShadowOp::Kind::SetMemObject;
          Op.Ptr = Operand::var(A->getDef());
          Op.Srcs = {ShadowVal::literal(A->getObject()->isInitialized())};
          Plan.addAfter(I.get(), std::move(Op));
        }
      }
    }
  }
}

void InstrumentationPlanner::Impl::emitRetOutsOf(const Function *Callee) {
  if (!RetOutsEmittedFor.insert(Callee).second)
    return;
  const FunctionSSA &FS = SSA.get(Callee);
  for (const auto &BB : Callee->blocks()) {
    if (!FS.getCFG().isReachable(BB->getId()))
      continue;
    for (const auto &I : BB->instructions()) {
      const auto *R = dyn_cast<RetInst>(I.get());
      if (!R || !RetOutEmitted.insert(R).second)
        continue;
      ShadowOp Op;
      Op.K = ShadowOp::Kind::RetOut;
      Op.Srcs = {R->getValue().isNone()
                     ? ShadowVal::literal(Opts.VoidRetShadow)
                     : ShadowVal::operand(R->getValue())};
      Plan.addBefore(R, std::move(Op));
    }
  }
}

bool InstrumentationPlanner::Impl::trySimplifyMFC(const VFG::NodeData &N,
                                                  const FunctionSSA &FS,
                                                  const Instruction *I0) {
  // Each simplification attempt is one Opt I budget step. Declining to
  // simplify is always sound: the caller falls through to the normal
  // Figure 7 shadow-propagation rule for this closure.
  if (Opts.B && !Opts.B->step())
    return false;
  // Expand the must-flow-from closure (Definition 2) of I0's def. To keep
  // runtime shadow slots (which are per-variable, not per-version) valid
  // at I0, every variable read beyond depth 0 must have exactly one static
  // def, which then necessarily dominates I0 through the chain.
  struct SourceInfo {
    const Variable *Var;
    uint32_t Node;
  };
  std::vector<SourceInfo> Sources;
  unsigned Interior = 0;
  constexpr unsigned MaxDepth = 8, MaxSources = 16;

  std::function<bool(const Instruction *, unsigned)> Expand =
      [&](const Instruction *I, unsigned Depth) -> bool {
    std::vector<Operand> Ops;
    I->collectOperands(Ops);
    const InstSSA *Info = FS.instInfo(I);
    if (!Info)
      return false;
    for (const Operand &Op : Ops) {
      if (Op.isConst() || Op.isGlobal())
        continue; // Contributes a defined value (T).
      const Variable *V = Op.getVar();
      if (Depth > 0 && DefCounts[V] != 1)
        return false; // sigma(V) at I0 may hold a different version.
      uint32_t UseN = useNode(N.Fn, *Info, V);
      const VFG::NodeData &UseData = G.node(UseN);
      const DefDesc &Desc = FS.defOf(UseData.Key, UseData.Version);
      bool ChainStep = Desc.K == DefDesc::Kind::Inst &&
                       (isa<CopyInst>(Desc.I) || isa<BinOpInst>(Desc.I)) &&
                       Depth + 1 < MaxDepth &&
                       Sources.size() < MaxSources;
      if (ChainStep) {
        ++Interior;
        if (!Expand(Desc.I, Depth + 1))
          return false;
      } else {
        if (Sources.size() >= MaxSources)
          return false;
        Sources.push_back({V, UseN});
      }
    }
    return true;
  };

  if (!Expand(I0, 0))
    return false;
  if (Interior == 0)
    return false; // Nothing bypassed; the normal rule is as good.

  ShadowOp Op;
  Op.Dst = I0->getDef();
  std::vector<ShadowVal> Srcs;
  for (const SourceInfo &S : Sources) {
    if (Gamma.isDefined(S.Node))
      continue; // Defined sources contribute T to the conjunction.
    Srcs.push_back(ShadowVal::var(S.Var));
    demand(S.Node);
  }
  if (Srcs.empty()) {
    Op.K = ShadowOp::Kind::SetVar;
    Op.Srcs = {ShadowVal::literal(true)};
  } else {
    Op.K = ShadowOp::Kind::AndVar;
    Op.Srcs = std::move(Srcs);
  }
  Plan.addAfter(I0, std::move(Op));
  ++SimplifiedMFCs;
  return true;
}

void InstrumentationPlanner::Impl::processTopLevel(uint32_t Node,
                                                   const VFG::NodeData &N,
                                                   const FunctionSSA &FS,
                                                   const DefDesc &Desc) {
  const bool Defined = Gamma.isDefined(Node);

  if (Desc.K == DefDesc::Kind::Entry) {
    const Variable *V = N.Fn->variables()[N.Key.Id].get();
    if (!V->isParam())
      return; // Frame shadows start at F: undefined-on-entry needs no code.
    uint32_t ParamIdx = ~0u;
    for (size_t Idx = 0; Idx != N.Fn->params().size(); ++Idx)
      if (N.Fn->params()[Idx] == V)
        ParamIdx = static_cast<uint32_t>(Idx);
    assert(ParamIdx != ~0u && "parameter not found in its function");
    if (Defined) {
      // [T-Para]: the parameter is provably defined on every call path.
      Plan.addEntry(N.Fn, setVar(V, ShadowVal::literal(true)));
      return;
    }
    // [B-Para]: relay the actual's shadow through the transfer register.
    ShadowOp In;
    In.K = ShadowOp::Kind::ParamIn;
    In.Dst = V;
    In.Index = ParamIdx;
    Plan.addEntry(N.Fn, std::move(In));
    for (const Edge &E : G.deps(Node)) {
      assert(E.Kind == EdgeKind::Call && "parameter with non-call dep");
      const CallInst *Call = CallById.at(E.CallSite);
      ShadowOp Out;
      Out.K = ShadowOp::Kind::ArgOut;
      Out.Index = ParamIdx;
      Out.Srcs = {ShadowVal::operand(Call->getArgs()[ParamIdx])};
      Plan.addBefore(Call, std::move(Out));
      demand(E.Node);
    }
    return;
  }

  if (Desc.K == DefDesc::Kind::Phi) {
    // [Phi]: shadows flow through the shared runtime slot; collect only.
    demandAllDeps(Node);
    return;
  }

  const Instruction *I = Desc.I;
  [[maybe_unused]] const InstSSA *CheckInfo = FS.instInfo(I);
  assert(CheckInfo && "definition in unreachable code was demanded");

  if (Defined) {
    // [T-Assign]: one strong update covers every defining statement kind.
    Plan.addAfter(I, setVar(I->getDef(), ShadowVal::literal(true)));
    return;
  }

  switch (I->getKind()) {
  case Instruction::IKind::Copy: {
    if (Opts.OptI && trySimplifyMFC(N, FS, I))
      return;
    const auto *C = cast<CopyInst>(I);
    Plan.addAfter(I, setVar(I->getDef(), ShadowVal::operand(C->getSrc())));
    demandAllDeps(Node);
    break;
  }
  case Instruction::IKind::BinOp: {
    if (Opts.OptI && trySimplifyMFC(N, FS, I))
      return;
    const auto *B = cast<BinOpInst>(I);
    ShadowOp Op;
    Op.K = ShadowOp::Kind::AndVar;
    Op.Dst = I->getDef();
    Op.Srcs = {ShadowVal::operand(B->getLHS()),
               ShadowVal::operand(B->getRHS())};
    Plan.addAfter(I, std::move(Op));
    demandAllDeps(Node);
    break;
  }
  case Instruction::IKind::FieldAddr: {
    const auto *FA = cast<FieldAddrInst>(I);
    ShadowOp Op;
    Op.K = ShadowOp::Kind::AndVar;
    Op.Dst = I->getDef();
    Op.Srcs = {ShadowVal::operand(FA->getBase()),
               ShadowVal::operand(FA->getIndex())};
    Plan.addAfter(I, std::move(Op));
    demandAllDeps(Node);
    break;
  }
  case Instruction::IKind::Alloc:
    if (Opts.AllocResultsAreSources) {
      // A taint client's source: the fresh address is born tainted.
      Plan.addAfter(I, setVar(I->getDef(), ShadowVal::literal(false)));
      break;
    }
    assert(false && "allocation results are always defined");
    break;
  case Instruction::IKind::Load: {
    // [B-Load]: read the cell's shadow; all indirect uses are tracked.
    const auto *L = cast<LoadInst>(I);
    ShadowOp Op;
    Op.K = ShadowOp::Kind::LoadMem;
    Op.Dst = I->getDef();
    Op.Ptr = L->getPtr();
    Plan.addAfter(I, std::move(Op));
    demandAllDeps(Node);
    break;
  }
  case Instruction::IKind::Call: {
    // [B-Ret]: relay the callee's return shadow through the transfer
    // register.
    ShadowOp Op;
    Op.K = ShadowOp::Kind::RetIn;
    Op.Dst = I->getDef();
    Plan.addAfter(I, std::move(Op));
    emitRetOutsOf(cast<CallInst>(I)->getCallee());
    demandAllDeps(Node);
    break;
  }
  default:
    assert(false && "instruction kind cannot define a top-level variable");
  }
}

void InstrumentationPlanner::Impl::processMemory(uint32_t Node,
                                                 const VFG::NodeData &N,
                                                 const FunctionSSA &FS,
                                                 const DefDesc &Desc) {
  if (!Opts.AddressTakenAware)
    return; // The prepass shadows memory unconditionally.

  const bool Defined = Gamma.isDefined(Node);

  if (Desc.K == DefDesc::Kind::Entry) {
    // [VPara]: virtual input parameter. Cell shadows persist across the
    // call; demand the producers at every call site. For main, the
    // runtime pre-initializes global shadows, so there is nothing to do.
    demandAllDeps(Node);
    return;
  }
  if (Desc.K == DefDesc::Kind::Phi) {
    demandAllDeps(Node);
    return;
  }

  const Instruction *I = Desc.I;
  const InstSSA *Info = FS.instInfo(I);
  assert(Info && "chi in unreachable code was demanded");
  const MemDef *Chi = nullptr;
  for (const MemDef &C : Info->Chis)
    if (C.Loc == N.Key.Id && C.NewVersion == N.Version)
      Chi = &C;
  assert(Chi && "memory def without a matching chi");

  auto DemandMemoryDeps = [&] {
    for (const Edge &E : G.deps(Node))
      if (!G.isRoot(E.Node) && G.node(E.Node).Key.Sp == Space::Memory)
        demand(E.Node);
  };

  switch (Chi->Kind) {
  case ChiKind::Alloc:
  case ChiKind::CloneAlloc: {
    // [T-Alloc] / [B-Alloc]: initialize the fresh object's shadow to its
    // actual definedness (correct in both Gamma cases); possibly-
    // undefined older instances keep being tracked.
    Variable *Ptr = I->getDef();
    if (!Ptr)
      return; // Discarded wrapper result: the clone is unreachable.
    if (MemWriteEmitted.insert(I).second) {
      const MemObject *Obj = Chi->Kind == ChiKind::Alloc
                                 ? cast<AllocInst>(I)->getObject()
                                 : nullptr;
      bool Init;
      if (Opts.ObjectsStartClean) {
        Init = true;
      } else if (Obj) {
        Init = Obj->isInitialized();
      } else {
        // All clones of a wrapper share the initialization flag (the
        // wrapper check enforces it).
        const auto &Deps = G.deps(Node);
        Init = false;
        for (const Edge &E : Deps)
          if (E.Node == VFG::RootT)
            Init = true;
      }
      ShadowOp Op;
      Op.K = ShadowOp::Kind::SetMemObject;
      Op.Ptr = Operand::var(Ptr);
      Op.Srcs = {ShadowVal::literal(Init)};
      Plan.addAfter(I, std::move(Op));
    }
    if (!Defined)
      DemandMemoryDeps();
    break;
  }
  case ChiKind::Store: {
    const auto *St = cast<StoreInst>(I);
    UpdateKind Kind = G.storeUpdateKind(St, N.Key.Id);
    if (Defined) {
      if (Kind == UpdateKind::Strong || Kind == UpdateKind::SemiStrong) {
        // [T-Store SU]: strongly update the unique cell's shadow. We
        // deviate from the paper by also applying this to semi-strong
        // updates: our semi-strong condition proves the store writes the
        // freshest instance's single cell, and without the update that
        // cell could keep a stale F shadow written by the same abstract
        // object's allocation-site instrumentation (a false positive the
        // property tests caught). The bypassed older version is still
        // tracked, as [T-Store SemiSU] requires.
        if (MemWriteEmitted.insert(I).second) {
          ShadowOp Op;
          Op.K = ShadowOp::Kind::SetMemCell;
          Op.Ptr = St->getPtr();
          Op.Srcs = {ShadowVal::literal(true)};
          Plan.addAfter(I, std::move(Op));
        }
      }
      if (Kind != UpdateKind::Strong) {
        // [T-Store WU/SemiSU]: keep tracking the surviving older values.
        DemandMemoryDeps();
      }
      return;
    }
    // [B-Store SU/WU/SemiSU]: propagate the stored value's shadow and keep
    // tracking whatever the update flavor says survives.
    if (MemWriteEmitted.insert(I).second) {
      ShadowOp Op;
      Op.K = ShadowOp::Kind::SetMemCell;
      Op.Ptr = St->getPtr();
      Op.Srcs = {ShadowVal::operand(St->getValue())};
      Plan.addAfter(I, std::move(Op));
    }
    if (St->getValue().isVar())
      demand(useNode(N.Fn, *Info, St->getValue().getVar()));
    DemandMemoryDeps();
    break;
  }
  case ChiKind::CallMod:
    // [VRet]: the callee's virtual output parameter produces this value;
    // demand it at the callee's returns (both Gamma cases).
    demandAllDeps(Node);
    break;
  }
}

void InstrumentationPlanner::Impl::process(uint32_t Node) {
  if (G.isRoot(Node))
    return;
  const VFG::NodeData &N = G.node(Node);
  const FunctionSSA &FS = SSA.get(N.Fn);
  const DefDesc &Desc = FS.defOf(N.Key, N.Version);
  if (N.Key.Sp == Space::TopLevel)
    processTopLevel(Node, N, FS, Desc);
  else
    processMemory(Node, N, FS, Desc);
}

InstrumentationPlan InstrumentationPlanner::Impl::run() {
  Demanded.assign(G.numNodes(), 0);

  if (!Opts.AddressTakenAware)
    prepassTopLevelOnly();

  // Seed from the runtime checks that are needed ([T-Check]/[B-Check]).
  // A SanitizerClient substitutes its own sink list for the UUV critical
  // uses; the demand rules below are client-agnostic.
  const std::vector<VFG::CriticalUse> &Sinks =
      Opts.Sinks ? *Opts.Sinks : G.criticalUses();
  for (const VFG::CriticalUse &Use : Sinks) {
    if (Gamma.isDefined(Use.Node))
      continue;
    ShadowOp Op;
    Op.K = ShadowOp::Kind::Check;
    Op.Srcs = {ShadowVal::var(Use.Var)};
    Plan.addBefore(Use.I, std::move(Op));
    demand(Use.Node);
  }

  while (!Work.empty()) {
    uint32_t Node = Work.back();
    Work.pop_back();
    process(Node);
  }
  return std::move(Plan);
}

//===----------------------------------------------------------------------===//
// InstrumentationPlanner facade
//===----------------------------------------------------------------------===//

InstrumentationPlanner::InstrumentationPlanner(const Module &M,
                                               const MemorySSA &SSA,
                                               const VFG &G,
                                               const Definedness &Gamma,
                                               PlannerOptions Opts)
    : PImpl(std::make_unique<Impl>(M, SSA, G, Gamma, Opts)) {}

InstrumentationPlanner::~InstrumentationPlanner() = default;

InstrumentationPlan InstrumentationPlanner::run() { return PImpl->run(); }

uint64_t InstrumentationPlanner::numSimplifiedMFCs() const {
  return PImpl->numSimplifiedMFCs();
}
