//===- core/Usher.h - The Usher driver --------------------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Top-level entry point: runs the five-phase pipeline of Figure 3
/// (pointer analysis, memory SSA construction, VFG building, definedness
/// resolution, guided instrumentation with VFG-based optimizations) for a
/// chosen tool variant, and collects the statistics behind Table 1.
///
/// The variants mirror the paper's evaluation:
///  - MSanFull:   full instrumentation (the MSan baseline);
///  - UsherTL:    top-level variables only, no Opt I / Opt II;
///  - UsherTLAT:  top-level + address-taken variables;
///  - UsherOptI:  UsherTLAT plus value-flow simplification;
///  - UsherFull:  UsherOptI plus redundant check elimination.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_CORE_USHER_H
#define USHER_CORE_USHER_H

#include "analysis/CallGraph.h"
#include "analysis/DemandVFA.h"
#include "analysis/ModRef.h"
#include "analysis/PointerAnalysis.h"
#include "analysis/SummaryEngine.h"
#include "core/Definedness.h"
#include "core/Instrumentation.h"
#include "core/InstrumentationPlan.h"
#include "core/SanitizerClient.h"
#include "ssa/MemorySSA.h"
#include "support/Budget.h"
#include "vfg/VFG.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace usher {
namespace core {

/// The tool variants compared in the paper's evaluation. The enumerator
/// order doubles as the degradation ladder: each variant is sound with
/// strictly less static analysis than its successor, so falling back on
/// budget exhaustion is a numeric min towards MSanFull.
enum class ToolVariant { MSanFull, UsherTL, UsherTLAT, UsherOptI, UsherFull };

/// Returns the display name used in tables ("MSAN", "USHER-TL", ...).
const char *toolVariantName(ToolVariant V);

/// Which interprocedural definedness engine resolves Gamma.
///  - Global: the whole-program (node, context) fixpoint of Section 3.3
///    (core::Definedness), the reference engine.
///  - Summary: the bottom-up per-function summary engine
///    (analysis::SummaryEngine) — warning-set equivalent, cacheable and
///    SCC-parallel; configurations it cannot answer exactly (k >= 2,
///    context saturation) silently delegate back to Global.
enum class EngineKind { Global, Summary };

/// Returns "global" / "summary".
const char *engineKindName(EngineKind E);

/// Pipeline configuration.
struct UsherOptions {
  ToolVariant Variant = ToolVariant::UsherFull;
  /// Call-site sensitivity of definedness resolution (paper: 1).
  unsigned ContextK = 1;
  analysis::PtaOptions Pta;
  vfg::VFGOptions Vfg;
  /// Per-phase resource budgets; all-zero (the default) means unlimited
  /// and keeps the pipeline on the zero-cost happy path.
  BudgetLimits Limits;
  /// Deterministic exhaustion injection for tests and --inject-fault.
  std::optional<FaultPlan> Fault;
  /// Worker threads for the parallel phases (memory-SSA construction,
  /// check-reachability, Opt II). 1 (the default) runs everything inline;
  /// 0 resolves to the hardware concurrency. Every value produces
  /// byte-identical results — parallel phases merge by ordered reduction.
  unsigned Jobs = 1;
  /// Definedness engine selection (--engine=global|summary).
  EngineKind Engine = EngineKind::Global;
  /// Optional content-hash summary cache for EngineKind::Summary. Owned
  /// by the caller (usher-serve shares one across requests and plugs its
  /// SnapshotStore in as the persistence layer). Null computes fresh.
  analysis::SummaryCache *SummaryCache = nullptr;
  /// Additional sanitizer clients to plan over the same VFG, in request
  /// order (--client=). ClientKind::UUV entries are ignored here: the UUV
  /// plan is UsherResult::Plan itself. Empty (the default) runs the
  /// pipeline exactly as before the multi-client framework.
  std::vector<ClientKind> Clients;
  /// Bounds client: slowdown capacity for budgeted check placement, as a
  /// percentage of modeled native cost (0 = unlimited).
  unsigned BoundsBudgetPercent = 0;
};

/// One rung descent of the degradation ladder.
struct DegradationStep {
  BudgetPhase Phase;  ///< The phase whose budget ran out.
  ExhaustKind Kind;   ///< Why it ran out.
  std::string Action; ///< What the driver did about it.
};

/// How far the driver had to climb down from the requested variant.
struct DegradationReport {
  ToolVariant Requested = ToolVariant::UsherFull;
  /// The variant whose guarantees the produced plan actually delivers.
  ToolVariant Rung = ToolVariant::UsherFull;
  bool Degraded = false;
  std::vector<DegradationStep> Steps;

  /// One-line human-readable summary, e.g.
  /// "degraded USHER -> USHER-OPTI: opt2 hit step budget (Opt II
  ///  redirects discarded)". Empty when not degraded.
  std::string summary() const;
};

/// Table 1 statistics plus phase timings.
struct UsherStatistics {
  double AnalysisSeconds = 0;
  uint64_t PeakRSSBytes = 0;
  uint64_t NumInstructions = 0;
  uint64_t NumTopLevelVars = 0;
  uint64_t NumStackObjects = 0;
  uint64_t NumHeapObjects = 0;
  uint64_t NumGlobalObjects = 0;
  /// %F: percentage of address-taken objects uninitialized on allocation.
  double PercentUninitObjects = 0;
  /// S: semi-strong cuts per non-array heap allocation site.
  double SemiStrongCutsPerHeapSite = 0;
  /// %SU / %WU: store chis strongly updated / singleton-but-weak.
  double PercentStrongStores = 0;
  double PercentWeakStores = 0;
  uint64_t NumVFGNodes = 0;
  uint64_t NumVFGEdges = 0;
  /// %B: VFG nodes reaching at least one needed runtime check.
  double PercentReachingCheck = 0;
  /// Opt I: simplified must-flow-from closures.
  uint64_t NumSimplifiedMFCs = 0;
  /// Opt II: nodes redirected to T.
  uint64_t NumRedirectedNodes = 0;
  /// Figure 11 numerators.
  uint64_t StaticPropagations = 0;
  uint64_t StaticChecks = 0;
  /// Constraint-solver engine counters from the (possibly retried)
  /// pointer analysis: propagations, cycle collapses, budget charges.
  analysis::SolverStatistics Solver;
  /// Summary-engine counters (all zero under EngineKind::Global). When
  /// Opt II re-resolves on the redirected graph, the counters aggregate
  /// both resolutions.
  analysis::SummaryEngineStats Summary;
  /// Wall-clock seconds per pipeline phase.
  std::map<std::string, double> PhaseSeconds;
};

/// Everything a run produces. The analyses are kept alive so examples and
/// tests can inspect intermediate results (VFG, Gamma, points-to sets).
struct UsherResult {
  InstrumentationPlan Plan;
  UsherStatistics Stats;
  DegradationReport Degradation;
  /// Plans for the non-UUV clients requested via UsherOptions::Clients,
  /// in request order. On the degraded MSan rung (or PA exhaustion) these
  /// are the clients' *full* plans — the ladder lands every client on its
  /// own MSan analog.
  std::vector<ClientPlanInfo> ClientPlans;

  std::unique_ptr<analysis::CallGraph> CG;
  std::unique_ptr<analysis::PointerAnalysis> PA;
  std::unique_ptr<analysis::ModRefAnalysis> MR;
  std::unique_ptr<ssa::MemorySSA> SSA;
  std::unique_ptr<vfg::VFG> G;
  std::unique_ptr<Definedness> Gamma;

  explicit UsherResult(InstrumentationPlan Plan) : Plan(std::move(Plan)) {}
};

/// Runs the pipeline on \p M. The module must be verified and renumbered;
/// heap cloning may add clone objects to it.
///
/// With budgets or a fault configured, a phase that exhausts its budget
/// never fails the run: the driver walks the degradation ladder
/// UsherFull -> UsherOptI -> UsherTL+AT -> UsherTL -> MSanFull, reusing
/// partial results where sound, and records what happened in
/// UsherResult::Degradation. Within the pointer-analysis phase the ladder
/// has its own rungs: field-sensitive Andersen, field-insensitive
/// Andersen, then the near-linear unification solver — a run salvaged by
/// the unification rung caps at UsherTLAT (its coarser points-to sets are
/// sound but not worth optimizing over). The returned plan always detects
/// at least the undefined-value uses full instrumentation would.
UsherResult runUsher(ir::Module &M, const UsherOptions &Opts);

/// Outcome of one demand reachability query (runUsherQuery).
struct QueryOutcome {
  /// The pipeline ran and the node ids were in range; when false, Error
  /// says why and the remaining fields are meaningless.
  bool Valid = false;
  std::string Error;
  bool Reachable = false;
  /// A budget ran out (during constraint solving or the query walk);
  /// Reachable is then inconclusive.
  bool Exhausted = false;
  /// Shortest context-valid witness path; non-empty iff Reachable.
  std::vector<analysis::QueryStep> Witness;
  /// Statistics of the constraint solver that backed the VFG. Tier-1
  /// tests assert Solver.Engine == SolverKind::Unify for the default
  /// query configuration — i.e. the answer never paid for a
  /// whole-program Andersen resolution.
  analysis::SolverStatistics Solver;
  uint64_t StatesVisited = 0;
  /// VFG node count, so callers can report the valid id range.
  uint32_t NumNodes = 0;
};

/// Answers a single demand query: is VFG node \p Sink context-validly
/// reachable from \p Src? Builds the cheapest sound pipeline prefix
/// (call graph, pointer analysis with Opts.Pta — callers wanting the
/// speed ladder's fast lane pass SolverKind::Unify — memory SSA, VFG)
/// and then runs the demand-driven engine from \p Src only, instead of a
/// whole-program definedness resolution. Budget phases: PointerAnalysis
/// covers constraint solving, Definedness covers the query walk.
QueryOutcome runUsherQuery(ir::Module &M, const UsherOptions &Opts,
                           uint32_t Src, uint32_t Sink);

} // namespace core
} // namespace usher

#endif // USHER_CORE_USHER_H
