//===- core/InstrumentationPlan.cpp - Shadow instrumentation plan ----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/InstrumentationPlan.h"

using namespace usher;
using namespace usher::core;

uint64_t InstrumentationPlan::countIf(bool CountChecks,
                                      bool CountReads) const {
  uint64_t N = 0;
  auto CountOps = [&](const std::vector<ShadowOp> &Ops) {
    for (const ShadowOp &Op : Ops) {
      bool IsCheck = Op.K == ShadowOp::Kind::Check ||
                     Op.K == ShadowOp::Kind::CheckBounds;
      if (IsCheck != CountChecks)
        continue;
      N += CountReads ? Op.reads() : 1;
    }
  };
  for (const auto &Ops : Before)
    CountOps(Ops);
  for (const auto &Ops : After)
    CountOps(Ops);
  for (const auto &[F, Ops] : Entry)
    CountOps(Ops);
  return N;
}

uint64_t InstrumentationPlan::countPropagationReads() const {
  return countIf(/*CountChecks=*/false, /*CountReads=*/true);
}

uint64_t InstrumentationPlan::countChecks() const {
  return countIf(/*CountChecks=*/true, /*CountReads=*/false);
}

uint64_t InstrumentationPlan::countShadowOps() const {
  return countIf(/*CountChecks=*/false, /*CountReads=*/false);
}
