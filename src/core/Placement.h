//===- core/Placement.h - Budgeted check placement --------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OptiSan-style budgeted placement: given a set of candidate runtime
/// checks, each with a coverage value and a modeled cost, choose the
/// subset that maximizes covered unsafe operations subject to a total
/// modeled-cost capacity (slowdown budget). Solved as an exact 0/1
/// knapsack with dynamic programming over the value dimension (min cost
/// to reach each coverage level), so the answer is provably optimal on
/// enumerable instances and coverage is monotone in the capacity — both
/// properties the placement property tests assert.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_CORE_PLACEMENT_H
#define USHER_CORE_PLACEMENT_H

#include <cstdint>
#include <vector>

namespace usher {
class Budget;

namespace core {

/// One candidate check site.
struct PlacementCandidate {
  /// Coverage value of protecting this site (loop-weighted unsafe-op
  /// count; see BoundsClient).
  uint64_t Value = 1;
  /// Modeled runtime cost of the check (loop-weighted CostModel cycles,
  /// scaled to an integer).
  uint64_t Cost = 1;
};

/// The chosen placement.
struct PlacementResult {
  /// One flag per candidate, in input order.
  std::vector<uint8_t> Chosen;
  uint64_t TotalValue = 0;
  uint64_t TotalCost = 0;
  /// True if the capacity actually excluded candidates (or the budget ran
  /// out and the sound instrument-everything fallback was taken).
  bool CapacityBound = false;
};

/// Solves max sum(Value) s.t. sum(Cost) <= Capacity, exactly.
///
/// Ties between equal-coverage plans break deterministically (lowest cost
/// first, then earliest candidates). When \p B is armed it is stepped once
/// per DP row; on exhaustion the solver falls back to choosing every
/// candidate — over-budget but sound, since placement only ever *limits*
/// coverage, and a degraded run must not lose checks silently.
PlacementResult solvePlacement(const std::vector<PlacementCandidate> &Cands,
                               uint64_t Capacity, Budget *B = nullptr);

} // namespace core
} // namespace usher

#endif // USHER_CORE_PLACEMENT_H
