//===- core/Instrumentation.h - Guided & full instrumentation ---*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guided instrumentation (Section 3.4, Figure 7): starting from the
/// runtime checks that are actually needed, demand shadow operations
/// backwards over the VFG. Nodes proven defined (Gamma = top) are handled
/// by strong updates to their shadows and cut the demand; possibly-
/// undefined nodes get full shadow propagation like MSan would emit.
///
/// Also provides the MSan model: full instrumentation of every statement
/// and every critical operation, which is the paper's baseline.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_CORE_INSTRUMENTATION_H
#define USHER_CORE_INSTRUMENTATION_H

#include "core/Definedness.h"
#include "core/InstrumentationPlan.h"

#include <memory>

namespace usher {
class Budget;

namespace ssa {
class MemorySSA;
}

namespace core {

/// Options for the guided planner.
struct PlannerOptions {
  /// False models the UsherTL variant: memory is not reasoned about, so
  /// every store and allocation is shadowed unconditionally and loads are
  /// pessimistically undefined. Must match the Definedness option.
  bool AddressTakenAware = true;
  /// Apply Opt I (value-flow simplification of must-flow-from closures).
  bool OptI = false;
  /// Optional budget (BudgetPhase::OptI): consulted per simplification
  /// attempt. Exhaustion leaves remaining closures unsimplified — the
  /// normal Figure 7 rules still cover them, so the plan stays sound.
  Budget *B = nullptr;

  // -- SanitizerClient hooks -----------------------------------------------
  // Defaults reproduce the UUV client bit-for-bit; a taint client (see
  // core/SanitizerClient.h) overrides them together with a seeded
  // Definedness so the same Figure 7 rules plan its instrumentation.

  /// Check sites to seed the demand from; null = the VFG's critical uses
  /// (the UUV client's loads/stores/branches/returns).
  const std::vector<vfg::VFG::CriticalUse> *Sinks = nullptr;
  /// Taint mode: allocation results may be Gamma-bottom because they ARE
  /// the taint sources; plan sigma(def) := F at the allocation instead of
  /// asserting unreachability.
  bool AllocResultsAreSources = false;
  /// Fresh objects' cells start clean (taint clients: an uninitialized
  /// cell holds no address) instead of at the object's isInitialized()
  /// flag (UUV).
  bool ObjectsStartClean = false;
  /// Shadow a void `ret` contributes to its captured result. UUV: false
  /// (capturing a void return is an undefined use); taint clients: true
  /// (a void return carries no address).
  bool VoidRetShadow = false;
};

/// Demand-driven planner implementing the deduction rules of Figure 7.
class InstrumentationPlanner {
public:
  InstrumentationPlanner(const ir::Module &M, const ssa::MemorySSA &SSA,
                         const vfg::VFG &G, const Definedness &Gamma,
                         PlannerOptions Opts);
  ~InstrumentationPlanner();

  /// Computes the guided plan.
  InstrumentationPlan run();

  /// Number of must-flow-from closures simplified by Opt I (Table 1's
  /// second-to-last column).
  uint64_t numSimplifiedMFCs() const;

private:
  class Impl;
  std::unique_ptr<Impl> PImpl;
};

/// Builds the MSan-style full instrumentation: every value shadowed, every
/// statement's shadow executed, every critical operation checked.
InstrumentationPlan buildFullInstrumentation(const ir::Module &M);

} // namespace core
} // namespace usher

#endif // USHER_CORE_INSTRUMENTATION_H
