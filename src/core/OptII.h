//===- core/OptII.h - Redundant check elimination ---------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opt II (Section 3.5.2, Algorithm 1): if an undefined value is
/// guaranteed to be detected at a critical statement s, then other
/// consumers of the same value at statements dominated by s need not
/// re-detect it. The optimization computes, for each checked top-level
/// variable, its must-flow-from closure X; every edge from a dominated
/// outside user into X is redirected to the T root in a *modified* graph;
/// definedness is re-resolved on that graph and the result drives
/// instrumentation over the original VFG.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_CORE_OPTII_H
#define USHER_CORE_OPTII_H

#include "core/Definedness.h"
#include "support/ThreadPool.h"
#include "vfg/VFG.h"

#include <unordered_map>
#include <vector>

namespace usher {
class Budget;

namespace ir {
class Module;
}
namespace ssa {
class MemorySSA;
}
namespace analysis {
class PointerAnalysis;
class CallGraph;
} // namespace analysis

namespace core {

/// The edge redirections Opt II decided on, in the form Definedness
/// accepts as an override, plus statistics.
struct OptIIResult {
  /// Per redirected node: its replacement dependency list (edges into the
  /// closure replaced by edges to the T root).
  std::unordered_map<uint32_t, std::vector<vfg::Edge>> Redirects;
  /// Number of distinct redirected nodes (the R column of Table 1).
  uint64_t NumRedirectedNodes = 0;
  /// True if the budget ran out mid-analysis. Partial redirections could
  /// be unsound to apply selectively (each redirect assumes its whole
  /// closure stays checked), so callers must discard Redirects entirely
  /// and fall back to the Opt-I-only rung.
  bool Exhausted = false;
};

/// Runs Algorithm 1 and returns the redirections. \p BaseGamma is the
/// definedness computed on the unmodified graph (used to consider only
/// checks that are actually emitted). When \p B is armed
/// (BudgetPhase::OptII) the closure expansions check it per node and the
/// function returns early with Exhausted set.
///
/// With a non-null \p Pool the per-use work (closure expansion plus
/// dominance filtering — pure reads of the immutable analyses) fans out
/// across workers; redirect lists are then merged serially in critical-use
/// order, so Redirects and NumRedirectedNodes are byte-identical to a
/// serial run. Budget charging is the same multiset of steps either way,
/// so whether the phase exhausts is schedule-independent too.
OptIIResult runRedundantCheckElimination(
    const ir::Module &M, const ssa::MemorySSA &SSA,
    const analysis::PointerAnalysis &PA, const analysis::CallGraph &CG,
    const vfg::VFG &G, const Definedness &BaseGamma, Budget *B = nullptr,
    ThreadPool *Pool = nullptr);

} // namespace core
} // namespace usher

#endif // USHER_CORE_OPTII_H
