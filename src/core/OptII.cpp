//===- core/OptII.cpp - Redundant check elimination -------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/OptII.h"

#include "analysis/CallGraph.h"
#include "analysis/PointerAnalysis.h"
#include "ir/IR.h"
#include "ssa/MemorySSA.h"
#include "support/Budget.h"

#include <unordered_set>

using namespace usher;
using namespace usher::core;
using namespace usher::ir;
using ssa::DefDesc;
using ssa::FunctionSSA;
using ssa::Space;
using vfg::Edge;
using vfg::EdgeKind;
using vfg::VFG;

namespace {

/// True if \p Loc stands for exactly one runtime cell: a non-collapsed
/// field of a global, or of a stack object whose owner never recurses.
bool isConcreteLoc(const analysis::PointerAnalysis &PA,
                   const analysis::CallGraph &CG, uint32_t Loc) {
  if (PA.isCollapsedLoc(Loc))
    return false;
  const MemObject *Obj = PA.location(Loc).Obj;
  if (Obj->isGlobal())
    return true;
  if (!Obj->isStack())
    return false;
  const Instruction *Site = Obj->getAllocSite();
  return Site && !CG.isRecursive(Site->getParent()->getParent());
}

/// The statement that computes \p Node, or null for entries and phis.
const Instruction *definingStatement(const VFG &G, const ssa::MemorySSA &SSA,
                                     uint32_t Node) {
  if (G.isRoot(Node))
    return nullptr;
  const VFG::NodeData &N = G.node(Node);
  const DefDesc &Desc = SSA.get(N.Fn).defOf(N.Key, N.Version);
  return Desc.K == DefDesc::Kind::Inst ? Desc.I : nullptr;
}

} // namespace

OptIIResult core::runRedundantCheckElimination(
    const Module &M, const ssa::MemorySSA &SSA,
    const analysis::PointerAnalysis &PA, const analysis::CallGraph &CG,
    const VFG &G, const Definedness &BaseGamma, Budget *B) {
  (void)M;
  OptIIResult Result;
  constexpr size_t MaxClosure = 128;

  if (B && !B->step()) {
    Result.Exhausted = true;
    return Result;
  }

  for (const VFG::CriticalUse &Use : G.criticalUses()) {
    if (B && !B->step()) {
      Result.Exhausted = true;
      return Result;
    }
    // Only checks that are actually performed can justify suppressing
    // dominated re-detections.
    if (BaseGamma.isDefined(Use.Node))
      continue;
    const Function *Fn = G.node(Use.Node).Fn;
    const FunctionSSA &FS = SSA.get(Fn);

    // Compute the must-flow-from closure X of the checked variable
    // (Definition 2), plus concrete memory locations feeding loads in it
    // (Algorithm 1, line 4).
    std::unordered_set<uint32_t> Closure;
    std::vector<uint32_t> Work{Use.Node};
    bool TooBig = false;
    while (!Work.empty() && !TooBig) {
      if (B && !B->step()) {
        Result.Exhausted = true;
        return Result;
      }
      uint32_t Node = Work.back();
      Work.pop_back();
      if (!Closure.insert(Node).second)
        continue;
      if (Closure.size() > MaxClosure) {
        TooBig = true;
        break;
      }
      const Instruction *I = definingStatement(G, SSA, Node);
      if (!I)
        continue;
      if (isa<CopyInst>(I) || isa<BinOpInst>(I)) {
        for (const Edge &E : G.deps(Node))
          if (!G.isRoot(E.Node))
            Work.push_back(E.Node);
      } else if (isa<LoadInst>(I) &&
                 G.node(Node).Key.Sp == Space::TopLevel) {
        for (const Edge &E : G.deps(Node)) {
          if (G.isRoot(E.Node))
            continue;
          const VFG::NodeData &Mem = G.node(E.Node);
          if (Mem.Key.Sp == Space::Memory &&
              isConcreteLoc(PA, CG, Mem.Key.Id))
            Closure.insert(E.Node);
        }
      }
    }
    if (TooBig)
      continue;

    // R_x: users of the closure outside it whose defining statement is
    // dominated by the checking statement.
    std::unordered_set<uint32_t> Candidates;
    for (uint32_t Member : Closure)
      for (const Edge &E : G.users(Member))
        if (!Closure.count(E.Node))
          Candidates.insert(E.Node);

    for (uint32_t R : Candidates) {
      if (B && !B->step()) {
        Result.Exhausted = true;
        return Result;
      }
      const Instruction *DefStmt = definingStatement(G, SSA, R);
      if (!DefStmt || DefStmt->getParent()->getParent() != Fn)
        continue;
      if (!FS.getDomTree().dominates(Use.I, DefStmt))
        continue;
      // Redirect every dependency of R that lands in the closure to T.
      auto It = Result.Redirects.find(R);
      std::vector<Edge> NewDeps =
          It != Result.Redirects.end() ? It->second : G.deps(R);
      bool Changed = false;
      for (Edge &E : NewDeps) {
        if (Closure.count(E.Node)) {
          E.Node = VFG::RootT;
          E.Kind = EdgeKind::Direct;
          E.CallSite = ~0u;
          Changed = true;
        }
      }
      if (Changed) {
        if (It == Result.Redirects.end())
          ++Result.NumRedirectedNodes;
        Result.Redirects[R] = std::move(NewDeps);
      }
    }
  }
  return Result;
}
