//===- core/OptII.cpp - Redundant check elimination -------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/OptII.h"

#include "analysis/CallGraph.h"
#include "analysis/PointerAnalysis.h"
#include "ir/IR.h"
#include "ssa/MemorySSA.h"
#include "support/Budget.h"

#include <unordered_set>

using namespace usher;
using namespace usher::core;
using namespace usher::ir;
using ssa::DefDesc;
using ssa::FunctionSSA;
using ssa::Space;
using vfg::Edge;
using vfg::EdgeKind;
using vfg::VFG;

namespace {

/// True if \p Loc stands for exactly one runtime cell: a non-collapsed
/// field of a global, or of a stack object whose owner never recurses.
bool isConcreteLoc(const analysis::PointerAnalysis &PA,
                   const analysis::CallGraph &CG, uint32_t Loc) {
  if (PA.isCollapsedLoc(Loc))
    return false;
  const MemObject *Obj = PA.location(Loc).Obj;
  if (Obj->isGlobal())
    return true;
  if (!Obj->isStack())
    return false;
  const Instruction *Site = Obj->getAllocSite();
  return Site && !CG.isRecursive(Site->getParent()->getParent());
}

/// The statement that computes \p Node, or null for entries and phis.
const Instruction *definingStatement(const VFG &G, const ssa::MemorySSA &SSA,
                                     uint32_t Node) {
  if (G.isRoot(Node))
    return nullptr;
  const VFG::NodeData &N = G.node(Node);
  const DefDesc &Desc = SSA.get(N.Fn).defOf(N.Key, N.Version);
  return Desc.K == DefDesc::Kind::Inst ? Desc.I : nullptr;
}

} // namespace

namespace {

/// Stage-1 output for one critical use: the must-flow-from closure plus
/// the dominated outside users whose edges into it will be redirected.
/// Pure function of the immutable analyses, so it can run on any worker.
struct UsePlan {
  bool Redirecting = false;
  std::unordered_set<uint32_t> Closure;
  std::vector<uint32_t> Redirectees;
};

/// Computes the plan for \p Use, charging \p B exactly as the serial
/// algorithm does: one step per use, one per closure worklist pop, one
/// per candidate examined. Returns false on budget exhaustion.
bool planUse(const VFG::CriticalUse &Use, const ssa::MemorySSA &SSA,
             const analysis::PointerAnalysis &PA,
             const analysis::CallGraph &CG, const VFG &G,
             const Definedness &BaseGamma, Budget *B, UsePlan &Plan) {
  constexpr size_t MaxClosure = 128;
  if (B && !B->step())
    return false;
  // Only checks that are actually performed can justify suppressing
  // dominated re-detections.
  if (BaseGamma.isDefined(Use.Node))
    return true;
  const Function *Fn = G.node(Use.Node).Fn;
  const FunctionSSA &FS = SSA.get(Fn);

  // Compute the must-flow-from closure X of the checked variable
  // (Definition 2), plus concrete memory locations feeding loads in it
  // (Algorithm 1, line 4).
  std::unordered_set<uint32_t> &Closure = Plan.Closure;
  std::vector<uint32_t> Work{Use.Node};
  bool TooBig = false;
  while (!Work.empty() && !TooBig) {
    if (B && !B->step())
      return false;
    uint32_t Node = Work.back();
    Work.pop_back();
    if (!Closure.insert(Node).second)
      continue;
    if (Closure.size() > MaxClosure) {
      TooBig = true;
      break;
    }
    const Instruction *I = definingStatement(G, SSA, Node);
    if (!I)
      continue;
    if (isa<CopyInst>(I) || isa<BinOpInst>(I)) {
      for (const Edge &E : G.deps(Node))
        if (!G.isRoot(E.Node))
          Work.push_back(E.Node);
    } else if (isa<LoadInst>(I) && G.node(Node).Key.Sp == Space::TopLevel) {
      for (const Edge &E : G.deps(Node)) {
        if (G.isRoot(E.Node))
          continue;
        const VFG::NodeData &Mem = G.node(E.Node);
        if (Mem.Key.Sp == Space::Memory && isConcreteLoc(PA, CG, Mem.Key.Id))
          Closure.insert(E.Node);
      }
    }
  }
  if (TooBig)
    return true;

  // R_x: users of the closure outside it whose defining statement is
  // dominated by the checking statement.
  std::unordered_set<uint32_t> Candidates;
  for (uint32_t Member : Closure)
    for (const Edge &E : G.users(Member))
      if (!Closure.count(E.Node))
        Candidates.insert(E.Node);

  for (uint32_t R : Candidates) {
    if (B && !B->step())
      return false;
    const Instruction *DefStmt = definingStatement(G, SSA, R);
    if (!DefStmt || DefStmt->getParent()->getParent() != Fn)
      continue;
    if (!FS.getDomTree().dominates(Use.I, DefStmt))
      continue;
    Plan.Redirectees.push_back(R);
  }
  Plan.Redirecting = true;
  return true;
}

} // namespace

OptIIResult core::runRedundantCheckElimination(
    const Module &M, const ssa::MemorySSA &SSA,
    const analysis::PointerAnalysis &PA, const analysis::CallGraph &CG,
    const VFG &G, const Definedness &BaseGamma, Budget *B, ThreadPool *Pool) {
  (void)M;
  OptIIResult Result;

  if (B && !B->step()) {
    Result.Exhausted = true;
    return Result;
  }

  // Stage 1 — per-use closure + dominance filtering. Reads only the
  // immutable analyses and charges the budget with the same multiset of
  // steps as the serial loop, so whether the phase exhausts does not
  // depend on scheduling (Exhausted results are discarded wholesale by
  // the caller either way).
  const std::vector<VFG::CriticalUse> &Uses = G.criticalUses();
  std::vector<UsePlan> Plans(Uses.size());
  std::atomic<bool> Exhausted{false};
  parallelForOrdered(Pool, Uses.size(), [&](size_t I) {
    if (Exhausted.load(std::memory_order_relaxed))
      return;
    if (!planUse(Uses[I], SSA, PA, CG, G, BaseGamma, B, Plans[I]))
      Exhausted.store(true, std::memory_order_relaxed);
  });
  if (Exhausted.load(std::memory_order_relaxed)) {
    Result.Exhausted = true;
    return Result;
  }

  // Stage 2 — serial ordered merge in critical-use order. Within one use
  // the redirectee order only decides which of its own edges get rewritten
  // first (the rewrites commute); across uses later plans read the
  // redirect lists earlier ones installed, exactly as the serial loop did.
  for (const UsePlan &Plan : Plans) {
    if (!Plan.Redirecting)
      continue;
    for (uint32_t R : Plan.Redirectees) {
      // Redirect every dependency of R that lands in the closure to T.
      auto It = Result.Redirects.find(R);
      std::vector<Edge> NewDeps =
          It != Result.Redirects.end() ? It->second : G.deps(R);
      bool Changed = false;
      for (Edge &E : NewDeps) {
        if (Plan.Closure.count(E.Node)) {
          E.Node = VFG::RootT;
          E.Kind = EdgeKind::Direct;
          E.CallSite = ~0u;
          Changed = true;
        }
      }
      if (Changed) {
        if (It == Result.Redirects.end())
          ++Result.NumRedirectedNodes;
        Result.Redirects[R] = std::move(NewDeps);
      }
    }
  }
  return Result;
}
