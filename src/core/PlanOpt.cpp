//===- core/PlanOpt.cpp - Shadow-code optimization --------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/PlanOpt.h"

#include "core/InstrumentationPlan.h"
#include "support/Budget.h"

#include <algorithm>
#include <unordered_set>

using namespace usher;
using namespace usher::core;

unsigned core::optimizeShadowPlan(InstrumentationPlan &Plan,
                                  const ir::Module &M, Budget *B) {
  (void)M;
  // Liveness fixpoint over shadow state. Checks and memory-cell shadow
  // writes are roots (cells are read through runtime pointers, so their
  // writers are conservatively live); a variable-shadow write is live
  // only while some live operation reads that variable's shadow.
  std::unordered_set<const ShadowOp *> Dead;
  bool Changed = true;
  bool Exhausted = false;
  unsigned Removed = 0;

  while (Changed && !Exhausted) {
    Changed = false;
    std::unordered_set<const ir::Variable *> ReadVars;
    std::unordered_set<uint32_t> LiveParamIndices;
    bool AnyLiveRetIn = false;

    Plan.forEachList([&](std::vector<ShadowOp> &Ops) {
      for (const ShadowOp &Op : Ops) {
        if (Dead.count(&Op))
          continue;
        for (const ShadowVal &SV : Op.Srcs)
          if (!SV.IsLiteral)
            ReadVars.insert(SV.Var);
        if (Op.K == ShadowOp::Kind::ParamIn)
          LiveParamIndices.insert(Op.Index);
        AnyLiveRetIn |= Op.K == ShadowOp::Kind::RetIn;
      }
    });

    Plan.forEachList([&](std::vector<ShadowOp> &Ops) {
      for (const ShadowOp &Op : Ops) {
        if (Exhausted)
          return;
        // Stopping mid-round is sound: each kill recorded so far is
        // justified against ReadVars, an over-approximation of the reads
        // that survive. The unexamined tail merely stays (dead) in place.
        if (B && !B->step()) {
          Exhausted = true;
          return;
        }
        if (Dead.count(&Op))
          continue;
        bool Kill = false;
        switch (Op.K) {
        case ShadowOp::Kind::SetVar:
        case ShadowOp::Kind::AndVar:
        case ShadowOp::Kind::LoadMem:
        case ShadowOp::Kind::ParamIn:
        case ShadowOp::Kind::RetIn:
          Kill = !ReadVars.count(Op.Dst);
          break;
        case ShadowOp::Kind::ArgOut:
          Kill = !LiveParamIndices.count(Op.Index);
          break;
        case ShadowOp::Kind::RetOut:
          Kill = !AnyLiveRetIn;
          break;
        case ShadowOp::Kind::SetMemCell:
        case ShadowOp::Kind::SetMemObject:
        case ShadowOp::Kind::Check:
        case ShadowOp::Kind::CheckBounds:
          break; // Roots.
        }
        if (Kill) {
          Dead.insert(&Op);
          Changed = true;
        }
      }
    });
  }

  // Note: ShadowOp addresses stay stable during the fixpoint because only
  // the erase below mutates the vectors.
  Plan.forEachList([&](std::vector<ShadowOp> &Ops) {
    size_t Before = Ops.size();
    Ops.erase(std::remove_if(Ops.begin(), Ops.end(),
                             [&](const ShadowOp &Op) {
                               return Dead.count(&Op) != 0;
                             }),
              Ops.end());
    Removed += static_cast<unsigned>(Before - Ops.size());
  });
  return Removed;
}
