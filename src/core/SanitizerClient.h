//===- core/SanitizerClient.h - Multi-client sanitizer framework -*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client-agnostic sanitizer framework. A *client* is one detector
/// expressed over the shared plan vocabulary (core/InstrumentationPlan.h):
/// it contributes a source set (which values are born "bad"), a sink
/// predicate (where badness must be checked), shadow transfer semantics
/// (how runtime shadow planes initialize), and warning rendering. The
/// pipeline's machinery — Definedness reachability, the Figure 7 planner,
/// the shadow interpreter — is parameterized over these hooks, so one VFG
/// serves every client in a single pass.
///
/// Clients:
///  - UUV:      the paper's use-of-undefined-values detector. It is the
///              *native* client: its plan is produced by runUsher exactly
///              as before this framework existed, byte-for-byte.
///  - AddrLeak: taint from allocation sites (NodeOrigin::AllocPtr) to
///              escaping stores (stores that may target a global object)
///              and to main's return value. Shadow F means "carries an
///              allocated address". Taking a *global's* address is out of
///              scope: ShadowVal::operand maps global-address operands to
///              literal T, which exactly matches the intended policy (a
///              global's address is not a leak).
///  - Bounds:   spatial safety. CheckBounds after each field-address
///              instruction warns when the formed pointer lies outside its
///              object, before any dereference would trap. Statically safe
///              sites are proven by *provenance* (base is a fresh object
///              base pointer, constant index within the object): points-to
///              facts alone are unsound here, because the loc domain of the
///              pointer analysis cannot witness a pointer that is already
///              out of range. The remaining unsafe sites go through the
///              OptiSan-style budgeted placement (core/Placement.h), which
///              maximizes loop-weighted coverage subject to a modeled
///              slowdown capacity derived from runtime/CostModel.h.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_CORE_SANITIZERCLIENT_H
#define USHER_CORE_SANITIZERCLIENT_H

#include "core/InstrumentationPlan.h"

#include <string>
#include <vector>

namespace usher {

namespace analysis {
class PointerAnalysis;
}
namespace ssa {
class MemorySSA;
}
namespace vfg {
class VFG;
}

namespace core {

/// The detectors the framework knows how to plan.
enum class ClientKind : uint8_t { UUV, AddrLeak, Bounds };
constexpr unsigned NumClientKinds = 3;

/// Stable lower-case name ("uuv", "addrleak", "bounds") used by --client=,
/// the serve protocol, diagnostic JSON, and ctest labels.
const char *clientName(ClientKind K);

/// Parses a client name; returns false on an unknown spelling.
bool parseClientName(const std::string &Name, ClientKind &K);

/// The warning phrase rendered for this client's runtime checks, e.g.
/// "use of undefined value" for UUV.
const char *clientWarningText(ClientKind K);

/// How the runtime shadow planes initialize for one client. The plan
/// vocabulary is shared; what differs per client is what "no information"
/// means at the points the plan never writes.
struct ShadowSemantics {
  /// Shadow value a fresh frame's variable slots start at. UUV: false
  /// (locals are undefined on entry, like C). Taint clients: true (an
  /// uninitialized local carries no address).
  bool FrameInit = false;
  /// Global objects' cell shadows start at MemObject::isInitialized()
  /// (UUV: an uninit global is undefined). When false they start clean
  /// (taint clients: a global's initial contents hold no address).
  bool GlobalsFromInit = true;
};

/// The semantics the interpreter must run client \p K's plan under.
ShadowSemantics clientShadowSemantics(ClientKind K);

/// One client's plan plus the placement accounting surfaced by --stats.
struct ClientPlanInfo {
  ClientKind Kind;
  InstrumentationPlan Plan;
  /// Candidate sink sites considered (bounds: field-address sites in
  /// reachable code; addrleak: escaping stores plus main returns).
  uint64_t SinkCandidates = 0;
  /// Sites static analysis could not discharge.
  uint64_t UnsafeSinks = 0;
  /// Checks actually placed in the plan.
  uint64_t ChosenChecks = 0;
  /// Budgeted placement accounting (bounds only; zero when unlimited).
  uint64_t PlacementCapacity = 0;
  uint64_t PlacementCost = 0;
  /// True if the slowdown capacity excluded candidate checks.
  bool CapacityBound = false;

  ClientPlanInfo(ClientKind Kind, InstrumentationPlan Plan)
      : Kind(Kind), Plan(std::move(Plan)) {}
};

/// Everything a client plan builder may consult. The analysis pointers are
/// null on the degraded (MSan-rung) path, where only full client plans can
/// be built.
struct ClientBuildInputs {
  const ir::Module &M;
  const analysis::PointerAnalysis *PA = nullptr;
  const ssa::MemorySSA *SSA = nullptr;
  const vfg::VFG *G = nullptr;
  /// Call-site sensitivity of the taint resolution (matches the UUV run).
  unsigned ContextK = 1;
  /// Bounds client: modeled slowdown capacity as a percentage of the
  /// loop-weighted static base cost. 0 = unlimited (every unsafe site is
  /// instrumented).
  unsigned BoundsBudgetPercent = 0;

  explicit ClientBuildInputs(const ir::Module &M) : M(M) {}
};

/// Builds the *guided* plan for a non-UUV client: static analysis
/// discharges provably-safe sites, the rest are instrumented (bounds:
/// subject to the placement budget). AddrLeak requires the full analysis
/// pipeline (In.PA / In.SSA / In.G); Bounds needs only the module. UUV is
/// planned by runUsher itself.
ClientPlanInfo buildClientPlan(ClientKind K, const ClientBuildInputs &In);

/// Builds the *full* (MSan-analog) plan for a non-UUV client: every
/// statement shadowed, every sink checked, no static analysis consulted
/// beyond the optional points-to refinement of the sink set. This is both
/// the degradation-ladder landing for clients and the reference side of
/// the fuzzer's guided-vs-full differential oracle.
ClientPlanInfo buildClientFullPlan(ClientKind K, const ClientBuildInputs &In);

} // namespace core
} // namespace usher

#endif // USHER_CORE_SANITIZERCLIENT_H
