//===- core/Usher.cpp - The Usher driver ------------------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/Usher.h"

#include "core/OptII.h"
#include "ir/IR.h"
#include "support/Timer.h"

using namespace usher;
using namespace usher::core;
using namespace usher::ir;

const char *core::engineKindName(EngineKind E) {
  return E == EngineKind::Summary ? "summary" : "global";
}

const char *core::toolVariantName(ToolVariant V) {
  switch (V) {
  case ToolVariant::MSanFull:
    return "MSAN";
  case ToolVariant::UsherTL:
    return "USHER-TL";
  case ToolVariant::UsherTLAT:
    return "USHER-TL+AT";
  case ToolVariant::UsherOptI:
    return "USHER-OPTI";
  case ToolVariant::UsherFull:
    return "USHER";
  }
  return "?";
}

std::string DegradationReport::summary() const {
  if (!Degraded)
    return "";
  std::string S = "degraded ";
  S += toolVariantName(Requested);
  S += " -> ";
  S += toolVariantName(Rung);
  S += ":";
  for (const DegradationStep &Step : Steps) {
    S += " ";
    S += budgetPhaseName(Step.Phase);
    S += " hit ";
    S += exhaustKindName(Step.Kind);
    S += " (";
    S += Step.Action;
    S += ");";
  }
  if (!Steps.empty())
    S.pop_back();
  return S;
}

/// The enumerator order is the ladder order, so "weaker of two rungs" is a
/// numeric min.
static ToolVariant minRung(ToolVariant A, ToolVariant B) {
  return static_cast<int>(A) < static_cast<int>(B) ? A : B;
}

static void collectModuleStats(const Module &M, UsherStatistics &Stats) {
  Stats.NumInstructions = M.instructionCount();
  for (const auto &F : M.functions())
    Stats.NumTopLevelVars += F->variables().size();
  uint64_t Uninit = 0, Total = 0;
  for (const auto &Obj : M.objects()) {
    if (Obj->getCloneOrigin())
      continue; // Clones are analysis artifacts, not program objects.
    ++Total;
    if (!Obj->isInitialized())
      ++Uninit;
    switch (Obj->getRegion()) {
    case Region::Stack:
      ++Stats.NumStackObjects;
      break;
    case Region::Heap:
      ++Stats.NumHeapObjects;
      break;
    case Region::Global:
      ++Stats.NumGlobalObjects;
      break;
    }
  }
  Stats.PercentUninitObjects = Total ? 100.0 * Uninit / Total : 0.0;
}

UsherResult core::runUsher(Module &M, const UsherOptions &Opts) {
  Timer Total;
  UsherStatistics Stats;
  collectModuleStats(M, Stats);

  DegradationReport DR;
  DR.Requested = Opts.Variant;
  DR.Rung = Opts.Variant;

  // The terminal ladder rung: the MSan full plan needs no fixed point at
  // all, so it is always reachable within any budget. Requested clients
  // land on their own MSan analogs (full plans, no analyses consulted).
  auto FinishMSan = [&]() -> UsherResult {
    UsherResult Result(buildFullInstrumentation(M));
    ClientBuildInputs In(M);
    In.BoundsBudgetPercent = Opts.BoundsBudgetPercent;
    for (ClientKind K : Opts.Clients)
      if (K != ClientKind::UUV)
        Result.ClientPlans.push_back(buildClientFullPlan(K, In));
    Stats.AnalysisSeconds = Total.seconds();
    Stats.StaticPropagations = Result.Plan.countPropagationReads();
    Stats.StaticChecks = Result.Plan.countChecks();
    DR.Rung = ToolVariant::MSanFull;
    Result.Stats = std::move(Stats);
    Result.Degradation = std::move(DR);
    return Result;
  };

  if (Opts.Variant == ToolVariant::MSanFull)
    return FinishMSan();

  // One pool for all parallel phases; null means "run inline". The phases
  // joined on it merge their results in item order, so the pool's
  // existence is invisible in every output byte.
  unsigned Jobs = Opts.Jobs == 0 ? ThreadPool::defaultJobs() : Opts.Jobs;
  std::unique_ptr<ThreadPool> Pool;
  if (Jobs > 1)
    Pool = std::make_unique<ThreadPool>(Jobs);

  Budget B(Opts.Limits, Opts.Fault);
  auto Fail = [&](BudgetPhase P, std::string Action) {
    DR.Degraded = true;
    DR.Steps.push_back({P, B.exhaustKind(), std::move(Action)});
  };

  Timer Phase;
  auto Record = [&](const char *Name) {
    Stats.PhaseSeconds[Name] = Phase.seconds();
    Phase.reset();
  };

  auto CG = std::make_unique<analysis::CallGraph>(M);

  // Heap cloning appends clone objects to the module; remember the
  // watermark so a failed attempt can be rolled back before a retry (or
  // the MSan fallback) re-runs cloning or instruments the module.
  const size_t ObjMark = M.objects().size();
  auto PurgeClones = [&] {
    M.purgeObjects([&](const ir::MemObject *O) {
      return static_cast<size_t>(O->getId()) >= ObjMark;
    });
  };

  B.beginPhase(BudgetPhase::PointerAnalysis);
  auto PA = std::make_unique<analysis::PointerAnalysis>(M, *CG, Opts.Pta, &B);
  if (PA->exhausted() && Opts.Pta.FieldSensitive) {
    // First fallback: the field-insensitive constraint system is much
    // smaller and still a sound over-approximation. Fresh arm, fresh
    // module (no stale clones).
    Fail(BudgetPhase::PointerAnalysis, "retrying field-insensitive");
    PurgeClones();
    analysis::PtaOptions Cheap = Opts.Pta;
    Cheap.FieldSensitive = false;
    B.beginPhase(BudgetPhase::PointerAnalysis);
    PA = std::make_unique<analysis::PointerAnalysis>(M, *CG, Cheap, &B);
  }
  if (PA->exhausted() && Opts.Pta.Solver != analysis::SolverKind::Unify) {
    // Second fallback: the near-linear unification solver over the
    // field-insensitive constraints. Its coarser (but still sound)
    // points-to sets are not worth running Opt I/II over, so a run
    // salvaged here caps at the TL+AT rung below.
    Fail(BudgetPhase::PointerAnalysis, "retrying with unification solver");
    PurgeClones();
    analysis::PtaOptions Cheap = Opts.Pta;
    Cheap.FieldSensitive = false;
    Cheap.Solver = analysis::SolverKind::Unify;
    B.beginPhase(BudgetPhase::PointerAnalysis);
    PA = std::make_unique<analysis::PointerAnalysis>(M, *CG, Cheap, &B);
    if (!PA->exhausted())
      DR.Rung = minRung(DR.Rung, ToolVariant::UsherTLAT);
  }
  Stats.Solver = PA->solverStats();
  if (PA->exhausted()) {
    // No usable points-to information: everything downstream depends on
    // it, so the only sound landing is the full plan.
    Fail(BudgetPhase::PointerAnalysis, "falling back to full instrumentation");
    PurgeClones();
    Record("1.pointer-analysis");
    return FinishMSan();
  }
  Record("1.pointer-analysis");

  auto MR = std::make_unique<analysis::ModRefAnalysis>(M, *CG, *PA);
  auto SSA = std::make_unique<ssa::MemorySSA>(M, *PA, *MR, Pool.get());
  Record("2.memory-ssa");
  auto G = std::make_unique<vfg::VFG>(
      vfg::VFGBuilder(M, *SSA, *PA, *CG, Opts.Vfg).build());
  Record("3.vfg");

  DefinednessOptions DefOpts;
  DefOpts.ContextK = Opts.ContextK;
  DefOpts.AddressTakenAware = Opts.Variant != ToolVariant::UsherTL;

  // Resolves Gamma with the selected engine. The summary engine returns
  // an empty result when it cannot answer exactly (k >= 2, context-set
  // saturation); the \p RearmOnDelegate phase then re-arms the budget so
  // the global fallback runs under the same conditions an --engine=global
  // run would (the summary attempt's charges are not held against it).
  // At the Opt II re-resolution no re-arm is possible — the phase budget
  // also covers the planning that already ran — so the fallback spends
  // what remains; a pessimized outcome there just discards the redirects,
  // which is the documented sound landing.
  auto AddSummaryStats = [&](const analysis::SummaryEngineStats &S) {
    auto &T = Stats.Summary;
    T.NumFunctions = S.NumFunctions;
    T.NumSCCs += S.NumSCCs;
    T.SummariesComputed += S.SummariesComputed;
    T.SummariesReused += S.SummariesReused;
    T.ExpansionsComputed += S.ExpansionsComputed;
    T.ExpansionsReused += S.ExpansionsReused;
    T.PrunedTransfers += S.PrunedTransfers;
    T.PrunedCalleeEntries += S.PrunedCalleeEntries;
    T.MergedContexts += S.MergedContexts;
    T.RealizedBoundaryFacts += S.RealizedBoundaryFacts;
    T.DelegatedToGlobal |= S.DelegatedToGlobal;
    T.SaturationBail |= S.SaturationBail;
    T.Pessimized |= S.Pessimized;
  };
  auto ResolveGamma =
      [&](const std::unordered_map<uint32_t, std::vector<vfg::Edge>> *Redirects,
          std::optional<BudgetPhase> RearmOnDelegate)
      -> std::unique_ptr<Definedness> {
    if (Opts.Engine == EngineKind::Summary) {
      analysis::SummaryEngineOptions SOpts;
      SOpts.ContextK = DefOpts.ContextK;
      SOpts.AddressTakenAware = DefOpts.AddressTakenAware;
      analysis::SummaryEngine SE(*G, SOpts, Redirects, Opts.SummaryCache,
                                 Pool.get(), &B);
      analysis::SummaryRunResult R = SE.run();
      AddSummaryStats(SE.stats());
      if (R.Bottom)
        return std::make_unique<Definedness>(std::move(*R.Bottom),
                                             R.Pessimized);
      if (RearmOnDelegate)
        B.beginPhase(*RearmOnDelegate);
    }
    return std::make_unique<Definedness>(*G, DefOpts, Redirects, &B);
  };

  B.beginPhase(BudgetPhase::Definedness);
  auto Gamma = ResolveGamma(nullptr, BudgetPhase::Definedness);
  if (Gamma->wasPessimized()) {
    // The pessimistically completed Gamma is sound but too coarse to
    // justify Opt I/II decisions profitably; land on the plain guided
    // rung for the chosen memory model.
    Fail(BudgetPhase::Definedness, "unresolved nodes marked undefined-capable");
    DR.Rung = minRung(DR.Rung, DefOpts.AddressTakenAware
                                   ? ToolVariant::UsherTLAT
                                   : ToolVariant::UsherTL);
  }
  Record("4.definedness");

  // Opt II recomputes definedness on a graph with redirected edges; the
  // resulting Gamma drives instrumentation over the *original* VFG so all
  // shadow values stay correctly initialized (Algorithm 1). The base
  // Gamma stays alive so later rungs can discard the redirects wholesale.
  std::unique_ptr<Definedness> RedirGamma;
  if (Opts.Variant == ToolVariant::UsherFull &&
      DR.Rung == ToolVariant::UsherFull && !Gamma->wasPessimized()) {
    B.beginPhase(BudgetPhase::OptII);
    OptIIResult Opt2 =
        runRedundantCheckElimination(M, *SSA, *PA, *CG, *G, *Gamma, &B,
                                     Pool.get());
    if (Opt2.Exhausted) {
      // Partial redirect sets are not individually sound (each redirect
      // assumes its whole closure stays checked): drop them all.
      Fail(BudgetPhase::OptII, "Opt II redirects discarded");
      DR.Rung = minRung(DR.Rung, ToolVariant::UsherOptI);
    } else {
      Stats.NumRedirectedNodes = Opt2.NumRedirectedNodes;
      if (!Opt2.Redirects.empty()) {
        auto G2 = ResolveGamma(&Opt2.Redirects, std::nullopt);
        if (G2->wasPessimized()) {
          // The re-resolution ran out of the same Opt II budget; the base
          // Gamma is still intact, so discard the redirects instead of
          // accepting a coarser Gamma.
          Fail(BudgetPhase::OptII, "Opt II re-resolution discarded");
          DR.Rung = minRung(DR.Rung, ToolVariant::UsherOptI);
          Stats.NumRedirectedNodes = 0;
        } else {
          RedirGamma = std::move(G2);
        }
      }
    }
    Record("5.opt2");
  }

  PlannerOptions POpts;
  POpts.AddressTakenAware = Opts.Variant != ToolVariant::UsherTL;
  POpts.OptI = static_cast<int>(DR.Rung) >=
               static_cast<int>(ToolVariant::UsherOptI);
  POpts.B = &B;
  if (POpts.OptI)
    B.beginPhase(BudgetPhase::OptI);
  InstrumentationPlanner Planner(M, *SSA, *G,
                                 RedirGamma ? *RedirGamma : *Gamma, POpts);
  UsherResult Result(Planner.run());
  Stats.NumSimplifiedMFCs = Planner.numSimplifiedMFCs();
  if (POpts.OptI && B.exhausted()) {
    // Unsimplified closures fall back to the normal Figure 7 rules, so any
    // partially simplified plan is sound — but its guarantees are the
    // TL+AT ones, so rebuild the plan honestly at that rung: base Gamma,
    // no Opt I, no Opt II redirects.
    Fail(BudgetPhase::OptI,
         std::to_string(Planner.numSimplifiedMFCs()) +
             " closures simplified before exhaustion");
    DR.Rung = minRung(DR.Rung, ToolVariant::UsherTLAT);
    RedirGamma.reset();
    Stats.NumRedirectedNodes = 0;
    Stats.NumSimplifiedMFCs = 0;
    POpts.OptI = false;
    POpts.B = nullptr;
    InstrumentationPlanner Replanner(M, *SSA, *G, *Gamma, POpts);
    Result.Plan = Replanner.run();
  }
  if (RedirGamma)
    Gamma = std::move(RedirGamma);
  Record("6.instrumentation");

  // Statistics over the built analyses.
  Stats.NumVFGNodes = G->numNodes();
  Stats.NumVFGEdges = G->numEdges();
  uint64_t StoreChis = G->numStrongStoreChis() + G->numSemiStrongStoreChis() +
                       G->numWeakStoreChis();
  if (StoreChis) {
    Stats.PercentStrongStores = 100.0 * G->numStrongStoreChis() / StoreChis;
    Stats.PercentWeakStores =
        100.0 * (G->numSemiStrongStoreChis() + G->numWeakStoreChis()) /
        StoreChis;
  }
  uint64_t HeapSites = 0, Cuts = 0;
  for (const auto &Obj : M.objects())
    if (Obj->isHeap() && !Obj->isArray())
      ++HeapSites;
  for (const auto &[ObjId, Count] : G->semiStrongCuts())
    Cuts += Count;
  Stats.SemiStrongCutsPerHeapSite =
      HeapSites ? static_cast<double>(Cuts) / HeapSites : 0.0;
  BitSet Reaching = computeCheckReaching(*G, *Gamma, Pool.get());
  Stats.PercentReachingCheck =
      G->numNodes() ? 100.0 * Reaching.count() / G->numNodes() : 0.0;
  Stats.StaticPropagations = Result.Plan.countPropagationReads();
  Stats.StaticChecks = Result.Plan.countChecks();

  // Guided plans for the additional clients, over the same analyses (one
  // VFG, many detectors). Client taint resolution runs unbudgeted: it is
  // a plain reachability pass, linear in the graph the budgets already
  // admitted.
  if (!Opts.Clients.empty()) {
    Phase.reset();
    ClientBuildInputs In(M);
    In.PA = PA.get();
    In.SSA = SSA.get();
    In.G = G.get();
    In.ContextK = Opts.ContextK;
    In.BoundsBudgetPercent = Opts.BoundsBudgetPercent;
    for (ClientKind K : Opts.Clients)
      if (K != ClientKind::UUV)
        Result.ClientPlans.push_back(buildClientPlan(K, In));
    Record("7.clients");
  }

  Stats.AnalysisSeconds = Total.seconds();
  Stats.PeakRSSBytes = peakRSSBytes();

  Result.Stats = std::move(Stats);
  Result.Degradation = std::move(DR);
  Result.CG = std::move(CG);
  Result.PA = std::move(PA);
  Result.MR = std::move(MR);
  Result.SSA = std::move(SSA);
  Result.G = std::move(G);
  Result.Gamma = std::move(Gamma);
  return Result;
}

QueryOutcome core::runUsherQuery(Module &M, const UsherOptions &Opts,
                                 uint32_t Src, uint32_t Sink) {
  QueryOutcome Out;
  Budget B(Opts.Limits, Opts.Fault);

  analysis::CallGraph CG(M);
  B.beginPhase(BudgetPhase::PointerAnalysis);
  analysis::PointerAnalysis PA(M, CG, Opts.Pta, &B);
  Out.Solver = PA.solverStats();
  if (PA.exhausted()) {
    // Without points-to sets there is no VFG to query; the answer is
    // inconclusive rather than invalid.
    Out.Valid = true;
    Out.Exhausted = true;
    return Out;
  }

  analysis::ModRefAnalysis MR(M, CG, PA);
  ssa::MemorySSA SSA(M, PA, MR, nullptr);
  vfg::VFG G = vfg::VFGBuilder(M, SSA, PA, CG, Opts.Vfg).build();
  Out.NumNodes = G.numNodes();
  if (Src >= G.numNodes() || Sink >= G.numNodes()) {
    Out.Error = "query node id out of range (VFG has " +
                std::to_string(G.numNodes()) + " nodes)";
    return Out;
  }

  Out.Valid = true;
  analysis::DemandVFA::Options QOpts;
  QOpts.ContextK = Opts.ContextK;
  analysis::DemandVFA Q(G, QOpts, &B);
  B.beginPhase(BudgetPhase::Definedness);
  analysis::QueryResult R = Q.cflReachable(Src, Sink);
  Out.Reachable = R.Reachable;
  Out.Exhausted = R.Exhausted;
  Out.StatesVisited = R.StatesVisited;
  Out.Witness = std::move(R.Witness);
  return Out;
}
