//===- core/Usher.cpp - The Usher driver ------------------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/Usher.h"

#include "core/OptII.h"
#include "ir/IR.h"
#include "support/Timer.h"

using namespace usher;
using namespace usher::core;
using namespace usher::ir;

const char *core::toolVariantName(ToolVariant V) {
  switch (V) {
  case ToolVariant::MSanFull:
    return "MSAN";
  case ToolVariant::UsherTL:
    return "USHER-TL";
  case ToolVariant::UsherTLAT:
    return "USHER-TL+AT";
  case ToolVariant::UsherOptI:
    return "USHER-OPTI";
  case ToolVariant::UsherFull:
    return "USHER";
  }
  return "?";
}

static void collectModuleStats(const Module &M, UsherStatistics &Stats) {
  Stats.NumInstructions = M.instructionCount();
  for (const auto &F : M.functions())
    Stats.NumTopLevelVars += F->variables().size();
  uint64_t Uninit = 0, Total = 0;
  for (const auto &Obj : M.objects()) {
    if (Obj->getCloneOrigin())
      continue; // Clones are analysis artifacts, not program objects.
    ++Total;
    if (!Obj->isInitialized())
      ++Uninit;
    switch (Obj->getRegion()) {
    case Region::Stack:
      ++Stats.NumStackObjects;
      break;
    case Region::Heap:
      ++Stats.NumHeapObjects;
      break;
    case Region::Global:
      ++Stats.NumGlobalObjects;
      break;
    }
  }
  Stats.PercentUninitObjects = Total ? 100.0 * Uninit / Total : 0.0;
}

UsherResult core::runUsher(Module &M, const UsherOptions &Opts) {
  Timer Total;
  UsherStatistics Stats;
  collectModuleStats(M, Stats);

  if (Opts.Variant == ToolVariant::MSanFull) {
    UsherResult Result(buildFullInstrumentation(M));
    Stats.AnalysisSeconds = Total.seconds();
    Stats.StaticPropagations = Result.Plan.countPropagationReads();
    Stats.StaticChecks = Result.Plan.countChecks();
    Result.Stats = Stats;
    return Result;
  }

  Timer Phase;
  auto Record = [&](const char *Name) {
    Stats.PhaseSeconds[Name] = Phase.seconds();
    Phase.reset();
  };

  auto CG = std::make_unique<analysis::CallGraph>(M);
  auto PA = std::make_unique<analysis::PointerAnalysis>(M, *CG, Opts.Pta);
  Record("1.pointer-analysis");
  auto MR = std::make_unique<analysis::ModRefAnalysis>(M, *CG, *PA);
  auto SSA = std::make_unique<ssa::MemorySSA>(M, *PA, *MR);
  Record("2.memory-ssa");
  auto G = std::make_unique<vfg::VFG>(
      vfg::VFGBuilder(M, *SSA, *PA, *CG, Opts.Vfg).build());
  Record("3.vfg");

  DefinednessOptions DefOpts;
  DefOpts.ContextK = Opts.ContextK;
  DefOpts.AddressTakenAware = Opts.Variant != ToolVariant::UsherTL;
  auto Gamma = std::make_unique<Definedness>(*G, DefOpts);
  Record("4.definedness");

  // Opt II recomputes definedness on a graph with redirected edges; the
  // resulting Gamma drives instrumentation over the *original* VFG so all
  // shadow values stay correctly initialized (Algorithm 1).
  if (Opts.Variant == ToolVariant::UsherFull) {
    OptIIResult Opt2 =
        runRedundantCheckElimination(M, *SSA, *PA, *CG, *G, *Gamma);
    Stats.NumRedirectedNodes = Opt2.NumRedirectedNodes;
    if (!Opt2.Redirects.empty())
      Gamma = std::make_unique<Definedness>(*G, DefOpts, &Opt2.Redirects);
    Record("5.opt2");
  }

  PlannerOptions POpts;
  POpts.AddressTakenAware = Opts.Variant != ToolVariant::UsherTL;
  POpts.OptI = Opts.Variant == ToolVariant::UsherOptI ||
               Opts.Variant == ToolVariant::UsherFull;
  InstrumentationPlanner Planner(M, *SSA, *G, *Gamma, POpts);
  UsherResult Result(Planner.run());
  Stats.NumSimplifiedMFCs = Planner.numSimplifiedMFCs();
  Record("6.instrumentation");

  // Statistics over the built analyses.
  Stats.NumVFGNodes = G->numNodes();
  Stats.NumVFGEdges = G->numEdges();
  uint64_t StoreChis = G->numStrongStoreChis() + G->numSemiStrongStoreChis() +
                       G->numWeakStoreChis();
  if (StoreChis) {
    Stats.PercentStrongStores = 100.0 * G->numStrongStoreChis() / StoreChis;
    Stats.PercentWeakStores =
        100.0 * (G->numSemiStrongStoreChis() + G->numWeakStoreChis()) /
        StoreChis;
  }
  uint64_t HeapSites = 0, Cuts = 0;
  for (const auto &Obj : M.objects())
    if (Obj->isHeap() && !Obj->isArray())
      ++HeapSites;
  for (const auto &[ObjId, Count] : G->semiStrongCuts())
    Cuts += Count;
  Stats.SemiStrongCutsPerHeapSite =
      HeapSites ? static_cast<double>(Cuts) / HeapSites : 0.0;
  BitSet Reaching = computeCheckReaching(*G, *Gamma);
  Stats.PercentReachingCheck =
      G->numNodes() ? 100.0 * Reaching.count() / G->numNodes() : 0.0;
  Stats.StaticPropagations = Result.Plan.countPropagationReads();
  Stats.StaticChecks = Result.Plan.countChecks();
  Stats.AnalysisSeconds = Total.seconds();
  Stats.PeakRSSBytes = peakRSSBytes();

  Result.Stats = std::move(Stats);
  Result.CG = std::move(CG);
  Result.PA = std::move(PA);
  Result.MR = std::move(MR);
  Result.SSA = std::move(SSA);
  Result.G = std::move(G);
  Result.Gamma = std::move(Gamma);
  return Result;
}
