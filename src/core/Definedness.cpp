//===- core/Definedness.cpp - Definedness resolution -----------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/Definedness.h"

#include "core/ContextStack.h"
#include "support/Budget.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace usher;
using namespace usher::core;
using vfg::Edge;
using vfg::EdgeKind;
using vfg::VFG;

/// The k-bounded unmatched-call-site stack lives in core/ContextStack.h so
/// the static diagnosis witness search replays exactly these transitions.
using Context = ContextStack;

Definedness::Definedness(
    const VFG &G, DefinednessOptions Opts,
    const std::unordered_map<uint32_t, std::vector<Edge>> *Redirects,
    Budget *B) {
  const unsigned K = Opts.ContextK;
  const uint32_t N = G.numNodes();
  Bottom.resize(N);

  // On budget exhaustion the worklist is abandoned mid-flight, so the
  // reachability result is incomplete. Completing it pessimistically keeps
  // the answer sound: mark bottom every node that is not structurally
  // defined, i.e. whose effective dependencies are not all the T root.
  // (Alloc results and constants depend only on RootT and must stay top —
  // the planner asserts they never demand a definition.)
  auto Pessimize = [&] {
    Pessimized = true;
    for (uint32_t Id = 0; Id != N; ++Id) {
      if (G.isRoot(Id))
        continue;
      const std::vector<Edge> *Deps = &G.deps(Id);
      if (Redirects) {
        auto It = Redirects->find(Id);
        if (It != Redirects->end())
          Deps = &It->second;
      }
      bool AllTop = !Deps->empty();
      for (const Edge &E : *Deps) {
        if (E.Node != VFG::RootT) {
          AllTop = false;
          break;
        }
      }
      if (!AllTop)
        Bottom.set(Id);
    }
    // Taint seeds are bottom by definition, even when structurally
    // defined (an alloc result depends only on RootT yet IS the source).
    if (Opts.Seeds)
      for (uint32_t S : *Opts.Seeds)
        if (!G.isRoot(S))
          Bottom.set(S);
  };

  if (B && !B->step()) {
    Pessimize();
    return;
  }

  // Effective forward-flow adjacency, hoisted out of the worklist loop: a
  // flow runs from each definition to each of its users, and a redirected
  // user's flow is suppressed when its overriding dependency list no
  // longer names the definition. Filtering once here replaces a hash
  // lookup per user at every pop.
  std::vector<std::vector<Edge>> Flows(N);
  for (uint32_t S = 0; S != N; ++S) {
    for (const Edge &E : G.users(S)) {
      if (Redirects) {
        auto It = Redirects->find(E.Node);
        if (It != Redirects->end()) {
          bool StillDepends = false;
          for (const Edge &D : It->second) {
            if (D.Node == S && D.Kind == E.Kind && D.CallSite == E.CallSite) {
              StillDepends = true;
              break;
            }
          }
          if (!StillDepends)
            continue;
        }
      }
      Flows[S].push_back(E);
    }
  }

  // Condense the Direct-flow SCCs (iterative Tarjan). Direct edges never
  // touch the context stack, so every member of a Direct cycle is
  // undefinedness-reachable under exactly the same set of contexts; the
  // reachability below therefore runs over SCC representatives and the
  // visited-(node, context) memo is kept once per component instead of
  // once per member.
  std::vector<uint32_t> Rep(N);
  {
    std::vector<uint32_t> Index(N, 0), Low(N, 0), SccStack;
    std::vector<uint8_t> OnStack(N, 0);
    struct Frame {
      uint32_t Node;
      uint32_t NextEdge;
    };
    std::vector<Frame> Stack;
    uint32_t NextIndex = 1;
    for (uint32_t Root = 0; Root != N; ++Root) {
      if (Index[Root])
        continue;
      Index[Root] = Low[Root] = NextIndex++;
      OnStack[Root] = 1;
      SccStack.push_back(Root);
      Stack.push_back({Root, 0});
      while (!Stack.empty()) {
        Frame &F = Stack.back();
        uint32_t U = F.Node;
        if (F.NextEdge < Flows[U].size()) {
          const Edge &E = Flows[U][F.NextEdge++];
          if (E.Kind != EdgeKind::Direct)
            continue;
          uint32_t V = E.Node;
          if (!Index[V]) {
            Index[V] = Low[V] = NextIndex++;
            OnStack[V] = 1;
            SccStack.push_back(V);
            Stack.push_back({V, 0});
          } else if (OnStack[V]) {
            Low[U] = std::min(Low[U], Index[V]);
          }
          continue;
        }
        Stack.pop_back();
        if (!Stack.empty())
          Low[Stack.back().Node] = std::min(Low[Stack.back().Node], Low[U]);
        if (Low[U] == Index[U]) {
          while (true) {
            uint32_t M = SccStack.back();
            SccStack.pop_back();
            OnStack[M] = 0;
            Rep[M] = U;
            if (M == U)
              break;
          }
        }
      }
    }
  }

  // Members per representative (a component reached in any context marks
  // every member bottom), and the condensed labeled adjacency:
  // intra-component Direct flows vanish, Call/Ret flows survive even as
  // self-loops — they transform the context.
  std::vector<std::vector<uint32_t>> Members(N);
  for (uint32_t Id = 0; Id != N; ++Id)
    Members[Rep[Id]].push_back(Id);

  struct CondensedEdge {
    uint32_t Target;
    EdgeKind Kind;
    uint32_t CallSite;
    bool operator<(const CondensedEdge &O) const {
      if (Target != O.Target)
        return Target < O.Target;
      if (Kind != O.Kind)
        return Kind < O.Kind;
      return CallSite < O.CallSite;
    }
    bool operator==(const CondensedEdge &O) const {
      return Target == O.Target && Kind == O.Kind && CallSite == O.CallSite;
    }
  };
  std::vector<std::vector<CondensedEdge>> RepFlows(N);
  for (uint32_t S = 0; S != N; ++S) {
    for (const Edge &E : Flows[S]) {
      uint32_t RS = Rep[S], RT = Rep[E.Node];
      if (E.Kind == EdgeKind::Direct && RS == RT)
        continue;
      RepFlows[RS].push_back({RT, E.Kind, E.CallSite});
    }
  }
  for (auto &Out : RepFlows) {
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  }

  // Per-representative set of contexts already explored; capped to bound
  // state explosion — on overflow the component saturates to the
  // universal (empty) context, which over-approximates every other
  // context.
  constexpr size_t MaxContextsPerRep = Definedness::MaxContextsPerRep;
  std::vector<std::unordered_set<uint64_t>> Seen(N);
  std::vector<uint8_t> Saturated(N, 0);

  struct State {
    uint32_t Rep;
    Context Ctx;
  };
  std::vector<State> Work;

  auto Reach = [&](uint32_t Node, Context Ctx) {
    uint32_t R = Rep[Node];
    if (Saturated[R])
      return;
    if (Seen[R].empty())
      for (uint32_t M : Members[R])
        Bottom.set(M);
    if (Seen[R].size() >= MaxContextsPerRep) {
      Saturated[R] = 1;
      Ctx = Context::empty();
      if (!Seen[R].insert(Ctx.raw()).second)
        return;
    } else if (!Seen[R].insert(Ctx.raw()).second) {
      return;
    }
    Work.push_back({R, Ctx});
  };

  if (Opts.Seeds) {
    for (uint32_t S : *Opts.Seeds)
      Reach(S, Context::empty());
  } else {
    Reach(VFG::RootF, Context::empty());
  }
  if (!Opts.AddressTakenAware) {
    // The top-level-only variant does not reason about memory: every
    // address-taken definition may hold an undefined value.
    for (uint32_t Id = 2; Id != N; ++Id)
      if (G.node(Id).Key.Sp == ssa::Space::Memory)
        Reach(Id, Context::empty());
  }

  // Undefinedness flows from the depended-on component to its users.
  while (!Work.empty()) {
    if (B && !B->step()) {
      Pessimize();
      return;
    }
    State S = Work.back();
    Work.pop_back();
    for (const CondensedEdge &E : RepFlows[S.Rep]) {
      switch (E.Kind) {
      case EdgeKind::Direct:
        Reach(E.Target, S.Ctx);
        break;
      case EdgeKind::Call:
        Reach(E.Target, K == 0 ? S.Ctx : S.Ctx.pushed(E.CallSite, K));
        break;
      case EdgeKind::Ret: {
        if (K == 0) {
          Reach(E.Target, S.Ctx);
          break;
        }
        Context Out = Context::empty();
        if (S.Ctx.popped(E.CallSite, Out))
          Reach(E.Target, Out);
        break;
      }
      }
    }
  }
}

BitSet core::computeCheckReaching(const VFG &G, const Definedness &Gamma,
                                  ThreadPool *Pool) {
  BitSet Reaching(G.numNodes());
  BitSet Frontier(G.numNodes());
  BitSet Fresh(G.numNodes());
  for (const VFG::CriticalUse &Use : G.criticalUses())
    if (Gamma.mayBeUndefined(Use.Node))
      Frontier.set(Use.Node);
  // Level-synchronous backward sweep over the dependency edges. Each round
  // folds the frontier into the result with the word-sparse merge — Fresh
  // receives exactly the nodes not seen before — and only those expand
  // into the next frontier. The set-bit iterator skips zero words, so the
  // typically-sparse frontiers cost one load per word plus one ctz per
  // member.
  //
  // Levels big enough to be worth it expand partition-parallel: workers
  // fill private frontier bitsets from disjoint slices of the level, and
  // the slices are unioned after the join. Union is commutative and
  // Reaching is frozen during the expansion, so each round's frontier —
  // and therefore the fixpoint — is byte-identical to the serial sweep.
  constexpr size_t MinParallelLevel = 128;
  std::vector<uint32_t> Level;
  while (true) {
    Fresh.clearAll();
    if (!Reaching.orWithMissingInto(Frontier, Fresh))
      break;
    Frontier.clearAll();
    if (!Pool || Pool->numThreads() <= 1) {
      for (size_t Node : Fresh)
        for (const Edge &E : G.deps(static_cast<uint32_t>(Node)))
          if (!G.isRoot(E.Node) && !Reaching.test(E.Node))
            Frontier.set(E.Node);
      continue;
    }
    Level.clear();
    Fresh.forEach([&](size_t Node) {
      Level.push_back(static_cast<uint32_t>(Node));
    });
    if (Level.size() < MinParallelLevel) {
      for (uint32_t Node : Level)
        for (const Edge &E : G.deps(Node))
          if (!G.isRoot(E.Node) && !Reaching.test(E.Node))
            Frontier.set(E.Node);
      continue;
    }
    size_t NumChunks =
        std::min<size_t>(Pool->numThreads() * 4,
                         (Level.size() + MinParallelLevel - 1) /
                             MinParallelLevel);
    size_t ChunkSize = (Level.size() + NumChunks - 1) / NumChunks;
    std::vector<BitSet> Parts = parallelMapOrdered(
        Pool, NumChunks, [&](size_t C) {
          BitSet Part(G.numNodes());
          size_t Begin = C * ChunkSize;
          size_t End = std::min(Begin + ChunkSize, Level.size());
          for (size_t I = Begin; I != End; ++I)
            for (const Edge &E : G.deps(Level[I]))
              if (!G.isRoot(E.Node) && !Reaching.test(E.Node))
                Part.set(E.Node);
          return Part;
        });
    for (const BitSet &Part : Parts)
      Frontier.unionWith(Part);
  }
  return Reaching;
}
