//===- core/Definedness.cpp - Definedness resolution -----------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "core/Definedness.h"

#include "support/Budget.h"

#include <cassert>
#include <unordered_set>

using namespace usher;
using namespace usher::core;
using vfg::Edge;
using vfg::EdgeKind;
using vfg::VFG;

namespace {

/// A k-bounded stack of unmatched call sites, encoded in 64 bits.
/// Layout: bits 48..49 count, bits 24..47 the site below the top,
/// bits 0..23 the top site. Site ids are instruction ids (< 2^24).
class Context {
public:
  static Context empty() { return Context(0); }

  uint64_t raw() const { return Bits; }

  Context pushed(uint32_t Site, unsigned K) const {
    assert(Site < (1u << 24) && "call-site id exceeds encoding width");
    unsigned Count = count();
    if (K == 0)
      return *this;
    if (Count == 0)
      return make(1, 0, Site);
    if (Count == 1 && K >= 2)
      return make(2, top(), Site);
    if (K == 1)
      return make(1, 0, Site);
    // Count == 2 (== K): drop the bottom entry.
    return make(2, top(), Site);
  }

  /// Attempts to match a return at \p Site. Returns false if the flow is
  /// unrealizable (a pending call from a different site is on top).
  bool popped(uint32_t Site, Context &Out) const {
    unsigned Count = count();
    if (Count == 0) {
      // No pending call is remembered: the undefined value originated
      // inside the callee (or deeper than the k window); exiting through
      // any site is realizable.
      Out = *this;
      return true;
    }
    if (top() != Site)
      return false;
    if (Count == 1)
      Out = Context(0);
    else
      Out = make(1, 0, below());
    return true;
  }

private:
  explicit Context(uint64_t Bits) : Bits(Bits) {}
  static Context make(unsigned Count, uint32_t Below, uint32_t Top) {
    return Context((static_cast<uint64_t>(Count) << 48) |
                   (static_cast<uint64_t>(Below) << 24) | Top);
  }
  unsigned count() const { return static_cast<unsigned>(Bits >> 48); }
  uint32_t top() const { return static_cast<uint32_t>(Bits & 0xFFFFFF); }
  uint32_t below() const {
    return static_cast<uint32_t>((Bits >> 24) & 0xFFFFFF);
  }

  uint64_t Bits;
};

} // namespace

Definedness::Definedness(
    const VFG &G, DefinednessOptions Opts,
    const std::unordered_map<uint32_t, std::vector<Edge>> *Redirects,
    Budget *B) {
  const unsigned K = Opts.ContextK;
  const uint32_t N = G.numNodes();
  Bottom.resize(N);

  // On budget exhaustion the worklist is abandoned mid-flight, so the
  // reachability result is incomplete. Completing it pessimistically keeps
  // the answer sound: mark bottom every node that is not structurally
  // defined, i.e. whose effective dependencies are not all the T root.
  // (Alloc results and constants depend only on RootT and must stay top —
  // the planner asserts they never demand a definition.)
  auto Pessimize = [&] {
    Pessimized = true;
    for (uint32_t Id = 0; Id != N; ++Id) {
      if (G.isRoot(Id))
        continue;
      const std::vector<Edge> *Deps = &G.deps(Id);
      if (Redirects) {
        auto It = Redirects->find(Id);
        if (It != Redirects->end())
          Deps = &It->second;
      }
      bool AllTop = !Deps->empty();
      for (const Edge &E : *Deps) {
        if (E.Node != VFG::RootT) {
          AllTop = false;
          break;
        }
      }
      if (!AllTop)
        Bottom.set(Id);
    }
  };

  if (B && !B->step()) {
    Pessimize();
    return;
  }

  // Per-node set of contexts already explored; capped to bound state
  // explosion — on overflow the node saturates to the universal (empty)
  // context, which over-approximates every other context.
  constexpr size_t MaxContextsPerNode = 64;
  std::vector<std::unordered_set<uint64_t>> Seen(N);
  std::vector<uint8_t> Saturated(N, 0);

  struct State {
    uint32_t Node;
    Context Ctx;
  };
  std::vector<State> Work;

  auto Reach = [&](uint32_t Node, Context Ctx) {
    if (Saturated[Node])
      return;
    if (Seen[Node].size() >= MaxContextsPerNode) {
      Saturated[Node] = 1;
      Ctx = Context::empty();
      if (!Seen[Node].insert(Ctx.raw()).second)
        return;
    } else if (!Seen[Node].insert(Ctx.raw()).second) {
      return;
    }
    Bottom.set(Node);
    Work.push_back({Node, Ctx});
  };

  Reach(VFG::RootF, Context::empty());
  if (!Opts.AddressTakenAware) {
    // The top-level-only variant does not reason about memory: every
    // address-taken definition may hold an undefined value.
    for (uint32_t Id = 2; Id != N; ++Id)
      if (G.node(Id).Key.Sp == ssa::Space::Memory)
        Reach(Id, Context::empty());
  }

  // The user lists record, for each edge (User depends on Node), the same
  // kind/site label as the dependency edge; undefinedness flows from the
  // depended-on node to the user.
  while (!Work.empty()) {
    if (B && !B->step()) {
      Pessimize();
      return;
    }
    State S = Work.back();
    Work.pop_back();
    // A redirected node's dependencies changed; flows *out of* it are
    // unaffected, but flows into users that no longer depend on it must
    // be suppressed.
    for (const Edge &E : G.users(S.Node)) {
      if (Redirects) {
        auto It = Redirects->find(E.Node);
        if (It != Redirects->end()) {
          bool StillDepends = false;
          for (const Edge &D : It->second) {
            if (D.Node == S.Node && D.Kind == E.Kind &&
                D.CallSite == E.CallSite) {
              StillDepends = true;
              break;
            }
          }
          if (!StillDepends)
            continue;
        }
      }
      switch (E.Kind) {
      case EdgeKind::Direct:
        Reach(E.Node, S.Ctx);
        break;
      case EdgeKind::Call:
        Reach(E.Node, K == 0 ? S.Ctx : S.Ctx.pushed(E.CallSite, K));
        break;
      case EdgeKind::Ret: {
        if (K == 0) {
          Reach(E.Node, S.Ctx);
          break;
        }
        Context Out = Context::empty();
        if (S.Ctx.popped(E.CallSite, Out))
          Reach(E.Node, Out);
        break;
      }
      }
    }
  }
}

BitSet core::computeCheckReaching(const VFG &G, const Definedness &Gamma) {
  BitSet Reaching(G.numNodes());
  std::vector<uint32_t> Work;
  for (const VFG::CriticalUse &Use : G.criticalUses()) {
    if (!Gamma.mayBeUndefined(Use.Node))
      continue;
    if (Reaching.set(Use.Node))
      Work.push_back(Use.Node);
  }
  while (!Work.empty()) {
    uint32_t Node = Work.back();
    Work.pop_back();
    for (const Edge &E : G.deps(Node))
      if (!G.isRoot(E.Node) && Reaching.set(E.Node))
        Work.push_back(E.Node);
  }
  return Reaching;
}
