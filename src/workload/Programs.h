//===- workload/Programs.h - Benchmark program sources ----------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TinyC sources of the 15 SPEC CPU2000-like benchmarks, one per
/// translation unit under programs/. See Spec2000.h for the rationale.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_WORKLOAD_PROGRAMS_H
#define USHER_WORKLOAD_PROGRAMS_H

namespace usher {
namespace workload {

extern const char *kSource164Gzip;
extern const char *kSource175Vpr;
extern const char *kSource176Gcc;
extern const char *kSource177Mesa;
extern const char *kSource179Art;
extern const char *kSource181Mcf;
extern const char *kSource183Equake;
extern const char *kSource186Crafty;
extern const char *kSource188Ammp;
extern const char *kSource197Parser;
extern const char *kSource253Perlbmk;
extern const char *kSource254Gap;
extern const char *kSource255Vortex;
extern const char *kSource256Bzip2;
extern const char *kSource300Twolf;

} // namespace workload
} // namespace usher

#endif // USHER_WORKLOAD_PROGRAMS_H
