//===- workload/programs/Vortex.cpp - 255.vortex-like workload -------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 255.vortex: an object-oriented database. Records live in hash
/// buckets chained through pointer fields; the workload interleaves
/// inserts, lookups, and record-to-record field copies. Store-dominated
/// with long pointer chains and a large global root table.
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource255Vortex = R"TINYC(
// 255.vortex: hashed object store with chained records.
// Record layout: [0]=key, [1]=payload a, [2]=payload b, [3]=next ptr.
global buckets[32] init;
global dbsize[1] init;

func newrecord() {
  p = alloc heap 4 uninit;
  ret p;
}

// Inserts key with payloads; returns the record.
func insert(key, a, b) {
  r = newrecord();
  f0 = gep r, 0;
  *f0 = key;
  f1 = gep r, 1;
  *f1 = a;
  f2 = gep r, 2;
  *f2 = b;
  slot = key & 31;
  pb = gep buckets, slot;
  head = *pb;
  f3 = gep r, 3;
  *f3 = head;
  *pb = r;
  pd = gep dbsize, 0;
  n = *pd;
  n = n + 1;
  *pd = n;
  ret r;
}

// Returns payload a of the first record with this key, or -1.
func lookup(key) {
  slot = key & 31;
  pb = gep buckets, slot;
  cur = *pb;
lhead:
  if cur goto lbody;
  ret -1;
lbody:
  pk = gep cur, 0;
  k = *pk;
  hit = k == key;
  if hit goto found;
  pn = gep cur, 3;
  cur = *pn;
  goto lhead;
found:
  pa = gep cur, 1;
  a = *pa;
  ret a;
}

// Copies payloads from the record of src to the record of dst (if both
// exist); returns 1 on success.
func update(dstkey, srckey) {
  sslot = srckey & 31;
  psb = gep buckets, sslot;
  scur = *psb;
ushead:
  if scur goto uscheck;
  ret 0;
uscheck:
  psk = gep scur, 0;
  sk = *psk;
  shit = sk == srckey;
  if shit goto findd;
  psn = gep scur, 3;
  scur = *psn;
  goto ushead;
findd:
  dslot = dstkey & 31;
  pdb = gep buckets, dslot;
  dcur = *pdb;
udhead:
  if dcur goto udcheck;
  ret 0;
udcheck:
  pdk = gep dcur, 0;
  dk = *pdk;
  dhit = dk == dstkey;
  if dhit goto copyit;
  pdn = gep dcur, 3;
  dcur = *pdn;
  goto udhead;
copyit:
  // Generic attribute access: the payload field index is data-dependent,
  // like vortex's schema-driven field dereferences.
  fidx = srckey & 1;
  fidx = fidx + 1;
  psa = gep scur, fidx;
  sa = *psa;
  pda = gep dcur, fidx;
  *pda = sa;
  psb2 = gep scur, 2;
  sb = *psb2;
  pdb2 = gep dcur, 2;
  *pdb2 = sb;
  ret 1;
}

func main() {
  seed = 71;
  i = 0;
  acc = 0;
ihead:
  c = i < 700;
  if c goto ibody;
  goto query;
ibody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  key = seed >> 16;
  key = key & 1023;
  a = key * 3;
  b = i;
  r = insert(key, a, b);
  i = i + 1;
  goto ihead;
query:
  q = 0;
  hits = 0;
qhead:
  c2 = q < 4000;
  if c2 goto qbody;
  goto updates;
qbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  key2 = seed >> 16;
  key2 = key2 & 1023;
  v = lookup(key2);
  miss = v == -1;
  if miss goto qnext;
  hits = hits + 1;
  acc = acc * 3;
  acc = acc + v;
  acc = acc & 1048575;
qnext:
  q = q + 1;
  goto qhead;
updates:
  u = 0;
  good = 0;
uhead:
  c3 = u < 1500;
  if c3 goto ubody;
  goto report;
ubody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  k1 = seed >> 16;
  k1 = k1 & 1023;
  seed = seed * 1103515245;
  seed = seed + 12345;
  k2 = seed >> 16;
  k2 = k2 & 1023;
  ok = update(k1, k2);
  good = good + ok;
  u = u + 1;
  goto uhead;
report:
  pd = gep dbsize, 0;
  n = *pd;
  acc = acc + n;
  acc = acc + hits;
  acc = acc + good;
  acc = acc & 1048575;
  ret acc;
}
)TINYC";
