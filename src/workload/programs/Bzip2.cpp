//===- workload/programs/Bzip2.cpp - 256.bzip2-like workload ---------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 256.bzip2: block transform by counting sort plus run-length
/// statistics, repeated over blocks. Array-heavy with write-before-read
/// workspaces (count tables zeroed each block).
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource256Bzip2 = R"TINYC(
// 256.bzip2: counting sort + run statistics per block.
global blocks[1] init;

// Counting sort of src[0..n) (values in [0,64)) into dst using counts.
func csort(src, dst, counts, n) {
  i = 0;
czero:
  c = i < 64;
  if c goto czbody;
  goto ccount;
czbody:
  p = gep counts, i;
  *p = 0;
  i = i + 1;
  goto czero;
ccount:
  j = 0;
cchead:
  c2 = j < n;
  if c2 goto ccbody;
  goto cprefix;
ccbody:
  ps = gep src, j;
  v = *ps;
  pc = gep counts, v;
  k = *pc;
  k = k + 1;
  *pc = k;
  j = j + 1;
  goto cchead;
cprefix:
  run = 0;
  m = 0;
cphead:
  c3 = m < 64;
  if c3 goto cpbody;
  goto cplace;
cpbody:
  pm = gep counts, m;
  cnt = *pm;
  *pm = run;
  run = run + cnt;
  m = m + 1;
  goto cphead;
cplace:
  j2 = 0;
plhead:
  c4 = j2 < n;
  if c4 goto plbody;
  ret 0;
plbody:
  ps2 = gep src, j2;
  v2 = *ps2;
  pc2 = gep counts, v2;
  pos = *pc2;
  pd = gep dst, pos;
  *pd = v2;
  pos = pos + 1;
  *pc2 = pos;
  j2 = j2 + 1;
  goto plhead;
}

// Number of runs in sorted data (compression potential metric).
func runs(dst, n) {
  nruns = 0;
  prev = -1;
  i = 0;
rhead:
  c = i < n;
  if c goto rbody;
  ret nruns;
rbody:
  p = gep dst, i;
  v = *p;
  same = v == prev;
  if same goto rnext;
  nruns = nruns + 1;
  prev = v;
rnext:
  i = i + 1;
  goto rhead;
}

func main() {
  n = 256;
  src = alloc heap 256 uninit array;
  dst = alloc heap 256 uninit array;
  counts = alloc heap 64 uninit array;
  seed = 73;
  block = 0;
  acc = 0;
bhead:
  c = block < 520;
  if c goto bbody;
  goto bdone;
bbody:
  i = 0;
fhead:
  c2 = i < n;
  if c2 goto fbody;
  goto dosort;
fbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  r = seed >> 16;
  r = r & 63;
  p = gep src, i;
  *p = r;
  i = i + 1;
  goto fhead;
dosort:
  t = csort(src, dst, counts, n);
  nr = runs(dst, n);
  p0 = gep dst, 0;
  first = *p0;
  acc = acc * 3;
  acc = acc + nr;
  acc = acc + first;
  acc = acc & 1048575;
  block = block + 1;
  goto bhead;
bdone:
  *blocks = block;
  bl = *blocks;
  acc = acc + bl;
  acc = acc & 1048575;
  ret acc;
}
)TINYC";
