//===- workload/programs/Art.cpp - 179.art-like workload -------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 179.art: an adaptive-resonance-style classifier. Each epoch
/// computes the dot product of an input vector with every category's
/// weight row, picks the winner and nudges its weights toward the input.
/// Weight and input arrays dominate; everything is initialized up front.
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource179Art = R"TINYC(
// 179.art: winner-take-all classification over fixed-point weight rows.
global winnerhist[8] init;

func dot(w, base, x, n) {
  s = 0;
  i = 0;
dhead:
  c = i < n;
  if c goto dbody;
  ret s;
dbody:
  idx = base + i;
  pw = gep w, idx;
  wv = *pw;
  px = gep x, i;
  xv = *px;
  t = wv * xv;
  t = t >> 6;
  s = s + t;
  i = i + 1;
  goto dhead;
}

func main() {
  ncat = 8;
  dim = 32;
  wsize = 256;
  w = alloc heap 256 init array;
  i = 0;
whead:
  c = i < wsize;
  if c goto wbody;
  goto train;
wbody:
  v = i * 29;
  v = v + 3;
  v = v & 127;
  p = gep w, i;
  *p = v;
  i = i + 1;
  goto whead;
train:
  x = alloc stack 32 uninit array;
  seed = 11;
  epoch = 0;
  acc = 0;
ehead:
  c2 = epoch < 900;
  if c2 goto ebody;
  goto edone;
ebody:
  k = 0;
xfill:
  c3 = k < dim;
  if c3 goto xbody;
  goto classify;
xbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  r = seed >> 16;
  r = r & 127;
  pk = gep x, k;
  *pk = r;
  k = k + 1;
  goto xfill;
classify:
  bestcat = 0;
  bestscore = 0;
  cat = 0;
chead:
  c4 = cat < ncat;
  if c4 goto cbody;
  goto adapt;
cbody:
  base = cat * dim;
  s = dot(w, base, x, dim);
  better = bestscore < s;
  if better goto newbest;
  goto cnext;
newbest:
  bestscore = s;
  bestcat = cat;
cnext:
  cat = cat + 1;
  goto chead;
adapt:
  ph = gep winnerhist, bestcat;
  h = *ph;
  h = h + 1;
  *ph = h;
  j = 0;
  wbase = bestcat * dim;
ahead:
  c5 = j < dim;
  if c5 goto abody;
  goto enext;
abody:
  idx2 = wbase + j;
  pw2 = gep w, idx2;
  wv = *pw2;
  px2 = gep x, j;
  xv = *px2;
  d = xv - wv;
  d = d / 8;
  wv = wv + d;
  *pw2 = wv;
  j = j + 1;
  goto ahead;
enext:
  acc = acc * 3;
  acc = acc + bestscore;
  acc = acc + bestcat;
  acc = acc & 1048575;
  epoch = epoch + 1;
  goto ehead;
edone:
  p0 = gep winnerhist, 0;
  h0 = *p0;
  acc = acc + h0;
  acc = acc & 1048575;
  ret acc;
}
)TINYC";
