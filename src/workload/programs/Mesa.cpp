//===- workload/programs/Mesa.cpp - 177.mesa-like workload -----------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 177.mesa: a fixed-point geometry pipeline transforming vertex
/// streams through a 4x4 matrix, with clipping decisions on the results.
/// Pure array number-crunching with dynamic indexing.
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource177Mesa = R"TINYC(
// 177.mesa: fixed-point 4x4 vertex transform + trivial clip test.
global clipped[1] init;

// out[0..4) = m (4x4, row major) * in[0..4), in Q8 fixed point.
func xform(m, vin, vout) {
  row = 0;
xhead:
  c = row < 4;
  if c goto xrow;
  ret 0;
xrow:
  sum = 0;
  col = 0;
xcol:
  c2 = col < 4;
  if c2 goto xmadd;
  goto xstore;
xmadd:
  idx = row * 4;
  idx = idx + col;
  pm = gep m, idx;
  mv = *pm;
  pi = gep vin, col;
  iv = *pi;
  t = mv * iv;
  t = t >> 8;
  sum = sum + t;
  col = col + 1;
  goto xcol;
xstore:
  po = gep vout, row;
  *po = sum;
  row = row + 1;
  goto xhead;
}

func main() {
  m = alloc heap 16 init array;
  i = 0;
mhead:
  c = i < 16;
  if c goto mbody;
  goto verts;
mbody:
  v = i * 13;
  v = v + 7;
  v = v & 511;
  p = gep m, i;
  *p = v;
  i = i + 1;
  goto mhead;
verts:
  vin = alloc stack 4 init array;
  vout = alloc stack 4 uninit array;
  seed = 5;
  n = 0;
  acc = 0;
  nclip = 0;
vhead:
  c2 = n < 9000;
  if c2 goto vbody;
  goto vdone;
vbody:
  k = 0;
fillv:
  c3 = k < 4;
  if c3 goto fbody;
  goto doxform;
fbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  r = seed >> 16;
  r = r & 1023;
  pk = gep vin, k;
  *pk = r;
  k = k + 1;
  goto fillv;
doxform:
  t = xform(m, vin, vout);
  pw = gep vout, 3;
  w = *pw;
  big = 200000 < w;
  if big goto clip;
  px = gep vout, 0;
  x = *px;
  acc = acc * 3;
  acc = acc + x;
  acc = acc & 1048575;
  goto vnext;
clip:
  nclip = nclip + 1;
vnext:
  n = n + 1;
  goto vhead;
vdone:
  *clipped = nclip;
  cl = *clipped;
  acc = acc + cl;
  acc = acc & 1048575;
  ret acc;
}
)TINYC";
