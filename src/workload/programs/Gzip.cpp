//===- workload/programs/Gzip.cpp - 164.gzip-like workload -----------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 164.gzip: LZ77-style longest-match search over a sliding
/// window. Dominated by byte-array loads with dynamic indices; the input
/// buffer is allocated uninitialized and filled by a PRNG, so its contents
/// are only *dynamically* defined (arrays collapse to weak updates, which
/// keeps the value-flow analysis honest).
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource164Gzip = R"TINYC(
// 164.gzip: sliding-window match finder + match-length output stream.
global crc[1] init;

// Fill buf[0..n) with pseudo-random bytes; returns the final seed.
func fill(buf, n, seed) {
  i = 0;
fhead:
  c = i < n;
  if c goto fbody;
  ret seed;
fbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  r = seed >> 16;
  r = r & 255;
  p = gep buf, i;
  *p = r;
  i = i + 1;
  goto fhead;
}

// Length of the common prefix of buf[a..] and buf[b..], capped at max.
func matchlen(buf, a, b, max) {
  len = 0;
mhead:
  c = len < max;
  if c goto mchk;
  ret len;
mchk:
  ia = a + len;
  ib = b + len;
  pa = gep buf, ia;
  pb = gep buf, ib;
  va = *pa;
  vb = *pb;
  eq = va == vb;
  if eq goto mcont;
  ret len;
mcont:
  len = len + 1;
  goto mhead;
}

func main() {
  n = 420;
  buf = alloc heap 420 uninit array;
  s = fill(buf, n, 42);
  out = alloc heap 420 uninit array;
  outn = 0;
  i = 48;
  limit = n - 8;
zhead:
  c = i < limit;
  if c goto zscan;
  goto zfinish;
zscan:
  best = 0;
  j = i - 48;
shead:
  c2 = j < i;
  if c2 goto stry;
  goto sdone;
stry:
  l = matchlen(buf, j, i, 8);
  c4 = best < l;
  if c4 goto supd;
  goto snext;
supd:
  best = l;
snext:
  j = j + 1;
  goto shead;
sdone:
  po = gep out, outn;
  *po = best;
  outn = outn + 1;
  c5 = best < 2;
  if c5 goto zstep;
  i = i + best;
  goto zhead;
zstep:
  i = i + 1;
  goto zhead;
zfinish:
  k = 0;
  sum = s & 255;
chead:
  c6 = k < outn;
  if c6 goto cbody;
  goto call_done;
cbody:
  pk = gep out, k;
  v = *pk;
  sum = sum * 3;
  sum = sum + v;
  sum = sum & 1048575;
  k = k + 1;
  goto chead;
call_done:
  *crc = sum;
  r = *crc;
  ret r;
}
)TINYC";
