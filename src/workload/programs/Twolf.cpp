//===- workload/programs/Twolf.cpp - 300.twolf-like workload ---------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 300.twolf: standard-cell placement by simulated annealing
/// over 2D coordinates with wirelength cost across a netlist. Mixed
/// array traffic (coordinates, netlist) with accept/reject branching.
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource300Twolf = R"TINYC(
// 300.twolf: annealing of 2D cell positions against a two-pin netlist.
global temperature[1] init;

// Half-perimeter wirelength of one net (two pins).
func netcost(xs, ys, a, b) {
  pa = gep xs, a;
  xa = *pa;
  pb = gep xs, b;
  xb = *pb;
  dx = xa - xb;
  neg = dx < 0;
  if neg goto flipx;
  goto ydist;
flipx:
  dx = 0 - dx;
ydist:
  qa = gep ys, a;
  ya = *qa;
  qb = gep ys, b;
  yb = *qb;
  dy = ya - yb;
  neg2 = dy < 0;
  if neg2 goto flipy;
  goto total;
flipy:
  dy = 0 - dy;
total:
  d = dx + dy;
  ret d;
}

// Total cost of all nets touching the given cell.
func cellcost(xs, ys, nets, nnets, cell) {
  cost = 0;
  i = 0;
chead:
  c = i < nnets;
  if c goto cbody;
  ret cost;
cbody:
  i2 = i * 2;
  pa = gep nets, i2;
  a = *pa;
  i21 = i2 + 1;
  pb = gep nets, i21;
  b = *pb;
  hita = a == cell;
  if hita goto add;
  hitb = b == cell;
  if hitb goto add;
  goto cnext;
add:
  d = netcost(xs, ys, a, b);
  cost = cost + d;
cnext:
  i = i + 1;
  goto chead;
}

func main() {
  ncells = 48;
  nnets = 64;
  xs = alloc heap 48 uninit array;
  ys = alloc heap 48 uninit array;
  nets = alloc heap 128 init array;
  i = 0;
phead:
  c = i < ncells;
  if c goto pbody;
  goto mknets;
pbody:
  x = i * 19;
  x = x & 63;
  px = gep xs, i;
  *px = x;
  y = i * 7;
  y = y & 63;
  py = gep ys, i;
  *py = y;
  i = i + 1;
  goto phead;
mknets:
  seed = 79;
  k = 0;
nhead:
  c2 = k < 128;
  if c2 goto nbody;
  goto anneal;
nbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  cell = seed >> 16;
  cell = cell % 48;
  pn = gep nets, k;
  *pn = cell;
  k = k + 1;
  goto nhead;
anneal:
  temp = 64;
  move = 0;
  accepted = 0;
mhead:
  c3 = move < 2600;
  if c3 goto mbody;
  goto report;
mbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  cell2 = seed >> 16;
  cell2 = cell2 % 48;
  seed = seed * 1103515245;
  seed = seed + 12345;
  nx = seed >> 16;
  nx = nx & 63;
  seed = seed * 1103515245;
  seed = seed + 12345;
  ny = seed >> 16;
  ny = ny & 63;
  before = cellcost(xs, ys, nets, nnets, cell2);
  px2 = gep xs, cell2;
  ox = *px2;
  py2 = gep ys, cell2;
  oy = *py2;
  *px2 = nx;
  *py2 = ny;
  after = cellcost(xs, ys, nets, nnets, cell2);
  delta = after - before;
  improve = delta < 0;
  if improve goto accept;
  lucky = delta < temp;
  if lucky goto accept;
  *px2 = ox;
  *py2 = oy;
  goto mnext;
accept:
  accepted = accepted + 1;
mnext:
  cool = move & 255;
  notzero = cool == 0;
  if notzero goto docool;
  goto mstep;
docool:
  hot = 1 < temp;
  if hot goto shrink;
  goto mstep;
shrink:
  temp = temp - 1;
mstep:
  move = move + 1;
  goto mhead;
report:
  *temperature = temp;
  fin = *temperature;
  total = 0;
  j = 0;
thead:
  c4 = j < nnets;
  if c4 goto tbody;
  goto done;
tbody:
  j2 = j * 2;
  pa2 = gep nets, j2;
  a2 = *pa2;
  j21 = j2 + 1;
  pb2 = gep nets, j21;
  b2 = *pb2;
  d2 = netcost(xs, ys, a2, b2);
  total = total * 3;
  total = total + d2;
  total = total & 1048575;
  j = j + 1;
  goto thead;
done:
  total = total + fin;
  total = total + accepted;
  total = total & 1048575;
  ret total;
}
)TINYC";
