//===- workload/programs/Gcc.cpp - 176.gcc-like workload -------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 176.gcc: building, constant-folding and evaluating expression
/// trees. Heap tree nodes come from an allocation-wrapper (newnode), the
/// call graph is wide and shallow, and dispatch runs through opcode
/// if-chains — the paper's gcc is dominated by exactly this kind of
/// pointer-rich, call-heavy churn.
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource176Gcc = R"TINYC(
// 176.gcc: expression tree construction, folding and evaluation.
// Node layout: [0]=op (0=num,1=add,2=mul,3=sub), [1]=value, [2]=left,
// [3]=right.
global foldstat[2] init;

// Allocation wrapper (heap cloning applies here).
func newnode() {
  p = alloc heap 4 uninit;
  ret p;
}

func mknum(v) {
  p = newnode();
  op = gep p, 0;
  *op = 0;
  val = gep p, 1;
  *val = v;
  ret p;
}

func mkbin(op, l, r) {
  p = newnode();
  f0 = gep p, 0;
  *f0 = op;
  f2 = gep p, 2;
  *f2 = l;
  f3 = gep p, 3;
  *f3 = r;
  // Constant folding: if both children are numbers, fold in place.
  lo = gep l, 0;
  lop = *lo;
  ro = gep r, 0;
  rop = *ro;
  ln = lop == 0;
  if ln goto checkr;
  ret p;
checkr:
  rn = rop == 0;
  if rn goto dofold;
  ret p;
dofold:
  lv = gep l, 1;
  a = *lv;
  rv = gep r, 1;
  b = *rv;
  isadd = op == 1;
  if isadd goto fadd;
  ismul = op == 2;
  if ismul goto fmul;
  res = a - b;
  goto folded;
fadd:
  res = a + b;
  goto folded;
fmul:
  res = a * b;
  res = res & 65535;
folded:
  *f0 = 0;
  f1 = gep p, 1;
  *f1 = res;
  pf = gep foldstat, 0;
  fc = *pf;
  fc = fc + 1;
  *pf = fc;
  ret p;
}

// Iterative evaluation using an explicit node stack (post-order via a
// second pass is avoided: folded trees are at most depth 3 here).
func eval(p) {
  o = gep p, 0;
  op = *o;
  isnum = op == 0;
  if isnum goto num;
  l = gep p, 2;
  lp = *l;
  r = gep p, 3;
  rp = *r;
  a = eval(lp);
  b = eval(rp);
  isadd = op == 1;
  if isadd goto eadd;
  ismul = op == 2;
  if ismul goto emul;
  v = a - b;
  ret v;
eadd:
  v = a + b;
  ret v;
emul:
  v = a * b;
  v = v & 65535;
  ret v;
num:
  vptr = gep p, 1;
  v = *vptr;
  ret v;
}

func main() {
  seed = 99;
  stmt = 0;
  acc = 0;
ghead:
  c = stmt < 9000;
  if c goto gbody;
  goto gdone;
gbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  r1 = seed >> 16;
  r1 = r1 & 255;
  seed = seed * 1103515245;
  seed = seed + 12345;
  r2 = seed >> 16;
  r2 = r2 & 255;
  seed = seed * 1103515245;
  seed = seed + 12345;
  opsel = seed >> 16;
  opsel = opsel & 3;
  iszero = opsel == 0;
  if iszero goto fixop;
  goto haveop;
fixop:
  opsel = 1;
haveop:
  n1 = mknum(r1);
  n2 = mknum(r2);
  t1 = mkbin(opsel, n1, n2);
  n3 = mknum(stmt);
  t2 = mkbin(1, t1, n3);
  v = eval(t2);
  acc = acc * 7;
  acc = acc + v;
  acc = acc & 1048575;
  stmt = stmt + 1;
  goto ghead;
gdone:
  pf = gep foldstat, 0;
  folds = *pf;
  acc = acc + folds;
  acc = acc & 1048575;
  ret acc;
}
)TINYC";
