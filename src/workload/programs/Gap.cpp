//===- workload/programs/Gap.cpp - 254.gap-like workload -------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 254.gap: computer-algebra big-integer arithmetic. Numbers are
/// digit arrays (base 10000) in wrapper-allocated uninitialized workspace
/// that is zeroed, accumulated into, and normalized. A high fraction of
/// uninitialized allocations with few strong updates — the paper notes gap
/// (49% uninitialized, 16% strong updates) benefits least from the
/// address-taken analysis.
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource254Gap = R"TINYC(
// 254.gap: schoolbook big-number multiply-accumulate chains.
global mulcount[1] init;

// Allocation wrapper for digit workspaces (32 digits, base 10000).
func newnum() {
  p = alloc heap 32 uninit;
  ret p;
}

// dst[0..n) = 0.
func zero(dst, n) {
  i = 0;
zhead:
  c = i < n;
  if c goto zbody;
  ret 0;
zbody:
  p = gep dst, i;
  *p = 0;
  i = i + 1;
  goto zhead;
}

// dst = a * b (n/2-digit inputs, n-digit output), schoolbook.
func mul(dst, a, b, n) {
  half = n / 2;
  t = zero(dst, n);
  i = 0;
mihead:
  c = i < half;
  if c goto mibody;
  goto minorm;
mibody:
  pa = gep a, i;
  av = *pa;
  j = 0;
mjhead:
  c2 = j < half;
  if c2 goto mjbody;
  goto minext;
mjbody:
  pb = gep b, j;
  bv = *pb;
  prod = av * bv;
  k = i + j;
  pd = gep dst, k;
  dv = *pd;
  dv = dv + prod;
  *pd = dv;
  j = j + 1;
  goto mjhead;
minext:
  i = i + 1;
  goto mihead;
minorm:
  // Carry normalization to base 10000.
  carry = 0;
  k2 = 0;
nhead:
  c3 = k2 < n;
  if c3 goto nbody;
  ret carry;
nbody:
  pd2 = gep dst, k2;
  dv2 = *pd2;
  dv2 = dv2 + carry;
  low = dv2 % 10000;
  carry = dv2 / 10000;
  *pd2 = low;
  k2 = k2 + 1;
  goto nhead;
}

// Digest of dst[0..n).
func digest(dst, n, acc) {
  i = 0;
dhead:
  c = i < n;
  if c goto dbody;
  ret acc;
dbody:
  p = gep dst, i;
  v = *p;
  // Sparse digits are skipped: a branch on workspace contents.
  iszero = v == 0;
  if iszero goto dnext;
  acc = acc * 3;
  acc = acc + v;
  acc = acc & 1048575;
dnext:
  i = i + 1;
  goto dhead;
}

func main() {
  n = 32;
  half = 16;
  a = newnum();
  b = newnum();
  seed = 67;
  i = 0;
fhead:
  c = i < half;
  if c goto fbody;
  goto work;
fbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  r = seed >> 16;
  r = r % 10000;
  neg = r < 0;
  if neg goto fixr;
  goto keep;
fixr:
  r = 0 - r;
keep:
  pa = gep a, i;
  *pa = r;
  r2 = r ^ 31;
  r2 = r2 % 10000;
  pb = gep b, i;
  *pb = r2;
  i = i + 1;
  goto fhead;
work:
  acc = 0;
  round = 0;
  nmul = 0;
whead:
  c2 = round < 380;
  if c2 goto wbody;
  goto wdone;
wbody:
  dst = newnum();
  carry = mul(dst, a, b, n);
  acc = digest(dst, n, acc);
  acc = acc + carry;
  acc = acc & 1048575;
  // Feed some result digits back into the inputs.
  p0 = gep dst, 3;
  d3 = *p0;
  pa2 = gep a, 0;
  *pa2 = d3;
  nmul = nmul + 1;
  round = round + 1;
  goto whead;
wdone:
  *mulcount = nmul;
  mc = *mulcount;
  acc = acc + mc;
  acc = acc & 1048575;
  ret acc;
}
)TINYC";
