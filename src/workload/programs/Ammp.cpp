//===- workload/programs/Ammp.cpp - 188.ammp-like workload -----------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 188.ammp: molecular dynamics over particle structs. Particles
/// are wrapper-allocated uninitialized, constructed field by field, and
/// their force field is recomputed (overwritten) every step before use.
/// Heavy on per-object stores — the strong/semi-strong update machinery
/// is what keeps this cheap under Usher.
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource188Ammp = R"TINYC(
// 188.ammp: leapfrog-style particle updates.
// Particle layout: [0]=x, [1]=v, [2]=f, [3]=next pointer.
global energy[1] init;

func newparticle() {
  p = alloc heap 4 uninit;
  ret p;
}

// The force field ([2]) is deliberately left uninitialized: forces()
// recomputes it every step before integrate() reads it, which is correct
// dynamically but impossible to prove with weak array/chain updates —
// the kind of residue real MD codes leave for the analysis.
func mkparticle(head, x0, v0) {
  p = newparticle();
  px = gep p, 0;
  *px = x0;
  pv = gep p, 1;
  *pv = v0;
  pn = gep p, 3;
  *pn = head;
  ret p;
}

// Pairwise-ish force: each particle is pulled toward the chain average.
func forces(head, avg) {
  cur = head;
fhead:
  if cur goto fbody;
  ret 0;
fbody:
  px = gep cur, 0;
  x = *px;
  d = avg - x;
  f = d / 4;
  pf = gep cur, 2;
  *pf = f;
  pn = gep cur, 3;
  cur = *pn;
  goto fhead;
}

func integrate(head) {
  cur = head;
  sum = 0;
ihead:
  if cur goto ibody;
  ret sum;
ibody:
  pf = gep cur, 2;
  f = *pf;
  pv = gep cur, 1;
  v = *pv;
  v = v + f;
  // Velocity clamp: branches on force-derived data every step.
  fast = 900 < v;
  if fast goto slow;
  goto writev;
slow:
  v = 900;
writev:
  *pv = v;
  px = gep cur, 0;
  x = *px;
  x = x + v;
  x = x & 65535;
  *px = x;
  sum = sum + x;
  pn = gep cur, 3;
  cur = *pn;
  goto ihead;
}

func chainavg(head, n) {
  cur = head;
  s = 0;
ahead:
  if cur goto abody;
  goto adone;
abody:
  px = gep cur, 0;
  x = *px;
  s = s + x;
  pn = gep cur, 3;
  cur = *pn;
  goto ahead;
adone:
  zero = n == 0;
  if zero goto retzero;
  a = s / n;
  ret a;
retzero:
  ret 0;
}

func main() {
  seed = 41;
  head = 0;
  i = 0;
  n = 96;
bhead:
  c = i < n;
  if c goto bbody;
  goto simulate;
bbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  x0 = seed >> 16;
  x0 = x0 & 8191;
  seed = seed * 1103515245;
  seed = seed + 12345;
  v0 = seed >> 16;
  v0 = v0 & 63;
  head = mkparticle(head, x0, v0);
  i = i + 1;
  goto bhead;
simulate:
  step = 0;
  acc = 0;
shead:
  c2 = step < 800;
  if c2 goto sbody;
  goto sdone;
sbody:
  avg = chainavg(head, n);
  t = forces(head, avg);
  e = integrate(head);
  acc = acc * 3;
  acc = acc + e;
  acc = acc & 1048575;
  step = step + 1;
  goto shead;
sdone:
  *energy = acc;
  ev = *energy;
  ret ev;
}
)TINYC";
