//===- workload/programs/Parser.cpp - 197.parser-like workload -------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 197.parser: tokenizing a pseudo-random character stream and
/// scoring tokens against a small dictionary. Contains one genuine use of
/// an undefined value in ppmatch() — the paper reports exactly one true
/// bug in 197.parser's ppmatch(), detected by all tools; this reproduces
/// it: `cost` is only assigned on the strict path but branched on
/// unconditionally.
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource197Parser = R"TINYC(
// 197.parser: tokenizer + dictionary scoring, with the ppmatch bug.
global classcounts[4] init;
global dict[64] init;

// Classify a character code: 0 letter, 1 digit, 2 space, 3 punct.
func classify(ch) {
  c = ch & 127;
  isletter = c < 52;
  if isletter goto letter;
  isdigit = c < 72;
  if isdigit goto digit;
  isspace = c < 100;
  if isspace goto space;
  ret 3;
letter:
  ret 0;
digit:
  ret 1;
space:
  ret 2;
}

// Post-processing match cost. BUG (planted, mirroring the real one the
// paper found in 197.parser's ppmatch): `cost` is assigned only on the
// strict path but read on every path.
func ppmatch(tok, strict) {
  base = tok & 63;
  if strict goto setcost;
  goto check;
setcost:
  cost = base & 7;
check:
  high = 4 < cost;
  if high goto expensive;
  ret base;
expensive:
  r = base + 1;
  ret r;
}

func main() {
  seed = 53;
  i = 0;
  words = 0;
  curlen = 0;
  acc = 0;
thead:
  c = i < 30000;
  if c goto tbody;
  goto report;
tbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  ch = seed >> 16;
  ch = ch & 127;
  cls = classify(ch);
  pc = gep classcounts, cls;
  n = *pc;
  n = n + 1;
  *pc = n;
  isword = cls == 0;
  if isword goto inword;
  // Token boundary: score the finished word.
  haslen = 0 < curlen;
  if haslen goto score;
  goto tnext;
score:
  strict = curlen & 1;
  m = ppmatch(curlen, strict);
  slot = m & 63;
  pd = gep dict, slot;
  d = *pd;
  d = d + 1;
  *pd = d;
  acc = acc * 3;
  acc = acc + m;
  acc = acc & 1048575;
  words = words + 1;
  curlen = 0;
  goto tnext;
inword:
  curlen = curlen + 1;
tnext:
  i = i + 1;
  goto thead;
report:
  p0 = gep classcounts, 0;
  letters = *p0;
  acc = acc + letters;
  acc = acc + words;
  acc = acc & 1048575;
  ret acc;
}
)TINYC";
