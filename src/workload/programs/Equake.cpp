//===- workload/programs/Equake.cpp - 183.equake-like workload -------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 183.equake: repeated sparse matrix-vector products in a time-
/// stepping loop, using CSR-style parallel arrays (row starts, column
/// indices, values). The result vector is allocated uninitialized each
/// outer iteration and fully written by the product — a pattern only the
/// address-taken analysis can discharge.
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource183Equake = R"TINYC(
// 183.equake: CSR sparse matvec time stepping.
global steps[1] init;

// y = A * x over rows [0, n).
func spmv(rowstart, colidx, vals, x, y, n) {
  row = 0;
rhead:
  c = row < n;
  if c goto rbody;
  ret 0;
rbody:
  prs = gep rowstart, row;
  lo = *prs;
  row1 = row + 1;
  prs2 = gep rowstart, row1;
  hi = *prs2;
  sum = 0;
  k = lo;
khead:
  c2 = k < hi;
  if c2 goto kbody;
  goto krow;
kbody:
  pc = gep colidx, k;
  col = *pc;
  pv = gep vals, k;
  av = *pv;
  px = gep x, col;
  xv = *px;
  t = av * xv;
  t = t >> 7;
  sum = sum + t;
  k = k + 1;
  goto khead;
krow:
  py = gep y, row;
  *py = sum;
  row = row + 1;
  goto rhead;
}

func main() {
  n = 96;
  nnz = 480;
  rowstart = alloc heap 97 init array;
  colidx = alloc heap 480 init array;
  vals = alloc heap 480 init array;
  i = 0;
shead:
  c = i < 97;
  if c goto sbody;
  goto fillnz;
sbody:
  v = i * 5;
  p = gep rowstart, i;
  *p = v;
  i = i + 1;
  goto shead;
fillnz:
  seed = 23;
  k = 0;
nhead:
  c2 = k < nnz;
  if c2 goto nbody;
  goto timeloop;
nbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  col = seed >> 16;
  col = col & 95;
  pc = gep colidx, k;
  *pc = col;
  seed = seed * 1103515245;
  seed = seed + 12345;
  av = seed >> 16;
  av = av & 255;
  pv = gep vals, k;
  *pv = av;
  k = k + 1;
  goto nhead;
timeloop:
  x = alloc heap 96 init array;
  j = 0;
xhead:
  c3 = j < n;
  if c3 goto xbody;
  goto iterate;
xbody:
  px = gep x, j;
  t = j * 11;
  t = t & 255;
  *px = t;
  j = j + 1;
  goto xhead;
iterate:
  t2 = 0;
  acc = 0;
thead:
  c4 = t2 < 450;
  if c4 goto tbody;
  goto tdone;
tbody:
  y = alloc heap 96 uninit array;
  z = spmv(rowstart, colidx, vals, x, y, n);
  // Fold y back into x with damping.
  m = 0;
fold:
  c5 = m < n;
  if c5 goto fbody;
  goto tnext;
fbody:
  py = gep y, m;
  yv = *py;
  // Excitation clamp: a data-dependent branch on the freshly computed
  // (statically unprovable) vector keeps this benchmark check-heavy.
  hot = 1800 < yv;
  if hot goto clamp;
  goto mix;
clamp:
  yv = 1800;
mix:
  px2 = gep x, m;
  xv = *px2;
  nv = xv + yv;
  nv = nv / 2;
  nv = nv & 1023;
  *px2 = nv;
  m = m + 1;
  goto fold;
tnext:
  acc = acc * 3;
  p0 = gep x, 0;
  x0 = *p0;
  acc = acc + x0;
  acc = acc & 1048575;
  t2 = t2 + 1;
  goto thead;
tdone:
  *steps = t2;
  st = *steps;
  acc = acc + st;
  acc = acc & 1048575;
  ret acc;
}
)TINYC";
