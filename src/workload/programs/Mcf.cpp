//===- workload/programs/Mcf.cpp - 181.mcf-like workload -------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 181.mcf: network-simplex-style relaxation over a linked arc
/// list. Nodes are wrapper-allocated heap structs chained through pointer
/// fields and fully initialized on construction, so a value-flow analysis
/// that understands address-taken variables can discharge nearly all
/// instrumentation — the paper reports mcf at only 2% slowdown.
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource181Mcf = R"TINYC(
// 181.mcf: relaxation sweeps over a linked list of arcs.
// Arc layout: [0]=cost, [1]=flow, [2]=potential, [3]=next pointer.
global sweeps[1] init;

func newarc() {
  p = alloc heap 4 uninit;
  ret p;
}

// Prepends a fully initialized arc to the list and returns the new head.
func mkarc(head, cost) {
  p = newarc();
  f0 = gep p, 0;
  *f0 = cost;
  f1 = gep p, 1;
  *f1 = 0;
  f2 = gep p, 2;
  *f2 = cost;
  f3 = gep p, 3;
  *f3 = head;
  ret p;
}

// One relaxation sweep; returns the number of potentials improved.
func sweep(head) {
  improved = 0;
  cur = head;
shead:
  if cur goto sbody;
  ret improved;
sbody:
  pc = gep cur, 0;
  cost = *pc;
  pp = gep cur, 2;
  pot = *pp;
  pn = gep cur, 3;
  nxt = *pn;
  if nxt goto havenext;
  goto relax;
havenext:
  np = gep nxt, 2;
  npot = *np;
  cand = npot + cost;
  cand = cand / 2;
  better = cand < pot;
  if better goto improve;
  goto relax;
improve:
  *pp = cand;
  improved = improved + 1;
relax:
  pf = gep cur, 1;
  fl = *pf;
  fl = fl + 1;
  *pf = fl;
  cur = nxt;
  goto shead;
}

func main() {
  seed = 17;
  head = 0;
  i = 0;
bhead:
  c = i < 160;
  if c goto bbody;
  goto iterate;
bbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  cost = seed >> 16;
  cost = cost & 4095;
  head = mkarc(head, cost);
  i = i + 1;
  goto bhead;
iterate:
  pass = 0;
  total = 0;
phead:
  c2 = pass < 700;
  if c2 goto pbody;
  goto summarize;
pbody:
  imp = sweep(head);
  total = total + imp;
  pass = pass + 1;
  goto phead;
summarize:
  *sweeps = total;
  cur = head;
  acc = 0;
suhead:
  if cur goto subody;
  goto sudone;
subody:
  pp2 = gep cur, 2;
  pot = *pp2;
  acc = acc * 3;
  acc = acc + pot;
  acc = acc & 1048575;
  pn2 = gep cur, 3;
  cur = *pn2;
  goto suhead;
sudone:
  t = *sweeps;
  acc = acc + t;
  acc = acc & 1048575;
  ret acc;
}
)TINYC";
