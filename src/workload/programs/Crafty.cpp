//===- workload/programs/Crafty.cpp - 186.crafty-like workload -------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 186.crafty: chess bitboard manipulation. Almost entirely
/// top-level integer computation (shifts, masks, popcounts) with a small
/// attack table — the case where even the top-level-only analysis
/// discharges most instrumentation.
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource186Crafty = R"TINYC(
// 186.crafty: bitboard move generation and popcount scoring.
global nodes[1] init;

func popcount(b) {
  n = 0;
phead:
  if b goto pbody;
  ret n;
pbody:
  b1 = b - 1;
  b = b & b1;
  n = n + 1;
  goto phead;
}

// Knight attack pattern from a square, via shifted masks.
func knightmoves(sq) {
  one = 1;
  bb = one << sq;
  m = 0;
  t = bb << 17;
  m = m | t;
  t = bb << 15;
  m = m | t;
  t = bb << 10;
  m = m | t;
  t = bb << 6;
  m = m | t;
  t = bb >> 17;
  m = m | t;
  t = bb >> 15;
  m = m | t;
  t = bb >> 10;
  m = m | t;
  t = bb >> 6;
  m = m | t;
  ret m;
}

func main() {
  seed = 31;
  iter = 0;
  score = 0;
  visited = 0;
ihead:
  c = iter < 26000;
  if c goto ibody;
  goto done;
ibody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  sq = seed >> 16;
  sq = sq & 63;
  moves = knightmoves(sq);
  seed = seed * 1103515245;
  seed = seed + 12345;
  occ = seed >> 13;
  legal = moves & occ;
  cnt = popcount(legal);
  score = score * 3;
  score = score + cnt;
  score = score & 1048575;
  visited = visited + 1;
  iter = iter + 1;
  goto ihead;
done:
  *nodes = visited;
  nv = *nodes;
  score = score + nv;
  score = score & 1048575;
  ret score;
}
)TINYC";
