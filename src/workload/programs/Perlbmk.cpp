//===- workload/programs/Perlbmk.cpp - 253.perlbmk-like workload -----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 253.perlbmk: a bytecode interpreter with an operand stack and
/// a scalar table. Nearly every computed value feeds a branch (the opcode
/// dispatch chain), and the stack is an uninitialized array written and
/// read under dynamic indices — so most of the VFG reaches a check and
/// little instrumentation can be pruned. The paper reports perlbmk as the
/// worst case for both MSan and Usher; this program reproduces why.
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource253Perlbmk = R"TINYC(
// 253.perlbmk: stack-machine interpreter with a scalar table.
global scalars[32] init;

// Run the program once; returns the top of stack at exit.
func exec(prog, proglen, stk, seedarg) {
  pc = 0;
  sp = 0;
  seed = seedarg;
xhead:
  c = pc < proglen;
  if c goto xbody;
  goto xdone;
xbody:
  pp = gep prog, pc;
  opcode = *pp;
  op = opcode & 7;
  arg = opcode >> 3;
  arg = arg & 31;
  ispush = op == 0;
  if ispush goto dopush;
  isadd = op == 1;
  if isadd goto doadd;
  isdup = op == 2;
  if isdup goto dodup;
  isstore = op == 3;
  if isstore goto dostore;
  isload = op == 4;
  if isload goto doload;
  isxor = op == 5;
  if isxor goto doxor;
  isswap = op == 6;
  if isswap goto doswap;
  // default: drop.
  canpop = 0 < sp;
  if canpop goto dodrop;
  goto xnext;
dodrop:
  sp = sp - 1;
  goto xnext;
dopush:
  ps = gep stk, sp;
  *ps = arg;
  sp = sp + 1;
  goto xnext;
doadd:
  two = 1 < sp;
  if two goto addok;
  goto xnext;
addok:
  sp1 = sp - 1;
  pa = gep stk, sp1;
  a = *pa;
  sp2 = sp - 2;
  pb = gep stk, sp2;
  b = *pb;
  v = a + b;
  v = v & 65535;
  *pb = v;
  sp = sp1;
  goto xnext;
dodup:
  one = 0 < sp;
  if one goto dupok;
  goto xnext;
dupok:
  full = sp < 63;
  if full goto dupok2;
  goto xnext;
dupok2:
  sp1b = sp - 1;
  pt = gep stk, sp1b;
  t = *pt;
  pu = gep stk, sp;
  *pu = t;
  sp = sp + 1;
  goto xnext;
dostore:
  one2 = 0 < sp;
  if one2 goto storeok;
  goto xnext;
storeok:
  sp1c = sp - 1;
  pv = gep stk, sp1c;
  v2 = *pv;
  pg = gep scalars, arg;
  *pg = v2;
  sp = sp1c;
  goto xnext;
doload:
  full2 = sp < 63;
  if full2 goto loadok;
  goto xnext;
loadok:
  pg2 = gep scalars, arg;
  v3 = *pg2;
  pw = gep stk, sp;
  *pw = v3;
  sp = sp + 1;
  goto xnext;
doxor:
  two2 = 1 < sp;
  if two2 goto xorok;
  goto xnext;
xorok:
  sp1d = sp - 1;
  pa2 = gep stk, sp1d;
  a2 = *pa2;
  sp2b = sp - 2;
  pb2 = gep stk, sp2b;
  b2 = *pb2;
  v4 = a2 ^ b2;
  *pb2 = v4;
  sp = sp1d;
  goto xnext;
doswap:
  two3 = 1 < sp;
  if two3 goto swapok;
  goto xnext;
swapok:
  sp1e = sp - 1;
  pa3 = gep stk, sp1e;
  a3 = *pa3;
  sp2c = sp - 2;
  pb3 = gep stk, sp2c;
  b3 = *pb3;
  *pa3 = b3;
  *pb3 = a3;
  goto xnext;
xnext:
  pc = pc + 1;
  goto xhead;
xdone:
  empty = sp == 0;
  if empty goto retzero;
  spt = sp - 1;
  ptop = gep stk, spt;
  top = *ptop;
  ret top;
retzero:
  ret 0;
}

func main() {
  proglen = 160;
  prog = alloc heap 160 uninit array;
  seed = 61;
  i = 0;
ghead:
  c = i < proglen;
  if c goto gbody;
  goto runit;
gbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  opc = seed >> 16;
  opc = opc & 255;
  pp = gep prog, i;
  *pp = opc;
  i = i + 1;
  goto ghead;
runit:
  stk = alloc heap 64 uninit array;
  run = 0;
  acc = 0;
rhead:
  c2 = run < 1500;
  if c2 goto rbody;
  goto rdone;
rbody:
  top = exec(prog, proglen, stk, run);
  acc = acc * 3;
  acc = acc + top;
  acc = acc & 1048575;
  run = run + 1;
  goto rhead;
rdone:
  p0 = gep scalars, 0;
  s0 = *p0;
  acc = acc + s0;
  acc = acc & 1048575;
  ret acc;
}
)TINYC";
