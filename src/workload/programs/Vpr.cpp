//===- workload/programs/Vpr.cpp - 175.vpr-like workload -------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Imitates 175.vpr: FPGA placement by iterative improvement. A linear
/// placement array is perturbed by random swaps; a local cost delta
/// decides acceptance. The placement array is calloc-style (initialized),
/// so a precise value-flow analysis can discharge most of its shadow work.
///
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

const char *usher::workload::kSource175Vpr = R"TINYC(
// 175.vpr: placement refinement by randomized pairwise swaps.
global acceptcount[1] init;
global rejectcount[1] init;

// Cost contribution of position i: |v[i] - v[i-1]| + |v[i] - v[i+1]|.
func localcost(v, i, n) {
  cost = 0;
  pi = gep v, i;
  vi = *pi;
  c1 = 0 < i;
  if c1 goto haveleft;
  goto tryright;
haveleft:
  il = i - 1;
  pl = gep v, il;
  vl = *pl;
  d = vi - vl;
  neg = d < 0;
  if neg goto flipl;
  cost = cost + d;
  goto tryright;
flipl:
  d = 0 - d;
  cost = cost + d;
tryright:
  ir = i + 1;
  c2 = ir < n;
  if c2 goto haveright;
  ret cost;
haveright:
  pr = gep v, ir;
  vr = *pr;
  e = vi - vr;
  neg2 = e < 0;
  if neg2 goto flipr;
  cost = cost + e;
  ret cost;
flipr:
  e = 0 - e;
  cost = cost + e;
  ret cost;
}

func main() {
  n = 64;
  v = alloc heap 64 uninit array;
  i = 0;
ihead:
  c = i < n;
  if c goto ibody;
  goto anneal;
ibody:
  t = i * 37;
  t = t & 63;
  p = gep v, i;
  *p = t;
  i = i + 1;
  goto ihead;
anneal:
  seed = 7;
  moves = 0;
  acc = 0;
  rej = 0;
mhead:
  c2 = moves < 16000;
  if c2 goto mbody;
  goto report;
mbody:
  seed = seed * 1103515245;
  seed = seed + 12345;
  a = seed >> 16;
  a = a & 63;
  seed = seed * 1103515245;
  seed = seed + 12345;
  b = seed >> 16;
  b = b & 63;
  before = localcost(v, a, n);
  bb = localcost(v, b, n);
  before = before + bb;
  pa = gep v, a;
  pb = gep v, b;
  va = *pa;
  vb = *pb;
  *pa = vb;
  *pb = va;
  after = localcost(v, a, n);
  ab = localcost(v, b, n);
  after = after + ab;
  good = after < before;
  if good goto keep;
  same = after == before;
  if same goto keep;
  *pa = va;
  *pb = vb;
  rej = rej + 1;
  goto mnext;
keep:
  acc = acc + 1;
mnext:
  moves = moves + 1;
  goto mhead;
report:
  *acceptcount = acc;
  *rejectcount = rej;
  total = 0;
  k = 0;
thead:
  c3 = k < n;
  if c3 goto tbody;
  goto done;
tbody:
  pk = gep v, k;
  vk = *pk;
  total = total * 5;
  total = total + vk;
  total = total & 1048575;
  k = k + 1;
  goto thead;
done:
  aa = *acceptcount;
  total = total + aa;
  total = total & 1048575;
  ret total;
}
)TINYC";
