//===- workload/Generator.cpp - Random TinyC program generator -------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include "ir/IR.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/RNG.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <string>
#include <vector>

using namespace usher;
using namespace usher::workload;
using namespace usher::ir;

namespace {

/// Object layouts the generator allocates. Field 0 is always an integer;
/// when a layout has a pointer slot it is the last field, pointing to the
/// layout one level down (bounded chains, so generation terminates).
struct Shape {
  unsigned NumFields;
  int PtrSlot;       ///< Field index holding a pointer, or -1.
  unsigned Pointee;  ///< Shape index the pointer slot points to.
};

/// What a pointer-typed variable points at.
enum class PtrKind : uint8_t {
  None,      ///< Integer-typed variable.
  ObjBase,   ///< Base of an object with a known shape.
  IntCell,   ///< A single integer field.
  PtrCell    ///< A single pointer field (pointee shape known).
};

struct VarInfo {
  Variable *V;
  PtrKind Kind = PtrKind::None;
  unsigned Shape = 0;   ///< For ObjBase: own shape; for PtrCell: pointee.
  bool NeedsGuard = false; ///< Pointer loaded from memory: may be null.
  bool MaybeUndef = false; ///< Integer that may be undefined.
};

struct FnPlan {
  Function *F = nullptr;
  std::vector<int> ParamShape; ///< -1 = integer parameter.
  int RetShape = -1;           ///< -1 = integer return (or -2 = void).
  bool WrapperStyle = false;
};

class Generator {
public:
  Generator(uint64_t Seed, const GeneratorOptions &Opts)
      : Rng(Seed), Opts(Opts), M(std::make_unique<Module>()), B(*M) {}

  std::unique_ptr<Module> run();

private:
  // -- Variable pool helpers ----------------------------------------------
  Variable *freshVar(const std::string &Hint) {
    return CurFn->F->createVariable(Hint + std::to_string(VarCounter++));
  }
  VarInfo &defineInt(Variable *V, bool MaybeUndef) {
    Pool.push_back({V, PtrKind::None, 0, false, MaybeUndef});
    return Pool.back();
  }
  VarInfo &definePtr(Variable *V, PtrKind K, unsigned Shape,
                     bool NeedsGuard) {
    Pool.push_back({V, K, Shape, NeedsGuard, false});
    return Pool.back();
  }

  /// A random integer operand; sometimes a possibly-undefined variable.
  Operand intOperand();
  /// A random integer variable matching \p WantUndef, or null.
  Variable *pickIntVar(bool AllowUndef);
  /// A random pointer variable satisfying \p Pred, or null.
  template <typename PredT> const VarInfo *pickPtr(PredT Pred);

  /// Ensures a dereferenceable ObjBase pointer of \p Shape exists,
  /// allocating one if necessary.
  const VarInfo *ensureObjPtr(unsigned Shape);

  // -- Emission ------------------------------------------------------------
  void emitStraightStmt();
  void emitAlloc(bool ForceHeap = false);
  void emitGuardedDeref(const VarInfo &P);
  void emitNestedFieldChain();
  void emitPointerWalkLoop();
  void emitSegment(unsigned Depth);
  void emitBody(const FnPlan &Plan);
  void emitWrapperBody(const FnPlan &Plan);
  void emitRet(const FnPlan &Plan);
  void emitCall(bool WantResult);

  BasicBlock *newBlock(const std::string &Hint) {
    return CurFn->F->createBlock(Hint + std::to_string(BlockCounter++));
  }

  RNG Rng;
  GeneratorOptions Opts;
  std::unique_ptr<Module> M;
  IRBuilder B;

  std::vector<Shape> Shapes;
  std::vector<FnPlan> Plans;
  FnPlan *CurFn = nullptr;
  size_t CurFnIndex = 0; ///< Callees must have a smaller index.
  std::vector<VarInfo> Pool;
  unsigned VarCounter = 0, BlockCounter = 0, ObjCounter = 0;
};

} // namespace

Operand Generator::intOperand() {
  if (Rng.chance(30))
    return Operand::constant(Rng.range(-8, 64));
  if (Variable *V = pickIntVar(Rng.chance(Opts.UndefUsePercent)))
    return Operand::var(V);
  return Operand::constant(Rng.range(0, 9));
}

Variable *Generator::pickIntVar(bool AllowUndef) {
  std::vector<const VarInfo *> Candidates;
  for (const VarInfo &VI : Pool)
    if (VI.Kind == PtrKind::None && (AllowUndef || !VI.MaybeUndef))
      Candidates.push_back(&VI);
  if (Candidates.empty())
    return nullptr;
  return Candidates[Rng.below(Candidates.size())]->V;
}

template <typename PredT> const VarInfo *Generator::pickPtr(PredT Pred) {
  std::vector<const VarInfo *> Candidates;
  for (const VarInfo &VI : Pool)
    if (VI.Kind != PtrKind::None && Pred(VI))
      Candidates.push_back(&VI);
  if (Candidates.empty())
    return nullptr;
  return Candidates[Rng.below(Candidates.size())];
}

const VarInfo *Generator::ensureObjPtr(unsigned Shape) {
  const VarInfo *Existing = pickPtr([&](const VarInfo &VI) {
    return VI.Kind == PtrKind::ObjBase && VI.Shape == Shape &&
           !VI.NeedsGuard;
  });
  if (Existing)
    return Existing;
  const struct Shape &S = Shapes[Shape];
  Variable *P = freshVar("p");
  bool Uninit = Rng.chance(Opts.UninitAllocPercent);
  B.createAlloc(P, Rng.chance(50) ? Region::Heap : Region::Stack,
                S.NumFields, !Uninit, /*IsArray=*/false,
                "obj" + std::to_string(ObjCounter++));
  definePtr(P, PtrKind::ObjBase, Shape, false);
  return &Pool.back();
}

void Generator::emitAlloc(bool ForceHeap) {
  unsigned Shape = static_cast<unsigned>(Rng.below(Shapes.size()));
  const struct Shape &S = Shapes[Shape];
  Variable *P = freshVar("p");
  bool Uninit = Rng.chance(Opts.UninitAllocPercent);
  bool IsArray = !ForceHeap && S.PtrSlot < 0 && Rng.chance(15);
  B.createAlloc(P,
                ForceHeap || Rng.chance(40) ? Region::Heap : Region::Stack,
                S.NumFields, !Uninit, IsArray,
                "obj" + std::to_string(ObjCounter++));
  definePtr(P, PtrKind::ObjBase, Shape, false);
}

void Generator::emitGuardedDeref(const VarInfo &P) {
  // if p goto use; goto join; use: x = *p; goto join; join:
  assert(P.NeedsGuard && "guard emitted for a safe pointer");
  BasicBlock *UseBB = newBlock("use");
  BasicBlock *JoinBB = newBlock("join");
  B.createCondBr(Operand::var(P.V), UseBB, JoinBB);
  B.setInsertPoint(UseBB);
  Variable *X = freshVar("g");
  B.createLoad(X, Operand::var(P.V));
  // The loaded value's type depends on what the pointer targets; treat
  // object bases and int cells as integers (field 0 is always an int).
  B.createGoto(JoinBB);
  B.setInsertPoint(JoinBB);
  if (P.Kind == PtrKind::PtrCell) {
    // *p is itself a pointer (or null/undefined): needs its own guard.
    definePtr(X, PtrKind::ObjBase, P.Shape, /*NeedsGuard=*/true);
  } else {
    defineInt(X, /*MaybeUndef=*/true);
  }
}

void Generator::emitNestedFieldChain() {
  // Descend a pointer-slot chain: gep the slot, store a fresh pointee so
  // the reload is non-null, reload, and gep the *loaded* base again. The
  // final field access sits on a base the VFG can only reach through
  // LoadDef nodes — a value-flow pattern the other emitters never build.
  unsigned ShapeIdx = 2; // Two pointer levels: guarantees >= 1 descent.
  Variable *Base = ensureObjPtr(ShapeIdx)->V;
  while (Shapes[ShapeIdx].PtrSlot >= 0) {
    const struct Shape &S = Shapes[ShapeIdx];
    unsigned Pointee = S.Pointee;
    Variable *Slot = freshVar("nf");
    B.createFieldAddr(Slot, Operand::var(Base),
                      static_cast<unsigned>(S.PtrSlot));
    definePtr(Slot, PtrKind::PtrCell, Pointee, false);
    Variable *Inner = ensureObjPtr(Pointee)->V;
    B.createStore(Operand::var(Slot), Operand::var(Inner));
    Variable *Loaded = freshVar("nl");
    B.createLoad(Loaded, Operand::var(Slot));
    // The store above dominates the load with nothing in between: the
    // loaded pointer is the just-stored base and needs no null guard.
    definePtr(Loaded, PtrKind::ObjBase, Pointee, false);
    Base = Loaded;
    ShapeIdx = Pointee;
    if (!Rng.chance(70))
      break;
  }
  Variable *FieldP = freshVar("ni");
  B.createFieldAddr(FieldP, Operand::var(Base), 0u); // Field 0: always int.
  definePtr(FieldP, PtrKind::IntCell, 0, false);
  Variable *X = freshVar("nx");
  B.createLoad(X, Operand::var(FieldP));
  defineInt(X, /*MaybeUndef=*/true);
}

void Generator::emitPointerWalkLoop() {
  // A counter-bounded loop whose body advances a pointer through an
  // array: `x = *p; p = gep p, 1;`. The induction pointer is reassigned
  // every iteration, so it stays out of the pool — other emitters must
  // not capture a mid-walk value.
  int64_t Trip =
      Rng.range(2, std::max<int64_t>(2, static_cast<int64_t>(Opts.MaxLoopTrip)));
  Variable *P = freshVar("wp");
  bool Uninit = Rng.chance(Opts.UninitAllocPercent);
  B.createAlloc(P, Rng.chance(50) ? Region::Heap : Region::Stack,
                static_cast<unsigned>(Trip + 1), !Uninit, /*IsArray=*/true,
                "walk" + std::to_string(ObjCounter++));
  Variable *I = freshVar("wi");
  B.createCopy(I, Operand::constant(0));
  defineInt(I, false);
  BasicBlock *HeaderBB = newBlock("whead");
  BasicBlock *BodyBB = newBlock("wbody");
  BasicBlock *ExitBB = newBlock("wexit");
  B.createGoto(HeaderBB);
  B.setInsertPoint(HeaderBB);
  Variable *C = freshVar("wc");
  B.createBinOp(C, BinOpcode::CmpLT, Operand::var(I),
                Operand::constant(Trip));
  defineInt(C, false);
  B.createCondBr(Operand::var(C), BodyBB, ExitBB);
  B.setInsertPoint(BodyBB);
  Variable *X = freshVar("wx");
  B.createLoad(X, Operand::var(P));
  if (Rng.chance(50))
    B.createStore(Operand::var(P), intOperand());
  B.createFieldAddr(P, Operand::var(P), 1u);
  B.createBinOp(I, BinOpcode::Add, Operand::var(I), Operand::constant(1));
  B.createGoto(HeaderBB);
  B.setInsertPoint(ExitBB);
  // Trip >= 2, so the body always ran and X holds the last cell read —
  // undefined whenever the array was allocated uninitialized.
  defineInt(X, /*MaybeUndef=*/true);
}

void Generator::emitStraightStmt() {
  switch (Rng.below(11)) {
  case 0: { // Constant copy.
    Variable *X = freshVar("c");
    B.createCopy(X, Operand::constant(Rng.range(-4, 99)));
    defineInt(X, false);
    break;
  }
  case 1: { // Variable copy (int or pointer).
    if (Rng.chance(35)) {
      if (const VarInfo *P = pickPtr([](const VarInfo &) { return true; })) {
        Variable *X = freshVar("q");
        B.createCopy(X, Operand::var(P->V));
        definePtr(X, P->Kind, P->Shape, P->NeedsGuard);
        break;
      }
    }
    if (Variable *Y = pickIntVar(Rng.chance(Opts.UndefUsePercent))) {
      Variable *X = freshVar("v");
      B.createCopy(X, Operand::var(Y));
      defineInt(X, false); // May dynamically hold an undefined value.
    }
    break;
  }
  case 2: { // Binary operation.
    static const BinOpcode Ops[] = {
        BinOpcode::Add, BinOpcode::Sub,   BinOpcode::Mul,   BinOpcode::And,
        BinOpcode::Or,  BinOpcode::Xor,   BinOpcode::Shr,   BinOpcode::CmpEQ,
        BinOpcode::CmpLT, BinOpcode::Rem, BinOpcode::CmpGE, BinOpcode::Div};
    Variable *X = freshVar("t");
    B.createBinOp(X, Ops[Rng.below(std::size(Ops))], intOperand(),
                  intOperand());
    defineInt(X, false);
    break;
  }
  case 3:
    emitAlloc();
    break;
  case 4: { // Field address (constant or masked dynamic index).
    const VarInfo *P = pickPtr([](const VarInfo &VI) {
      return VI.Kind == PtrKind::ObjBase && !VI.NeedsGuard;
    });
    if (!P)
      break;
    // Copy what we need: define*() below may reallocate the pool.
    Variable *BaseVar = P->V;
    const struct Shape &S = Shapes[P->Shape];
    Variable *Q = freshVar("f");
    if (S.PtrSlot < 0 && S.NumFields >= 2 && Rng.chance(30)) {
      // Dynamic index, masked below the largest power of two that fits,
      // so it stays in bounds even when the index value is undefined.
      unsigned Mask = 1;
      while (Mask * 2 <= S.NumFields)
        Mask *= 2;
      Variable *Idx = freshVar("ix");
      B.createBinOp(Idx, BinOpcode::And, intOperand(),
                    Operand::constant(static_cast<int64_t>(Mask - 1)));
      defineInt(Idx, false);
      B.createFieldAddr(Q, Operand::var(BaseVar), Operand::var(Idx));
      definePtr(Q, PtrKind::IntCell, 0, false);
      break;
    }
    unsigned Field = static_cast<unsigned>(Rng.below(S.NumFields));
    B.createFieldAddr(Q, Operand::var(BaseVar), Field);
    if (S.PtrSlot >= 0 && Field == static_cast<unsigned>(S.PtrSlot))
      definePtr(Q, PtrKind::PtrCell, S.Pointee, false);
    else
      definePtr(Q, PtrKind::IntCell, 0, false);
    break;
  }
  case 5: { // Load.
    const VarInfo *P =
        pickPtr([](const VarInfo &VI) { return !VI.NeedsGuard; });
    if (!P)
      break;
    if (P->Kind == PtrKind::PtrCell) {
      Variable *X = freshVar("l");
      B.createLoad(X, Operand::var(P->V));
      definePtr(X, PtrKind::ObjBase, P->Shape, /*NeedsGuard=*/true);
    } else {
      Variable *X = freshVar("l");
      B.createLoad(X, Operand::var(P->V));
      defineInt(X, false); // Oracle decides actual definedness.
    }
    break;
  }
  case 6:
  case 7: { // Store.
    const VarInfo *P =
        pickPtr([](const VarInfo &VI) { return !VI.NeedsGuard; });
    if (!P)
      break;
    if (P->Kind == PtrKind::PtrCell) {
      // Store a pointer of the matching shape (loads re-check with a
      // guard, so a guarded pointer value is fine to store).
      const VarInfo *V = pickPtr([&](const VarInfo &VI) {
        return VI.Kind == PtrKind::ObjBase && VI.Shape == P->Shape;
      });
      if (V)
        B.createStore(Operand::var(P->V), Operand::var(V->V));
      else
        B.createStore(Operand::var(P->V), Operand::constant(0));
    } else {
      B.createStore(Operand::var(P->V), intOperand());
    }
    break;
  }
  case 8: { // Guarded dereference of a loaded pointer.
    const VarInfo *P =
        pickPtr([](const VarInfo &VI) { return VI.NeedsGuard; });
    if (P) {
      VarInfo Copy = *P; // emitGuardedDeref may grow the pool.
      emitGuardedDeref(Copy);
    }
    break;
  }
  case 9: { // A fresh, never-assigned integer (undefined until written).
    Variable *X = freshVar("u");
    defineInt(X, /*MaybeUndef=*/true);
    break;
  }
  case 10: { // Take the address of a global object (always shape 0).
    const auto &Objects = M->objects();
    std::vector<MemObject *> Globals;
    for (const auto &Obj : Objects)
      if (Obj->isGlobal())
        Globals.push_back(Obj.get());
    if (Globals.empty())
      break;
    MemObject *G = Globals[Rng.below(Globals.size())];
    Variable *P = freshVar("gp");
    B.createCopy(P, Operand::global(G));
    definePtr(P, PtrKind::ObjBase, 0, false);
    break;
  }
  }
}

void Generator::emitCall(bool WantResult) {
  if (CurFnIndex == 0)
    return;
  const FnPlan &Callee = Plans[Rng.below(CurFnIndex)];
  std::vector<Operand> Args;
  for (int PS : Callee.ParamShape) {
    if (PS < 0) {
      Args.push_back(intOperand());
    } else {
      const VarInfo *P = ensureObjPtr(static_cast<unsigned>(PS));
      Args.push_back(Operand::var(P->V));
    }
  }
  Variable *Def = nullptr;
  if (WantResult && Callee.RetShape != -2)
    Def = freshVar("r");
  B.createCall(Def, Callee.F, std::move(Args));
  if (!Def)
    return;
  if (Callee.RetShape >= 0) {
    definePtr(Def, PtrKind::ObjBase, static_cast<unsigned>(Callee.RetShape),
              false);
    if (Opts.CallResultFieldAccess && Rng.chance(50)) {
      // Field access straight off the call result: the gep's base is a
      // CallResult node, so the address flows out of the callee's VFG.
      Variable *FieldP = freshVar("cf");
      B.createFieldAddr(FieldP, Operand::var(Def), 0u);
      definePtr(FieldP, PtrKind::IntCell, 0, false);
      Variable *X = freshVar("cx");
      B.createLoad(X, Operand::var(FieldP));
      defineInt(X, /*MaybeUndef=*/true);
    }
  } else {
    defineInt(Def, false);
  }
}

void Generator::emitSegment(unsigned Depth) {
  unsigned NumKinds = Depth < 2 ? (Opts.PointerInductionLoops ? 5u : 4u) : 2u;
  unsigned Kind = static_cast<unsigned>(Rng.below(NumKinds));
  switch (Kind) {
  case 0:
  case 1: { // Straight-line statements, with occasional calls.
    unsigned N = 1 + static_cast<unsigned>(
                         Rng.below(Opts.MaxStmtsPerSegment));
    for (unsigned I = 0; I != N; ++I) {
      if (Rng.chance(12))
        emitCall(Rng.chance(70));
      else if (Opts.NestedFieldChains && Rng.chance(8))
        emitNestedFieldChain();
      else
        emitStraightStmt();
    }
    break;
  }
  case 2: { // If-diamond on a (possibly undefined) condition.
    Variable *C = pickIntVar(Rng.chance(Opts.UndefUsePercent));
    Operand Cond = C ? Operand::var(C) : intOperand();
    BasicBlock *ThenBB = newBlock("then");
    BasicBlock *ElseBB = newBlock("else");
    BasicBlock *JoinBB = newBlock("join");
    B.createCondBr(Cond, ThenBB, ElseBB);
    size_t PoolMark = Pool.size();
    B.setInsertPoint(ThenBB);
    emitSegment(Depth + 1);
    B.createGoto(JoinBB);
    // Variables defined inside one arm may be undefined along the other;
    // mark them so later uses know.
    for (size_t I = PoolMark; I != Pool.size(); ++I)
      if (Pool[I].Kind == PtrKind::None)
        Pool[I].MaybeUndef = true;
      else
        Pool[I].NeedsGuard = true;
    size_t ThenEnd = Pool.size();
    B.setInsertPoint(ElseBB);
    emitSegment(Depth + 1);
    B.createGoto(JoinBB);
    for (size_t I = ThenEnd; I != Pool.size(); ++I)
      if (Pool[I].Kind == PtrKind::None)
        Pool[I].MaybeUndef = true;
      else
        Pool[I].NeedsGuard = true;
    B.setInsertPoint(JoinBB);
    break;
  }
  case 3: { // Bounded counter loop.
    Variable *I = freshVar("i");
    B.createCopy(I, Operand::constant(0));
    defineInt(I, false);
    int64_t Trip = Rng.range(1, Opts.MaxLoopTrip);
    BasicBlock *HeaderBB = newBlock("head");
    BasicBlock *BodyBB = newBlock("body");
    BasicBlock *ExitBB = newBlock("exit");
    B.createGoto(HeaderBB);
    B.setInsertPoint(HeaderBB);
    Variable *C = freshVar("c");
    B.createBinOp(C, BinOpcode::CmpLT, Operand::var(I),
                  Operand::constant(Trip));
    defineInt(C, false);
    B.createCondBr(Operand::var(C), BodyBB, ExitBB);
    size_t PoolMark = Pool.size();
    B.setInsertPoint(BodyBB);
    emitSegment(Depth + 1);
    B.createBinOp(I, BinOpcode::Add, Operand::var(I), Operand::constant(1));
    B.createGoto(HeaderBB);
    // Loop-local definitions may not have happened yet on later reads
    // outside (or in the first iteration via back paths).
    for (size_t Idx = PoolMark; Idx != Pool.size(); ++Idx)
      if (Pool[Idx].Kind == PtrKind::None)
        Pool[Idx].MaybeUndef = true;
      else
        Pool[Idx].NeedsGuard = true;
    B.setInsertPoint(ExitBB);
    break;
  }
  case 4:
    emitPointerWalkLoop();
    break;
  }
}

void Generator::emitRet(const FnPlan &Plan) {
  if (Plan.RetShape == -2) {
    B.createRet(Operand());
    return;
  }
  if (Plan.RetShape >= 0) {
    const VarInfo *P = ensureObjPtr(static_cast<unsigned>(Plan.RetShape));
    B.createRet(Operand::var(P->V));
    return;
  }
  if (Variable *V = pickIntVar(/*AllowUndef=*/Rng.chance(20)))
    B.createRet(Operand::var(V));
  else
    B.createRet(Operand::constant(Rng.range(0, 9)));
}

void Generator::emitWrapperBody(const FnPlan &Plan) {
  // The classic xmalloc pattern: allocate, optionally fail, return.
  assert(Plan.RetShape >= 0 && "wrapper must return a pointer");
  const struct Shape &S = Shapes[Plan.RetShape];
  Variable *P = freshVar("p");
  bool Uninit = Rng.chance(70);
  B.createAlloc(P, Region::Heap, S.NumFields, !Uninit, false,
                "wrapobj" + std::to_string(ObjCounter++));
  definePtr(P, PtrKind::ObjBase, static_cast<unsigned>(Plan.RetShape),
            false);
  B.createRet(Operand::var(P));
}

void Generator::emitBody(const FnPlan &Plan) {
  Pool.clear();
  VarCounter = 0;
  BlockCounter = 0;
  B.setInsertPoint(Plan.F->createBlock("entry"));

  for (size_t Idx = 0; Idx != Plan.F->params().size(); ++Idx) {
    int PS = Plan.ParamShape[Idx];
    if (PS < 0)
      defineInt(Plan.F->params()[Idx], false);
    else
      definePtr(Plan.F->params()[Idx], PtrKind::ObjBase,
                static_cast<unsigned>(PS), false);
  }

  if (Plan.WrapperStyle) {
    emitWrapperBody(Plan);
    return;
  }

  unsigned Segments =
      1 + static_cast<unsigned>(Rng.below(Opts.MaxSegmentsPerFn));
  for (unsigned I = 0; I != Segments; ++I)
    emitSegment(0);
  emitRet(Plan);
}

std::unique_ptr<Module> Generator::run() {
  // Shape table: ints only, one pointer level, two pointer levels.
  Shapes.push_back({1 + static_cast<unsigned>(Rng.below(4)), -1, 0});
  Shapes.push_back(
      {2 + static_cast<unsigned>(Rng.below(3)),
       static_cast<int>(1 + Rng.below(2)), 0});
  Shapes[1].PtrSlot = static_cast<int>(Shapes[1].NumFields - 1);
  Shapes.push_back({3, 2, 1});

  // A couple of global objects, laid out like shape 0 (integers only) so
  // pointers to them can be field-addressed safely.
  unsigned NumGlobals = 1 + static_cast<unsigned>(Rng.below(3));
  for (unsigned I = 0; I != NumGlobals; ++I)
    M->createObject("g" + std::to_string(I), Region::Global,
                    Shapes[0].NumFields,
                    /*Initialized=*/Rng.chance(60), /*IsArray=*/false);

  // Plan the functions: callees first, main last.
  for (unsigned I = 0; I != Opts.NumFunctions; ++I) {
    FnPlan Plan;
    Plan.F = M->createFunction("f" + std::to_string(I));
    Plan.WrapperStyle = I == 0 && Rng.chance(60);
    unsigned NumParams =
        Plan.WrapperStyle ? 0 : static_cast<unsigned>(Rng.below(4));
    for (unsigned P = 0; P != NumParams; ++P) {
      bool IsPtr = Rng.chance(35);
      Plan.ParamShape.push_back(
          IsPtr ? static_cast<int>(Rng.below(Shapes.size())) : -1);
      Plan.F->createVariable("a" + std::to_string(P), /*IsParam=*/true);
    }
    if (Plan.WrapperStyle)
      Plan.RetShape = static_cast<int>(Rng.below(Shapes.size()));
    else if (Rng.chance(25))
      Plan.RetShape = static_cast<int>(Rng.below(Shapes.size()));
    else
      Plan.RetShape = Rng.chance(15) ? -2 : -1;
    Plans.push_back(Plan);
  }
  {
    FnPlan MainPlan;
    MainPlan.F = M->createFunction("main");
    MainPlan.RetShape = -1;
    Plans.push_back(MainPlan);
  }

  for (size_t I = 0; I != Plans.size(); ++I) {
    CurFn = &Plans[I];
    CurFnIndex = I;
    emitBody(Plans[I]);
  }

  M->renumber();
  verifyModuleOrAbort(*M);
  return std::move(M);
}

std::unique_ptr<Module> workload::generateProgram(uint64_t Seed,
                                                  GeneratorOptions Opts) {
  return Generator(Seed, Opts).run();
}

//===----------------------------------------------------------------------===//
// Text-level mutation API
//===----------------------------------------------------------------------===//

namespace {

std::string stripComment(const std::string &Line) {
  size_t Pos = Line.find("//");
  return Pos == std::string::npos ? Line : Line.substr(0, Pos);
}

std::string trimmedStmt(const std::string &Line) {
  std::string S = stripComment(Line);
  size_t Begin = S.find_first_not_of(" \t");
  if (Begin == std::string::npos)
    return "";
  size_t End = S.find_last_not_of(" \t");
  return S.substr(Begin, End - Begin + 1);
}

std::vector<std::string> splitLines(const std::string &Source) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Source) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

/// A statement line: ends in ';' and is not a declaration. Terminators
/// (goto / if / ret) count; mutations that break a block's structure
/// produce invalid mutants the caller's validity filter discards.
bool isStmtLine(const std::string &Line) {
  std::string T = trimmedStmt(Line);
  return !T.empty() && T.back() == ';' && T.rfind("var ", 0) != 0 &&
         T.rfind("global ", 0) != 0;
}

std::vector<size_t> stmtIndexes(const std::vector<std::string> &Lines) {
  std::vector<size_t> Stmts;
  for (size_t I = 0; I != Lines.size(); ++I)
    if (isStmtLine(Lines[I]))
      Stmts.push_back(I);
  return Stmts;
}

/// Body line ranges [Begin, End) between each `func ... {` header and its
/// closing `}` (both at the printer's fixed layout).
struct FnRange {
  size_t Begin, End;
};

std::vector<FnRange> functionRanges(const std::vector<std::string> &Lines) {
  std::vector<FnRange> Ranges;
  size_t Start = 0;
  bool In = false;
  for (size_t I = 0; I != Lines.size(); ++I) {
    std::string T = trimmedStmt(Lines[I]);
    if (!In && T.rfind("func ", 0) == 0 && !T.empty() && T.back() == '{') {
      In = true;
      Start = I + 1;
    } else if (In && T == "}") {
      Ranges.push_back({Start, I});
      In = false;
    }
  }
  return Ranges;
}

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

bool isTinyCKeyword(const std::string &T) {
  static const char *Keywords[] = {"alloc",  "stack", "heap", "init",
                                   "uninit", "array", "gep",  "goto",
                                   "if",     "ret",   "var",  "func",
                                   "global"};
  for (const char *K : Keywords)
    if (T == K)
      return true;
  return false;
}

/// Identifier tokens of \p Line that can be variable references: skips
/// keywords and call callees (tokens directly followed by '(').
std::vector<std::string> identTokens(const std::string &Line) {
  std::string S = stripComment(Line);
  std::vector<std::string> Out;
  for (size_t I = 0; I != S.size();) {
    if (std::isalpha(static_cast<unsigned char>(S[I])) || S[I] == '_') {
      size_t J = I;
      while (J != S.size() && isIdentChar(S[J]))
        ++J;
      std::string Tok = S.substr(I, J - I);
      size_t K = J;
      while (K != S.size() && S[K] == ' ')
        ++K;
      bool IsCallee = K != S.size() && S[K] == '(';
      if (!isTinyCKeyword(Tok) && !IsCallee)
        Out.push_back(Tok);
      I = J;
    } else {
      ++I;
    }
  }
  return Out;
}

} // namespace

std::string workload::mutateProgram(const std::string &Source, uint64_t Seed,
                                    MutationOptions MOpts) {
  RNG Rng(Seed);
  std::vector<std::string> Lines = splitLines(Source);
  unsigned Count = 1 + static_cast<unsigned>(
                           Rng.below(std::max(1u, MOpts.MaxMutations)));
  for (unsigned K = 0; K != Count; ++K) {
    std::vector<size_t> Stmts = stmtIndexes(Lines);
    if (Stmts.empty())
      break;
    switch (Rng.below(6)) {
    case 0: { // Delete a statement (returns stay: every path needs one).
      size_t Idx = Stmts[Rng.below(Stmts.size())];
      if (trimmedStmt(Lines[Idx]).rfind("ret", 0) != 0)
        Lines.erase(Lines.begin() + static_cast<std::ptrdiff_t>(Idx));
      break;
    }
    case 1: { // Duplicate a statement onto another statement position.
      size_t From = Stmts[Rng.below(Stmts.size())];
      size_t To = Stmts[Rng.below(Stmts.size())];
      std::string Copy = Lines[From];
      Lines.insert(Lines.begin() + static_cast<std::ptrdiff_t>(To),
                   std::move(Copy));
      break;
    }
    case 2: { // Swap two textually adjacent statements.
      if (Stmts.size() < 2)
        break;
      size_t I = Rng.below(Stmts.size() - 1);
      std::swap(Lines[Stmts[I]], Lines[Stmts[I + 1]]);
      break;
    }
    case 3: { // Flip an allocation or global initializer.
      std::vector<size_t> Cands;
      for (size_t I = 0; I != Lines.size(); ++I) {
        std::string T = stripComment(Lines[I]);
        if (T.find(" uninit") != std::string::npos ||
            T.find(" init") != std::string::npos)
          Cands.push_back(I);
      }
      if (Cands.empty())
        break;
      std::string &L = Lines[Cands[Rng.below(Cands.size())]];
      size_t Pos = L.find(" uninit");
      if (Pos != std::string::npos) {
        L.replace(Pos, 7, " init");
      } else if ((Pos = L.find(" init")) != std::string::npos) {
        L.replace(Pos, 5, " uninit");
      }
      break;
    }
    case 4: { // Perturb an integer literal.
      size_t Idx = Stmts[Rng.below(Stmts.size())];
      std::string S = stripComment(Lines[Idx]);
      std::vector<std::pair<size_t, size_t>> Runs; // (pos, len)
      for (size_t I = 0; I != S.size();) {
        if (std::isdigit(static_cast<unsigned char>(S[I]))) {
          size_t J = I;
          while (J != S.size() &&
                 std::isdigit(static_cast<unsigned char>(S[J])))
            ++J;
          // Skip digits glued to an identifier (the 3 of "then3").
          if (I == 0 || !isIdentChar(S[I - 1]))
            Runs.push_back({I, J - I});
          I = J;
        } else {
          ++I;
        }
      }
      if (Runs.empty())
        break;
      auto [Pos, Len] = Runs[Rng.below(Runs.size())];
      static const int64_t Pool[] = {0, 1, 2, 3, 7, 63};
      S.replace(Pos, Len, std::to_string(Pool[Rng.below(std::size(Pool))]));
      Lines[Idx] = S;
      break;
    }
    case 5: { // Re-assign an existing variable with a constant: overwrites
              // shift definedness without changing the program's shape.
      std::vector<size_t> Defs;
      for (size_t I : Stmts) {
        std::string T = trimmedStmt(Lines[I]);
        size_t Eq = T.find(" = ");
        if (Eq == std::string::npos || T[0] == '*')
          continue;
        std::string Name = T.substr(0, Eq);
        if (!Name.empty() &&
            std::all_of(Name.begin(), Name.end(), isIdentChar) &&
            !isTinyCKeyword(Name))
          Defs.push_back(I);
      }
      if (Defs.empty())
        break;
      size_t Idx = Defs[Rng.below(Defs.size())];
      std::string T = trimmedStmt(Lines[Idx]);
      std::string Name = T.substr(0, T.find(" = "));
      Lines.insert(Lines.begin() + static_cast<std::ptrdiff_t>(Idx) + 1,
                   "  " + Name + " = " + std::to_string(Rng.range(-4, 99)) +
                       ";");
      break;
    }
    }
  }
  return joinLines(Lines);
}

std::string workload::spliceProgram(const std::string &Receiver,
                                    const std::string &Donor, uint64_t Seed) {
  RNG Rng(Seed);
  std::vector<std::string> RLines = splitLines(Receiver);
  std::vector<std::string> DLines = splitLines(Donor);

  // Donor candidates: plain statements only. Control flow would dangle
  // (labels don't travel) and calls rarely match the receiver's function
  // signatures, so both are excluded up front instead of being generated
  // and thrown away by the caller's validity filter.
  auto IsSpliceable = [&](size_t I) {
    if (!isStmtLine(DLines[I]))
      return false;
    std::string T = trimmedStmt(DLines[I]);
    return T.find("goto") == std::string::npos && T.rfind("ret", 0) != 0 &&
           T.find('(') == std::string::npos;
  };
  std::vector<size_t> Cands;
  for (size_t I = 0; I != DLines.size(); ++I)
    if (IsSpliceable(I))
      Cands.push_back(I);
  if (Cands.empty())
    return Receiver;

  // A contiguous run of 1..4 spliceable lines, re-indented, locs dropped.
  size_t Start = Cands[Rng.below(Cands.size())];
  size_t MaxLen = 1 + Rng.below(4);
  std::vector<std::string> Run;
  std::vector<std::string> Used;
  for (size_t I = Start; I != DLines.size() && Run.size() < MaxLen; ++I) {
    if (!IsSpliceable(I))
      break;
    Run.push_back("  " + trimmedStmt(DLines[I]));
    for (std::string &Tok : identTokens(DLines[I]))
      Used.push_back(std::move(Tok));
  }

  // Insert after a random statement of a random receiver function (after
  // a statement == inside a block, so no label bookkeeping is needed).
  std::vector<FnRange> Ranges = functionRanges(RLines);
  if (Ranges.empty())
    return Receiver;
  FnRange R = Ranges[Rng.below(Ranges.size())];
  std::vector<size_t> RStmts;
  for (size_t I = R.Begin; I != R.End; ++I)
    if (isStmtLine(RLines[I]))
      RStmts.push_back(I);
  if (RStmts.empty())
    return Receiver;
  size_t At = RStmts[Rng.below(RStmts.size())];

  // Names already visible at the insertion point: the function's params
  // (header line), its `var` line, and the globals.
  std::vector<std::string> Declared;
  if (R.Begin > 0)
    for (std::string &Tok : identTokens(RLines[R.Begin - 1]))
      Declared.push_back(std::move(Tok));
  size_t VarLine = ~size_t(0);
  for (size_t I = R.Begin; I != R.End; ++I)
    if (trimmedStmt(RLines[I]).rfind("var ", 0) == 0) {
      VarLine = I;
      for (std::string &Tok : identTokens(RLines[I]))
        Declared.push_back(std::move(Tok));
      break;
    }
  for (const std::string &L : RLines) {
    if (trimmedStmt(L).rfind("global ", 0) != 0)
      continue;
    for (std::string &Tok : identTokens(L))
      Declared.push_back(std::move(Tok));
  }
  std::vector<std::string> Missing;
  for (const std::string &Name : Used)
    if (std::find(Declared.begin(), Declared.end(), Name) == Declared.end() &&
        std::find(Missing.begin(), Missing.end(), Name) == Missing.end())
      Missing.push_back(Name);

  RLines.insert(RLines.begin() + static_cast<std::ptrdiff_t>(At) + 1,
                Run.begin(), Run.end());
  if (!Missing.empty()) {
    std::string Decl;
    for (const std::string &Name : Missing)
      Decl += ", " + Name;
    if (VarLine != ~size_t(0)) {
      size_t Semi = RLines[VarLine].rfind(';');
      if (Semi != std::string::npos)
        RLines[VarLine].insert(Semi, Decl);
    } else {
      // "  var a, b;" from ", a, b".
      RLines.insert(RLines.begin() + static_cast<std::ptrdiff_t>(R.Begin),
                    "  var " + Decl.substr(2) + ";");
    }
  }
  return joinLines(RLines);
}

std::string workload::wrapMainInCall(const std::string &Source) {
  std::vector<std::string> Lines = splitLines(Source);
  size_t HeaderIdx = ~size_t(0);
  for (size_t I = 0; I != Lines.size(); ++I)
    if (trimmedStmt(Lines[I]).rfind("func main(", 0) == 0) {
      HeaderIdx = I;
      break;
    }
  if (HeaderIdx == ~size_t(0))
    return "";
  std::string Name = "um_wrap";
  for (unsigned N = 0; Source.find(Name) != std::string::npos; ++N)
    Name = "um_wrap" + std::to_string(N);
  size_t Pos = Lines[HeaderIdx].find("main");
  Lines[HeaderIdx].replace(Pos, 4, Name);
  Lines.push_back("");
  Lines.push_back("func main() {");
  Lines.push_back("  var wret;");
  Lines.push_back("entry:");
  Lines.push_back("  wret = " + Name + "();");
  Lines.push_back("  ret wret;");
  Lines.push_back("}");
  return joinLines(Lines);
}
