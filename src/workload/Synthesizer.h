//===- workload/Synthesizer.h - Whole-program workload synthesizer -*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scales the workload axis: a deterministic synthesizer of whole TinyC
/// programs with controlled shape (call-graph depth and fanout, mutual-
/// recursion SCC structure, pointer density, field-chain depth, fraction
/// of uninitialized allocations) and a size dial calibrated in VFG nodes,
/// plus a program linker that renames and composes independently written
/// programs (the 15 SPEC-like suite programs, synthesized modules, or any
/// mix) into one module with a generated driver `main`.
///
/// Every synthesized program:
///  - parses, verifies and terminates (loops are counter-bounded and
///    recursion rings burn an explicit fuel parameter);
///  - never traps (every dereferenced pointer is a local allocation, a
///    parameter backed by a caller allocation, or a pointer reloaded from
///    a cell a dominating store just wrote);
///  - runs its whole body exactly once regardless of how many call-graph
///    paths reach a function (a global memo array guards each body), so
///    dynamic cost stays linear in program size even though the static
///    call graph is a dense layered DAG;
///  - is byte-identical for a fixed spec across ShapeSpec::Jobs values
///    (function bodies are pure functions of (spec, function index) and
///    are merged in index order).
///
/// Undefined values enter through uninitialized allocations whose cells
/// are loaded and then branched on (the branch is the critical use the
/// interpreter's oracle reports). With DefineAll set, every allocation is
/// initialized and no such branch is emitted, so the program is
/// warning-free by construction — the property SynthesizerTest pins.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_WORKLOAD_SYNTHESIZER_H
#define USHER_WORKLOAD_SYNTHESIZER_H

#include <cstdint>
#include <string>
#include <vector>

namespace usher {
namespace ir {
class Instruction;
class Module;
}

namespace workload {

/// The shape specification usher-gen exposes. Defaults produce a mid-size
/// program (~10k VFG nodes) with a realistic mix.
struct ShapeSpec {
  uint64_t Seed = 1;
  /// Approximate VFG node count of the full pipeline on the synthesized
  /// program (the size dial). The calibration constant is pinned by
  /// SynthesizerTest within a factor-of-two band; bench_scale records the
  /// measured value next to the target.
  unsigned TargetNodes = 10'000;
  /// Call-tree levels below main. The layered call graph has exactly this
  /// acyclic depth (measured over the SCC condensation).
  unsigned CallDepth = 6;
  /// Distinct callees per non-leaf tree function. Levels have constant
  /// width, so callees are shared between callers (a DAG, not a tree) —
  /// that is what grows context counts the way real call graphs do.
  unsigned Fanout = 3;
  /// Mutual-recursion rings (one nontrivial call-graph SCC each).
  unsigned RecursionRings = 2;
  /// Functions per ring. 1 degenerates to self-recursion.
  unsigned RingSize = 3;
  /// Percentage of body statements that are pointer operations
  /// (alloc/gep/load/store/field chains); the rest is integer work.
  unsigned PtrDensityPercent = 35;
  /// Maximum linked field-chain descent (store next-pointer, reload it,
  /// gep the loaded base again — LoadDef-reached bases in the VFG).
  unsigned FieldChainDepth = 3;
  /// Percentage of allocations left uninitialized.
  unsigned UninitAllocPercent = 40;
  /// Initialize every allocation and emit no branch on a possibly-
  /// undefined value: the program is warning-free by construction.
  bool DefineAll = false;
  /// Worker threads for body generation (0 = all cores). The output is
  /// byte-identical for every value.
  unsigned Jobs = 1;
};

/// Synthesizes one TinyC program from \p Spec. Deterministic; the text
/// parses, verifies, and terminates warning-free iff Spec.DefineAll.
std::string synthesizeProgram(const ShapeSpec &Spec);

/// What a module's call graph and allocation sites actually look like;
/// the property tests compare this against the requested ShapeSpec.
struct ShapeMetrics {
  unsigned NumFunctions = 0;   ///< Including main.
  uint64_t NumInstructions = 0;
  /// Longest acyclic path from main over the call-graph SCC condensation,
  /// in edges (main -> level0 -> ... counts CallDepth + ring attachment).
  unsigned CallDepth = 0;
  /// Distinct callees averaged over functions that call anything,
  /// excluding main (whose fanout is the level width by construction).
  double AvgFanout = 0;
  /// Call-graph SCCs that are genuine cycles (size > 1 or a self-loop).
  unsigned NontrivialSccs = 0;
  /// Uninitialized fraction of alloc-site objects (globals excluded).
  double UninitAllocFraction = 0;
};

/// Measures \p M (any verified module, not just synthesized ones).
ShapeMetrics measureShape(ir::Module &M);

/// One input program for the linker.
struct LinkUnit {
  std::string Name;   ///< Display name, e.g. "164.gzip".
  std::string Source; ///< TinyC text with its own `main`.
};

/// linkPrograms result: the composed module plus the per-unit symbol
/// prefixes ("u0_", "u1_", ...) callers use to map renamed functions and
/// globals back to their origin.
struct LinkedProgram {
  std::string Source;
  std::vector<std::string> Prefixes; ///< Parallel to the input units.
};

/// Renames every function and global of each unit with a per-unit prefix
/// (its `main` becomes `<prefix>main`), concatenates the renamed units,
/// and appends a driver `main` that calls each unit's entry in order and
/// returns the sum of their results. Per-unit behaviour is unchanged:
/// units share no state (globals are renamed apart), so the linked run's
/// warning set is the union of the standalone runs' warning sets under
/// the prefix mapping. On a parse failure of any unit, returns an empty
/// Source and, when \p Error is non-null, says which unit and why.
LinkedProgram linkPrograms(const std::vector<LinkUnit> &Units,
                           std::string *Error = nullptr);

/// Stable identity of a warning site that survives linking: the holding
/// function's name (with \p StripPrefix removed when it matches), the
/// basic-block name, and the instruction's index within the block.
std::string warningSiteKey(const ir::Instruction *At,
                           const std::string &StripPrefix = "");

} // namespace workload
} // namespace usher

#endif // USHER_WORKLOAD_SYNTHESIZER_H
