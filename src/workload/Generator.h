//===- workload/Generator.h - Random TinyC program generator ----*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generator of valid, terminating, trap-free TinyC programs that
/// deliberately mix defined and undefined values. Used by property tests
/// (the paper's soundness claim: guided instrumentation misses nothing
/// that full instrumentation reports) and by scaling benchmarks.
///
/// Generated programs:
///  - always terminate (loops are counter-bounded);
///  - never trap (pointer-typed values are tracked during generation and
///    pointers loaded from possibly-uninitialized cells are null-guarded
///    before dereferencing — the guard branch itself is a critical use of
///    a possibly-undefined value, which is exactly what we want to test);
///  - contain uninitialized stack/heap/global objects, partial
///    initialization, pointer chains through memory, calls (including
///    allocation-wrapper patterns) and dead code.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_WORKLOAD_GENERATOR_H
#define USHER_WORKLOAD_GENERATOR_H

#include <cstdint>
#include <memory>
#include <string>

namespace usher {
namespace ir {
class Module;
}

namespace workload {

/// Tuning knobs for the generator.
struct GeneratorOptions {
  unsigned NumFunctions = 4;     ///< Besides main.
  unsigned MaxSegmentsPerFn = 6; ///< Straight-line / if / loop segments.
  unsigned MaxStmtsPerSegment = 8;
  unsigned MaxLoopTrip = 6;
  /// Percentage of allocations left uninitialized.
  unsigned UninitAllocPercent = 45;
  /// Percentage of statements that read a possibly-undefined variable.
  unsigned UndefUsePercent = 12;
  /// Emit multi-level field chains: gep through a pointer slot, store a
  /// fresh pointee, reload it and gep the *loaded* base again.
  bool NestedFieldChains = true;
  /// Emit counter-bounded loops that advance a pointer through an array
  /// (`x = *p; p = gep p, 1;` — pointer induction).
  bool PointerInductionLoops = true;
  /// Follow pointer-returning calls with a field access on the result
  /// (`r = f(); q = gep r, 0; x = *q;`).
  bool CallResultFieldAccess = true;
};

/// Generates a verified, renumbered module from \p Seed.
std::unique_ptr<ir::Module>
generateProgram(uint64_t Seed, GeneratorOptions Opts = GeneratorOptions());

//===--------------------------------------------------------------------===//
// Text-level mutation API (the fuzzer's input scheduler)
//===--------------------------------------------------------------------===//
//
// Mutations operate on TinyC *source text*: the printer and parser
// round-trip, statement lines are self-delimiting (they end in ';'), and
// text splices compose across programs in a way in-memory IR cannot.
// Mutants are only syntactically plausible — callers must re-parse,
// verify and natively execute each one, discarding failures
// (generate-and-filter, as in Csmith-style fuzzing). All entry points are
// deterministic functions of their arguments.

/// Knobs for mutateProgram.
struct MutationOptions {
  /// 1..MaxMutations point mutations are applied per call.
  unsigned MaxMutations = 3;
};

/// Applies a random batch of statement-level mutations to \p Source:
/// delete / duplicate / swap statement lines, flip `init` <-> `uninit` on
/// allocations and globals, perturb integer literals, and insert
/// redefinitions of existing variables.
std::string mutateProgram(const std::string &Source, uint64_t Seed,
                          MutationOptions Opts = MutationOptions());

/// Splices a short contiguous run of statements from \p Donor into a
/// function of \p Receiver, declaring any donor-only names in the
/// receiver's `var` line (they start undefined there — which is exactly
/// the kind of value flow worth fuzzing).
std::string spliceProgram(const std::string &Receiver,
                          const std::string &Donor, uint64_t Seed);

/// Renames `main` to a fresh wrapper name and appends a new `main` that
/// calls it, growing every interprocedural analysis context and the
/// dynamic call depth by one. Returns "" if \p Source has no main.
std::string wrapMainInCall(const std::string &Source);

} // namespace workload
} // namespace usher

#endif // USHER_WORKLOAD_GENERATOR_H
