//===- workload/Generator.h - Random TinyC program generator ----*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generator of valid, terminating, trap-free TinyC programs that
/// deliberately mix defined and undefined values. Used by property tests
/// (the paper's soundness claim: guided instrumentation misses nothing
/// that full instrumentation reports) and by scaling benchmarks.
///
/// Generated programs:
///  - always terminate (loops are counter-bounded);
///  - never trap (pointer-typed values are tracked during generation and
///    pointers loaded from possibly-uninitialized cells are null-guarded
///    before dereferencing — the guard branch itself is a critical use of
///    a possibly-undefined value, which is exactly what we want to test);
///  - contain uninitialized stack/heap/global objects, partial
///    initialization, pointer chains through memory, calls (including
///    allocation-wrapper patterns) and dead code.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_WORKLOAD_GENERATOR_H
#define USHER_WORKLOAD_GENERATOR_H

#include <cstdint>
#include <memory>

namespace usher {
namespace ir {
class Module;
}

namespace workload {

/// Tuning knobs for the generator.
struct GeneratorOptions {
  unsigned NumFunctions = 4;     ///< Besides main.
  unsigned MaxSegmentsPerFn = 6; ///< Straight-line / if / loop segments.
  unsigned MaxStmtsPerSegment = 8;
  unsigned MaxLoopTrip = 6;
  /// Percentage of allocations left uninitialized.
  unsigned UninitAllocPercent = 45;
  /// Percentage of statements that read a possibly-undefined variable.
  unsigned UndefUsePercent = 12;
};

/// Generates a verified, renumbered module from \p Seed.
std::unique_ptr<ir::Module>
generateProgram(uint64_t Seed, GeneratorOptions Opts = GeneratorOptions());

} // namespace workload
} // namespace usher

#endif // USHER_WORKLOAD_GENERATOR_H
