//===- workload/Spec2000.h - SPEC CPU2000-like benchmark suite --*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates on the 15 SPEC CPU2000 C programs, which are not
/// redistributable. This suite substitutes 15 TinyC programs, one per SPEC
/// benchmark, each imitating the original's dominant behaviour (documented
/// per program): pointer density, heap/stack/global mix, fraction of
/// uninitialized allocations, call structure, and the presence of the one
/// true bug the paper reports (197.parser's ppmatch). The paper's trends
/// are driven by these shape properties, not by the exact SPEC sources.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_WORKLOAD_SPEC2000_H
#define USHER_WORKLOAD_SPEC2000_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace usher {
namespace ir {
class Module;
}

namespace workload {

/// One benchmark: TinyC source plus its expected behaviour, used as a
/// self-check by tests and the benchmark harness.
struct BenchmarkProgram {
  std::string Name;        ///< SPEC-style name, e.g. "164.gzip".
  std::string Description; ///< What the program imitates.
  const char *Source;      ///< TinyC text.
  int64_t ExpectedResult;  ///< main()'s return value.
  /// Number of distinct critical statements that use an undefined value
  /// (0 for every benchmark except 197.parser, matching the paper).
  unsigned ExpectedBugSites;
};

/// The 15 benchmarks in SPEC numbering order.
const std::vector<BenchmarkProgram> &spec2000Suite();

/// Parses and verifies one benchmark.
std::unique_ptr<ir::Module> loadBenchmark(const BenchmarkProgram &B);

} // namespace workload
} // namespace usher

#endif // USHER_WORKLOAD_SPEC2000_H
