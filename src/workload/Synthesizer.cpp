//===- workload/Synthesizer.cpp - Whole-program workload synthesizer ------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
//
// Program layout. A synthesized program is a layered call DAG of "tree"
// functions t<level>_<w> (Depth levels of constant width W), Rings
// mutual-recursion rings k<r>_<m> (fuel-bounded), and a driver main:
//
//   main -> t0_0 .. t0_{W-1}           (one call per level-0 function)
//        -> k0_0, k1_0, ...            (one call per ring entry)
//   t<l>_<w> -> t<l+1>_{(w+j) % W}     (j = 0..Fanout-1, distinct, so the
//                                       acyclic depth is exactly Depth and
//                                       every function is reachable)
//   k<r>_<m> -> k<r>_{(m+1) % RingSize} (one SCC per ring)
//
// Two init globals, gdone and gres, memoize the tree bodies: a body that
// finds its done-flag set skips straight to reloading its cached result,
// so each body executes exactly once and dynamic cost is linear in the
// static size even though the DAG has Fanout^Depth paths.
//
// Every function body is rendered by a PRNG seeded from (Spec.Seed,
// function index) alone, so bodies can be generated on a thread pool and
// concatenated in index order — byte-identical output for every Jobs.
//
//===----------------------------------------------------------------------===//

#include "workload/Synthesizer.h"

#include "ir/IR.h"
#include "parser/Parser.h"
#include "support/RNG.h"
#include "support/RawStream.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

using namespace usher;
using namespace usher::workload;

namespace {

//===----------------------------------------------------------------------===//
// Size planning
//===----------------------------------------------------------------------===//

/// VFG nodes the full pipeline builds per emitted statement, measured via
/// `usher-cli --stats` on default-shape programs across the size range
/// (SynthesizerTest pins the dial within a factor-of-two band). Stable to
/// within ~10% from ~4k to ~500k nodes once bodies are capped at
/// MaxStmtsPerFn; very small programs (bodies far below the cap) land
/// under target, inside the band.
constexpr double NodesPerStmt = 19.6;

/// Bodies past this size stop looking like functions and start looking
/// like one giant block — and memory-SSA/VFG cost per function grows
/// superlinearly in body size (objects x merge points), which would bend
/// the node dial. Grow the level width instead.
constexpr unsigned MaxStmtsPerFn = 60;
constexpr unsigned MinStmtsPerFn = 10;

/// Fields of every call-argument allocation (the synthesized ABI): each
/// callee may gep fields 0..AbiFields-1 of its pointer parameter.
constexpr unsigned AbiFields = 4;

struct Plan {
  unsigned W = 1;        ///< Level width.
  unsigned Depth = 1;    ///< Tree levels.
  unsigned Fanout = 1;   ///< Distinct callees per non-leaf tree function.
  unsigned Rings = 0;
  unsigned RingSize = 1;
  unsigned NumTree = 1;  ///< W * Depth.
  unsigned NumRing = 0;  ///< Rings * RingSize.
  unsigned StmtsPerFn = MinStmtsPerFn;
};

Plan planFromSpec(const ShapeSpec &Spec) {
  Plan P;
  P.Depth = std::max(Spec.CallDepth, 1u);
  P.Fanout = std::max(Spec.Fanout, 1u);
  P.Rings = Spec.RecursionRings;
  P.RingSize = std::max(Spec.RingSize, 1u);
  P.NumRing = P.Rings * P.RingSize;

  uint64_t TotalStmts = std::max<uint64_t>(
      static_cast<uint64_t>(Spec.TargetNodes / NodesPerStmt), 96);

  // Narrowest width that honors Fanout (callees must be distinct), then
  // widen until bodies fit under MaxStmtsPerFn.
  P.W = std::max(P.Fanout, 2u);
  uint64_t Funcs = uint64_t(P.W) * P.Depth + P.NumRing + 1;
  if (TotalStmts / Funcs > MaxStmtsPerFn) {
    uint64_t NeedFuncs = TotalStmts / MaxStmtsPerFn + 1;
    uint64_t NeedW = NeedFuncs > P.NumRing + 1
                         ? (NeedFuncs - P.NumRing - 1 + P.Depth - 1) / P.Depth
                         : 1;
    P.W = std::max<unsigned>(P.W, static_cast<unsigned>(NeedW));
    Funcs = uint64_t(P.W) * P.Depth + P.NumRing + 1;
  }
  P.NumTree = P.W * P.Depth;
  P.StmtsPerFn = static_cast<unsigned>(std::clamp<uint64_t>(
      TotalStmts / Funcs, MinStmtsPerFn, MaxStmtsPerFn));
  return P;
}

//===----------------------------------------------------------------------===//
// Body generation
//===----------------------------------------------------------------------===//

std::string treeName(unsigned Level, unsigned W) {
  return "t" + std::to_string(Level) + "_" + std::to_string(W);
}
std::string ringName(unsigned Ring, unsigned Member) {
  return "k" + std::to_string(Ring) + "_" + std::to_string(Member);
}

/// Renders one function body. Tracks just enough state to stay trap-free:
/// which integers are definitely defined, which may be undefined, and
/// which pointers are safe to dereference (own allocations and pointers
/// reloaded from a cell a dominating store just wrote).
class BodyGen {
public:
  BodyGen(const ShapeSpec &Spec, uint64_t FnSalt)
      : Spec(Spec), R(Spec.Seed * 0x9E3779B97F4A7C15ULL +
                      (FnSalt + 1) * 0x6A09E667F3BCC909ULL) {}

  std::string Out;

  void line(const std::string &S) { Out += "  " + S + "\n"; }
  void label(const std::string &L) { Out += L + ":\n"; }

  std::string freshVar() { return "v" + std::to_string(NextVar++); }
  std::string freshLabel() { return "L" + std::to_string(NextLabel++); }

  /// Seeds the defined-value pool; call once per body before filling.
  void seedDefined() {
    std::string Z = freshVar();
    line(Z + " = " + std::to_string(R.range(1, 9)) + ";");
    Defined.push_back(Z);
  }

  void noteDefined(const std::string &V) { Defined.push_back(V); }
  void noteMaybeUndef(const std::string &V) { MaybeUndef.push_back(V); }

  /// A defined integer operand: an existing defined variable or a literal.
  std::string pickDefined() {
    if (Defined.empty() || R.chance(25))
      return std::to_string(R.range(0, 99));
    return Defined[R.below(Defined.size())];
  }

  /// Loads field \p Field of pointer variable \p Ptr into a fresh var.
  std::string emitLoad(const std::string &Ptr, unsigned Field, bool Def) {
    std::string A = freshVar(), X = freshVar();
    line(A + " = gep " + Ptr + ", " + std::to_string(Field) + ";");
    line(X + " = *" + A + ";");
    if (Def)
      Defined.push_back(X);
    else
      MaybeUndef.push_back(X);
    return X;
  }

  /// Emits approximately \p Budget statements of mixed pointer and
  /// integer work. Never emits a branch on a possibly-undefined value
  /// when Spec.DefineAll (those diamonds are the only warning sources).
  void fill(unsigned Budget) {
    unsigned Emitted = 0;
    while (Emitted < Budget) {
      if (R.chance(Spec.PtrDensityPercent))
        Emitted += emitPtrStmt(Budget - Emitted);
      else
        Emitted += emitIntStmt(Budget - Emitted);
    }
  }

  /// True with the spec's uninit probability — except under DefineAll,
  /// where every allocation is initialized.
  bool drawUninit() {
    return !Spec.DefineAll && R.chance(Spec.UninitAllocPercent);
  }

private:
  struct PtrInfo {
    std::string Name;
    unsigned Fields;
    bool Init;
    uint32_t StoredMask; ///< Fields a dominating store defined.
  };

  unsigned emitIntStmt(unsigned Remaining) {
    unsigned Kind = static_cast<unsigned>(R.below(10));
    // Undef-use diamond: the `if` on a possibly-undefined value is the
    // critical operation the oracle reports.
    if (Kind < 2 && !Spec.DefineAll && !MaybeUndef.empty()) {
      std::string U = MaybeUndef[R.below(MaybeUndef.size())];
      std::string X = freshVar(), L = freshLabel();
      line(X + " = " + pickDefined() + ";");
      line("if " + U + " goto " + L + ";");
      line(X + " = " + X + " + " + std::to_string(R.range(1, 9)) + ";");
      label(L);
      Defined.push_back(X);
      return 3;
    }
    if (Kind < 4 && Remaining >= 6) {
      // Counter-bounded loop around a couple of masking ops.
      std::string I = freshVar(), C = freshVar(), B = freshVar();
      std::string L = freshLabel();
      int64_t Trip = R.range(2, 4);
      line(I + " = 0;");
      line(B + " = " + pickDefined() + ";");
      label(L);
      line(B + " = " + B + " ^ " + std::to_string(R.range(1, 255)) + ";");
      line(I + " = " + I + " + 1;");
      line(C + " = " + I + " < " + std::to_string(Trip) + ";");
      line("if " + C + " goto " + L + ";");
      Defined.push_back(B);
      return 6;
    }
    std::string X = freshVar();
    if (Kind < 7) {
      static const char *Ops[] = {"&", "|", "^", "<", "<=", "==", "!="};
      const char *Op = Ops[R.below(7)];
      line(X + " = " + pickDefined() + " " + Op + " " + pickDefined() + ";");
    } else {
      // Additive step with a small literal keeps magnitudes bounded
      // (general var+var sums could double along a chain).
      const char *Op = R.chance(50) ? " + " : " - ";
      line(X + " = " + pickDefined() + Op + std::to_string(R.range(1, 16)) +
           ";");
    }
    Defined.push_back(X);
    return 1;
  }

  unsigned emitPtrStmt(unsigned Remaining) {
    unsigned Kind = static_cast<unsigned>(R.below(100));
    if (Ptrs.empty() || Kind < 25)
      return emitAlloc();
    if (Kind < 50)
      return emitStore();
    if (Kind < 75)
      return emitFieldLoad();
    if (Spec.FieldChainDepth > 0 && Remaining >= 3 * Spec.FieldChainDepth + 4)
      return emitChain();
    return emitStore();
  }

  unsigned emitAlloc() {
    PtrInfo P;
    P.Name = freshVar();
    P.Fields = static_cast<unsigned>(R.range(1, 4));
    P.Init = !drawUninit();
    P.StoredMask = 0;
    line(P.Name + " = alloc " + (R.chance(40) ? "heap " : "stack ") +
         std::to_string(P.Fields) + (P.Init ? " init;" : " uninit;"));
    Ptrs.push_back(P);
    return 1;
  }

  unsigned emitStore() {
    PtrInfo &P = Ptrs[R.below(Ptrs.size())];
    unsigned F = static_cast<unsigned>(R.below(P.Fields));
    std::string A = freshVar();
    line(A + " = gep " + P.Name + ", " + std::to_string(F) + ";");
    line("*" + A + " = " + pickDefined() + ";");
    P.StoredMask |= 1u << F;
    return 2;
  }

  unsigned emitFieldLoad() {
    PtrInfo &P = Ptrs[R.below(Ptrs.size())];
    unsigned F = static_cast<unsigned>(R.below(P.Fields));
    emitLoad(P.Name, F, P.Init || (P.StoredMask & (1u << F)));
    return 2;
  }

  /// A linked descent: store a fresh node's address into the current
  /// node, reload it (a LoadDef-reached base in the VFG), and gep the
  /// loaded pointer again. The reloaded pointer is always valid — the
  /// store dominates the load — so the deref cannot trap even when the
  /// nodes themselves are uninitialized.
  unsigned emitChain() {
    unsigned Depth = static_cast<unsigned>(
        R.range(1, static_cast<int64_t>(Spec.FieldChainDepth)));
    std::string Head = freshVar();
    bool HeadInit = !drawUninit();
    line(Head + " = alloc stack 2" + (HeadInit ? " init;" : " uninit;"));
    std::string Cur = Head;
    unsigned N = 1;
    bool LastInit = HeadInit;
    for (unsigned K = 0; K != Depth; ++K) {
      std::string Node = freshVar();
      LastInit = !drawUninit();
      line(Node + " = alloc stack 2" + (LastInit ? " init;" : " uninit;"));
      std::string S = freshVar();
      line(S + " = gep " + Cur + ", 0;");
      line("*" + S + " = " + Node + ";");
      std::string Ld = freshVar(), Q = freshVar();
      line(Ld + " = gep " + Cur + ", 0;");
      line(Q + " = *" + Ld + ";");
      Cur = Q;
      N += 5;
    }
    // Tail access through the reloaded base: field 1 was never stored,
    // so its definedness is the last node's init flag.
    emitLoad(Cur, 1, LastInit);
    Ptrs.push_back({Cur, 2, LastInit, 0});
    return N + 2;
  }

  const ShapeSpec &Spec;
  RNG R;
  unsigned NextVar = 0;
  unsigned NextLabel = 0;
  std::vector<std::string> Defined;
  std::vector<std::string> MaybeUndef;
  std::vector<PtrInfo> Ptrs;
};

/// One tree function: memo-guarded body, filler, Fanout child calls each
/// handed a fresh ABI allocation, cached result in gres.
std::string emitTreeFunction(const ShapeSpec &Spec, const Plan &P,
                             unsigned Level, unsigned Wi) {
  unsigned Idx = Level * P.W + Wi;
  BodyGen G(Spec, Idx);
  bool Leaf = Level + 1 == P.Depth;
  unsigned CallOverhead = Leaf ? 0 : P.Fanout * 6;
  unsigned Overhead = 14 + CallOverhead;
  unsigned Filler =
      P.StmtsPerFn > Overhead + 4 ? P.StmtsPerFn - Overhead : 4;

  G.Out += "func " + treeName(Level, Wi) + "(p, d) {\n";
  // Memo guard: gdone/gres are init globals, so the guard itself never
  // branches on an undefined value.
  std::string M0 = G.freshVar(), M1 = G.freshVar();
  G.line(M0 + " = gep gdone, " + std::to_string(Idx) + ";");
  G.line(M1 + " = *" + M0 + ";");
  G.line("if " + M1 + " goto Ld;");
  G.seedDefined();
  G.line("acc = d;");
  G.noteDefined("acc");
  // Interprocedural flow in: the caller's argument allocation may be
  // uninitialized, so this load is the cross-function undef source.
  G.emitLoad("p", Idx % AbiFields, Spec.DefineAll);
  G.fill(Filler);
  if (!Leaf) {
    for (unsigned J = 0; J != P.Fanout; ++J) {
      unsigned Child = (Wi + J) % P.W;
      std::string A = G.freshVar(), S = G.freshVar(), Rv = G.freshVar();
      G.line(A + " = alloc stack " + std::to_string(AbiFields) +
             (G.drawUninit() ? " uninit;" : " init;"));
      G.line(S + " = gep " + A + ", " + std::to_string(J % AbiFields) + ";");
      G.line("*" + S + " = " + G.pickDefined() + ";");
      G.line(Rv + " = " + treeName(Level + 1, Child) + "(" + A + ", acc);");
      G.line("acc = acc + " + Rv + ";");
    }
    // Mask after the summation chain so values stay well inside int64
    // over any Depth/Fanout the spec can request.
    G.line("acc = acc & 1048575;");
  }
  std::string D0 = G.freshVar(), R0 = G.freshVar();
  G.line(D0 + " = gep gres, " + std::to_string(Idx) + ";");
  G.line("*" + D0 + " = acc;");
  G.line(M0 + " = gep gdone, " + std::to_string(Idx) + ";");
  G.line("*" + M0 + " = 1;");
  G.label("Ld");
  G.line(R0 + " = gep gres, " + std::to_string(Idx) + ";");
  G.line("rv = *" + R0 + ";");
  G.line("ret rv;");
  G.Out += "}\n";
  return G.Out;
}

/// One ring member: fuel-bounded recursion into the next member (the
/// ring is one call-graph SCC), with its own filler on the descent path.
std::string emitRingFunction(const ShapeSpec &Spec, const Plan &P,
                             unsigned Ring, unsigned Member) {
  unsigned Idx = P.NumTree + Ring * P.RingSize + Member;
  BodyGen G(Spec, Idx);
  unsigned Filler = std::min(P.StmtsPerFn, 60u);

  G.Out += "func " + ringName(Ring, Member) + "(p, fuel) {\n";
  std::string C = G.freshVar();
  G.line(C + " = fuel < 1;");
  G.line("if " + C + " goto Lb;");
  G.seedDefined();
  G.emitLoad("p", Member % AbiFields, Spec.DefineAll);
  G.fill(Filler);
  std::string Nf = G.freshVar(), Rv = G.freshVar();
  G.line(Nf + " = fuel - 1;");
  G.line(Rv + " = " + ringName(Ring, (Member + 1) % P.RingSize) + "(p, " +
         Nf + ");");
  G.line("rv = " + Rv + " + 1;");
  G.line("ret rv;");
  G.label("Lb");
  G.line("ret 0;");
  G.Out += "}\n";
  return G.Out;
}

/// The driver: calls every level-0 tree function and every ring entry,
/// each with its own ABI allocation, and returns the masked sum.
std::string emitMain(const ShapeSpec &Spec, const Plan &P) {
  BodyGen G(Spec, uint64_t(P.NumTree) + P.NumRing);
  G.Out += "func main() {\n";
  G.line("t = 0;");
  for (unsigned Wi = 0; Wi != P.W; ++Wi) {
    std::string A = G.freshVar(), S = G.freshVar(), Rv = G.freshVar();
    G.line(A + " = alloc stack " + std::to_string(AbiFields) +
           (G.drawUninit() ? " uninit;" : " init;"));
    G.line(S + " = gep " + A + ", " + std::to_string(Wi % AbiFields) + ";");
    G.line("*" + S + " = " + std::to_string(Wi + 1) + ";");
    G.line(Rv + " = " + treeName(0, Wi) + "(" + A + ", " +
           std::to_string(Wi + 1) + ");");
    G.line("t = t + " + Rv + ";");
    G.line("t = t & 1048575;");
  }
  for (unsigned Ri = 0; Ri != P.Rings; ++Ri) {
    std::string A = G.freshVar(), Rv = G.freshVar();
    G.line(A + " = alloc stack " + std::to_string(AbiFields) +
           (G.drawUninit() ? " uninit;" : " init;"));
    G.line(Rv + " = " + ringName(Ri, 0) + "(" + A + ", " +
           std::to_string(P.RingSize * 2) + ");");
    G.line("t = t + " + Rv + ";");
  }
  G.line("ret t;");
  G.Out += "}\n";
  return G.Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// synthesizeProgram
//===----------------------------------------------------------------------===//

std::string workload::synthesizeProgram(const ShapeSpec &Spec) {
  Plan P = planFromSpec(Spec);

  std::string Out;
  Out += "// synthesized: seed=" + std::to_string(Spec.Seed) +
         " target_nodes=" + std::to_string(Spec.TargetNodes) + " funcs=" +
         std::to_string(P.NumTree + P.NumRing + 1) + " stmts_per_fn=" +
         std::to_string(P.StmtsPerFn) + "\n";
  // `array` collapses each memo global to one field in the analysis:
  // without it, every call site grows a chi per field in the callee's
  // transitive mod-ref set — O(functions) per call, quadratic overall —
  // and the node dial stops being linear in the emitted statements.
  Out += "global gdone[" + std::to_string(P.NumTree) + "] init array;\n";
  Out += "global gres[" + std::to_string(P.NumTree) + "] init array;\n\n";

  unsigned NumBodies = P.NumTree + P.NumRing;
  auto RenderOne = [&](size_t I) -> std::string {
    unsigned Idx = static_cast<unsigned>(I);
    if (Idx < P.NumTree)
      return emitTreeFunction(Spec, P, Idx / P.W, Idx % P.W);
    unsigned RI = Idx - P.NumTree;
    return emitRingFunction(Spec, P, RI / P.RingSize, RI % P.RingSize);
  };

  // Bodies are pure functions of (Spec, index): render them on the pool
  // and merge in index order, byte-identical for every Jobs.
  unsigned Jobs = Spec.Jobs == 0 ? ThreadPool::defaultJobs() : Spec.Jobs;
  std::unique_ptr<ThreadPool> Pool;
  if (Jobs > 1 && NumBodies > 1)
    Pool = std::make_unique<ThreadPool>(Jobs);
  std::vector<std::string> Bodies =
      parallelMapOrdered(Pool.get(), NumBodies, RenderOne);
  for (const std::string &B : Bodies) {
    Out += B;
    Out += "\n";
  }
  Out += emitMain(Spec, P);
  return Out;
}

//===----------------------------------------------------------------------===//
// measureShape
//===----------------------------------------------------------------------===//

namespace {

/// Iterative Tarjan over the function-level call graph. Returns the SCC
/// id of every function; ids are assigned in completion order, so callee
/// SCCs get smaller ids than their callers (reverse topological).
struct CallGraphSccs {
  std::vector<std::vector<unsigned>> Callees; ///< Distinct, per function.
  std::vector<unsigned> SccId;
  std::vector<unsigned> SccSize;
  std::vector<bool> SccSelfLoop;
  unsigned NumSccs = 0;
};

CallGraphSccs buildSccs(const ir::Module &M) {
  CallGraphSccs CG;
  std::unordered_map<const ir::Function *, unsigned> Index;
  unsigned N = static_cast<unsigned>(M.functions().size());
  for (unsigned I = 0; I != N; ++I)
    Index[M.functions()[I].get()] = I;

  CG.Callees.resize(N);
  for (unsigned I = 0; I != N; ++I) {
    std::set<unsigned> Out;
    for (const auto &BB : M.functions()[I]->blocks())
      for (const auto &Inst : BB->instructions())
        if (const auto *Call = dyn_cast<ir::CallInst>(Inst.get()))
          Out.insert(Index.at(Call->getCallee()));
    CG.Callees[I].assign(Out.begin(), Out.end());
  }

  CG.SccId.assign(N, ~0u);
  std::vector<unsigned> Low(N), Num(N, ~0u);
  std::vector<bool> OnStack(N, false);
  std::vector<unsigned> Stack;
  unsigned NextNum = 0;

  struct Frame {
    unsigned V;
    size_t EdgeIdx;
  };
  for (unsigned Root = 0; Root != N; ++Root) {
    if (Num[Root] != ~0u)
      continue;
    std::vector<Frame> Frames{{Root, 0}};
    Num[Root] = Low[Root] = NextNum++;
    Stack.push_back(Root);
    OnStack[Root] = true;
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      if (F.EdgeIdx < CG.Callees[F.V].size()) {
        unsigned W = CG.Callees[F.V][F.EdgeIdx++];
        if (Num[W] == ~0u) {
          Num[W] = Low[W] = NextNum++;
          Stack.push_back(W);
          OnStack[W] = true;
          Frames.push_back({W, 0});
        } else if (OnStack[W]) {
          Low[F.V] = std::min(Low[F.V], Num[W]);
        }
        continue;
      }
      unsigned V = F.V;
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().V] = std::min(Low[Frames.back().V], Low[V]);
      if (Low[V] == Num[V]) {
        unsigned Size = 0;
        bool SelfLoop = false;
        unsigned Id = CG.NumSccs++;
        for (;;) {
          unsigned W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          CG.SccId[W] = Id;
          ++Size;
          if (W == V)
            break;
        }
        CG.SccSize.push_back(Size);
        CG.SccSelfLoop.push_back(SelfLoop);
      }
    }
  }
  // Self-loops (direct recursion) make a singleton SCC nontrivial.
  for (unsigned I = 0; I != N; ++I)
    for (unsigned C : CG.Callees[I])
      if (C == I)
        CG.SccSelfLoop[CG.SccId[I]] = true;
  return CG;
}

} // namespace

ShapeMetrics workload::measureShape(ir::Module &M) {
  ShapeMetrics Met;
  Met.NumFunctions = static_cast<unsigned>(M.functions().size());
  for (const auto &F : M.functions())
    Met.NumInstructions += F->instructionCount();

  uint64_t Uninit = 0, Allocs = 0;
  for (const auto &Obj : M.objects()) {
    if (Obj->isGlobal())
      continue;
    ++Allocs;
    Uninit += Obj->isInitialized() ? 0 : 1;
  }
  Met.UninitAllocFraction =
      Allocs ? static_cast<double>(Uninit) / static_cast<double>(Allocs) : 0;

  if (M.functions().empty())
    return Met;
  CallGraphSccs CG = buildSccs(M);

  for (unsigned S = 0; S != CG.NumSccs; ++S)
    if (CG.SccSize[S] > 1 || CG.SccSelfLoop[S])
      ++Met.NontrivialSccs;

  const ir::Function *Main = M.findFunction("main");
  unsigned MainIdx = ~0u;
  for (unsigned I = 0; I != M.functions().size(); ++I)
    if (M.functions()[I].get() == Main)
      MainIdx = I;

  // Longest acyclic path from main over the condensation. Tarjan ids are
  // reverse topological (callers have larger ids), so one descending
  // sweep relaxes every condensation edge in topological order.
  if (Main && MainIdx != ~0u) {
    constexpr int64_t Unreached = -1;
    std::vector<int64_t> Dist(CG.NumSccs, Unreached);
    Dist[CG.SccId[MainIdx]] = 0;
    std::vector<std::vector<unsigned>> SccEdges(CG.NumSccs);
    for (unsigned I = 0; I != CG.Callees.size(); ++I)
      for (unsigned C : CG.Callees[I])
        if (CG.SccId[I] != CG.SccId[C])
          SccEdges[CG.SccId[I]].push_back(CG.SccId[C]);
    int64_t Best = 0;
    for (unsigned S = CG.NumSccs; S-- != 0;) {
      if (Dist[S] == Unreached)
        continue;
      Best = std::max(Best, Dist[S]);
      for (unsigned T : SccEdges[S])
        Dist[T] = std::max(Dist[T], Dist[S] + 1);
    }
    for (unsigned S = 0; S != CG.NumSccs; ++S)
      Best = std::max(Best, Dist[S]);
    Met.CallDepth = static_cast<unsigned>(Best);
  }

  // Fanout over functions outside recursive SCCs (ring members always
  // have exactly one callee — counting them would understate the dial),
  // excluding main (whose fanout is the level width by construction).
  uint64_t FanSum = 0, FanCnt = 0;
  for (unsigned I = 0; I != CG.Callees.size(); ++I) {
    const ir::Function *F = M.functions()[I].get();
    if (F == Main || CG.Callees[I].empty())
      continue;
    unsigned S = CG.SccId[I];
    if (CG.SccSize[S] > 1 || CG.SccSelfLoop[S])
      continue;
    FanSum += CG.Callees[I].size();
    ++FanCnt;
  }
  Met.AvgFanout =
      FanCnt ? static_cast<double>(FanSum) / static_cast<double>(FanCnt) : 0;
  return Met;
}

//===----------------------------------------------------------------------===//
// linkPrograms
//===----------------------------------------------------------------------===//

LinkedProgram workload::linkPrograms(const std::vector<LinkUnit> &Units,
                                     std::string *Error) {
  LinkedProgram LP;
  std::string Out;
  for (size_t I = 0; I != Units.size(); ++I) {
    std::string Prefix = "u" + std::to_string(I) + "_";
    parser::ParseResult PR = parser::parseModule(Units[I].Source);
    if (!PR.succeeded()) {
      if (Error) {
        *Error = "link: unit '" + Units[I].Name + "' failed to parse";
        if (!PR.Errors.empty())
          *Error += ": " + PR.Errors.front();
      }
      return {};
    }
    // The prefix map is injective across units ("u1_" is never a prefix
    // of another unit's prefix followed by more digits, because the char
    // after the digits is always '_'), so renamed symbols cannot collide.
    for (const auto &F : PR.M->functions())
      F->setName(Prefix + F->getName());
    for (const auto &Obj : PR.M->objects())
      if (Obj->isGlobal())
        Obj->setName(Prefix + Obj->getName());
    Out += "// unit " + std::to_string(I) + ": " + Units[I].Name + "\n";
    raw_string_ostream OS(Out);
    PR.M->print(OS);
    Out += "\n";
    LP.Prefixes.push_back(Prefix);
  }
  Out += "func main() {\n  t = 0;\n";
  for (size_t I = 0; I != Units.size(); ++I) {
    std::string Rv = "r" + std::to_string(I);
    Out += "  " + Rv + " = u" + std::to_string(I) + "_main();\n";
    Out += "  t = t + " + Rv + ";\n";
  }
  Out += "  ret t;\n}\n";
  LP.Source = std::move(Out);
  return LP;
}

std::string workload::warningSiteKey(const ir::Instruction *At,
                                     const std::string &StripPrefix) {
  const ir::BasicBlock *BB = At->getParent();
  const ir::Function *F = BB->getParent();
  std::string Fn = F->getName();
  if (!StripPrefix.empty() && Fn.rfind(StripPrefix, 0) == 0)
    Fn = Fn.substr(StripPrefix.size());
  size_t Idx = 0;
  for (const auto &I : BB->instructions()) {
    if (I.get() == At)
      break;
    ++Idx;
  }
  return Fn + ":" + BB->getName() + ":" + std::to_string(Idx);
}
