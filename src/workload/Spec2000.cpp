//===- workload/Spec2000.cpp - SPEC CPU2000-like benchmark suite -----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "workload/Spec2000.h"

#include "ir/IR.h"
#include "parser/Parser.h"
#include "workload/Programs.h"

using namespace usher;
using namespace usher::workload;

const std::vector<BenchmarkProgram> &workload::spec2000Suite() {
  // Expected results are pinned: the interpreter is deterministic, so
  // every run must reproduce them exactly, which guards the whole
  // pipeline against semantic regressions.
  static const std::vector<BenchmarkProgram> Suite = {
      {"164.gzip", "LZ77 sliding-window match search", //
       kSource164Gzip, 319961, 0},
      {"175.vpr", "placement refinement by randomized swaps", //
       kSource175Vpr, 786531, 0},
      {"176.gcc", "expression tree build/fold/eval with wrappers", //
       kSource176Gcc, 861181, 0},
      {"177.mesa", "fixed-point 4x4 vertex transform pipeline", //
       kSource177Mesa, 846268, 0},
      {"179.art", "winner-take-all neural classification", //
       kSource179Art, 282831, 0},
      {"181.mcf", "relaxation sweeps over a linked arc list", //
       kSource181Mcf, 337984, 0},
      {"183.equake", "CSR sparse matvec time stepping", //
       kSource183Equake, 507305, 0},
      {"186.crafty", "bitboard move generation and popcounts", //
       kSource186Crafty, 596323, 0},
      {"188.ammp", "particle dynamics over linked structs", //
       kSource188Ammp, 994389, 0},
      {"197.parser", "tokenizer + dictionary with the ppmatch bug", //
       kSource197Parser, 234193, 1},
      {"253.perlbmk", "stack-machine bytecode interpreter", //
       kSource253Perlbmk, 615924, 0},
      {"254.gap", "big-integer multiply-accumulate chains", //
       kSource254Gap, 570850, 0},
      {"255.vortex", "hashed object store with chained records", //
       kSource255Vortex, 447668, 0},
      {"256.bzip2", "counting sort + run statistics per block", //
       kSource256Bzip2, 664912, 0},
      {"300.twolf", "simulated annealing of 2D cell positions", //
       kSource300Twolf, 364358, 0},
  };
  return Suite;
}

std::unique_ptr<ir::Module> workload::loadBenchmark(const BenchmarkProgram &B) {
  return parser::parseModuleOrAbort(B.Source);
}
