//===- support/Timer.h - Wall-clock timing and memory probes ----*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small timing helpers used by the Table 1 statistics (analysis time and
/// memory columns).
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SUPPORT_TIMER_H
#define USHER_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace usher {

/// Measures elapsed wall-clock time from construction or the last reset.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the measurement window.
  void reset() { Start = Clock::now(); }

  /// Returns seconds elapsed since construction or the last reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns milliseconds elapsed since construction or the last reset.
  double millis() const { return seconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Returns the process peak resident set size in bytes, or 0 if unknown.
/// Reads /proc/self/status, so this is Linux-specific by design (the
/// benchmarking environment is Linux).
uint64_t peakRSSBytes();

/// Returns the current resident set size in bytes, or 0 if unknown.
uint64_t currentRSSBytes();

} // namespace usher

#endif // USHER_SUPPORT_TIMER_H
