//===- support/ThreadPool.cpp - Deterministic parallel execution ----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace usher;

unsigned ThreadPool::defaultJobs() {
  unsigned HW = std::thread::hardware_concurrency();
  return std::clamp(HW, 1u, 64u);
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  NumThreads = std::clamp(NumThreads, 1u, 64u);
  Queues.resize(NumThreads);
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(Mtx);
    Stopping = true;
  }
  HasWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::async(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> L(Mtx);
    Queues[NextQueue].push_back(std::move(Task));
    NextQueue = (NextQueue + 1) % static_cast<unsigned>(Queues.size());
  }
  HasWork.notify_one();
}

bool ThreadPool::popTaskLocked(unsigned Me, std::function<void()> &Out,
                               bool &WasSteal) {
  // Owned work first, front of the own deque.
  if (Me < Queues.size() && !Queues[Me].empty()) {
    Out = std::move(Queues[Me].front());
    Queues[Me].pop_front();
    WasSteal = false;
    return true;
  }
  // Steal from the back of the longest other queue: taking the newest
  // task of the most loaded victim spreads a skewed round-robin
  // distribution without fighting the owner over its front.
  size_t Victim = Queues.size(), Best = 0;
  for (size_t Q = 0; Q != Queues.size(); ++Q) {
    if (Q == Me)
      continue;
    if (Queues[Q].size() > Best) {
      Best = Queues[Q].size();
      Victim = Q;
    }
  }
  if (Victim == Queues.size())
    return false;
  Out = std::move(Queues[Victim].back());
  Queues[Victim].pop_back();
  WasSteal = true;
  return true;
}

void ThreadPool::workerLoop(unsigned Me) {
  while (true) {
    std::function<void()> Task;
    bool WasSteal = false;
    {
      std::unique_lock<std::mutex> L(Mtx);
      while (!popTaskLocked(Me, Task, WasSteal)) {
        if (Stopping)
          return; // All queues drained: shutdown is clean mid-queue.
        HasWork.wait(L);
      }
    }
    if (WasSteal)
      Steals.fetch_add(1, std::memory_order_relaxed);
    Task();
  }
}

bool ThreadPool::tryRunOne() {
  std::function<void()> Task;
  bool WasSteal = false;
  {
    std::lock_guard<std::mutex> L(Mtx);
    // The helper owns no queue; pass an out-of-range id so it always
    // steals (uncounted — see popTaskLocked's caller below).
    if (!popTaskLocked(static_cast<unsigned>(Queues.size()), Task, WasSteal))
      return false;
  }
  // Caller-help runs are deliberately not counted as steals: stealCount()
  // measures worker-to-worker balancing only.
  Task();
  return true;
}
