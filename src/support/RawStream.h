//===- support/RawStream.h - Lightweight output streams ---------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal analog of llvm::raw_ostream. The project never includes
/// <iostream> in library code; all diagnostics and dumps go through these
/// streams.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SUPPORT_RAWSTREAM_H
#define USHER_SUPPORT_RAWSTREAM_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace usher {

/// Base class for the project's output streams.
class raw_ostream {
public:
  virtual ~raw_ostream();

  raw_ostream &operator<<(char C) {
    write(&C, 1);
    return *this;
  }
  raw_ostream &operator<<(std::string_view Str) {
    write(Str.data(), Str.size());
    return *this;
  }
  raw_ostream &operator<<(const char *Str) {
    return *this << std::string_view(Str);
  }
  raw_ostream &operator<<(const std::string &Str) {
    return *this << std::string_view(Str);
  }
  raw_ostream &operator<<(long long N);
  raw_ostream &operator<<(unsigned long long N);
  raw_ostream &operator<<(int N) { return *this << static_cast<long long>(N); }
  raw_ostream &operator<<(unsigned N) {
    return *this << static_cast<unsigned long long>(N);
  }
  raw_ostream &operator<<(long N) {
    return *this << static_cast<long long>(N);
  }
  raw_ostream &operator<<(unsigned long N) {
    return *this << static_cast<unsigned long long>(N);
  }
  raw_ostream &operator<<(double D);
  raw_ostream &operator<<(bool B) { return *this << (B ? "true" : "false"); }
  raw_ostream &operator<<(const void *P);

  /// Writes \p Size bytes starting at \p Ptr to the stream.
  virtual void write(const char *Ptr, size_t Size) = 0;

  /// Flushes buffered output, if any.
  virtual void flush() {}

  /// Writes \p Str padded with spaces on the right to at least \p Width.
  raw_ostream &leftJustify(std::string_view Str, unsigned Width);

  /// Writes \p Str padded with spaces on the left to at least \p Width.
  raw_ostream &rightJustify(std::string_view Str, unsigned Width);

  /// Appends a printf-style formatted string.
  raw_ostream &printf(const char *Fmt, ...)
      __attribute__((format(printf, 2, 3)));
};

/// Stream that appends to a std::string owned by the caller.
class raw_string_ostream : public raw_ostream {
public:
  explicit raw_string_ostream(std::string &Buf) : Buf(Buf) {}

  void write(const char *Ptr, size_t Size) override {
    Buf.append(Ptr, Size);
  }

  /// Returns the accumulated contents.
  const std::string &str() const { return Buf; }

private:
  std::string &Buf;
};

/// Stream over a C FILE handle; does not own the handle.
class raw_fd_ostream : public raw_ostream {
public:
  explicit raw_fd_ostream(std::FILE *FP) : FP(FP) {}

  void write(const char *Ptr, size_t Size) override {
    std::fwrite(Ptr, 1, Size, FP);
  }
  void flush() override { std::fflush(FP); }

private:
  std::FILE *FP;
};

/// Returns the stream bound to stdout.
raw_ostream &outs();

/// Returns the stream bound to stderr.
raw_ostream &errs();

} // namespace usher

#endif // USHER_SUPPORT_RAWSTREAM_H
