//===- support/RawStream.cpp - Lightweight output streams ----------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "support/RawStream.h"

#include <cinttypes>
#include <cstdarg>

using namespace usher;

raw_ostream::~raw_ostream() = default;

raw_ostream &raw_ostream::operator<<(long long N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%lld", N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

raw_ostream &raw_ostream::operator<<(unsigned long long N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%llu", N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

raw_ostream &raw_ostream::operator<<(double D) {
  char Buf[64];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

raw_ostream &raw_ostream::operator<<(const void *P) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%p", P);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

raw_ostream &raw_ostream::leftJustify(std::string_view Str, unsigned Width) {
  *this << Str;
  for (size_t I = Str.size(); I < Width; ++I)
    *this << ' ';
  return *this;
}

raw_ostream &raw_ostream::rightJustify(std::string_view Str, unsigned Width) {
  for (size_t I = Str.size(); I < Width; ++I)
    *this << ' ';
  return *this << Str;
}

raw_ostream &raw_ostream::printf(const char *Fmt, ...) {
  char Buf[1024];
  va_list Args;
  va_start(Args, Fmt);
  int Len = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (Len > 0)
    write(Buf, static_cast<size_t>(Len) < sizeof(Buf)
                   ? static_cast<size_t>(Len)
                   : sizeof(Buf) - 1);
  return *this;
}

raw_ostream &usher::outs() {
  static raw_fd_ostream Stream(stdout);
  return Stream;
}

raw_ostream &usher::errs() {
  static raw_fd_ostream Stream(stderr);
  return Stream;
}
