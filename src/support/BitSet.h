//===- support/BitSet.h - Dynamic bitset ------------------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense dynamic bitset with the union/iteration operations the Andersen
/// solver and mod/ref propagation need.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SUPPORT_BITSET_H
#define USHER_SUPPORT_BITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace usher {

/// Dense bitset over [0, size).
class BitSet {
public:
  BitSet() = default;
  explicit BitSet(size_t NumBits) { resize(NumBits); }

  /// Grows (or shrinks) the universe; new bits start cleared.
  void resize(size_t NumBits) {
    Bits = NumBits;
    Words.resize((NumBits + 63) / 64, 0);
  }

  size_t size() const { return Bits; }

  bool test(size_t Idx) const {
    assert(Idx < Bits && "bit index out of range");
    return (Words[Idx >> 6] >> (Idx & 63)) & 1;
  }

  /// Sets the bit; returns true if it was previously clear.
  bool set(size_t Idx) {
    assert(Idx < Bits && "bit index out of range");
    uint64_t Mask = 1ULL << (Idx & 63);
    uint64_t &W = Words[Idx >> 6];
    if (W & Mask)
      return false;
    W |= Mask;
    return true;
  }

  void clear(size_t Idx) {
    assert(Idx < Bits && "bit index out of range");
    Words[Idx >> 6] &= ~(1ULL << (Idx & 63));
  }

  void clearAll() { Words.assign(Words.size(), 0); }

  /// this |= Other; returns true if any bit changed. Dense word loop: the
  /// naive reference solver keeps this so its cost model stays honest.
  bool unionWith(const BitSet &Other) {
    assert(Bits == Other.Bits && "bitset size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// this |= Other, skipping zero source words; returns true if any bit
  /// changed. The word-sparse union the optimized solver leans on: delta
  /// sets are mostly zero words, so the common merge touches only the few
  /// words that actually carry bits.
  bool orWithReturningChanged(const BitSet &Other) {
    assert(Bits == Other.Bits && "bitset size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Src = Other.Words[I];
      if (!Src)
        continue;
      uint64_t Old = Words[I];
      uint64_t New = Old | Src;
      if (New != Old) {
        Words[I] = New;
        Changed = true;
      }
    }
    return Changed;
  }

  /// this |= Other, additionally recording every *newly set* bit into
  /// \p NewBits (NewBits |= Other & ~old-this). Returns true if any bit
  /// changed. This is the difference-propagation primitive: the receiver's
  /// delta set accumulates exactly the bits it has not seen before.
  bool orWithMissingInto(const BitSet &Other, BitSet &NewBits) {
    assert(Bits == Other.Bits && Bits == NewBits.Bits &&
           "bitset size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Src = Other.Words[I];
      if (!Src)
        continue;
      uint64_t Old = Words[I];
      uint64_t Fresh = Src & ~Old;
      if (Fresh) {
        Words[I] = Old | Fresh;
        NewBits.Words[I] |= Fresh;
        Changed = true;
      }
    }
    return Changed;
  }

  /// Number of set bits.
  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  bool empty() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  /// Calls \p Fn(index) for every set bit in ascending order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (size_t WI = 0, WE = Words.size(); WI != WE; ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(WI * 64 + Bit);
        W &= W - 1;
      }
    }
  }

  /// Returns the set bits as a sorted vector.
  std::vector<uint32_t> toVector() const {
    std::vector<uint32_t> Result;
    Result.reserve(count());
    forEach([&](size_t Idx) { Result.push_back(static_cast<uint32_t>(Idx)); });
    return Result;
  }

  /// Forward iterator over set-bit indices in ascending order. Advancing
  /// skips zero words wholesale, so iterating a sparse set costs one load
  /// per 64-bit word plus one ctz per set bit.
  class const_iterator {
  public:
    using value_type = size_t;

    const_iterator(const std::vector<uint64_t> *Words, size_t WordIdx)
        : Words(Words), WordIdx(WordIdx) {
      if (WordIdx < Words->size()) {
        Pending = (*Words)[WordIdx];
        skipZeroWords();
      }
    }

    size_t operator*() const {
      return WordIdx * 64 +
             static_cast<unsigned>(__builtin_ctzll(Pending));
    }

    const_iterator &operator++() {
      Pending &= Pending - 1;
      skipZeroWords();
      return *this;
    }

    bool operator==(const const_iterator &O) const {
      return WordIdx == O.WordIdx && Pending == O.Pending;
    }
    bool operator!=(const const_iterator &O) const { return !(*this == O); }

  private:
    void skipZeroWords() {
      while (!Pending && ++WordIdx < Words->size())
        Pending = (*Words)[WordIdx];
      if (WordIdx >= Words->size()) {
        WordIdx = Words->size();
        Pending = 0;
      }
    }

    const std::vector<uint64_t> *Words;
    size_t WordIdx;
    uint64_t Pending = 0;
  };

  const_iterator begin() const { return const_iterator(&Words, 0); }
  const_iterator end() const { return const_iterator(&Words, Words.size()); }

private:
  size_t Bits = 0;
  std::vector<uint64_t> Words;
};

} // namespace usher

#endif // USHER_SUPPORT_BITSET_H
