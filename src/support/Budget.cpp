//===- support/Budget.cpp - Per-phase analysis budgets ----------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include "support/Timer.h"

using namespace usher;

const char *usher::budgetPhaseName(BudgetPhase P) {
  switch (P) {
  case BudgetPhase::PointerAnalysis:
    return "pta";
  case BudgetPhase::Definedness:
    return "definedness";
  case BudgetPhase::OptI:
    return "opt1";
  case BudgetPhase::OptII:
    return "opt2";
  }
  return "?";
}

const char *usher::exhaustKindName(ExhaustKind K) {
  switch (K) {
  case ExhaustKind::None:
    return "none";
  case ExhaustKind::Steps:
    return "step budget";
  case ExhaustKind::Deadline:
    return "deadline";
  case ExhaustKind::Memory:
    return "memory watermark";
  case ExhaustKind::Injected:
    return "injected fault";
  }
  return "?";
}

namespace {

/// Rank of each exhaustion kind in the serial check order of stepSlow
/// (fault, then steps, then deadline, then memory). Ties between
/// thresholds crossed at the same charged step resolve in this order,
/// matching what a serial run would have reported.
uint64_t checkRank(ExhaustKind K) {
  switch (K) {
  case ExhaustKind::Injected:
    return 0;
  case ExhaustKind::Steps:
    return 1;
  case ExhaustKind::Deadline:
    return 2;
  case ExhaustKind::Memory:
    return 3;
  case ExhaustKind::None:
    break;
  }
  return 4;
}

ExhaustKind kindOfRank(uint64_t R) {
  switch (R) {
  case 0:
    return ExhaustKind::Injected;
  case 1:
    return ExhaustKind::Steps;
  case 2:
    return ExhaustKind::Deadline;
  case 3:
    return ExhaustKind::Memory;
  default:
    return ExhaustKind::None;
  }
}

} // namespace

ExhaustKind Budget::exhaustKind() const {
  uint64_t Packed = Exhaust.load(std::memory_order_acquire);
  if (Packed == NotExhausted)
    return ExhaustKind::None;
  return kindOfRank(Packed & 0xff);
}

void Budget::install(ExhaustKind K, uint64_t CrossStep) {
  uint64_t Packed = (CrossStep << 8) | checkRank(K);
  uint64_t Cur = Exhaust.load(std::memory_order_relaxed);
  while (Packed < Cur &&
         !Exhaust.compare_exchange_weak(Cur, Packed, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
  }
}

void Budget::beginPhase(BudgetPhase P) {
  Cur = P;
  Steps.store(0, std::memory_order_relaxed);
  Checks.store(0, std::memory_order_relaxed);
  Exhaust.store(NotExhausted, std::memory_order_relaxed);
  if (!Armed)
    return;
  PhaseStart = std::chrono::steady_clock::now();
  // An at-step-0 fault means "exhaust upon entering the phase". Firing it
  // here (not in step) keeps injection deterministic even when the phase's
  // worklist turns out to be empty.
  if (Fault && Fault->Phase == Cur && Fault->AtStep == 0 &&
      FaultFires.load(std::memory_order_relaxed) < Fault->fireLimit()) {
    FaultFires.fetch_add(1, std::memory_order_relaxed);
    install(ExhaustKind::Injected, 0);
  }
}

bool Budget::stepSlow(uint64_t N) {
  if (exhausted())
    return false;
  // Charge first: the interval (Start, End] belongs to this call alone,
  // so each threshold T is crossed by exactly one call — the one whose
  // interval contains T + 1 — no matter how calls interleave. That call
  // installs the exhaustion, attributed to the charged-step at which a
  // serial run would have reported it.
  uint64_t End = Steps.fetch_add(N, std::memory_order_relaxed) + N;
  uint64_t Start = End - N;
  bool Over = false;
  if (Fault && Fault->Phase == Cur && End > Fault->AtStep &&
      FaultFires.load(std::memory_order_relaxed) < Fault->fireLimit()) {
    Over = true;
    if (Start <= Fault->AtStep) {
      // The unique installer also consumes the fire: the counter advances
      // once per arm, at the same charged step in every schedule.
      FaultFires.fetch_add(1, std::memory_order_relaxed);
      install(ExhaustKind::Injected, Fault->AtStep + 1);
    }
  }
  if (Limits.MaxStepsPerPhase && End > Limits.MaxStepsPerPhase) {
    Over = true;
    if (Start <= Limits.MaxStepsPerPhase)
      install(ExhaustKind::Steps, Limits.MaxStepsPerPhase + 1);
  }
  if (Over)
    return false;
  // Clock and RSS probes are rate-limited: a syscall-ish probe per
  // worklist pop would dominate small analyses. Wall-clock and memory
  // crossings are inherently timing-dependent; they attribute to this
  // call's charged end so concurrent probes still agree on one winner.
  uint64_t C = Checks.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Limits.PhaseDeadlineMs && (C & 127) == 0) {
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - PhaseStart)
                       .count();
    if (static_cast<uint64_t>(Elapsed) >= Limits.PhaseDeadlineMs) {
      install(ExhaustKind::Deadline, End);
      return false;
    }
  }
  if (Limits.MaxRSSBytes && (C & 4095) == 0 &&
      currentRSSBytes() > Limits.MaxRSSBytes) {
    install(ExhaustKind::Memory, End);
    return false;
  }
  return !exhausted();
}
