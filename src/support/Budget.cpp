//===- support/Budget.cpp - Per-phase analysis budgets ----------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include "support/Timer.h"

using namespace usher;

const char *usher::budgetPhaseName(BudgetPhase P) {
  switch (P) {
  case BudgetPhase::PointerAnalysis:
    return "pta";
  case BudgetPhase::Definedness:
    return "definedness";
  case BudgetPhase::OptI:
    return "opt1";
  case BudgetPhase::OptII:
    return "opt2";
  }
  return "?";
}

const char *usher::exhaustKindName(ExhaustKind K) {
  switch (K) {
  case ExhaustKind::None:
    return "none";
  case ExhaustKind::Steps:
    return "step budget";
  case ExhaustKind::Deadline:
    return "deadline";
  case ExhaustKind::Memory:
    return "memory watermark";
  case ExhaustKind::Injected:
    return "injected fault";
  }
  return "?";
}

void Budget::beginPhase(BudgetPhase P) {
  Cur = P;
  Steps = 0;
  Checks = 0;
  Kind = ExhaustKind::None;
  if (!Armed)
    return;
  PhaseStart = std::chrono::steady_clock::now();
  // An at-step-0 fault means "exhaust upon entering the phase". Firing it
  // here (not in step) keeps injection deterministic even when the phase's
  // worklist turns out to be empty.
  if (Fault && Fault->Phase == Cur && Fault->AtStep == 0 &&
      !(Fault->Once && FaultFired)) {
    FaultFired = true;
    Kind = ExhaustKind::Injected;
  }
}

bool Budget::stepSlow(uint64_t N) {
  if (Kind != ExhaustKind::None)
    return false;
  Steps += N;
  if (Fault && Fault->Phase == Cur && Steps > Fault->AtStep &&
      !(Fault->Once && FaultFired)) {
    FaultFired = true;
    Kind = ExhaustKind::Injected;
    return false;
  }
  if (Limits.MaxStepsPerPhase && Steps > Limits.MaxStepsPerPhase) {
    Kind = ExhaustKind::Steps;
    return false;
  }
  // Clock and RSS probes are rate-limited: a syscall-ish probe per
  // worklist pop would dominate small analyses.
  ++Checks;
  if (Limits.PhaseDeadlineMs && (Checks & 127) == 0) {
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - PhaseStart)
                       .count();
    if (static_cast<uint64_t>(Elapsed) >= Limits.PhaseDeadlineMs) {
      Kind = ExhaustKind::Deadline;
      return false;
    }
  }
  if (Limits.MaxRSSBytes && (Checks & 4095) == 0 &&
      currentRSSBytes() > Limits.MaxRSSBytes) {
    Kind = ExhaustKind::Memory;
    return false;
  }
  return true;
}
