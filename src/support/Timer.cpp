//===- support/Timer.cpp - Wall-clock timing and memory probes -----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

#include <cstdio>
#include <cstring>

using namespace usher;

static uint64_t readStatusField(const char *Field) {
  std::FILE *FP = std::fopen("/proc/self/status", "r");
  if (!FP)
    return 0;
  char Line[256];
  uint64_t Result = 0;
  size_t FieldLen = std::strlen(Field);
  while (std::fgets(Line, sizeof(Line), FP)) {
    if (std::strncmp(Line, Field, FieldLen) != 0)
      continue;
    unsigned long long KB = 0;
    if (std::sscanf(Line + FieldLen, " %llu", &KB) == 1)
      Result = static_cast<uint64_t>(KB) * 1024;
    break;
  }
  std::fclose(FP);
  return Result;
}

uint64_t usher::peakRSSBytes() { return readStatusField("VmHWM:"); }

uint64_t usher::currentRSSBytes() { return readStatusField("VmRSS:"); }
