//===- support/Casting.h - isa/cast/dyn_cast templates ----------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled, opt-in RTTI in the style of LLVM's Support/Casting.h.
/// A class participates by providing a static `bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SUPPORT_CASTING_H
#define USHER_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace usher {

/// Returns true if \p Val is an instance of type To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Returns true if \p Val is an instance of To; ref overload.
template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return To::classof(&Val);
}

/// Returns true if \p Val is null or an instance of To.
template <typename To, typename From> bool isa_and_nonnull(const From *Val) {
  return Val && isa<To>(Val);
}

/// Casts \p Val to type To, asserting that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(&Val) && "cast<To>() argument of incompatible type");
  return static_cast<To &>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(&Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To &>(Val);
}

/// Casts \p Val to To if its dynamic type matches, otherwise returns null.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// dyn_cast that tolerates a null argument.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace usher

#endif // USHER_SUPPORT_CASTING_H
