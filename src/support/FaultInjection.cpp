//===- support/FaultInjection.cpp - Deterministic fault injection -----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace usher;

static bool parsePhase(std::string_view Name, BudgetPhase &Out) {
  if (Name == "pta" || Name == "pointer-analysis") {
    Out = BudgetPhase::PointerAnalysis;
    return true;
  }
  if (Name == "definedness" || Name == "def") {
    Out = BudgetPhase::Definedness;
    return true;
  }
  if (Name == "opt1" || Name == "opti") {
    Out = BudgetPhase::OptI;
    return true;
  }
  if (Name == "opt2" || Name == "optii") {
    Out = BudgetPhase::OptII;
    return true;
  }
  return false;
}

std::optional<FaultPlan> usher::parseFaultSpec(std::string_view Spec,
                                               std::string *Err) {
  auto Fail = [&](const char *Msg) -> std::optional<FaultPlan> {
    if (Err)
      *Err = std::string(Msg) + " in fault spec '" + std::string(Spec) +
             "' (expected <phase>@<step>[:once|:<fires>], phase one of "
             "pta|definedness|opt1|opt2)";
    return std::nullopt;
  };

  size_t At = Spec.find('@');
  if (At == std::string_view::npos)
    return Fail("missing '@'");

  FaultPlan Plan;
  if (!parsePhase(Spec.substr(0, At), Plan.Phase))
    return Fail("unknown phase");

  std::string_view Rest = Spec.substr(At + 1);
  size_t Colon = Rest.rfind(':');
  if (Colon != std::string_view::npos) {
    std::string_view Suffix = Rest.substr(Colon + 1);
    if (Suffix == "once") {
      Plan.Once = true;
    } else {
      // A numeric suffix bounds the fault to the first N matching arms,
      // e.g. "pta@0:2" exhausts the first two pointer-analysis attempts
      // and lets the third (the unification retry) run to completion.
      if (Suffix.empty())
        return Fail("empty fire-count suffix");
      uint64_t Fires = 0;
      for (char C : Suffix) {
        if (C < '0' || C > '9')
          return Fail("non-numeric fire-count suffix");
        Fires = Fires * 10 + static_cast<uint64_t>(C - '0');
        if (Fires > 0xffffffffull)
          return Fail("fire count out of range");
      }
      if (Fires == 0)
        return Fail("fire count must be positive");
      Plan.MaxFires = static_cast<uint32_t>(Fires);
    }
    Rest = Rest.substr(0, Colon);
  }
  if (Rest.empty())
    return Fail("missing step count");
  uint64_t Step = 0;
  for (char C : Rest) {
    if (C < '0' || C > '9')
      return Fail("non-numeric step count");
    Step = Step * 10 + static_cast<uint64_t>(C - '0');
  }
  Plan.AtStep = Step;
  return Plan;
}

std::optional<FaultPlan> usher::faultPlanFromEnv() {
  const char *Val = std::getenv(FaultInjectionEnvVar);
  if (!Val || !*Val)
    return std::nullopt;
  std::string Err;
  std::optional<FaultPlan> Plan = parseFaultSpec(Val, &Err);
  if (!Plan)
    std::fprintf(stderr, "warning: ignoring %s: %s\n", FaultInjectionEnvVar,
                 Err.c_str());
  return Plan;
}

//===----------------------------------------------------------------------===//
// Deterministic I/O fault sites
//===----------------------------------------------------------------------===//

const char *usher::ioFaultSiteName(IoFaultSite S) {
  switch (S) {
  case IoFaultSite::SnapshotRead:
    return "snapshot-read";
  case IoFaultSite::SnapshotWrite:
    return "snapshot-write";
  case IoFaultSite::SnapshotTornWrite:
    return "snapshot-torn-write";
  case IoFaultSite::SocketDropReply:
    return "socket-drop-reply";
  case IoFaultSite::ParseAlloc:
    return "parse-alloc";
  }
  return "unknown";
}

bool usher::parseIoFaultSiteName(std::string_view Name, IoFaultSite &Out) {
  for (unsigned I = 0; I != NumIoFaultSites; ++I) {
    IoFaultSite S = static_cast<IoFaultSite>(I);
    if (Name == ioFaultSiteName(S)) {
      Out = S;
      return true;
    }
  }
  return false;
}

std::optional<IoFaultSpec> usher::parseIoFaultSpec(std::string_view Spec,
                                                   std::string *Err) {
  auto Fail = [&](const char *Msg) -> std::optional<IoFaultSpec> {
    if (Err)
      *Err = std::string(Msg) + " in I/O fault spec '" + std::string(Spec) +
             "' (expected <site>@<hit>[:once], site one of "
             "snapshot-read|snapshot-write|snapshot-torn-write|"
             "socket-drop-reply|parse-alloc)";
    return std::nullopt;
  };

  size_t At = Spec.find('@');
  if (At == std::string_view::npos)
    return Fail("missing '@'");

  IoFaultSpec Plan;
  if (!parseIoFaultSiteName(Spec.substr(0, At), Plan.Site))
    return Fail("unknown site");

  std::string_view Rest = Spec.substr(At + 1);
  if (Rest.size() >= 5 && Rest.substr(Rest.size() - 5) == ":once") {
    Plan.Once = true;
    Rest = Rest.substr(0, Rest.size() - 5);
  }
  if (Rest.empty())
    return Fail("missing hit ordinal");
  uint64_t Hit = 0;
  for (char C : Rest) {
    if (C < '0' || C > '9')
      return Fail("non-numeric hit ordinal");
    Hit = Hit * 10 + static_cast<uint64_t>(C - '0');
  }
  if (Hit == 0)
    return Fail("hit ordinal is 1-based");
  Plan.AtHit = Hit;
  return Plan;
}

std::optional<IoFaultSpec> usher::ioFaultSpecFromEnv() {
  const char *Val = std::getenv(IoFaultInjectionEnvVar);
  if (!Val || !*Val)
    return std::nullopt;
  std::string Err;
  std::optional<IoFaultSpec> Plan = parseIoFaultSpec(Val, &Err);
  if (!Plan)
    std::fprintf(stderr, "warning: ignoring %s: %s\n", IoFaultInjectionEnvVar,
                 Err.c_str());
  return Plan;
}

namespace {

/// Process-global state of one I/O site. Traversals are counted with a
/// relaxed atomic; arming takes a mutex (rare, test/setup only).
struct IoSiteState {
  std::atomic<bool> Armed{false};
  std::atomic<uint64_t> AtHit{0};
  std::atomic<bool> Once{false};
  std::atomic<uint64_t> Hits{0};
};

IoSiteState &ioSite(IoFaultSite S) {
  static IoSiteState Sites[NumIoFaultSites];
  return Sites[static_cast<unsigned>(S)];
}

std::mutex &ioArmMutex() {
  static std::mutex M;
  return M;
}

} // namespace

void usher::armIoFault(const IoFaultSpec &Spec) {
  std::lock_guard<std::mutex> L(ioArmMutex());
  IoSiteState &St = ioSite(Spec.Site);
  St.Hits.store(0, std::memory_order_relaxed);
  St.AtHit.store(Spec.AtHit, std::memory_order_relaxed);
  St.Once.store(Spec.Once, std::memory_order_relaxed);
  St.Armed.store(true, std::memory_order_release);
}

void usher::disarmIoFaults() {
  std::lock_guard<std::mutex> L(ioArmMutex());
  for (unsigned I = 0; I != NumIoFaultSites; ++I) {
    IoSiteState &St = ioSite(static_cast<IoFaultSite>(I));
    St.Armed.store(false, std::memory_order_release);
    St.Hits.store(0, std::memory_order_relaxed);
  }
}

bool usher::ioFaultShouldFail(IoFaultSite S) {
  IoSiteState &St = ioSite(S);
  uint64_t Ordinal = St.Hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!St.Armed.load(std::memory_order_acquire))
    return false;
  uint64_t At = St.AtHit.load(std::memory_order_relaxed);
  if (St.Once.load(std::memory_order_relaxed))
    return Ordinal == At;
  return Ordinal >= At;
}

uint64_t usher::ioFaultTraversals(IoFaultSite S) {
  return ioSite(S).Hits.load(std::memory_order_relaxed);
}

std::vector<std::string> usher::allFaultSiteNames() {
  std::vector<std::string> Names;
  for (unsigned P = 0; P != NumBudgetPhases; ++P)
    Names.push_back(budgetPhaseName(static_cast<BudgetPhase>(P)));
  for (unsigned I = 0; I != NumIoFaultSites; ++I)
    Names.push_back(ioFaultSiteName(static_cast<IoFaultSite>(I)));
  return Names;
}
