//===- support/FaultInjection.cpp - Deterministic fault injection -----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <cstdio>
#include <cstdlib>

using namespace usher;

static bool parsePhase(std::string_view Name, BudgetPhase &Out) {
  if (Name == "pta" || Name == "pointer-analysis") {
    Out = BudgetPhase::PointerAnalysis;
    return true;
  }
  if (Name == "definedness" || Name == "def") {
    Out = BudgetPhase::Definedness;
    return true;
  }
  if (Name == "opt1" || Name == "opti") {
    Out = BudgetPhase::OptI;
    return true;
  }
  if (Name == "opt2" || Name == "optii") {
    Out = BudgetPhase::OptII;
    return true;
  }
  return false;
}

std::optional<FaultPlan> usher::parseFaultSpec(std::string_view Spec,
                                               std::string *Err) {
  auto Fail = [&](const char *Msg) -> std::optional<FaultPlan> {
    if (Err)
      *Err = std::string(Msg) + " in fault spec '" + std::string(Spec) +
             "' (expected <phase>@<step>[:once], phase one of "
             "pta|definedness|opt1|opt2)";
    return std::nullopt;
  };

  size_t At = Spec.find('@');
  if (At == std::string_view::npos)
    return Fail("missing '@'");

  FaultPlan Plan;
  if (!parsePhase(Spec.substr(0, At), Plan.Phase))
    return Fail("unknown phase");

  std::string_view Rest = Spec.substr(At + 1);
  if (Rest.size() >= 5 && Rest.substr(Rest.size() - 5) == ":once") {
    Plan.Once = true;
    Rest = Rest.substr(0, Rest.size() - 5);
  }
  if (Rest.empty())
    return Fail("missing step count");
  uint64_t Step = 0;
  for (char C : Rest) {
    if (C < '0' || C > '9')
      return Fail("non-numeric step count");
    Step = Step * 10 + static_cast<uint64_t>(C - '0');
  }
  Plan.AtStep = Step;
  return Plan;
}

std::optional<FaultPlan> usher::faultPlanFromEnv() {
  const char *Val = std::getenv(FaultInjectionEnvVar);
  if (!Val || !*Val)
    return std::nullopt;
  std::string Err;
  std::optional<FaultPlan> Plan = parseFaultSpec(Val, &Err);
  if (!Plan)
    std::fprintf(stderr, "warning: ignoring %s: %s\n", FaultInjectionEnvVar,
                 Err.c_str());
  return Plan;
}
