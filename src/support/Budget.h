//===- support/Budget.h - Per-phase analysis budgets ------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cancellation/budget token threaded through every fixed-point loop of
/// the static pipeline. Each budgeted phase (Andersen solving, definedness
/// resolution, Opt I simplification, Opt II redundant check elimination)
/// re-arms the token with beginPhase() and then calls step() at iteration
/// granularity; a false return means the phase must stop and report a
/// typed Exhausted outcome instead of looping on.
///
/// The token is deliberately zero-cost on the happy path: with no limits
/// configured and no fault injected, step() is a single branch on a
/// cached flag. Wall-clock and memory probes are rate-limited so an armed
/// budget stays cheap too.
///
/// step() may be called concurrently from pool workers (parallel Opt II
/// charges from every worker). Charging uses a relaxed atomic counter, and
/// exhaustion is attributed deterministically: thresholds fire on the
/// unique step() call whose charged interval contains the crossing value
/// (limit + 1), and when several thresholds are crossed the one with the
/// lowest crossing step wins — exactly the serial attribution, regardless
/// of scheduling. beginPhase() must not race with step(): phases are
/// separated by joins.
///
/// Exhaustion never throws and never crashes the pipeline: the driver
/// (core/Usher.cpp) reacts by walking a sound degradation ladder and the
/// worst outcome is the MSan full-instrumentation plan.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SUPPORT_BUDGET_H
#define USHER_SUPPORT_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

namespace usher {

/// The budgeted fixed-point phases of the pipeline.
enum class BudgetPhase : uint8_t {
  PointerAnalysis = 0, ///< Andersen constraint solving.
  Definedness,         ///< Gamma reachability resolution.
  OptI,                ///< MFC simplification / shadow-plan liveness.
  OptII,               ///< Redundant check elimination + re-resolution.
};
constexpr unsigned NumBudgetPhases = 4;

/// Short stable name used in fault specs and diagnostics
/// ("pta", "definedness", "opt1", "opt2").
const char *budgetPhaseName(BudgetPhase P);

/// Why a budget ran out.
enum class ExhaustKind : uint8_t {
  None = 0, ///< Not exhausted.
  Steps,    ///< Hit MaxStepsPerPhase.
  Deadline, ///< Hit PhaseDeadlineMs.
  Memory,   ///< Crossed MaxRSSBytes.
  Injected, ///< A FaultPlan fired (tests, --inject-fault).
};
const char *exhaustKindName(ExhaustKind K);

/// Resource limits applied to each phase independently. Zero means
/// unlimited. Per-phase (rather than whole-pipeline) limits guarantee the
/// degradation ladder terminates: every fallback attempt gets a fresh arm
/// and the terminal rung (the MSan full plan) needs no fixed point at all.
struct BudgetLimits {
  uint64_t MaxStepsPerPhase = 0; ///< Worklist iterations per phase.
  uint64_t PhaseDeadlineMs = 0;  ///< Wall-clock deadline per phase.
  uint64_t MaxRSSBytes = 0;      ///< Optional resident-set watermark.

  bool any() const { return MaxStepsPerPhase || PhaseDeadlineMs || MaxRSSBytes; }
};

/// A deterministic injected exhaustion: while the named phase is armed,
/// the budget reports Exhausted as soon as AtStep steps were consumed
/// (AtStep == 0 exhausts the phase the moment it is armed). With Once set
/// the fault fires on the first matching arm only, which exercises the
/// retry rungs of the ladder (e.g. the field-insensitive Andersen rerun).
/// MaxFires generalizes Once to the first N matching arms (spec suffix
/// ":2" etc.), so deeper rungs — the unification retry behind two failed
/// Andersen arms — are reachable deterministically too.
struct FaultPlan {
  BudgetPhase Phase = BudgetPhase::PointerAnalysis;
  uint64_t AtStep = 0;
  bool Once = false;
  /// 0 honors Once (1 arm if set, every arm otherwise); N > 0 fires on
  /// the first N matching arms regardless of Once.
  uint32_t MaxFires = 0;

  uint32_t fireLimit() const {
    if (MaxFires)
      return MaxFires;
    return Once ? 1 : ~0u;
  }
};

/// The budget token. Default-constructed tokens are unlimited and free.
/// Non-copyable: exactly one token exists per pipeline run and everyone
/// charges it by pointer.
class Budget {
public:
  Budget() = default;
  explicit Budget(const BudgetLimits &L,
                  std::optional<FaultPlan> F = std::nullopt)
      : Limits(L), Fault(F), Armed(L.any() || F.has_value()) {}

  Budget(const Budget &) = delete;
  Budget &operator=(const Budget &) = delete;

  /// Re-arms the token for phase \p P: resets the step count, the phase
  /// deadline and any previous exhaustion. An AtStep == 0 fault for \p P
  /// fires immediately, so injection is deterministic even for phases
  /// whose worklists happen to be empty. Serial only — never call while
  /// workers may still be charging.
  void beginPhase(BudgetPhase P);

  /// Consumes \p N steps. Returns true while the phase is within budget;
  /// once false, it stays false until the next beginPhase(). Safe to call
  /// concurrently; the total charged is the sum of all grants, exactly as
  /// in a serial run.
  bool step(uint64_t N = 1) {
    if (!Armed)
      return true;
    return stepSlow(N);
  }

  bool exhausted() const {
    return Exhaust.load(std::memory_order_acquire) != NotExhausted;
  }
  ExhaustKind exhaustKind() const;
  BudgetPhase currentPhase() const { return Cur; }
  uint64_t stepsUsed() const { return Steps.load(std::memory_order_relaxed); }

private:
  bool stepSlow(uint64_t N);
  /// Records exhaustion \p K attributed to charged-step \p CrossStep; the
  /// lowest crossing step wins (with serial check order breaking ties) so
  /// attribution is schedule-independent.
  void install(ExhaustKind K, uint64_t CrossStep);

  /// Exhaustion state packed into one word — (CrossStep << 8) | check-rank
  /// of the kind — so the pair is installed and read atomically and a
  /// CAS-min linearizes racing crossings.
  static constexpr uint64_t NotExhausted = ~0ull;

  BudgetLimits Limits;
  std::optional<FaultPlan> Fault;
  bool Armed = false;
  std::atomic<uint32_t> FaultFires{0};
  BudgetPhase Cur = BudgetPhase::PointerAnalysis;
  std::atomic<uint64_t> Exhaust{NotExhausted};
  std::atomic<uint64_t> Steps{0};
  std::atomic<uint64_t> Checks{0};
  std::chrono::steady_clock::time_point PhaseStart{};
};

} // namespace usher

#endif // USHER_SUPPORT_BUDGET_H
