//===- support/Statistic.h - Named statistic counters -----------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny registry of named counters, in the spirit of llvm::Statistic but
/// without global constructors: counters live in an explicit registry object
/// that analyses thread through their contexts.
///
/// The registry itself is thread-safe (a mutex guards the map — these are
/// cold, name-keyed updates). Hot parallel loops should instead count into
/// a per-worker StatisticShard and fold() it into the registry after the
/// join; folding is additive and name-keyed, so the final counters equal
/// the serial totals no matter how work was partitioned.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SUPPORT_STATISTIC_H
#define USHER_SUPPORT_STATISTIC_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace usher {

class raw_ostream;

/// A private, unsynchronized bag of counters for one worker's slice of a
/// parallel region. Fold into the shared registry after the region joins.
class StatisticShard {
public:
  void add(const std::string &Name, uint64_t Delta = 1) {
    Counters[Name] += Delta;
  }
  const std::map<std::string, uint64_t> &counters() const { return Counters; }

private:
  std::map<std::string, uint64_t> Counters;
};

/// Collects named counters during an analysis run.
class StatisticRegistry {
public:
  /// Adds \p Delta to the counter named \p Name, creating it at zero first.
  void add(const std::string &Name, uint64_t Delta = 1) {
    std::lock_guard<std::mutex> L(Mtx);
    Counters[Name] += Delta;
  }

  /// Sets the counter named \p Name to \p Value.
  void set(const std::string &Name, uint64_t Value) {
    std::lock_guard<std::mutex> L(Mtx);
    Counters[Name] = Value;
  }

  /// Adds every counter of \p Shard into the registry.
  void fold(const StatisticShard &Shard) {
    std::lock_guard<std::mutex> L(Mtx);
    for (const auto &[Name, Value] : Shard.counters())
      Counters[Name] += Value;
  }

  /// Returns the value of the counter named \p Name, or 0 if absent.
  uint64_t get(const std::string &Name) const {
    std::lock_guard<std::mutex> L(Mtx);
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  /// Prints all counters, sorted by name, one per line.
  void print(raw_ostream &OS) const;

  /// Removes all counters.
  void clear() {
    std::lock_guard<std::mutex> L(Mtx);
    Counters.clear();
  }

  /// Returns a snapshot of the counter map (sorted by name).
  std::map<std::string, uint64_t> counters() const {
    std::lock_guard<std::mutex> L(Mtx);
    return Counters;
  }

private:
  mutable std::mutex Mtx;
  std::map<std::string, uint64_t> Counters;
};

} // namespace usher

#endif // USHER_SUPPORT_STATISTIC_H
