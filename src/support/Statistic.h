//===- support/Statistic.h - Named statistic counters -----------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny registry of named counters, in the spirit of llvm::Statistic but
/// without global constructors: counters live in an explicit registry object
/// that analyses thread through their contexts.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SUPPORT_STATISTIC_H
#define USHER_SUPPORT_STATISTIC_H

#include <cstdint>
#include <map>
#include <string>

namespace usher {

class raw_ostream;

/// Collects named counters during an analysis run.
class StatisticRegistry {
public:
  /// Adds \p Delta to the counter named \p Name, creating it at zero first.
  void add(const std::string &Name, uint64_t Delta = 1) {
    Counters[Name] += Delta;
  }

  /// Sets the counter named \p Name to \p Value.
  void set(const std::string &Name, uint64_t Value) { Counters[Name] = Value; }

  /// Returns the value of the counter named \p Name, or 0 if absent.
  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  /// Prints all counters, sorted by name, one per line.
  void print(raw_ostream &OS) const;

  /// Removes all counters.
  void clear() { Counters.clear(); }

  /// Returns the underlying counter map (sorted by name).
  const std::map<std::string, uint64_t> &counters() const { return Counters; }

private:
  std::map<std::string, uint64_t> Counters;
};

} // namespace usher

#endif // USHER_SUPPORT_STATISTIC_H
