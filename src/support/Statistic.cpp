//===- support/Statistic.cpp - Named statistic counters ------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

#include "support/RawStream.h"

using namespace usher;

void StatisticRegistry::print(raw_ostream &OS) const {
  std::lock_guard<std::mutex> L(Mtx);
  for (const auto &[Name, Value] : Counters)
    OS << Name << " = " << Value << '\n';
}
