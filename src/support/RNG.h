//===- support/RNG.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SplitMix64-based PRNG. Used by the random program generator and the
/// property tests; deterministic across platforms so seeds are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SUPPORT_RNG_H
#define USHER_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace usher {

/// Deterministic PRNG (SplitMix64). Not cryptographic; perfectly adequate
/// for workload generation and property-test case selection.
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "below() with zero bound");
    return next() % Bound;
  }

  /// Returns a value uniformly distributed in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() with inverted bounds");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Returns true with probability Percent / 100.
  bool chance(unsigned Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

} // namespace usher

#endif // USHER_SUPPORT_RNG_H
