//===- support/ThreadPool.h - Deterministic parallel execution --*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size work-stealing thread pool plus the ordered-reduce helpers
/// every parallel phase of the pipeline is built on.
///
/// The determinism contract of the whole tree rests on two rules:
///
///  1. Work items handed to the pool are independent: an item may read
///     shared immutable state (the module, the VFG, points-to sets) and
///     write only its own slot of a pre-sized result vector.
///  2. All merging of per-item results happens *after* the parallel
///     region, in item-index order ("ordered reduce") — never in
///     completion order. parallelMapOrdered() packages this pattern.
///
/// Under these rules a phase run with N workers produces byte-identical
/// results to the same phase run inline, which is what `--jobs` promises
/// and what ParallelDeterminismTest pins.
///
/// Scheduling within the pool is deliberately *not* deterministic: tasks
/// are distributed round-robin across per-worker deques, owners pop from
/// the front, and idle workers (and the submitting thread, which helps
/// instead of blocking) steal from the back of the longest queue, so a
/// skewed task mix still saturates the pool.
///
/// Exceptions thrown by work items are captured per item and rethrown to
/// the submitter by the lowest item index, deterministically, after the
/// region completes.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SUPPORT_THREADPOOL_H
#define USHER_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace usher {

/// Fixed-size work-stealing pool. Destruction drains every queued task
/// (tasks submitted before the destructor ran are guaranteed to execute),
/// then joins the workers.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers. Values below 2 are allowed but
  /// pointless — prefer passing a null pool to the parallel helpers,
  /// which then run inline at zero cost.
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Tasks executed by a worker out of another worker's deque. Test and
  /// diagnostics surface; caller-help runs are not counted.
  uint64_t stealCount() const { return Steals.load(std::memory_order_relaxed); }

  /// Enqueues \p Task (round-robin across worker deques). The task must
  /// not throw — use the parallel helpers for exception-propagating work.
  void async(std::function<void()> Task);

  /// Runs one queued task on the calling thread, if any is available.
  /// Lets the submitting thread help drain a region instead of blocking.
  bool tryRunOne();

  /// The worker count `--jobs=0` resolves to: the hardware concurrency,
  /// clamped to [1, 64] so a misreported topology cannot fork-bomb.
  static unsigned defaultJobs();

private:
  void workerLoop(unsigned Me);
  /// Pops the next task for worker \p Me (own front, else steal from the
  /// back of the longest other queue). Caller holds Mtx.
  bool popTaskLocked(unsigned Me, std::function<void()> &Out, bool &WasSteal);

  mutable std::mutex Mtx;
  std::condition_variable HasWork;
  std::vector<std::deque<std::function<void()>>> Queues;
  std::vector<std::thread> Workers;
  unsigned NextQueue = 0;
  bool Stopping = false;
  std::atomic<uint64_t> Steals{0};
};

namespace detail {
/// Shared completion state of one parallel region.
struct RegionState {
  std::atomic<size_t> Remaining{0};
  std::mutex Mtx;
  std::condition_variable Done;
  std::vector<std::exception_ptr> Errors;
};
} // namespace detail

/// Runs F(0) .. F(N-1) across \p Pool and returns once all completed.
/// With a null pool, a single-thread pool, or N <= 1 the items run inline
/// on the calling thread in index order — the serial reference semantics.
/// The submitting thread helps execute queued tasks while waiting. If any
/// item threw, the exception of the lowest-index throwing item is
/// rethrown (later items still ran; items must be side-effect-independent).
template <typename Fn>
void parallelForOrdered(ThreadPool *Pool, size_t N, Fn &&F) {
  if (!Pool || Pool->numThreads() <= 1 || N <= 1) {
    for (size_t I = 0; I != N; ++I)
      F(I);
    return;
  }
  auto S = std::make_shared<detail::RegionState>();
  S->Remaining.store(N, std::memory_order_relaxed);
  S->Errors.resize(N);
  for (size_t I = 0; I != N; ++I) {
    Pool->async([S, I, &F] {
      try {
        F(I);
      } catch (...) {
        S->Errors[I] = std::current_exception();
      }
      if (S->Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> L(S->Mtx);
        S->Done.notify_all();
      }
    });
  }
  while (S->Remaining.load(std::memory_order_acquire) != 0) {
    if (!Pool->tryRunOne()) {
      std::unique_lock<std::mutex> L(S->Mtx);
      S->Done.wait_for(L, std::chrono::milliseconds(2), [&] {
        return S->Remaining.load(std::memory_order_acquire) == 0;
      });
    }
  }
  for (const std::exception_ptr &E : S->Errors)
    if (E)
      std::rethrow_exception(E);
}

/// The deterministic ordered reduce: maps F over 0..N-1 in parallel and
/// returns the results in *index* order, never completion order. This is
/// the only sanctioned way parallel phases combine per-item results.
template <typename Fn>
auto parallelMapOrdered(ThreadPool *Pool, size_t N, Fn &&F)
    -> std::vector<decltype(F(size_t(0)))> {
  using T = decltype(F(size_t(0)));
  std::vector<std::optional<T>> Slots(N);
  parallelForOrdered(Pool, N, [&](size_t I) { Slots[I].emplace(F(I)); });
  std::vector<T> Out;
  Out.reserve(N);
  for (std::optional<T> &Slot : Slots)
    Out.push_back(std::move(*Slot));
  return Out;
}

} // namespace usher

#endif // USHER_SUPPORT_THREADPOOL_H
