//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project's deterministic fault plane. Two families of sites:
///
/// *Budget sites* drive the budget subsystem. A fault spec names a
/// budgeted phase and the iteration at which its budget should report
/// exhaustion:
///
///   <phase>@<step>[:once|:<fires>]
///
/// where <phase> is one of pta, definedness, opt1, opt2 (the
/// budgetPhaseName() spellings; pointer-analysis/def/opti/optii are
/// accepted as aliases). step 0 exhausts the phase upon entry. The :once
/// suffix fires on the first matching arm only, which lets tests exercise
/// retry rungs (e.g. fail the field-sensitive Andersen run but let the
/// field-insensitive rerun finish). A numeric :<fires> suffix generalizes
/// this to the first N matching arms, so deeper rungs are reachable:
/// "pta@0:2" fails both Andersen attempts and lands on the unification
/// retry.
///
/// *I/O sites* cover the analysis service's system-call boundaries
/// (serve/): snapshot-store reads and writes, a torn snapshot write, a
/// socket drop while a reply is being delivered, and an allocation
/// failure while a request frame is parsed. Each site is armed with
///
///   <site>@<hit>[:once]
///
/// where <hit> is the 1-based traversal ordinal at which the site starts
/// failing; with :once only that single traversal fails. Arming is
/// process-global (armIoFault / the USHER_INJECT_IO_FAULT environment
/// variable) and every traversal is counted, so campaigns are exactly
/// reproducible.
///
/// Specs come from the CLIs' --inject-fault= flags or, for harnesses that
/// cannot pass flags, the USHER_INJECT_FAULT / USHER_INJECT_IO_FAULT
/// environment variables. allFaultSiteNames() enumerates every site of
/// both families so campaign drivers (`usher-cli --list-fault-sites`,
/// check_serve_json.py --run-fault) cannot silently miss one added later.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SUPPORT_FAULTINJECTION_H
#define USHER_SUPPORT_FAULTINJECTION_H

#include "support/Budget.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace usher {

/// The environment variable consulted by faultPlanFromEnv().
inline constexpr const char *FaultInjectionEnvVar = "USHER_INJECT_FAULT";

/// Parses a "<phase>@<step>[:once|:<fires>]" spec. Returns std::nullopt
/// on a malformed spec and, when \p Err is non-null, stores a diagnostic.
std::optional<FaultPlan> parseFaultSpec(std::string_view Spec,
                                        std::string *Err = nullptr);

/// Reads USHER_INJECT_FAULT; returns std::nullopt when unset or malformed
/// (a malformed value is reported on stderr rather than silently ignored).
std::optional<FaultPlan> faultPlanFromEnv();

//===----------------------------------------------------------------------===//
// Deterministic I/O fault sites
//===----------------------------------------------------------------------===//

/// The I/O boundaries the serve subsystem hardens. Keep ioFaultSiteName()
/// and parseIoFaultSiteName() in sync when adding a site — the campaign
/// enumeration (allFaultSiteNames) derives from NumIoFaultSites, so a new
/// enumerator is automatically picked up by --list-fault-sites and the
/// serve_fault tier.
enum class IoFaultSite : uint8_t {
  SnapshotRead = 0,  ///< Snapshot-store load fails (treated as a miss).
  SnapshotWrite,     ///< Snapshot-store save fails (entry not persisted).
  SnapshotTornWrite, ///< Save persists a truncated record (simulated torn
                     ///< write / crash between write and fsync).
  SocketDropReply,   ///< Connection dropped while a reply is delivered.
  ParseAlloc,        ///< Allocation failure while parsing a request frame.
};
constexpr unsigned NumIoFaultSites = 5;

/// Stable lower-case site name used in specs and --list-fault-sites
/// ("snapshot-read", "snapshot-write", "snapshot-torn-write",
/// "socket-drop-reply", "parse-alloc").
const char *ioFaultSiteName(IoFaultSite S);

/// Inverse of ioFaultSiteName(). Returns false on an unknown name.
bool parseIoFaultSiteName(std::string_view Name, IoFaultSite &Out);

/// A deterministic I/O fault: the named site fails on its AtHit-th
/// traversal (1-based) and, unless Once, on every traversal after it.
struct IoFaultSpec {
  IoFaultSite Site = IoFaultSite::SnapshotRead;
  uint64_t AtHit = 1;
  bool Once = false;
};

/// Parses a "<site>@<hit>[:once]" spec. Returns std::nullopt on a
/// malformed spec and, when \p Err is non-null, stores a diagnostic.
std::optional<IoFaultSpec> parseIoFaultSpec(std::string_view Spec,
                                            std::string *Err = nullptr);

/// The environment variable consulted by ioFaultSpecFromEnv().
inline constexpr const char *IoFaultInjectionEnvVar = "USHER_INJECT_IO_FAULT";

/// Reads USHER_INJECT_IO_FAULT; returns std::nullopt when unset or
/// malformed (a malformed value is reported on stderr).
std::optional<IoFaultSpec> ioFaultSpecFromEnv();

/// Arms \p Spec process-wide. Re-arming a site resets its traversal
/// counter. Thread-safe.
void armIoFault(const IoFaultSpec &Spec);

/// Disarms every I/O site and resets all traversal counters (tests).
void disarmIoFaults();

/// Consulted by the instrumented I/O boundary: counts one traversal of
/// \p S and returns true if the armed plan says this traversal fails.
/// With nothing armed this is a single relaxed atomic increment.
bool ioFaultShouldFail(IoFaultSite S);

/// Traversals of \p S counted so far (diagnostics and tests).
uint64_t ioFaultTraversals(IoFaultSite S);

/// Every deterministic fault site name: the four budget phases first,
/// then the I/O sites. The source of truth for --list-fault-sites and
/// fault campaigns.
std::vector<std::string> allFaultSiteNames();

} // namespace usher

#endif // USHER_SUPPORT_FAULTINJECTION_H
