//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Env/flag-driven fault injection for the budget subsystem. A fault spec
/// names a budgeted phase and the iteration at which its budget should
/// report exhaustion:
///
///   <phase>@<step>[:once]
///
/// where <phase> is one of pta, definedness, opt1, opt2 (the
/// budgetPhaseName() spellings; pointer-analysis/def/opti/optii are
/// accepted as aliases). step 0 exhausts the phase upon entry. The :once
/// suffix fires on the first matching arm only, which lets tests exercise
/// retry rungs (e.g. fail the field-sensitive Andersen run but let the
/// field-insensitive rerun finish).
///
/// Specs come from usher-cli's --inject-fault= flag or, for harnesses that
/// cannot pass flags, the USHER_INJECT_FAULT environment variable. Every
/// rung of the degradation ladder is exercised deterministically this way
/// in the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_SUPPORT_FAULTINJECTION_H
#define USHER_SUPPORT_FAULTINJECTION_H

#include "support/Budget.h"

#include <optional>
#include <string>
#include <string_view>

namespace usher {

/// The environment variable consulted by faultPlanFromEnv().
inline constexpr const char *FaultInjectionEnvVar = "USHER_INJECT_FAULT";

/// Parses a "<phase>@<step>[:once]" spec. Returns std::nullopt on a
/// malformed spec and, when \p Err is non-null, stores a diagnostic.
std::optional<FaultPlan> parseFaultSpec(std::string_view Spec,
                                        std::string *Err = nullptr);

/// Reads USHER_INJECT_FAULT; returns std::nullopt when unset or malformed
/// (a malformed value is reported on stderr rather than silently ignored).
std::optional<FaultPlan> faultPlanFromEnv();

} // namespace usher

#endif // USHER_SUPPORT_FAULTINJECTION_H
