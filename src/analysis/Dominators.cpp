//===- analysis/Dominators.cpp - Dominator tree & frontiers ---------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include "ir/IR.h"

#include <algorithm>
#include <cassert>

using namespace usher;
using namespace usher::analysis;
using ir::BasicBlock;
using ir::Instruction;

DominatorTree::DominatorTree(const CFGInfo &CFG) : CFG(CFG) {
  const auto &RPO = CFG.reversePostOrder();
  const size_t N = CFG.getFunction().blocks().size();
  IDom.assign(N, nullptr);
  Children.resize(N);
  DFSIn.assign(N, 0);
  DFSOut.assign(N, 0);
  if (RPO.empty())
    return;

  BasicBlock *Entry = RPO.front();
  IDom[Entry->getId()] = Entry;

  // Intersect two candidate dominators by walking up the (partial)
  // dominator tree, comparing RPO indices (Cooper-Harvey-Kennedy).
  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (CFG.rpoIndex(A->getId()) > CFG.rpoIndex(B->getId()))
        A = IDom[A->getId()];
      while (CFG.rpoIndex(B->getId()) > CFG.rpoIndex(A->getId()))
        B = IDom[B->getId()];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *Pred : CFG.predecessors(BB->getId())) {
        if (!IDom[Pred->getId()])
          continue; // Not yet processed (or unreachable).
        NewIDom = NewIDom ? Intersect(NewIDom, Pred) : Pred;
      }
      assert(NewIDom && "reachable block without a processed predecessor");
      if (IDom[BB->getId()] != NewIDom) {
        IDom[BB->getId()] = NewIDom;
        Changed = true;
      }
    }
  }

  // The entry's idom is conventionally null for clients.
  IDom[Entry->getId()] = nullptr;
  for (BasicBlock *BB : RPO)
    if (BasicBlock *D = IDom[BB->getId()])
      Children[D->getId()].push_back(BB);

  // DFS numbering over the dominator tree for O(1) dominance queries.
  unsigned Clock = 0;
  std::vector<std::pair<BasicBlock *, size_t>> Stack{{Entry, 0}};
  DFSIn[Entry->getId()] = ++Clock;
  while (!Stack.empty()) {
    auto &[BB, NextChild] = Stack.back();
    auto &Kids = Children[BB->getId()];
    if (NextChild < Kids.size()) {
      BasicBlock *C = Kids[NextChild++];
      DFSIn[C->getId()] = ++Clock;
      Stack.push_back({C, 0});
      continue;
    }
    DFSOut[BB->getId()] = ++Clock;
    Stack.pop_back();
  }
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  if (!CFG.isReachable(A->getId()) || !CFG.isReachable(B->getId()))
    return false;
  return DFSIn[A->getId()] <= DFSIn[B->getId()] &&
         DFSOut[A->getId()] >= DFSOut[B->getId()];
}

bool DominatorTree::dominates(const Instruction *A,
                              const Instruction *B) const {
  const BasicBlock *ABB = A->getParent();
  const BasicBlock *BBB = B->getParent();
  assert(ABB && BBB && "instruction without a parent block");
  if (ABB != BBB)
    return dominates(ABB, BBB);
  if (A == B)
    return false;
  for (const auto &I : ABB->instructions()) {
    if (I.get() == A)
      return true;
    if (I.get() == B)
      return false;
  }
  assert(false && "instructions not found in their parent block");
  return false;
}

DominanceFrontier::DominanceFrontier(const DominatorTree &DT) {
  const CFGInfo &CFG = DT.getCFG();
  const size_t N = CFG.getFunction().blocks().size();
  Frontiers.resize(N);
  for (BasicBlock *BB : CFG.reversePostOrder()) {
    const auto &Preds = CFG.predecessors(BB->getId());
    if (Preds.size() < 2)
      continue;
    for (BasicBlock *Pred : Preds) {
      if (!CFG.isReachable(Pred->getId()))
        continue;
      BasicBlock *Runner = Pred;
      while (Runner != DT.idom(BB)) {
        auto &F = Frontiers[Runner->getId()];
        if (std::find(F.begin(), F.end(), BB) == F.end())
          F.push_back(BB);
        Runner = DT.idom(Runner);
        assert(Runner && "runner escaped above the entry block");
      }
    }
  }
}
