//===- analysis/DemandVFA.cpp - Demand-driven VFG reachability -------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/DemandVFA.h"

#include "core/ContextStack.h"
#include "support/Budget.h"
#include "support/RawStream.h"

#include <algorithm>
#include <deque>

using namespace usher;
using namespace usher::analysis;
using core::ContextStack;
using vfg::Edge;
using vfg::EdgeKind;
using vfg::VFG;

namespace {

struct StateKey {
  uint32_t Node;
  uint64_t Ctx;
  bool operator==(const StateKey &O) const {
    return Node == O.Node && Ctx == O.Ctx;
  }
};

struct StateKeyHash {
  size_t operator()(const StateKey &K) const {
    uint64_t H = K.Ctx * 0x9E3779B97F4A7C15ull;
    H ^= (static_cast<uint64_t>(K.Node) + 0x9E3779B9u) + (H << 6) + (H >> 2);
    return static_cast<size_t>(H);
  }
};

/// How a state was first reached (for witness reconstruction). The root
/// marks itself with Node == ~0u.
struct ParentLink {
  uint32_t Node = ~0u;
  uint64_t Ctx = 0;
  EdgeKind Kind = EdgeKind::Direct;
  uint32_t CallSite = ~0u;
};

} // namespace

QueryResult DemandVFA::solve(uint32_t Src, uint32_t Sink) {
  QueryResult R;
  const unsigned K = Opts.ContextK;

  std::unordered_map<StateKey, ParentLink, StateKeyHash> Seen;
  std::deque<StateKey> Queue;

  auto Reconstruct = [&](StateKey Final) {
    std::vector<QueryStep> Path;
    StateKey Cur = Final;
    while (true) {
      const ParentLink &P = Seen[Cur];
      if (P.Node == ~0u) {
        Path.push_back({Cur.Node, EdgeKind::Direct, ~0u});
        break;
      }
      Path.push_back({Cur.Node, P.Kind, P.CallSite});
      Cur = {P.Node, P.Ctx};
    }
    std::reverse(Path.begin(), Path.end());
    return Path;
  };

  StateKey Root{Src, ContextStack::empty().raw()};
  Seen.emplace(Root, ParentLink());
  if (Src == Sink) {
    R.Reachable = true;
    R.Witness = Reconstruct(Root);
    return R;
  }
  Queue.push_back(Root);

  while (!Queue.empty()) {
    if (B && !B->step()) {
      R.Exhausted = true;
      return R;
    }
    ++R.StatesVisited;
    StateKey S = Queue.front();
    Queue.pop_front();
    ContextStack Ctx = ContextStack::fromRaw(S.Ctx);

    for (const Edge &E : G.users(S.Node)) {
      ContextStack Next = ContextStack::empty();
      switch (E.Kind) {
      case EdgeKind::Direct:
        Next = Ctx;
        break;
      case EdgeKind::Call:
        Next = K == 0 ? Ctx : Ctx.pushed(E.CallSite, K);
        break;
      case EdgeKind::Ret: {
        if (K == 0) {
          Next = Ctx;
          break;
        }
        ContextStack Out = ContextStack::empty();
        if (!Ctx.popped(E.CallSite, Out))
          continue; // unrealizable: a different call is pending
        Next = Out;
        break;
      }
      }
      StateKey NS{E.Node, Next.raw()};
      auto [It, Inserted] =
          Seen.emplace(NS, ParentLink{S.Node, S.Ctx, E.Kind, E.CallSite});
      (void)It;
      if (!Inserted)
        continue;
      if (E.Node == Sink) {
        R.Reachable = true;
        R.Witness = Reconstruct(NS);
        return R;
      }
      Queue.push_back(NS);
    }
  }
  return R; // state space exhausted: definitively unreachable
}

QueryResult DemandVFA::cflReachable(uint32_t Src, uint32_t Sink) {
  {
    std::lock_guard<std::mutex> L(Mu);
    ++Queries;
  }
  if (Src >= G.numNodes() || Sink >= G.numNodes())
    return QueryResult(); // out of range: unreachable, never cached

  const uint64_t Key = (static_cast<uint64_t>(Src) << 32) | Sink;
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      ++CacheHits;
      QueryResult R = It->second;
      R.FromCache = true;
      R.StatesVisited = 0;
      return R;
    }
  }

  QueryResult R = solve(Src, Sink);
  if (!R.Exhausted) {
    // Both verdicts are definitive once the BFS ran to completion (or
    // found the sink); exhausted runs are inconclusive and stay uncached.
    std::lock_guard<std::mutex> L(Mu);
    Cache.emplace(Key, R);
  }
  return R;
}

uint64_t DemandVFA::memoHits() const {
  std::lock_guard<std::mutex> L(Mu);
  return CacheHits;
}

uint64_t DemandVFA::queriesAnswered() const {
  std::lock_guard<std::mutex> L(Mu);
  return Queries;
}

bool analysis::validateQueryWitness(const VFG &G, uint32_t Src, uint32_t Sink,
                                    const std::vector<QueryStep> &W,
                                    unsigned ContextK, std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  if (W.empty())
    return Fail("empty witness");
  if (W.front().Node != Src)
    return Fail("witness does not start at the source");
  if (W.back().Node != Sink)
    return Fail("witness does not end at the sink");
  ContextStack Ctx = ContextStack::empty();
  for (size_t I = 1; I != W.size(); ++I) {
    const QueryStep &S = W[I];
    uint32_t From = W[I - 1].Node;
    bool Found = false;
    for (const Edge &E : G.users(From))
      if (E.Node == S.Node && E.Kind == S.Kind && E.CallSite == S.CallSite) {
        Found = true;
        break;
      }
    if (!Found) {
      std::string Msg;
      raw_string_ostream OS(Msg);
      OS << "step " << I << ": no user edge " << From << " -> " << S.Node;
      return Fail(Msg);
    }
    switch (S.Kind) {
    case EdgeKind::Direct:
      break;
    case EdgeKind::Call:
      if (ContextK != 0)
        Ctx = Ctx.pushed(S.CallSite, ContextK);
      break;
    case EdgeKind::Ret: {
      if (ContextK == 0)
        break;
      ContextStack Out = ContextStack::empty();
      if (!Ctx.popped(S.CallSite, Out)) {
        std::string Msg;
        raw_string_ostream OS(Msg);
        OS << "step " << I << ": unrealizable return through site "
           << S.CallSite;
        return Fail(Msg);
      }
      Ctx = Out;
      break;
    }
    }
  }
  return true;
}
