//===- analysis/CFG.cpp - Control-flow graph utilities --------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include "ir/IR.h"

using namespace usher;
using namespace usher::analysis;
using ir::BasicBlock;
using ir::Function;

CFGInfo::CFGInfo(const Function &F) : F(F) {
  const size_t N = F.blocks().size();
  Succs.resize(N);
  Preds.resize(N);
  RPOIndex.assign(N, ~0u);

  for (const auto &BB : F.blocks()) {
    BB->getSuccessors(Succs[BB->getId()]);
    for (BasicBlock *S : Succs[BB->getId()])
      Preds[S->getId()].push_back(BB.get());
  }

  // Iterative post-order DFS from the entry, then reverse.
  std::vector<char> Visited(N, 0);
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  BasicBlock *Entry = F.getEntry();
  Visited[Entry->getId()] = 1;
  Stack.push_back({Entry, 0});
  std::vector<BasicBlock *> PostOrder;
  while (!Stack.empty()) {
    auto &[BB, NextSucc] = Stack.back();
    const auto &SuccList = Succs[BB->getId()];
    if (NextSucc < SuccList.size()) {
      BasicBlock *S = SuccList[NextSucc++];
      if (!Visited[S->getId()]) {
        Visited[S->getId()] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    PostOrder.push_back(BB);
    Stack.pop_back();
  }
  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned I = 0, E = static_cast<unsigned>(RPO.size()); I != E; ++I)
    RPOIndex[RPO[I]->getId()] = I;
}
