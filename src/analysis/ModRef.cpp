//===- analysis/ModRef.cpp - Interprocedural mod/ref ----------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/ModRef.h"

#include "analysis/CallGraph.h"
#include "analysis/PointerAnalysis.h"
#include "ir/IR.h"

using namespace usher;
using namespace usher::analysis;
using namespace usher::ir;

ModRefAnalysis::ModRefAnalysis(const Module &M, const CallGraph &CG,
                               const PointerAnalysis &PA)
    : M(M), CG(CG), PA(PA) {
  const unsigned NumLocs = PA.numLocations();
  for (const auto &F : M.functions()) {
    Sets &S = Info[F.get()];
    S.Mod.resize(NumLocs);
    S.Ref.resize(NumLocs);
  }

  // Direct effects.
  for (const auto &F : M.functions()) {
    Sets &S = Info[F.get()];
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        if (const auto *St = dyn_cast<StoreInst>(I.get())) {
          for (uint32_t Loc : PA.pointsTo(St->getPtr()))
            S.Mod.set(Loc);
        } else if (const auto *Ld = dyn_cast<LoadInst>(I.get())) {
          for (uint32_t Loc : PA.pointsTo(Ld->getPtr()))
            S.Ref.set(Loc);
        } else if (const auto *A = dyn_cast<AllocInst>(I.get())) {
          for (unsigned Loc : PA.locsOfObject(A->getObject()))
            S.Mod.set(Loc);
        }
      }
    }
  }

  // Transitive closure over the call graph. Call sites of allocation
  // wrappers substitute clones for origins, so cloned objects propagate
  // to callers while the unreachable origins stay confined to the wrapper.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &F : M.functions()) {
      Sets &S = Info[F.get()];
      for (const CallInst *Call : CG.callSitesIn(F.get())) {
        Changed |= S.Mod.unionWith(modAt(Call));
        Changed |= S.Ref.unionWith(refAt(Call));
      }
    }
  }
}

static BitSet substituteClones(const BitSet &Callee,
                               const PointerAnalysis &PA,
                               const CallInst *Call) {
  const auto &SiteClones = PA.clonesAt(Call);
  if (SiteClones.empty())
    return Callee;
  BitSet Result = Callee;
  for (const MemObject *Origin :
       PA.cloneOrigins(Call->getCallee()))
    for (unsigned Loc : PA.locsOfObject(Origin))
      Result.clear(Loc);
  for (const MemObject *Clone : SiteClones)
    for (unsigned Loc : PA.locsOfObject(Clone))
      if (Callee.test(PA.locId(Clone->getCloneOrigin(),
                               PA.location(Loc).Field)))
        Result.set(Loc);
  return Result;
}

BitSet ModRefAnalysis::modAt(const CallInst *Call) const {
  return substituteClones(Info.at(Call->getCallee()).Mod, PA, Call);
}

BitSet ModRefAnalysis::refAt(const CallInst *Call) const {
  return substituteClones(Info.at(Call->getCallee()).Ref, PA, Call);
}
