//===- analysis/ModRef.h - Interprocedural mod/ref --------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Which memory locations each function may modify or read, transitively.
/// MemorySSA uses this to place mu/chi annotations at call sites and to
/// compute the virtual input/output parameters of Figure 4.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_ANALYSIS_MODREF_H
#define USHER_ANALYSIS_MODREF_H

#include "support/BitSet.h"

#include <unordered_map>

namespace usher {
namespace ir {
class CallInst;
class Function;
class Module;
} // namespace ir

namespace analysis {

class CallGraph;
class PointerAnalysis;

/// Interprocedural may-mod / may-ref sets over PtLoc ids.
class ModRefAnalysis {
public:
  ModRefAnalysis(const ir::Module &M, const CallGraph &CG,
                 const PointerAnalysis &PA);

  /// Locations \p F may write, including via callees and allocations.
  const BitSet &mod(const ir::Function *F) const { return Info.at(F).Mod; }

  /// Locations \p F may read, including via callees.
  const BitSet &ref(const ir::Function *F) const { return Info.at(F).Ref; }

  /// Mod set visible at one call site. For allocation-wrapper calls the
  /// callee's cloned-away origin objects are replaced by this site's
  /// clones; otherwise this is mod(callee).
  BitSet modAt(const ir::CallInst *Call) const;

  /// Ref set visible at one call site (with the same clone substitution).
  BitSet refAt(const ir::CallInst *Call) const;

private:
  struct Sets {
    BitSet Mod, Ref;
  };

  const ir::Module &M;
  const CallGraph &CG;
  const PointerAnalysis &PA;
  std::unordered_map<const ir::Function *, Sets> Info;
};

} // namespace analysis
} // namespace usher

#endif // USHER_ANALYSIS_MODREF_H
