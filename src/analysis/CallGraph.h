//===- analysis/CallGraph.h - Direct call graph -----------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call graph over TinyC's direct calls, with Tarjan SCCs. Used by mod/ref
/// propagation, wrapper detection (recursive functions are never allocation
/// wrappers) and the inliner.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_ANALYSIS_CALLGRAPH_H
#define USHER_ANALYSIS_CALLGRAPH_H

#include <unordered_map>
#include <vector>

namespace usher {
namespace ir {
class CallInst;
class Function;
class Module;
} // namespace ir

namespace analysis {

/// Direct call graph of a module.
class CallGraph {
public:
  explicit CallGraph(const ir::Module &M);

  /// All call instructions in \p F.
  const std::vector<ir::CallInst *> &callSitesIn(const ir::Function *F) const;

  /// All call instructions whose callee is \p F.
  const std::vector<ir::CallInst *> &callersOf(const ir::Function *F) const;

  /// Distinct callees of \p F.
  const std::vector<ir::Function *> &calleesOf(const ir::Function *F) const;

  /// SCC id of \p F; SCCs are numbered in reverse topological order
  /// (callees before callers), so iterating functions by ascending SCC id
  /// visits callees first.
  unsigned sccId(const ir::Function *F) const;

  /// True if \p F can (transitively) call itself.
  bool isRecursive(const ir::Function *F) const;

  /// Functions grouped by SCC id.
  const std::vector<std::vector<ir::Function *>> &sccs() const {
    return SCCs;
  }

private:
  struct FnInfo {
    std::vector<ir::CallInst *> CallSites;
    std::vector<ir::CallInst *> Callers;
    std::vector<ir::Function *> Callees;
    unsigned SCC = 0;
    bool Recursive = false;
  };

  const FnInfo &info(const ir::Function *F) const;

  std::unordered_map<const ir::Function *, FnInfo> Info;
  std::vector<std::vector<ir::Function *>> SCCs;
};

} // namespace analysis
} // namespace usher

#endif // USHER_ANALYSIS_CALLGRAPH_H
