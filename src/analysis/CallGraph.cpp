//===- analysis/CallGraph.cpp - Direct call graph --------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include "ir/IR.h"

#include <algorithm>
#include <cassert>

using namespace usher;
using namespace usher::analysis;
using ir::CallInst;
using ir::Function;
using ir::Module;

CallGraph::CallGraph(const Module &M) {
  for (const auto &F : M.functions())
    Info[F.get()]; // Ensure every function has an entry.

  for (const auto &F : M.functions()) {
    FnInfo &FI = Info[F.get()];
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        auto *Call = dyn_cast<CallInst>(I.get());
        if (!Call)
          continue;
        FI.CallSites.push_back(Call);
        Info[Call->getCallee()].Callers.push_back(Call);
        auto &Callees = FI.Callees;
        if (std::find(Callees.begin(), Callees.end(), Call->getCallee()) ==
            Callees.end())
          Callees.push_back(Call->getCallee());
      }
    }
  }

  // Tarjan's SCC algorithm, iterative. SCCs pop in reverse topological
  // order (callees first), which is exactly the order mod/ref wants.
  struct NodeState {
    unsigned Index = ~0u;
    unsigned LowLink = 0;
    bool OnStack = false;
  };
  std::unordered_map<const Function *, NodeState> State;
  std::vector<const Function *> Stack;
  unsigned NextIndex = 0;

  struct Frame {
    const Function *F;
    size_t NextCallee;
  };

  for (const auto &Root : M.functions()) {
    if (State[Root.get()].Index != ~0u)
      continue;
    std::vector<Frame> DFS{{Root.get(), 0}};
    State[Root.get()].Index = State[Root.get()].LowLink = NextIndex++;
    State[Root.get()].OnStack = true;
    Stack.push_back(Root.get());
    while (!DFS.empty()) {
      Frame &Top = DFS.back();
      const auto &Callees = Info[Top.F].Callees;
      if (Top.NextCallee < Callees.size()) {
        const Function *Callee = Callees[Top.NextCallee++];
        NodeState &CS = State[Callee];
        if (CS.Index == ~0u) {
          CS.Index = CS.LowLink = NextIndex++;
          CS.OnStack = true;
          Stack.push_back(Callee);
          DFS.push_back({Callee, 0});
        } else if (CS.OnStack) {
          State[Top.F].LowLink = std::min(State[Top.F].LowLink, CS.Index);
        }
        continue;
      }
      // All callees processed: maybe pop an SCC, then propagate lowlink.
      NodeState &TS = State[Top.F];
      if (TS.LowLink == TS.Index) {
        SCCs.emplace_back();
        const Function *Member;
        do {
          Member = Stack.back();
          Stack.pop_back();
          State[Member].OnStack = false;
          Info[Member].SCC = static_cast<unsigned>(SCCs.size() - 1);
          SCCs.back().push_back(const_cast<Function *>(Member));
        } while (Member != Top.F);
      }
      const Function *Done = Top.F;
      DFS.pop_back();
      if (!DFS.empty())
        State[DFS.back().F].LowLink =
            std::min(State[DFS.back().F].LowLink, State[Done].LowLink);
    }
  }

  // A function is recursive if its SCC has >1 member or it calls itself.
  for (const auto &F : M.functions()) {
    FnInfo &FI = Info[F.get()];
    FI.Recursive = SCCs[FI.SCC].size() > 1 ||
                   std::find(FI.Callees.begin(), FI.Callees.end(), F.get()) !=
                       FI.Callees.end();
  }
}

const CallGraph::FnInfo &CallGraph::info(const Function *F) const {
  auto It = Info.find(F);
  assert(It != Info.end() && "function not in call graph");
  return It->second;
}

const std::vector<CallInst *> &
CallGraph::callSitesIn(const Function *F) const {
  return info(F).CallSites;
}

const std::vector<CallInst *> &CallGraph::callersOf(const Function *F) const {
  return info(F).Callers;
}

const std::vector<Function *> &CallGraph::calleesOf(const Function *F) const {
  return info(F).Callees;
}

unsigned CallGraph::sccId(const Function *F) const { return info(F).SCC; }

bool CallGraph::isRecursive(const Function *F) const {
  return info(F).Recursive;
}
