//===- analysis/CFG.h - Control-flow graph utilities ------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predecessor/successor tables and reverse-post-order for one function.
/// Analyses snapshot this; transforms that edit the CFG must rebuild it.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_ANALYSIS_CFG_H
#define USHER_ANALYSIS_CFG_H

#include <vector>

namespace usher {
namespace ir {
class BasicBlock;
class Function;
} // namespace ir

namespace analysis {

/// Immutable CFG snapshot of one function, indexed by block id.
class CFGInfo {
public:
  explicit CFGInfo(const ir::Function &F);

  const ir::Function &getFunction() const { return F; }

  const std::vector<ir::BasicBlock *> &successors(unsigned BlockId) const {
    return Succs[BlockId];
  }
  const std::vector<ir::BasicBlock *> &predecessors(unsigned BlockId) const {
    return Preds[BlockId];
  }

  /// Blocks reachable from entry, in reverse post order (entry first).
  const std::vector<ir::BasicBlock *> &reversePostOrder() const {
    return RPO;
  }

  /// Position of a block in the RPO sequence; ~0u for unreachable blocks.
  unsigned rpoIndex(unsigned BlockId) const { return RPOIndex[BlockId]; }

  /// True if the block is reachable from the entry.
  bool isReachable(unsigned BlockId) const {
    return RPOIndex[BlockId] != ~0u;
  }

private:
  const ir::Function &F;
  std::vector<std::vector<ir::BasicBlock *>> Succs;
  std::vector<std::vector<ir::BasicBlock *>> Preds;
  std::vector<ir::BasicBlock *> RPO;
  std::vector<unsigned> RPOIndex;
};

} // namespace analysis
} // namespace usher

#endif // USHER_ANALYSIS_CFG_H
