//===- analysis/DemandVFA.h - Demand-driven VFG reachability ----*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A demand-driven CFL-reachability query engine over the value-flow
/// graph: cflReachable(src, sink) answers "can the value at src flow to
/// sink along a context-valid path?" without resolving the whole program.
/// The grammar is the VFG's matched-paren call/return discipline — the
/// exact transitions Definedness resolution uses (core/ContextStack.h),
/// minus the saturation widening, so a query is *exact* with respect to
/// whole-program k-bounded reachability and the query-equivalence fuzz
/// oracle can compare them bit for bit.
///
/// Queries are breadth-first over (node, context) states, so the returned
/// witness is a shortest context-valid path; each state is visited once
/// per query (the per-(node,state) memo) and completed query results are
/// cached across queries behind a mutex, which is the surface the TSan
/// parallel-memoization tier exercises.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_ANALYSIS_DEMANDVFA_H
#define USHER_ANALYSIS_DEMANDVFA_H

#include "vfg/VFG.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace usher {
class Budget;

namespace analysis {

/// One step of a query witness: the node arrived at and the edge taken to
/// get there. The first step is the source itself (Kind = Direct,
/// CallSite = ~0u, no edge was taken).
struct QueryStep {
  uint32_t Node = 0;
  vfg::EdgeKind Kind = vfg::EdgeKind::Direct;
  uint32_t CallSite = ~0u;
};

/// Outcome of one cflReachable() call.
struct QueryResult {
  bool Reachable = false;
  /// The budget ran out before the state space was exhausted; Reachable
  /// is then inconclusive (false only means "not found yet") and the
  /// result is never cached.
  bool Exhausted = false;
  /// Answered from the cross-query result cache.
  bool FromCache = false;
  /// (node, context) states expanded by this query (0 on a cache hit).
  uint64_t StatesVisited = 0;
  /// Shortest context-valid path src..sink; non-empty iff Reachable.
  std::vector<QueryStep> Witness;
};

/// The demand-driven query engine. Thread-safe: concurrent queries share
/// the result cache under a mutex and charge the Budget atomically.
class DemandVFA {
public:
  struct Options {
    /// Unmatched call sites remembered along a path (the paper's
    /// configuration is 1); must match the Definedness run the answer is
    /// compared against.
    unsigned ContextK;
    // Explicit constructor (not a default member initializer) so the
    // enclosing class can use Options() as a default argument.
    Options() : ContextK(1) {}
  };

  /// \p G must outlive the engine. When \p B is armed, each state
  /// expansion charges one step; exhaustion aborts the query with
  /// Exhausted set rather than looping on.
  explicit DemandVFA(const vfg::VFG &G, Options Opts = Options(),
                     Budget *B = nullptr)
      : G(G), Opts(Opts), B(B) {}

  /// Is there a context-valid value-flow path from \p Src to \p Sink?
  /// Node ids outside the graph yield an unreachable, non-cached result.
  QueryResult cflReachable(uint32_t Src, uint32_t Sink);

  uint64_t memoHits() const;
  uint64_t queriesAnswered() const;

private:
  QueryResult solve(uint32_t Src, uint32_t Sink);

  const vfg::VFG &G;
  Options Opts;
  Budget *B;

  mutable std::mutex Mu;
  std::unordered_map<uint64_t, QueryResult> Cache; // (src<<32)|sink
  uint64_t CacheHits = 0;
  uint64_t Queries = 0;
};

/// Validates that \p W is a genuine context-valid user-edge path of \p G
/// from \p Src to \p Sink under k = \p ContextK: every step names a real
/// edge and the call/return discipline replays on a ContextStack. Shared
/// by the query-equivalence fuzz oracle and the unit tests so "the
/// witness is real" means the same thing everywhere.
bool validateQueryWitness(const vfg::VFG &G, uint32_t Src, uint32_t Sink,
                          const std::vector<QueryStep> &W, unsigned ContextK,
                          std::string *Err = nullptr);

} // namespace analysis
} // namespace usher

#endif // USHER_ANALYSIS_DEMANDVFA_H
