//===- analysis/Dominators.h - Dominator tree & frontiers -------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree via the Cooper-Harvey-Kennedy algorithm ("A Simple, Fast
/// Dominance Algorithm") and dominance frontiers from the same paper. Both
/// are used by SSA construction; instruction-level dominance additionally
/// drives semi-strong updates (Section 3.2) and the Opt II redundant check
/// elimination (Algorithm 1, line 7).
///
//===----------------------------------------------------------------------===//

#ifndef USHER_ANALYSIS_DOMINATORS_H
#define USHER_ANALYSIS_DOMINATORS_H

#include "analysis/CFG.h"
#include "ir/IR.h"

#include <vector>

namespace usher {

namespace analysis {

/// Dominator tree for one function.
class DominatorTree {
public:
  explicit DominatorTree(const CFGInfo &CFG);

  /// Immediate dominator of \p BB, or null for the entry / unreachable
  /// blocks.
  ir::BasicBlock *idom(const ir::BasicBlock *BB) const {
    return IDom[BB->getId()];
  }

  /// True if block \p A dominates block \p B (reflexively).
  bool dominates(const ir::BasicBlock *A, const ir::BasicBlock *B) const;

  /// True if instruction \p A dominates instruction \p B: strictly earlier
  /// in the same block, or in a dominating block. An instruction does not
  /// dominate itself.
  bool dominates(const ir::Instruction *A, const ir::Instruction *B) const;

  /// Children of \p BB in the dominator tree.
  const std::vector<ir::BasicBlock *> &children(
      const ir::BasicBlock *BB) const {
    return Children[BB->getId()];
  }

  const CFGInfo &getCFG() const { return CFG; }

private:
  const CFGInfo &CFG;
  std::vector<ir::BasicBlock *> IDom;
  std::vector<std::vector<ir::BasicBlock *>> Children;
  // Pre/post intervals of a dominator-tree DFS, for O(1) dominance tests.
  std::vector<unsigned> DFSIn, DFSOut;
};

/// Dominance frontiers for one function, computed from a DominatorTree.
class DominanceFrontier {
public:
  explicit DominanceFrontier(const DominatorTree &DT);

  const std::vector<ir::BasicBlock *> &frontier(
      const ir::BasicBlock *BB) const {
    return Frontiers[BB->getId()];
  }

private:
  std::vector<std::vector<ir::BasicBlock *>> Frontiers;
};

} // namespace analysis
} // namespace usher

#endif // USHER_ANALYSIS_DOMINATORS_H
