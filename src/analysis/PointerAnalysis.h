//===- analysis/PointerAnalysis.h - Andersen's analysis ---------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An inclusion-based (Andersen-style) pointer analysis over TinyC,
/// matching the configuration the paper uses (Section 4.1):
///  - offset-based field sensitivity, with arrays collapsed to a single
///    field ("arrays are treated as a whole");
///  - 1-callsite-sensitive heap cloning for allocation wrapper functions;
///  - context-insensitive otherwise.
///
/// The unit of may-point-to information is a PtLoc: one field of one
/// abstract memory object. PtLocs are also the address-taken variables
/// (Var_AT) that memory SSA and the VFG version.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_ANALYSIS_POINTERANALYSIS_H
#define USHER_ANALYSIS_POINTERANALYSIS_H

#include "support/BitSet.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace usher {
class Budget;

namespace ir {
class CallInst;
class Function;
class MemObject;
class Module;
class Operand;
class Variable;
} // namespace ir

namespace analysis {

class CallGraph;

/// One field of one abstract object: the granule of points-to sets and of
/// the value-flow analysis for address-taken variables.
struct PtLoc {
  ir::MemObject *Obj = nullptr;
  unsigned Field = 0;
};

/// Which constraint-solving engine runs the inclusion fixpoint.
enum class SolverKind : uint8_t {
  /// The production engine: online lazy cycle detection with union-find
  /// SCC collapsing plus difference (delta) propagation over the sparse
  /// BitSet API. See DESIGN.md "Solver architecture".
  Optimized,
  /// The plain full-set worklist solver, retained as an oracle: it never
  /// collapses and always re-propagates whole points-to sets. Used by the
  /// equivalence property tests and as the bench_solver baseline.
  NaiveReference,
  /// The Steensgaard-family unification engine (near-linear): directional
  /// copies between top-level pointers, unification only under
  /// dereferenced address-taken cells (Kuderski-style oversharing
  /// mitigation). Over-approximates the Andersen solution — the
  /// degradation rung below it. See analysis/UnificationAnalysis.h.
  Unify,
};

/// Stable lower-case engine name ("andersen", "naive", "unify") used by
/// --stats, bench_solver rows, and the --solver= flag spelling.
const char *solverKindName(SolverKind K);

/// Configuration knobs of the pointer analysis.
struct PtaOptions {
  /// Track (object, field) pairs; when false all fields collapse to 0.
  bool FieldSensitive = true;
  /// Clone heap objects of allocation wrappers per call site.
  bool HeapCloning = true;
  /// Fields beyond this index collapse into the last tracked field.
  unsigned MaxFieldsTracked = 64;
  /// Constraint-solving engine; both compute identical points-to sets.
  SolverKind Solver = SolverKind::Optimized;
};

/// Counters maintained by the solver engines. bench_solver emits them
/// into BENCH_solver.json and the Budget accounting regression tests pin
/// the relation between pops, merged-pop skips, and charged steps.
struct SolverStatistics {
  /// Which engine produced this run's numbers. Tier-1 tests assert the
  /// demand-query pipeline lands on Unify — i.e. never paid for a
  /// whole-program Andersen resolution.
  SolverKind Engine = SolverKind::Optimized;
  uint64_t NumConstraints = 0;  ///< Seed/copy/load/store/gep constraints built.
  uint64_t NumCopyEdges = 0;    ///< Distinct copy edges materialized.
  uint64_t NumPropagations = 0; ///< Set merges pushed along copy edges.
  uint64_t NumPops = 0;         ///< Worklist pops, including stale ones.
  /// Pops of nodes that were merged into an SCC representative after
  /// being enqueued; skipped without charging the Budget (the
  /// representative's own pop accounts for the whole component).
  uint64_t NumSkippedMergedPops = 0;
  uint64_t NumCollapses = 0;      ///< Cycle-collapse events.
  uint64_t NumCollapsedNodes = 0; ///< Nodes merged into representatives.
  /// Address-taken cells merged by the unification engine's dereference
  /// rule (always 0 for the Andersen engines).
  uint64_t NumUnifiedCells = 0;
  uint64_t NumBudgetSteps = 0;    ///< Budget steps the solver charged.
  /// Wall time of the constraint *solve* (fixpoint plus harvest), in
  /// milliseconds. Excludes location numbering and constraint building,
  /// which are engine-independent — this is the quantity the degradation
  /// ladder's engine choice actually changes, and what bench_solver's
  /// speedup columns compare.
  double SolveMs = 0;
};

/// Andersen-style whole-program pointer analysis.
class PointerAnalysis {
public:
  /// Builds constraints for \p M and solves them. Heap cloning may add
  /// clone objects to \p M. \p CG must outlive this analysis. When \p B is
  /// armed (BudgetPhase::PointerAnalysis), the solver checks it at
  /// worklist-pop granularity and stops early on exhaustion; the partial
  /// points-to sets are then an *under*-approximation and must not be
  /// used — callers check exhausted() and degrade instead.
  PointerAnalysis(ir::Module &M, const CallGraph &CG,
                  PtaOptions Opts = PtaOptions(), Budget *B = nullptr);

  const PtaOptions &options() const { return Opts; }

  /// True if the solver stopped on budget exhaustion; the analysis result
  /// is unusable and the caller must fall back (field-insensitive retry,
  /// then the MSan full plan).
  bool exhausted() const { return Exhausted; }

  //===--------------------------------------------------------------------===//
  // Location numbering
  //===--------------------------------------------------------------------===//

  /// Number of PtLocs (address-taken variables) in the program.
  unsigned numLocations() const {
    return static_cast<unsigned>(Locations.size());
  }

  /// The PtLoc with dense id \p LocId.
  const PtLoc &location(unsigned LocId) const { return Locations[LocId]; }

  /// Dense id of field \p Field of \p Obj (after collapsing).
  unsigned locId(const ir::MemObject *Obj, unsigned Field) const;

  /// All loc ids belonging to \p Obj.
  std::vector<unsigned> locsOfObject(const ir::MemObject *Obj) const;

  /// True if this loc stands for more than one concrete cell (array
  /// element or collapsed overflow field); such locs must never be
  /// strongly updated.
  bool isCollapsedLoc(unsigned LocId) const { return Collapsed[LocId]; }

  //===--------------------------------------------------------------------===//
  // Points-to queries
  //===--------------------------------------------------------------------===//

  /// May-point-to set of a top-level variable, as sorted loc ids.
  const std::vector<uint32_t> &pointsTo(const ir::Variable *V) const;

  /// May-point-to set of any operand (globals resolve to their base loc).
  std::vector<uint32_t> pointsTo(const ir::Operand &Op) const;

  //===--------------------------------------------------------------------===//
  // Allocation wrappers and heap cloning
  //===--------------------------------------------------------------------===//

  /// True if \p F is an allocation wrapper: every return value traces
  /// (through copies only) to heap allocations that do not otherwise
  /// escape or get accessed inside \p F.
  bool isAllocWrapper(const ir::Function *F) const {
    return Wrappers.count(F) != 0;
  }

  /// Clone objects allocated (conceptually) at call site \p Call; empty
  /// unless the callee is an allocation wrapper and cloning is enabled.
  const std::vector<ir::MemObject *> &clonesAt(const ir::CallInst *Call) const;

  /// The heap objects of wrapper \p F that are replaced by clones at its
  /// call sites; empty for non-wrappers.
  const std::vector<ir::MemObject *> &
  cloneOrigins(const ir::Function *F) const;

  //===--------------------------------------------------------------------===//
  // Statistics (Table 1)
  //===--------------------------------------------------------------------===//

  /// Number of solver nodes (variables + locations).
  unsigned numNodes() const { return NumNodes; }

  /// Solver engine counters (propagations, collapses, budget charges).
  const SolverStatistics &solverStats() const { return SStats; }

private:
  class Solver;

  void numberLocations();
  void detectWrappers();
  void createClones();

  ir::Module &M;
  const CallGraph &CG;
  PtaOptions Opts;

  std::vector<PtLoc> Locations;
  std::vector<bool> Collapsed;
  // Obj id -> (first loc id, tracked field count).
  std::vector<std::pair<unsigned, unsigned>> ObjLocBase;

  std::unordered_map<const ir::Function *, std::vector<ir::MemObject *>>
      Wrappers;
  std::unordered_map<const ir::CallInst *, std::vector<ir::MemObject *>>
      Clones;

  std::unordered_map<const ir::Variable *, std::vector<uint32_t>> VarPts;
  // The unification harvest interns one vector per distinct class set and
  // points every variable with that class set at the shared copy —
  // materializing per-variable vectors would reintroduce the Θ(vars ×
  // pts-size) cost the class-granular engine exists to avoid.
  std::vector<std::unique_ptr<std::vector<uint32_t>>> SharedPts;
  std::unordered_map<const ir::Variable *, const std::vector<uint32_t> *>
      VarPtsShared;
  unsigned NumNodes = 0;
  bool Exhausted = false;
  SolverStatistics SStats;

  static const std::vector<ir::MemObject *> EmptyObjList;
  static const std::vector<uint32_t> EmptyPts;
};

} // namespace analysis
} // namespace usher

#endif // USHER_ANALYSIS_POINTERANALYSIS_H
