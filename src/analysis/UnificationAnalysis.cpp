//===- analysis/UnificationAnalysis.cpp - Unification solver ---------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/UnificationAnalysis.h"

#include "ir/IR.h"
#include "support/Budget.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <tuple>

using namespace usher;
using namespace usher::analysis;

UnificationSolver::UnificationSolver(const PointerAnalysis &PA,
                                     const ConstraintSystem &C, Budget *B)
    : PA(PA), C(C), B(B) {
  Stats.Engine = SolverKind::Unify;
}

bool UnificationSolver::charge(uint64_t N) {
  Stats.NumBudgetSteps += N;
  if (B && !B->step(N)) {
    Exhausted = true;
    return false;
  }
  return true;
}

void UnificationSolver::push(uint32_t Var) {
  if (!InWorklist.test(Var)) {
    InWorklist.set(Var);
    Worklist.push_back(Var);
  }
}

bool UnificationSolver::insertPts(uint32_t V, uint32_t K) {
  VarPts &P = Pts[V];
  if (P.Bits) {
    if (!P.Bits->set(K - C.NumVars))
      return false;
    P.Ids.push_back(K);
    return true;
  }
  if (std::find(P.Ids.begin(), P.Ids.end(), K) != P.Ids.end())
    return false;
  P.Ids.push_back(K);
  if (P.Ids.size() > SmallPtsLimit) {
    // Promote: from here on membership is O(1) instead of a linear scan.
    P.Bits = std::make_unique<BitSet>(NumLocs);
    for (uint32_t Id : P.Ids)
      P.Bits->set(Id - C.NumVars);
  }
  return true;
}

bool UnificationSolver::unionPtsFrom(uint32_t T,
                                     const std::vector<uint32_t> &Src) {
  bool Changed = false;
  for (uint32_t K : Src) {
    if (insertPts(T, K)) {
      Delta[T].push_back(K);
      Changed = true;
    }
  }
  return Changed;
}

void UnificationSolver::insertClass(uint32_t V, uint32_t K) {
  V = findRep(V);
  assert(V < C.NumVars && "class sets live on top-level variables only");
  assert(K >= C.NumVars && "class ids are location-node ids");
  if (insertPts(V, K)) {
    Delta[V].push_back(K);
    push(V);
  }
}

/// Inserts the directional copy edge rep(Src) -> rep(Dst) unless it is a
/// self-loop or a duplicate, and flushes the source's current class set
/// across it (a brand-new successor has seen none of it yet). The var-var
/// copy graph is static after condensation, so no later compaction is
/// needed.
void UnificationSolver::addCopyEdge(uint32_t Src, uint32_t Dst) {
  uint32_t S = findRep(Src), T = findRep(Dst);
  if (S == T)
    return;
  auto &Targets = CopyTargets[S];
  auto It = std::lower_bound(Targets.begin(), Targets.end(), T);
  if (It != Targets.end() && *It == T)
    return;
  Targets.insert(It, T);
  ++Stats.NumCopyEdges;
  ++Stats.NumPropagations;
  if (unionPtsFrom(T, Pts[S].Ids))
    push(T);
}

void UnificationSolver::addLoadSub(uint32_t K, uint32_t W) {
  K = findRep(K);
  LoadSubs[K].push_back(W);
  if (ClassPointee[K] != ~0u)
    insertClass(W, findRep(ClassPointee[K]));
}

void UnificationSolver::addStoreSub(uint32_t V, uint32_t K) {
  V = findRep(V);
  K = findRep(K);
  // Sorted-insert dedup: generated code repeats identical stores, and a
  // duplicate subscription would re-bind the value's whole class set.
  auto &Subs = StoreSubs[V];
  auto It = std::lower_bound(Subs.begin(), Subs.end(), K);
  if (It != Subs.end() && *It == K)
    return;
  Subs.insert(It, K);
  // Snapshot before iterating: bindPointee can cascade into insertClass on
  // V itself, and an append would invalidate live iterators.
  SnapshotScratch = Pts[V].Ids;
  for (uint32_t Vc : SnapshotScratch)
    if (!bindPointee(K, Vc))
      return;
}

void UnificationSolver::addGepSub(uint32_t K, const GepCst &G) {
  K = findRep(K);
  GepSubs[K].push_back(G);
  seedGepFromMembers(G, Members[K]);
}

/// Field-address constraints stay directional and per-location: unifying
/// here would collapse field precision program-wide. The gep destination
/// receives the class of each member's field address instead.
void UnificationSolver::seedGepFromMembers(const GepCst &G,
                                           const std::vector<uint32_t> &Locs) {
  for (uint32_t LocId : Locs) {
    const PtLoc &L = PA.location(LocId);
    if (G.Dynamic) {
      for (unsigned Loc : PA.locsOfObject(L.Obj))
        insertClass(G.Dst, classOfLoc(Loc));
    } else {
      insertClass(G.Dst, classOfLoc(PA.locId(L.Obj, L.Field + G.Offset)));
    }
  }
}

bool UnificationSolver::bindPointee(uint32_t K, uint32_t Vc) {
  K = findRep(K);
  Vc = findRep(Vc);
  uint32_t P = ClassPointee[K];
  if (P == ~0u) {
    ClassPointee[K] = Vc;
    // Readers subscribed before the class had contents get them now.
    for (size_t I = 0; I != LoadSubs[K].size(); ++I)
      insertClass(LoadSubs[K][I], Vc);
    return true;
  }
  P = findRep(P);
  if (P == Vc)
    return true;
  return mergeClasses(P, Vc);
}

/// Unifies the cell classes of \p A and \p B0. Conflating two cells
/// conflates their contents, so their pointee classes must unify as well —
/// the classic Steensgaard cascade, run iteratively off a pending stack.
/// Union by member count keeps the total member-moving work near-linear.
bool UnificationSolver::mergeClasses(uint32_t A, uint32_t B0) {
  MergePending.clear();
  MergePending.push_back({A, B0});
  while (!MergePending.empty()) {
    auto [XR, YR] = MergePending.back();
    MergePending.pop_back();
    uint32_t X = findRep(XR), Y = findRep(YR);
    if (X == Y)
      continue;
    if (!charge())
      return false;
    ++Stats.NumUnifiedCells;
    if (Members[Y].size() > Members[X].size())
      std::swap(X, Y);
    Parent[Y] = X;
    // Cross-seed: each side's gep subscribers have seen only their own
    // side's members so far.
    for (const GepCst &G : GepSubs[X])
      seedGepFromMembers(G, Members[Y]);
    for (const GepCst &G : GepSubs[Y])
      seedGepFromMembers(G, Members[X]);
    uint32_t PX = ClassPointee[X], PY = ClassPointee[Y];
    if (PY != ~0u) {
      if (PX == ~0u) {
        ClassPointee[X] = PY;
        for (uint32_t W : LoadSubs[X])
          insertClass(W, findRep(PY));
      } else {
        MergePending.push_back({PX, PY});
      }
      ClassPointee[Y] = ~0u;
    } else if (PX != ~0u) {
      for (uint32_t W : LoadSubs[Y])
        insertClass(W, findRep(PX));
    }
    auto Drain = [](auto &From, auto &Into) {
      Into.insert(Into.end(), From.begin(), From.end());
      From.clear();
      From.shrink_to_fit();
    };
    Drain(GepSubs[Y], GepSubs[X]);
    Drain(LoadSubs[Y], LoadSubs[X]);
    Drain(Members[Y], Members[X]);
  }
  return true;
}

/// Offline Tarjan condensation of the static var-to-var copy graph. Exact,
/// not an approximation: every member of a copy cycle provably has the
/// same points-to set in the Andersen solution, so merging preserves
/// precision. Copies with a location-node endpoint are excluded — they
/// become load/store subscriptions on the cell classes instead.
bool UnificationSolver::condenseStaticCopies() {
  const uint32_t N = C.NumVars;
  std::vector<std::vector<uint32_t>> Adj(N);
  for (const ConstraintSystem::CopyCst &Cp : C.Copies)
    if (Cp.Src < N && Cp.Dst < N)
      Adj[Cp.Src].push_back(Cp.Dst);

  std::vector<uint32_t> Index(N, 0), Low(N, 0), SccStack;
  std::vector<uint8_t> OnStack(N, 0);
  struct Frame {
    uint32_t Node;
    uint32_t NextEdge;
  };
  std::vector<Frame> Stack;
  uint32_t NextIndex = 1;
  for (uint32_t Root = 0; Root != N; ++Root) {
    if (Index[Root])
      continue;
    if (!charge())
      return false;
    Index[Root] = Low[Root] = NextIndex++;
    OnStack[Root] = 1;
    SccStack.push_back(Root);
    Stack.push_back({Root, 0});
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      uint32_t U = F.Node;
      if (F.NextEdge < Adj[U].size()) {
        uint32_t V = Adj[U][F.NextEdge++];
        if (!Index[V]) {
          if (!charge())
            return false;
          Index[V] = Low[V] = NextIndex++;
          OnStack[V] = 1;
          SccStack.push_back(V);
          Stack.push_back({V, 0});
        } else if (OnStack[V]) {
          Low[U] = std::min(Low[U], Index[V]);
        }
        continue;
      }
      Stack.pop_back();
      if (!Stack.empty())
        Low[Stack.back().Node] = std::min(Low[Stack.back().Node], Low[U]);
      if (Low[U] == Index[U]) {
        uint32_t Count = 0;
        while (true) {
          uint32_t M = SccStack.back();
          SccStack.pop_back();
          OnStack[M] = 0;
          Parent[M] = U;
          ++Count;
          if (M == U)
            break;
        }
        if (Count > 1) {
          ++Stats.NumCollapses;
          Stats.NumCollapsedNodes += Count - 1;
        }
      }
    }
  }
  return true;
}

void UnificationSolver::run() {
  const uint32_t N = C.NumNodes;
  const uint32_t NumVars = C.NumVars;
  NumLocs = PA.numLocations();
  Parent.resize(N);
  for (uint32_t I = 0; I != N; ++I)
    Parent[I] = I;
  Pts = std::vector<VarPts>(NumVars);
  Delta.assign(NumVars, {});
  CopyTargets.assign(NumVars, {});
  LoadTargets.assign(NumVars, {});
  StoreValues.assign(NumVars, {});
  GepTargets.assign(NumVars, {});
  StoreSubs.assign(NumVars, {});
  ClassPointee.assign(N, ~0u);
  Members.assign(N, {});
  LoadSubs.assign(N, {});
  GepSubs.assign(N, {});
  InWorklist.resize(NumVars);
  for (unsigned LocId = 0; LocId != NumLocs; ++LocId)
    Members[C.locNode(LocId)].push_back(LocId);

  if (!condenseStaticCopies())
    return;

  // Dereference constraints register before any class can reach them, so
  // the drain below observes complete subscription lists. Generated code
  // repeats identical dereferences freely; processing a duplicate costs a
  // full pass over the pointer's class set, so dedup up front.
  for (const ConstraintSystem::LoadCst &L : C.Loads)
    LoadTargets[findRep(L.Ptr)].push_back(L.Dst);
  for (const ConstraintSystem::StoreCst &S : C.Stores)
    StoreValues[findRep(S.Ptr)].push_back(S.Val);
  for (const GepCst &G : C.Geps)
    GepTargets[findRep(G.Ptr)].push_back(G);
  for (uint32_t V = 0; V != NumVars; ++V) {
    auto &LT = LoadTargets[V];
    std::sort(LT.begin(), LT.end());
    LT.erase(std::unique(LT.begin(), LT.end()), LT.end());
    auto VKey = [](const ValueRef &A) {
      return (static_cast<uint64_t>(A.IsLoc) << 32) | A.Id;
    };
    auto &SV = StoreValues[V];
    std::sort(SV.begin(), SV.end(),
              [&](const ValueRef &A, const ValueRef &B) {
                return VKey(A) < VKey(B);
              });
    SV.erase(std::unique(SV.begin(), SV.end(),
                         [&](const ValueRef &A, const ValueRef &B) {
                           return VKey(A) == VKey(B);
                         }),
             SV.end());
    auto GKey = [](const GepCst &G) {
      return std::tuple(G.Dst, G.Offset, G.Dynamic);
    };
    auto &GT = GepTargets[V];
    std::sort(GT.begin(), GT.end(), [&](const GepCst &A, const GepCst &B) {
      return GKey(A) < GKey(B);
    });
    GT.erase(std::unique(GT.begin(), GT.end(),
                         [&](const GepCst &A, const GepCst &B) {
                           return GKey(A) == GKey(B);
                         }),
             GT.end());
  }

  for (const ConstraintSystem::SeedCst &S : C.Seeds) {
    if (S.Node < NumVars)
      insertClass(S.Node, classOfLoc(S.Loc));
    else if (!bindPointee(findRep(S.Node), classOfLoc(S.Loc)))
      return;
  }
  for (const ConstraintSystem::CopyCst &Cp : C.Copies) {
    const bool SrcVar = Cp.Src < NumVars, DstVar = Cp.Dst < NumVars;
    if (SrcVar && DstVar)
      addCopyEdge(Cp.Src, Cp.Dst);
    else if (!SrcVar && DstVar)
      addLoadSub(Cp.Src, Cp.Dst); // load through a literal location
    else if (SrcVar && !DstVar)
      addStoreSub(Cp.Src, Cp.Dst); // store through a literal location
    else if (!mergeClasses(Cp.Src, Cp.Dst)) // cell-to-cell flow: conflate
      return;
    if (Exhausted)
      return;
  }

  // The drain moves class ids, never member locations: a pop hands each
  // subscriber O(|delta classes|) work regardless of how many locations
  // those classes have absorbed. Raw delta bits may name classes that
  // have since merged; canonicalizing at pop time dedupes them.
  std::vector<uint32_t> D, CD;
  while (!Worklist.empty()) {
    uint32_t V = Worklist.back();
    Worklist.pop_back();
    InWorklist.clear(V);
    ++Stats.NumPops;
    if (!charge())
      return;

    D.clear();
    std::swap(D, Delta[V]);
    if (D.empty())
      continue;
    // Delta entries are unique by construction (insertPts admits each id
    // once per variable), so canonicalization is only needed to fold ids
    // whose classes have since merged. Until the first merge every id is
    // its own representative — the common case on deref-free programs —
    // and the delta can be consumed as-is.
    const std::vector<uint32_t> *CDP = &D;
    if (Stats.NumUnifiedCells != 0) {
      CD.clear();
      for (uint32_t Raw : D)
        CD.push_back(findRep(Raw));
      std::sort(CD.begin(), CD.end());
      CD.erase(std::unique(CD.begin(), CD.end()), CD.end());
      CDP = &CD;
    }

    if (!LoadTargets[V].empty() || !StoreValues[V].empty() ||
        !GepTargets[V].empty()) {
      for (uint32_t K : *CDP) {
        for (uint32_t W : LoadTargets[V])
          addLoadSub(K, W);
        for (const ValueRef &Val : StoreValues[V]) {
          if (Val.IsLoc) {
            if (!bindPointee(K, classOfLoc(Val.Id)))
              return;
          } else {
            addStoreSub(Val.Id, K);
          }
        }
        if (Exhausted)
          return;
        for (const GepCst &G : GepTargets[V])
          addGepSub(K, G);
      }
    }
    // Index loop: a store of V through itself can append to StoreSubs[V]
    // mid-drain; fresh subscriptions already bound V's full current set.
    for (size_t I = 0; I != StoreSubs[V].size(); ++I)
      for (uint32_t K : *CDP)
        if (!bindPointee(StoreSubs[V][I], K))
          return;

    for (uint32_t T : CopyTargets[V]) {
      ++Stats.NumPropagations;
      if (unionPtsFrom(T, *CDP))
        push(T);
    }
  }

  // Canonicalize once at the fixpoint: map every representative's id list
  // through the final union-find and sort it, so the per-variable harvest
  // (classesOf) degenerates to a copy. Done here rather than lazily
  // because condensed variables share representatives — a lazy sort would
  // redo the same list once per member variable.
  for (uint32_t V = 0; V != NumVars; ++V) {
    if (findRep(V) != V)
      continue;
    auto &Ids = Pts[V].Ids;
    for (uint32_t &Id : Ids)
      Id = findRep(Id);
    std::sort(Ids.begin(), Ids.end());
    Ids.erase(std::unique(Ids.begin(), Ids.end()), Ids.end());
  }
}

std::vector<uint32_t> UnificationSolver::classesOf(uint32_t Node) const {
  std::vector<uint32_t> Out;
  if (Node < C.NumVars) {
    uint32_t R = findRepConst(Node);
    for (uint32_t K : Pts[R].Ids)
      Out.push_back(findRepConst(K));
  } else {
    uint32_t K = findRepConst(Node);
    if (ClassPointee[K] != ~0u)
      Out.push_back(findRepConst(ClassPointee[K]));
  }
  // With no merges (the common case off the deref paths) the id walk is
  // already sorted; a linear dedup still suffices either way.
  if (!std::is_sorted(Out.begin(), Out.end()))
    std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<uint32_t>
UnificationSolver::locsOfClasses(const std::vector<uint32_t> &Classes) const {
  std::vector<uint32_t> Out;
  for (uint32_t K : Classes)
    Out.insert(Out.end(), Members[K].begin(), Members[K].end());
  if (!std::is_sorted(Out.begin(), Out.end()))
    std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<uint32_t> UnificationSolver::pointsToOf(uint32_t Node) const {
  return locsOfClasses(classesOf(Node));
}
