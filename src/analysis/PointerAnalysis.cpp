//===- analysis/PointerAnalysis.cpp - Andersen's analysis -----------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/PointerAnalysis.h"

#include "analysis/CallGraph.h"
#include "ir/IR.h"
#include "support/Budget.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace usher;
using namespace usher::analysis;
using namespace usher::ir;

const std::vector<MemObject *> PointerAnalysis::EmptyObjList;
const std::vector<uint32_t> PointerAnalysis::EmptyPts;

//===----------------------------------------------------------------------===//
// Location numbering
//===----------------------------------------------------------------------===//

void PointerAnalysis::numberLocations() {
  ObjLocBase.clear();
  Locations.clear();
  Collapsed.clear();
  for (const auto &Obj : M.objects()) {
    unsigned Tracked = 1;
    if (Opts.FieldSensitive && !Obj->isArray())
      Tracked = std::min(Obj->getNumFields(), Opts.MaxFieldsTracked);
    assert(Obj->getId() == ObjLocBase.size() && "object ids not dense");
    ObjLocBase.push_back({static_cast<unsigned>(Locations.size()), Tracked});
    for (unsigned F = 0; F != Tracked; ++F) {
      Locations.push_back({Obj.get(), F});
      // The last tracked field is collapsed if it stands in for overflow
      // fields; array locations always stand for all elements.
      bool IsOverflow = (F + 1 == Tracked) && (Obj->getNumFields() > Tracked);
      Collapsed.push_back(Obj->isArray() || !Opts.FieldSensitive
                              ? Obj->getNumFields() > 1
                              : IsOverflow);
    }
  }
}

unsigned PointerAnalysis::locId(const MemObject *Obj, unsigned Field) const {
  auto [Base, Tracked] = ObjLocBase[Obj->getId()];
  unsigned F = Field < Tracked ? Field : Tracked - 1;
  return Base + F;
}

std::vector<unsigned> PointerAnalysis::locsOfObject(const MemObject *Obj) const {
  auto [Base, Tracked] = ObjLocBase[Obj->getId()];
  std::vector<unsigned> Result(Tracked);
  for (unsigned F = 0; F != Tracked; ++F)
    Result[F] = Base + F;
  return Result;
}

//===----------------------------------------------------------------------===//
// Allocation wrapper detection (for 1-callsite heap cloning)
//===----------------------------------------------------------------------===//

namespace {

/// Decides whether a function is an allocation wrapper in the sense of
/// Section 4.1: its returned pointers are exactly its own fresh heap
/// allocations (possibly mixed with integer constants on error paths), and
/// those allocations neither escape nor get accessed inside the function.
/// Under these conditions it is *precise and sound* to replace the callee's
/// return-value flow by a per-call-site clone object.
class WrapperChecker {
public:
  explicit WrapperChecker(const Function &F) : F(F) {}

  /// Returns the heap objects to clone, or an empty vector if \p F is not
  /// a wrapper.
  std::vector<MemObject *> run();

private:
  const Function &F;
};

} // namespace

std::vector<MemObject *> WrapperChecker::run() {
  std::vector<MemObject *> HeapObjs;
  // MayHoldAlloc: forward closure of heap-alloc defs through copies.
  std::unordered_set<const Variable *> MayHoldAlloc;
  bool Changed = true;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (const auto *A = dyn_cast<AllocInst>(I.get()))
        if (A->getObject()->isHeap()) {
          HeapObjs.push_back(A->getObject());
          MayHoldAlloc.insert(A->getDef());
        }
  if (HeapObjs.empty())
    return {};
  while (Changed) {
    Changed = false;
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        if (const auto *C = dyn_cast<CopyInst>(I.get()))
          if (C->getSrc().isVar() && MayHoldAlloc.count(C->getSrc().getVar()))
            Changed |= MayHoldAlloc.insert(C->getDef()).second;
  }

  // Escape/access check: a variable that may hold a fresh allocation may
  // only be copied, returned, or branched on.
  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      std::vector<Variable *> Used;
      I->collectUsedVars(Used);
      bool UsesAlloc = false;
      for (const Variable *V : Used)
        UsesAlloc |= MayHoldAlloc.count(V) != 0;
      if (!UsesAlloc)
        continue;
      switch (I->getKind()) {
      case Instruction::IKind::Copy:
      case Instruction::IKind::Ret:
      case Instruction::IKind::CondBr:
        break;
      default:
        return {};
      }
    }
  }

  // AllocPure: greatest set of variables whose every def is a heap alloc,
  // a constant copy, or a copy of an AllocPure variable. Parameters are
  // defined at entry and thus never AllocPure.
  std::unordered_set<const Variable *> AllocPure;
  for (const auto &V : F.variables())
    if (!V->isParam())
      AllocPure.insert(V.get());
  Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BB : F.blocks()) {
      for (const auto &I : BB->instructions()) {
        const Variable *Def = I->getDef();
        if (!Def || !AllocPure.count(Def))
          continue;
        bool Ok = false;
        if (const auto *A = dyn_cast<AllocInst>(I.get()))
          Ok = A->getObject()->isHeap();
        else if (const auto *C = dyn_cast<CopyInst>(I.get()))
          Ok = C->getSrc().isConst() ||
               (C->getSrc().isVar() && AllocPure.count(C->getSrc().getVar()));
        if (!Ok) {
          AllocPure.erase(Def);
          Changed = true;
        }
      }
    }
  }

  // Every returned variable must be AllocPure, and at least one must
  // actually carry an allocation.
  bool ReturnsAlloc = false;
  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      const auto *R = dyn_cast<RetInst>(I.get());
      if (!R || !R->getValue().isVar())
        continue;
      const Variable *V = R->getValue().getVar();
      if (!AllocPure.count(V))
        return {};
      ReturnsAlloc |= MayHoldAlloc.count(V) != 0;
    }
  }
  if (!ReturnsAlloc)
    return {};
  return HeapObjs;
}

void PointerAnalysis::detectWrappers() {
  for (const auto &F : M.functions()) {
    if (F->getName() == "main" || CG.isRecursive(F.get()))
      continue;
    std::vector<MemObject *> Origins = WrapperChecker(*F).run();
    if (!Origins.empty())
      Wrappers[F.get()] = std::move(Origins);
  }
}

void PointerAnalysis::createClones() {
  for (auto &[F, Origins] : Wrappers) {
    unsigned SiteIdx = 0;
    for (CallInst *Call : CG.callersOf(F)) {
      std::vector<MemObject *> SiteClones;
      for (MemObject *Origin : Origins) {
        MemObject *Clone = M.createObject(
            Origin->getName() + "#" + std::to_string(SiteIdx), Region::Heap,
            Origin->getNumFields(), Origin->isInitialized(),
            Origin->isArray());
        Clone->setCloneOrigin(Origin);
        Clone->setAllocSite(Call);
        SiteClones.push_back(Clone);
      }
      Clones[Call] = std::move(SiteClones);
      ++SiteIdx;
    }
  }
}

const std::vector<MemObject *> &
PointerAnalysis::clonesAt(const CallInst *Call) const {
  auto It = Clones.find(Call);
  return It == Clones.end() ? EmptyObjList : It->second;
}

const std::vector<MemObject *> &
PointerAnalysis::cloneOrigins(const Function *F) const {
  auto It = Wrappers.find(F);
  return It == Wrappers.end() ? EmptyObjList : It->second;
}

//===----------------------------------------------------------------------===//
// Constraint solver
//===----------------------------------------------------------------------===//

class PointerAnalysis::Solver {
public:
  Solver(PointerAnalysis &PA, Budget *B) : PA(PA), M(PA.M), B(B) {}

  void run();

private:
  /// Either a solver node or a literal location (a global's address or a
  /// wrapper clone).
  struct ValueRef {
    bool IsLoc;
    uint32_t Id;
  };

  uint32_t varNode(const Variable *V) const {
    auto It = VarIds.find(V);
    assert(It != VarIds.end() && "unnumbered variable");
    return It->second;
  }
  uint32_t locNode(uint32_t LocId) const { return NumVars + LocId; }

  /// Translates an operand into a solver value; returns false for
  /// constants (which carry no points-to information).
  bool valueOf(const Operand &Op, ValueRef &Out) const {
    if (Op.isVar()) {
      Out = {false, varNode(Op.getVar())};
      return true;
    }
    if (Op.isGlobal()) {
      Out = {true, PA.locId(Op.getGlobal(), 0)};
      return true;
    }
    return false;
  }

  void seed(uint32_t Node, uint32_t LocId) {
    if (Pts[Node].set(LocId))
      push(Node);
  }

  void addCopy(uint32_t Src, uint32_t Dst) {
    uint64_t Key = (static_cast<uint64_t>(Src) << 32) | Dst;
    if (!EdgeSet.insert(Key).second)
      return;
    CopyTargets[Src].push_back(Dst);
    if (Pts[Dst].unionWith(Pts[Src]))
      push(Dst);
  }

  /// Connects a value (node or literal loc) into \p Dst.
  void flowInto(const ValueRef &V, uint32_t Dst) {
    if (V.IsLoc)
      seed(Dst, V.Id);
    else
      addCopy(V.Id, Dst);
  }

  void push(uint32_t Node) {
    if (!InWorklist.test(Node)) {
      InWorklist.set(Node);
      Worklist.push_back(Node);
    }
  }

  void buildConstraints();
  void addCallConstraints(const CallInst *Call);
  void solve();

  PointerAnalysis &PA;
  Module &M;
  Budget *B;

  std::unordered_map<const Variable *, uint32_t> VarIds;
  uint32_t NumVars = 0;
  uint32_t NumNodes = 0;

  std::vector<BitSet> Pts;
  std::vector<std::vector<uint32_t>> CopyTargets;
  std::unordered_set<uint64_t> EdgeSet;
  // x := *n (on pointer node n): propagate pts(loc) into each target.
  std::vector<std::vector<uint32_t>> LoadTargets;
  // *n := v (on pointer node n): flow each value into pts-locations of n.
  std::vector<std::vector<ValueRef>> StoreValues;
  // x := gep n, off: derived field inclusion.
  struct GepTarget {
    uint32_t Dst;
    unsigned Offset;
    bool Dynamic;
  };
  std::vector<std::vector<GepTarget>> GepTargets;
  // Return values per function (for non-wrapper calls).
  std::unordered_map<const Function *, std::vector<ValueRef>> RetValues;

  std::vector<uint32_t> Worklist;
  BitSet InWorklist;
};

void PointerAnalysis::Solver::buildConstraints() {
  for (const auto &F : M.functions())
    for (const auto &V : F->variables())
      VarIds[V.get()] = NumVars++;
  NumNodes = NumVars + PA.numLocations();

  Pts.assign(NumNodes, BitSet(PA.numLocations()));
  CopyTargets.resize(NumNodes);
  LoadTargets.resize(NumNodes);
  StoreValues.resize(NumNodes);
  GepTargets.resize(NumNodes);
  InWorklist.resize(NumNodes);

  // Collect return values first (calls may precede callee bodies).
  for (const auto &F : M.functions()) {
    auto &Rets = RetValues[F.get()];
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        if (const auto *R = dyn_cast<RetInst>(I.get())) {
          ValueRef V;
          if (valueOf(R->getValue(), V))
            Rets.push_back(V);
        }
  }

  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        switch (I->getKind()) {
        case Instruction::IKind::Copy: {
          const auto *C = cast<CopyInst>(I.get());
          ValueRef V;
          if (valueOf(C->getSrc(), V))
            flowInto(V, varNode(C->getDef()));
          break;
        }
        case Instruction::IKind::Alloc: {
          const auto *A = cast<AllocInst>(I.get());
          seed(varNode(A->getDef()), PA.locId(A->getObject(), 0));
          break;
        }
        case Instruction::IKind::FieldAddr: {
          const auto *FA = cast<FieldAddrInst>(I.get());
          ValueRef V;
          if (!valueOf(FA->getBase(), V))
            break;
          // A variable index may reach any field of the pointee (the
          // dynamic-GEP case; arrays collapse to one location anyway).
          bool Dynamic = !FA->hasConstIndex();
          unsigned Offset = Dynamic ? 0 : FA->getFieldIdx();
          if (V.IsLoc) {
            // gep of a global: fold the field arithmetic directly.
            const PtLoc &L = PA.location(V.Id);
            if (Dynamic) {
              for (unsigned Loc : PA.locsOfObject(L.Obj))
                seed(varNode(FA->getDef()), Loc);
            } else {
              seed(varNode(FA->getDef()),
                   PA.locId(L.Obj, L.Field + Offset));
            }
          } else {
            GepTargets[V.Id].push_back(
                {varNode(FA->getDef()), Offset, Dynamic});
            push(V.Id);
          }
          break;
        }
        case Instruction::IKind::Load: {
          const auto *L = cast<LoadInst>(I.get());
          ValueRef P;
          if (!valueOf(L->getPtr(), P))
            break;
          if (P.IsLoc) {
            addCopy(locNode(P.Id), varNode(L->getDef()));
          } else {
            LoadTargets[P.Id].push_back(varNode(L->getDef()));
            push(P.Id);
          }
          break;
        }
        case Instruction::IKind::Store: {
          const auto *S = cast<StoreInst>(I.get());
          ValueRef P, V;
          bool HasValue = valueOf(S->getValue(), V);
          if (!HasValue)
            break; // Storing a constant: no points-to flow.
          if (!valueOf(S->getPtr(), P))
            break;
          if (P.IsLoc) {
            flowInto(V, locNode(P.Id));
          } else {
            StoreValues[P.Id].push_back(V);
            push(P.Id);
          }
          break;
        }
        case Instruction::IKind::Call:
          addCallConstraints(cast<CallInst>(I.get()));
          break;
        case Instruction::IKind::BinOp:
        case Instruction::IKind::CondBr:
        case Instruction::IKind::Goto:
        case Instruction::IKind::Ret:
          // Binary operations yield integers in TinyC (pointer arithmetic
          // must use gep); branches and returns add no constraints here.
          break;
        }
      }
    }
  }
}

void PointerAnalysis::Solver::addCallConstraints(const CallInst *Call) {
  const Function *Callee = Call->getCallee();
  const auto &Params = Callee->params();
  for (size_t Idx = 0; Idx != Params.size(); ++Idx) {
    ValueRef V;
    if (valueOf(Call->getArgs()[Idx], V))
      flowInto(V, varNode(Params[Idx]));
  }

  const std::vector<MemObject *> &SiteClones = PA.clonesAt(Call);
  if (!SiteClones.empty()) {
    // Wrapper call: the result points to this site's fresh clones; the
    // callee's return flow is intentionally not connected (the wrapper
    // check guarantees it only returns its own fresh allocations).
    if (Call->getDef())
      for (MemObject *Clone : SiteClones)
        seed(varNode(Call->getDef()), PA.locId(Clone, 0));
    return;
  }

  if (Call->getDef()) {
    uint32_t Dst = varNode(Call->getDef());
    for (const ValueRef &V : RetValues[Callee])
      flowInto(V, Dst);
  }
}

void PointerAnalysis::Solver::solve() {
  while (!Worklist.empty()) {
    // One budget step per worklist pop: the inclusion fixpoint is where
    // pathological programs blow up (DFI-style wall-clock cliffs). On
    // exhaustion the partial solution under-approximates, so the whole
    // analysis is flagged unusable rather than silently wrong.
    if (B && !B->step()) {
      PA.Exhausted = true;
      return;
    }
    uint32_t N = Worklist.back();
    Worklist.pop_back();
    InWorklist.clear(N);

    if (!LoadTargets[N].empty() || !StoreValues[N].empty() ||
        !GepTargets[N].empty()) {
      Pts[N].forEach([&](size_t LocIdx) {
        uint32_t LocId = static_cast<uint32_t>(LocIdx);
        for (uint32_t Dst : LoadTargets[N])
          addCopy(locNode(LocId), Dst);
        for (const ValueRef &V : StoreValues[N])
          flowInto(V, locNode(LocId));
        if (!GepTargets[N].empty()) {
          const PtLoc &L = PA.location(LocId);
          for (const GepTarget &G : GepTargets[N]) {
            if (G.Dynamic) {
              for (unsigned Loc : PA.locsOfObject(L.Obj))
                seed(G.Dst, Loc);
            } else {
              seed(G.Dst, PA.locId(L.Obj, L.Field + G.Offset));
            }
          }
        }
      });
    }

    for (uint32_t Dst : CopyTargets[N])
      if (Pts[Dst].unionWith(Pts[N]))
        push(Dst);
  }
}

void PointerAnalysis::Solver::run() {
  // An at-entry check makes injected phase exhaustion deterministic even
  // for programs whose worklist never fills.
  if (B && !B->step()) {
    PA.Exhausted = true;
    return;
  }
  buildConstraints();
  solve();
  if (PA.Exhausted)
    return;
  PA.NumNodes = NumNodes;
  for (const auto &[V, Id] : VarIds)
    PA.VarPts[V] = Pts[Id].toVector();
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

PointerAnalysis::PointerAnalysis(Module &M, const CallGraph &CG,
                                 PtaOptions Opts, Budget *B)
    : M(M), CG(CG), Opts(Opts) {
  if (Opts.HeapCloning) {
    detectWrappers();
    createClones();
  }
  numberLocations();
  Solver(*this, B).run();
}

const std::vector<uint32_t> &
PointerAnalysis::pointsTo(const Variable *V) const {
  auto It = VarPts.find(V);
  return It == VarPts.end() ? EmptyPts : It->second;
}

std::vector<uint32_t> PointerAnalysis::pointsTo(const Operand &Op) const {
  if (Op.isVar())
    return pointsTo(Op.getVar());
  if (Op.isGlobal())
    return {locId(Op.getGlobal(), 0)};
  return {};
}
