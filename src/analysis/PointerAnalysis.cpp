//===- analysis/PointerAnalysis.cpp - Andersen's analysis -----------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/PointerAnalysis.h"

#include "analysis/CallGraph.h"
#include "analysis/UnificationAnalysis.h"
#include "ir/IR.h"
#include "support/Budget.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <unordered_set>

using namespace usher;
using namespace usher::analysis;
using namespace usher::ir;

const std::vector<MemObject *> PointerAnalysis::EmptyObjList;
const std::vector<uint32_t> PointerAnalysis::EmptyPts;

const char *usher::analysis::solverKindName(SolverKind K) {
  switch (K) {
  case SolverKind::Optimized:
    return "andersen";
  case SolverKind::NaiveReference:
    return "naive";
  case SolverKind::Unify:
    return "unify";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Location numbering
//===----------------------------------------------------------------------===//

void PointerAnalysis::numberLocations() {
  ObjLocBase.clear();
  Locations.clear();
  Collapsed.clear();
  for (const auto &Obj : M.objects()) {
    unsigned Tracked = 1;
    if (Opts.FieldSensitive && !Obj->isArray())
      Tracked = std::min(Obj->getNumFields(), Opts.MaxFieldsTracked);
    assert(Obj->getId() == ObjLocBase.size() && "object ids not dense");
    ObjLocBase.push_back({static_cast<unsigned>(Locations.size()), Tracked});
    for (unsigned F = 0; F != Tracked; ++F) {
      Locations.push_back({Obj.get(), F});
      // The last tracked field is collapsed if it stands in for overflow
      // fields; array locations always stand for all elements.
      bool IsOverflow = (F + 1 == Tracked) && (Obj->getNumFields() > Tracked);
      Collapsed.push_back(Obj->isArray() || !Opts.FieldSensitive
                              ? Obj->getNumFields() > 1
                              : IsOverflow);
    }
  }
}

unsigned PointerAnalysis::locId(const MemObject *Obj, unsigned Field) const {
  auto [Base, Tracked] = ObjLocBase[Obj->getId()];
  unsigned F = Field < Tracked ? Field : Tracked - 1;
  return Base + F;
}

std::vector<unsigned> PointerAnalysis::locsOfObject(const MemObject *Obj) const {
  auto [Base, Tracked] = ObjLocBase[Obj->getId()];
  std::vector<unsigned> Result(Tracked);
  for (unsigned F = 0; F != Tracked; ++F)
    Result[F] = Base + F;
  return Result;
}

//===----------------------------------------------------------------------===//
// Allocation wrapper detection (for 1-callsite heap cloning)
//===----------------------------------------------------------------------===//

namespace {

/// Decides whether a function is an allocation wrapper in the sense of
/// Section 4.1: its returned pointers are exactly its own fresh heap
/// allocations (possibly mixed with integer constants on error paths), and
/// those allocations neither escape nor get accessed inside the function.
/// Under these conditions it is *precise and sound* to replace the callee's
/// return-value flow by a per-call-site clone object.
class WrapperChecker {
public:
  explicit WrapperChecker(const Function &F) : F(F) {}

  /// Returns the heap objects to clone, or an empty vector if \p F is not
  /// a wrapper.
  std::vector<MemObject *> run();

private:
  const Function &F;
};

} // namespace

std::vector<MemObject *> WrapperChecker::run() {
  std::vector<MemObject *> HeapObjs;
  // MayHoldAlloc: forward closure of heap-alloc defs through copies.
  std::unordered_set<const Variable *> MayHoldAlloc;
  bool Changed = true;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (const auto *A = dyn_cast<AllocInst>(I.get()))
        if (A->getObject()->isHeap()) {
          HeapObjs.push_back(A->getObject());
          MayHoldAlloc.insert(A->getDef());
        }
  if (HeapObjs.empty())
    return {};
  while (Changed) {
    Changed = false;
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        if (const auto *C = dyn_cast<CopyInst>(I.get()))
          if (C->getSrc().isVar() && MayHoldAlloc.count(C->getSrc().getVar()))
            Changed |= MayHoldAlloc.insert(C->getDef()).second;
  }

  // Escape/access check: a variable that may hold a fresh allocation may
  // only be copied, returned, or branched on.
  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      std::vector<Variable *> Used;
      I->collectUsedVars(Used);
      bool UsesAlloc = false;
      for (const Variable *V : Used)
        UsesAlloc |= MayHoldAlloc.count(V) != 0;
      if (!UsesAlloc)
        continue;
      switch (I->getKind()) {
      case Instruction::IKind::Copy:
      case Instruction::IKind::Ret:
      case Instruction::IKind::CondBr:
        break;
      default:
        return {};
      }
    }
  }

  // AllocPure: greatest set of variables whose every def is a heap alloc,
  // a constant copy, or a copy of an AllocPure variable. Parameters are
  // defined at entry and thus never AllocPure.
  std::unordered_set<const Variable *> AllocPure;
  for (const auto &V : F.variables())
    if (!V->isParam())
      AllocPure.insert(V.get());
  Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BB : F.blocks()) {
      for (const auto &I : BB->instructions()) {
        const Variable *Def = I->getDef();
        if (!Def || !AllocPure.count(Def))
          continue;
        bool Ok = false;
        if (const auto *A = dyn_cast<AllocInst>(I.get()))
          Ok = A->getObject()->isHeap();
        else if (const auto *C = dyn_cast<CopyInst>(I.get()))
          Ok = C->getSrc().isConst() ||
               (C->getSrc().isVar() && AllocPure.count(C->getSrc().getVar()));
        if (!Ok) {
          AllocPure.erase(Def);
          Changed = true;
        }
      }
    }
  }

  // Every returned variable must be AllocPure, and at least one must
  // actually carry an allocation.
  bool ReturnsAlloc = false;
  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      const auto *R = dyn_cast<RetInst>(I.get());
      if (!R || !R->getValue().isVar())
        continue;
      const Variable *V = R->getValue().getVar();
      if (!AllocPure.count(V))
        return {};
      ReturnsAlloc |= MayHoldAlloc.count(V) != 0;
    }
  }
  if (!ReturnsAlloc)
    return {};
  return HeapObjs;
}

void PointerAnalysis::detectWrappers() {
  for (const auto &F : M.functions()) {
    if (F->getName() == "main" || CG.isRecursive(F.get()))
      continue;
    std::vector<MemObject *> Origins = WrapperChecker(*F).run();
    if (!Origins.empty())
      Wrappers[F.get()] = std::move(Origins);
  }
}

void PointerAnalysis::createClones() {
  for (auto &[F, Origins] : Wrappers) {
    unsigned SiteIdx = 0;
    for (CallInst *Call : CG.callersOf(F)) {
      std::vector<MemObject *> SiteClones;
      for (MemObject *Origin : Origins) {
        MemObject *Clone = M.createObject(
            Origin->getName() + "#" + std::to_string(SiteIdx), Region::Heap,
            Origin->getNumFields(), Origin->isInitialized(),
            Origin->isArray());
        Clone->setCloneOrigin(Origin);
        Clone->setAllocSite(Call);
        SiteClones.push_back(Clone);
      }
      Clones[Call] = std::move(SiteClones);
      ++SiteIdx;
    }
  }
}

const std::vector<MemObject *> &
PointerAnalysis::clonesAt(const CallInst *Call) const {
  auto It = Clones.find(Call);
  return It == Clones.end() ? EmptyObjList : It->second;
}

const std::vector<MemObject *> &
PointerAnalysis::cloneOrigins(const Function *F) const {
  auto It = Wrappers.find(F);
  return It == Wrappers.end() ? EmptyObjList : It->second;
}

//===----------------------------------------------------------------------===//
// Constraint solver
//===----------------------------------------------------------------------===//
//
// The solver is a constraint builder shared by two engines:
//
//  - the optimized engine (the default): a union-find representative layer
//    with online lazy cycle detection — copy cycles collapse into a single
//    representative instead of ping-ponging the worklist — plus difference
//    propagation: each representative keeps a Delta set of points-to bits
//    not yet pushed to its successors, and successors receive only the
//    delta through the word-sparse BitSet API;
//  - the naive reference engine: the classic full-set worklist fixpoint,
//    retained as an oracle for the equivalence property tests and as the
//    bench_solver baseline.
//
// Both consume the identical constraint system, so their final points-to
// sets are bit-for-bit equal (tests/SolverEquivalenceTest.cpp).

class PointerAnalysis::Solver {
public:
  Solver(PointerAnalysis &PA, Budget *B) : PA(PA), M(PA.M), B(B) {}

  void run();

private:
  // The flow-insensitive constraint system is recorded during the module
  // walk into the shared ConstraintSystem (UnificationAnalysis.h) so the
  // unification engine consumes bit-identical constraints; the aliases
  // keep the builder and the two Andersen engines reading naturally.
  using ValueRef = ConstraintSystem::ValueRef;
  using SeedCst = ConstraintSystem::SeedCst;
  using CopyCst = ConstraintSystem::CopyCst;
  using LoadCst = ConstraintSystem::LoadCst;
  using StoreCst = ConstraintSystem::StoreCst;
  using GepCst = ConstraintSystem::GepCst;

  uint32_t varNode(const Variable *V) const {
    auto It = VarIds.find(V);
    assert(It != VarIds.end() && "unnumbered variable");
    return It->second;
  }
  uint32_t locNode(uint32_t LocId) const { return NumVars + LocId; }

  /// Translates an operand into a solver value; returns false for
  /// constants (which carry no points-to information).
  bool valueOf(const Operand &Op, ValueRef &Out) const {
    if (Op.isVar()) {
      Out = {false, varNode(Op.getVar())};
      return true;
    }
    if (Op.isGlobal()) {
      Out = {true, PA.locId(Op.getGlobal(), 0)};
      return true;
    }
    return false;
  }

  /// Records that value \p V flows into node \p Dst.
  void flowInto(const ValueRef &V, uint32_t Dst) {
    if (V.IsLoc)
      Seeds.push_back({Dst, V.Id});
    else
      Copies.push_back({V.Id, Dst});
  }

  /// Charges \p N budget steps. Returns false — and flags the analysis
  /// exhausted — once the phase budget runs out.
  bool charge(uint64_t N = 1) {
    PA.SStats.NumBudgetSteps += N;
    if (B && !B->step(N)) {
      PA.Exhausted = true;
      return false;
    }
    return true;
  }

  void push(uint32_t Node) {
    if (!InWorklist.test(Node)) {
      InWorklist.set(Node);
      Worklist.push_back(Node);
    }
  }

  void buildConstraints();
  void addCallConstraints(const CallInst *Call);

  void solveNaive();

  // Optimized-engine helpers.
  uint32_t findRep(uint32_t N) {
    while (Parent[N] != N) {
      Parent[N] = Parent[Parent[N]]; // path halving
      N = Parent[N];
    }
    return N;
  }
  void seedOpt(uint32_t Node, uint32_t LocId);
  void addCopyEdge(uint32_t Src, uint32_t Dst);
  void flowIntoOpt(const ValueRef &V, uint32_t Dst);
  bool lcdAlreadyChecked(uint32_t Src, uint32_t Dst);
  bool detectFrom(uint32_t Start, uint32_t &NextIndex,
                  std::vector<uint32_t> &SccStack,
                  std::vector<std::vector<uint32_t>> &Found);
  void collapseScc(const std::vector<uint32_t> &Members);
  bool drainPendingLcd();
  void solveOptimized();

  PointerAnalysis &PA;
  Module &M;
  Budget *B;

  std::unordered_map<const Variable *, uint32_t> VarIds;
  ConstraintSystem C;
  uint32_t &NumVars = C.NumVars;
  uint32_t &NumNodes = C.NumNodes;
  std::vector<SeedCst> &Seeds = C.Seeds;
  std::vector<CopyCst> &Copies = C.Copies;
  std::vector<LoadCst> &Loads = C.Loads;
  std::vector<StoreCst> &Stores = C.Stores;
  std::vector<GepCst> &Geps = C.Geps;
  // Return values per function (for non-wrapper calls).
  std::unordered_map<const Function *, std::vector<ValueRef>> RetValues;

  // Engine state. In the optimized engine all per-node tables are keyed by
  // the union-find representative; merged members' entries are drained
  // into their representative and freed.
  std::vector<BitSet> Pts;
  // Difference-propagation state: per-representative list of loc ids that
  // entered Pts but have not been pushed to successors yet. Exact and
  // duplicate-free by construction — an id is appended only when
  // Pts[R].set() reports it fresh, and Pts only grows. A vector (rather
  // than a second BitSet) makes taking and clearing a delta O(|delta|)
  // instead of O(universe) per pop.
  std::vector<std::vector<uint32_t>> Delta;
  // Copy successors, kept sorted for binary-search dedup. Entries may go
  // stale when a successor is merged; each pop compacts its list
  // rep-aware (map through findRep, re-sort, unique, drop self-loops).
  std::vector<std::vector<uint32_t>> CopyTargets;
  // x := *n (on pointer node n): propagate pts(loc) into each target.
  std::vector<std::vector<uint32_t>> LoadTargets;
  // *n := v (on pointer node n): flow each value into pts-locations of n.
  std::vector<std::vector<ValueRef>> StoreValues;
  // x := gep n, off: derived field inclusion.
  std::vector<std::vector<GepCst>> GepTargets;

  std::vector<uint32_t> Parent; // union-find forest (optimized engine)
  // Lazy successor-list compaction: a node's list can only contain stale
  // (merged) targets if a collapse happened after its last compaction, so
  // each pop compares its stamp against the global collapse count and
  // skips the re-sort entirely in the common cycle-free steady state.
  std::vector<uint64_t> CompactStamp;
  // Per-source sorted list of destinations already searched for a cycle,
  // so each propagation edge triggers at most one detection sweep.
  std::vector<std::vector<uint32_t>> LcdChecked;
  // Cycle-detection candidates observed while a pop is being processed;
  // drained only between pops so the sweep never mutates lists mid-walk.
  std::vector<std::pair<uint32_t, uint32_t>> PendingLcd;

  // Epoch-stamped Tarjan scratch (allocated once, cleared by bumping).
  std::vector<uint32_t> DfsIndex, DfsLow, DfsEpoch, StackEpoch;
  uint32_t Epoch = 0;

  std::vector<uint32_t> Worklist;
  BitSet InWorklist;
};

void PointerAnalysis::Solver::buildConstraints() {
  for (const auto &F : M.functions())
    for (const auto &V : F->variables())
      VarIds[V.get()] = NumVars++;
  NumNodes = NumVars + PA.numLocations();

  // Collect return values first (calls may precede callee bodies).
  for (const auto &F : M.functions()) {
    auto &Rets = RetValues[F.get()];
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        if (const auto *R = dyn_cast<RetInst>(I.get())) {
          ValueRef V;
          if (valueOf(R->getValue(), V))
            Rets.push_back(V);
        }
  }

  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instructions()) {
        switch (I->getKind()) {
        case Instruction::IKind::Copy: {
          const auto *C = cast<CopyInst>(I.get());
          ValueRef V;
          if (valueOf(C->getSrc(), V))
            flowInto(V, varNode(C->getDef()));
          break;
        }
        case Instruction::IKind::Alloc: {
          const auto *A = cast<AllocInst>(I.get());
          Seeds.push_back(
              {varNode(A->getDef()), PA.locId(A->getObject(), 0)});
          break;
        }
        case Instruction::IKind::FieldAddr: {
          const auto *FA = cast<FieldAddrInst>(I.get());
          ValueRef V;
          if (!valueOf(FA->getBase(), V))
            break;
          // A variable index may reach any field of the pointee (the
          // dynamic-GEP case; arrays collapse to one location anyway).
          bool Dynamic = !FA->hasConstIndex();
          unsigned Offset = Dynamic ? 0 : FA->getFieldIdx();
          if (V.IsLoc) {
            // gep of a global: fold the field arithmetic directly.
            const PtLoc &L = PA.location(V.Id);
            if (Dynamic) {
              for (unsigned Loc : PA.locsOfObject(L.Obj))
                Seeds.push_back({varNode(FA->getDef()), Loc});
            } else {
              Seeds.push_back({varNode(FA->getDef()),
                               PA.locId(L.Obj, L.Field + Offset)});
            }
          } else {
            Geps.push_back({V.Id, varNode(FA->getDef()), Offset, Dynamic});
          }
          break;
        }
        case Instruction::IKind::Load: {
          const auto *L = cast<LoadInst>(I.get());
          ValueRef P;
          if (!valueOf(L->getPtr(), P))
            break;
          if (P.IsLoc)
            Copies.push_back({locNode(P.Id), varNode(L->getDef())});
          else
            Loads.push_back({P.Id, varNode(L->getDef())});
          break;
        }
        case Instruction::IKind::Store: {
          const auto *S = cast<StoreInst>(I.get());
          ValueRef P, V;
          bool HasValue = valueOf(S->getValue(), V);
          if (!HasValue)
            break; // Storing a constant: no points-to flow.
          if (!valueOf(S->getPtr(), P))
            break;
          if (P.IsLoc)
            flowInto(V, locNode(P.Id));
          else
            Stores.push_back({P.Id, V});
          break;
        }
        case Instruction::IKind::Call:
          addCallConstraints(cast<CallInst>(I.get()));
          break;
        case Instruction::IKind::BinOp:
        case Instruction::IKind::CondBr:
        case Instruction::IKind::Goto:
        case Instruction::IKind::Ret:
          // Binary operations yield integers in TinyC (pointer arithmetic
          // must use gep); branches and returns add no constraints here.
          break;
        }
      }
    }
  }
}

void PointerAnalysis::Solver::addCallConstraints(const CallInst *Call) {
  const Function *Callee = Call->getCallee();
  const auto &Params = Callee->params();
  for (size_t Idx = 0; Idx != Params.size(); ++Idx) {
    ValueRef V;
    if (valueOf(Call->getArgs()[Idx], V))
      flowInto(V, varNode(Params[Idx]));
  }

  const std::vector<MemObject *> &SiteClones = PA.clonesAt(Call);
  if (!SiteClones.empty()) {
    // Wrapper call: the result points to this site's fresh clones; the
    // callee's return flow is intentionally not connected (the wrapper
    // check guarantees it only returns its own fresh allocations).
    if (Call->getDef())
      for (MemObject *Clone : SiteClones)
        Seeds.push_back({varNode(Call->getDef()), PA.locId(Clone, 0)});
    return;
  }

  if (Call->getDef()) {
    uint32_t Dst = varNode(Call->getDef());
    for (const ValueRef &V : RetValues[Callee])
      flowInto(V, Dst);
  }
}

//===----------------------------------------------------------------------===//
// Naive reference engine
//===----------------------------------------------------------------------===//

void PointerAnalysis::Solver::solveNaive() {
  const unsigned NumLocs = PA.numLocations();
  Pts.assign(NumNodes, BitSet(NumLocs));
  CopyTargets.assign(NumNodes, {});
  LoadTargets.assign(NumNodes, {});
  StoreValues.assign(NumNodes, {});
  GepTargets.assign(NumNodes, {});
  InWorklist.resize(NumNodes);

  auto Seed = [&](uint32_t Node, uint32_t Loc) {
    if (Pts[Node].set(Loc))
      push(Node);
  };
  // Per-node sorted-vector edge dedup: no packed-key hashing on the hot
  // path, and membership stays exact because node ids never merge here.
  auto AddCopy = [&](uint32_t Src, uint32_t Dst) {
    auto &Targets = CopyTargets[Src];
    auto It = std::lower_bound(Targets.begin(), Targets.end(), Dst);
    if (It != Targets.end() && *It == Dst)
      return;
    Targets.insert(It, Dst);
    ++PA.SStats.NumCopyEdges;
    ++PA.SStats.NumPropagations;
    if (Pts[Dst].unionWith(Pts[Src]))
      push(Dst);
  };
  auto FlowInto = [&](const ValueRef &V, uint32_t Dst) {
    if (V.IsLoc)
      Seed(Dst, V.Id);
    else
      AddCopy(V.Id, Dst);
  };

  for (const SeedCst &S : Seeds)
    Seed(S.Node, S.Loc);
  for (const LoadCst &L : Loads) {
    LoadTargets[L.Ptr].push_back(L.Dst);
    push(L.Ptr);
  }
  for (const StoreCst &S : Stores) {
    StoreValues[S.Ptr].push_back(S.Val);
    push(S.Ptr);
  }
  for (const GepCst &G : Geps) {
    GepTargets[G.Ptr].push_back(G);
    push(G.Ptr);
  }
  for (const CopyCst &C : Copies)
    AddCopy(C.Src, C.Dst);

  while (!Worklist.empty()) {
    // One budget step per worklist pop: the inclusion fixpoint is where
    // pathological programs blow up (DFI-style wall-clock cliffs). On
    // exhaustion the partial solution under-approximates, so the whole
    // analysis is flagged unusable rather than silently wrong.
    ++PA.SStats.NumPops;
    if (!charge())
      return;
    uint32_t N = Worklist.back();
    Worklist.pop_back();
    InWorklist.clear(N);

    if (!LoadTargets[N].empty() || !StoreValues[N].empty() ||
        !GepTargets[N].empty()) {
      Pts[N].forEach([&](size_t LocIdx) {
        uint32_t LocId = static_cast<uint32_t>(LocIdx);
        for (uint32_t Dst : LoadTargets[N])
          AddCopy(locNode(LocId), Dst);
        for (const ValueRef &V : StoreValues[N])
          FlowInto(V, locNode(LocId));
        if (!GepTargets[N].empty()) {
          const PtLoc &L = PA.location(LocId);
          for (const GepCst &G : GepTargets[N]) {
            if (G.Dynamic) {
              for (unsigned Loc : PA.locsOfObject(L.Obj))
                Seed(G.Dst, Loc);
            } else {
              Seed(G.Dst, PA.locId(L.Obj, L.Field + G.Offset));
            }
          }
        }
      });
    }

    for (uint32_t Dst : CopyTargets[N]) {
      ++PA.SStats.NumPropagations;
      if (Pts[Dst].unionWith(Pts[N]))
        push(Dst);
    }
  }
}

//===----------------------------------------------------------------------===//
// Optimized engine: SCC collapsing + difference propagation
//===----------------------------------------------------------------------===//

void PointerAnalysis::Solver::seedOpt(uint32_t Node, uint32_t LocId) {
  uint32_t R = findRep(Node);
  if (Pts[R].set(LocId)) {
    Delta[R].push_back(LocId);
    push(R);
  }
}

/// Inserts the copy edge rep(Src) -> rep(Dst) if it is not a self-loop or
/// a (non-stale) duplicate, and propagates Src's full current set across
/// it — a brand-new successor has seen none of it yet. The word-skipping
/// set-bit iterator keeps this full-set push proportional to the source's
/// population, not the universe.
void PointerAnalysis::Solver::addCopyEdge(uint32_t Src, uint32_t Dst) {
  uint32_t S = findRep(Src), T = findRep(Dst);
  if (S == T)
    return;
  auto &Targets = CopyTargets[S];
  auto It = std::lower_bound(Targets.begin(), Targets.end(), T);
  if (It != Targets.end() && *It == T)
    return;
  Targets.insert(It, T);
  ++PA.SStats.NumCopyEdges;
  ++PA.SStats.NumPropagations;
  bool Changed = false;
  for (size_t LocIdx : Pts[S]) {
    uint32_t LocId = static_cast<uint32_t>(LocIdx);
    if (Pts[T].set(LocId)) {
      Delta[T].push_back(LocId);
      Changed = true;
    }
  }
  if (Changed)
    push(T);
  else if (!Pts[S].empty() && !lcdAlreadyChecked(S, T))
    PendingLcd.push_back({S, T});
}

void PointerAnalysis::Solver::flowIntoOpt(const ValueRef &V, uint32_t Dst) {
  if (V.IsLoc)
    seedOpt(Dst, V.Id);
  else
    addCopyEdge(V.Id, Dst);
}

bool PointerAnalysis::Solver::lcdAlreadyChecked(uint32_t Src, uint32_t Dst) {
  auto &Checked = LcdChecked[Src];
  auto It = std::lower_bound(Checked.begin(), Checked.end(), Dst);
  if (It != Checked.end() && *It == Dst)
    return true;
  Checked.insert(It, Dst);
  return false;
}

/// Merges an SCC into its first member. Invariants restored here:
/// Parent[] routes every member to the representative, the members'
/// constraint lists are drained into the representative's, and the
/// representative's Delta is reset to its full set so both inherited and
/// pre-existing successors observe the merged points-to set at the next
/// pop (re-pushing the full set once per collapse is idempotent and keeps
/// the merge logic trivially sound).
void PointerAnalysis::Solver::collapseScc(
    const std::vector<uint32_t> &Members) {
  uint32_t R = Members.front();
  for (size_t I = 1, E = Members.size(); I != E; ++I) {
    uint32_t M = Members[I];
    Parent[M] = R;
    Pts[R].orWithReturningChanged(Pts[M]);
    auto Drain = [](auto &From, auto &Into) {
      Into.insert(Into.end(), From.begin(), From.end());
      From.clear();
      From.shrink_to_fit();
    };
    Drain(CopyTargets[M], CopyTargets[R]);
    Drain(LoadTargets[M], LoadTargets[R]);
    Drain(StoreValues[M], StoreValues[R]);
    Drain(GepTargets[M], GepTargets[R]);
    LcdChecked[M].clear();
    LcdChecked[M].shrink_to_fit();
    Pts[M] = BitSet();
    Delta[M].clear();
    Delta[M].shrink_to_fit();
  }
  // Compact the merged successor list: map to representatives, restore
  // sorted order for binary-search dedup, drop duplicates and self-loops.
  auto &Targets = CopyTargets[R];
  for (uint32_t &T : Targets)
    T = findRep(T);
  std::sort(Targets.begin(), Targets.end());
  Targets.erase(std::unique(Targets.begin(), Targets.end()), Targets.end());
  Targets.erase(std::remove(Targets.begin(), Targets.end(), R),
                Targets.end());
  LcdChecked[R].clear();
  Delta[R] = Pts[R].toVector();
  if (!Delta[R].empty() || !LoadTargets[R].empty() ||
      !StoreValues[R].empty() || !GepTargets[R].empty())
    push(R);
  ++PA.SStats.NumCollapses;
  PA.SStats.NumCollapsedNodes += Members.size() - 1;
  // The list was just compacted; a later collapse (even in this same
  // sweep) bumps the global count past this stamp and forces a re-pass.
  CompactStamp[R] = PA.SStats.NumCollapses;
}

/// One batched cycle-detection sweep: an iterative Tarjan walk of the
/// representative copy graph rooted at every pending candidate, all roots
/// sharing one epoch so each node is visited at most once per sweep no
/// matter how many candidate edges accumulated. Every multi-member SCC
/// found is recorded into \p Found (collapsing happens after the whole
/// sweep: mutating successor lists mid-DFS would invalidate the frames
/// iterating them). Each visited node charges one budget step (collapsed
/// nodes still account for their work); returns false on exhaustion,
/// leaving only discardable state.
bool PointerAnalysis::Solver::detectFrom(
    uint32_t Start, uint32_t &NextIndex, std::vector<uint32_t> &SccStack,
    std::vector<std::vector<uint32_t>> &Found) {
  struct Frame {
    uint32_t Node;
    size_t NextEdge;
  };
  std::vector<Frame> CallStack;

  auto Visit = [&](uint32_t N) -> bool {
    if (!charge())
      return false;
    DfsEpoch[N] = Epoch;
    DfsIndex[N] = DfsLow[N] = NextIndex++;
    StackEpoch[N] = Epoch;
    SccStack.push_back(N);
    CallStack.push_back({N, 0});
    return true;
  };

  if (!Visit(Start))
    return false;
  while (!CallStack.empty()) {
    Frame &F = CallStack.back();
    uint32_t N = F.Node;
    if (F.NextEdge < CopyTargets[N].size()) {
      uint32_t S = findRep(CopyTargets[N][F.NextEdge++]);
      if (S == N)
        continue;
      if (DfsEpoch[S] != Epoch) {
        if (!Visit(S))
          return false;
      } else if (StackEpoch[S] == Epoch) {
        DfsLow[N] = std::min(DfsLow[N], DfsIndex[S]);
      }
      continue;
    }
    CallStack.pop_back();
    if (!CallStack.empty())
      DfsLow[CallStack.back().Node] =
          std::min(DfsLow[CallStack.back().Node], DfsLow[N]);
    if (DfsLow[N] == DfsIndex[N]) {
      std::vector<uint32_t> Members;
      while (true) {
        uint32_t Mem = SccStack.back();
        SccStack.pop_back();
        StackEpoch[Mem] = 0;
        Members.push_back(Mem);
        if (Mem == N)
          break;
      }
      if (Members.size() > 1)
        Found.push_back(std::move(Members));
    }
  }
  return true;
}

bool PointerAnalysis::Solver::drainPendingLcd() {
  if (PendingLcd.empty())
    return true;
  ++Epoch;
  uint32_t NextIndex = 1;
  std::vector<uint32_t> SccStack;
  std::vector<std::vector<uint32_t>> Found;
  for (auto [Src, Dst] : PendingLcd) {
    // A previous root of this sweep may have walked (or merged) the pair
    // already; the shared epoch keeps the whole drain linear in the graph.
    uint32_t R = findRep(Dst);
    if (findRep(Src) == R || DfsEpoch[R] == Epoch)
      continue;
    if (!detectFrom(R, NextIndex, SccStack, Found)) {
      PendingLcd.clear();
      return false;
    }
  }
  PendingLcd.clear();
  for (const std::vector<uint32_t> &Members : Found)
    collapseScc(Members);
  return true;
}

void PointerAnalysis::Solver::solveOptimized() {
  const unsigned NumLocs = PA.numLocations();
  Pts.assign(NumNodes, BitSet(NumLocs));
  Delta.assign(NumNodes, {});
  CopyTargets.assign(NumNodes, {});
  LoadTargets.assign(NumNodes, {});
  StoreValues.assign(NumNodes, {});
  GepTargets.assign(NumNodes, {});
  LcdChecked.assign(NumNodes, {});
  CompactStamp.assign(NumNodes, 0);
  Parent.resize(NumNodes);
  for (uint32_t N = 0; N != NumNodes; ++N)
    Parent[N] = N;
  DfsIndex.assign(NumNodes, 0);
  DfsLow.assign(NumNodes, 0);
  DfsEpoch.assign(NumNodes, 0);
  StackEpoch.assign(NumNodes, 0);
  InWorklist.resize(NumNodes);

  for (const SeedCst &S : Seeds)
    seedOpt(S.Node, S.Loc);
  for (const LoadCst &L : Loads) {
    LoadTargets[L.Ptr].push_back(L.Dst);
    push(L.Ptr);
  }
  for (const StoreCst &S : Stores) {
    StoreValues[S.Ptr].push_back(S.Val);
    push(S.Ptr);
  }
  for (const GepCst &G : Geps) {
    GepTargets[G.Ptr].push_back(G);
    push(G.Ptr);
  }
  for (const CopyCst &C : Copies)
    addCopyEdge(C.Src, C.Dst);

  // Cycle-detection candidates batch up while the worklist drains; one
  // shared-epoch sweep services all of them at once. Per-pop sweeps would
  // degenerate to O(n^2) on deep acyclic copy chains, while draining only
  // at worklist exhaustion would let long-lived cycles circulate deltas
  // for the whole solve. So a sweep fires when enough candidates
  // accumulate, or — since the per-edge memo means a cycle may only ever
  // queue one candidate — once any candidate has waited NumNodes pops,
  // which amortizes each sweep's O(graph) cost over O(graph) pops.
  const size_t LcdDrainThreshold = std::max<size_t>(16, NumNodes / 256);
  uint64_t PopsSinceDrain = 0;
  std::vector<uint32_t> D; // reused pop-delta buffer (see swap below)
  while (true) {
    if (Worklist.empty()) {
      if (PendingLcd.empty())
        break;
      if (!drainPendingLcd())
        return;
      PopsSinceDrain = 0;
      continue;
    }
    if (!PendingLcd.empty() && (PendingLcd.size() >= LcdDrainThreshold ||
                                PopsSinceDrain >= NumNodes)) {
      if (!drainPendingLcd())
        return;
      PopsSinceDrain = 0;
    }
    ++PopsSinceDrain;
    uint32_t N = Worklist.back();
    Worklist.pop_back();
    InWorklist.clear(N);
    ++PA.SStats.NumPops;
    if (findRep(N) != N) {
      // This node was merged into a representative after being enqueued;
      // its pending work travelled with the merge and is charged exactly
      // once, by the representative's own pop.
      ++PA.SStats.NumSkippedMergedPops;
      continue;
    }
    if (!charge())
      return;

    // Take the delta: only bits the successors have not seen yet travel.
    // Swapping with a reused buffer recycles capacity between pops: the
    // node's next delta inherits an already-sized allocation instead of
    // malloc'ing one per pop.
    D.clear();
    std::swap(D, Delta[N]);

    if (!D.empty() && (!LoadTargets[N].empty() || !StoreValues[N].empty() ||
                       !GepTargets[N].empty())) {
      for (uint32_t LocId : D) {
        for (uint32_t Dst : LoadTargets[N])
          addCopyEdge(locNode(LocId), Dst);
        for (const ValueRef &V : StoreValues[N])
          flowIntoOpt(V, locNode(LocId));
        if (!GepTargets[N].empty()) {
          const PtLoc &L = PA.location(LocId);
          for (const GepCst &G : GepTargets[N]) {
            if (G.Dynamic) {
              for (unsigned Loc : PA.locsOfObject(L.Obj))
                seedOpt(G.Dst, Loc);
            } else {
              seedOpt(G.Dst, PA.locId(L.Obj, L.Field + G.Offset));
            }
          }
        }
      }
    }

    if (!D.empty() && !CopyTargets[N].empty()) {
      // Compact the successor list rep-aware before propagating: merged
      // targets collapse to their representative, duplicates and
      // self-loops introduced by merges disappear, and binary-search
      // dedup in addCopyEdge stays exact. Skipped unless a collapse
      // happened since this node's last compaction.
      auto &Targets = CopyTargets[N];
      if (CompactStamp[N] != PA.SStats.NumCollapses) {
        CompactStamp[N] = PA.SStats.NumCollapses;
        for (uint32_t &T : Targets)
          T = findRep(T);
        std::sort(Targets.begin(), Targets.end());
        Targets.erase(std::unique(Targets.begin(), Targets.end()),
                      Targets.end());
        Targets.erase(std::remove(Targets.begin(), Targets.end(), N),
                      Targets.end());
      }
      for (uint32_t T : Targets) {
        ++PA.SStats.NumPropagations;
        bool Changed = false;
        for (uint32_t LocId : D) {
          if (Pts[T].set(LocId)) {
            Delta[T].push_back(LocId);
            Changed = true;
          }
        }
        if (Changed)
          push(T);
        else if (!lcdAlreadyChecked(N, T))
          PendingLcd.push_back({N, T});
      }
    }
  }
}

void PointerAnalysis::Solver::run() {
  PA.SStats.Engine = PA.Opts.Solver;
  // An at-entry check makes injected phase exhaustion deterministic even
  // for programs whose worklist never fills.
  if (!charge())
    return;
  buildConstraints();
  PA.SStats.NumConstraints = C.size();
  // Times every return path below (exhaustion included) via the guard's
  // destructor; starts after constraint building so the measurement is
  // the engine-dependent work only.
  struct SolveTimer {
    SolverStatistics &S;
    std::chrono::steady_clock::time_point T0 =
        std::chrono::steady_clock::now();
    ~SolveTimer() {
      S.SolveMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
    }
  } Timer{PA.SStats};

  if (PA.Opts.Solver == SolverKind::Unify) {
    // The unification engine runs over the identical constraint system;
    // its counters fold into this analysis' statistics so downstream
    // consumers (--stats, bench_solver, the Budget regression tests) see
    // one coherent account regardless of engine.
    UnificationSolver U(PA, C, B);
    U.run();
    const SolverStatistics &US = U.stats();
    PA.SStats.NumCopyEdges += US.NumCopyEdges;
    PA.SStats.NumPropagations += US.NumPropagations;
    PA.SStats.NumPops += US.NumPops;
    PA.SStats.NumSkippedMergedPops += US.NumSkippedMergedPops;
    PA.SStats.NumCollapses += US.NumCollapses;
    PA.SStats.NumCollapsedNodes += US.NumCollapsedNodes;
    PA.SStats.NumUnifiedCells += US.NumUnifiedCells;
    PA.SStats.NumBudgetSteps += US.NumBudgetSteps;
    if (U.exhausted()) {
      PA.Exhausted = true;
      return;
    }
    PA.NumNodes = NumNodes;
    // Materialize one locations vector per distinct class set and share
    // it among all variables with that set; on unification-friendly
    // shapes (many readers of one hub cell) this turns the harvest from
    // Θ(vars × pts-size) into Θ(vars + classes × members).
    std::map<std::vector<uint32_t>, const std::vector<uint32_t> *> Interned;
    for (const auto &[V, Id] : VarIds) {
      std::vector<uint32_t> Classes = U.classesOf(Id);
      auto It = Interned.find(Classes);
      if (It == Interned.end()) {
        PA.SharedPts.push_back(std::make_unique<std::vector<uint32_t>>(
            U.locsOfClasses(Classes)));
        It = Interned.emplace(std::move(Classes), PA.SharedPts.back().get())
                 .first;
      }
      PA.VarPtsShared[V] = It->second;
    }
    return;
  }

  if (PA.Opts.Solver == SolverKind::NaiveReference)
    solveNaive();
  else
    solveOptimized();
  if (PA.Exhausted)
    return;
  PA.NumNodes = NumNodes;
  for (const auto &[V, Id] : VarIds) {
    uint32_t N = Parent.empty() ? Id : findRep(Id);
    PA.VarPts[V] = Pts[N].toVector();
  }
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

PointerAnalysis::PointerAnalysis(Module &M, const CallGraph &CG,
                                 PtaOptions Opts, Budget *B)
    : M(M), CG(CG), Opts(Opts) {
  if (Opts.HeapCloning) {
    detectWrappers();
    createClones();
  }
  numberLocations();
  Solver(*this, B).run();
}

const std::vector<uint32_t> &
PointerAnalysis::pointsTo(const Variable *V) const {
  auto It = VarPts.find(V);
  if (It != VarPts.end())
    return It->second;
  auto SIt = VarPtsShared.find(V);
  return SIt == VarPtsShared.end() ? EmptyPts : *SIt->second;
}

std::vector<uint32_t> PointerAnalysis::pointsTo(const Operand &Op) const {
  if (Op.isVar())
    return pointsTo(Op.getVar());
  if (Op.isGlobal())
    return {locId(Op.getGlobal(), 0)};
  return {};
}
