//===- analysis/SummaryEngine.h - Bottom-up summary engine ------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bottom-up summary-based replacement for the global definedness
/// fixpoint (ROADMAP open item 2, the "Removal of Redundant Summaries"
/// direction). Instead of one whole-program (node, context) worklist, the
/// engine computes a per-function *value-flow summary* — the k-context
/// transfer from every interface node (formal / callee-return receiver /
/// escaping-memory version) to every escaping exit of the function's VFG
/// segment — bottom-up over the Tarjan-condensed call graph derived from
/// the VFG's interprocedural edges, iterating mutually recursive SCCs to a
/// joint fixpoint. Callers then *apply* the callee summary instead of
/// re-traversing the callee body, and a final per-function expansion
/// (embarrassingly parallel across functions) materializes the same
/// bottom set the global engine would compute.
///
/// Redundant-summary elimination prunes, before use, every summary entry
/// no caller can distinguish: transfers guarded on a call site that never
/// realizes at the entry, guarded transfers subsumed by an unconditional
/// one with the same output, and guards that every realizable caller
/// context satisfies (merged into the unconditional form). Pruned counts
/// surface in SummaryEngineStats and UsherStatistics.
///
/// The engine is *exactly* warning-set equivalent to core::Definedness; it
/// deliberately refuses configurations whose equivalence it cannot
/// guarantee cheaply, returning "delegate to the global engine" instead:
///  - ContextK >= 2 (the parametric transfer algebra is closed only for
///    k <= 1; the paper's configuration is k = 1);
///  - any per-component context-set cardinality reaching the global
///    engine's saturation cap (the global engine would widen to the
///    universal context; the first component to saturate is driven by
///    exactly realizable contexts, so the bail condition is detected
///    deterministically here too).
/// Budget exhaustion completes pessimistically with the same structural
/// rule as the global engine, so degraded results are byte-identical.
///
/// Summaries are cached in a SummaryCache keyed by the function's segment
/// content hash; entries are revalidated against the value hashes of the
/// callee summaries they were built on (difference propagation: an edit
/// invalidates the edited function plus exactly the callers its *summary
/// value* change escapes into). The cache can persist through arbitrary
/// load/save callbacks — usher-serve plugs in its SnapshotStore.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_ANALYSIS_SUMMARYENGINE_H
#define USHER_ANALYSIS_SUMMARYENGINE_H

#include "support/BitSet.h"
#include "support/ThreadPool.h"
#include "vfg/VFG.h"

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace usher {
class Budget;

namespace analysis {

/// Configuration mirroring DefinednessOptions (the engine must answer
/// exactly what the global engine would under the same options).
struct SummaryEngineOptions {
  unsigned ContextK = 1;
  bool AddressTakenAware = true;
};

/// Counters surfaced through UsherStatistics and the serve status JSON.
struct SummaryEngineStats {
  uint64_t NumFunctions = 0;
  uint64_t NumSCCs = 0;          ///< Call-graph SCCs scheduled bottom-up.
  uint64_t SummariesComputed = 0;///< Function summaries built this run.
  uint64_t SummariesReused = 0;  ///< Served from the content-hash cache.
  uint64_t ExpansionsComputed = 0;
  uint64_t ExpansionsReused = 0; ///< Per-function expansions served from memo.
  /// Redundant-summary elimination: transfers dropped because no caller
  /// can realize their guard (or an unconditional twin subsumes them),
  /// callee-entry obligations dropped for the same reason, and guarded
  /// transfers merged into the unconditional form because every
  /// realizable caller context satisfies the guard.
  uint64_t PrunedTransfers = 0;
  uint64_t PrunedCalleeEntries = 0;
  uint64_t MergedContexts = 0;
  uint64_t RealizedBoundaryFacts = 0;
  /// The run answered by delegating to the global engine (k >= 2, or a
  /// component reached the saturation cap).
  bool DelegatedToGlobal = false;
  bool SaturationBail = false;
  /// Budget ran out; the result was completed pessimistically.
  bool Pessimized = false;
};

/// Content-hash-keyed store of function summaries and expansion memos.
/// Thread-safe; shared across runs (and, in usher-serve, across requests
/// and restarts via the persistence callbacks). Entries are *unpruned* —
/// pruning depends on the caller set, which is outside the summary's
/// content hash — and are revalidated against callee value hashes before
/// reuse, which is what makes an edit invalidate exactly the dirty
/// function plus its escaping-delta closure.
class SummaryCache {
public:
  /// Load returns true and fills \p Payload when a record exists for
  /// \p Key. Save persists \p Payload under \p Key. Both may be null
  /// (in-memory-only cache).
  using LoadFn = std::function<bool(uint64_t Key, std::string &Payload)>;
  using SaveFn = std::function<void(uint64_t Key, const std::string &Payload)>;

  void setPersistence(LoadFn Load, SaveFn Save) {
    std::lock_guard<std::mutex> Lock(M);
    this->Load = std::move(Load);
    this->Save = std::move(Save);
  }

  struct Stats {
    uint64_t Hits = 0;          ///< In-memory or persistent hit.
    uint64_t Misses = 0;
    uint64_t StaleDiscarded = 0;///< Record present but failed validation.
  };
  Stats stats() const {
    std::lock_guard<std::mutex> Lock(M);
    return S;
  }
  void clear() {
    std::lock_guard<std::mutex> Lock(M);
    Mem.clear();
    S = Stats();
  }

private:
  friend class SummaryEngine;

  /// Returns the payload cached under \p Key, consulting memory first and
  /// the persistence callback second. An empty optional is a miss. \p
  /// Stale marks a record that was found but rejected by the caller's
  /// validation (counted, then treated as a miss).
  std::optional<std::string> lookup(uint64_t Key);
  void store(uint64_t Key, std::string Payload);
  void noteStale();

  mutable std::mutex M;
  std::unordered_map<uint64_t, std::string> Mem;
  LoadFn Load;
  SaveFn Save;
  Stats S;
};

/// What a run produced. An empty \p Bottom means "delegate": the caller
/// must run the global engine (stats record why).
struct SummaryRunResult {
  std::optional<BitSet> Bottom;
  bool Pessimized = false;
};

/// The bottom-up summary-based definedness engine.
class SummaryEngine {
public:
  /// \p Redirects has the same meaning as for core::Definedness (Opt II
  /// re-resolution on a redirected graph). \p Cache may be null (compute
  /// everything fresh). \p Pool parallelizes independent call-graph SCCs
  /// and the per-function expansion; results are byte-identical for every
  /// pool size. \p B is charged like the global engine's worklist.
  SummaryEngine(const vfg::VFG &G, SummaryEngineOptions Opts,
                const std::unordered_map<uint32_t, std::vector<vfg::Edge>>
                    *Redirects = nullptr,
                SummaryCache *Cache = nullptr, ThreadPool *Pool = nullptr,
                Budget *B = nullptr);
  ~SummaryEngine();

  SummaryRunResult run();

  const SummaryEngineStats &stats() const { return St; }

private:
  struct Impl;
  std::unique_ptr<Impl> I;
  SummaryEngineStats St;
};

} // namespace analysis
} // namespace usher

#endif // USHER_ANALYSIS_SUMMARYENGINE_H
