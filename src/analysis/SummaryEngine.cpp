//===- analysis/SummaryEngine.cpp - Bottom-up summary engine ---------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
//
// Equivalence architecture (k <= 1; k >= 2 delegates to the global engine):
//
// Every Direct VFG edge is intra-function (VFGBuilder only crosses function
// boundaries with Call/Ret edges), so a function's segment is the subgraph
// induced by its nodes, and all interprocedural flow enters through
// *boundary* nodes (nodes with a Call- or Ret-kind dependency) and leaves
// through *exit* nodes (nodes with a Ret-kind user).
//
// For k <= 1 the context transformation along any intra-segment path is one
// of three closed forms over the 1-bounded unmatched-call stack:
//   ID          — context preserved (no push/pop on the path);
//   Always(o)   — any input context maps to the concrete context o
//                 (the path contains a push, which overwrites the window);
//   Match(s, o) — defined only for inputs {[], [s]} (the path starts with a
//                 pop at site s before any push), output o.
// Phase 1 computes, bottom-up over call-graph SCCs (intra-SCC to fixpoint),
// the set of such transfers from each boundary node to each exit (T), the
// callee entries a parametric flow reaches with the composed transfer (CE),
// and the concrete facts seeded inside the function (IX: exits reached from
// internal undefinedness sources; ICE: callee entries reached from them).
// Call edges into *other* functions apply the callee's T instead of
// traversing its body; same-function Call/Ret edges (direct recursion) are
// ordinary local push/pop edges.
//
// Phase 2 prunes summary entries no caller can distinguish (see header).
//
// Phase 3 is a tiny interface-level worklist over *concrete* boundary
// facts: IX exits pop through live Ret users into callers, CE/ICE realize
// callee entries, T maps realized entries to new exits. The k-window can
// forget a pending call, so an exit fact may pop into a *sibling* caller;
// running this globally (it touches boundary nodes only) keeps that exact.
//
// Phase 4 expands each function independently (parallel across functions):
// seeds are the function's realized boundary facts plus its internal
// sources, propagation is local (Direct/self-Call/self-Ret edges) with
// callee T applied at cross-Call edges, and members of a local Direct-SCC
// are marked bottom on first arrival — mirroring the global engine's
// condensed reachability exactly. If any component accumulates
// MaxContextsPerRep distinct contexts, the global engine would have
// saturated it to the universal context; the run then answers "delegate"
// (deterministically: phases run to completion so budget charges do not
// depend on scheduling).
//
//===----------------------------------------------------------------------===//

#include "analysis/SummaryEngine.h"

#include "ir/IR.h"
#include "support/Budget.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <set>
#include <unordered_set>

using namespace usher;
using namespace usher::analysis;
using vfg::Edge;
using vfg::EdgeKind;
using vfg::VFG;

namespace {

/// Must equal the global engine's per-representative context cap
/// (core/Definedness.cpp); reaching it means the global engine would widen
/// and the summary engine must delegate. Checked by SummaryEngineTest.
constexpr size_t MaxContextsPerRep = 64;

constexpr uint64_t FnvSeed = 0xcbf29ce484222325ull;
constexpr uint64_t FnvPrime = 0x100000001b3ull;

uint64_t fnvBytes(const void *Data, size_t Len, uint64_t H = FnvSeed) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Len; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

/// Little-endian append-only byte buffer used for both hashing and the
/// persisted payloads (one canonical serialization serves both).
struct ByteSink {
  std::string Bytes;
  void u8(uint8_t V) { Bytes.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Bytes.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Bytes.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Bytes.append(S);
  }
};

/// Streams the exact byte sequence a ByteSink would produce straight into
/// the running FNV state. The hash-only call sites (segment hashes,
/// component keys, dependency signatures, expansion keys) never need the
/// bytes themselves, and skipping the buffer materialization is most of
/// what a fully-warm run still pays per function.
struct HashSink {
  uint64_t H = FnvSeed;
  void byte(uint8_t V) {
    H ^= V;
    H *= FnvPrime;
  }
  void u8(uint8_t V) { byte(V); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      byte(static_cast<uint8_t>((V >> (8 * I)) & 0xFF));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      byte(static_cast<uint8_t>((V >> (8 * I)) & 0xFF));
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    for (char C : S)
      byte(static_cast<uint8_t>(C));
  }
};

/// Bounds-checked reader over a persisted payload.
struct ByteSource {
  const std::string &Bytes;
  size_t Pos = 0;
  bool Bad = false;
  explicit ByteSource(const std::string &B) : Bytes(B) {}
  uint8_t u8() {
    if (Pos + 1 > Bytes.size()) {
      Bad = true;
      return 0;
    }
    return static_cast<uint8_t>(Bytes[Pos++]);
  }
  uint32_t u32() {
    uint32_t V = 0;
    if (Pos + 4 > Bytes.size()) {
      Bad = true;
      return 0;
    }
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(Bytes[Pos++]))
           << (8 * I);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    if (Pos + 8 > Bytes.size()) {
      Bad = true;
      return 0;
    }
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Bytes[Pos++]))
           << (8 * I);
    return V;
  }
  std::string str() {
    uint32_t Len = u32();
    if (Bad || Pos + Len > Bytes.size()) {
      Bad = true;
      return "";
    }
    std::string S = Bytes.substr(Pos, Len);
    Pos += Len;
    return S;
  }
};

/// A context is stored as a *code*: 0 is the empty stack, S+1 is the
/// 1-deep stack [S]. For k <= 1 the global engine's ContextStack never
/// holds two entries, so codes and stacks are in bijection; all transfer
/// arithmetic below reproduces ContextStack::pushed/popped exactly.
enum TransferKind : uint8_t { TID = 0, TAlways = 1, TMatch = 2 };

struct Transfer {
  uint8_t Kind = TID;
  uint32_t Site = 0;    ///< Guard site (TMatch only).
  uint32_t OutCode = 0; ///< Concrete output context (TAlways/TMatch).
};

uint64_t packT(Transfer T) {
  return (static_cast<uint64_t>(T.Kind) << 49) |
         (static_cast<uint64_t>(T.Site & 0xFFFFFF) << 25) | T.OutCode;
}
Transfer unpackT(uint64_t P) {
  Transfer T;
  T.Kind = static_cast<uint8_t>(P >> 49);
  T.Site = static_cast<uint32_t>((P >> 25) & 0xFFFFFF);
  T.OutCode = static_cast<uint32_t>(P & 0x1FFFFFF);
  return T;
}

/// One callee-entry obligation of a parametric flow: applying \p T to the
/// realized entry context yields the context entering \p Callee.
struct CEFact {
  uint64_t T;
  uint32_t Callee;
  bool operator<(const CEFact &O) const {
    return T != O.T ? T < O.T : Callee < O.Callee;
  }
  bool operator==(const CEFact &O) const {
    return T == O.T && Callee == O.Callee;
  }
};

struct FunctionSummary {
  std::vector<uint32_t> Boundary; ///< Sorted node ids with Call/Ret deps.
  std::vector<uint32_t> Exits;    ///< Sorted node ids with Ret users.
  /// (entry, exit) -> sorted packed transfers.
  std::map<std::pair<uint32_t, uint32_t>, std::vector<uint64_t>> T;
  /// entry -> sorted callee-entry obligations.
  std::map<uint32_t, std::vector<CEFact>> CE;
  /// exit -> sorted concrete context codes from internal sources.
  std::map<uint32_t, std::vector<uint32_t>> IX;
  /// Sorted (callee entry node, context code) from internal sources.
  std::vector<std::pair<uint32_t, uint32_t>> ICE;

  uint64_t SegHash = 0;
  uint64_t ValueHash = 0;
};

bool insertSorted(std::vector<uint64_t> &V, uint64_t X) {
  auto It = std::lower_bound(V.begin(), V.end(), X);
  if (It != V.end() && *It == X)
    return false;
  V.insert(It, X);
  return true;
}
template <typename T> bool insertSortedV(std::vector<T> &V, T X) {
  auto It = std::lower_bound(V.begin(), V.end(), X);
  if (It != V.end() && *It == X)
    return false;
  V.insert(It, X);
  return true;
}

/// Stable (run-independent) reference to a node of a known function.
struct NodeKeyRef {
  uint8_t Sp;
  uint32_t Loc;
  uint32_t Ver;
};

} // namespace

std::optional<std::string> SummaryCache::lookup(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Mem.find(Key);
  if (It != Mem.end()) {
    ++S.Hits;
    return It->second;
  }
  std::string Payload;
  if (Load && Load(Key, Payload)) {
    Mem.emplace(Key, Payload);
    ++S.Hits;
    return Payload;
  }
  ++S.Misses;
  return std::nullopt;
}

void SummaryCache::store(uint64_t Key, std::string Payload) {
  std::lock_guard<std::mutex> Lock(M);
  if (Save)
    Save(Key, Payload);
  Mem[Key] = std::move(Payload);
}

void SummaryCache::noteStale() {
  std::lock_guard<std::mutex> Lock(M);
  ++S.StaleDiscarded;
}

//===----------------------------------------------------------------------===//
// Impl
//===----------------------------------------------------------------------===//

struct SummaryEngine::Impl {
  const VFG &G;
  SummaryEngineOptions Opts;
  const std::unordered_map<uint32_t, std::vector<Edge>> *Redirects;
  SummaryCache *Cache;
  ThreadPool *Pool;
  Budget *B;
  SummaryEngineStats &St;

  unsigned K;
  uint32_t N = 0;

  std::vector<const std::vector<Edge> *> Flows;   ///< Effective users.
  /// Backing store for Flows entries that had to be filtered (redirected
  /// graphs only); without redirects every entry aliases G.users().
  std::vector<std::unique_ptr<std::vector<Edge>>> FilteredFlows;
  std::vector<const std::vector<Edge> *> EffDeps; ///< Effective deps.

  std::vector<const ir::Function *> Fns; ///< Order of first node id.
  std::unordered_map<const ir::Function *, uint32_t> FnIdx;
  std::unordered_map<std::string, const ir::Function *> FnByName;
  static constexpr uint32_t NoFn = ~0u;
  std::vector<uint32_t> NodeFn;               ///< Per node; NoFn for roots.
  std::vector<std::vector<uint32_t>> FnNodes; ///< Sorted ids per function.

  std::vector<uint8_t> IsBoundary, IsExit;
  std::vector<FunctionSummary> Summaries;
  uint64_t CfgHash = 0;

  // Call-graph condensation: per-function component id and ascending
  // bottom-up levels of component indices.
  std::vector<uint32_t> FnComp;
  std::vector<std::vector<uint32_t>> CompFns;
  std::vector<std::vector<uint32_t>> Levels;

  // Phase 3 products: realized boundary facts per function, sorted.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> Realized;

  std::atomic<bool> Bail{false};
  std::atomic<bool> Exhausted{false};
  std::atomic<uint64_t> AComputed{0}, AReused{0}, AExpComputed{0},
      AExpReused{0}, APrunedT{0}, APrunedCE{0}, AMerged{0};

  Impl(const VFG &G, SummaryEngineOptions Opts,
       const std::unordered_map<uint32_t, std::vector<Edge>> *Redirects,
       SummaryCache *Cache, ThreadPool *Pool, Budget *B,
       SummaryEngineStats &St)
      : G(G), Opts(Opts), Redirects(Redirects), Cache(Cache), Pool(Pool),
        B(B), St(St), K(Opts.ContextK) {}

  //===--------------------------------------------------------------------===//
  // Context/transfer arithmetic (mirrors ContextStack under k <= 1)
  //===--------------------------------------------------------------------===//

  uint32_t pushCtx(uint32_t Code, uint32_t Site) const {
    return K == 0 ? Code : Site + 1;
  }
  bool popCtx(uint32_t &Code, uint32_t Site) const {
    if (K == 0)
      return true; // The insensitive engine propagates Ret without popping.
    if (Code == 0)
      return true; // Origin inside the callee (or beyond the window).
    if (Code == Site + 1) {
      Code = 0;
      return true;
    }
    return false;
  }
  Transfer pushT(Transfer T, uint32_t Site) const {
    if (K == 0)
      return T;
    if (T.Kind == TID)
      return Transfer{TAlways, 0, Site + 1};
    T.OutCode = Site + 1;
    return T;
  }
  bool popT(Transfer &T, uint32_t Site) const {
    if (K == 0)
      return true;
    if (T.Kind == TID) {
      T = Transfer{TMatch, Site, 0};
      return true;
    }
    return popCtx(T.OutCode, Site);
  }
  /// Applies callee transfer \p U after \p T (whose output is concrete
  /// unless k == 0, where everything is ID over the empty context).
  bool applyT(Transfer &T, Transfer U) const {
    if (U.Kind == TID)
      return true;
    if (U.Kind == TMatch && T.OutCode != 0 && T.OutCode != U.Site + 1)
      return false;
    T.OutCode = U.OutCode;
    return true;
  }
  bool applyCtx(uint32_t &Code, Transfer U) const {
    if (U.Kind == TID)
      return true;
    if (U.Kind == TMatch && Code != 0 && Code != U.Site + 1)
      return false;
    Code = U.OutCode;
    return true;
  }

  bool charge(uint64_t Steps = 1) {
    if (B && !B->step(Steps)) {
      Exhausted.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Graph preparation
  //===--------------------------------------------------------------------===//

  /// Returns false when the graph has a shape the engine does not model
  /// (defensive; never expected from VFGBuilder).
  bool prepare() {
    N = G.numNodes();
    EffDeps.resize(N);
    for (uint32_t Id = 0; Id != N; ++Id) {
      EffDeps[Id] = &G.deps(Id);
      if (Redirects) {
        auto It = Redirects->find(Id);
        if (It != Redirects->end())
          EffDeps[Id] = &It->second;
      }
    }
    // Effective forward flows, exactly as the global engine filters them.
    // Without redirects the user lists pass through unchanged, so alias
    // the graph's own vectors instead of copying every edge.
    Flows.resize(N);
    for (uint32_t S = 0; S != N; ++S) {
      if (!Redirects) {
        Flows[S] = &G.users(S);
        continue;
      }
      auto Filtered = std::make_unique<std::vector<Edge>>();
      for (const Edge &E : G.users(S)) {
        auto It = Redirects->find(E.Node);
        if (It != Redirects->end()) {
          bool StillDepends = false;
          for (const Edge &D : It->second) {
            if (D.Node == S && D.Kind == E.Kind && D.CallSite == E.CallSite) {
              StillDepends = true;
              break;
            }
          }
          if (!StillDepends)
            continue;
        }
        Filtered->push_back(E);
      }
      Flows[S] = Filtered.get();
      FilteredFlows.push_back(std::move(Filtered));
    }

    NodeFn.assign(N, NoFn);
    for (uint32_t Id = 2; Id < N; ++Id) {
      const ir::Function *Fn = G.node(Id).Fn;
      if (!Fn)
        return false;
      auto It = FnIdx.find(Fn);
      uint32_t F;
      if (It == FnIdx.end()) {
        F = static_cast<uint32_t>(Fns.size());
        FnIdx.emplace(Fn, F);
        Fns.push_back(Fn);
        FnNodes.emplace_back();
        FnByName.emplace(Fn->getName(), Fn);
      } else {
        F = It->second;
      }
      NodeFn[Id] = F;
      FnNodes[F].push_back(Id);
    }
    // A Direct edge crossing functions would break the segment model.
    for (uint32_t S = 0; S != N; ++S)
      for (const Edge &E : (*Flows[S]))
        if (E.Kind == EdgeKind::Direct && S >= 2 && E.Node >= 2 &&
            NodeFn[S] != NodeFn[E.Node])
          return false;

    IsBoundary.assign(N, 0);
    IsExit.assign(N, 0);
    for (uint32_t Id = 2; Id < N; ++Id) {
      for (const Edge &E : *EffDeps[Id])
        if (E.Kind != EdgeKind::Direct) {
          IsBoundary[Id] = 1;
          break;
        }
      for (const Edge &E : (*Flows[Id]))
        if (E.Kind == EdgeKind::Ret) {
          IsExit[Id] = 1;
          break;
        }
    }

    ByteSink Cfg;
    Cfg.str("USHSUM1");
    Cfg.u32(K);
    Cfg.u8(Opts.AddressTakenAware ? 1 : 0);
    CfgHash = fnvBytes(Cfg.Bytes.data(), Cfg.Bytes.size());

    Summaries.assign(Fns.size(), FunctionSummary());
    St.NumFunctions = Fns.size();
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Segment hashing
  //===--------------------------------------------------------------------===//

  NodeKeyRef refOf(uint32_t Id) const {
    const VFG::NodeData &D = G.node(Id);
    return NodeKeyRef{static_cast<uint8_t>(D.Key.Sp), D.Key.Id, D.Version};
  }
  static bool refLess(const NodeKeyRef &A, const NodeKeyRef &B) {
    if (A.Sp != B.Sp)
      return A.Sp < B.Sp;
    if (A.Loc != B.Loc)
      return A.Loc < B.Loc;
    return A.Ver < B.Ver;
  }
  template <typename Sink> void sinkRef(Sink &S, uint32_t Id) const {
    NodeKeyRef R = refOf(Id);
    S.u8(R.Sp);
    S.u32(R.Loc);
    S.u32(R.Ver);
  }

  /// The content hash of one function's VFG segment: everything that
  /// determines the summary *value*. Caller-side identity is deliberately
  /// excluded — cross-function Call dependencies (the caller's actuals)
  /// and the labels of cross Ret users contribute only existence flags, so
  /// editing a caller never invalidates a callee's summary unless it
  /// changes which nodes are interface nodes. Downward references (callee
  /// identities, this function's own call sites) are hashed fully; drift
  /// in a callee's *summary* is caught separately by the value-hash chain.
  uint64_t segmentHash(uint32_t F) const {
    HashSink S{CfgHash};
    S.str("USHSEG1");
    std::vector<uint32_t> Sorted = FnNodes[F];
    std::sort(Sorted.begin(), Sorted.end(),
              [&](uint32_t A, uint32_t Bn) {
                return refLess(refOf(A), refOf(Bn));
              });
    for (uint32_t Id : Sorted) {
      sinkRef(S, Id);
      S.u8(static_cast<uint8_t>(G.origin(Id)));
      uint8_t HasCrossCallDep = 0, HasRetUser = IsExit[Id];
      for (const Edge &E : *EffDeps[Id]) {
        switch (E.Kind) {
        case EdgeKind::Direct:
          S.u8(1);
          if (G.isRoot(E.Node)) {
            S.u8(E.Node == VFG::RootT ? 'T' : 'F');
          } else {
            S.u8('L');
            sinkRef(S, E.Node);
          }
          break;
        case EdgeKind::Call:
          // Self-recursive and root-sourced call edges are this segment's
          // own structure; caller-side actuals are not.
          if (G.isRoot(E.Node)) {
            S.u8(2);
            S.u32(E.CallSite);
            S.u8(E.Node == VFG::RootT ? 'T' : 'F');
          } else if (NodeFn[E.Node] == F) {
            S.u8(2);
            S.u32(E.CallSite);
            S.u8('L');
            sinkRef(S, E.Node);
          } else {
            HasCrossCallDep = 1;
          }
          break;
        case EdgeKind::Ret:
          S.u8(3);
          S.u32(E.CallSite);
          if (G.isRoot(E.Node)) {
            S.u8(E.Node == VFG::RootT ? 'T' : 'F');
          } else {
            S.u8('X');
            S.str(Fns[NodeFn[E.Node]]->getName());
            sinkRef(S, E.Node);
          }
          break;
        }
      }
      S.u8(0xFE);
      S.u8(HasCrossCallDep);
      S.u8(HasRetUser);
      // Outgoing cross calls: which callee entries this node's value flows
      // into, at which of this function's call sites (a call can have no
      // Ret-kind residue in this segment, so deps alone would miss it).
      for (const Edge &E : (*Flows[Id])) {
        if (E.Kind != EdgeKind::Call || E.Node < 2 || NodeFn[E.Node] == F)
          continue;
        S.u8(4);
        S.u32(E.CallSite);
        S.str(Fns[NodeFn[E.Node]]->getName());
        sinkRef(S, E.Node);
      }
      S.u8(0xFF);
    }
    return S.H;
  }

  //===--------------------------------------------------------------------===//
  // Call-graph condensation and scheduling levels
  //===--------------------------------------------------------------------===//

  void buildCallCondensation() {
    uint32_t NF = static_cast<uint32_t>(Fns.size());
    std::vector<std::vector<uint32_t>> Adj(NF); // F -> callee G.
    for (uint32_t Id = 2; Id < N; ++Id) {
      uint32_t SrcF = NodeFn[Id];
      for (const Edge &E : (*Flows[Id])) {
        if (E.Node < 2)
          continue;
        uint32_t DstF = NodeFn[E.Node];
        if (E.Kind == EdgeKind::Call && DstF != SrcF)
          Adj[SrcF].push_back(DstF); // SrcF calls DstF.
        else if (E.Kind == EdgeKind::Ret && DstF != SrcF)
          Adj[DstF].push_back(SrcF); // DstF (caller) depends on SrcF.
      }
    }
    for (auto &A : Adj) {
      std::sort(A.begin(), A.end());
      A.erase(std::unique(A.begin(), A.end()), A.end());
    }

    // Iterative Tarjan over functions; components finish callee-first.
    FnComp.assign(NF, ~0u);
    std::vector<uint32_t> Index(NF, 0), Low(NF, 0), SccStack;
    std::vector<uint8_t> OnStack(NF, 0);
    struct Frame {
      uint32_t Fn, NextEdge;
    };
    std::vector<Frame> Stack;
    uint32_t NextIndex = 1;
    for (uint32_t Root = 0; Root != NF; ++Root) {
      if (Index[Root])
        continue;
      Index[Root] = Low[Root] = NextIndex++;
      OnStack[Root] = 1;
      SccStack.push_back(Root);
      Stack.push_back({Root, 0});
      while (!Stack.empty()) {
        Frame &Fr = Stack.back();
        uint32_t U = Fr.Fn;
        if (Fr.NextEdge < Adj[U].size()) {
          uint32_t V = Adj[U][Fr.NextEdge++];
          if (!Index[V]) {
            Index[V] = Low[V] = NextIndex++;
            OnStack[V] = 1;
            SccStack.push_back(V);
            Stack.push_back({V, 0});
          } else if (OnStack[V]) {
            Low[U] = std::min(Low[U], Index[V]);
          }
          continue;
        }
        Stack.pop_back();
        if (!Stack.empty())
          Low[Stack.back().Fn] = std::min(Low[Stack.back().Fn], Low[U]);
        if (Low[U] == Index[U]) {
          uint32_t C = static_cast<uint32_t>(CompFns.size());
          CompFns.emplace_back();
          while (true) {
            uint32_t M = SccStack.back();
            SccStack.pop_back();
            OnStack[M] = 0;
            FnComp[M] = C;
            CompFns[C].push_back(M);
            if (M == U)
              break;
          }
          std::sort(CompFns[C].begin(), CompFns[C].end());
        }
      }
    }
    St.NumSCCs = CompFns.size();

    // Components pop in callee-first order, so a component's callees all
    // have smaller component ids: level = 1 + max(callee levels).
    uint32_t NC = static_cast<uint32_t>(CompFns.size());
    std::vector<uint32_t> Level(NC, 0);
    uint32_t MaxLevel = 0;
    for (uint32_t C = 0; C != NC; ++C) {
      uint32_t L = 0;
      for (uint32_t F : CompFns[C])
        for (uint32_t Callee : Adj[F])
          if (FnComp[Callee] != C)
            L = std::max(L, Level[FnComp[Callee]] + 1);
      Level[C] = L;
      MaxLevel = std::max(MaxLevel, L);
    }
    Levels.assign(MaxLevel + 1, {});
    for (uint32_t C = 0; C != NC; ++C)
      Levels[Level[C]].push_back(C);
  }

  //===--------------------------------------------------------------------===//
  // Phase 1: intra-function parametric/concrete propagation
  //===--------------------------------------------------------------------===//

  /// Concrete internal undefinedness seeds of function \p F, mirroring the
  /// global engine's Reach() seeding restricted to this segment.
  void collectConcreteSeeds(uint32_t F,
                            std::vector<std::pair<uint32_t, uint32_t>> &Out) {
    for (const Edge &E : (*Flows[VFG::RootF])) {
      if (E.Node < 2 || NodeFn[E.Node] != F)
        continue;
      uint32_t Code = 0;
      switch (E.Kind) {
      case EdgeKind::Direct:
        break;
      case EdgeKind::Call:
        Code = pushCtx(0, E.CallSite);
        break;
      case EdgeKind::Ret:
        // popped() from the empty stack always succeeds unchanged.
        break;
      }
      Out.push_back({E.Node, Code});
    }
    if (!Opts.AddressTakenAware)
      for (uint32_t Id : FnNodes[F])
        if (G.node(Id).Key.Sp == ssa::Space::Memory)
          Out.push_back({Id, 0});
  }

  /// One monotone propagation pass over function \p F using the current
  /// callee summaries. Returns true if any summary fact was added.
  bool propagateFunction(uint32_t F) {
    FunctionSummary &S = Summaries[F];
    bool Changed = false;

    struct Item {
      uint32_t Node;
      uint64_t T; ///< Packed transfer; concrete items use TAlways.
    };
    std::vector<Item> Work;
    std::unordered_map<uint32_t, std::unordered_set<uint64_t>> Visited;

    auto Enqueue = [&](uint32_t Node, Transfer T) {
      uint64_t P = packT(T);
      if (Visited[Node].insert(P).second)
        Work.push_back({Node, P});
    };

    // Shared traversal for one origin. Parametric origins record into
    // T/CE keyed by the entry node; the concrete origin records IX/ICE.
    auto RunOrigin = [&](uint32_t EntryOrConcrete, bool Concrete) {
      while (!Work.empty()) {
        if (!charge())
          return;
        Item It = Work.back();
        Work.pop_back();
        Transfer T = unpackT(It.T);
        uint32_t Node = It.Node;

        if (IsExit[Node]) {
          if (Concrete) {
            if (insertSortedV(S.IX[Node], T.OutCode))
              Changed = true;
          } else {
            if (insertSorted(S.T[{EntryOrConcrete, Node}], It.T))
              Changed = true;
          }
        }
        for (const Edge &E : (*Flows[Node])) {
          if (E.Node < 2)
            continue;
          uint32_t TF = NodeFn[E.Node];
          switch (E.Kind) {
          case EdgeKind::Direct:
            Enqueue(E.Node, T);
            break;
          case EdgeKind::Call: {
            Transfer T2 = pushT(T, E.CallSite);
            if (TF == F) {
              Enqueue(E.Node, T2); // Direct recursion: an ordinary push.
              break;
            }
            if (Concrete) {
              if (insertSortedV(S.ICE, {E.Node, T2.OutCode}))
                Changed = true;
            } else {
              if (insertSortedV(S.CE[EntryOrConcrete],
                                CEFact{packT(T2), E.Node}))
                Changed = true;
            }
            // Apply the callee summary instead of traversing its body;
            // flows returning into this function continue locally. (Exits
            // escaping into other callers are realized in phase 3 from
            // the CE/ICE obligation recorded above.)
            const FunctionSummary &CS = Summaries[TF];
            for (auto TIt = CS.T.lower_bound({E.Node, 0});
                 TIt != CS.T.end() && TIt->first.first == E.Node; ++TIt) {
              uint32_t XNode = TIt->first.second;
              for (uint64_t PU : TIt->second) {
                Transfer T3 = T2;
                if (!applyT(T3, unpackT(PU)))
                  continue;
                for (const Edge &RE : (*Flows[XNode])) {
                  if (RE.Kind != EdgeKind::Ret || RE.Node < 2 ||
                      NodeFn[RE.Node] != F)
                    continue;
                  Transfer T4 = T3;
                  if (popT(T4, RE.CallSite))
                    Enqueue(RE.Node, T4);
                }
              }
            }
            break;
          }
          case EdgeKind::Ret: {
            if (TF != F)
              break; // Cross exit: phase 3 pops it into the caller.
            Transfer T2 = T;
            if (popT(T2, E.CallSite))
              Enqueue(E.Node, T2);
            break;
          }
          }
        }
        if (Exhausted.load(std::memory_order_relaxed))
          return;
      }
    };

    // Parametric origins: one per boundary node.
    for (uint32_t Bn : S.Boundary) {
      Work.clear();
      Visited.clear();
      Enqueue(Bn, Transfer{});
      RunOrigin(Bn, /*Concrete=*/false);
      if (Exhausted.load(std::memory_order_relaxed))
        return Changed;
    }
    // The concrete origin: all internal sources at once (their facts are
    // per-(node, context), not per-entry, so one shared memo is exact).
    std::vector<std::pair<uint32_t, uint32_t>> Seeds;
    collectConcreteSeeds(F, Seeds);
    Work.clear();
    Visited.clear();
    for (auto &[Node, Code] : Seeds)
      Enqueue(Node, Transfer{TAlways, 0, Code});
    RunOrigin(0, /*Concrete=*/true);
    return Changed;
  }

  void initBoundary(uint32_t F) {
    FunctionSummary &S = Summaries[F];
    for (uint32_t Id : FnNodes[F]) {
      if (IsBoundary[Id])
        S.Boundary.push_back(Id);
      if (IsExit[Id])
        S.Exits.push_back(Id);
    }
  }

  //===--------------------------------------------------------------------===//
  // Summary serialization (canonical, run-independent)
  //===--------------------------------------------------------------------===//

  /// Serializes \p F's summary in the canonical stable form. Within one
  /// run node ids are ordered by creation, which can differ across runs;
  /// interface vectors are therefore re-sorted by (space, loc, version)
  /// reference before writing.
  std::string serializeSummary(uint32_t F) const {
    const FunctionSummary &S = Summaries[F];
    ByteSink Out;

    // Callee-name string table, sorted for stability.
    std::vector<std::string> Names;
    auto NoteCallee = [&](uint32_t Node) {
      Names.push_back(Fns[NodeFn[Node]]->getName());
    };
    for (const auto &[BKey, Facts] : S.CE) {
      (void)BKey;
      for (const CEFact &CF : Facts)
        NoteCallee(CF.Callee);
    }
    for (const auto &[Callee, Code] : S.ICE) {
      (void)Code;
      NoteCallee(Callee);
    }
    std::sort(Names.begin(), Names.end());
    Names.erase(std::unique(Names.begin(), Names.end()), Names.end());
    std::unordered_map<std::string, uint32_t> NameIdx;
    Out.u32(static_cast<uint32_t>(Names.size()));
    for (uint32_t I = 0; I != Names.size(); ++I) {
      NameIdx.emplace(Names[I], I);
      Out.str(Names[I]);
    }
    auto CalleeIdx = [&](uint32_t Node) {
      return NameIdx.at(Fns[NodeFn[Node]]->getName());
    };

    // Ref-sorted interface orderings; Pos maps node id -> stable index.
    auto RefSorted = [&](const std::vector<uint32_t> &Ids) {
      std::vector<uint32_t> V = Ids;
      std::sort(V.begin(), V.end(), [&](uint32_t A, uint32_t Bn) {
        return refLess(refOf(A), refOf(Bn));
      });
      return V;
    };
    std::vector<uint32_t> BOrd = RefSorted(S.Boundary);
    std::vector<uint32_t> XOrd = RefSorted(S.Exits);
    std::unordered_map<uint32_t, uint32_t> BPos, XPos;
    Out.u32(static_cast<uint32_t>(BOrd.size()));
    for (uint32_t I = 0; I != BOrd.size(); ++I) {
      BPos.emplace(BOrd[I], I);
      sinkRef(Out, BOrd[I]);
    }
    Out.u32(static_cast<uint32_t>(XOrd.size()));
    for (uint32_t I = 0; I != XOrd.size(); ++I) {
      XPos.emplace(XOrd[I], I);
      sinkRef(Out, XOrd[I]);
    }

    // T, ordered by stable (entry, exit) position.
    std::vector<std::tuple<uint32_t, uint32_t, const std::vector<uint64_t> *>>
        TRows;
    for (const auto &[BX, Ts] : S.T)
      TRows.push_back({BPos.at(BX.first), XPos.at(BX.second), &Ts});
    std::sort(TRows.begin(), TRows.end(),
              [](const auto &A, const auto &Bn) {
                return std::get<0>(A) != std::get<0>(Bn)
                           ? std::get<0>(A) < std::get<0>(Bn)
                           : std::get<1>(A) < std::get<1>(Bn);
              });
    Out.u32(static_cast<uint32_t>(TRows.size()));
    for (auto &[BP, XP, Ts] : TRows) {
      Out.u32(BP);
      Out.u32(XP);
      Out.u32(static_cast<uint32_t>(Ts->size()));
      for (uint64_t P : *Ts)
        Out.u64(P);
    }

    // CE, ordered by (entry position, transfer, callee name idx, ref).
    struct CERow {
      uint32_t BP;
      uint64_t T;
      uint32_t NameI;
      NodeKeyRef Ref;
    };
    std::vector<CERow> CERows;
    for (const auto &[Bn, Facts] : S.CE)
      for (const CEFact &CF : Facts)
        CERows.push_back(
            {BPos.at(Bn), CF.T, CalleeIdx(CF.Callee), refOf(CF.Callee)});
    std::sort(CERows.begin(), CERows.end(),
              [](const CERow &A, const CERow &Bn) {
                if (A.BP != Bn.BP)
                  return A.BP < Bn.BP;
                if (A.T != Bn.T)
                  return A.T < Bn.T;
                if (A.NameI != Bn.NameI)
                  return A.NameI < Bn.NameI;
                return refLess(A.Ref, Bn.Ref);
              });
    Out.u32(static_cast<uint32_t>(CERows.size()));
    for (const CERow &R : CERows) {
      Out.u32(R.BP);
      Out.u64(R.T);
      Out.u32(R.NameI);
      Out.u8(R.Ref.Sp);
      Out.u32(R.Ref.Loc);
      Out.u32(R.Ref.Ver);
    }

    // IX by stable exit position.
    std::vector<std::pair<uint32_t, const std::vector<uint32_t> *>> IXRows;
    for (const auto &[X, Codes] : S.IX)
      IXRows.push_back({XPos.at(X), &Codes});
    std::sort(IXRows.begin(), IXRows.end());
    Out.u32(static_cast<uint32_t>(IXRows.size()));
    for (auto &[XP, Codes] : IXRows) {
      Out.u32(XP);
      Out.u32(static_cast<uint32_t>(Codes->size()));
      for (uint32_t C : *Codes)
        Out.u32(C);
    }

    // ICE by (callee name idx, ref, code).
    struct ICERow {
      uint32_t NameI;
      NodeKeyRef Ref;
      uint32_t Code;
    };
    std::vector<ICERow> ICERows;
    for (const auto &[Callee, Code] : S.ICE)
      ICERows.push_back({CalleeIdx(Callee), refOf(Callee), Code});
    std::sort(ICERows.begin(), ICERows.end(),
              [](const ICERow &A, const ICERow &Bn) {
                if (A.NameI != Bn.NameI)
                  return A.NameI < Bn.NameI;
                if (!(A.Ref.Sp == Bn.Ref.Sp && A.Ref.Loc == Bn.Ref.Loc &&
                      A.Ref.Ver == Bn.Ref.Ver))
                  return refLess(A.Ref, Bn.Ref);
                return A.Code < Bn.Code;
              });
    Out.u32(static_cast<uint32_t>(ICERows.size()));
    for (const ICERow &R : ICERows) {
      Out.u32(R.NameI);
      Out.u8(R.Ref.Sp);
      Out.u32(R.Ref.Loc);
      Out.u32(R.Ref.Ver);
      Out.u32(R.Code);
    }
    return std::move(Out.Bytes);
  }

  uint32_t resolveRef(const ir::Function *Fn, uint8_t Sp, uint32_t Loc,
                      uint32_t Ver) const {
    return G.findNode(Fn, ssa::VarKey{static_cast<ssa::Space>(Sp), Loc}, Ver);
  }

  /// Rebuilds \p F's summary from \p Payload. False means the record is
  /// stale for the current graph (unresolvable reference / malformed).
  bool deserializeSummary(uint32_t F, const std::string &Payload) {
    ByteSource In(Payload);
    FunctionSummary S;
    const ir::Function *Self = Fns[F];

    uint32_t NNames = In.u32();
    std::vector<const ir::Function *> NameFns;
    for (uint32_t I = 0; I != NNames && !In.Bad; ++I) {
      auto It = FnByName.find(In.str());
      if (It == FnByName.end())
        return false;
      NameFns.push_back(It->second);
    }
    auto ReadOwnRef = [&]() -> uint32_t {
      uint8_t Sp = In.u8();
      uint32_t Loc = In.u32(), Ver = In.u32();
      if (In.Bad)
        return ~0u;
      return resolveRef(Self, Sp, Loc, Ver);
    };
    auto ReadCalleeRef = [&](uint32_t NameI) -> uint32_t {
      uint8_t Sp = In.u8();
      uint32_t Loc = In.u32(), Ver = In.u32();
      if (In.Bad || NameI >= NameFns.size())
        return ~0u;
      return resolveRef(NameFns[NameI], Sp, Loc, Ver);
    };

    uint32_t NB = In.u32();
    std::vector<uint32_t> BOrd, XOrd;
    for (uint32_t I = 0; I != NB && !In.Bad; ++I) {
      uint32_t Id = ReadOwnRef();
      if (Id == ~0u || !IsBoundary[Id])
        return false;
      BOrd.push_back(Id);
    }
    uint32_t NX = In.u32();
    for (uint32_t I = 0; I != NX && !In.Bad; ++I) {
      uint32_t Id = ReadOwnRef();
      if (Id == ~0u || !IsExit[Id])
        return false;
      XOrd.push_back(Id);
    }
    uint32_t NT = In.u32();
    for (uint32_t I = 0; I != NT && !In.Bad; ++I) {
      uint32_t BP = In.u32(), XP = In.u32(), Cnt = In.u32();
      if (In.Bad || BP >= BOrd.size() || XP >= XOrd.size())
        return false;
      auto &Ts = S.T[{BOrd[BP], XOrd[XP]}];
      for (uint32_t J = 0; J != Cnt && !In.Bad; ++J)
        Ts.push_back(In.u64());
      std::sort(Ts.begin(), Ts.end());
    }
    uint32_t NCE = In.u32();
    for (uint32_t I = 0; I != NCE && !In.Bad; ++I) {
      uint32_t BP = In.u32();
      uint64_t T = In.u64();
      uint32_t NameI = In.u32();
      uint32_t Callee = ReadCalleeRef(NameI);
      if (In.Bad || BP >= BOrd.size() || Callee == ~0u)
        return false;
      insertSortedV(S.CE[BOrd[BP]], CEFact{T, Callee});
    }
    uint32_t NIX = In.u32();
    for (uint32_t I = 0; I != NIX && !In.Bad; ++I) {
      uint32_t XP = In.u32(), Cnt = In.u32();
      if (In.Bad || XP >= XOrd.size())
        return false;
      auto &Codes = S.IX[XOrd[XP]];
      for (uint32_t J = 0; J != Cnt && !In.Bad; ++J)
        Codes.push_back(In.u32());
      std::sort(Codes.begin(), Codes.end());
    }
    uint32_t NICE = In.u32();
    for (uint32_t I = 0; I != NICE && !In.Bad; ++I) {
      uint32_t NameI = In.u32();
      uint32_t Callee = ReadCalleeRef(NameI);
      uint32_t Code = In.u32();
      if (In.Bad || Callee == ~0u)
        return false;
      insertSortedV(S.ICE, {Callee, Code});
    }
    if (In.Bad || In.Pos != Payload.size())
      return false;

    FunctionSummary &Dst = Summaries[F];
    S.Boundary = std::move(Dst.Boundary);
    S.Exits = std::move(Dst.Exits);
    S.SegHash = Dst.SegHash;
    Dst = std::move(S);
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Phase 1 driver: per-SCC compute-or-reuse
  //===--------------------------------------------------------------------===//

  uint64_t externalDepSig(uint32_t C) const {
    // Value hashes of callees outside the component, by sorted name.
    std::set<std::pair<std::string, uint64_t>> Sig;
    for (uint32_t F : CompFns[C])
      for (uint32_t Id : FnNodes[F])
        for (const Edge &E : (*Flows[Id])) {
          if (E.Node < 2 || E.Kind != EdgeKind::Call)
            continue;
          uint32_t TF = NodeFn[E.Node];
          if (FnComp[TF] != C)
            Sig.insert({Fns[TF]->getName(), Summaries[TF].ValueHash});
        }
    // Ret flows from a callee into this component are the same dependency
    // seen from the other side (result/chi receivers).
    for (uint32_t F : CompFns[C])
      for (uint32_t Id : FnNodes[F])
        for (const Edge &E : *EffDeps[Id]) {
          if (E.Kind != EdgeKind::Ret || G.isRoot(E.Node))
            continue;
          uint32_t TF = NodeFn[E.Node];
          if (FnComp[TF] != C)
            Sig.insert({Fns[TF]->getName(), Summaries[TF].ValueHash});
        }
    HashSink S{CfgHash};
    for (const auto &[Name, VH] : Sig) {
      S.str(Name);
      S.u64(VH);
    }
    return S.H;
  }

  uint64_t componentKey(uint32_t C) const {
    // Members sorted by name; their segment hashes pin the exact segments.
    std::vector<std::pair<std::string, uint64_t>> Members;
    for (uint32_t F : CompFns[C])
      Members.push_back({Fns[F]->getName(), Summaries[F].SegHash});
    std::sort(Members.begin(), Members.end());
    HashSink S{CfgHash};
    S.str("USHSCC1");
    for (const auto &[Name, H] : Members) {
      S.str(Name);
      S.u64(H);
    }
    return S.H;
  }

  void processComponent(uint32_t C) {
    uint64_t DepSig = externalDepSig(C);
    uint64_t Key = componentKey(C);

    if (Cache) {
      if (auto Payload = Cache->lookup(Key)) {
        // Payload: magic, depsig, member count, per member (name, bytes).
        ByteSource In(*Payload);
        bool Ok = In.str() == "USHSUM1" && In.u64() == DepSig;
        uint32_t Cnt = Ok ? In.u32() : 0;
        Ok = Ok && Cnt == CompFns[C].size();
        std::vector<std::pair<uint32_t, std::string>> MemberBytes;
        for (uint32_t I = 0; I != Cnt && Ok; ++I) {
          std::string Name = In.str();
          std::string Body = In.str();
          auto It = FnByName.find(Name);
          Ok = !In.Bad && It != FnByName.end() &&
               FnIdx.count(It->second) != 0;
          if (Ok) {
            uint32_t F = FnIdx.at(It->second);
            Ok = FnComp[F] == C;
            MemberBytes.push_back({F, std::move(Body)});
          }
        }
        Ok = Ok && !In.Bad && In.Pos == Payload->size();
        if (Ok)
          for (auto &[F, Body] : MemberBytes)
            if (!deserializeSummary(F, Body)) {
              Ok = false;
              break;
            }
        if (Ok) {
          for (auto &[F, Body] : MemberBytes)
            Summaries[F].ValueHash =
                fnvBytes(Body.data(), Body.size(), CfgHash);
          AReused.fetch_add(CompFns[C].size(), std::memory_order_relaxed);
          pruneComponent(C);
          return;
        }
        Cache->noteStale();
      }
    }

    // Compute: joint fixpoint over the component's members. Each pass
    // re-propagates a member from scratch against the current summaries;
    // facts only accumulate, so the iteration is monotone and finite.
    bool Changed = true;
    while (Changed && !Exhausted.load(std::memory_order_relaxed)) {
      Changed = false;
      for (uint32_t F : CompFns[C])
        if (propagateFunction(F))
          Changed = true;
    }
    AComputed.fetch_add(CompFns[C].size(), std::memory_order_relaxed);
    if (Exhausted.load(std::memory_order_relaxed))
      return; // Do not cache partial summaries.

    if (Cache) {
      ByteSink Out;
      Out.str("USHSUM1");
      Out.u64(DepSig);
      Out.u32(static_cast<uint32_t>(CompFns[C].size()));
      std::vector<std::pair<std::string, uint32_t>> ByName;
      for (uint32_t F : CompFns[C])
        ByName.push_back({Fns[F]->getName(), F});
      std::sort(ByName.begin(), ByName.end());
      for (const auto &[Name, F] : ByName) {
        std::string Body = serializeSummary(F);
        Summaries[F].ValueHash = fnvBytes(Body.data(), Body.size(), CfgHash);
        Out.str(Name);
        Out.str(Body);
      }
      Cache->store(Key, std::move(Out.Bytes));
    } else {
      for (uint32_t F : CompFns[C]) {
        std::string Body = serializeSummary(F);
        Summaries[F].ValueHash = fnvBytes(Body.data(), Body.size(), CfgHash);
      }
    }
    pruneComponent(C);
  }

  //===--------------------------------------------------------------------===//
  // Phase 2: redundant-summary elimination
  //===--------------------------------------------------------------------===//

  /// Context codes a caller can realize at boundary node \p Bn: the sites
  /// of its cross-function Call dependencies (entries realize under
  /// exactly the pushing site), plus the empty context if it has any Ret
  /// dependency (k <= 1 pops always land on the empty stack). Guards
  /// outside this set are dead weight no caller can distinguish.
  void realizableEntryCodes(uint32_t Bn, std::vector<uint32_t> &Out) const {
    Out.clear();
    if (K == 0) {
      Out.push_back(0);
      return;
    }
    uint32_t F = NodeFn[Bn];
    for (const Edge &E : *EffDeps[Bn]) {
      if (E.Kind == EdgeKind::Ret) {
        Out.push_back(0);
      } else if (E.Kind == EdgeKind::Call &&
                 (G.isRoot(E.Node) || NodeFn[E.Node] != F)) {
        // Root-sourced call args seed concretely but share the same code.
        Out.push_back(E.CallSite + 1);
      }
    }
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  }

  /// Prunes one transfer list in place against realizable entry codes \p R.
  void pruneTransfers(std::vector<uint64_t> &Ts, const std::vector<uint32_t> &R,
                      uint64_t &Dropped, uint64_t &Merged) {
    if (K == 0)
      return;
    auto Realizes = [&](uint32_t Code) {
      return std::binary_search(R.begin(), R.end(), Code);
    };
    std::vector<uint64_t> Kept;
    for (uint64_t P : Ts) {
      Transfer T = unpackT(P);
      if (T.Kind != TMatch) {
        Kept.push_back(P);
        continue;
      }
      bool Pass0 = Realizes(0), PassS = Realizes(T.Site + 1);
      if (!Pass0 && !PassS) {
        ++Dropped; // Guard satisfiable by no caller: unreachable fact.
        continue;
      }
      // Subsumed by an unconditional transfer with the same output?
      if (std::binary_search(Ts.begin(), Ts.end(),
                             packT(Transfer{TAlways, 0, T.OutCode}))) {
        ++Dropped;
        continue;
      }
      // Every realizable entry satisfies the guard: merge into Always.
      bool AllPass = true;
      for (uint32_t Code : R)
        if (!(Code == 0 || Code == T.Site + 1)) {
          AllPass = false;
          break;
        }
      if (AllPass) {
        ++Merged;
        Kept.push_back(packT(Transfer{TAlways, 0, T.OutCode}));
        continue;
      }
      Kept.push_back(P);
    }
    std::sort(Kept.begin(), Kept.end());
    Kept.erase(std::unique(Kept.begin(), Kept.end()), Kept.end());
    Ts = std::move(Kept);
  }

  void pruneComponent(uint32_t C) {
    if (K == 0)
      return;
    uint64_t DroppedT = 0, DroppedCE = 0, Merged = 0;
    std::vector<uint32_t> R;
    for (uint32_t F : CompFns[C]) {
      FunctionSummary &S = Summaries[F];
      uint32_t CurB = ~0u;
      for (auto &[BX, Ts] : S.T) {
        if (BX.first != CurB) {
          CurB = BX.first;
          realizableEntryCodes(CurB, R);
        }
        pruneTransfers(Ts, R, DroppedT, Merged);
      }
      for (auto &[Bn, Facts] : S.CE) {
        realizableEntryCodes(Bn, R);
        auto Realizes = [&](uint32_t Code) {
          return std::binary_search(R.begin(), R.end(), Code);
        };
        std::vector<CEFact> Kept;
        for (const CEFact &CF : Facts) {
          Transfer T = unpackT(CF.T);
          if (T.Kind == TMatch) {
            bool Pass0 = Realizes(0), PassS = Realizes(T.Site + 1);
            if (!Pass0 && !PassS) {
              ++DroppedCE;
              continue;
            }
            if (std::binary_search(
                    Facts.begin(), Facts.end(),
                    CEFact{packT(Transfer{TAlways, 0, T.OutCode}),
                           CF.Callee})) {
              ++DroppedCE;
              continue;
            }
            bool AllPass = true;
            for (uint32_t Code : R)
              if (!(Code == 0 || Code == T.Site + 1)) {
                AllPass = false;
                break;
              }
            if (AllPass) {
              ++Merged;
              Kept.push_back(
                  CEFact{packT(Transfer{TAlways, 0, T.OutCode}), CF.Callee});
              continue;
            }
          }
          Kept.push_back(CF);
        }
        std::sort(Kept.begin(), Kept.end());
        Kept.erase(std::unique(Kept.begin(), Kept.end()), Kept.end());
        Facts = std::move(Kept);
      }
    }
    APrunedT.fetch_add(DroppedT, std::memory_order_relaxed);
    APrunedCE.fetch_add(DroppedCE, std::memory_order_relaxed);
    AMerged.fetch_add(Merged, std::memory_order_relaxed);
  }

  //===--------------------------------------------------------------------===//
  // Phase 3: concrete interface worklist
  //===--------------------------------------------------------------------===//

  void interfacePhase() {
    Realized.assign(Fns.size(), {});
    std::unordered_map<uint32_t, std::unordered_set<uint32_t>> NodeSeen,
        ExitSeen;
    std::vector<std::pair<uint32_t, uint32_t>> Work;

    auto Realize = [&](uint32_t Node, uint32_t Code) {
      if (NodeSeen[Node].insert(Code).second)
        Work.push_back({Node, Code});
    };
    auto ExitFact = [&](uint32_t XNode, uint32_t Code) {
      if (!ExitSeen[XNode].insert(Code).second)
        return;
      for (const Edge &E : (*Flows[XNode])) {
        if (E.Kind != EdgeKind::Ret || E.Node < 2)
          continue;
        uint32_t C2 = Code;
        if (popCtx(C2, E.CallSite))
          Realize(E.Node, C2);
      }
    };

    for (uint32_t F = 0; F != Fns.size(); ++F) {
      const FunctionSummary &S = Summaries[F];
      for (const auto &[X, Codes] : S.IX)
        for (uint32_t Code : Codes)
          ExitFact(X, Code);
      for (const auto &[Callee, Code] : S.ICE)
        Realize(Callee, Code);
    }

    while (!Work.empty()) {
      if (!charge())
        return;
      auto [Node, Code] = Work.back();
      Work.pop_back();
      uint32_t F = NodeFn[Node];
      const FunctionSummary &S = Summaries[F];
      for (auto It = S.T.lower_bound({Node, 0});
           It != S.T.end() && It->first.first == Node; ++It)
        for (uint64_t P : It->second) {
          uint32_t C2 = Code;
          if (applyCtx(C2, unpackT(P)))
            ExitFact(It->first.second, C2);
        }
      auto CEIt = S.CE.find(Node);
      if (CEIt != S.CE.end())
        for (const CEFact &CF : CEIt->second) {
          uint32_t C2 = Code;
          if (applyCtx(C2, unpackT(CF.T)))
            Realize(CF.Callee, C2);
        }
    }

    uint64_t Total = 0;
    for (auto &[Node, Codes] : NodeSeen) {
      Total += Codes.size();
      auto &RF = Realized[NodeFn[Node]];
      for (uint32_t Code : Codes)
        RF.push_back({Node, Code});
    }
    for (auto &RF : Realized)
      std::sort(RF.begin(), RF.end());
    St.RealizedBoundaryFacts = Total;
  }

  //===--------------------------------------------------------------------===//
  // Phase 4: per-function expansion
  //===--------------------------------------------------------------------===//

  uint64_t expansionKey(uint32_t F) const {
    // Direct-callee value hashes (their T drives the through-jumps).
    std::set<std::pair<std::string, uint64_t>> Sig;
    for (uint32_t Id : FnNodes[F])
      for (const Edge &E : (*Flows[Id]))
        if (E.Kind == EdgeKind::Call && E.Node >= 2 && NodeFn[E.Node] != F)
          Sig.insert(
              {Fns[NodeFn[E.Node]]->getName(), Summaries[NodeFn[E.Node]].ValueHash});
    HashSink S{CfgHash};
    S.str("USHEXP1");
    S.u64(Summaries[F].SegHash);
    for (const auto &[Name, VH] : Sig) {
      S.str(Name);
      S.u64(VH);
    }
    // Realized boundary facts, hashed by stable reference.
    std::vector<std::pair<NodeKeyRef, uint32_t>> RF;
    for (const auto &[Node, Code] : Realized[F])
      RF.push_back({refOf(Node), Code});
    std::sort(RF.begin(), RF.end(),
              [](const auto &A, const auto &Bn) {
                if (!(A.first.Sp == Bn.first.Sp && A.first.Loc == Bn.first.Loc &&
                      A.first.Ver == Bn.first.Ver))
                  return refLess(A.first, Bn.first);
                return A.second < Bn.second;
              });
    for (const auto &[Ref, Code] : RF) {
      S.u8(Ref.Sp);
      S.u32(Ref.Loc);
      S.u32(Ref.Ver);
      S.u32(Code);
    }
    return S.H;
  }

  struct Expansion {
    std::vector<uint32_t> Marked; ///< Sorted node ids marked bottom.
    bool Saturates = false;
  };

  Expansion expandFunction(uint32_t F) {
    Expansion Out;
    const std::vector<uint32_t> &Ids = FnNodes[F];
    std::unordered_map<uint32_t, uint32_t> Local; // node id -> local index.
    for (uint32_t I = 0; I != Ids.size(); ++I)
      Local.emplace(Ids[I], I);
    uint32_t NL = static_cast<uint32_t>(Ids.size());

    // Local Tarjan over intra-function Direct flows; identical components
    // to the global engine's (Direct edges never cross functions).
    std::vector<uint32_t> Rep(NL);
    {
      std::vector<uint32_t> Index(NL, 0), Low(NL, 0), SccStack;
      std::vector<uint8_t> OnStack(NL, 0);
      struct Frame {
        uint32_t Node, NextEdge;
      };
      std::vector<Frame> Stack;
      uint32_t NextIndex = 1;
      for (uint32_t Root = 0; Root != NL; ++Root) {
        if (Index[Root])
          continue;
        Index[Root] = Low[Root] = NextIndex++;
        OnStack[Root] = 1;
        SccStack.push_back(Root);
        Stack.push_back({Root, 0});
        while (!Stack.empty()) {
          Frame &Fr = Stack.back();
          uint32_t U = Fr.Node;
          const std::vector<Edge> &FE = (*Flows[Ids[U]]);
          if (Fr.NextEdge < FE.size()) {
            const Edge &E = FE[Fr.NextEdge++];
            if (E.Kind != EdgeKind::Direct || E.Node < 2)
              continue;
            uint32_t V = Local.at(E.Node);
            if (!Index[V]) {
              Index[V] = Low[V] = NextIndex++;
              OnStack[V] = 1;
              SccStack.push_back(V);
              Stack.push_back({V, 0});
            } else if (OnStack[V]) {
              Low[U] = std::min(Low[U], Index[V]);
            }
            continue;
          }
          Stack.pop_back();
          if (!Stack.empty())
            Low[Stack.back().Node] =
                std::min(Low[Stack.back().Node], Low[U]);
          if (Low[U] == Index[U]) {
            while (true) {
              uint32_t M = SccStack.back();
              SccStack.pop_back();
              OnStack[M] = 0;
              Rep[M] = U;
              if (M == U)
                break;
            }
          }
        }
      }
    }
    std::vector<std::vector<uint32_t>> Members(NL);
    for (uint32_t I = 0; I != NL; ++I)
      Members[Rep[I]].push_back(I);

    std::vector<std::unordered_set<uint32_t>> Seen(NL);
    std::vector<uint8_t> Marked(NL, 0);
    std::vector<std::pair<uint32_t, uint32_t>> Work; // (local rep, code).

    auto ReachLocal = [&](uint32_t LNode, uint32_t Code) {
      uint32_t R = Rep[LNode];
      if (Seen[R].empty())
        for (uint32_t M : Members[R])
          Marked[M] = 1;
      if (!Seen[R].insert(Code).second)
        return;
      if (Seen[R].size() >= MaxContextsPerRep) {
        // The global engine would widen this component to the universal
        // context here; record the bail but keep going so the budget
        // charge count stays schedule-independent.
        Out.Saturates = true;
        Bail.store(true, std::memory_order_relaxed);
      }
      Work.push_back({R, Code});
    };

    for (const auto &[Node, Code] : Realized[F])
      ReachLocal(Local.at(Node), Code);
    std::vector<std::pair<uint32_t, uint32_t>> Seeds;
    collectConcreteSeeds(F, Seeds);
    for (const auto &[Node, Code] : Seeds)
      ReachLocal(Local.at(Node), Code);

    // (callee entry, entry code) -> returning (local node, code) list.
    std::unordered_map<uint64_t, std::vector<std::pair<uint32_t, uint32_t>>>
        JumpMemo;

    while (!Work.empty()) {
      if (!charge())
        return Out;
      auto [R, Code] = Work.back();
      Work.pop_back();
      for (uint32_t M : Members[R]) {
        for (const Edge &E : (*Flows[Ids[M]])) {
          if (E.Node < 2)
            continue;
          uint32_t TF = NodeFn[E.Node];
          switch (E.Kind) {
          case EdgeKind::Direct:
            if (Rep[Local.at(E.Node)] != R)
              ReachLocal(Local.at(E.Node), Code);
            break;
          case EdgeKind::Call: {
            uint32_t C2 = pushCtx(Code, E.CallSite);
            if (TF == F) {
              ReachLocal(Local.at(E.Node), C2);
              break;
            }
            // Cross call: the callee body is marked by its own expansion
            // (phase 3 realized the entry); continue the flows that
            // return into this function by applying the callee summary.
            uint64_t MemoKey =
                (static_cast<uint64_t>(E.Node) << 32) | C2;
            auto MIt = JumpMemo.find(MemoKey);
            if (MIt == JumpMemo.end()) {
              std::vector<std::pair<uint32_t, uint32_t>> Ret;
              const FunctionSummary &CS = Summaries[TF];
              for (auto TIt = CS.T.lower_bound({E.Node, 0});
                   TIt != CS.T.end() && TIt->first.first == E.Node; ++TIt) {
                uint32_t XNode = TIt->first.second;
                for (uint64_t P : TIt->second) {
                  uint32_t C3 = C2;
                  if (!applyCtx(C3, unpackT(P)))
                    continue;
                  for (const Edge &RE : (*Flows[XNode])) {
                    if (RE.Kind != EdgeKind::Ret || RE.Node < 2 ||
                        NodeFn[RE.Node] != F)
                      continue;
                    uint32_t C4 = C3;
                    if (popCtx(C4, RE.CallSite))
                      Ret.push_back({Local.at(RE.Node), C4});
                  }
                }
              }
              std::sort(Ret.begin(), Ret.end());
              Ret.erase(std::unique(Ret.begin(), Ret.end()), Ret.end());
              MIt = JumpMemo.emplace(MemoKey, std::move(Ret)).first;
            }
            for (const auto &[LNode, C4] : MIt->second)
              ReachLocal(LNode, C4);
            break;
          }
          case EdgeKind::Ret: {
            if (TF != F)
              break; // Cross exit: realized in phase 3.
            uint32_t C2 = Code;
            if (popCtx(C2, E.CallSite))
              ReachLocal(Local.at(E.Node), C2);
            break;
          }
          }
        }
      }
      if (Exhausted.load(std::memory_order_relaxed))
        return Out;
    }
    for (uint32_t I = 0; I != NL; ++I)
      if (Marked[I])
        Out.Marked.push_back(Ids[I]);
    std::sort(Out.Marked.begin(), Out.Marked.end());
    return Out;
  }

  /// Expansion with memoization: cache hit replays the marked set (and the
  /// saturation verdict) without re-propagating.
  Expansion expandOrReuse(uint32_t F) {
    uint64_t Key = 0;
    if (Cache) {
      Key = expansionKey(F);
      if (auto Payload = Cache->lookup(Key)) {
        ByteSource In(*Payload);
        bool Ok = In.str() == "USHEXP1";
        Expansion Out;
        Out.Saturates = In.u8() != 0;
        uint32_t Cnt = In.u32();
        const ir::Function *Self = Fns[F];
        for (uint32_t I = 0; I != Cnt && Ok && !In.Bad; ++I) {
          uint8_t Sp = In.u8();
          uint32_t Loc = In.u32(), Ver = In.u32();
          uint32_t Id = In.Bad ? ~0u : resolveRef(Self, Sp, Loc, Ver);
          Ok = Id != ~0u && NodeFn[Id] == F;
          if (Ok)
            Out.Marked.push_back(Id);
        }
        Ok = Ok && !In.Bad && In.Pos == Payload->size();
        if (Ok) {
          std::sort(Out.Marked.begin(), Out.Marked.end());
          if (Out.Saturates)
            Bail.store(true, std::memory_order_relaxed);
          AExpReused.fetch_add(1, std::memory_order_relaxed);
          return Out;
        }
        Cache->noteStale();
      }
    }
    Expansion Out = expandFunction(F);
    AExpComputed.fetch_add(1, std::memory_order_relaxed);
    if (Cache && !Exhausted.load(std::memory_order_relaxed)) {
      ByteSink S;
      S.str("USHEXP1");
      S.u8(Out.Saturates ? 1 : 0);
      // Marked ids sorted by stable ref for run-independence.
      std::vector<uint32_t> ByRef = Out.Marked;
      std::sort(ByRef.begin(), ByRef.end(),
                [&](uint32_t A, uint32_t Bn) {
                  return refLess(refOf(A), refOf(Bn));
                });
      S.u32(static_cast<uint32_t>(ByRef.size()));
      for (uint32_t Id : ByRef)
        sinkRef(S, Id);
      Cache->store(Key, std::move(S.Bytes));
    }
    return Out;
  }

  //===--------------------------------------------------------------------===//
  // Driver
  //===--------------------------------------------------------------------===//

  /// The same structural completion the global engine applies on budget
  /// exhaustion, so degraded results are byte-identical across engines.
  BitSet pessimize() const {
    BitSet Bottom(N);
    for (uint32_t Id = 0; Id != N; ++Id) {
      if (G.isRoot(Id))
        continue;
      const std::vector<Edge> *Deps = EffDeps[Id];
      bool AllTop = !Deps->empty();
      for (const Edge &E : *Deps)
        if (E.Node != VFG::RootT) {
          AllTop = false;
          break;
        }
      if (!AllTop)
        Bottom.set(Id);
    }
    return Bottom;
  }

  SummaryRunResult run() {
    if (K >= 2) {
      // The parametric transfer algebra is closed only for k <= 1.
      St.DelegatedToGlobal = true;
      return {};
    }
    if (B && !B->step()) {
      St.Pessimized = true;
      // prepare() has not run; compute effective deps just for pessimize.
      N = G.numNodes();
      EffDeps.resize(N);
      for (uint32_t Id = 0; Id != N; ++Id) {
        EffDeps[Id] = &G.deps(Id);
        if (Redirects) {
          auto It = Redirects->find(Id);
          if (It != Redirects->end())
            EffDeps[Id] = &It->second;
        }
      }
      return {pessimize(), true};
    }
    if (!prepare()) {
      St.DelegatedToGlobal = true;
      return {};
    }
    buildCallCondensation();

    // Phase 1 (+2): bottom-up over condensation levels; components within
    // a level are independent and run on the pool. Summaries of lower
    // levels are complete before a level starts (ordered join barrier).
    for (uint32_t F = 0; F != Fns.size(); ++F) {
      initBoundary(F);
      Summaries[F].SegHash = segmentHash(F);
    }
    for (const std::vector<uint32_t> &Level : Levels) {
      parallelForOrdered(Pool, Level.size(),
                         [&](size_t I) { processComponent(Level[I]); });
      if (Exhausted.load(std::memory_order_relaxed))
        break;
    }
    if (!Exhausted.load(std::memory_order_relaxed)) {
      // Phase 3 is serial: it crosses function boundaries.
      interfacePhase();
    }

    // Phase 4: independent per-function expansions, merged in order.
    std::vector<Expansion> Exps;
    if (!Exhausted.load(std::memory_order_relaxed))
      Exps = parallelMapOrdered(Pool, Fns.size(),
                                [&](size_t F) {
                                  return expandOrReuse(
                                      static_cast<uint32_t>(F));
                                });

    St.SummariesComputed = AComputed.load();
    St.SummariesReused = AReused.load();
    St.ExpansionsComputed = AExpComputed.load();
    St.ExpansionsReused = AExpReused.load();
    St.PrunedTransfers = APrunedT.load();
    St.PrunedCalleeEntries = APrunedCE.load();
    St.MergedContexts = AMerged.load();

    if (Exhausted.load(std::memory_order_relaxed)) {
      St.Pessimized = true;
      return {pessimize(), true};
    }
    if (Bail.load(std::memory_order_relaxed)) {
      // The global engine would saturate some component to the universal
      // context; matching that widening exactly is the global engine's
      // job, so hand the whole query back to it.
      St.SaturationBail = true;
      St.DelegatedToGlobal = true;
      return {};
    }

    BitSet Bottom(N);
    Bottom.set(VFG::RootF);
    for (const Expansion &E : Exps)
      for (uint32_t Id : E.Marked)
        Bottom.set(Id);
    return {std::move(Bottom), false};
  }
};

SummaryEngine::SummaryEngine(
    const VFG &G, SummaryEngineOptions Opts,
    const std::unordered_map<uint32_t, std::vector<Edge>> *Redirects,
    SummaryCache *Cache, ThreadPool *Pool, Budget *B)
    : I(std::make_unique<Impl>(G, Opts, Redirects, Cache, Pool, B, St)) {}

SummaryEngine::~SummaryEngine() = default;

SummaryRunResult SummaryEngine::run() { return I->run(); }
