//===- analysis/UnificationAnalysis.h - Unification solver ------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Steensgaard-family unification solver over the Andersen constraint
/// system, following the oversharing mitigations of Kuderski et al.
/// ("Unification-based Pointer Analysis without Oversharing"):
///
///  - Copy edges between top-level pointers stay *directional* — assigning
///    p = q never merges p and q, so precision along assignment chains is
///    Andersen's, not Steensgaard's.
///  - Unification happens only under the address-taken cells: locations
///    form union-find classes, and each class has at most ONE pointee
///    class. A store through a pointer unifies everything stored with the
///    cell class's single contents class instead of accumulating a set,
///    and a load reads back exactly that one class id.
///
/// This changes the propagation currency: where Andersen moves *location*
/// ids (a set of size |pts|), this engine moves *class* ids, and a class
/// subsumes every location unified into it. A hub cell holding M pointees
/// read by N pointers costs Andersen Θ(N·M) set work; here the M pointees
/// merge into one contents class (Θ(M·α)) and each reader receives one
/// class id (Θ(N)) — the near-linear bound the degradation ladder's UNIFY
/// rung is named for. Member sets are materialized only at harvest, and
/// variables whose class sets coincide share one materialized vector.
///
/// The result over-approximates Andersen: pts_andersen(p) ⊆ pts_unify(p)
/// for every pointer (SolverEquivalenceTest enforces this on the suite and
/// the fuzz corpus), so the degradation ladder can fall from Andersen to
/// this rung instead of straight to the MSan full plan.
///
/// The ConstraintSystem here is the one PointerAnalysis::Solver builds; it
/// lives in this header so the Andersen engines (PointerAnalysis.cpp) and
/// the unification engine consume the identical constraints — the basis of
/// the soundness comparison.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_ANALYSIS_UNIFICATIONANALYSIS_H
#define USHER_ANALYSIS_UNIFICATIONANALYSIS_H

#include "analysis/PointerAnalysis.h"
#include "support/BitSet.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace usher {
class Budget;

namespace analysis {

/// The flow-insensitive inclusion constraint system extracted from a
/// module: solver nodes are variables (ids [0, NumVars)) followed by
/// locations (ids [NumVars, NumNodes)). Built once by
/// PointerAnalysis::Solver and consumed unchanged by every engine.
struct ConstraintSystem {
  /// Either a solver node or a literal location (a global's address or a
  /// wrapper clone).
  struct ValueRef {
    bool IsLoc;
    uint32_t Id;
  };

  struct SeedCst {
    uint32_t Node;
    uint32_t Loc;
  }; // Loc ∈ pts(Node)
  struct CopyCst {
    uint32_t Src, Dst;
  }; // pts(Src) ⊆ pts(Dst)
  struct LoadCst {
    uint32_t Ptr, Dst;
  }; // x := *p
  struct StoreCst {
    uint32_t Ptr;
    ValueRef Val;
  }; // *p := v
  struct GepCst {
    uint32_t Ptr, Dst;
    unsigned Offset;
    bool Dynamic;
  }; // x := gep p, off

  uint32_t NumVars = 0;
  uint32_t NumNodes = 0;

  std::vector<SeedCst> Seeds;
  std::vector<CopyCst> Copies;
  std::vector<LoadCst> Loads;
  std::vector<StoreCst> Stores;
  std::vector<GepCst> Geps;

  /// Solver node standing for location \p LocId.
  uint32_t locNode(uint32_t LocId) const { return NumVars + LocId; }

  size_t size() const {
    return Seeds.size() + Copies.size() + Loads.size() + Stores.size() +
           Geps.size();
  }
};

/// The unification engine (PtaOptions Solver = SolverKind::Unify).
///
/// Structure: an offline Tarjan condensation of the static var-to-var copy
/// graph (exact — members of a copy cycle provably share one points-to
/// set), then a difference-propagation worklist over *class ids*. Top-level
/// variables hold small sets of cell-class ids and stay directional; the
/// cells themselves unify, each class carrying its member locations, at
/// most one pointee class, and subscription lists for the loads and geps
/// waiting on it.
class UnificationSolver {
public:
  /// \p PA supplies the location services (numLocations, locId,
  /// locsOfObject) — valid during PointerAnalysis construction because
  /// numbering precedes solving. \p C must outlive run().
  UnificationSolver(const PointerAnalysis &PA, const ConstraintSystem &C,
                    Budget *B);

  void run();

  /// True if the budget ran out; the partial result under-approximates
  /// and must be discarded, exactly as with the Andersen engines.
  bool exhausted() const { return Exhausted; }

  /// Engine counters, folded into the owning PointerAnalysis' statistics.
  const SolverStatistics &stats() const { return Stats; }

  /// Canonical (sorted, deduplicated) cell-class representatives node
  /// \p Node may point to. Two variables with equal classesOf() have
  /// identical points-to sets — the harvest uses this to share one
  /// materialized vector among them.
  std::vector<uint32_t> classesOf(uint32_t Node) const;

  /// Union of the member locations of \p Classes (canonical reps from
  /// classesOf), as sorted loc ids.
  std::vector<uint32_t> locsOfClasses(const std::vector<uint32_t> &Classes) const;

  /// Final points-to set of solver node \p Node as sorted loc ids.
  std::vector<uint32_t> pointsToOf(uint32_t Node) const;

private:
  using ValueRef = ConstraintSystem::ValueRef;
  using GepCst = ConstraintSystem::GepCst;

  uint32_t findRep(uint32_t N) {
    while (Parent[N] != N) {
      Parent[N] = Parent[Parent[N]]; // path halving
      N = Parent[N];
    }
    return N;
  }
  /// Non-mutating lookup for the const harvest entry points.
  uint32_t findRepConst(uint32_t N) const {
    while (Parent[N] != N)
      N = Parent[N];
    return N;
  }
  uint32_t classOfLoc(uint32_t LocId) { return findRep(C.locNode(LocId)); }

  bool charge(uint64_t N = 1);
  void push(uint32_t Var);
  /// Adds class id \p K to Pts[\p V]; true if newly added.
  bool insertPts(uint32_t V, uint32_t K);
  /// Unions the id list \p Src into Pts[\p T], recording the newly added
  /// ids in Delta[\p T]; true if anything was added. \p Src must not
  /// alias Pts[\p T].Ids or Delta[\p T].
  bool unionPtsFrom(uint32_t T, const std::vector<uint32_t> &Src);
  /// Adds class \p K to variable \p V's set (delta-tracked).
  void insertClass(uint32_t V, uint32_t K);
  void addCopyEdge(uint32_t Src, uint32_t Dst);
  /// Subscribes variable \p W to class \p K's pointee class (x := *p).
  void addLoadSub(uint32_t K, uint32_t W);
  /// Registers that variable \p V's pointees flow into the contents of
  /// class \p K (*p := v), binding V's current classes immediately.
  void addStoreSub(uint32_t V, uint32_t K);
  void addGepSub(uint32_t K, const GepCst &G);
  void seedGepFromMembers(const GepCst &G,
                          const std::vector<uint32_t> &Locs);
  /// Makes \p Vc the (single) pointee class of \p K, unifying if \p K
  /// already has one. Returns false on budget exhaustion.
  bool bindPointee(uint32_t K, uint32_t Vc);
  bool mergeClasses(uint32_t A, uint32_t B);
  bool condenseStaticCopies();

  const PointerAnalysis &PA;
  const ConstraintSystem &C;
  Budget *B;

  SolverStatistics Stats;
  bool Exhausted = false;

  /// Union-find over all solver nodes: variables merge only during the
  /// offline condensation; location nodes merge as cell classes.
  std::vector<uint32_t> Parent;

  // -- Per top-level variable (valid at the var's representative) --------
  /// A variable's class set: an append-only, deduplicated id list, plus a
  /// location-indexed membership bitset materialized lazily once the list
  /// outgrows linear search. Adaptive on purpose: after unification most
  /// variables hold a handful of classes, and allocating a dense
  /// Θ(NumLocs) bitset for every variable up front costs
  /// Θ(NumVars·NumLocs) — growing faster with program size than the
  /// Θ(N+M) solve itself — while a purely sorted-vector set pays
  /// Θ(|set|) per delta on the copy-heavy workloads a bitset dedups in
  /// O(1). Ids are as-inserted (unsorted) and may name classes that have
  /// since merged; canonicalization happens at pop time and in
  /// classesOf().
  struct VarPts {
    std::vector<uint32_t> Ids;
    std::unique_ptr<BitSet> Bits;
  };
  /// List length beyond which insertPts builds the membership bitset.
  static constexpr size_t SmallPtsLimit = 32;
  std::vector<VarPts> Pts;
  unsigned NumLocs = 0;
  std::vector<std::vector<uint32_t>> Delta;
  std::vector<std::vector<uint32_t>> CopyTargets; ///< sorted var dsts
  std::vector<std::vector<uint32_t>> LoadTargets; ///< load dst vars
  std::vector<std::vector<ValueRef>> StoreValues; ///< stored values
  std::vector<std::vector<GepCst>> GepTargets;
  /// Classes whose contents this variable's pointees must join (reverse
  /// side of addStoreSub, for pointees the var discovers later).
  std::vector<std::vector<uint32_t>> StoreSubs;

  // -- Per cell class (valid at the class representative) ----------------
  std::vector<uint32_t> ClassPointee; ///< single contents class, or ~0u
  std::vector<std::vector<uint32_t>> Members; ///< member loc ids
  std::vector<std::vector<uint32_t>> LoadSubs; ///< vars reading contents
  std::vector<std::vector<GepCst>> GepSubs; ///< geps tracking member growth

  std::vector<std::pair<uint32_t, uint32_t>> MergePending;
  /// Reused scratch: the iteration snapshot addStoreSub takes before
  /// re-entrant inserts can reallocate the live set.
  std::vector<uint32_t> SnapshotScratch;

  std::vector<uint32_t> Worklist;
  BitSet InWorklist;
};

} // namespace analysis
} // namespace usher

#endif // USHER_ANALYSIS_UNIFICATIONANALYSIS_H
