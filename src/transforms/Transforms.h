//===- transforms/Transforms.h - IR transformations -------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler transformations the paper's evaluation pipelines use:
///
///  - O0+IM: mem2reg ("promote memory to virtual registers") — the
///    paper's recommended setting for debugging. (The paper's "I" inlines
///    functions with function-pointer arguments to simplify the call
///    graph; TinyC has no function pointers, so that step is vacuous.)
///  - O1: O0+IM plus constant/copy propagation, constant folding, dead
///    code elimination and CFG simplification.
///  - O2: O1 plus inlining of small functions and a second optimization
///    round.
///
/// As the paper notes (Section 4.6), higher levels may legitimately
/// *hide* uses of undefined values (dead-load elimination, folding);
/// tests pin down that behaviour rather than fight it.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_TRANSFORMS_TRANSFORMS_H
#define USHER_TRANSFORMS_TRANSFORMS_H

namespace usher {
class ThreadPool;

namespace ir {
class Module;
}

namespace transforms {

/// Promotes non-escaping, non-array stack objects to top-level variables
/// (one per field). Returns true if anything was promoted. With a
/// non-null \p Pool the per-function rewriting runs in parallel (each
/// function only touches its own blocks and variables); the module-level
/// object purge and renumbering stay serial, so results are identical.
bool promoteMemoryToRegisters(ir::Module &M, ThreadPool *Pool = nullptr);

/// Inlines direct calls to non-recursive callees with at most
/// \p MaxCalleeInsts instructions. Returns true on change.
bool inlineSmallFunctions(ir::Module &M, unsigned MaxCalleeInsts = 40);

/// Block-local constant/copy propagation and constant folding, including
/// folding branches on constants. Returns true on change.
bool propagateAndFold(ir::Module &M);

/// Removes side-effect-free instructions whose results are unused (this
/// includes dead loads, which is exactly how real -O1 pipelines hide
/// uninitialized reads). Returns true on change.
bool eliminateDeadCode(ir::Module &M);

/// Merges trivial block chains and removes unreachable blocks. Returns
/// true on change.
bool simplifyCFG(ir::Module &M);

/// Drops non-global objects whose allocation instruction no longer exists
/// (after dead-code or unreachable-block removal). Transforms that delete
/// instructions call this before re-verifying.
void purgeDanglingObjects(ir::Module &M);

/// The evaluation pipelines of Section 4.
enum class OptPreset { O0IM, O1, O2 };

/// Returns "O0+IM" / "O1" / "O2".
const char *optPresetName(OptPreset P);

/// Applies \p P to \p M (verifies and renumbers afterwards). \p Pool, if
/// non-null, parallelizes the per-function passes (mem2reg, verification).
void runPreset(ir::Module &M, OptPreset P, ThreadPool *Pool = nullptr);

} // namespace transforms
} // namespace usher

#endif // USHER_TRANSFORMS_TRANSFORMS_H
