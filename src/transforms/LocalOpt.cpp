//===- transforms/LocalOpt.cpp - Constant/copy propagation & folding -------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "transforms/Transforms.h"

#include "ir/IR.h"

#include <unordered_map>

using namespace usher;
using namespace usher::ir;

/// Folds an all-constant binary operation; mirrors the interpreter's
/// integer semantics (division by zero yields zero, shifts mask to 63).
static int64_t foldBinOp(BinOpcode Op, int64_t X, int64_t Y) {
  switch (Op) {
  case BinOpcode::Add:
    return static_cast<int64_t>(static_cast<uint64_t>(X) +
                                static_cast<uint64_t>(Y));
  case BinOpcode::Sub:
    return static_cast<int64_t>(static_cast<uint64_t>(X) -
                                static_cast<uint64_t>(Y));
  case BinOpcode::Mul:
    return static_cast<int64_t>(static_cast<uint64_t>(X) *
                                static_cast<uint64_t>(Y));
  case BinOpcode::Div:
    return Y == 0 ? 0 : X / Y;
  case BinOpcode::Rem:
    return Y == 0 ? 0 : X % Y;
  case BinOpcode::And:
    return X & Y;
  case BinOpcode::Or:
    return X | Y;
  case BinOpcode::Xor:
    return X ^ Y;
  case BinOpcode::Shl:
    return static_cast<int64_t>(static_cast<uint64_t>(X) << (Y & 63));
  case BinOpcode::Shr:
    return static_cast<int64_t>(static_cast<uint64_t>(X) >> (Y & 63));
  case BinOpcode::CmpEQ:
    return X == Y;
  case BinOpcode::CmpNE:
    return X != Y;
  case BinOpcode::CmpLT:
    return X < Y;
  case BinOpcode::CmpLE:
    return X <= Y;
  case BinOpcode::CmpGT:
    return X > Y;
  case BinOpcode::CmpGE:
    return X >= Y;
  }
  return 0;
}

bool transforms::propagateAndFold(Module &M) {
  bool Changed = false;

  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      // Block-local lattice: what each variable is currently known to be.
      std::unordered_map<const Variable *, Operand> Known;

      auto Lookup = [&](Operand Op) -> Operand {
        if (!Op.isVar())
          return Op;
        auto It = Known.find(Op.getVar());
        return It == Known.end() ? Op : It->second;
      };

      auto &Insts = BB->instructions();
      for (size_t Idx = 0; Idx != Insts.size(); ++Idx) {
        Instruction *I = Insts[Idx].get();

        // Rewrite operands through the lattice first.
        I->rewriteOperands([&](Operand Op) {
          Operand New = Lookup(Op);
          if (New.getKind() != Op.getKind() ||
              (Op.isVar() && New.isVar() && Op.getVar() != New.getVar()) ||
              (Op.isConst() && New.isConst() &&
               Op.getConst() != New.getConst()))
            Changed = true;
          return New;
        });

        // Fold all-constant binops into copies.
        if (auto *B = dyn_cast<BinOpInst>(I)) {
          if (B->getLHS().isConst() && B->getRHS().isConst()) {
            int64_t V = foldBinOp(B->getOpcode(), B->getLHS().getConst(),
                                  B->getRHS().getConst());
            auto Repl = std::make_unique<CopyInst>(Operand::constant(V));
            Repl->setDef(B->getDef());
            Repl->setParent(BB.get());
            Insts[Idx] = std::move(Repl);
            I = Insts[Idx].get();
            Changed = true;
          }
        }

        // Fold branches on constants.
        if (auto *Br = dyn_cast<CondBrInst>(I)) {
          if (Br->getCond().isConst()) {
            BasicBlock *Target = Br->getCond().getConst() != 0
                                     ? Br->getTrueBB()
                                     : Br->getFalseBB();
            auto Repl = std::make_unique<GotoInst>(Target);
            Repl->setParent(BB.get());
            Insts[Idx] = std::move(Repl);
            I = Insts[Idx].get();
            Changed = true;
          } else if (Br->getCond().isGlobal()) {
            // A global's address is never null.
            auto Repl = std::make_unique<GotoInst>(Br->getTrueBB());
            Repl->setParent(BB.get());
            Insts[Idx] = std::move(Repl);
            I = Insts[Idx].get();
            Changed = true;
          }
        }

        // Update the lattice. A def invalidates previous knowledge about
        // the variable and anything known to equal it.
        if (const Variable *Def = I->getDef()) {
          for (auto It = Known.begin(); It != Known.end();) {
            if (It->second.isVar() && It->second.getVar() == Def)
              It = Known.erase(It);
            else
              ++It;
          }
          Known.erase(Def);
          if (const auto *C = dyn_cast<CopyInst>(I)) {
            // x = self would create a cycle in the lattice; skip it.
            if (!(C->getSrc().isVar() && C->getSrc().getVar() == Def))
              Known[Def] = C->getSrc();
          }
        }
      }
    }
  }

  if (Changed)
    M.renumber();
  return Changed;
}
