//===- transforms/Mem2Reg.cpp - Promote memory to registers ----------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "transforms/Transforms.h"

#include "ir/IR.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace usher;
using namespace usher::ir;

namespace {

/// All facts needed to promote one allocation.
struct Candidate {
  AllocInst *Alloc = nullptr;
  /// Field-address instructions deriving from the allocation pointer,
  /// keyed by their def variable; value is the field index.
  std::unordered_map<const Variable *, unsigned> GepFields;
  bool Viable = true;
};

} // namespace

/// Collects promotion candidates in \p F: single-def pointers from
/// non-array stack allocations whose only uses are direct loads, stores
/// (as the pointer), and constant-field geps with the same property.
static std::vector<Candidate> findCandidates(Function &F) {
  std::unordered_map<const Variable *, unsigned> DefCounts;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (const Variable *Def = I->getDef())
        ++DefCounts[Def];

  std::unordered_map<const Variable *, Candidate *> PtrOwner;
  std::vector<Candidate> Candidates;
  Candidates.reserve(16);

  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      auto *A = dyn_cast<AllocInst>(I.get());
      if (!A)
        continue;
      const MemObject *Obj = A->getObject();
      if (!Obj->isStack() || Obj->isArray() || DefCounts[A->getDef()] != 1)
        continue;
      // Like LLVM's PromoteMemToReg, only promote entry-block allocations:
      // an allocation inside a loop yields a *fresh* (undefined) instance
      // per trip, which promoted variables would not model.
      if (BB.get() != F.getEntry())
        continue;
      Candidates.push_back({});
      Candidates.back().Alloc = A;
    }
  }
  for (Candidate &C : Candidates)
    PtrOwner[C.Alloc->getDef()] = &C;

  // Geps deriving from a candidate pointer join the candidate; their
  // result variables become candidate pointers too (single level of gep
  // is all TinyC produces, but nested geps are rejected below).
  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      auto *G = dyn_cast<FieldAddrInst>(I.get());
      if (!G || !G->getBase().isVar())
        continue;
      auto It = PtrOwner.find(G->getBase().getVar());
      if (It == PtrOwner.end())
        continue;
      Candidate *C = It->second;
      if (G->getBase().getVar() != C->Alloc->getDef() ||
          DefCounts[G->getDef()] != 1 || !G->hasConstIndex() ||
          G->getFieldIdx() >= C->Alloc->getObject()->getNumFields()) {
        C->Viable = false; // Nested, multi-def, dynamic or OOB gep.
        continue;
      }
      C->GepFields[G->getDef()] = G->getFieldIdx();
      PtrOwner[G->getDef()] = C;
    }
  }

  // Every other use of a candidate pointer must be a direct load or a
  // store *through* it (not of it).
  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      std::vector<Variable *> Used;
      I->collectUsedVars(Used);
      for (const Variable *V : Used) {
        auto It = PtrOwner.find(V);
        if (It == PtrOwner.end())
          continue;
        Candidate *C = It->second;
        switch (I->getKind()) {
        case Instruction::IKind::Load:
          if (!cast<LoadInst>(I.get())->getPtr().isVar() ||
              cast<LoadInst>(I.get())->getPtr().getVar() != V)
            C->Viable = false;
          break;
        case Instruction::IKind::Store: {
          const auto *St = cast<StoreInst>(I.get());
          // The pointer may be stored *through*, never stored *away*.
          if (!(St->getPtr().isVar() && St->getPtr().getVar() == V) ||
              (St->getValue().isVar() && St->getValue().getVar() == V))
            C->Viable = false;
          break;
        }
        case Instruction::IKind::FieldAddr:
          // Validated above; nested geps were already rejected there,
          // but a gep of a gep reaches here with the gep var as base.
          if (C->GepFields.count(V))
            C->Viable = false;
          break;
        default:
          C->Viable = false; // Escapes via call/ret/copy/compare/...
        }
      }
    }
  }
  return Candidates;
}

/// Promotes within one function; only this function's blocks, variables
/// and instructions are touched, so distinct functions can run on
/// distinct workers. Returns the objects promoted here (the caller folds
/// them into the module-level purge in function order).
static std::vector<const MemObject *> promoteInFunction(Function *F) {
  std::vector<const MemObject *> PromotedHere;
  {
    std::vector<Candidate> Candidates = findCandidates(*F);
    std::unordered_map<const Variable *, std::pair<Candidate *, unsigned>>
        CellOf; // pointer var -> (candidate, field)
    std::unordered_map<const MemObject *, std::vector<Variable *>> FieldVars;
    std::unordered_set<const Instruction *> Dead;

    for (Candidate &C : Candidates) {
      if (!C.Viable)
        continue;
      const MemObject *Obj = C.Alloc->getObject();
      auto &Vars = FieldVars[Obj];
      for (unsigned Idx = 0; Idx != Obj->getNumFields(); ++Idx)
        Vars.push_back(F->createVariable(Obj->getName() + ".f" +
                                         std::to_string(Idx)));
      CellOf[C.Alloc->getDef()] = {&C, 0};
      for (const auto &[GepVar, Field] : C.GepFields)
        CellOf[GepVar] = {&C, Field};
      Dead.insert(C.Alloc);
      PromotedHere.push_back(Obj);
    }
    if (CellOf.empty())
      return PromotedHere;

    // Phase 1: rewrite every promoted load/store in the whole function.
    for (auto &BB : F->blocks()) {
      auto &Insts = BB->instructions();
      for (size_t Idx = 0; Idx != Insts.size(); ++Idx) {
        Instruction *I = Insts[Idx].get();
        if (auto *G = dyn_cast<FieldAddrInst>(I)) {
          if (CellOf.count(G->getDef()))
            Dead.insert(I);
          continue;
        }
        if (auto *L = dyn_cast<LoadInst>(I)) {
          if (!L->getPtr().isVar())
            continue;
          auto It = CellOf.find(L->getPtr().getVar());
          if (It == CellOf.end())
            continue;
          auto [C, Field] = It->second;
          Variable *Cell = FieldVars[C->Alloc->getObject()][Field];
          auto Repl = std::make_unique<CopyInst>(Operand::var(Cell));
          Repl->setDef(L->getDef());
          Repl->setLoc(L->getLoc());
          Repl->setParent(BB.get());
          Insts[Idx] = std::move(Repl);
          continue;
        }
        if (auto *St = dyn_cast<StoreInst>(I)) {
          if (!St->getPtr().isVar())
            continue;
          auto It = CellOf.find(St->getPtr().getVar());
          if (It == CellOf.end())
            continue;
          auto [C, Field] = It->second;
          Variable *Cell = FieldVars[C->Alloc->getObject()][Field];
          auto Repl = std::make_unique<CopyInst>(St->getValue());
          Repl->setDef(Cell);
          Repl->setLoc(St->getLoc());
          Repl->setParent(BB.get());
          Insts[Idx] = std::move(Repl);
          continue;
        }
      }
    }

    // Phase 2: an initialized allocation's cells start defined (zero).
    for (auto &BB : F->blocks()) {
      auto &Insts = BB->instructions();
      for (size_t Idx = 0; Idx != Insts.size(); ++Idx) {
        auto *A = dyn_cast<AllocInst>(Insts[Idx].get());
        if (!A || !Dead.count(A))
          continue;
        if (A->getObject()->isInitialized()) {
          const auto &Vars = FieldVars[A->getObject()];
          for (size_t V = 0; V != Vars.size(); ++V) {
            auto Init = std::make_unique<CopyInst>(Operand::constant(0));
            Init->setDef(Vars[V]);
            BB->insertAt(Idx + 1 + V, std::move(Init));
          }
          Idx += Vars.size();
        }
      }
    }

    // Phase 3: drop the allocations and field-address computations.
    for (auto &BB : F->blocks()) {
      auto &Insts = BB->instructions();
      Insts.erase(std::remove_if(Insts.begin(), Insts.end(),
                                 [&](const std::unique_ptr<Instruction> &I) {
                                   return Dead.count(I.get()) != 0;
                                 }),
                  Insts.end());
    }
  }
  return PromotedHere;
}

bool transforms::promoteMemoryToRegisters(Module &M, ThreadPool *Pool) {
  std::vector<Function *> Funcs;
  for (const auto &F : M.functions())
    Funcs.push_back(F.get());
  // Per-function promotion is independent; the promoted-object sets are
  // merged in module function order before the serial purge + renumber.
  std::vector<std::vector<const MemObject *>> PerFunc = parallelMapOrdered(
      Pool, Funcs.size(), [&](size_t I) { return promoteInFunction(Funcs[I]); });

  std::unordered_set<const MemObject *> Promoted;
  for (const std::vector<const MemObject *> &Objs : PerFunc)
    Promoted.insert(Objs.begin(), Objs.end());
  if (Promoted.empty())
    return false;
  M.purgeObjects([&](const MemObject *Obj) { return Promoted.count(Obj); });
  M.renumber();
  return true;
}
