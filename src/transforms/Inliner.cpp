//===- transforms/Inliner.cpp - Inline small functions ---------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "transforms/Transforms.h"

#include "analysis/CallGraph.h"
#include "ir/IR.h"

#include <string>
#include <unordered_map>
#include <vector>

using namespace usher;
using namespace usher::ir;

namespace {

/// Clones the body of \p Callee into \p Caller in place of \p Call (which
/// sits at position \p CallIdx of block \p CallBB).
class InlineSite {
public:
  InlineSite(Module &M, Function &Caller, BasicBlock *CallBB, size_t CallIdx)
      : M(M), Caller(Caller), CallBB(CallBB), CallIdx(CallIdx),
        Call(cast<CallInst>(CallBB->instructions()[CallIdx].get())) {}

  void run();

private:
  Operand remap(const Operand &Op) const {
    if (!Op.isVar())
      return Op;
    return Operand::var(VarMap.at(Op.getVar()));
  }

  std::unique_ptr<Instruction> cloneInst(const Instruction &I,
                                         BasicBlock *AfterBB);

  Module &M;
  Function &Caller;
  BasicBlock *CallBB;
  size_t CallIdx;
  CallInst *Call;

  std::unordered_map<const Variable *, Variable *> VarMap;
  std::unordered_map<const BasicBlock *, BasicBlock *> BlockMap;
  unsigned Suffix = 0;
};

} // namespace

std::unique_ptr<Instruction> InlineSite::cloneInst(const Instruction &I,
                                                   BasicBlock *AfterBB) {
  std::unique_ptr<Instruction> Clone;
  switch (I.getKind()) {
  case Instruction::IKind::Copy:
    Clone = std::make_unique<CopyInst>(remap(cast<CopyInst>(&I)->getSrc()));
    break;
  case Instruction::IKind::BinOp: {
    const auto *B = cast<BinOpInst>(&I);
    Clone = std::make_unique<BinOpInst>(B->getOpcode(), remap(B->getLHS()),
                                        remap(B->getRHS()));
    break;
  }
  case Instruction::IKind::Alloc: {
    // The clone needs its own abstract object: one allocation site per
    // object is an IR invariant.
    const MemObject *Obj = cast<AllocInst>(&I)->getObject();
    MemObject *NewObj = M.createObject(
        Obj->getName() + ".inl" + std::to_string(Suffix++), Obj->getRegion(),
        Obj->getNumFields(), Obj->isInitialized(), Obj->isArray());
    auto A = std::make_unique<AllocInst>(NewObj);
    NewObj->setAllocSite(A.get());
    Clone = std::move(A);
    break;
  }
  case Instruction::IKind::FieldAddr: {
    const auto *G = cast<FieldAddrInst>(&I);
    Clone = std::make_unique<FieldAddrInst>(remap(G->getBase()),
                                            remap(G->getIndex()));
    break;
  }
  case Instruction::IKind::Load:
    Clone = std::make_unique<LoadInst>(remap(cast<LoadInst>(&I)->getPtr()));
    break;
  case Instruction::IKind::Store: {
    const auto *St = cast<StoreInst>(&I);
    Clone = std::make_unique<StoreInst>(remap(St->getPtr()),
                                        remap(St->getValue()));
    break;
  }
  case Instruction::IKind::Call: {
    const auto *C = cast<CallInst>(&I);
    std::vector<Operand> Args;
    for (const Operand &Arg : C->getArgs())
      Args.push_back(remap(Arg));
    Clone = std::make_unique<CallInst>(C->getCallee(), std::move(Args));
    break;
  }
  case Instruction::IKind::CondBr: {
    const auto *B = cast<CondBrInst>(&I);
    Clone = std::make_unique<CondBrInst>(remap(B->getCond()),
                                         BlockMap.at(B->getTrueBB()),
                                         BlockMap.at(B->getFalseBB()));
    break;
  }
  case Instruction::IKind::Goto:
    Clone = std::make_unique<GotoInst>(
        BlockMap.at(cast<GotoInst>(&I)->getTarget()));
    break;
  case Instruction::IKind::Ret: {
    // ret v  =>  result := v; goto after.
    const auto *R = cast<RetInst>(&I);
    if (Call->getDef()) {
      Operand Val = R->getValue().isNone() ? Operand::constant(0)
                                           : remap(R->getValue());
      // A void return captured by the caller stays undefined: model it by
      // copying a fresh, never-assigned variable.
      if (R->getValue().isNone()) {
        Variable *Undef = Caller.createVariable("inl.undef" +
                                                std::to_string(Suffix++));
        Val = Operand::var(Undef);
      }
      auto CopyRet = std::make_unique<CopyInst>(Val);
      CopyRet->setDef(Call->getDef());
      // Emit the copy, then fall through to the goto below via a tiny
      // trick: return the copy and let the caller add the goto.
      // (Handled in run() instead for clarity.)
      Clone = std::move(CopyRet);
    } else {
      Clone = std::make_unique<GotoInst>(AfterBB);
    }
    break;
  }
  }
  if (I.getDef() && !isa<RetInst>(&I))
    Clone->setDef(VarMap.at(I.getDef()));
  Clone->setLoc(I.getLoc());
  return Clone;
}

void InlineSite::run() {
  Function *Callee = Call->getCallee();

  // Split the call block: everything after the call moves to AfterBB.
  BasicBlock *AfterBB =
      Caller.createBlock(CallBB->getName() + ".after" +
                         std::to_string(Caller.blocks().size()));
  {
    auto &Insts = CallBB->instructions();
    for (size_t Idx = CallIdx + 1; Idx != Insts.size(); ++Idx)
      AfterBB->append(std::move(Insts[Idx]));
    Insts.resize(CallIdx + 1);
  }

  // Clone variables and blocks.
  for (const auto &V : Callee->variables())
    VarMap[V.get()] = Caller.createVariable(
        Callee->getName() + "." + V->getName() +
        std::to_string(Caller.variables().size()));
  for (const auto &BB : Callee->blocks())
    BlockMap[BB.get()] = Caller.createBlock(
        Callee->getName() + "." + BB->getName() +
        std::to_string(Caller.blocks().size()));

  // Bind arguments.
  std::vector<std::unique_ptr<Instruction>> ArgCopies;
  for (size_t Idx = 0; Idx != Call->getArgs().size(); ++Idx) {
    auto C = std::make_unique<CopyInst>(Call->getArgs()[Idx]);
    C->setDef(VarMap.at(Callee->params()[Idx]));
    ArgCopies.push_back(std::move(C));
  }

  // Clone the body.
  for (const auto &BB : Callee->blocks()) {
    BasicBlock *NewBB = BlockMap.at(BB.get());
    for (const auto &I : BB->instructions()) {
      std::unique_ptr<Instruction> Clone = cloneInst(*I, AfterBB);
      NewBB->append(std::move(Clone));
      if (isa<RetInst>(I.get()) && Call->getDef())
        NewBB->append(std::make_unique<GotoInst>(AfterBB));
    }
  }

  // Replace the call with the argument copies and a jump to the clone's
  // entry.
  auto &Insts = CallBB->instructions();
  Insts.pop_back(); // The call itself.
  for (auto &C : ArgCopies)
    CallBB->append(std::move(C));
  CallBB->append(
      std::make_unique<GotoInst>(BlockMap.at(Callee->getEntry())));
}

bool transforms::inlineSmallFunctions(Module &M, unsigned MaxCalleeInsts) {
  analysis::CallGraph CG(M);
  bool Changed = false;

  for (const auto &F : M.functions()) {
    // Find call sites afresh per function; inlining rewrites the blocks.
    bool FunctionChanged = true;
    unsigned Budget = 16; // Bound repeated inlining into one caller.
    while (FunctionChanged && Budget--) {
      FunctionChanged = false;
      for (const auto &BB : F->blocks()) {
        auto &Insts = BB->instructions();
        for (size_t Idx = 0; Idx != Insts.size(); ++Idx) {
          auto *Call = dyn_cast<CallInst>(Insts[Idx].get());
          if (!Call)
            continue;
          Function *Callee = Call->getCallee();
          if (Callee == F.get() || CG.isRecursive(Callee) ||
              Callee->instructionCount() > MaxCalleeInsts)
            continue;
          InlineSite(M, *F, BB.get(), Idx).run();
          FunctionChanged = Changed = true;
          break;
        }
        if (FunctionChanged)
          break;
      }
    }
    if (Changed)
      F->removeUnreachableBlocks();
  }

  if (Changed) {
    purgeDanglingObjects(M);
    M.renumber();
  }
  return Changed;
}
