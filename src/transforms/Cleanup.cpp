//===- transforms/Cleanup.cpp - DCE, CFG simplification, presets -----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "transforms/Transforms.h"

#include "ir/IR.h"
#include "ir/Verifier.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace usher;
using namespace usher::ir;

bool transforms::eliminateDeadCode(Module &M) {
  bool Changed = false;
  std::unordered_set<const MemObject *> DeadObjects;

  for (const auto &F : M.functions()) {
    bool FnChanged = true;
    while (FnChanged) {
      FnChanged = false;
      // Variables read anywhere in the function.
      std::unordered_set<const Variable *> Used;
      for (const auto &BB : F->blocks()) {
        for (const auto &I : BB->instructions()) {
          std::vector<Variable *> Vars;
          I->collectUsedVars(Vars);
          Used.insert(Vars.begin(), Vars.end());
        }
      }
      // Allocations stay alive while their pointer is used anywhere (the
      // object may be reachable through stores of the pointer).
      for (const auto &BB : F->blocks()) {
        auto &Insts = BB->instructions();
        size_t Before = Insts.size();
        Insts.erase(
            std::remove_if(
                Insts.begin(), Insts.end(),
                [&](const std::unique_ptr<Instruction> &I) {
                  const Variable *Def = I->getDef();
                  if (!Def || Used.count(Def))
                    return false;
                  switch (I->getKind()) {
                  case Instruction::IKind::Alloc:
                    DeadObjects.insert(cast<AllocInst>(I.get())->getObject());
                    return true;
                  case Instruction::IKind::Copy:
                  case Instruction::IKind::BinOp:
                  case Instruction::IKind::FieldAddr:
                  // Removing dead loads is what real -O1 pipelines do,
                  // and is exactly how they hide uninitialized reads
                  // (Section 4.6 of the paper).
                  case Instruction::IKind::Load:
                    return true;
                  default:
                    return false;
                  }
                }),
            Insts.end());
        if (Insts.size() != Before)
          FnChanged = Changed = true;
      }
      // Calls whose results are unused keep executing (side effects) but
      // drop the dead def.
      for (const auto &BB : F->blocks()) {
        for (const auto &I : BB->instructions()) {
          if (auto *C = dyn_cast<CallInst>(I.get())) {
            if (C->getDef() && !Used.count(C->getDef())) {
              C->setDef(nullptr);
              FnChanged = Changed = true;
            }
          }
        }
      }
    }
  }

  if (Changed) {
    if (!DeadObjects.empty())
      M.purgeObjects(
          [&](const MemObject *Obj) { return DeadObjects.count(Obj) != 0; });
    M.renumber();
  }
  return Changed;
}

bool transforms::simplifyCFG(Module &M) {
  bool Changed = false;

  for (const auto &F : M.functions()) {
    Changed |= F->removeUnreachableBlocks();

    bool FnChanged = true;
    while (FnChanged) {
      FnChanged = false;

      // Fold conditional branches with identical targets.
      for (const auto &BB : F->blocks()) {
        Instruction *Term = BB->getTerminator();
        if (auto *Br = dyn_cast_or_null<CondBrInst>(Term)) {
          if (Br->getTrueBB() == Br->getFalseBB() &&
              !Br->getCond().isVar()) {
            auto Repl = std::make_unique<GotoInst>(Br->getTrueBB());
            Repl->setParent(BB.get());
            BB->instructions().back() = std::move(Repl);
            FnChanged = Changed = true;
          }
        }
      }

      // Merge a block into its unique Goto successor when that successor
      // has exactly one predecessor.
      std::unordered_map<const BasicBlock *, unsigned> PredCounts;
      for (const auto &BB : F->blocks()) {
        std::vector<BasicBlock *> Succs;
        BB->getSuccessors(Succs);
        for (BasicBlock *S : Succs)
          ++PredCounts[S];
      }
      for (const auto &BB : F->blocks()) {
        auto *G = dyn_cast_or_null<GotoInst>(BB->getTerminator());
        if (!G)
          continue;
        BasicBlock *Succ = G->getTarget();
        if (Succ == BB.get() || Succ == F->getEntry() ||
            PredCounts[Succ] != 1)
          continue;
        // Splice the successor's instructions into this block.
        auto &Insts = BB->instructions();
        Insts.pop_back(); // The goto.
        for (auto &I : Succ->instructions()) {
          I->setParent(BB.get());
          Insts.push_back(std::move(I));
        }
        Succ->instructions().clear();
        // The emptied block becomes unreachable and is removed below.
        FnChanged = Changed = true;
        break; // Restart: block structures changed.
      }
      if (FnChanged) {
        // Emptied blocks are unreachable only if nothing targets them;
        // the merge above guaranteed a single predecessor, so they are.
        auto &Blocks = F->blocks();
        Blocks.erase(std::remove_if(Blocks.begin(), Blocks.end(),
                                    [&](const std::unique_ptr<BasicBlock> &B) {
                                      return B->empty() &&
                                             B.get() != F->getEntry();
                                    }),
                     Blocks.end());
        F->renumberBlocks();
      }
    }
  }

  if (Changed) {
    purgeDanglingObjects(M);
    M.renumber();
  }
  return Changed;
}

void transforms::purgeDanglingObjects(Module &M) {
  std::unordered_set<const MemObject *> Live;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        if (const auto *A = dyn_cast<AllocInst>(I.get()))
          Live.insert(A->getObject());
  M.purgeObjects([&](const MemObject *Obj) {
    return !Obj->isGlobal() && !Live.count(Obj);
  });
}

const char *transforms::optPresetName(OptPreset P) {
  switch (P) {
  case OptPreset::O0IM:
    return "O0+IM";
  case OptPreset::O1:
    return "O1";
  case OptPreset::O2:
    return "O2";
  }
  return "?";
}

void transforms::runPreset(Module &M, OptPreset P, ThreadPool *Pool) {
  promoteMemoryToRegisters(M, Pool);
  if (P != OptPreset::O0IM) {
    bool Changed = true;
    unsigned Rounds = P == OptPreset::O2 ? 4 : 2;
    while (Changed && Rounds--) {
      Changed = false;
      Changed |= propagateAndFold(M);
      Changed |= eliminateDeadCode(M);
      Changed |= simplifyCFG(M);
    }
    if (P == OptPreset::O2) {
      inlineSmallFunctions(M);
      promoteMemoryToRegisters(M, Pool);
      propagateAndFold(M);
      eliminateDeadCode(M);
      simplifyCFG(M);
    }
  }
  M.renumber();
  verifyModuleOrAbort(M, Pool);
}
