//===- ir/Printer.cpp - Textual TinyC output ------------------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules in the textual TinyC syntax accepted by the parser, so
/// print -> parse round-trips to an equivalent module.
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "support/RawStream.h"

using namespace usher;
using namespace usher::ir;

static void printOperand(raw_ostream &OS, const Operand &Op) {
  switch (Op.getKind()) {
  case Operand::Kind::None:
    OS << "<none>";
    break;
  case Operand::Kind::Const:
    OS << Op.getConst();
    break;
  case Operand::Kind::Var:
    OS << Op.getVar()->getName();
    break;
  case Operand::Kind::Global:
    OS << Op.getGlobal()->getName();
    break;
  }
}

void Instruction::print(raw_ostream &OS) const {
  switch (getKind()) {
  case IKind::Copy: {
    const auto *C = cast<CopyInst>(this);
    OS << getDef()->getName() << " = ";
    printOperand(OS, C->getSrc());
    OS << ';';
    break;
  }
  case IKind::BinOp: {
    const auto *B = cast<BinOpInst>(this);
    OS << getDef()->getName() << " = ";
    printOperand(OS, B->getLHS());
    OS << ' ' << binOpcodeSpelling(B->getOpcode()) << ' ';
    printOperand(OS, B->getRHS());
    OS << ';';
    break;
  }
  case IKind::Alloc: {
    const auto *A = cast<AllocInst>(this);
    const MemObject *Obj = A->getObject();
    OS << getDef()->getName() << " = alloc "
       << (Obj->isHeap() ? "heap" : "stack") << ' ' << Obj->getNumFields()
       << ' ' << (Obj->isInitialized() ? "init" : "uninit");
    if (Obj->isArray())
      OS << " array";
    OS << ';';
    break;
  }
  case IKind::FieldAddr: {
    const auto *F = cast<FieldAddrInst>(this);
    OS << getDef()->getName() << " = gep ";
    printOperand(OS, F->getBase());
    OS << ", ";
    printOperand(OS, F->getIndex());
    OS << ';';
    break;
  }
  case IKind::Load: {
    const auto *L = cast<LoadInst>(this);
    OS << getDef()->getName() << " = *";
    printOperand(OS, L->getPtr());
    OS << ';';
    break;
  }
  case IKind::Store: {
    const auto *S = cast<StoreInst>(this);
    OS << '*';
    printOperand(OS, S->getPtr());
    OS << " = ";
    printOperand(OS, S->getValue());
    OS << ';';
    break;
  }
  case IKind::Call: {
    const auto *C = cast<CallInst>(this);
    if (getDef())
      OS << getDef()->getName() << " = ";
    OS << C->getCallee()->getName() << '(';
    bool First = true;
    for (const Operand &Arg : C->getArgs()) {
      if (!First)
        OS << ", ";
      printOperand(OS, Arg);
      First = false;
    }
    OS << ");";
    break;
  }
  case IKind::CondBr: {
    const auto *B = cast<CondBrInst>(this);
    OS << "if ";
    printOperand(OS, B->getCond());
    OS << " goto " << B->getTrueBB()->getName() << "; goto "
       << B->getFalseBB()->getName() << ';';
    break;
  }
  case IKind::Goto:
    OS << "goto " << cast<GotoInst>(this)->getTarget()->getName() << ';';
    break;
  case IKind::Ret: {
    const auto *R = cast<RetInst>(this);
    OS << "ret";
    if (!R->getValue().isNone()) {
      OS << ' ';
      printOperand(OS, R->getValue());
    }
    OS << ';';
    break;
  }
  }
}

void Module::print(raw_ostream &OS) const {
  for (const auto &Obj : Objects) {
    if (!Obj->isGlobal())
      continue;
    OS << "global " << Obj->getName() << '[' << Obj->getNumFields() << "] "
       << (Obj->isInitialized() ? "init" : "uninit");
    if (Obj->isArray())
      OS << " array";
    OS << ";\n";
  }
  for (const auto &F : Funcs) {
    OS << "\nfunc " << F->getName() << '(';
    bool First = true;
    for (const Variable *P : F->params()) {
      if (!First)
        OS << ", ";
      OS << P->getName();
      First = false;
    }
    OS << ") {\n";
    // Declare locals up front: the body may use a variable textually
    // before its first assignment (e.g. when blocks are laid out in an
    // order that differs from control flow).
    bool AnyLocal = false;
    for (const auto &V : F->variables())
      AnyLocal |= !V->isParam();
    if (AnyLocal) {
      OS << "  var ";
      bool FirstVar = true;
      for (const auto &V : F->variables()) {
        if (V->isParam())
          continue;
        if (!FirstVar)
          OS << ", ";
        OS << V->getName();
        FirstVar = false;
      }
      OS << ";\n";
    }
    for (const auto &BB : F->blocks()) {
      OS << BB->getName() << ":\n";
      for (const auto &I : BB->instructions()) {
        OS << "  ";
        I->print(OS);
        // Source positions survive printing as trailing comments (the
        // lexer discards them, so print -> parse still round-trips).
        if (I->getLoc().isValid())
          OS << "  // " << I->getLoc().Line << ':' << I->getLoc().Col;
        OS << '\n';
      }
    }
    OS << "}\n";
  }
}
