//===- ir/IRBuilder.h - Convenience construction API ------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent construction helpers for TinyC IR, used by the parser, the random
/// program generator, and library clients building programs in memory.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_IR_IRBUILDER_H
#define USHER_IR_IRBUILDER_H

#include "ir/IR.h"

namespace usher {
namespace ir {

/// Appends instructions to a current insertion block.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  Module &getModule() { return M; }

  /// Sets the block new instructions are appended to.
  void setInsertPoint(BasicBlock *BB) { Insert = BB; }
  BasicBlock *getInsertBlock() const { return Insert; }

  /// Sets the source position stamped on subsequently created
  /// instructions (until changed). The default invalid location marks
  /// synthesized instructions.
  void setCurrentLoc(SourceLoc L) { Loc = L; }
  SourceLoc getCurrentLoc() const { return Loc; }

  /// x = src.
  Instruction *createCopy(Variable *Def, Operand Src) {
    auto I = std::make_unique<CopyInst>(Src);
    I->setDef(Def);
    return append(std::move(I));
  }

  /// x = lhs (op) rhs.
  Instruction *createBinOp(Variable *Def, BinOpcode Op, Operand LHS,
                           Operand RHS) {
    auto I = std::make_unique<BinOpInst>(Op, LHS, RHS);
    I->setDef(Def);
    return append(std::move(I));
  }

  /// x = alloc <region> <fields> <init> [array]; creates the abstract
  /// object as a side effect.
  Instruction *createAlloc(Variable *Def, Region R, unsigned NumFields,
                           bool Initialized, bool IsArray,
                           const std::string &ObjName) {
    MemObject *Obj = M.createObject(ObjName, R, NumFields, Initialized,
                                    IsArray);
    auto I = std::make_unique<AllocInst>(Obj);
    I->setDef(Def);
    Instruction *Result = append(std::move(I));
    Obj->setAllocSite(Result);
    return Result;
  }

  /// x = gep base, index (constant or variable index).
  Instruction *createFieldAddr(Variable *Def, Operand Base, Operand Index) {
    auto I = std::make_unique<FieldAddrInst>(Base, Index);
    I->setDef(Def);
    return append(std::move(I));
  }

  /// x = gep base, k with a constant field index.
  Instruction *createFieldAddr(Variable *Def, Operand Base, unsigned Field) {
    return createFieldAddr(Def, Base,
                           Operand::constant(static_cast<int64_t>(Field)));
  }

  /// x = *p.
  Instruction *createLoad(Variable *Def, Operand Ptr) {
    auto I = std::make_unique<LoadInst>(Ptr);
    I->setDef(Def);
    return append(std::move(I));
  }

  /// *p = v.
  Instruction *createStore(Operand Ptr, Operand Value) {
    return append(std::make_unique<StoreInst>(Ptr, Value));
  }

  /// x = f(args) / f(args).
  Instruction *createCall(Variable *Def, Function *Callee,
                          std::vector<Operand> Args) {
    auto I = std::make_unique<CallInst>(Callee, std::move(Args));
    I->setDef(Def);
    return append(std::move(I));
  }

  /// if c goto T else goto F.
  Instruction *createCondBr(Operand Cond, BasicBlock *TrueBB,
                            BasicBlock *FalseBB) {
    return append(std::make_unique<CondBrInst>(Cond, TrueBB, FalseBB));
  }

  /// goto L.
  Instruction *createGoto(BasicBlock *Target) {
    return append(std::make_unique<GotoInst>(Target));
  }

  /// ret v / ret.
  Instruction *createRet(Operand Value = Operand()) {
    return append(std::make_unique<RetInst>(Value));
  }

private:
  Instruction *append(std::unique_ptr<Instruction> I) {
    assert(Insert && "IRBuilder has no insertion point");
    I->setLoc(Loc);
    return Insert->append(std::move(I));
  }

  Module &M;
  BasicBlock *Insert = nullptr;
  SourceLoc Loc;

};

} // namespace ir
} // namespace usher

#endif // USHER_IR_IRBUILDER_H
