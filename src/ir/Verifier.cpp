//===- ir/Verifier.cpp - TinyC IR well-formedness checks ------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IR.h"
#include "support/RawStream.h"
#include "support/ThreadPool.h"

#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

using namespace usher;
using namespace usher::ir;

namespace {

/// Checks one function. Self-contained — its sets and error list are
/// local, so distinct functions can be checked on distinct pool workers;
/// the caller concatenates the error lists in module function order.
class FunctionChecker {
public:
  explicit FunctionChecker(const Function &F) : F(F) {}

  std::vector<std::string> run();

private:
  void error(const std::string &Msg) { Errors.push_back(Msg); }

  void checkInstruction(const BasicBlock &BB, const Instruction &I,
                        bool IsLast);
  void checkOperand(const Instruction &I, const Operand &Op);

  const Function &F;
  std::vector<std::string> Errors;
  std::unordered_set<const BasicBlock *> FunctionBlocks;
  std::unordered_set<const Variable *> FunctionVars;
};

} // namespace

std::vector<std::string> FunctionChecker::run() {
  if (F.blocks().empty()) {
    error("function '" + F.getName() + "' has no blocks");
    return std::move(Errors);
  }

  for (const auto &BB : F.blocks())
    FunctionBlocks.insert(BB.get());
  for (const auto &V : F.variables())
    FunctionVars.insert(V.get());

  for (const auto &BB : F.blocks()) {
    if (BB->empty()) {
      error("function '" + F.getName() + "': block '" + BB->getName() +
            "' is empty");
      continue;
    }
    if (!BB->getTerminator())
      error("function '" + F.getName() + "': block '" + BB->getName() +
            "' lacks a terminator");
    for (size_t Idx = 0; Idx != BB->size(); ++Idx)
      checkInstruction(*BB, *BB->instructions()[Idx], Idx + 1 == BB->size());
  }
  return std::move(Errors);
}

void FunctionChecker::checkOperand(const Instruction &I, const Operand &Op) {
  if (Op.isVar() && !FunctionVars.count(Op.getVar()))
    error("function '" + F.getName() + "': instruction #" +
          std::to_string(I.getId()) + " uses variable '" +
          Op.getVar()->getName() + "' from another function");
  if (Op.isGlobal() && !Op.getGlobal()->isGlobal())
    error("function '" + F.getName() +
          "': global-address operand names a non-global object");
}

void FunctionChecker::checkInstruction(const BasicBlock &BB,
                                       const Instruction &I, bool IsLast) {
  if (I.isTerminator() && !IsLast)
    error("function '" + F.getName() + "': block '" + BB.getName() +
          "' has a terminator in mid-block");

  std::vector<Operand> Ops;
  I.collectOperands(Ops);
  for (const Operand &Op : Ops)
    checkOperand(I, Op);

  const bool NeedsDef = isa<CopyInst>(&I) || isa<BinOpInst>(&I) ||
                        isa<AllocInst>(&I) || isa<FieldAddrInst>(&I) ||
                        isa<LoadInst>(&I);
  if (NeedsDef && !I.getDef())
    error("function '" + F.getName() + "': value-producing instruction #" +
          std::to_string(I.getId()) + " has no def");
  const bool ForbidsDef = isa<StoreInst>(&I) || isa<CondBrInst>(&I) ||
                          isa<GotoInst>(&I) || isa<RetInst>(&I);
  if (ForbidsDef && I.getDef())
    error("function '" + F.getName() + "': instruction #" +
          std::to_string(I.getId()) + " must not have a def");
  if (I.getDef() && !FunctionVars.count(I.getDef()))
    error("function '" + F.getName() + "': def variable '" +
          I.getDef()->getName() + "' belongs to another function");

  if (const auto *CB = dyn_cast<CondBrInst>(&I)) {
    if (!FunctionBlocks.count(CB->getTrueBB()) ||
        !FunctionBlocks.count(CB->getFalseBB()))
      error("function '" + F.getName() + "': branch target outside function");
  } else if (const auto *G = dyn_cast<GotoInst>(&I)) {
    if (!FunctionBlocks.count(G->getTarget()))
      error("function '" + F.getName() + "': goto target outside function");
  } else if (const auto *C = dyn_cast<CallInst>(&I)) {
    if (!C->getCallee()) {
      error("function '" + F.getName() + "': call with null callee");
    } else if (C->getArgs().size() != C->getCallee()->params().size()) {
      error("function '" + F.getName() + "': call to '" +
            C->getCallee()->getName() + "' passes " +
            std::to_string(C->getArgs().size()) + " args, expected " +
            std::to_string(C->getCallee()->params().size()));
    }
  } else if (const auto *A = dyn_cast<AllocInst>(&I)) {
    if (A->getObject()->isGlobal())
      error("function '" + F.getName() + "': alloc of a global object");
  }
}

bool ir::verifyModule(const Module &M, std::vector<std::string> &Errors,
                      ThreadPool *Pool) {
  const Function *Main = M.findFunction("main");
  if (!Main)
    Errors.push_back("module has no 'main' function");
  else if (!Main->params().empty())
    Errors.push_back("'main' must take no parameters");

  // Each non-global object must have exactly one allocation site.
  std::unordered_map<const MemObject *, unsigned> AllocCounts;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        if (const auto *A = dyn_cast<AllocInst>(I.get()))
          ++AllocCounts[A->getObject()];
  for (const auto &Obj : M.objects()) {
    unsigned N = AllocCounts.count(Obj.get()) ? AllocCounts[Obj.get()] : 0;
    if (Obj->isGlobal()) {
      if (N != 0)
        Errors.push_back("global object '" + Obj->getName() +
                         "' has an alloc site");
    } else if (Obj->getCloneOrigin()) {
      // Heap clones are analysis artifacts and need no syntactic site.
    } else if (N != 1) {
      Errors.push_back("object '" + Obj->getName() + "' has " +
                       std::to_string(N) + " allocation sites (expected 1)");
    }
  }

  std::vector<const Function *> Funcs;
  for (const auto &F : M.functions())
    Funcs.push_back(F.get());
  std::vector<std::vector<std::string>> PerFunc =
      parallelMapOrdered(Pool, Funcs.size(), [&](size_t I) {
        return FunctionChecker(*Funcs[I]).run();
      });
  for (std::vector<std::string> &FE : PerFunc)
    for (std::string &E : FE)
      Errors.push_back(std::move(E));
  return Errors.empty();
}

void ir::verifyModuleOrAbort(const Module &M, ThreadPool *Pool) {
  std::vector<std::string> Errors;
  if (verifyModule(M, Errors, Pool))
    return;
  for (const std::string &E : Errors)
    errs() << "verifier: " << E << '\n';
  std::abort();
}
