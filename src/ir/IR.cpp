//===- ir/IR.cpp - TinyC intermediate representation ----------------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include "support/RawStream.h"

#include <algorithm>
#include <unordered_set>

using namespace usher;
using namespace usher::ir;

const char *ir::binOpcodeSpelling(BinOpcode Op) {
  switch (Op) {
  case BinOpcode::Add:
    return "+";
  case BinOpcode::Sub:
    return "-";
  case BinOpcode::Mul:
    return "*";
  case BinOpcode::Div:
    return "/";
  case BinOpcode::Rem:
    return "%";
  case BinOpcode::And:
    return "&";
  case BinOpcode::Or:
    return "|";
  case BinOpcode::Xor:
    return "^";
  case BinOpcode::Shl:
    return "<<";
  case BinOpcode::Shr:
    return ">>";
  case BinOpcode::CmpEQ:
    return "==";
  case BinOpcode::CmpNE:
    return "!=";
  case BinOpcode::CmpLT:
    return "<";
  case BinOpcode::CmpLE:
    return "<=";
  case BinOpcode::CmpGT:
    return ">";
  case BinOpcode::CmpGE:
    return ">=";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Instruction
//===----------------------------------------------------------------------===//

void Instruction::collectOperands(std::vector<Operand> &Ops) const {
  switch (K) {
  case IKind::Copy:
    Ops.push_back(cast<CopyInst>(this)->getSrc());
    break;
  case IKind::BinOp: {
    const auto *B = cast<BinOpInst>(this);
    Ops.push_back(B->getLHS());
    Ops.push_back(B->getRHS());
    break;
  }
  case IKind::Alloc:
    break;
  case IKind::FieldAddr: {
    const auto *FA = cast<FieldAddrInst>(this);
    Ops.push_back(FA->getBase());
    Ops.push_back(FA->getIndex());
    break;
  }
  case IKind::Load:
    Ops.push_back(cast<LoadInst>(this)->getPtr());
    break;
  case IKind::Store: {
    const auto *S = cast<StoreInst>(this);
    Ops.push_back(S->getPtr());
    Ops.push_back(S->getValue());
    break;
  }
  case IKind::Call:
    for (const Operand &Arg : cast<CallInst>(this)->getArgs())
      Ops.push_back(Arg);
    break;
  case IKind::CondBr:
    Ops.push_back(cast<CondBrInst>(this)->getCond());
    break;
  case IKind::Goto:
    break;
  case IKind::Ret: {
    Operand V = cast<RetInst>(this)->getValue();
    if (!V.isNone())
      Ops.push_back(V);
    break;
  }
  }
}

void Instruction::collectUsedVars(std::vector<Variable *> &Uses) const {
  std::vector<Operand> Ops;
  collectOperands(Ops);
  for (const Operand &Op : Ops)
    if (Op.isVar())
      Uses.push_back(Op.getVar());
}

void Instruction::rewriteOperands(
    const std::function<Operand(Operand)> &Fn) {
  switch (K) {
  case IKind::Copy: {
    auto *C = cast<CopyInst>(this);
    C->setSrc(Fn(C->getSrc()));
    break;
  }
  case IKind::BinOp: {
    auto *B = cast<BinOpInst>(this);
    B->setLHS(Fn(B->getLHS()));
    B->setRHS(Fn(B->getRHS()));
    break;
  }
  case IKind::Alloc:
    break;
  case IKind::FieldAddr: {
    auto *F = cast<FieldAddrInst>(this);
    F->setBase(Fn(F->getBase()));
    F->setIndex(Fn(F->getIndex()));
    break;
  }
  case IKind::Load: {
    auto *L = cast<LoadInst>(this);
    L->setPtr(Fn(L->getPtr()));
    break;
  }
  case IKind::Store: {
    auto *S = cast<StoreInst>(this);
    S->setPtr(Fn(S->getPtr()));
    S->setValue(Fn(S->getValue()));
    break;
  }
  case IKind::Call: {
    auto *C = cast<CallInst>(this);
    for (unsigned I = 0, E = C->getArgs().size(); I != E; ++I)
      C->setArg(I, Fn(C->getArgs()[I]));
    break;
  }
  case IKind::CondBr: {
    auto *B = cast<CondBrInst>(this);
    B->setCond(Fn(B->getCond()));
    break;
  }
  case IKind::Goto:
    break;
  case IKind::Ret: {
    auto *R = cast<RetInst>(this);
    if (!R->getValue().isNone())
      R->setValue(Fn(R->getValue()));
    break;
  }
  }
}

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  assert(I && "appending a null instruction");
  I->setParent(this);
  Insts.push_back(std::move(I));
  return Insts.back().get();
}

Instruction *BasicBlock::insertAt(size_t Idx, std::unique_ptr<Instruction> I) {
  assert(Idx <= Insts.size() && "insertion index out of range");
  I->setParent(this);
  auto It = Insts.insert(Insts.begin() + Idx, std::move(I));
  return It->get();
}

Instruction *BasicBlock::getTerminator() const {
  if (Insts.empty())
    return nullptr;
  Instruction *Last = Insts.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

void BasicBlock::getSuccessors(std::vector<BasicBlock *> &Succs) const {
  Instruction *Term = getTerminator();
  assert(Term && "querying successors of an unterminated block");
  if (auto *CB = dyn_cast<CondBrInst>(Term)) {
    Succs.push_back(CB->getTrueBB());
    if (CB->getFalseBB() != CB->getTrueBB())
      Succs.push_back(CB->getFalseBB());
  } else if (auto *G = dyn_cast<GotoInst>(Term)) {
    Succs.push_back(G->getTarget());
  }
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

Variable *Function::createVariable(const std::string &VarName, bool IsParam) {
  auto V = std::make_unique<Variable>(VarName,
                                      static_cast<unsigned>(Vars.size()), this,
                                      IsParam);
  Vars.push_back(std::move(V));
  Variable *Result = Vars.back().get();
  if (IsParam)
    Params.push_back(Result);
  return Result;
}

BasicBlock *Function::createBlock(const std::string &BlockName) {
  auto BB = std::make_unique<BasicBlock>(
      BlockName, static_cast<unsigned>(Blocks.size()), this);
  Blocks.push_back(std::move(BB));
  return Blocks.back().get();
}

size_t Function::instructionCount() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->size();
  return N;
}

void Function::renumberBlocks() {
  unsigned Id = 0;
  for (auto &BB : Blocks)
    BB->setId(Id++);
}

Variable *Function::findVariable(const std::string &VarName) const {
  for (const auto &V : Vars)
    if (V->getName() == VarName)
      return V.get();
  return nullptr;
}

bool Function::removeUnreachableBlocks() {
  std::unordered_set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work{getEntry()};
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    if (!Reachable.insert(BB).second)
      continue;
    std::vector<BasicBlock *> Succs;
    BB->getSuccessors(Succs);
    for (BasicBlock *S : Succs)
      Work.push_back(S);
  }
  if (Reachable.size() == Blocks.size())
    return false;
  Blocks.erase(std::remove_if(Blocks.begin(), Blocks.end(),
                              [&](const std::unique_ptr<BasicBlock> &BB) {
                                return !Reachable.count(BB.get());
                              }),
               Blocks.end());
  renumberBlocks();
  return true;
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

Function *Module::createFunction(const std::string &FnName) {
  auto F = std::make_unique<Function>(FnName,
                                      static_cast<unsigned>(Funcs.size()),
                                      this);
  Funcs.push_back(std::move(F));
  return Funcs.back().get();
}

MemObject *Module::createObject(const std::string &ObjName, Region R,
                                unsigned NumFields, bool Initialized,
                                bool IsArray) {
  auto Obj = std::make_unique<MemObject>(
      ObjName, static_cast<unsigned>(Objects.size()), R, NumFields,
      Initialized, IsArray);
  Objects.push_back(std::move(Obj));
  return Objects.back().get();
}

Function *Module::findFunction(const std::string &FnName) const {
  for (const auto &F : Funcs)
    if (F->getName() == FnName)
      return F.get();
  return nullptr;
}

MemObject *Module::findGlobal(const std::string &ObjName) const {
  for (const auto &Obj : Objects)
    if (Obj->isGlobal() && Obj->getName() == ObjName)
      return Obj.get();
  return nullptr;
}

void Module::purgeObjects(
    const std::function<bool(const MemObject *)> &ShouldDrop) {
  Objects.erase(std::remove_if(Objects.begin(), Objects.end(),
                               [&](const std::unique_ptr<MemObject> &Obj) {
                                 return ShouldDrop(Obj.get());
                               }),
                Objects.end());
  // Object ids are dense indices; restore the invariant.
  for (size_t Idx = 0; Idx != Objects.size(); ++Idx)
    Objects[Idx]->setId(static_cast<unsigned>(Idx));
}

void Module::renumber() {
  unsigned Id = 0;
  for (auto &F : Funcs) {
    F->renumberBlocks();
    for (auto &BB : F->blocks())
      for (auto &I : BB->instructions())
        I->setId(Id++);
  }
  NumInsts = Id;
}
