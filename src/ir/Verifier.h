//===- ir/Verifier.h - TinyC IR well-formedness checks ----------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks for TinyC modules. Analyses and the
/// interpreter assume a verified module.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_IR_VERIFIER_H
#define USHER_IR_VERIFIER_H

#include <string>
#include <vector>

namespace usher {
class ThreadPool;

namespace ir {

class Module;

/// Checks \p M for structural errors. Returns true if the module is
/// well-formed; otherwise appends one message per problem to \p Errors.
///
/// Checked properties:
///  - every block ends in exactly one terminator, and terminators appear
///    only at block ends;
///  - branch targets belong to the same function;
///  - operands reference variables of the enclosing function;
///  - call argument counts match callee parameter counts;
///  - a `main` function with no parameters exists;
///  - non-global objects have exactly one allocation site, globals none;
///  - value-producing instructions have a def, stores/branches do not.
///
/// With a non-null \p Pool, functions are checked on pool workers (each
/// check reads only its own function) and their error lists are appended
/// in module function order, so the messages are identical to a serial
/// verification.
bool verifyModule(const Module &M, std::vector<std::string> &Errors,
                  ThreadPool *Pool = nullptr);

/// Convenience wrapper: verifies and aborts with the error list on failure.
/// Intended for tests and tools, not library code.
void verifyModuleOrAbort(const Module &M, ThreadPool *Pool = nullptr);

} // namespace ir
} // namespace usher

#endif // USHER_IR_VERIFIER_H
