//===- ir/IR.h - TinyC intermediate representation ---------------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TinyC intermediate representation from Section 2 of the paper,
/// extended with the features its evaluation relies on: field addressing
/// (the LLVM GEP analog required by offset-based field-sensitive pointer
/// analysis), multi-argument calls, arrays, and stack/heap/global allocation
/// regions (the Table 1 statistics distinguish all three).
///
/// Design notes:
///  - Top-level variables (Var_TL) are named slots local to a function and
///    may be assigned more than once; SSA versions are built as an overlay
///    by MemorySSA rather than by rewriting this IR.
///  - Address-taken variables (Var_AT) are MemObjects: one abstract object
///    per allocation site (or per global). They are only accessed through
///    loads and stores via top-level pointers, exactly as in the paper.
///  - Operands are a small value-semantics variant (constant / variable /
///    global address); instructions form a classof-based class hierarchy so
///    the usual isa<>/cast<>/dyn_cast<> idioms apply.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_IR_IR_H
#define USHER_IR_IR_H

#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace usher {

class raw_ostream;

namespace ir {

class BasicBlock;
class Function;
class Instruction;
class Module;

//===----------------------------------------------------------------------===//
// Variables and memory objects
//===----------------------------------------------------------------------===//

/// A top-level variable: directly accessed, function-local, register-like.
class Variable {
public:
  Variable(std::string Name, unsigned Id, Function *Parent, bool IsParam)
      : Name(std::move(Name)), Id(Id), Parent(Parent), IsParam(IsParam) {}

  const std::string &getName() const { return Name; }
  /// Dense id, unique within the owning function.
  unsigned getId() const { return Id; }
  Function *getParent() const { return Parent; }
  /// True if this variable is a formal parameter of its function.
  bool isParam() const { return IsParam; }

private:
  std::string Name;
  unsigned Id;
  Function *Parent;
  bool IsParam;
};

/// Storage class of an abstract memory object.
enum class Region { Stack, Heap, Global };

/// An address-taken variable (an abstract memory object): one per
/// allocation site or per global. Accessed only via loads and stores.
class MemObject {
public:
  MemObject(std::string Name, unsigned Id, Region R, unsigned NumFields,
            bool Initialized, bool IsArray)
      : Name(std::move(Name)), Id(Id), Reg(R), NumFields(NumFields),
        Initialized(Initialized), IsArray(IsArray) {}

  const std::string &getName() const { return Name; }
  /// Renames this object (the program linker prefixes unit symbols).
  void setName(std::string NewName) { Name = std::move(NewName); }
  /// Dense id, unique within the owning module.
  unsigned getId() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }
  Region getRegion() const { return Reg; }
  /// Number of distinct fields; arrays are collapsed to a single field by
  /// the pointer analysis regardless of this count.
  unsigned getNumFields() const { return NumFields; }
  /// True for alloc_T sites (memory defined on allocation) and for globals
  /// declared `init`; false for alloc_F sites.
  bool isInitialized() const { return Initialized; }
  bool isArray() const { return IsArray; }
  bool isGlobal() const { return Reg == Region::Global; }
  bool isHeap() const { return Reg == Region::Heap; }
  bool isStack() const { return Reg == Region::Stack; }

  /// The allocation instruction that creates instances of this object;
  /// null for globals.
  Instruction *getAllocSite() const { return AllocSite; }
  void setAllocSite(Instruction *I) { AllocSite = I; }

  /// Heap cloning support: the object this one was cloned from, or null.
  MemObject *getCloneOrigin() const { return CloneOrigin; }
  void setCloneOrigin(MemObject *O) { CloneOrigin = O; }

private:
  std::string Name;
  unsigned Id;
  Region Reg;
  unsigned NumFields;
  bool Initialized;
  bool IsArray;
  Instruction *AllocSite = nullptr;
  MemObject *CloneOrigin = nullptr;
};

//===----------------------------------------------------------------------===//
// Operands
//===----------------------------------------------------------------------===//

/// A use of a value: an integer constant, a top-level variable, or the
/// address of a global object. Value-semantics; no ownership.
class Operand {
public:
  enum class Kind { None, Const, Var, Global };

  Operand() : K(Kind::None) {}

  static Operand constant(int64_t Value) {
    Operand Op;
    Op.K = Kind::Const;
    Op.Imm = Value;
    return Op;
  }
  static Operand var(Variable *V) {
    assert(V && "null variable operand");
    Operand Op;
    Op.K = Kind::Var;
    Op.Var = V;
    return Op;
  }
  static Operand global(MemObject *G) {
    assert(G && G->isGlobal() && "global operand must name a global object");
    Operand Op;
    Op.K = Kind::Global;
    Op.Glob = G;
    return Op;
  }

  Kind getKind() const { return K; }
  bool isNone() const { return K == Kind::None; }
  bool isConst() const { return K == Kind::Const; }
  bool isVar() const { return K == Kind::Var; }
  bool isGlobal() const { return K == Kind::Global; }

  int64_t getConst() const {
    assert(isConst() && "not a constant operand");
    return Imm;
  }
  Variable *getVar() const {
    assert(isVar() && "not a variable operand");
    return Var;
  }
  MemObject *getGlobal() const {
    assert(isGlobal() && "not a global-address operand");
    return Glob;
  }

private:
  Kind K;
  union {
    int64_t Imm;
    Variable *Var;
    MemObject *Glob;
  };
};

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

/// Binary operators available in TinyC.
enum class BinOpcode {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE
};

/// Returns the spelled operator, e.g. "+" for Add.
const char *binOpcodeSpelling(BinOpcode Op);

/// A source position. Line/column are 1-based; 0 means "unknown" (e.g.
/// synthesized instructions with no surface syntax).
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;
  bool isValid() const { return Line != 0; }
};

/// Base class of all TinyC instructions.
class Instruction {
public:
  enum class IKind {
    Copy,
    BinOp,
    Alloc,
    FieldAddr,
    Load,
    Store,
    Call,
    CondBr,
    Goto,
    Ret
  };

  virtual ~Instruction() = default;

  IKind getKind() const { return K; }
  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  /// Module-unique dense id, assigned by Module::renumber().
  unsigned getId() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }

  /// The top-level variable this instruction defines, or null.
  Variable *getDef() const { return Def; }
  void setDef(Variable *V) { Def = V; }

  /// Source position of the statement this instruction was parsed from;
  /// invalid (0:0) for synthesized instructions.
  SourceLoc getLoc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  /// Appends every variable operand this instruction reads to \p Uses.
  /// Constants and global addresses are not included (they are always
  /// defined values).
  void collectUsedVars(std::vector<Variable *> &Uses) const;

  /// Appends every operand (of any kind) this instruction reads.
  void collectOperands(std::vector<Operand> &Ops) const;

  /// Rewrites every operand in place through \p Fn.
  void rewriteOperands(const std::function<Operand(Operand)> &Fn);

  /// True for block terminators (CondBr, Goto, Ret).
  bool isTerminator() const {
    return K == IKind::CondBr || K == IKind::Goto || K == IKind::Ret;
  }

  /// True for the paper's critical operations (Definition 1): loads,
  /// stores and branches.
  bool isCritical() const {
    return K == IKind::Load || K == IKind::Store || K == IKind::CondBr;
  }

  /// Prints this instruction in parseable TinyC syntax.
  void print(raw_ostream &OS) const;

protected:
  explicit Instruction(IKind K) : K(K) {}

private:
  IKind K;
  BasicBlock *Parent = nullptr;
  Variable *Def = nullptr;
  unsigned Id = ~0u;
  SourceLoc Loc;
};

/// x := n | x := y | x := g   (constant, variable copy, or global address).
class CopyInst : public Instruction {
public:
  explicit CopyInst(Operand Src) : Instruction(IKind::Copy), Src(Src) {}

  Operand getSrc() const { return Src; }
  void setSrc(Operand Op) { Src = Op; }

  static bool classof(const Instruction *I) {
    return I->getKind() == IKind::Copy;
  }

private:
  Operand Src;
};

/// x := a (+) b.
class BinOpInst : public Instruction {
public:
  BinOpInst(BinOpcode Op, Operand LHS, Operand RHS)
      : Instruction(IKind::BinOp), Op(Op), LHS(LHS), RHS(RHS) {}

  BinOpcode getOpcode() const { return Op; }
  Operand getLHS() const { return LHS; }
  Operand getRHS() const { return RHS; }
  void setLHS(Operand O) { LHS = O; }
  void setRHS(Operand O) { RHS = O; }

  static bool classof(const Instruction *I) {
    return I->getKind() == IKind::BinOp;
  }

private:
  BinOpcode Op;
  Operand LHS, RHS;
};

/// x := alloc_T rho / alloc_F rho. Creates a fresh instance of the
/// abstract object at run time and defines x to point at it.
class AllocInst : public Instruction {
public:
  explicit AllocInst(MemObject *Obj) : Instruction(IKind::Alloc), Obj(Obj) {}

  MemObject *getObject() const { return Obj; }

  static bool classof(const Instruction *I) {
    return I->getKind() == IKind::Alloc;
  }

private:
  MemObject *Obj;
};

/// x := gep p, k — address of field k of the object p points to. The
/// index may be a constant or a variable (the analog of an LLVM GEP with
/// a dynamic index; the pointer analysis then conservatively reaches every
/// field of the pointee).
class FieldAddrInst : public Instruction {
public:
  FieldAddrInst(Operand Base, Operand Index)
      : Instruction(IKind::FieldAddr), Base(Base), Index(Index) {}

  Operand getBase() const { return Base; }
  void setBase(Operand O) { Base = O; }
  Operand getIndex() const { return Index; }
  void setIndex(Operand O) { Index = O; }

  /// True if the field index is a compile-time constant.
  bool hasConstIndex() const { return Index.isConst(); }
  /// The constant field index; asserts hasConstIndex().
  unsigned getFieldIdx() const {
    return static_cast<unsigned>(Index.getConst());
  }

  static bool classof(const Instruction *I) {
    return I->getKind() == IKind::FieldAddr;
  }

private:
  Operand Base;
  Operand Index;
};

/// x := *p. A critical operation on p.
class LoadInst : public Instruction {
public:
  explicit LoadInst(Operand Ptr) : Instruction(IKind::Load), Ptr(Ptr) {}

  Operand getPtr() const { return Ptr; }
  void setPtr(Operand O) { Ptr = O; }

  static bool classof(const Instruction *I) {
    return I->getKind() == IKind::Load;
  }

private:
  Operand Ptr;
};

/// *p := v. A critical operation on p.
class StoreInst : public Instruction {
public:
  StoreInst(Operand Ptr, Operand Value)
      : Instruction(IKind::Store), Ptr(Ptr), Val(Value) {}

  Operand getPtr() const { return Ptr; }
  Operand getValue() const { return Val; }
  void setPtr(Operand O) { Ptr = O; }
  void setValue(Operand O) { Val = O; }

  static bool classof(const Instruction *I) {
    return I->getKind() == IKind::Store;
  }

private:
  Operand Ptr, Val;
};

/// x := f(a1, ..., an). Direct calls only (TinyC has no function pointers;
/// the paper inlines functions with function-pointer arguments up front).
class CallInst : public Instruction {
public:
  CallInst(Function *Callee, std::vector<Operand> Args)
      : Instruction(IKind::Call), Callee(Callee), Args(std::move(Args)) {}

  Function *getCallee() const { return Callee; }
  const std::vector<Operand> &getArgs() const { return Args; }
  void setArg(unsigned Idx, Operand O) {
    assert(Idx < Args.size() && "call argument index out of range");
    Args[Idx] = O;
  }

  static bool classof(const Instruction *I) {
    return I->getKind() == IKind::Call;
  }

private:
  Function *Callee;
  std::vector<Operand> Args;
};

/// if c goto T else goto F. A critical operation on c.
class CondBrInst : public Instruction {
public:
  CondBrInst(Operand Cond, BasicBlock *TrueBB, BasicBlock *FalseBB)
      : Instruction(IKind::CondBr), Cond(Cond), TrueBB(TrueBB),
        FalseBB(FalseBB) {}

  Operand getCond() const { return Cond; }
  void setCond(Operand O) { Cond = O; }
  BasicBlock *getTrueBB() const { return TrueBB; }
  BasicBlock *getFalseBB() const { return FalseBB; }
  void setTrueBB(BasicBlock *BB) { TrueBB = BB; }
  void setFalseBB(BasicBlock *BB) { FalseBB = BB; }

  static bool classof(const Instruction *I) {
    return I->getKind() == IKind::CondBr;
  }

private:
  Operand Cond;
  BasicBlock *TrueBB, *FalseBB;
};

/// goto L.
class GotoInst : public Instruction {
public:
  explicit GotoInst(BasicBlock *Target)
      : Instruction(IKind::Goto), Target(Target) {}

  BasicBlock *getTarget() const { return Target; }
  void setTarget(BasicBlock *BB) { Target = BB; }

  static bool classof(const Instruction *I) {
    return I->getKind() == IKind::Goto;
  }

private:
  BasicBlock *Target;
};

/// ret v / ret.
class RetInst : public Instruction {
public:
  explicit RetInst(Operand Value) : Instruction(IKind::Ret), Val(Value) {}

  /// The returned operand; Operand::isNone() for a void return.
  Operand getValue() const { return Val; }
  void setValue(Operand O) { Val = O; }

  static bool classof(const Instruction *I) {
    return I->getKind() == IKind::Ret;
  }

private:
  Operand Val;
};

//===----------------------------------------------------------------------===//
// Basic blocks, functions, module
//===----------------------------------------------------------------------===//

/// A straight-line sequence of instructions ending in a terminator.
class BasicBlock {
public:
  BasicBlock(std::string Name, unsigned Id, Function *Parent)
      : Name(std::move(Name)), Id(Id), Parent(Parent) {}

  const std::string &getName() const { return Name; }
  /// Dense id, unique within the owning function (renumbered on demand).
  unsigned getId() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }
  Function *getParent() const { return Parent; }

  using InstList = std::vector<std::unique_ptr<Instruction>>;
  InstList &instructions() { return Insts; }
  const InstList &instructions() const { return Insts; }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  /// Appends \p I to this block and takes ownership.
  Instruction *append(std::unique_ptr<Instruction> I);

  /// Inserts \p I before position \p Idx and takes ownership.
  Instruction *insertAt(size_t Idx, std::unique_ptr<Instruction> I);

  /// Returns the terminator, or null if the block is unterminated.
  Instruction *getTerminator() const;

  /// Appends this block's CFG successors to \p Succs (empty for returns).
  void getSuccessors(std::vector<BasicBlock *> &Succs) const;

private:
  std::string Name;
  unsigned Id;
  Function *Parent;
  InstList Insts;
};

/// A TinyC function: formal parameters, local variables, basic blocks.
class Function {
public:
  Function(std::string Name, unsigned Id, Module *Parent)
      : Name(std::move(Name)), Id(Id), Parent(Parent) {}

  const std::string &getName() const { return Name; }
  /// Renames this function (the program linker prefixes unit symbols).
  void setName(std::string NewName) { Name = std::move(NewName); }
  unsigned getId() const { return Id; }
  Module *getParent() const { return Parent; }

  /// Creates a new top-level variable owned by this function.
  Variable *createVariable(const std::string &Name, bool IsParam = false);

  /// Creates a new basic block owned by this function.
  BasicBlock *createBlock(const std::string &Name);

  const std::vector<std::unique_ptr<Variable>> &variables() const {
    return Vars;
  }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  std::vector<std::unique_ptr<BasicBlock>> &blocks() { return Blocks; }

  const std::vector<Variable *> &params() const { return Params; }

  BasicBlock *getEntry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  /// Number of instructions across all blocks.
  size_t instructionCount() const;

  /// Reassigns dense block ids in layout order.
  void renumberBlocks();

  /// Looks up a variable by name; returns null if absent.
  Variable *findVariable(const std::string &Name) const;

  /// Removes blocks unreachable from the entry. Returns true on change.
  bool removeUnreachableBlocks();

private:
  std::string Name;
  unsigned Id;
  Module *Parent;
  std::vector<std::unique_ptr<Variable>> Vars;
  std::vector<Variable *> Params;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

/// A whole TinyC program: functions plus global memory objects.
class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  /// Creates a new function owned by this module.
  Function *createFunction(const std::string &Name);

  /// Creates a new abstract memory object owned by this module.
  MemObject *createObject(const std::string &Name, Region R,
                          unsigned NumFields, bool Initialized, bool IsArray);

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }
  const std::vector<std::unique_ptr<MemObject>> &objects() const {
    return Objects;
  }

  /// Looks up a function by name; returns null if absent.
  Function *findFunction(const std::string &Name) const;

  /// Looks up a global object by name; returns null if absent.
  MemObject *findGlobal(const std::string &Name) const;

  /// Assigns module-unique dense ids to every instruction, in layout
  /// order. Analyses key their side tables on these ids.
  void renumber();

  /// Removes the given objects (e.g. after mem2reg promotion) and
  /// renumbers the remaining objects' ids. The caller guarantees no
  /// instruction references a removed object.
  void purgeObjects(const std::function<bool(const MemObject *)> &ShouldDrop);

  /// Total number of instructions in the module (valid after renumber()).
  unsigned instructionCount() const { return NumInsts; }

  /// Prints the whole module in parseable TinyC syntax.
  void print(raw_ostream &OS) const;

private:
  std::vector<std::unique_ptr<Function>> Funcs;
  std::vector<std::unique_ptr<MemObject>> Objects;
  unsigned NumInsts = 0;
};

} // namespace ir
} // namespace usher

#endif // USHER_IR_IR_H
