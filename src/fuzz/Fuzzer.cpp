//===- fuzz/Fuzzer.cpp - Coverage-guided differential fuzzing -------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "ir/IR.h"
#include "support/RNG.h"
#include "support/RawStream.h"

#include <string>
#include <vector>

using namespace usher;
using namespace usher::fuzz;

namespace {

std::string printModule(const ir::Module &M) {
  std::string Buf;
  raw_string_ostream OS(Buf);
  M.print(OS);
  return Buf;
}

unsigned countLines(const std::string &S) {
  unsigned N = 0;
  for (char C : S)
    N += C == '\n';
  return N;
}

/// Oracle configuration that re-checks only \p K — the reducer's
/// predicate must preserve the *same kind* of divergence, and skipping
/// the other oracles makes each predicate call several times cheaper.
OracleOptions onlyOracle(OracleKind K, const OracleOptions &Base) {
  OracleOptions Only;
  Only.MaxSteps = Base.MaxSteps;
  Only.CheckVariants = K == OracleKind::VariantEquivalence;
  Only.CheckSolver = K == OracleKind::SolverEquivalence;
  Only.CheckDiagnosis = K == OracleKind::DiagnosisSoundness;
  Only.CheckDegradation = K == OracleKind::DegradationSoundness;
  return Only;
}

void jsonEscape(raw_ostream &OS, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        OS.printf("\\u%04x", static_cast<unsigned>(C));
      else
        OS << C;
    }
  }
}

} // namespace

FuzzReport fuzz::runFuzzer(const FuzzOptions &Opts) {
  RNG Rng(Opts.Seed);
  CoverageMap Cov;
  std::vector<std::string> Corpus;
  FuzzReport Rep;
  Rep.Seed = Opts.Seed;
  Rep.Runs = Opts.Runs;

  for (unsigned Run = 0; Run != Opts.Runs; ++Run) {
    // -- Schedule the next input ----------------------------------------
    std::string Source;
    unsigned Choice =
        Corpus.empty() ? 0 : static_cast<unsigned>(Rng.below(100));
    if (Corpus.empty() || Choice < 30) {
      Source = printModule(*workload::generateProgram(Rng.next(), Opts.Gen));
      ++Rep.NumGenerated;
    } else if (Choice < 65) {
      Source = workload::mutateProgram(Corpus[Rng.below(Corpus.size())],
                                       Rng.next());
      ++Rep.NumMutated;
    } else if (Choice < 85) {
      const std::string &Recv = Corpus[Rng.below(Corpus.size())];
      const std::string &Donor = Corpus[Rng.below(Corpus.size())];
      Source = workload::spliceProgram(Recv, Donor, Rng.next());
      ++Rep.NumSpliced;
    } else {
      Source = workload::wrapMainInCall(Corpus[Rng.below(Corpus.size())]);
      ++Rep.NumWrapped;
    }

    // -- Evaluate the oracles -------------------------------------------
    OracleOutcome Out = runOracles(Source, Opts.Oracle);
    for (unsigned K = 0; K != NumOracleKinds; ++K)
      Rep.OracleChecked[K] += Out.Checked[K] ? 1 : 0;
    if (!Out.Valid) {
      ++Rep.NumInvalid;
      continue;
    }
    ++Rep.NumValid;

    // -- Coverage feedback ----------------------------------------------
    if (Cov.addAll(Out.Features) > 0) {
      Corpus.push_back(Source);
      if (Corpus.size() > Opts.MaxCorpus)
        Corpus.erase(Corpus.begin());
    }

    // -- Divergences: tally, then minimize the first one ----------------
    if (Out.Divergences.empty())
      continue;
    for (const Divergence &D : Out.Divergences)
      ++Rep.OracleDiverged[static_cast<unsigned>(D.Oracle)];
    if (Rep.Divergences.size() >= Opts.MaxDivergences)
      continue;

    const Divergence &D0 = Out.Divergences.front();
    DivergenceRecord Rec;
    Rec.Oracle = D0.Oracle;
    Rec.Detail = D0.Detail;
    Rec.Run = Run;
    Rec.Source = Source;
    Rec.OriginalLines = countLines(Source);
    Rec.Reduced = Source;
    if (Opts.Reduce) {
      OracleOptions Only = onlyOracle(D0.Oracle, Opts.Oracle);
      Predicate StillDiverges = [&Only](const std::string &S) {
        OracleOutcome O = runOracles(S, Only);
        return O.Valid && !O.Divergences.empty();
      };
      ReduceResult RR = reduceProgram(Source, StillDiverges, Opts.Reducer);
      Rec.Reduced = std::move(RR.Source);
      Rec.ReduceChecks = RR.NumChecks;
    }
    Rec.ReducedLines = countLines(Rec.Reduced);
    Rep.Divergences.push_back(std::move(Rec));
  }

  Rep.CorpusSize = static_cast<unsigned>(Corpus.size());
  Rep.CoverageKeys = Cov.size();
  return Rep;
}

void FuzzReport::printJson(raw_ostream &OS) const {
  OS << "{\n";
  OS << "  \"schema\": \"usher-fuzz-v1\",\n";
  OS << "  \"seed\": " << Seed << ",\n";
  OS << "  \"runs\": " << Runs << ",\n";
  OS << "  \"valid\": " << NumValid << ",\n";
  OS << "  \"invalid\": " << NumInvalid << ",\n";
  OS << "  \"scheduled\": {\"generated\": " << NumGenerated
     << ", \"mutated\": " << NumMutated << ", \"spliced\": " << NumSpliced
     << ", \"wrapped\": " << NumWrapped << "},\n";
  OS << "  \"corpus_size\": " << CorpusSize << ",\n";
  OS << "  \"coverage_keys\": " << CoverageKeys << ",\n";
  OS << "  \"oracles\": [\n";
  for (unsigned K = 0; K != NumOracleKinds; ++K) {
    OS << "    {\"oracle\": \"" << oracleKindName(static_cast<OracleKind>(K))
       << "\", \"checked\": " << OracleChecked[K]
       << ", \"divergences\": " << OracleDiverged[K] << "}"
       << (K + 1 != NumOracleKinds ? "," : "") << "\n";
  }
  OS << "  ],\n";
  OS << "  \"divergences\": [";
  for (size_t I = 0; I != Divergences.size(); ++I) {
    const DivergenceRecord &D = Divergences[I];
    OS << (I ? ",\n    {" : "\n    {");
    OS << "\"oracle\": \"" << oracleKindName(D.Oracle) << "\", ";
    OS << "\"run\": " << D.Run << ", ";
    OS << "\"original_lines\": " << D.OriginalLines << ", ";
    OS << "\"reduced_lines\": " << D.ReducedLines << ", ";
    OS << "\"reduce_checks\": " << D.ReduceChecks << ", ";
    OS << "\"detail\": \"";
    jsonEscape(OS, D.Detail);
    OS << "\", \"reduced_source\": \"";
    jsonEscape(OS, D.Reduced);
    OS << "\"}";
  }
  OS << (Divergences.empty() ? "]\n" : "\n  ]\n");
  OS << "}\n";
}
