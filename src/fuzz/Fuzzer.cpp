//===- fuzz/Fuzzer.cpp - Coverage-guided differential fuzzing -------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "ir/IR.h"
#include "support/RNG.h"
#include "support/RawStream.h"
#include "support/ThreadPool.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

using namespace usher;
using namespace usher::fuzz;

namespace {

std::string printModule(const ir::Module &M) {
  std::string Buf;
  raw_string_ostream OS(Buf);
  M.print(OS);
  return Buf;
}

unsigned countLines(const std::string &S) {
  unsigned N = 0;
  for (char C : S)
    N += C == '\n';
  return N;
}

/// Oracle configuration that re-checks only \p K — the reducer's
/// predicate must preserve the *same kind* of divergence, and skipping
/// the other oracles makes each predicate call several times cheaper.
OracleOptions onlyOracle(OracleKind K, const OracleOptions &Base) {
  OracleOptions Only;
  Only.MaxSteps = Base.MaxSteps;
  Only.CheckVariants = K == OracleKind::VariantEquivalence;
  Only.CheckSolver = K == OracleKind::SolverEquivalence;
  Only.CheckDiagnosis = K == OracleKind::DiagnosisSoundness;
  Only.CheckDegradation = K == OracleKind::DegradationSoundness;
  Only.CheckServe = K == OracleKind::ServeEquivalence;
  Only.CheckSummary = K == OracleKind::SummaryEquivalence;
  Only.CheckQuery = K == OracleKind::QueryEquivalence;
  Only.CheckClients = K == OracleKind::ClientConsistency;
  return Only;
}

void jsonEscape(raw_ostream &OS, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        OS.printf("\\u%04x", static_cast<unsigned>(C));
      else
        OS << C;
    }
  }
}

/// How one campaign round obtained its input.
enum class SchedKind { Generated, Mutated, Spliced, Wrapped };

/// Draws the next input exactly as the serial campaign loop always has:
/// the branch taken and the number of RNG draws are a function of the RNG
/// state and whether the corpus is empty, so running this against a
/// cloned RNG and a corpus snapshot *predicts* the schedule, and running
/// it against the authoritative RNG/corpus *is* the schedule.
static std::pair<std::string, SchedKind>
scheduleOne(RNG &Rng, const std::vector<std::string> &Corpus,
            const workload::GeneratorOptions &Gen) {
  unsigned Choice = Corpus.empty() ? 0 : static_cast<unsigned>(Rng.below(100));
  if (Corpus.empty() || Choice < 30)
    return {printModule(*workload::generateProgram(Rng.next(), Gen)),
            SchedKind::Generated};
  if (Choice < 65)
    return {workload::mutateProgram(Corpus[Rng.below(Corpus.size())],
                                    Rng.next()),
            SchedKind::Mutated};
  if (Choice < 85) {
    const std::string &Recv = Corpus[Rng.below(Corpus.size())];
    const std::string &Donor = Corpus[Rng.below(Corpus.size())];
    return {workload::spliceProgram(Recv, Donor, Rng.next()),
            SchedKind::Spliced};
  }
  return {workload::wrapMainInCall(Corpus[Rng.below(Corpus.size())]),
          SchedKind::Wrapped};
}

} // namespace

FuzzReport fuzz::runFuzzer(const FuzzOptions &Opts) {
  RNG Rng(Opts.Seed);
  CoverageMap Cov;
  std::vector<std::string> Corpus;
  // Synthesized corpus seeds go in before round 0, on the main thread:
  // the first scheduling draw already sees a non-empty corpus, and the
  // speculative parallel path predicts against exactly the same state.
  for (unsigned I = 0; I != Opts.SeedCorpusSynth; ++I) {
    workload::ShapeSpec Shape = Opts.SynthShape;
    Shape.Seed = Opts.Seed + I;
    Corpus.push_back(workload::synthesizeProgram(Shape));
    if (Corpus.size() > Opts.MaxCorpus)
      Corpus.erase(Corpus.begin());
  }
  FuzzReport Rep;
  Rep.Seed = Opts.Seed;
  Rep.Runs = Opts.Runs;

  unsigned Jobs = Opts.Jobs == 0 ? ThreadPool::defaultJobs() : Opts.Jobs;
  std::unique_ptr<ThreadPool> Pool;
  if (Jobs > 1 && Opts.Runs > 1)
    Pool = std::make_unique<ThreadPool>(Jobs);

  // Applies one round's outcome to the campaign state. This — like the
  // scheduling itself — always runs on the main thread, in run order:
  // parallelism only ever memoizes runOracles results.
  auto Apply = [&](unsigned Run, const std::string &Source, SchedKind K,
                   OracleOutcome &&Out) {
    switch (K) {
    case SchedKind::Generated:
      ++Rep.NumGenerated;
      break;
    case SchedKind::Mutated:
      ++Rep.NumMutated;
      break;
    case SchedKind::Spliced:
      ++Rep.NumSpliced;
      break;
    case SchedKind::Wrapped:
      ++Rep.NumWrapped;
      break;
    }
    for (unsigned OK = 0; OK != NumOracleKinds; ++OK)
      Rep.OracleChecked[OK] += Out.Checked[OK] ? 1 : 0;
    if (!Out.Valid) {
      ++Rep.NumInvalid;
      return;
    }
    ++Rep.NumValid;

    // -- Coverage feedback ----------------------------------------------
    if (Cov.addAll(Out.Features) > 0) {
      Corpus.push_back(Source);
      if (Corpus.size() > Opts.MaxCorpus)
        Corpus.erase(Corpus.begin());
    }

    // -- Divergences: tally, then minimize the first one ----------------
    if (Out.Divergences.empty())
      return;
    for (const Divergence &D : Out.Divergences)
      ++Rep.OracleDiverged[static_cast<unsigned>(D.Oracle)];
    if (Rep.Divergences.size() >= Opts.MaxDivergences)
      return;

    const Divergence &D0 = Out.Divergences.front();
    DivergenceRecord Rec;
    Rec.Oracle = D0.Oracle;
    Rec.Detail = D0.Detail;
    Rec.Run = Run;
    Rec.Source = Source;
    Rec.OriginalLines = countLines(Source);
    Rec.Reduced = Source;
    if (Opts.Reduce) {
      OracleOptions Only = onlyOracle(D0.Oracle, Opts.Oracle);
      Predicate StillDiverges = [&Only](const std::string &S) {
        OracleOutcome O = runOracles(S, Only);
        return O.Valid && !O.Divergences.empty();
      };
      ReduceResult RR = reduceProgram(Source, StillDiverges, Opts.Reducer);
      Rec.Reduced = std::move(RR.Source);
      Rec.ReduceChecks = RR.NumChecks;
    }
    Rec.ReducedLines = countLines(Rec.Reduced);
    Rep.Divergences.push_back(std::move(Rec));
  };

  auto Stopped = [&Opts, &Rep] {
    if (Opts.Stop && Opts.Stop->load(std::memory_order_relaxed)) {
      Rep.Interrupted = true;
      return true;
    }
    return false;
  };
  unsigned Completed = 0;

  if (!Pool) {
    for (unsigned Run = 0; Run != Opts.Runs && !Stopped(); ++Run) {
      auto [Source, K] = scheduleOne(Rng, Corpus, Opts.Gen);
      Apply(Run, Source, K, runOracles(Source, Opts.Oracle));
      Completed = Run + 1;
    }
  } else {
    // Speculative sharding. Predict a window of inputs from a cloned RNG
    // against the current corpus, evaluate the oracles (a pure function
    // of the program text) on the pool, then replay the window serially
    // from the authoritative RNG: a replayed input byte-equal to its
    // prediction reuses the precomputed outcome; a mismatch (the corpus
    // changed mid-window) is evaluated inline and ends the window so the
    // next one speculates against the updated corpus. Every decision the
    // report can observe is made by the replay, which is exactly the
    // serial loop above.
    const unsigned Window = Pool->numThreads() * 2;
    unsigned Run = 0;
    std::vector<std::string> SpecSources;
    // Interruption is checked at window boundaries: completed rounds are
    // whole rounds either way, so the partial report stays consistent.
    while (Run != Opts.Runs && !Stopped()) {
      unsigned W = std::min(Window, Opts.Runs - Run);
      RNG SpecRng = Rng;
      SpecSources.clear();
      for (unsigned I = 0; I != W; ++I)
        SpecSources.push_back(scheduleOne(SpecRng, Corpus, Opts.Gen).first);
      std::vector<OracleOutcome> SpecOuts =
          parallelMapOrdered(Pool.get(), W, [&](size_t I) {
            return runOracles(SpecSources[I], Opts.Oracle);
          });
      for (unsigned I = 0; I != W; ++I) {
        auto [Source, K] = scheduleOne(Rng, Corpus, Opts.Gen);
        bool Hit = Source == SpecSources[I];
        OracleOutcome Out =
            Hit ? std::move(SpecOuts[I]) : runOracles(Source, Opts.Oracle);
        Apply(Run, Source, K, std::move(Out));
        ++Run;
        if (!Hit)
          break;
      }
    }
    Completed = Run;
  }

  Rep.Runs = Completed;
  Rep.CorpusSize = static_cast<unsigned>(Corpus.size());
  Rep.CoverageKeys = Cov.size();
  return Rep;
}

void FuzzReport::printJson(raw_ostream &OS) const {
  OS << "{\n";
  OS << "  \"schema\": \"usher-fuzz-v1\",\n";
  OS << "  \"seed\": " << Seed << ",\n";
  OS << "  \"runs\": " << Runs << ",\n";
  OS << "  \"interrupted\": " << (Interrupted ? "true" : "false") << ",\n";
  OS << "  \"valid\": " << NumValid << ",\n";
  OS << "  \"invalid\": " << NumInvalid << ",\n";
  OS << "  \"scheduled\": {\"generated\": " << NumGenerated
     << ", \"mutated\": " << NumMutated << ", \"spliced\": " << NumSpliced
     << ", \"wrapped\": " << NumWrapped << "},\n";
  OS << "  \"corpus_size\": " << CorpusSize << ",\n";
  OS << "  \"coverage_keys\": " << CoverageKeys << ",\n";
  OS << "  \"oracles\": [\n";
  for (unsigned K = 0; K != NumOracleKinds; ++K) {
    OS << "    {\"oracle\": \"" << oracleKindName(static_cast<OracleKind>(K))
       << "\", \"checked\": " << OracleChecked[K]
       << ", \"divergences\": " << OracleDiverged[K] << "}"
       << (K + 1 != NumOracleKinds ? "," : "") << "\n";
  }
  OS << "  ],\n";
  OS << "  \"divergences\": [";
  for (size_t I = 0; I != Divergences.size(); ++I) {
    const DivergenceRecord &D = Divergences[I];
    OS << (I ? ",\n    {" : "\n    {");
    OS << "\"oracle\": \"" << oracleKindName(D.Oracle) << "\", ";
    OS << "\"run\": " << D.Run << ", ";
    OS << "\"original_lines\": " << D.OriginalLines << ", ";
    OS << "\"reduced_lines\": " << D.ReducedLines << ", ";
    OS << "\"reduce_checks\": " << D.ReduceChecks << ", ";
    OS << "\"detail\": \"";
    jsonEscape(OS, D.Detail);
    OS << "\", \"reduced_source\": \"";
    jsonEscape(OS, D.Reduced);
    OS << "\"}";
  }
  OS << (Divergences.empty() ? "]\n" : "\n  ]\n");
  OS << "}\n";
}
