//===- fuzz/Oracles.cpp - Differential oracles over one program -----------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracles.h"

#include "analysis/CallGraph.h"
#include "analysis/DemandVFA.h"
#include "analysis/PointerAnalysis.h"
#include "analysis/SummaryEngine.h"
#include "core/ContextStack.h"
#include "core/StaticDiagnosis.h"
#include "core/Usher.h"
#include "ir/IR.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "serve/Protocol.h"
#include "serve/Session.h"

#include <map>
#include <set>
#include <string>

using namespace usher;
using namespace usher::fuzz;
using analysis::CallGraph;
using analysis::PointerAnalysis;
using analysis::PtaOptions;
using analysis::SolverKind;
using core::ToolVariant;
using runtime::ExecLimits;
using runtime::ExecutionReport;
using runtime::ExitReason;
using runtime::Interpreter;

const char *fuzz::oracleKindName(OracleKind K) {
  switch (K) {
  case OracleKind::VariantEquivalence:
    return "variant-equivalence";
  case OracleKind::SolverEquivalence:
    return "solver-equivalence";
  case OracleKind::DiagnosisSoundness:
    return "diagnosis-soundness";
  case OracleKind::DegradationSoundness:
    return "degradation-soundness";
  case OracleKind::ServeEquivalence:
    return "serve-equivalence";
  case OracleKind::SummaryEquivalence:
    return "summary-equivalence";
  case OracleKind::QueryEquivalence:
    return "query-equivalence";
  case OracleKind::ClientConsistency:
    return "client-consistency";
  }
  return "unknown";
}

namespace {

/// Warning sets are compared by instruction id: renumbering makes ids
/// stable across parses of the same text, while instruction pointers are
/// only meaningful within one module.
std::set<uint32_t> warnIds(const std::vector<runtime::Warning> &Ws) {
  std::set<uint32_t> S;
  for (const runtime::Warning &W : Ws)
    S.insert(W.At->getId());
  return S;
}

std::string describeSetDiff(const std::set<uint32_t> &Tool,
                            const std::set<uint32_t> &Oracle) {
  for (uint32_t Id : Oracle)
    if (!Tool.count(Id))
      return "missed warning at inst#" + std::to_string(Id);
  for (uint32_t Id : Tool)
    if (!Oracle.count(Id))
      return "extra warning at inst#" + std::to_string(Id);
  return "";
}

/// Exact-match semantics for MSan/TL/TLAT/OptI rungs; Opt II may only
/// suppress dominated duplicates (subset, non-empty iff). Returns "" when
/// the guarantee holds.
std::string checkWarnings(ToolVariant V, const std::set<uint32_t> &Tool,
                          const std::set<uint32_t> &Oracle) {
  if (V != ToolVariant::UsherFull) {
    if (Tool != Oracle)
      return describeSetDiff(Tool, Oracle);
    return "";
  }
  for (uint32_t Id : Tool)
    if (!Oracle.count(Id))
      return "false positive at inst#" + std::to_string(Id);
  if (Tool.empty() != Oracle.empty())
    return Tool.empty() ? "Opt II hid all real defects" : "";
  return "";
}

/// Every pipeline run gets a fresh module: heap cloning mutates modules,
/// so sharing one across engines or variants would contaminate results.
std::unique_ptr<ir::Module> parseFresh(const std::string &Source) {
  parser::ParseResult PR = parser::parseModule(Source);
  return PR.succeeded() ? std::move(PR.M) : nullptr;
}

/// Loc-id-independent rendering of one variable's points-to set.
std::set<std::string> ptsNames(const PointerAnalysis &PA,
                               const ir::Variable *V) {
  std::set<std::string> S;
  for (uint32_t LocId : PA.pointsTo(V)) {
    const analysis::PtLoc &L = PA.location(LocId);
    S.insert(L.Obj->getName() + "#" + std::to_string(L.Field));
  }
  return S;
}

struct VariantSemantics {
  ToolVariant V;
  const char *Name;
};

const VariantSemantics AllVariants[] = {
    {ToolVariant::MSanFull, "MSAN"},
    {ToolVariant::UsherTL, "USHER-TL"},
    {ToolVariant::UsherTLAT, "USHER-TL+AT"},
    {ToolVariant::UsherOptI, "USHER-OPTI"},
    {ToolVariant::UsherFull, "USHER"},
};

} // namespace

OracleOutcome fuzz::runOracles(const std::string &Source,
                               const OracleOptions &Opts) {
  OracleOutcome Out;

  // -- Validity gate: parse, verify, run natively to completion ----------
  parser::ParseResult PR = parser::parseModule(Source);
  if (!PR.succeeded()) {
    Out.InvalidReason =
        "parse: " + (PR.Errors.empty() ? std::string("unknown error")
                                       : PR.Errors.front());
    return Out;
  }
  std::vector<std::string> VErrors;
  if (!ir::verifyModule(*PR.M, VErrors)) {
    Out.InvalidReason = "verify: " + VErrors.front();
    return Out;
  }

  ExecLimits NativeLimits;
  NativeLimits.MaxSteps = Opts.MaxSteps;
  NativeLimits.CollectCoverage = true;
  ExecutionReport Native =
      Interpreter(*PR.M, nullptr, runtime::CostModel(), NativeLimits).run();
  if (Native.Reason != ExitReason::Finished) {
    Out.InvalidReason = Native.Reason == ExitReason::Trap
                            ? "trap: " + Native.TrapMessage
                            : "step limit exceeded";
    return Out;
  }
  Out.Valid = true;
  Out.MainResult = Native.MainResult;
  Out.NumOracleWarnings = Native.OracleWarnings.size();
  const std::set<uint32_t> Oracle = warnIds(Native.OracleWarnings);

  // -- Interpreter edge coverage -----------------------------------------
  for (const auto &[Key, Hits] : Native.EdgeHits)
    Out.Features.add(FeatureDomain::Edge, (Key << 4) | countBucket(Hits));
  Out.Features.add(FeatureDomain::FrameDepth, Native.MaxFrameDepth);
  Out.Features.add(FeatureDomain::Warnings, countBucket(Oracle.size()));

  ExecLimits ToolLimits;
  ToolLimits.MaxSteps = Opts.MaxSteps;

  auto Diverge = [&Out](OracleKind K, std::string Detail) {
    Out.Divergences.push_back({K, std::move(Detail)});
  };

  // -- Oracle 1: variant equivalence vs the shadow interpreter -----------
  if (Opts.CheckVariants) {
    Out.Checked[static_cast<unsigned>(OracleKind::VariantEquivalence)] = true;
    for (const VariantSemantics &VS : AllVariants) {
      auto M = parseFresh(Source);
      core::UsherOptions UOpts;
      UOpts.Variant = VS.V;
      core::UsherResult R = core::runUsher(*M, UOpts);
      ExecutionReport Rep =
          Interpreter(*M, &R.Plan, runtime::CostModel(), ToolLimits).run();
      if (Rep.Reason != ExitReason::Finished) {
        Diverge(OracleKind::VariantEquivalence,
                std::string(VS.Name) + ": instrumented run did not finish (" +
                    Rep.TrapMessage + ")");
        continue;
      }
      if (Rep.MainResult != Native.MainResult)
        Diverge(OracleKind::VariantEquivalence,
                std::string(VS.Name) + ": instrumentation changed main's "
                                       "result");
      std::string Err = checkWarnings(VS.V, warnIds(Rep.ToolWarnings), Oracle);
      if (!Err.empty())
        Diverge(OracleKind::VariantEquivalence,
                std::string(VS.Name) + ": " + Err);

      // Analysis-feature coverage comes from the full pipeline run.
      if (VS.V == ToolVariant::UsherFull && R.G) {
        uint32_t Mask = R.G->originMask();
        for (unsigned Bit = 0; Bit != 32; ++Bit)
          if (Mask & (1u << Bit))
            Out.Features.add(FeatureDomain::Origin, Bit);
        if (R.G->numStrongStoreChis())
          Out.Features.add(FeatureDomain::StoreKind, 0);
        if (R.G->numSemiStrongStoreChis())
          Out.Features.add(FeatureDomain::StoreKind, 1);
        if (R.G->numWeakStoreChis())
          Out.Features.add(FeatureDomain::StoreKind, 2);
        Out.Features.add(FeatureDomain::OptCounter,
                         (uint64_t(0) << 8) |
                             countBucket(R.Stats.NumSimplifiedMFCs));
        Out.Features.add(FeatureDomain::OptCounter,
                         (uint64_t(1) << 8) |
                             countBucket(R.Stats.NumRedirectedNodes));
        Out.Features.add(FeatureDomain::Rung,
                         static_cast<uint64_t>(R.Degradation.Rung));
      }
    }
  }

  // -- Oracle 2: fast vs naive constraint solver -------------------------
  if (Opts.CheckSolver) {
    Out.Checked[static_cast<unsigned>(OracleKind::SolverEquivalence)] = true;
    auto MOpt = parseFresh(Source);
    auto MRef = parseFresh(Source);
    CallGraph CGOpt(*MOpt);
    PtaOptions POpt;
    POpt.Solver = SolverKind::Optimized;
    PointerAnalysis PAOpt(*MOpt, CGOpt, POpt);
    CallGraph CGRef(*MRef);
    PtaOptions PRef;
    PRef.Solver = SolverKind::NaiveReference;
    PointerAnalysis PARef(*MRef, CGRef, PRef);
    if (PAOpt.exhausted() || PARef.exhausted()) {
      Diverge(OracleKind::SolverEquivalence,
              "solver exhausted without a budget configured");
    } else if (PAOpt.numLocations() != PARef.numLocations()) {
      Diverge(OracleKind::SolverEquivalence,
              "location count mismatch: optimized " +
                  std::to_string(PAOpt.numLocations()) + " vs naive " +
                  std::to_string(PARef.numLocations()));
    } else {
      for (const auto &FOpt : MOpt->functions()) {
        const ir::Function *FRef = MRef->findFunction(FOpt->getName());
        for (const auto &V : FOpt->variables()) {
          const ir::Variable *VRef = FRef->findVariable(V->getName());
          if (ptsNames(PAOpt, V.get()) != ptsNames(PARef, VRef)) {
            Diverge(OracleKind::SolverEquivalence,
                    "points-to mismatch for " + FOpt->getName() +
                        "::" + V->getName());
            break;
          }
        }
      }
    }

    // Per-rung warning guarantees with the naive solver underneath. The
    // optimized side already holds these via oracle 1, so agreement with
    // the oracle here implies fast/naive warning equality per rung.
    for (const VariantSemantics &VS : AllVariants) {
      auto M = parseFresh(Source);
      core::UsherOptions UOpts;
      UOpts.Variant = VS.V;
      UOpts.Pta.Solver = SolverKind::NaiveReference;
      core::UsherResult R = core::runUsher(*M, UOpts);
      ExecutionReport Rep =
          Interpreter(*M, &R.Plan, runtime::CostModel(), ToolLimits).run();
      if (Rep.Reason != ExitReason::Finished) {
        Diverge(OracleKind::SolverEquivalence,
                std::string(VS.Name) +
                    " (naive): instrumented run did not finish");
        continue;
      }
      std::string Err = checkWarnings(VS.V, warnIds(Rep.ToolWarnings), Oracle);
      if (!Err.empty())
        Diverge(OracleKind::SolverEquivalence,
                std::string(VS.Name) + " (naive): " + Err);
    }
  }

  // -- Oracle 3: static diagnosis soundness and must-precision -----------
  if (Opts.CheckDiagnosis) {
    Out.Checked[static_cast<unsigned>(OracleKind::DiagnosisSoundness)] = true;
    auto M = parseFresh(Source);
    core::UsherOptions UOpts;
    UOpts.Variant = ToolVariant::UsherFull;
    core::UsherResult R = core::runUsher(*M, UOpts);
    // Conservative posture: no anchor hypotheses, so DEFINITE provably
    // fires on every terminating run — required on arbitrary mutants,
    // which need not exercise both directions of every branch.
    core::DiagnosisOptions DOpts;
    DOpts.AnchorPhis = false;
    DOpts.AnchorCallFlows = false;
    DOpts.AnchorExactAllocChis = false;
    DOpts.AssumeFunctionCoverage = false;
    core::StaticDiagnosis Diag(*R.PA, *R.CG, *R.G, DOpts);

    std::map<uint32_t, core::Verdict> ByInst;
    const auto &Uses = R.G->criticalUses();
    const auto &Vs = Diag.report().UseVerdicts;
    for (size_t Idx = 0; Idx != Uses.size(); ++Idx) {
      auto [It, New] = ByInst.emplace(Uses[Idx].I->getId(), Vs[Idx]);
      if (!New && static_cast<int>(Vs[Idx]) > static_cast<int>(It->second))
        It->second = Vs[Idx];
    }
    for (uint32_t Id : Oracle) {
      auto It = ByInst.find(Id);
      if (It == ByInst.end())
        Diverge(OracleKind::DiagnosisSoundness,
                "oracle warning at inst#" + std::to_string(Id) +
                    " is not a critical use");
      else if (It->second == core::Verdict::Clean)
        Diverge(OracleKind::DiagnosisSoundness,
                "oracle warning at inst#" + std::to_string(Id) +
                    " classified CLEAN");
    }
    for (const core::Finding &F : Diag.report().Findings) {
      if (F.V != core::Verdict::Definite)
        continue;
      if (!Oracle.count(F.I->getId()))
        Diverge(OracleKind::DiagnosisSoundness,
                "DEFINITE at inst#" + std::to_string(F.I->getId()) +
                    " never fired");
      if (F.Witness.empty())
        Diverge(OracleKind::DiagnosisSoundness,
                "DEFINITE at inst#" + std::to_string(F.I->getId()) +
                    " has no witness path");
    }
  }

  // -- Oracle 4: degradation-ladder soundness under injected faults ------
  if (Opts.CheckDegradation) {
    Out.Checked[static_cast<unsigned>(OracleKind::DegradationSoundness)] =
        true;
    struct FaultCase {
      BudgetPhase Phase;
      ToolVariant Requested;
      ToolVariant ExpectedRung;
    };
    const FaultCase Cases[] = {
        {BudgetPhase::PointerAnalysis, ToolVariant::UsherFull,
         ToolVariant::MSanFull},
        {BudgetPhase::Definedness, ToolVariant::UsherFull,
         ToolVariant::UsherTLAT},
        {BudgetPhase::OptII, ToolVariant::UsherFull, ToolVariant::UsherOptI},
        {BudgetPhase::OptI, ToolVariant::UsherOptI, ToolVariant::UsherTLAT},
    };
    for (const FaultCase &C : Cases) {
      auto M = parseFresh(Source);
      core::UsherOptions UOpts;
      UOpts.Variant = C.Requested;
      FaultPlan F;
      F.Phase = C.Phase;
      F.AtStep = 0;
      UOpts.Fault = F;
      core::UsherResult R = core::runUsher(*M, UOpts);
      std::string Tag = std::string("fault ") + budgetPhaseName(C.Phase);
      if (!R.Degradation.Degraded) {
        Diverge(OracleKind::DegradationSoundness,
                Tag + ": injected exhaustion did not degrade");
        continue;
      }
      if (R.Degradation.Rung != C.ExpectedRung)
        Diverge(OracleKind::DegradationSoundness,
                Tag + ": landed on " +
                    core::toolVariantName(R.Degradation.Rung) +
                    ", expected " + core::toolVariantName(C.ExpectedRung));
      ExecutionReport Rep =
          Interpreter(*M, &R.Plan, runtime::CostModel(), ToolLimits).run();
      if (Rep.Reason != ExitReason::Finished) {
        Diverge(OracleKind::DegradationSoundness,
                Tag + ": degraded run did not finish");
        continue;
      }
      if (Rep.MainResult != Native.MainResult)
        Diverge(OracleKind::DegradationSoundness,
                Tag + ": degraded instrumentation changed main's result");
      // Every landing rung has exact-match semantics: the driver never
      // strands a run on a half-applied Opt II.
      if (warnIds(Rep.ToolWarnings) != Oracle)
        Diverge(OracleKind::DegradationSoundness,
                Tag + ": " +
                    describeSetDiff(warnIds(Rep.ToolWarnings), Oracle));
    }
  }

  // -- Oracle 5: analysis service equivalence ----------------------------
  if (Opts.CheckServe) {
    Out.Checked[static_cast<unsigned>(OracleKind::ServeEquivalence)] = true;
    // One in-process Session with an in-memory snapshot store; every
    // request goes through the full wire encoding round trip so the
    // protocol layer is part of the differential surface.
    serve::SessionOptions SOpts;
    serve::Session Sess(SOpts);
    auto RoundTrip = [&Sess, &Diverge](serve::Request Rq,
                                       serve::Reply &Rp) -> bool {
      std::string Wire = serve::frame(serve::encodeRequest(Rq));
      serve::FrameReader Reader;
      // Split the feed so the incremental reassembly path is exercised.
      Reader.append(Wire.data(), Wire.size() / 2);
      Reader.append(Wire.data() + Wire.size() / 2,
                    Wire.size() - Wire.size() / 2);
      std::string Body, Err;
      if (Reader.next(Body, &Err) != serve::FrameReader::Result::Frame) {
        Diverge(OracleKind::ServeEquivalence, "request frame lost: " + Err);
        return false;
      }
      serve::Request Decoded;
      if (!serve::decodeRequest(Body, Decoded, &Err)) {
        Diverge(OracleKind::ServeEquivalence,
                "request did not survive encoding: " + Err);
        return false;
      }
      serve::Reply Raw = Sess.handle(Decoded);
      if (!serve::decodeReply(serve::encodeReply(Raw), Rp, &Err)) {
        Diverge(OracleKind::ServeEquivalence,
                "reply did not survive encoding: " + Err);
        return false;
      }
      return true;
    };

    for (serve::Op O : {serve::Op::Analyze, serve::Op::Diagnose}) {
      serve::Request Rq;
      Rq.Kind = O;
      Rq.Id = static_cast<uint64_t>(O) + 1;
      Rq.Source = Source;
      serve::Reply Cold, Warm;
      if (!RoundTrip(Rq, Cold) || !RoundTrip(Rq, Warm))
        continue;
      const char *Name = serve::opName(O);
      if (Cold.Status != serve::ReplyStatus::Ok)
        Diverge(OracleKind::ServeEquivalence,
                std::string(Name) + ": unbudgeted request not OK: " +
                    Cold.Payload);
      if (Warm.Payload != Cold.Payload ||
          Warm.Status != Cold.Status)
        Diverge(OracleKind::ServeEquivalence,
                std::string(Name) + ": warm reply differs from cold");
    }
    // Both ops must have warm-started from their snapshots.
    if (Sess.servedWarm() != 2)
      Diverge(OracleKind::ServeEquivalence,
              "expected 2 warm replies, got " +
                  std::to_string(Sess.servedWarm()));

    // Cross-check the service's totals against a direct pipeline run: the
    // module line carries the plan's check count.
    auto M = parseFresh(Source);
    core::UsherOptions UOpts;
    core::UsherResult R = core::runUsher(*M, UOpts);
    serve::Request Rq;
    Rq.Kind = serve::Op::Analyze;
    Rq.Id = 99;
    Rq.Source = Source;
    serve::Reply Rp;
    if (RoundTrip(Rq, Rp)) {
      const std::string Needle =
          "module: variant=" +
          std::string(core::toolVariantName(R.Degradation.Rung)) +
          " checks=" + std::to_string(R.Plan.countChecks()) + " ";
      if (Rp.Payload.find(Needle) == std::string::npos)
        Diverge(OracleKind::ServeEquivalence,
                "service check total disagrees with in-process pipeline "
                "(expected" +
                    Needle + ")");
    }
  }

  // -- Oracle 6: summary-engine equivalence ------------------------------
  if (Opts.CheckSummary) {
    Out.Checked[static_cast<unsigned>(OracleKind::SummaryEquivalence)] = true;
    // One cache shared across all configs and reused within each config's
    // summary run: the second half of the matrix therefore replays
    // content-hashed summaries, so a cached summary must be exactly as
    // good as a fresh one. Keys are salted with (ContextK,
    // AddressTakenAware), which keeps the sharing sound.
    analysis::SummaryCache Cache;
    struct SummaryConfig {
      ToolVariant V;
      unsigned ContextK;
      const char *Name;
    };
    const SummaryConfig Configs[] = {
        {ToolVariant::UsherTL, 1, "USHER-TL"},
        {ToolVariant::UsherTLAT, 1, "USHER-TL+AT"},
        {ToolVariant::UsherOptI, 1, "USHER-OPTI"},
        {ToolVariant::UsherFull, 1, "USHER"},
        {ToolVariant::UsherFull, 0, "USHER/K=0"},
    };
    struct EngineSnapshot {
      bool Finished = false;
      std::string Bottom;
      std::set<uint32_t> Warns;
      uint64_t Checks = 0;
      ToolVariant Rung;
      bool Degraded = false;
    };
    for (const SummaryConfig &C : Configs) {
      auto RunEngine = [&](core::EngineKind E,
                           analysis::SummaryCache *SC) -> EngineSnapshot {
        EngineSnapshot S;
        auto M = parseFresh(Source);
        core::UsherOptions UOpts;
        UOpts.Variant = C.V;
        UOpts.ContextK = C.ContextK;
        UOpts.Engine = E;
        UOpts.SummaryCache = SC;
        core::UsherResult R = core::runUsher(*M, UOpts);
        S.Rung = R.Degradation.Rung;
        S.Degraded = R.Degradation.Degraded;
        S.Checks = R.Plan.countChecks();
        if (R.G && R.Gamma)
          for (uint32_t N = 0; N != R.G->numNodes(); ++N)
            if (R.Gamma->mayBeUndefined(N))
              S.Bottom += std::to_string(N) + " ";
        ExecutionReport Rep =
            Interpreter(*M, &R.Plan, runtime::CostModel(), ToolLimits).run();
        S.Finished = Rep.Reason == ExitReason::Finished;
        if (S.Finished)
          S.Warns = warnIds(Rep.ToolWarnings);
        return S;
      };
      EngineSnapshot G = RunEngine(core::EngineKind::Global, nullptr);
      EngineSnapshot S = RunEngine(core::EngineKind::Summary, &Cache);
      std::string Tag = C.Name;
      if (G.Finished != S.Finished) {
        Diverge(OracleKind::SummaryEquivalence,
                Tag + ": engines disagree on run termination");
        continue;
      }
      if (S.Bottom != G.Bottom)
        Diverge(OracleKind::SummaryEquivalence,
                Tag + ": bottom sets differ");
      if (S.Checks != G.Checks)
        Diverge(OracleKind::SummaryEquivalence,
                Tag + ": plan check totals differ: summary " +
                    std::to_string(S.Checks) + " vs global " +
                    std::to_string(G.Checks));
      if (S.Rung != G.Rung || S.Degraded != G.Degraded)
        Diverge(OracleKind::SummaryEquivalence,
                Tag + ": landed on " + core::toolVariantName(S.Rung) +
                    ", global landed on " + core::toolVariantName(G.Rung));
      if (G.Finished && S.Warns != G.Warns)
        Diverge(OracleKind::SummaryEquivalence,
                Tag + ": " + describeSetDiff(S.Warns, G.Warns));
    }
  }

  // -- Oracle 7: demand query vs whole-program VFG reachability ----------
  if (Opts.CheckQuery) {
    Out.Checked[static_cast<unsigned>(OracleKind::QueryEquivalence)] = true;
    auto M = parseFresh(Source);
    core::UsherOptions UOpts;
    UOpts.Variant = ToolVariant::UsherFull;
    core::UsherResult R = core::runUsher(*M, UOpts);
    if (R.G && R.G->numNodes() != 0) {
      const vfg::VFG &G = *R.G;
      const uint32_t N = G.numNodes();
      const unsigned K = UOpts.ContextK;

      // Independent reference: an exhaustive DFS over (node, context)
      // states with the same k-limited CFL transitions, projecting out
      // the set of reachable *nodes* from one source. It shares the
      // ContextStack encoding with DemandVFA but none of its traversal,
      // memoization, or witness machinery.
      auto ReachableFrom = [&](uint32_t Src) {
        std::vector<bool> NodeReached(N, false);
        std::set<std::pair<uint32_t, uint64_t>> SeenStates;
        std::vector<std::pair<uint32_t, uint64_t>> Stack;
        Stack.push_back({Src, core::ContextStack::empty().raw()});
        SeenStates.insert(Stack.back());
        NodeReached[Src] = true;
        while (!Stack.empty()) {
          auto [Node, Raw] = Stack.back();
          Stack.pop_back();
          core::ContextStack Ctx = core::ContextStack::fromRaw(Raw);
          for (const vfg::Edge &E : G.users(Node)) {
            core::ContextStack Next = Ctx;
            if (E.Kind == vfg::EdgeKind::Call) {
              if (K != 0)
                Next = Ctx.pushed(E.CallSite, K);
            } else if (E.Kind == vfg::EdgeKind::Ret) {
              if (K != 0) {
                core::ContextStack Popped = core::ContextStack::empty();
                if (!Ctx.popped(E.CallSite, Popped))
                  continue; // unrealizable return
                Next = Popped;
              }
            }
            std::pair<uint32_t, uint64_t> S{E.Node, Next.raw()};
            if (SeenStates.insert(S).second) {
              NodeReached[E.Node] = true;
              Stack.push_back(S);
            }
          }
        }
        return NodeReached;
      };

      // Sample deterministically: sinks favor critical-use nodes (the
      // queries a client would actually ask), sources and the remainder
      // come from hash-derived ids so arbitrary interior nodes are
      // exercised too. The stride walks carry a hard step cap: when N
      // shares a factor with the stride, the orbit of Step*stride % N
      // covers only a subset of the ids (e.g. stride 40503 on a 6-node
      // graph yields {0, 3} forever), so an uncapped grow-until-size
      // loop would never terminate. Short collections just mean fewer
      // sampled pairs.
      std::set<uint32_t> Srcs, Sinks;
      for (const vfg::VFG::CriticalUse &U : G.criticalUses()) {
        Sinks.insert(U.Node);
        if (Sinks.size() >= 4)
          break;
      }
      for (uint32_t Step = 1; Srcs.size() < 3 && Step <= 64; ++Step)
        Srcs.insert(static_cast<uint32_t>((Step * 2654435761ull) % N));
      for (uint32_t Step = 7; Sinks.size() < 5 && Step <= 70; ++Step)
        Sinks.insert(static_cast<uint32_t>((Step * 40503ull) % N));

      analysis::DemandVFA::Options QOpts;
      QOpts.ContextK = K;
      analysis::DemandVFA Demand(G, QOpts);
      for (uint32_t Src : Srcs) {
        std::vector<bool> Ref = ReachableFrom(Src);
        for (uint32_t Sink : Sinks) {
          const std::string Tag =
              "query " + std::to_string(Src) + " -> " + std::to_string(Sink);
          analysis::QueryResult Q = Demand.cflReachable(Src, Sink);
          if (Q.Exhausted) {
            Diverge(OracleKind::QueryEquivalence,
                    Tag + ": exhausted without a budget configured");
            continue;
          }
          if (Q.Reachable != Ref[Sink]) {
            Diverge(OracleKind::QueryEquivalence,
                    Tag + ": demand engine says " +
                        (Q.Reachable ? "reachable" : "unreachable") +
                        ", whole-program traversal says " +
                        (Ref[Sink] ? "reachable" : "unreachable"));
            continue;
          }
          if (Q.Reachable) {
            std::string WErr;
            if (!analysis::validateQueryWitness(G, Src, Sink, Q.Witness, K,
                                                &WErr))
              Diverge(OracleKind::QueryEquivalence,
                      Tag + ": witness does not replay: " + WErr);
          }
          analysis::QueryResult Q2 = Demand.cflReachable(Src, Sink);
          if (!Q2.FromCache || Q2.Reachable != Q.Reachable)
            Diverge(OracleKind::QueryEquivalence,
                    Tag + ": memoized answer differs from the first");
        }
      }
    }
  }

  // -- Oracle 8: sanitizer-client consistency ----------------------------
  if (Opts.CheckClients) {
    Out.Checked[static_cast<unsigned>(OracleKind::ClientConsistency)] = true;
    // A plan covers a warning when the warned instruction carries one of
    // the plan's own check ops.
    auto PlanChecksAt = [](const core::InstrumentationPlan &P,
                           const ir::Instruction *I) {
      for (const std::vector<core::ShadowOp> *Ops : {&P.before(I), &P.after(I)})
        for (const core::ShadowOp &Op : *Ops)
          if (Op.K == core::ShadowOp::Kind::Check ||
              Op.K == core::ShadowOp::Kind::CheckBounds)
            return true;
      return false;
    };

    const core::ClientKind NewClients[] = {core::ClientKind::AddrLeak,
                                           core::ClientKind::Bounds};
    std::map<core::ClientKind, std::set<uint32_t>> SoloWarns;
    std::map<core::ClientKind, uint64_t> SoloChecks;
    bool SoloOk = true;
    for (core::ClientKind K : NewClients) {
      const std::string Tag = std::string("client ") + core::clientName(K);
      auto M = parseFresh(Source);
      core::UsherOptions UOpts;
      UOpts.Variant = ToolVariant::UsherFull;
      UOpts.Clients = {K};
      core::UsherResult R = core::runUsher(*M, UOpts);
      if (R.ClientPlans.size() != 1) {
        Diverge(OracleKind::ClientConsistency,
                Tag + ": pipeline produced " +
                    std::to_string(R.ClientPlans.size()) +
                    " client plans, expected 1");
        SoloOk = false;
        continue;
      }
      // The client's MSan analog: full statement-by-statement shadowing
      // with the same PA-refined sink set, no taint analysis, no budgeted
      // placement. Both plans execute in ONE interpreter pass, which also
      // pits the multi-plan shadow planes against each other.
      core::ClientBuildInputs FullIn(*M);
      FullIn.PA = R.PA.get();
      core::ClientPlanInfo Full = core::buildClientFullPlan(K, FullIn);
      std::vector<runtime::PlanExec> Plans{
          {&R.ClientPlans[0].Plan, core::clientShadowSemantics(K)},
          {&Full.Plan, core::clientShadowSemantics(K)}};
      ExecutionReport Rep =
          Interpreter(*M, Plans, runtime::CostModel(), ToolLimits).run();
      if (Rep.Reason != ExitReason::Finished) {
        Diverge(OracleKind::ClientConsistency,
                Tag + ": instrumented run did not finish (" +
                    Rep.TrapMessage + ")");
        SoloOk = false;
        continue;
      }
      if (Rep.MainResult != Native.MainResult)
        Diverge(OracleKind::ClientConsistency,
                Tag + ": instrumentation changed main's result");
      const std::set<uint32_t> GuidedW =
          warnIds(Rep.PlanResults[0].ToolWarnings);
      const std::set<uint32_t> FullW = warnIds(Rep.PlanResults[1].ToolWarnings);
      if (GuidedW != FullW)
        Diverge(OracleKind::ClientConsistency,
                Tag + ": guided vs full: " + describeSetDiff(GuidedW, FullW));
      for (const runtime::Warning &W : Rep.PlanResults[0].ToolWarnings)
        if (!PlanChecksAt(R.ClientPlans[0].Plan, W.At)) {
          Diverge(OracleKind::ClientConsistency,
                  Tag + ": warning at inst#" + std::to_string(W.At->getId()) +
                      " has no check in the client's plan");
          break;
        }
      SoloWarns[K] = GuidedW;
      SoloChecks[K] = Rep.PlanResults[0].DynChecks;
    }

    // The UUV client's own individual run, via the legacy single-plan
    // entry point — the third row of the comparison matrix.
    std::set<uint32_t> UuvWarns;
    uint64_t UuvChecks = 0;
    {
      auto M = parseFresh(Source);
      core::UsherOptions UOpts;
      UOpts.Variant = ToolVariant::UsherFull;
      core::UsherResult R = core::runUsher(*M, UOpts);
      ExecutionReport Rep =
          Interpreter(*M, &R.Plan, runtime::CostModel(), ToolLimits).run();
      if (Rep.Reason != ExitReason::Finished)
        SoloOk = false;
      else {
        UuvWarns = warnIds(Rep.ToolWarnings);
        UuvChecks = Rep.DynChecks;
      }
    }

    // Multi-client single pass: one pipeline, one interpreter, one plan
    // per client. Each client's plane must reproduce its individual run.
    if (SoloOk) {
      auto M = parseFresh(Source);
      core::UsherOptions UOpts;
      UOpts.Variant = ToolVariant::UsherFull;
      UOpts.Clients = {core::ClientKind::UUV, core::ClientKind::AddrLeak,
                       core::ClientKind::Bounds};
      core::UsherResult R = core::runUsher(*M, UOpts);
      std::vector<runtime::PlanExec> Plans{{&R.Plan, core::ShadowSemantics()}};
      for (const core::ClientPlanInfo &CP : R.ClientPlans)
        Plans.push_back({&CP.Plan, core::clientShadowSemantics(CP.Kind)});
      ExecutionReport Rep =
          Interpreter(*M, Plans, runtime::CostModel(), ToolLimits).run();
      if (Rep.Reason != ExitReason::Finished) {
        Diverge(OracleKind::ClientConsistency,
                "multi-client: run did not finish (" + Rep.TrapMessage + ")");
      } else if (R.ClientPlans.size() != 2) {
        Diverge(OracleKind::ClientConsistency,
                "multi-client: pipeline produced " +
                    std::to_string(R.ClientPlans.size()) +
                    " client plans, expected 2");
      } else {
        struct Row {
          const char *Name;
          const std::set<uint32_t> &Warns;
          uint64_t Checks;
        };
        const Row Rows[] = {
            {"uuv", UuvWarns, UuvChecks},
            {"addrleak", SoloWarns[core::ClientKind::AddrLeak],
             SoloChecks[core::ClientKind::AddrLeak]},
            {"bounds", SoloWarns[core::ClientKind::Bounds],
             SoloChecks[core::ClientKind::Bounds]},
        };
        for (size_t P = 0; P != 3; ++P) {
          const Row &Want = Rows[P];
          const std::string Tag =
              std::string("multi-client ") + Want.Name + ": ";
          if (warnIds(Rep.PlanResults[P].ToolWarnings) != Want.Warns)
            Diverge(OracleKind::ClientConsistency,
                    Tag + "single-pass vs individual run: " +
                        describeSetDiff(warnIds(Rep.PlanResults[P].ToolWarnings),
                                        Want.Warns));
          if (Rep.PlanResults[P].DynChecks != Want.Checks)
            Diverge(OracleKind::ClientConsistency,
                    Tag + "dynamic check count " +
                        std::to_string(Rep.PlanResults[P].DynChecks) +
                        " vs individual run's " +
                        std::to_string(Want.Checks));
        }
      }
    }
  }

  return Out;
}
