//===- fuzz/Reducer.cpp - Greedy hierarchical test-case reduction ---------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include <cctype>
#include <string>
#include <vector>

using namespace usher;
using namespace usher::fuzz;

namespace {

std::vector<std::string> splitLines(const std::string &Source) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Source) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

std::string trimmed(const std::string &Line) {
  size_t Comment = Line.find("//");
  std::string S =
      Comment == std::string::npos ? Line : Line.substr(0, Comment);
  size_t Begin = S.find_first_not_of(" \t");
  if (Begin == std::string::npos)
    return "";
  size_t End = S.find_last_not_of(" \t");
  return S.substr(Begin, End - Begin + 1);
}

/// Deletable granularity: anything except function headers and closing
/// braces (removing those alone always breaks the structure — whole
/// functions go in one piece in the coarse pass instead).
bool isBodyLine(const std::string &Line) {
  std::string T = trimmed(Line);
  return !T.empty() && T != "}" && T.rfind("func ", 0) != 0;
}

/// Budgeted predicate evaluation.
struct Checker {
  const Predicate &P;
  unsigned Cap;
  unsigned Checks = 0;

  bool exhausted() const { return Checks >= Cap; }
  bool test(const std::vector<std::string> &Lines) {
    if (exhausted())
      return false;
    ++Checks;
    return P(joinLines(Lines));
  }
};

/// Pass 1: remove whole functions, header through closing brace. main is
/// left alone — no TinyC program is valid without it.
bool removeFunctions(std::vector<std::string> &Lines, Checker &C) {
  bool Changed = false;
  for (bool Retry = true; Retry && !C.exhausted();) {
    Retry = false;
    for (size_t I = 0; I != Lines.size(); ++I) {
      std::string T = trimmed(Lines[I]);
      if (T.rfind("func ", 0) != 0 || T.rfind("func main(", 0) == 0)
        continue;
      size_t Close = I + 1;
      while (Close != Lines.size() && trimmed(Lines[Close]) != "}")
        ++Close;
      if (Close == Lines.size())
        continue;
      std::vector<std::string> Cand(Lines.begin(),
                                    Lines.begin() +
                                        static_cast<std::ptrdiff_t>(I));
      Cand.insert(Cand.end(),
                  Lines.begin() + static_cast<std::ptrdiff_t>(Close) + 1,
                  Lines.end());
      if (C.test(Cand)) {
        Lines = std::move(Cand);
        Changed = Retry = true;
        break;
      }
      if (C.exhausted())
        break;
    }
  }
  return Changed;
}

/// Pass 2: ddmin-style deletion of chunks of body lines, chunk size
/// halving from half the candidate count down to one line.
bool deleteChunks(std::vector<std::string> &Lines, Checker &C) {
  bool Changed = false;
  auto Candidates = [&Lines] {
    std::vector<size_t> Idx;
    for (size_t I = 0; I != Lines.size(); ++I)
      if (isBodyLine(Lines[I]))
        Idx.push_back(I);
    return Idx;
  };
  std::vector<size_t> Cand = Candidates();
  size_t Chunk = Cand.size() / 2;
  if (Chunk == 0)
    Chunk = 1;
  while (Chunk >= 1 && !C.exhausted()) {
    bool AnyAtThisSize = false;
    for (size_t Pos = 0; Pos + Chunk <= Cand.size() && !C.exhausted();) {
      std::vector<std::string> Next;
      size_t Lo = Cand[Pos], Hi = Cand[Pos + Chunk - 1];
      for (size_t I = 0; I != Lines.size(); ++I) {
        bool Drop = I >= Lo && I <= Hi && isBodyLine(Lines[I]);
        if (!Drop)
          Next.push_back(Lines[I]);
      }
      if (C.test(Next)) {
        Lines = std::move(Next);
        Cand = Candidates();
        Changed = AnyAtThisSize = true;
        // Stay at Pos: the window now covers fresh lines.
      } else {
        ++Pos;
      }
    }
    if (Chunk == 1)
      break;
    Chunk = AnyAtThisSize ? Chunk : Chunk / 2;
    if (Chunk > Cand.size())
      Chunk = Cand.size() / 2 ? Cand.size() / 2 : 1;
  }
  return Changed;
}

/// Pass 3: simplify single lines — replace a definition's right-hand side
/// with the constant 0, which removes its data dependencies while keeping
/// the definition (so later uses stay declared).
bool simplifyLines(std::vector<std::string> &Lines, Checker &C) {
  bool Changed = false;
  for (size_t I = 0; I != Lines.size() && !C.exhausted(); ++I) {
    std::string T = trimmed(Lines[I]);
    if (T.empty() || T.back() != ';' || T[0] == '*')
      continue;
    size_t Eq = T.find(" = ");
    if (Eq == std::string::npos)
      continue;
    std::string Name = T.substr(0, Eq);
    for (char Ch : Name)
      if (!std::isalnum(static_cast<unsigned char>(Ch)) && Ch != '_') {
        Name.clear();
        break;
      }
    if (Name.empty() || T.rfind("var ", 0) == 0)
      continue;
    std::string Simple = "  " + Name + " = 0;";
    if (trimmed(Simple) == T)
      continue;
    std::string Saved = Lines[I];
    Lines[I] = Simple;
    if (C.test(Lines)) {
      Changed = true;
    } else {
      Lines[I] = std::move(Saved);
    }
  }
  return Changed;
}

} // namespace

ReduceResult fuzz::reduceProgram(const std::string &Source,
                                 const Predicate &P, ReducerOptions Opts) {
  ReduceResult Res;
  Res.Source = Source;
  Checker C{P, Opts.MaxChecks};

  std::vector<std::string> Lines = splitLines(Source);
  if (!C.test(Lines)) // The input itself must exhibit the behavior.
    return Res;

  for (unsigned Pass = 0; Pass != Opts.MaxPasses && !C.exhausted(); ++Pass) {
    bool Changed = false;
    Changed |= removeFunctions(Lines, C);
    Changed |= deleteChunks(Lines, C);
    Changed |= simplifyLines(Lines, C);
    ++Res.NumPasses;
    if (!Changed)
      break;
  }
  Res.Source = joinLines(Lines);
  Res.NumChecks = C.Checks;
  return Res;
}
