//===- fuzz/Oracles.h - Differential oracles over one program ---*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight differential oracles the fuzzer evaluates on every valid
/// input, each reusing an existing piece of the project's verification
/// infrastructure:
///
///  1. VariantEquivalence — every ToolVariant's instrumented run must
///     preserve semantics (same main result, same termination) and report
///     the shadow interpreter's ground-truth warnings: exactly for
///     MSanFull / UsherTL / UsherTLAT / UsherOptI, and as a non-empty-iff
///     subset for UsherFull (Opt II suppresses dominated duplicates only).
///  2. SolverEquivalence — the naive reference Andersen solver must
///     produce the optimized engine's points-to sets, and plans built on
///     it must keep the per-rung warning guarantees at every rung of the
///     ladder.
///  3. DiagnosisSoundness — the static diagnosis engine, run in its
///     conservative posture, must classify no oracle warning CLEAN and
///     every DEFINITE finding must fire at runtime with a witness.
///  4. DegradationSoundness — injected budget exhaustion in each pipeline
///     phase must land on the documented rung and keep the plan's
///     warnings exact.
///  5. ServeEquivalence — the analysis service must answer what the
///     in-process pipeline computes: each program is replayed through the
///     full wire protocol (encode, frame, reassemble, decode) into a
///     Session backed by an in-memory snapshot store, twice. The cold
///     reply's check totals must match a direct runUsher, and the warm
///     (snapshot-assembled) reply must be byte-identical to the cold one.
///  6. SummaryEquivalence — the bottom-up summary engine must reproduce
///     the global fixpoint's answer: at every degradation rung that runs
///     definedness, and at context depth 0 and 1, --engine=summary must
///     yield the same bottom set, the same instrumentation plan totals,
///     the same landing rung, and the same runtime warning set as
///     --engine=global, both fresh and when replayed through a shared
///     content-hashed summary cache.
///  7. QueryEquivalence — the demand-driven CFL-reachability engine must
///     agree with whole-program VFG reachability on sampled (src, sink)
///     pairs: each cflReachable verdict is checked against an independent
///     exhaustive state-space traversal, every positive verdict's witness
///     must replay as a realizable VFG path, and a repeated query must be
///     answered from the memo table with the same verdict.
///  8. ClientConsistency — every sanitizer client's guided plan must
///     report exactly the warnings its own full (analysis-free)
///     instrumentation reports, each warning must sit at an instruction
///     the client's static plan instruments with a check, and a
///     multi-client single-pass run (one interpreter, one plan per
///     client) must reproduce each client's individual-run warning set
///     and dynamic-check count.
///
/// Programs are interchanged as TinyC source text; each pipeline run
/// parses its own fresh module because heap cloning mutates modules, and
/// results are compared by instruction id (renumbering makes ids stable
/// across parses of the same text).
///
//===----------------------------------------------------------------------===//

#ifndef USHER_FUZZ_ORACLES_H
#define USHER_FUZZ_ORACLES_H

#include "fuzz/Coverage.h"
#include "runtime/Interpreter.h"

#include <string>
#include <vector>

namespace usher {
namespace fuzz {

enum class OracleKind : uint8_t {
  VariantEquivalence,
  SolverEquivalence,
  DiagnosisSoundness,
  DegradationSoundness,
  ServeEquivalence,
  SummaryEquivalence,
  QueryEquivalence,
  ClientConsistency,
};

constexpr unsigned NumOracleKinds = 8;

/// Stable lower-case name used in reports and JSON
/// ("variant-equivalence", "solver-equivalence", ...).
const char *oracleKindName(OracleKind K);

/// One oracle violation. Detail strings are deterministic functions of
/// the program (instruction ids, variable names — never addresses).
struct Divergence {
  OracleKind Oracle;
  std::string Detail;
};

/// Which oracles to evaluate and under what execution limits.
struct OracleOptions {
  bool CheckVariants = true;
  bool CheckSolver = true;
  bool CheckDiagnosis = true;
  bool CheckDegradation = true;
  bool CheckServe = true;
  bool CheckSummary = true;
  bool CheckQuery = true;
  bool CheckClients = true;
  /// Applied to every interpreter run. Mutants can manufacture infinite
  /// loops, so the default step budget is far below the interpreter's.
  uint64_t MaxSteps = 2'000'000;
};

/// Everything one program's oracle evaluation produced.
struct OracleOutcome {
  /// Parsed, verified, and ran trap-free to completion natively. Invalid
  /// inputs are not counted against any oracle.
  bool Valid = false;
  std::string InvalidReason;

  std::vector<Divergence> Divergences;
  /// Coverage fingerprint (populated only for valid inputs).
  FeatureSet Features;
  /// Which oracles actually ran, indexed by OracleKind.
  bool Checked[NumOracleKinds] = {};

  int64_t MainResult = 0;
  uint64_t NumOracleWarnings = 0;
};

/// Parses \p Source and evaluates the enabled oracles on it.
OracleOutcome runOracles(const std::string &Source,
                         const OracleOptions &Opts = OracleOptions());

} // namespace fuzz
} // namespace usher

#endif // USHER_FUZZ_ORACLES_H
