//===- fuzz/Reducer.h - Greedy hierarchical test-case reduction -*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automatic minimization of divergent TinyC programs, in the tradition of
/// hierarchical delta debugging: the predicate ("this still diverges the
/// same way") is re-evaluated on structurally smaller candidates, and a
/// candidate is kept whenever the predicate survives. Three pass shapes,
/// iterated to a fixpoint under pass and predicate-call budgets:
///
///  1. whole-function removal (coarsest granularity first);
///  2. ddmin-style chunk deletion over body lines, halving chunk sizes
///     down to single lines;
///  3. single-line simplification (constant-fold right-hand sides).
///
/// Candidates that break the program are rejected by the predicate itself
/// (an invalid program cannot "diverge the same way"), so the reducer
/// needs no syntax knowledge beyond line classification.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_FUZZ_REDUCER_H
#define USHER_FUZZ_REDUCER_H

#include <functional>
#include <string>

namespace usher {
namespace fuzz {

/// Returns true when \p Source still exhibits the behavior being
/// minimized. Must be deterministic.
using Predicate = std::function<bool(const std::string &)>;

struct ReducerOptions {
  /// Full sweeps over all three pass shapes.
  unsigned MaxPasses = 8;
  /// Hard cap on predicate evaluations (the expensive part).
  unsigned MaxChecks = 1500;
};

struct ReduceResult {
  std::string Source;      ///< The minimized program.
  unsigned NumChecks = 0;  ///< Predicate evaluations spent.
  unsigned NumPasses = 0;  ///< Sweeps completed.
};

/// Minimizes \p Source while \p P holds. \p P must hold on \p Source
/// itself; if it does not, the input is returned unchanged.
ReduceResult reduceProgram(const std::string &Source, const Predicate &P,
                           ReducerOptions Opts = ReducerOptions());

} // namespace fuzz
} // namespace usher

#endif // USHER_FUZZ_REDUCER_H
