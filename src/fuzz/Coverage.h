//===- fuzz/Coverage.h - Feedback signals for the fuzzer --------*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight coverage feedback for the differential fuzzer. A program's
/// fingerprint is a set of 64-bit *feature keys* drawn from two sources:
///
///  - interpreter edge coverage: executed control-flow edges with their
///    hit counts folded into AFL-style coarse buckets, plus the peak call
///    depth;
///  - analysis-feature coverage: which VFG node kinds the program
///    manufactured, which store-update flavors fired, bucketized Opt I /
///    Opt II rewrite counts, the degradation rung reached, and the
///    warning volume.
///
/// The scheduler keeps an input when it contributes a key the global
/// CoverageMap has not seen. Keys are pure functions of program behavior
/// (never of wall-clock or memory addresses), so same-seed campaigns
/// produce identical maps.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_FUZZ_COVERAGE_H
#define USHER_FUZZ_COVERAGE_H

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace usher {
namespace fuzz {

/// Namespaces for feature keys; the tag lives in the key's top byte so
/// the domains can never collide.
enum class FeatureDomain : uint8_t {
  Edge = 1,       ///< Executed CFG edge (payload: edgeKey | bucket).
  FrameDepth = 2, ///< Peak call depth (payload: exact depth).
  Origin = 3,     ///< VFG NodeOrigin present (payload: origin index).
  StoreKind = 4,  ///< Store-update flavor fired (payload: kind index).
  OptCounter = 5, ///< Opt I / II rewrites (payload: which | bucket).
  Rung = 6,       ///< Degradation rung reached (payload: variant index).
  Warnings = 7,   ///< Oracle warning volume (payload: bucket).
};

/// Folds a hit count into one of nine coarse classes (0, 1, 2, 3, 4-7,
/// 8-15, 16-31, 32-127, 128+), the classic AFL bucketing: re-executing a
/// loop a few more times is not new behavior, an order of magnitude is.
uint8_t countBucket(uint64_t N);

/// Builds a feature key from a domain tag and a payload (payload must fit
/// 56 bits; higher bits are discarded).
inline uint64_t featureKey(FeatureDomain D, uint64_t Payload) {
  return (static_cast<uint64_t>(D) << 56) |
         (Payload & ((uint64_t(1) << 56) - 1));
}

/// One program's deduplicated fingerprint.
struct FeatureSet {
  std::vector<uint64_t> Keys;

  void add(FeatureDomain D, uint64_t Payload) {
    Keys.push_back(featureKey(D, Payload));
  }
};

/// The campaign-global set of features ever observed.
class CoverageMap {
public:
  /// Merges \p FS; returns how many of its keys were new.
  size_t addAll(const FeatureSet &FS);

  bool contains(uint64_t Key) const { return Seen.count(Key) != 0; }
  size_t size() const { return Seen.size(); }

private:
  std::unordered_set<uint64_t> Seen;
};

} // namespace fuzz
} // namespace usher

#endif // USHER_FUZZ_COVERAGE_H
