//===- fuzz/Fuzzer.h - Coverage-guided differential fuzzing -----*- C++ -*-===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign driver: a coverage-guided loop over TinyC programs that
/// evaluates the six differential oracles (fuzz/Oracles.h) on every
/// valid input and minimizes any divergence with the hierarchical reducer
/// (fuzz/Reducer.h).
///
/// Scheduling is AFL-shaped but deliberately small: the corpus holds
/// inputs that contributed a new coverage key; each round either
/// generates a fresh program (workload::generateProgram), mutates a
/// corpus member (workload::mutateProgram), splices two members
/// (workload::spliceProgram), or wraps main in a call to deepen every
/// analysis context (workload::wrapMainInCall). Everything — generation,
/// scheduling, reduction, the report — is a deterministic function of the
/// campaign seed, and the JSON report (schema "usher-fuzz-v1") contains
/// no timings, so same-seed campaigns are byte-identical.
///
/// With Jobs > 1 the campaign parallelizes by *speculation*: a window of
/// upcoming inputs is predicted from a cloned RNG and the current corpus,
/// their oracle outcomes (a pure function of the program text) are
/// evaluated on pool workers, and a serial replay then re-makes every
/// scheduling decision from the authoritative RNG/corpus, reusing a
/// worker's outcome only when the replayed input is byte-equal to the
/// prediction. Mispredictions (the corpus changed mid-window) fall back
/// to inline evaluation, so the report stays byte-identical to Jobs = 1.
///
//===----------------------------------------------------------------------===//

#ifndef USHER_FUZZ_FUZZER_H
#define USHER_FUZZ_FUZZER_H

#include "fuzz/Oracles.h"
#include "fuzz/Reducer.h"
#include "workload/Generator.h"
#include "workload/Synthesizer.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace usher {

class raw_ostream;

namespace fuzz {

/// Shape of synthesized corpus seeds (FuzzOptions::SeedCorpusSynth):
/// mid-size whole programs — an order of magnitude above what the
/// round-by-round generator produces, small enough that a seven-oracle
/// evaluation of a mutant stays in the tens of milliseconds.
inline workload::ShapeSpec fuzzSynthShape() {
  workload::ShapeSpec S;
  S.TargetNodes = 1'200;
  S.CallDepth = 3;
  S.Fanout = 2;
  S.RecursionRings = 1;
  S.RingSize = 2;
  return S;
}

struct FuzzOptions {
  uint64_t Seed = 1;
  unsigned Runs = 256;
  /// Minimize divergent programs before reporting them.
  bool Reduce = true;
  /// Corpus capacity; oldest entries are evicted first.
  unsigned MaxCorpus = 64;
  /// Stop recording (and reducing) divergences past this many.
  unsigned MaxDivergences = 10;
  /// Program shape for fresh generations: smaller than the property-test
  /// defaults so a campaign's per-input pipeline cost stays low.
  workload::GeneratorOptions Gen{/*NumFunctions=*/3,
                                 /*MaxSegmentsPerFn=*/4,
                                 /*MaxStmtsPerSegment=*/6};
  /// Seed the corpus with this many synthesized whole programs before
  /// round 0 (seeds Spec.Seed + i over SynthShape). Seeding runs on the
  /// main thread before any scheduling, so reports stay byte-identical
  /// for every Jobs. The seeds enter the mutation/splice/wrap pool
  /// immediately — rounds then drive mid-size mutants through every
  /// oracle instead of only the small generated programs.
  unsigned SeedCorpusSynth = 0;
  /// Shape of those synthesized seeds.
  workload::ShapeSpec SynthShape = fuzzSynthShape();
  OracleOptions Oracle;
  ReducerOptions Reducer;
  /// Campaign worker threads. 1 (the default) is the serial loop; 0
  /// resolves to the hardware concurrency. Any value yields byte-identical
  /// reports: workers only evaluate speculatively predicted inputs, and an
  /// authoritative serial replay makes every scheduling decision.
  unsigned Jobs = 1;
  /// Cooperative cancellation: when non-null and raised (e.g. by a
  /// SIGINT/SIGTERM handler), the campaign stops at the next round
  /// boundary. The report then covers exactly the completed rounds
  /// (Runs is adjusted) and carries Interrupted = true, so a flushed
  /// partial campaign still satisfies every schema invariant.
  const std::atomic<bool> *Stop = nullptr;
};

/// One minimized oracle violation.
struct DivergenceRecord {
  OracleKind Oracle;
  std::string Detail;        ///< First divergence detail on the original.
  unsigned Run;              ///< Campaign round that found it.
  std::string Source;        ///< The divergent program as scheduled.
  std::string Reduced;       ///< Minimized repro (== Source when off).
  unsigned OriginalLines = 0;
  unsigned ReducedLines = 0;
  unsigned ReduceChecks = 0; ///< Predicate evaluations the reducer spent.
};

/// Campaign summary; printJson emits schema "usher-fuzz-v1".
struct FuzzReport {
  uint64_t Seed = 0;
  /// Rounds actually completed: equals the scheduled count unless the
  /// campaign was interrupted, so per-round tallies always sum to Runs.
  unsigned Runs = 0;
  bool Interrupted = false;
  unsigned NumValid = 0;
  unsigned NumInvalid = 0;
  unsigned NumGenerated = 0;
  unsigned NumMutated = 0;
  unsigned NumSpliced = 0;
  unsigned NumWrapped = 0;
  unsigned CorpusSize = 0;
  uint64_t CoverageKeys = 0;
  /// Per-oracle tallies, indexed by OracleKind.
  unsigned OracleChecked[NumOracleKinds] = {};
  unsigned OracleDiverged[NumOracleKinds] = {};
  std::vector<DivergenceRecord> Divergences;

  bool clean() const { return Divergences.empty(); }

  /// Deterministic JSON: no timestamps, no timings, no addresses.
  void printJson(raw_ostream &OS) const;
};

/// Runs one fuzzing campaign.
FuzzReport runFuzzer(const FuzzOptions &Opts);

} // namespace fuzz
} // namespace usher

#endif // USHER_FUZZ_FUZZER_H
