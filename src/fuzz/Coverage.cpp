//===- fuzz/Coverage.cpp - Feedback signals for the fuzzer ----------------===//
//
// Part of the Usher project, reproducing "Accelerating Dynamic Detection of
// Uses of Undefined Values with Static Value-Flow Analysis" (CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Coverage.h"

using namespace usher;
using namespace usher::fuzz;

uint8_t fuzz::countBucket(uint64_t N) {
  if (N <= 3)
    return static_cast<uint8_t>(N);
  if (N <= 7)
    return 4;
  if (N <= 15)
    return 5;
  if (N <= 31)
    return 6;
  if (N <= 127)
    return 7;
  return 8;
}

size_t CoverageMap::addAll(const FeatureSet &FS) {
  size_t New = 0;
  for (uint64_t Key : FS.Keys)
    New += Seen.insert(Key).second ? 1 : 0;
  return New;
}
